package chunk

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/extent"
	"shardstore/internal/faults"
)

// --- frame encoding/decoding ---

func TestFrameRoundTrip(t *testing.T) {
	uuid := UUID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	frame, err := EncodeFrame(TagData, "shard-7", []byte("payload bytes"), uuid)
	if err != nil {
		t.Fatal(err)
	}
	h, key, payload, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tag != TagData || key != "shard-7" || !bytes.Equal(payload, []byte("payload bytes")) {
		t.Fatalf("decode mismatch: %+v %q %q", h, key, payload)
	}
	if h.UUID != uuid {
		t.Fatal("uuid mismatch")
	}
	if h.FrameLen() != len(frame) {
		t.Fatalf("frame length %d vs %d", h.FrameLen(), len(frame))
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	frame, err := EncodeFrame(TagIndexRun, "", nil, UUID{})
	if err != nil {
		t.Fatal(err)
	}
	_, key, payload, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" || len(payload) != 0 {
		t.Fatalf("empty round trip: %q %v", key, payload)
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	frame, _ := EncodeFrame(TagData, "k", bytes.Repeat([]byte{7}, 50), UUID{9})
	for _, pos := range []int{0, 1, 20, 30, len(frame) - 1, len(frame) - 20} {
		bad := append([]byte(nil), frame...)
		bad[pos] ^= 0xFF
		if _, _, _, err := DecodeFrame(bad); err == nil {
			t.Fatalf("corruption at byte %d undetected", pos)
		}
	}
}

func TestFrameTruncation(t *testing.T) {
	frame, _ := EncodeFrame(TagData, "k", []byte("data"), UUID{1})
	for n := 0; n < len(frame); n += 7 {
		if _, _, _, err := DecodeFrame(frame[:n]); err == nil {
			t.Fatalf("truncation to %d undetected", n)
		}
	}
}

// TestFrameDecodeNeverPanics is the §7 serialization-robustness property:
// any byte soup fed to the decoder must error, never panic.
func TestFrameDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _, _, _ = DecodeFrame(data) // must not panic
		_ = VerifyFrameBytes(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Adversarial: valid magic with insane length fields.
	evil := make([]byte, 64)
	evil[0] = FrameMagic
	for i := range evil[17:25] {
		evil[17+i] = 0xFF
	}
	if _, _, _, err := DecodeFrame(evil); err == nil {
		t.Fatal("insane lengths accepted")
	}
}

func TestFrameEncodeDecodeProperty(t *testing.T) {
	f := func(keyRaw []byte, payload []byte, uuid UUID, tagRaw uint8) bool {
		if len(keyRaw) > 200 {
			keyRaw = keyRaw[:200]
		}
		key := string(keyRaw)
		tag := Tag(tagRaw % 2)
		frame, err := EncodeFrame(tag, key, payload, uuid)
		if err != nil {
			return false
		}
		h, gotKey, gotPayload, err := DecodeFrame(frame)
		return err == nil && gotKey == key && bytes.Equal(gotPayload, payload) && h.Tag == tag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLocatorEncoding(t *testing.T) {
	l := Locator{Extent: 7, Offset: 1234, Length: 99}
	buf := EncodeLocator(l)
	got, rest, err := DecodeLocator(buf)
	if err != nil || got != l || len(rest) != 0 {
		t.Fatalf("locator round trip: %v %v %v", got, rest, err)
	}
	if _, _, err := DecodeLocator(buf[:5]); err == nil {
		t.Fatal("short locator accepted")
	}
}

// --- chunk store over a real extent manager ---

type testEnv struct {
	cs    *Store
	em    *extent.Manager
	sched *dep.Scheduler
}

// mapResolver is a minimal resolver for tests: liveness by locator set.
type mapResolver struct {
	live map[Locator]string // locator -> key
}

func (r *mapResolver) ChunkLive(key string, loc Locator) bool {
	k, ok := r.live[loc]
	return ok && k == key
}

func (r *mapResolver) RelocateChunk(key string, old, newLoc Locator, newDep *dep.Dependency) (bool, *dep.Dependency, error) {
	if k, ok := r.live[old]; !ok || k != key {
		return false, nil, nil
	}
	delete(r.live, old)
	r.live[newLoc] = key
	return true, dep.Resolved(), nil
}

func (r *mapResolver) SyncReferences() (*dep.Dependency, error) { return dep.Resolved(), nil }

func newEnv(t *testing.T, bugs *faults.Set) (*testEnv, *mapResolver) {
	t.Helper()
	d, err := disk.New(disk.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sched := dep.NewScheduler(d, nil)
	em, err := extent.NewManager(sched, extent.Config{}, nil, bugs)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewStore(em, Config{CacheCapacity: 8}, 42, nil, bugs)
	res := &mapResolver{live: make(map[Locator]string)}
	cs.RegisterResolver(TagData, res)
	cs.RegisterResolver(TagIndexRun, res)
	return &testEnv{cs: cs, em: em, sched: sched}, res
}

func (e *testEnv) pump(t *testing.T) {
	t.Helper()
	if _, err := e.em.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.sched.Pump(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetChunk(t *testing.T) {
	env, res := newEnv(t, nil)
	loc, d, release, err := env.cs.Put(TagData, "key1", []byte("chunky"))
	if err != nil {
		t.Fatal(err)
	}
	res.live[loc] = "key1"
	release()
	payload, key, err := env.cs.GetWithKey(loc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, []byte("chunky")) || key != "key1" {
		t.Fatalf("get: %q %q", payload, key)
	}
	env.pump(t)
	if !d.IsPersistent() {
		t.Fatal("chunk dep not persistent after pump")
	}
}

func TestGetCachesOnReadPath(t *testing.T) {
	env, res := newEnv(t, nil)
	loc, _, release, _ := env.cs.Put(TagData, "k", []byte("v"))
	res.live[loc] = "k"
	release()
	if _, _, err := env.cs.GetWithKey(loc); err != nil {
		t.Fatal(err)
	}
	before := env.cs.Cache().Stats()
	if _, _, err := env.cs.GetWithKey(loc); err != nil {
		t.Fatal(err)
	}
	after := env.cs.Cache().Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("second read should hit cache: %+v -> %+v", before, after)
	}
}

func TestChunksArePageAligned(t *testing.T) {
	env, res := newEnv(t, nil)
	ps := env.sched.Disk().Config().PageSize
	var locs []Locator
	for i := 0; i < 3; i++ {
		loc, _, release, err := env.cs.Put(TagData, "k", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		res.live[loc] = "k"
		release()
		locs = append(locs, loc)
	}
	for _, l := range locs {
		if l.Offset%ps != 0 {
			t.Fatalf("chunk not page aligned: %v", l)
		}
	}
}

func TestReclaimDropsGarbageKeepsLive(t *testing.T) {
	env, res := newEnv(t, nil)
	liveLoc, _, rel1, _ := env.cs.Put(TagData, "live", []byte("keep me"))
	res.live[liveLoc] = "live"
	rel1()
	deadLoc, _, rel2, _ := env.cs.Put(TagData, "dead", []byte("drop me"))
	rel2()
	_ = deadLoc // never registered as live: garbage
	env.pump(t)

	victim := liveLoc.Extent
	// The victim is the active extent; roll the active target forward first.
	for env.cs.ActiveExtent() == int(victim) {
		loc, _, rel, err := env.cs.Put(TagData, "fill", bytes.Repeat([]byte{9}, 400))
		if err != nil {
			t.Fatal(err)
		}
		res.live[loc] = "fill"
		rel()
	}
	env.pump(t)
	if err := env.cs.Reclaim(victim); err != nil {
		t.Fatalf("Reclaim: %v", err)
	}
	st := env.cs.Stats()
	if st.Evacuated == 0 {
		t.Fatal("live chunk not evacuated")
	}
	if st.GarbageDropped == 0 {
		t.Fatal("garbage not dropped")
	}
	// The live chunk must be readable at its new location.
	var newLoc Locator
	for l, k := range res.live {
		if k == "live" {
			newLoc = l
		}
	}
	if newLoc == liveLoc {
		t.Fatal("live chunk not relocated")
	}
	payload, _, err := env.cs.GetWithKey(newLoc)
	if err != nil || !bytes.Equal(payload, []byte("keep me")) {
		t.Fatalf("relocated chunk unreadable: %v %q", err, payload)
	}
	if env.em.Pointer(victim) != 0 {
		t.Fatal("victim not reset")
	}
}

func TestReclaimRefusesActivePinnedReclaiming(t *testing.T) {
	env, res := newEnv(t, nil)
	loc, _, release, _ := env.cs.Put(TagData, "k", []byte("v"))
	res.live[loc] = "k"
	// Pin held: extent busy.
	if err := env.cs.Reclaim(loc.Extent); !errors.Is(err, ErrBusy) {
		t.Fatalf("reclaim of active/pinned extent: %v", err)
	}
	release()
	// Still the active extent.
	if err := env.cs.Reclaim(loc.Extent); !errors.Is(err, ErrBusy) {
		t.Fatalf("reclaim of active extent: %v", err)
	}
}

func TestReclaimAbortsOnReadErrorFixed(t *testing.T) {
	env, res := newEnv(t, nil)
	loc, _, release, _ := env.cs.Put(TagData, "k", []byte("precious"))
	res.live[loc] = "k"
	release()
	env.pump(t)
	victim := loc.Extent
	for env.cs.ActiveExtent() == int(victim) {
		l2, _, rel, _ := env.cs.Put(TagData, "fill", bytes.Repeat([]byte{1}, 400))
		res.live[l2] = "fill"
		rel()
	}
	env.pump(t)
	env.sched.Disk().InjectFailOnce(victim)
	if err := env.cs.Reclaim(victim); !errors.Is(err, ErrAborted) {
		t.Fatalf("reclaim under IO error: %v", err)
	}
	// The chunk survives the aborted reclamation.
	payload, _, err := env.cs.GetWithKey(loc)
	if err != nil || !bytes.Equal(payload, []byte("precious")) {
		t.Fatalf("chunk lost by aborted reclaim: %v", err)
	}
}

func TestBug5DropsChunkOnReadError(t *testing.T) {
	bugs := faults.NewSet(faults.Bug5ReclaimIOErrorDrop)
	env, res := newEnv(t, bugs)
	loc, _, release, _ := env.cs.Put(TagData, "k", []byte("precious"))
	res.live[loc] = "k"
	release()
	env.pump(t)
	victim := loc.Extent
	for env.cs.ActiveExtent() == int(victim) {
		l2, _, rel, _ := env.cs.Put(TagData, "fill", bytes.Repeat([]byte{1}, 400))
		res.live[l2] = "fill"
		rel()
	}
	env.pump(t)
	env.sched.Disk().InjectFailOnce(victim)
	if err := env.cs.Reclaim(victim); err != nil {
		t.Fatalf("buggy reclaim should continue: %v", err)
	}
	// The live chunk on the unreadable page was treated as garbage; after
	// the reset its locator is dead.
	if _, _, err := env.cs.GetWithKey(loc); err == nil {
		t.Fatal("bug5: chunk should be lost after reset")
	}
}

func TestBug1SkipsPageAlignedFrame(t *testing.T) {
	bugs := faults.NewSet(faults.Bug1ReclaimOffByOne)
	env, res := newEnv(t, bugs)
	ps := env.sched.Disk().Config().PageSize
	// First chunk's frame exactly one page: payload = ps - overhead.
	payload1 := make([]byte, ps-FrameLen(len("a"), 0))
	locA, _, relA, _ := env.cs.Put(TagData, "a", payload1)
	res.live[locA] = "a"
	relA()
	if locA.Length != ps {
		t.Fatalf("frame length %d, want exactly one page %d", locA.Length, ps)
	}
	locB, _, relB, _ := env.cs.Put(TagData, "b", []byte("victim"))
	res.live[locB] = "b"
	relB()
	env.pump(t)
	victim := locA.Extent
	for env.cs.ActiveExtent() == int(victim) {
		l2, _, rel, _ := env.cs.Put(TagData, "fill", bytes.Repeat([]byte{1}, 400))
		res.live[l2] = "fill"
		rel()
	}
	env.pump(t)
	if err := env.cs.Reclaim(victim); err != nil {
		t.Fatal(err)
	}
	// Chunk B (immediately after the page-aligned frame) was skipped by the
	// off-by-one and destroyed by the reset.
	if _, ok := res.live[locB]; ok {
		if _, _, err := env.cs.GetWithKey(locB); err == nil {
			t.Fatal("bug1: chunk after page-aligned frame should be lost")
		}
	}
}

func TestBug2StaleCacheAfterReset(t *testing.T) {
	bugs := faults.NewSet(faults.Bug2CacheNotDrained)
	env, res := newEnv(t, bugs)
	loc, _, release, _ := env.cs.Put(TagData, "old", []byte("stale!"))
	release() // garbage: never registered live
	// Read it once so the cache holds it.
	if _, _, err := env.cs.GetWithKey(loc); err != nil {
		t.Fatal(err)
	}
	env.pump(t)
	victim := loc.Extent
	for env.cs.ActiveExtent() == int(victim) {
		l2, _, rel, _ := env.cs.Put(TagData, "fill", bytes.Repeat([]byte{1}, 400))
		res.live[l2] = "fill"
		rel()
	}
	env.pump(t)
	if err := env.cs.Reclaim(victim); err != nil {
		t.Fatal(err)
	}
	// Write a new chunk at the recycled locator.
	var newLoc Locator
	for {
		l2, _, rel, err := env.cs.Put(TagData, "new", []byte("fresh!"))
		if err != nil {
			t.Fatal(err)
		}
		res.live[l2] = "new"
		rel()
		if l2.Extent == victim && l2.Offset == loc.Offset {
			newLoc = l2
			break
		}
		if env.em.Pointer(victim) > loc.Offset {
			t.Skip("recycled offset not reproduced in this layout")
		}
	}
	payload, _, err := env.cs.GetWithKey(Locator{Extent: newLoc.Extent, Offset: newLoc.Offset, Length: loc.Length})
	if err == nil && bytes.Equal(payload, []byte("stale!")) {
		return // bug manifested: stale data served
	}
	// With identical frame sizes the cache key collides directly.
	payload2, _, err2 := env.cs.GetWithKey(newLoc)
	if err2 == nil && bytes.Equal(payload2, []byte("stale!")) {
		return
	}
	t.Fatal("bug2 did not serve stale cache data (layout assumptions changed?)")
}

func TestReclaimAutoPicksCandidates(t *testing.T) {
	env, res := newEnv(t, nil)
	ran, err := env.cs.ReclaimAuto()
	if err != nil || ran {
		t.Fatalf("nothing to reclaim: ran=%v err=%v", ran, err)
	}
	loc, _, rel, _ := env.cs.Put(TagData, "k", []byte("x"))
	res.live[loc] = "k"
	rel()
	env.pump(t)
	for env.cs.ActiveExtent() == int(loc.Extent) {
		l2, _, rel2, _ := env.cs.Put(TagData, "fill", bytes.Repeat([]byte{1}, 400))
		res.live[l2] = "fill"
		rel2()
	}
	env.pump(t)
	ran, err = env.cs.ReclaimAuto()
	if err != nil || !ran {
		t.Fatalf("auto reclaim: ran=%v err=%v", ran, err)
	}
}

func TestChunkTooBig(t *testing.T) {
	env, _ := newEnv(t, nil)
	big := make([]byte, env.em.Capacity())
	if _, _, _, err := env.cs.Put(TagData, "k", big); !errors.Is(err, ErrChunkTooBig) {
		t.Fatalf("oversized chunk: %v", err)
	}
}

func TestReseedDeterminism(t *testing.T) {
	env1, _ := newEnv(t, nil)
	env2, _ := newEnv(t, nil)
	env1.cs.Reseed(777)
	env2.cs.Reseed(777)
	l1, _, r1, _ := env1.cs.Put(TagData, "k", []byte("v"))
	l2, _, r2, _ := env2.cs.Put(TagData, "k", []byte("v"))
	r1()
	r2()
	if l1 != l2 {
		t.Fatalf("reseeded stores diverged: %v vs %v", l1, l2)
	}
	// The frames (including UUIDs) must be identical.
	b1 := make([]byte, l1.Length)
	b2 := make([]byte, l2.Length)
	_ = env1.em.Read(l1.Extent, l1.Offset, l1.Length, b1)
	_ = env2.em.Read(l2.Extent, l2.Offset, l2.Length, b2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("frames differ after identical reseed")
	}
}

func TestUUIDZeroBias(t *testing.T) {
	d, _ := disk.New(disk.DefaultConfig())
	sched := dep.NewScheduler(d, nil)
	em, _ := extent.NewManager(sched, extent.Config{}, nil, nil)
	cs := NewStore(em, Config{UUIDZeroBias: 1.0}, 1, nil, nil)
	u := cs.newUUID()
	if u != (UUID{}) {
		t.Fatalf("full bias should produce zero uuid: %v", u)
	}
	cs2 := NewStore(em, Config{UUIDZeroBias: 0}, 1, nil, nil)
	zero := 0
	for i := 0; i < 32; i++ {
		if cs2.newUUID() == (UUID{}) {
			zero++
		}
	}
	if zero > 0 {
		t.Fatal("unbiased generator produced zero uuid (astronomically unlikely)")
	}
}

func TestReclaimSurvivesCrashOrdering(t *testing.T) {
	// After reclaim + crash, either the old state or the new state must be
	// recovered — never a dangling index. (The full property is checked by
	// the conformance harness; this is the narrow unit version.)
	env, res := newEnv(t, nil)
	loc, _, rel, _ := env.cs.Put(TagData, "k", []byte("vv"))
	res.live[loc] = "k"
	rel()
	env.pump(t)
	victim := loc.Extent
	for env.cs.ActiveExtent() == int(victim) {
		l2, _, rel2, _ := env.cs.Put(TagData, "fill", bytes.Repeat([]byte{1}, 400))
		res.live[l2] = "fill"
		rel2()
	}
	env.pump(t)
	if err := env.cs.Reclaim(victim); err != nil {
		t.Fatal(err)
	}
	env.sched.Crash(rand.New(rand.NewSource(5)))
	// The quiesce inside Reclaim must have made the evacuation durable
	// before the reset could take effect.
	var newLoc Locator
	for l, k := range res.live {
		if k == "k" {
			newLoc = l
		}
	}
	buf := make([]byte, newLoc.Length)
	s2 := dep.NewScheduler(env.sched.Disk(), nil)
	m2, err := extent.Recover(s2, extent.Config{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Read(newLoc.Extent, newLoc.Offset, newLoc.Length, buf); err != nil {
		t.Fatalf("evacuated chunk unreadable after crash: %v", err)
	}
	if _, _, payload, err := DecodeFrame(buf); err != nil || !bytes.Equal(payload, []byte("vv")) {
		t.Fatalf("evacuated chunk corrupt: %v", err)
	}
}

// --- frame trailer edge cases and single-bit rot (scrub subsystem tests) ---

// TestFrameTrailerTable is the table-driven trailer property: a frame whose
// buffer stops anywhere short of the claimed length is ErrTruncated, trailing
// garbage past the frame is ignored, and damage inside the trailer maps to
// the specific sentinel for what broke (UUID echo vs CRC).
func TestFrameTrailerTable(t *testing.T) {
	uuid := UUID{0xAA, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	frame, err := EncodeFrame(TagData, "trailer-key", bytes.Repeat([]byte{0x5C}, 33), uuid)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error // nil means the decode must succeed
	}{
		{"truncated-last-byte", func(f []byte) []byte { return f[:len(f)-1] }, ErrTruncated},
		{"truncated-mid-uuid", func(f []byte) []byte { return f[:len(f)-uuidLen/2] }, ErrTruncated},
		{"truncated-whole-trailer", func(f []byte) []byte { return f[:len(f)-trailerFixedLen] }, ErrTruncated},
		{"truncated-mid-crc", func(f []byte) []byte { return f[:len(f)-uuidLen-2] }, ErrTruncated},
		{"oversized-trailing-garbage", func(f []byte) []byte {
			return append(append([]byte(nil), f...), 0xDE, 0xAD, 0xBE, 0xEF)
		}, nil},
		{"oversized-page-padding", func(f []byte) []byte {
			return append(append([]byte(nil), f...), make([]byte, 4096)...)
		}, nil},
		{"trailer-uuid-flipped", func(f []byte) []byte {
			out := append([]byte(nil), f...)
			out[len(out)-1] ^= 0xFF
			return out
		}, ErrUUIDMissing},
		{"crc-byte-flipped", func(f []byte) []byte {
			out := append([]byte(nil), f...)
			out[len(out)-trailerFixedLen] ^= 0xFF
			return out
		}, ErrBadCRC},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, key, payload, err := DecodeFrame(tc.mutate(frame))
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if key != "trailer-key" || len(payload) != 33 {
					t.Fatalf("decode mismatch: %q %d bytes", key, len(payload))
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestFrameSingleBitFlipIsBadCRC: one flipped bit anywhere in the key or
// payload region must surface as exactly ErrBadCRC — the CRC is the layer
// that catches body rot, and it must catch the minimal possible rot.
func TestFrameSingleBitFlipIsBadCRC(t *testing.T) {
	uuid := UUID{7}
	payload := bytes.Repeat([]byte{0x31}, 40)
	frame, err := EncodeFrame(TagData, "bit-key", payload, uuid)
	if err != nil {
		t.Fatal(err)
	}
	bodyStart := headerFixedLen // key then payload
	bodyEnd := len(frame) - trailerFixedLen
	for pos := bodyStart; pos < bodyEnd; pos++ {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), frame...)
			bad[pos] ^= 1 << bit
			_, _, _, err := DecodeFrame(bad)
			if !errors.Is(err, ErrBadCRC) {
				t.Fatalf("flip byte %d bit %d: got %v, want ErrBadCRC", pos, bit, err)
			}
		}
	}
}

// --- quarantine path ---

func TestQuarantineRefusesReads(t *testing.T) {
	env, res := newEnv(t, nil)
	loc, _, release, err := env.cs.Put(TagData, "qk", []byte("still fine bytes"))
	if err != nil {
		t.Fatal(err)
	}
	res.live[loc] = "qk"
	release()
	// Warm the cache: quarantine must not serve the cached copy either.
	if _, _, err := env.cs.GetWithKey(loc); err != nil {
		t.Fatal(err)
	}
	env.cs.Quarantine(loc)
	if !env.cs.IsQuarantined(loc) || env.cs.QuarantineCount() != 1 {
		t.Fatal("quarantine not recorded")
	}
	if _, _, err := env.cs.GetWithKey(loc); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined read: %v", err)
	}
	if _, err := env.cs.Get(loc); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined Get: %v", err)
	}
	// Idempotent: re-quarantining the same locator counts once.
	env.cs.Quarantine(loc)
	if env.cs.QuarantineCount() != 1 || env.cs.Stats().Quarantined != 1 {
		t.Fatalf("double quarantine: count=%d stats=%+v", env.cs.QuarantineCount(), env.cs.Stats())
	}
	// Other locators stay readable.
	loc2, _, rel2, err := env.cs.Put(TagData, "ok", []byte("unaffected"))
	if err != nil {
		t.Fatal(err)
	}
	res.live[loc2] = "ok"
	rel2()
	if _, _, err := env.cs.GetWithKey(loc2); err != nil {
		t.Fatalf("unquarantined read: %v", err)
	}
}

func TestQuarantineLiftedByExtentReset(t *testing.T) {
	env, res := newEnv(t, nil)
	loc, _, release, err := env.cs.Put(TagData, "gone", []byte("garbage soon"))
	if err != nil {
		t.Fatal(err)
	}
	release()
	env.cs.Quarantine(loc)
	// Roll the active write extent forward so loc's extent can be reclaimed.
	for {
		fl, _, frel, err := env.cs.Put(TagData, "fill", bytes.Repeat([]byte{2}, 400))
		if err != nil {
			t.Fatal(err)
		}
		res.live[fl] = "fill"
		frel()
		if fl.Extent != loc.Extent {
			break
		}
	}
	// The chunk is garbage (not in the resolver's live set), so reclaiming
	// its extent resets it; the reset lifts the quarantine — the locator
	// names fresh space now, not the rotted frame.
	env.pump(t)
	if err := env.cs.Reclaim(loc.Extent); err != nil {
		t.Fatal(err)
	}
	if env.cs.IsQuarantined(loc) {
		t.Fatal("quarantine survived extent reset")
	}
	_ = res
}

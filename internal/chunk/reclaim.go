package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/obs"
)

// TestHookGarbageRun, when non-nil, observes every index-run chunk dropped
// as garbage (diagnostics for the bug #14 experiments).
var TestHookGarbageRun func(Locator)

// candidate is a decodable frame found by the reclamation scan.
type candidate struct {
	loc     Locator
	tag     Tag
	key     string
	payload []byte
}

// Reclaim garbage-collects one extent (§2.1): scan it for chunks, evacuate
// the ones still referenced (reverse lookup through the registered
// resolvers), update their references, and finally reset the extent's write
// pointer — ordered so that the reset only persists after the evacuations
// and reference updates do.
//
// The scan is deliberately paranoid: it attempts a decode at every page
// boundary and trusts only frames whose trailing UUID and CRC validate, so
// stale frames left by torn writes cannot make it skip over live chunks.
// Three of the paper's seeded bugs weaken exactly this paranoia:
//
//   - bug #1 reintroduces a length-skipping "optimization" with an
//     off-by-one for frames that end exactly on a page boundary;
//   - bug #5 treats a transient read IO error as garbage instead of
//     aborting the reclamation;
//   - bug #10 validates only the portion of the trailing UUID that shares a
//     page with the payload end and skips the CRC — so a chunk torn by a
//     crash can be "successfully" decoded from stale bytes (§5's example).
func (s *Store) Reclaim(victim disk.ExtentID) error {
	ps := s.pageSize()
	start := s.obs.Now()

	s.mu.Lock()
	if int(victim) == s.active || s.pins[victim] > 0 || s.reclaiming[victim] {
		s.mu.Unlock()
		return fmt.Errorf("%w: extent %d", ErrBusy, victim)
	}
	s.reclaiming[victim] = true
	s.mu.Unlock()
	s.met.reclaims.Inc()
	if s.obs.Tracing() {
		s.obs.Record("chunk", "reclaim_begin", fmt.Sprintf("e%d", victim), "ok", 0)
	}
	var bg *obs.BgSpan
	if tr := s.obs.Tracer(); tr != nil {
		bg = tr.Background("chunk", fmt.Sprintf("reclaim e%d", victim))
	}

	finish := func(err error) error {
		bg.End()
		s.mu.Lock()
		delete(s.reclaiming, victim)
		s.mu.Unlock()
		if err != nil {
			s.met.reclaimAborts.Inc()
		}
		s.met.reclaimDur.Observe(s.obs.Now() - start)
		if s.obs.Tracing() {
			s.obs.Record("chunk", "reclaim_end", fmt.Sprintf("e%d", victim), obs.Outcome(err), s.obs.Now()-start)
		}
		return err
	}

	ptr := s.em.Pointer(victim)
	if ptr == 0 {
		return finish(nil)
	}

	// Stream the extent page by page so injected read errors hit at page
	// granularity.
	buf := make([]byte, ptr)
	unreadable := make(map[int]bool) // pages that failed to read (bug #5 path)
	for off := 0; off < ptr; off += ps {
		n := ps
		if off+n > ptr {
			n = ptr - off
		}
		if err := s.em.Read(victim, off, n, buf[off:off+n]); err != nil {
			if s.bugs.Enabled(faults.Bug5ReclaimIOErrorDrop) && errors.Is(err, disk.ErrInjected) {
				// Seeded bug #5: a transient read failure during the scan
				// was treated as a corrupt region rather than aborting, so
				// any live chunk on this page was forgotten and destroyed by
				// the subsequent extent reset.
				s.cov.Hit("chunk.bug5.error_as_garbage")
				unreadable[off/ps] = true
				continue
			}
			s.cov.Hit("chunk.reclaim.abort_ioerror")
			return finish(fmt.Errorf("%w: scan read: %v", ErrAborted, err))
		}
	}

	cands := s.scanForFrames(buf, ptr, ps, unreadable, victim)

	// Evacuate live candidates. Resolvers and appends are invoked without
	// holding s.mu (they re-enter the store and the index).
	var resetWaits []*dep.Dependency
	for _, c := range cands {
		s.mu.Lock()
		resolver := s.resolvers[c.tag]
		s.mu.Unlock()
		if resolver == nil {
			return finish(fmt.Errorf("%w: tag %v", ErrNoResolver, c.tag))
		}
		if !resolver.ChunkLive(c.key, c.loc) {
			s.met.garbageDropped.Inc()
			s.cov.Hit("chunk.reclaim.garbage")
			if c.tag == TagIndexRun {
				s.cov.Hit("chunk.reclaim.garbage_run")
				s.cov.Hit("chunk.reclaim.garbage_run@" + c.loc.String())
				if TestHookGarbageRun != nil {
					TestHookGarbageRun(c.loc)
				}
			}
			continue
		}
		newLoc, newDep, release, err := s.put(c.tag, c.key, c.payload, true, nil)
		if err != nil {
			return finish(fmt.Errorf("%w: evacuation append: %v", ErrAborted, err))
		}
		relocated, rdep, err := resolver.RelocateChunk(c.key, c.loc, newLoc, newDep)
		release()
		if err != nil {
			return finish(fmt.Errorf("%w: relocate: %v", ErrAborted, err))
		}
		if !relocated {
			// Reference changed concurrently; the evacuated copy is garbage
			// and a future reclamation of its extent will drop it.
			s.cov.Hit("chunk.reclaim.relocate_lost_race")
			continue
		}
		s.met.evacuated.Inc()
		s.met.bytesEvacuated.Add(uint64(len(c.payload)))
		s.cov.Hit("chunk.reclaim.evacuated")
		resetWaits = append(resetWaits, dep.All(newDep, rdep))
		// Invalidate the old location so stale cached data cannot outlive
		// the reset.
		s.cache.Invalidate(c.loc.cacheKey())
	}

	// The reset must wait until the index state that unreferences this
	// extent's garbage chunks is durable: a dropped chunk may be garbage
	// only because of a buffered delete or overwrite, and a crash that
	// loses that update would leave the recovered index pointing into the
	// reset extent. SyncReferences flushes buffered reference state and
	// returns a dependency covering it (and, transitively, all earlier
	// index state).
	{
		s.mu.Lock()
		resolvers := make([]Resolver, 0, len(s.resolvers))
		for _, tag := range []Tag{TagData, TagIndexRun} {
			if r := s.resolvers[tag]; r != nil {
				resolvers = append(resolvers, r)
			}
		}
		s.mu.Unlock()
		for _, r := range resolvers {
			sdep, err := r.SyncReferences()
			if err != nil {
				return finish(fmt.Errorf("%w: sync references: %v", ErrAborted, err))
			}
			resetWaits = append(resetWaits, sdep)
		}
	}

	// Quiesce: drive the IO scheduler until the evacuations, reference
	// updates, and everything they depend on are durable. Resetting an
	// extent whose evacuated data is still buffered would either lose that
	// data (if the buffered writes were cancelled) or let the dependency
	// graph tie the reset to writes that in turn wait on it. A synchronous
	// barrier here is the coarse-but-sound ordering enforcement; seeded
	// bug #7 omits it (and the reset gate below), reintroducing the
	// soft/hard write pointer mismatch.
	if !s.bugs.Enabled(faults.Bug7SoftHardPointerSkew) {
		if _, err := s.em.Flush(); err != nil {
			return finish(fmt.Errorf("%w: pre-reset flush: %v", ErrAborted, err))
		}
		if err := s.em.Scheduler().Pump(); err != nil {
			return finish(fmt.Errorf("%w: pre-reset quiesce: %v", ErrAborted, err))
		}
	}

	// Reset the extent. The reset record — and through the extent manager's
	// gate, every subsequent append to this extent — waits for the
	// evacuations and reference updates to persist (already durable after
	// the quiesce, so these waits are satisfied immediately).
	if _, err := s.em.Reset(victim, resetWaits...); err != nil {
		return finish(fmt.Errorf("%w: reset: %v", ErrAborted, err))
	}
	if s.bugs.Enabled(faults.Bug2CacheNotDrained) {
		// Seeded bug #2: the buffer cache was not drained after the reset,
		// so recycled locators could serve the previous chunk's data.
		s.cov.Hit("chunk.bug2.skip_drain")
	} else {
		s.cache.DrainExtent(victim)
	}
	s.mu.Lock()
	s.clearQuarantineLocked(victim)
	s.mu.Unlock()
	s.met.extentsRecycled.Inc()
	s.cov.Hit("chunk.reclaim.reset")
	return finish(nil)
}

// scanForFrames walks the extent image looking for decodable frames.
func (s *Store) scanForFrames(buf []byte, ptr, ps int, unreadable map[int]bool, victim disk.ExtentID) []candidate {
	var cands []candidate
	bug1 := s.bugs.Enabled(faults.Bug1ReclaimOffByOne)
	bug10 := s.bugs.Enabled(faults.Bug10UUIDCollision)
	for p := 0; p*ps < ptr; p++ {
		off := p * ps
		if unreadable[p] {
			continue
		}
		h, err := ParseHeader(buf[off:])
		if err != nil {
			continue
		}
		flen := h.FrameLen()
		if off+flen > ptr {
			s.cov.Hit("chunk.scan.overlong_frame")
			continue
		}
		var key string
		var payload []byte
		if bug10 {
			key, payload, err = decodeFrameLax(buf[off:off+flen], h, off, ps)
			if err == nil {
				s.cov.Hit("chunk.bug10.lax_accept")
			}
		} else {
			_, key, payload, err = DecodeFrame(buf[off : off+flen])
		}
		if err != nil {
			s.met.corruptSkipped.Inc()
			s.cov.Hit("chunk.scan.corrupt_skipped")
			continue
		}
		cands = append(cands, candidate{
			loc:     Locator{Extent: victim, Offset: off, Length: flen},
			tag:     h.Tag,
			key:     key,
			payload: append([]byte(nil), payload...),
		})
		if bug1 {
			// Seeded bug #1: skip the pages this frame consumed. The loop's
			// own p++ makes the combined advance flen/ps + 1 pages — correct
			// whenever the frame ends mid-page, one page too many when the
			// frame ends exactly on a page boundary, silently skipping (and
			// thus destroying) the chunk that starts there.
			p += flen / ps
			s.cov.Hit("chunk.bug1.length_skip")
		} else if bug10 {
			// The buggy scan also trusted the accepted frame's length and
			// skipped past it ("reclamation does not expect overlapping
			// chunks", §5) — so a stale frame accepted via the lax check
			// swallows the live chunks its claimed extent overlaps.
			p += (flen+ps-1)/ps - 1
		}
	}
	return cands
}

// decodeFrameLax is the bug #10 validation: it compares only the trailing
// UUID bytes that live on the same page as the start of the trailer, and
// performs no CRC check. A chunk whose trailer spills onto a page that a
// crash tore away therefore validates against stale bytes (§5's example:
// "this logic fails if the trailing bytes of the first chunk's UUID ... are
// the same as the magic bytes").
func decodeFrameLax(frame []byte, h Header, extOff, ps int) (string, []byte, error) {
	total := h.FrameLen()
	trailerStart := total - uuidLen
	absTrailer := extOff + trailerStart
	cmp := ps - absTrailer%ps
	// The buggy "cheap" validation compared only a short prefix of the
	// trailing UUID — and never past the page the trailer starts on.
	if cmp > 4 {
		cmp = 4
	}
	for i := 0; i < cmp; i++ {
		if frame[trailerStart+i] != h.UUID[i] {
			return "", nil, ErrUUIDMissing
		}
	}
	key := string(frame[headerFixedLen : headerFixedLen+h.KeyLen])
	payload := frame[headerFixedLen+h.KeyLen : headerFixedLen+h.KeyLen+h.PayloadLen]
	return key, payload, nil
}

// VerifyFrameBytes re-validates raw frame bytes; exported for the
// serialization-robustness property tests (§7): for any byte sequence it
// must return an error or a decoded frame, never panic.
func VerifyFrameBytes(buf []byte) error {
	_, _, _, err := DecodeFrame(buf)
	return err
}

// ChecksumRegion is a helper the examples use to show frame internals.
func ChecksumRegion(buf []byte) uint32 {
	return crc32.ChecksumIEEE(buf)
}

// EncodeLocator serializes a locator (used by the KV layer's index entries).
func EncodeLocator(l Locator) []byte {
	out := make([]byte, 0, 12)
	out = binary.BigEndian.AppendUint32(out, uint32(l.Extent))
	out = binary.BigEndian.AppendUint32(out, uint32(l.Offset))
	out = binary.BigEndian.AppendUint32(out, uint32(l.Length))
	return out
}

// DecodeLocator parses a locator serialized by EncodeLocator.
func DecodeLocator(buf []byte) (Locator, []byte, error) {
	if len(buf) < 12 {
		return Locator{}, nil, fmt.Errorf("chunk: short locator: %d bytes", len(buf))
	}
	l := Locator{
		Extent: disk.ExtentID(binary.BigEndian.Uint32(buf[0:4])),
		Offset: int(binary.BigEndian.Uint32(buf[4:8])),
		Length: int(binary.BigEndian.Uint32(buf[8:12])),
	}
	return l, buf[12:], nil
}

// Package chunk implements ShardStore's chunk store (§2.1 of the paper): all
// persistent data — shard data and the LSM tree's own runs alike — is stored
// as framed chunks appended to extents. The store offers Put/Get by opaque
// locator and a reclamation (garbage collection) task that evacuates live
// chunks off an extent, updates their references through per-tag resolvers,
// and resets the extent for reuse with crash-consistent ordering.
package chunk

import (
	"errors"
	"fmt"
	"math/rand"

	"shardstore/internal/buffercache"
	"shardstore/internal/coverage"
	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/extent"
	"shardstore/internal/faults"
	"shardstore/internal/obs"
	"shardstore/internal/vsync"
)

// Store-level errors.
var (
	ErrBusy        = errors.New("chunk: extent busy (active, pinned, or reclaiming)")
	ErrNoResolver  = errors.New("chunk: no resolver registered for tag")
	ErrChunkTooBig = errors.New("chunk: frame exceeds extent capacity")
	ErrAborted     = errors.New("chunk: reclamation aborted")
	ErrQuarantined = errors.New("chunk: locator quarantined (failed scrub verification)")
)

// Locator is the opaque pointer to a stored chunk (§2.1: "locators are
// opaque chunk identifiers and used as pointers").
type Locator struct {
	Extent disk.ExtentID
	Offset int
	Length int // exact frame length (excluding page padding)
}

func (l Locator) String() string {
	return fmt.Sprintf("chunk@e%d+%d:%d", l.Extent, l.Offset, l.Length)
}

func (l Locator) cacheKey() buffercache.Key {
	return buffercache.Key{Extent: l.Extent, Offset: l.Offset}
}

// Resolver performs reclamation's reverse lookup for one chunk tag (§2.1):
// the index for shard data chunks, the LSM metadata for index-run chunks.
type Resolver interface {
	// ChunkLive reports whether the chunk at loc is still referenced.
	ChunkLive(key string, loc Locator) bool
	// RelocateChunk atomically updates the reference from old to newLoc,
	// provided the reference still points at old. The returned dependency
	// covers the reference update; the extent reset waits on it. relocated
	// is false if the reference changed concurrently (the evacuated copy
	// then simply becomes garbage).
	RelocateChunk(key string, old, newLoc Locator, newDep *dep.Dependency) (relocated bool, d *dep.Dependency, err error)
	// SyncReferences flushes any buffered reference updates so their
	// dependencies are bound to real writes (e.g. the index memtable is
	// flushed to a run chunk). Reclamation calls this after relocations and
	// before resetting the extent, so the reset's wait set is fully bound.
	SyncReferences() (*dep.Dependency, error)
}

// Config tunes the chunk store.
type Config struct {
	// UUIDGen supplies per-chunk UUIDs. Defaults to the store's seeded RNG.
	// Harnesses inject biased generators (§4.2 argument bias) to make the
	// §5 UUID-collision scenario reachable.
	UUIDGen func() UUID
	// UUIDZeroBias is the probability that a generated UUID is all zeros —
	// the §4.2-style corner-case bias that makes the §5 stale-byte collision
	// (bug #10) reachable by testing: zero UUIDs collide with never-written
	// regions and frame padding.
	UUIDZeroBias float64
	// CacheCapacity is the buffer cache size in chunks. The §8.3 anecdote —
	// a cache so large that tests never reached the miss path — is
	// reproduced by tuning this.
	CacheCapacity int
	// Obs is the observability registry for metrics and tracing. Nil gives
	// the store (and its buffer cache) a private registry so Stats keeps
	// working standalone.
	Obs *obs.Obs
}

// Stats counts chunk store activity. It is a thin snapshot of the store's
// obs registry counters.
type Stats struct {
	Puts            uint64
	Gets            uint64
	GetErrors       uint64
	Reclaims        uint64
	ReclaimAborts   uint64
	Evacuated       uint64
	GarbageDropped  uint64
	CorruptSkipped  uint64
	BytesEvacuated  uint64
	ExtentsRecycled uint64
	Quarantined     uint64
}

// chunkMetrics holds the obs handles, resolved once at construction so the
// hot paths never touch the registry map.
type chunkMetrics struct {
	puts            *obs.Counter
	gets            *obs.Counter
	getErrors       *obs.Counter
	reclaims        *obs.Counter
	reclaimAborts   *obs.Counter
	evacuated       *obs.Counter
	garbageDropped  *obs.Counter
	corruptSkipped  *obs.Counter
	bytesEvacuated  *obs.Counter
	extentsRecycled *obs.Counter
	quarantined     *obs.Counter
	putLat          *obs.Histogram
	getLat          *obs.Histogram
	reclaimDur      *obs.Histogram
}

func newChunkMetrics(o *obs.Obs) chunkMetrics {
	return chunkMetrics{
		puts:            o.Counter("chunk.puts"),
		gets:            o.Counter("chunk.gets"),
		getErrors:       o.Counter("chunk.get_errors"),
		reclaims:        o.Counter("chunk.reclaims"),
		reclaimAborts:   o.Counter("chunk.reclaim_aborts"),
		evacuated:       o.Counter("chunk.evacuated"),
		garbageDropped:  o.Counter("chunk.garbage_dropped"),
		corruptSkipped:  o.Counter("chunk.corrupt_skipped"),
		bytesEvacuated:  o.Counter("chunk.bytes_evacuated"),
		extentsRecycled: o.Counter("chunk.extents_recycled"),
		quarantined:     o.Counter("chunk.quarantined"),
		putLat:          o.Histogram("chunk.put_lat"),
		getLat:          o.Histogram("chunk.get_lat"),
		reclaimDur:      o.Histogram("chunk.reclaim_dur"),
	}
}

// Store is the chunk store for one disk.
type Store struct {
	mu   vsync.Mutex
	em   *extent.Manager
	cov  *coverage.Registry
	bugs *faults.Set
	cfg  Config
	obs  *obs.Obs
	met  chunkMetrics

	cache *buffercache.Cache
	rng   *rand.Rand

	// active is the extent new chunks are appended to; none when negative.
	active int
	// pins counts in-flight chunks per extent whose references are not yet
	// registered; reclamation refuses pinned extents (the bug #14 guard).
	pins map[disk.ExtentID]int
	// reclaiming marks extents mid-reclamation; appends avoid them.
	reclaiming map[disk.ExtentID]bool
	// quarantined marks locators whose frames failed scrub verification;
	// reads refuse them so rotted bytes are never served, and an extent
	// reset clears its entries (the storage is reused for new chunks).
	quarantined map[Locator]bool

	resolvers map[Tag]Resolver
}

// NewStore creates a chunk store over em. seed drives internal randomness
// (UUID generation, victim selection) deterministically.
func NewStore(em *extent.Manager, cfg Config, seed int64, cov *coverage.Registry, bugs *faults.Set) *Store {
	o := cfg.Obs
	if o == nil {
		o = obs.New(nil)
	}
	s := &Store{
		em:          em,
		cov:         cov,
		bugs:        bugs,
		cfg:         cfg,
		obs:         o,
		met:         newChunkMetrics(o),
		cache:       buffercache.New(cfg.CacheCapacity, cov, o),
		rng:         rand.New(rand.NewSource(seed)),
		active:      -1,
		pins:        make(map[disk.ExtentID]int),
		reclaiming:  make(map[disk.ExtentID]bool),
		quarantined: make(map[Locator]bool),
		resolvers:   make(map[Tag]Resolver),
	}
	return s
}

// RegisterResolver installs the reverse-lookup resolver for tag.
func (s *Store) RegisterResolver(tag Tag, r Resolver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resolvers[tag] = r
}

// Reseed re-seeds the store's internal RNG. Harnesses call this before every
// operation with an op-specific tag so that minimized op sequences replay
// with identical internal randomness (§4.3 determinism).
func (s *Store) Reseed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rng = rand.New(rand.NewSource(seed))
}

// Stats returns a snapshot of the counters (reading the obs registry).
func (s *Store) Stats() Stats {
	return Stats{
		Puts:            s.met.puts.Value(),
		Gets:            s.met.gets.Value(),
		GetErrors:       s.met.getErrors.Value(),
		Reclaims:        s.met.reclaims.Value(),
		ReclaimAborts:   s.met.reclaimAborts.Value(),
		Evacuated:       s.met.evacuated.Value(),
		GarbageDropped:  s.met.garbageDropped.Value(),
		CorruptSkipped:  s.met.corruptSkipped.Value(),
		BytesEvacuated:  s.met.bytesEvacuated.Value(),
		ExtentsRecycled: s.met.extentsRecycled.Value(),
		Quarantined:     s.met.quarantined.Value(),
	}
}

// Obs exposes the store's observability registry.
func (s *Store) Obs() *obs.Obs { return s.obs }

// Cache exposes the buffer cache (for stats and harness drains).
func (s *Store) Cache() *buffercache.Cache { return s.cache }

func (s *Store) newUUID() UUID {
	if s.cfg.UUIDGen != nil {
		return s.cfg.UUIDGen()
	}
	// The rng is shared mutable state: put() calls newUUID before taking the
	// store lock, and concurrent puts to the same disk (the rpc server's
	// pipelined dispatch) would otherwise race on it — as would Reseed's
	// pointer swap.
	s.mu.Lock()
	defer s.mu.Unlock()
	var u UUID
	if s.cfg.UUIDZeroBias > 0 && s.rng.Float64() < s.cfg.UUIDZeroBias {
		return u
	}
	for i := range u {
		u[i] = byte(s.rng.Intn(256))
	}
	return u
}

// pageSize returns the disk page size.
func (s *Store) pageSize() int { return s.em.Scheduler().Disk().Config().PageSize }

// padTo pads buf with zeros to a page multiple: chunks are page aligned so a
// torn page corrupts at most the chunks that actually touch it, and the
// reclamation scan can walk page boundaries.
func (s *Store) padTo(buf []byte) []byte {
	ps := s.pageSize()
	rem := len(buf) % ps
	if rem == 0 {
		return buf
	}
	return append(buf, make([]byte, ps-rem)...)
}

// ensureSpaceLocked returns an extent with room for need bytes, switching or
// allocating the active extent as required. GC-critical appends
// (evacuations, index runs) may consume the reserved headroom extent but
// must avoid extents whose reset record is not yet durable: an extent reset
// waits on its evacuations, so placing an evacuation behind another pending
// reset's gate could tie the two resets into a cycle. Ordinary data puts
// keep one free extent in reserve so reclamation always has somewhere to
// evacuate. Caller holds s.mu.
func (s *Store) ensureSpaceLocked(need int, critical bool, avoid map[disk.ExtentID]bool) (disk.ExtentID, error) {
	cap := s.em.Capacity()
	if need > cap {
		return 0, fmt.Errorf("%w: %d > %d", ErrChunkTooBig, need, cap)
	}
	usable := func(ext disk.ExtentID) bool {
		if avoid[ext] || s.reclaiming[ext] || s.em.Pointer(ext)+need > cap {
			return false
		}
		return !critical || !s.em.ResetGatePending(ext)
	}
	// Reserve GC headroom: ordinary data puts must not consume the last
	// writable extent, or reclamation (and the index flushes it depends on)
	// would have nowhere to write and a full disk could never recover
	// space. "Writable" counts unallocated extents and owned extents with
	// room (reset extents return to the pool with their pointer at zero).
	if !critical {
		writable := s.em.FreeCount()
		for _, ext := range s.em.OwnedExtents(extent.OwnerData) {
			if usable(ext) {
				writable++
			}
		}
		if writable <= 1 {
			s.cov.Hit("chunk.headroom_refused")
			return 0, fmt.Errorf("%w: last writable extent reserved for reclamation", extent.ErrNoFreeExtent)
		}
	}
	if s.active >= 0 {
		ext := disk.ExtentID(s.active)
		if usable(ext) {
			return ext, nil
		}
	}
	// Reuse an owned data extent with room (reset extents come back here).
	for _, ext := range s.em.OwnedExtents(extent.OwnerData) {
		if usable(ext) {
			s.active = int(ext)
			s.cov.Hit("chunk.active_switch")
			return ext, nil
		}
	}
	ext, err := s.em.Allocate(extent.OwnerData)
	if err != nil {
		return 0, err
	}
	s.active = int(ext)
	s.cov.Hit("chunk.allocate_extent")
	return ext, nil
}

// Put stores payload as a new chunk owned by (tag, key) and returns its
// locator, the dependency covering the chunk write (data pages plus the soft
// write pointer update, §2.2), and a release function. The caller must hold
// the release until the chunk's reference (index entry or metadata) is
// registered: it pins the extent against reclamation, closing the window
// where a freshly written chunk is invisible to the reverse lookup — the
// race at the heart of the paper's bug #14.
func (s *Store) Put(tag Tag, key string, payload []byte, waits ...*dep.Dependency) (Locator, *dep.Dependency, func(), error) {
	return s.put(tag, key, payload, false, nil, waits...)
}

// PutAvoiding is Put with extent-placement constraints: the chunk is never
// appended to an extent in avoid. It is how replicated writes land each copy
// on a distinct extent (so one rotted extent cannot take out every replica)
// and how scrub repair places the healed copy away from the survivors.
func (s *Store) PutAvoiding(tag Tag, key string, payload []byte, avoid []disk.ExtentID, waits ...*dep.Dependency) (Locator, *dep.Dependency, func(), error) {
	var m map[disk.ExtentID]bool
	if len(avoid) > 0 {
		m = make(map[disk.ExtentID]bool, len(avoid))
		for _, e := range avoid {
			m[e] = true
		}
	}
	return s.put(tag, key, payload, false, m, waits...)
}

// put implements Put; forEvacuation selects the reset-gate-avoiding
// placement policy used by reclamation, avoid excludes extents from
// placement (replica spreading).
func (s *Store) put(tag Tag, key string, payload []byte, forEvacuation bool, avoid map[disk.ExtentID]bool, waits ...*dep.Dependency) (Locator, *dep.Dependency, func(), error) {
	start := s.obs.Now()
	uuid := s.newUUID()
	// Allocate the frame with page-padded capacity up front: padTo then
	// extends in place and the buffer passes to the scheduler whole, so the
	// payload is copied exactly once on its way to the writeback queue.
	flen := FrameLen(len(key), len(payload))
	ps := s.pageSize()
	paddedCap := (flen + ps - 1) / ps * ps
	frame, err := AppendFrame(make([]byte, 0, paddedCap), tag, key, payload, uuid)
	if err != nil {
		return Locator{}, nil, nil, err
	}
	padded := s.padTo(frame)

	s.mu.Lock()
	// Evacuations and index-run writes are GC- and metadata-critical: they
	// may consume the reserved headroom extent; ordinary data puts may not.
	critical := forEvacuation || tag == TagIndexRun
	ext, err := s.ensureSpaceLocked(len(padded), critical, avoid)
	if err != nil {
		s.mu.Unlock()
		return Locator{}, nil, nil, err
	}
	off, d, err := s.em.Append(fmt.Sprintf("%s chunk %q", tag, key), ext, padded, waits...)
	if err != nil {
		s.mu.Unlock()
		return Locator{}, nil, nil, err
	}
	s.pins[ext]++
	loc := Locator{Extent: ext, Offset: off, Length: flen}
	s.mu.Unlock()
	s.met.puts.Inc()
	s.met.putLat.Observe(s.obs.Now() - start)
	if s.obs.Tracing() {
		s.obs.Record("chunk", "put", loc.String(), "ok", s.obs.Now()-start)
	}

	released := false
	release := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if !released {
			released = true
			s.pins[ext]--
		}
	}
	return loc, d, release, nil
}

// Get reads and validates the chunk at loc, returning its payload.
func (s *Store) Get(loc Locator) ([]byte, error) {
	payload, _, err := s.GetWithKey(loc)
	return payload, err
}

// GetWithKey reads the chunk at loc, returning payload and owning key. The
// cache is populated on the read path (no write-allocate): entries record
// the owning key so callers can validate that a locator still names the
// chunk they meant (the bug #11 guard in the store layer).
func (s *Store) GetWithKey(loc Locator) ([]byte, string, error) {
	start := s.obs.Now()
	payload, key, err := s.getWithKey(loc)
	if err != nil {
		s.met.getErrors.Inc()
	} else {
		s.met.gets.Inc()
		s.met.getLat.Observe(s.obs.Now() - start)
	}
	if s.obs.Tracing() {
		s.obs.Record("chunk", "get", loc.String(), obs.Outcome(err), s.obs.Now()-start)
	}
	return payload, key, err
}

func (s *Store) getWithKey(loc Locator) ([]byte, string, error) {
	s.mu.Lock()
	if s.quarantined[loc] {
		s.mu.Unlock()
		s.cov.Hit("chunk.get.quarantined")
		return nil, "", fmt.Errorf("%w: %v", ErrQuarantined, loc)
	}
	s.mu.Unlock()
	if cached, owner := s.cache.Get(loc.cacheKey()); cached != nil {
		return append([]byte(nil), cached...), owner, nil
	}
	buf := make([]byte, loc.Length)
	if err := s.em.Read(loc.Extent, loc.Offset, loc.Length, buf); err != nil {
		return nil, "", fmt.Errorf("chunk: read %v: %w", loc, err)
	}
	_, key, payload, err := DecodeFrame(buf)
	if err != nil {
		s.cov.Hit("chunk.get.corrupt")
		return nil, "", fmt.Errorf("chunk: decode %v: %w", loc, err)
	}
	s.cache.Insert(loc.cacheKey(), key, payload)
	return append([]byte(nil), payload...), key, nil
}

// InvalidateCached drops any cached entry for loc (used by the store layer
// when a locator is discovered to be stale).
func (s *Store) InvalidateCached(loc Locator) {
	s.cache.Invalidate(loc.cacheKey())
}

// Quarantine marks loc as failed-verification: subsequent reads return
// ErrQuarantined instead of serving bytes that no longer match their CRC.
// The cached copy (which may predate the rot) is dropped too — quarantine
// means "this locator is not trustworthy", not "serve the old bytes".
// Resetting the extent lifts the quarantine for its locators.
func (s *Store) Quarantine(loc Locator) {
	s.cache.Invalidate(loc.cacheKey())
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.quarantined[loc] {
		s.quarantined[loc] = true
		s.met.quarantined.Inc()
		s.cov.Hit("chunk.quarantine")
		if s.obs.Tracing() {
			s.obs.Record("chunk", "quarantine", loc.String(), "ok", 0)
		}
	}
}

// IsQuarantined reports whether loc is quarantined.
func (s *Store) IsQuarantined(loc Locator) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined[loc]
}

// QuarantineCount returns the number of currently quarantined locators.
func (s *Store) QuarantineCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.quarantined)
}

// clearQuarantineLocked lifts quarantine for every locator on ext; called
// after an extent reset recycles the storage. Caller holds s.mu.
func (s *Store) clearQuarantineLocked(ext disk.ExtentID) {
	for loc := range s.quarantined {
		if loc.Extent == ext {
			delete(s.quarantined, loc)
		}
	}
}

// ActiveExtent returns the current append target, or -1 if none.
func (s *Store) ActiveExtent() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// ReclaimCandidates returns data extents eligible for reclamation right now:
// owned, not active, not pinned, not already being reclaimed.
func (s *Store) ReclaimCandidates() []disk.ExtentID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []disk.ExtentID
	for _, ext := range s.em.OwnedExtents(extent.OwnerData) {
		if int(ext) == s.active || s.pins[ext] > 0 || s.reclaiming[ext] {
			continue
		}
		if s.em.Pointer(ext) == 0 {
			continue // nothing to recover
		}
		out = append(out, ext)
	}
	return out
}

// ReclaimAuto reclaims the first eligible extent, if any. It reports whether
// a reclamation ran.
func (s *Store) ReclaimAuto() (bool, error) {
	cands := s.ReclaimCandidates()
	if len(cands) == 0 {
		return false, nil
	}
	err := s.Reclaim(cands[0])
	if errors.Is(err, ErrBusy) {
		return false, nil
	}
	return err == nil, err
}

package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Chunk data is framed on disk with a magic byte and a random UUID repeated
// on both ends (§5 of the paper), plus the owner tag, the owning key, and a
// CRC over the whole frame. The trailing UUID lets a scan validate that the
// frame's claimed length is intact; the CRC catches torn or rotted payloads.
//
// Layout:
//
//	magic      1  byte  (0xC7)
//	uuid       16 bytes (random per chunk)
//	tag        1  byte  (owner class, for reclamation reverse lookup)
//	keyLen     2  bytes (big endian)
//	payloadLen 4  bytes (big endian)
//	key        keyLen bytes
//	payload    payloadLen bytes
//	crc32      4  bytes (IEEE, over everything above)
//	uuid       16 bytes (repeat of the header uuid)
const (
	// FrameMagic is the one-byte frame marker. Deliberately a single byte:
	// the §5 bug #10 scenario depends on stale bytes colliding with the
	// magic, and a short magic keeps that collision reachable by testing.
	FrameMagic byte = 0xC7

	uuidLen         = 16
	headerFixedLen  = 1 + uuidLen + 1 + 2 + 4
	trailerFixedLen = 4 + uuidLen

	// MaxKeyLen bounds the key bytes stored in a frame.
	MaxKeyLen = 1<<16 - 1
)

// Tag identifies the subsystem owning a chunk, so reclamation knows which
// resolver performs the reverse lookup (§2.1: shard data chunks resolve via
// the index; LSM-tree chunks resolve via the tree's metadata).
type Tag uint8

const (
	// TagData marks shard data chunks.
	TagData Tag = 0
	// TagIndexRun marks serialized LSM-tree runs.
	TagIndexRun Tag = 1
)

func (t Tag) String() string {
	switch t {
	case TagData:
		return "data"
	case TagIndexRun:
		return "index-run"
	default:
		return fmt.Sprintf("Tag(%d)", uint8(t))
	}
}

// Frame decoding errors.
var (
	ErrBadMagic    = errors.New("chunk: bad frame magic")
	ErrTruncated   = errors.New("chunk: truncated frame")
	ErrUUIDMissing = errors.New("chunk: trailing uuid does not match header")
	ErrBadCRC      = errors.New("chunk: frame CRC mismatch")
	ErrKeyTooLong  = errors.New("chunk: key too long")
)

// UUID is the per-chunk random identifier repeated at both frame ends.
type UUID [uuidLen]byte

// FrameLen returns the encoded size of a frame with the given key and
// payload lengths.
func FrameLen(keyLen, payloadLen int) int {
	return headerFixedLen + keyLen + payloadLen + trailerFixedLen
}

// EncodeFrame serializes a chunk frame.
func EncodeFrame(tag Tag, key string, payload []byte, uuid UUID) ([]byte, error) {
	return AppendFrame(make([]byte, 0, FrameLen(len(key), len(payload))), tag, key, payload, uuid)
}

// AppendFrame serializes a chunk frame onto dst and returns the extended
// slice. Callers on the zero-copy write path pass a dst whose capacity
// already covers the frame plus page padding, so the payload is copied
// exactly once — out of the caller's buffer into the page-aligned writeback.
func AppendFrame(dst []byte, tag Tag, key string, payload []byte, uuid UUID) ([]byte, error) {
	if len(key) > MaxKeyLen {
		return nil, ErrKeyTooLong
	}
	start := len(dst)
	buf := append(dst, FrameMagic)
	buf = append(buf, uuid[:]...)
	buf = append(buf, byte(tag))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(key)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, key...)
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	buf = append(buf, uuid[:]...)
	return buf, nil
}

// Header is the parsed fixed prefix of a frame.
type Header struct {
	UUID       UUID
	Tag        Tag
	KeyLen     int
	PayloadLen int
}

// FrameLen returns the total frame size implied by the header.
func (h Header) FrameLen() int { return FrameLen(h.KeyLen, h.PayloadLen) }

// ParseHeader decodes the fixed-size frame prefix from buf. It validates
// only the magic; length plausibility is the caller's job (it knows the
// extent bounds).
func ParseHeader(buf []byte) (Header, error) {
	if len(buf) < headerFixedLen {
		return Header{}, ErrTruncated
	}
	if buf[0] != FrameMagic {
		return Header{}, ErrBadMagic
	}
	var h Header
	copy(h.UUID[:], buf[1:1+uuidLen])
	h.Tag = Tag(buf[1+uuidLen])
	h.KeyLen = int(binary.BigEndian.Uint16(buf[1+uuidLen+1 : 1+uuidLen+3]))
	h.PayloadLen = int(binary.BigEndian.Uint32(buf[1+uuidLen+3 : 1+uuidLen+7]))
	return h, nil
}

// DecodeFrame fully validates and decodes a frame: magic, length, trailing
// UUID, and CRC. It returns the owning key and the payload (aliasing buf).
func DecodeFrame(buf []byte) (Header, string, []byte, error) {
	h, err := ParseHeader(buf)
	if err != nil {
		return Header{}, "", nil, err
	}
	total := h.FrameLen()
	if len(buf) < total {
		return Header{}, "", nil, fmt.Errorf("%w: have %d, frame claims %d", ErrTruncated, len(buf), total)
	}
	buf = buf[:total]
	trailerUUID := buf[total-uuidLen:]
	var got UUID
	copy(got[:], trailerUUID)
	if got != h.UUID {
		return Header{}, "", nil, ErrUUIDMissing
	}
	body := buf[:total-trailerFixedLen]
	wantCRC := binary.BigEndian.Uint32(buf[total-trailerFixedLen : total-uuidLen])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return Header{}, "", nil, ErrBadCRC
	}
	key := string(buf[headerFixedLen : headerFixedLen+h.KeyLen])
	payload := buf[headerFixedLen+h.KeyLen : headerFixedLen+h.KeyLen+h.PayloadLen]
	return h, key, payload, nil
}

package compact_test

import (
	"errors"
	"testing"

	"shardstore/internal/compact"
	"shardstore/internal/dep"
	"shardstore/internal/obs"
)

func seqs(p compact.Plan) map[uint64]bool {
	out := make(map[uint64]bool, len(p.Inputs))
	for _, s := range p.Inputs {
		out[s] = true
	}
	return out
}

func TestPolicyNextPlanShapes(t *testing.T) {
	pol := compact.Policy{L0Trigger: 3, MaxLevels: 3, BaseBytes: 100, Growth: 4}

	if _, ok := pol.NextPlan(nil); ok {
		t.Fatal("empty view produced a plan")
	}
	if _, ok := pol.NextPlan([]compact.RunInfo{{Level: 0, Seq: 1, Bytes: 10}, {Level: 0, Seq: 2, Bytes: 10}}); ok {
		t.Fatal("L0 below trigger produced a plan")
	}

	// L0 at trigger: all L0 runs plus the resident L1 run, out to L1.
	view := []compact.RunInfo{
		{Level: 0, Seq: 5, Bytes: 10}, {Level: 0, Seq: 4, Bytes: 10}, {Level: 0, Seq: 3, Bytes: 10},
		{Level: 1, Seq: 2, Bytes: 50},
	}
	p, ok := pol.NextPlan(view)
	if !ok || p.OutLevel != 1 || len(p.Inputs) != 4 {
		t.Fatalf("L0 plan: %+v ok=%v", p, ok)
	}
	in := seqs(p)
	for _, s := range []uint64{5, 4, 3, 2} {
		if !in[s] {
			t.Fatalf("L0 plan missing seq %d: %+v", s, p)
		}
	}

	// Oversized L1 pushes into L2 together with the resident L2 run.
	view = []compact.RunInfo{
		{Level: 1, Seq: 7, Bytes: 150},
		{Level: 2, Seq: 6, Bytes: 200},
	}
	p, ok = pol.NextPlan(view)
	if !ok || p.OutLevel != 2 || len(p.Inputs) != 2 || !seqs(p)[7] || !seqs(p)[6] {
		t.Fatalf("L1 push plan: %+v ok=%v", p, ok)
	}

	// The deepest level never pushes, however large.
	view = []compact.RunInfo{{Level: 3, Seq: 9, Bytes: 1 << 20}}
	if _, ok := pol.NextPlan(view); ok {
		t.Fatal("deepest level produced a plan")
	}

	// Within-target levels are left alone.
	view = []compact.RunInfo{{Level: 1, Seq: 7, Bytes: 90}}
	if _, ok := pol.NextPlan(view); ok {
		t.Fatal("within-target level produced a plan")
	}
}

// fakeHost scripts a Host for engine tests.
type fakeHost struct {
	views    [][]compact.RunInfo // consumed one per Levels() call
	results  []compact.Result    // consumed one per Compact() call
	plans    []compact.Plan
	waited   []*dep.Dependency
	err      error
	levelIdx int
	resIdx   int
}

func (h *fakeHost) Levels() []compact.RunInfo {
	if h.levelIdx >= len(h.views) {
		return h.views[len(h.views)-1]
	}
	v := h.views[h.levelIdx]
	h.levelIdx++
	return v
}

func (h *fakeHost) Compact(p compact.Plan) (compact.Result, error) {
	h.plans = append(h.plans, p)
	if h.err != nil {
		return compact.Result{}, h.err
	}
	r := h.results[h.resIdx]
	h.resIdx++
	return r, nil
}

func (h *fakeHost) WaitDurable(d *dep.Dependency) error {
	h.waited = append(h.waited, d)
	return nil
}

func fullL0() []compact.RunInfo {
	return []compact.RunInfo{
		{Level: 0, Seq: 4, Bytes: 8}, {Level: 0, Seq: 3, Bytes: 8},
		{Level: 0, Seq: 2, Bytes: 8}, {Level: 0, Seq: 1, Bytes: 8},
	}
}

func TestEngineStepAppliesAndWaits(t *testing.T) {
	man := dep.Resolved()
	host := &fakeHost{
		views:   [][]compact.RunInfo{fullL0(), {{Level: 1, Seq: 5, Bytes: 30}}},
		results: []compact.Result{{Applied: true, BytesIn: 32, BytesOut: 30, Manifest: man}},
	}
	o := obs.New(nil)
	eng := compact.New(host, compact.Policy{}, o)
	did, err := eng.Step()
	if err != nil || !did {
		t.Fatalf("step: did=%v err=%v", did, err)
	}
	if len(host.plans) != 1 || host.plans[0].OutLevel != 1 {
		t.Fatalf("plans: %+v", host.plans)
	}
	if len(host.waited) != 1 || host.waited[0] != man {
		t.Fatalf("durability wait: %+v", host.waited)
	}
	snap := o.Snapshot()
	if snap.Counters["compact.steps"] != 1 || snap.Counters["compact.bytes_rewritten"] != 30 {
		t.Fatalf("metrics: %+v", snap.Counters)
	}
	if snap.Gauges["compact.levels"] != 1 {
		t.Fatalf("levels gauge: %d", snap.Gauges["compact.levels"])
	}
	if snap.Histograms["compact.duration"].Count != 1 {
		t.Fatalf("duration histogram: %+v", snap.Histograms["compact.duration"])
	}
}

func TestEngineStepNoWaitSkipsBarrier(t *testing.T) {
	host := &fakeHost{
		views:   [][]compact.RunInfo{fullL0(), {{Level: 1, Seq: 5, Bytes: 30}}},
		results: []compact.Result{{Applied: true, Manifest: dep.Resolved()}},
	}
	eng := compact.New(host, compact.Policy{}, nil)
	did, err := eng.StepNoWait()
	if err != nil || !did {
		t.Fatalf("step: did=%v err=%v", did, err)
	}
	if len(host.waited) != 0 {
		t.Fatalf("StepNoWait crossed the barrier: %+v", host.waited)
	}
}

func TestEngineCASLossCountsAbort(t *testing.T) {
	host := &fakeHost{
		views:   [][]compact.RunInfo{fullL0()},
		results: []compact.Result{{Applied: false}},
	}
	o := obs.New(nil)
	eng := compact.New(host, compact.Policy{}, o)
	did, err := eng.Step()
	if err != nil || did {
		t.Fatalf("lost CAS step: did=%v err=%v", did, err)
	}
	if o.Snapshot().Counters["compact.aborts"] != 1 {
		t.Fatalf("aborts: %+v", o.Snapshot().Counters)
	}
}

func TestEngineHostErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	host := &fakeHost{views: [][]compact.RunInfo{fullL0()}, err: boom}
	eng := compact.New(host, compact.Policy{}, nil)
	if _, err := eng.Step(); !errors.Is(err, boom) {
		t.Fatalf("host error: %v", err)
	}
}

func TestEngineQuiesceRunsToFixpoint(t *testing.T) {
	// Two plans apply (L0 promotion, then L1 push), then the shape settles.
	host := &fakeHost{
		views: [][]compact.RunInfo{
			fullL0(),
			{{Level: 1, Seq: 5, Bytes: 1 << 20}},
			{{Level: 1, Seq: 5, Bytes: 1 << 20}},
			{{Level: 2, Seq: 6, Bytes: 100}},
			{{Level: 2, Seq: 6, Bytes: 100}},
		},
		results: []compact.Result{
			{Applied: true, Manifest: dep.Resolved()},
			{Applied: true, Manifest: dep.Resolved()},
		},
	}
	eng := compact.New(host, compact.Policy{BaseBytes: 64}, nil)
	applied, err := eng.Quiesce(10)
	if err != nil || applied != 2 {
		t.Fatalf("quiesce: applied=%d err=%v", applied, err)
	}
}

// Package compact is the background leveled-compaction engine over the LSM
// index's run list. Runs are organized into generation-numbered levels: L0
// holds raw flush output (runs may overlap, newest first), L1 and deeper hold
// one merged, sorted run each. A compaction picks an input set by sequence
// number, asks the host to merge-write the output as a new chunk and publish
// a new manifest generation with a single CAS swap of the current run list,
// then rides the group-commit barrier so the swap is durable before the next
// step. The engine never touches chunks itself — the host owns the pinned
// write + CAS discipline (see lsm.ApplyPlan) — which is what keeps a crash
// mid-compaction invisible: the old manifest generation stays fully intact
// until the swap commits.
//
// The split mirrors histdb's generation-numbered level files with an
// atomically swapped "current" pointer: the planner decides *what* to merge
// (pure policy over level shapes), the host decides *how* (chunk writes,
// dependency ordering, manifest publication).
package compact

import (
	"fmt"

	"shardstore/internal/dep"
	"shardstore/internal/obs"
)

// RunInfo describes one run of the host's current manifest generation.
type RunInfo struct {
	// Level is the run's level: 0 for raw flush output, 1+ for merged levels.
	Level int
	// Seq is the run's unique sequence number — the identity a Plan names its
	// inputs by, stable across relocation (which changes only the locator).
	Seq uint64
	// Bytes is the run's on-disk payload size.
	Bytes int
}

// Plan names one compaction: merge the runs with the given sequence numbers
// into a single new run at OutLevel.
type Plan struct {
	// Inputs are the sequence numbers of the runs to merge.
	Inputs []uint64
	// OutLevel is the level the merged output run lands on (>= 1).
	OutLevel int
}

// Result reports what one applied plan did.
type Result struct {
	// Applied is false when the host's CAS found the input set changed (a
	// concurrent compaction already consumed an input) and published nothing.
	Applied bool
	// BytesIn / BytesOut are the merged input and output payload sizes.
	BytesIn  int
	BytesOut int
	// DroppedTombstones counts deletion markers elided because the output
	// level was the deepest occupied level.
	DroppedTombstones int
	// Manifest covers the output chunk and the new manifest generation; it is
	// what the engine hands to WaitDurable so the swap rides group commit.
	Manifest *dep.Dependency
}

// Host is the storage-node surface the engine works against. The production
// implementation is the store's adapter over lsm.Tree.
type Host interface {
	// Levels returns the current manifest generation's runs in read order
	// (L0 newest first, then ascending levels).
	Levels() []RunInfo
	// Compact merge-writes the plan's output and publishes a new manifest
	// generation with a CAS swap; see lsm.ApplyPlan for the discipline.
	Compact(Plan) (Result, error)
	// WaitDurable blocks until d is persistent via the group-commit barrier.
	WaitDurable(d *dep.Dependency) error
}

// Policy tunes the planner.
type Policy struct {
	// L0Trigger compacts L0 into L1 once this many L0 runs exist (default 4).
	L0Trigger int
	// MaxLevels is the deepest level index (default 4; levels run 0..MaxLevels).
	// It must not exceed the manifest headroom (lsm.MaxLevels).
	MaxLevels int
	// BaseBytes is the L1 target size; level L targets BaseBytes·Growth^(L-1)
	// bytes before being pushed one level deeper (default 16 KiB).
	BaseBytes int
	// Growth is the per-level size ratio (default 4).
	Growth int
}

func (p Policy) withDefaults() Policy {
	if p.L0Trigger <= 0 {
		p.L0Trigger = 4
	}
	if p.MaxLevels <= 0 {
		p.MaxLevels = 4
	}
	if p.BaseBytes <= 0 {
		p.BaseBytes = 16 * 1024
	}
	if p.Growth <= 1 {
		p.Growth = 4
	}
	return p
}

// targetBytes is the size level lv may reach before being pushed deeper.
func (p Policy) targetBytes(lv int) int {
	t := p.BaseBytes
	for i := 1; i < lv; i++ {
		t *= p.Growth
	}
	return t
}

// NextPlan picks the next compaction for the given level view, or ok=false
// when every level is within policy. L0 pressure wins over deep-level
// pressure: unbounded L0 growth is what costs reads, one probe per run.
func (p Policy) NextPlan(runs []RunInfo) (Plan, bool) {
	p = p.withDefaults()
	var l0 []uint64
	resident := make(map[int]RunInfo) // level >= 1 -> its single run
	bytesAt := make(map[int]int)
	for _, r := range runs {
		if r.Level == 0 {
			l0 = append(l0, r.Seq)
		} else {
			resident[r.Level] = r
			bytesAt[r.Level] += r.Bytes
		}
	}
	if len(l0) >= p.L0Trigger {
		in := append([]uint64(nil), l0...)
		if r, ok := resident[1]; ok {
			in = append(in, r.Seq)
		}
		return Plan{Inputs: in, OutLevel: 1}, true
	}
	for lv := 1; lv < p.MaxLevels; lv++ {
		r, ok := resident[lv]
		if !ok || bytesAt[lv] <= p.targetBytes(lv) {
			continue
		}
		in := []uint64{r.Seq}
		if next, ok := resident[lv+1]; ok {
			in = append(in, next.Seq)
		}
		return Plan{Inputs: in, OutLevel: lv + 1}, true
	}
	return Plan{}, false
}

// engineMetrics holds the obs handles, resolved once at construction.
type engineMetrics struct {
	steps          *obs.Counter
	aborts         *obs.Counter
	bytesRewritten *obs.Counter
	tombstones     *obs.Counter
	levels         *obs.Gauge
	duration       *obs.Histogram
}

func newEngineMetrics(o *obs.Obs) engineMetrics {
	return engineMetrics{
		steps:          o.Counter("compact.steps"),
		aborts:         o.Counter("compact.aborts"),
		bytesRewritten: o.Counter("compact.bytes_rewritten"),
		tombstones:     o.Counter("compact.tombstones_dropped"),
		levels:         o.Gauge("compact.levels"),
		duration:       o.Histogram("compact.duration"),
	}
}

// Engine drives leveled compaction against a Host: plan one step, apply it,
// make the manifest swap durable. It holds no state of its own beyond policy
// and metrics — the host's manifest is the only source of truth — so steps
// are safe to run from a background loop and a harness at once (the host
// serializes application).
type Engine struct {
	host Host
	pol  Policy
	obs  *obs.Obs
	met  engineMetrics
}

// New builds an engine on host. A zero Policy takes defaults; a nil registry
// gets a private one.
func New(host Host, pol Policy, o *obs.Obs) *Engine {
	if o == nil {
		o = obs.New(nil)
	}
	return &Engine{host: host, pol: pol.withDefaults(), obs: o, met: newEngineMetrics(o)}
}

// Policy returns the engine's (defaulted) policy.
func (e *Engine) Policy() Policy { return e.pol }

// Step plans and applies at most one compaction, then blocks on the
// group-commit barrier until the manifest swap is durable. It reports whether
// a compaction was applied.
func (e *Engine) Step() (bool, error) {
	return e.step(true)
}

// StepNoWait is Step without the durability wait: the swap's dependency
// ordering alone protects a crash (the manifest record is ordered after the
// output chunk), exactly like an index flush. Deterministic harnesses use
// this so their own scheduling ops control when the swap reaches the media.
func (e *Engine) StepNoWait() (bool, error) {
	return e.step(false)
}

func (e *Engine) step(durable bool) (bool, error) {
	start := e.obs.Now()
	view := e.host.Levels()
	plan, ok := e.pol.NextPlan(view)
	if !ok {
		e.met.levels.Set(int64(occupiedLevels(view)))
		return false, nil
	}
	// Open a background window over the rewrite (and the manifest commit
	// below): every request span it overlaps gets a compaction-interference
	// note, the signal maintenance scheduling will throttle on.
	var bg *obs.BgSpan
	if tr := e.obs.Tracer(); tr != nil {
		bg = tr.Background("compact", fmt.Sprintf("L%d<-%d runs", plan.OutLevel, len(plan.Inputs)))
	}
	defer bg.End()
	res, err := e.host.Compact(plan)
	if err != nil {
		return false, fmt.Errorf("compact: apply L%d plan (%d inputs): %w", plan.OutLevel, len(plan.Inputs), err)
	}
	if !res.Applied {
		e.met.aborts.Inc()
		return false, nil
	}
	e.met.steps.Inc()
	e.met.bytesRewritten.Add(uint64(res.BytesOut))
	e.met.tombstones.Add(uint64(res.DroppedTombstones))
	e.met.levels.Set(int64(occupiedLevels(e.host.Levels())))
	e.met.duration.Observe(e.obs.Now() - start)
	if durable && res.Manifest != nil {
		if err := e.host.WaitDurable(res.Manifest); err != nil {
			return true, fmt.Errorf("compact: manifest commit: %w", err)
		}
	}
	return true, nil
}

// Quiesce steps until no plan remains or maxSteps is reached, returning the
// number of compactions applied. maxSteps <= 0 means a generous default.
func (e *Engine) Quiesce(maxSteps int) (int, error) {
	if maxSteps <= 0 {
		maxSteps = 64
	}
	applied := 0
	for i := 0; i < maxSteps; i++ {
		did, err := e.Step()
		if err != nil {
			return applied, err
		}
		if !did {
			return applied, nil
		}
		applied++
	}
	return applied, nil
}

// occupiedLevels counts distinct levels holding at least one run.
func occupiedLevels(runs []RunInfo) int {
	seen := make(map[int]bool, len(runs))
	for _, r := range runs {
		seen[r.Level] = true
	}
	return len(seen)
}

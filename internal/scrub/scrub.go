// Package scrub implements the background integrity subsystem: a rate-limited
// scrubber that walks the live shards of one storage node, re-verifies every
// replica's chunk frame (magic, trailing UUID, CRC, owning key), quarantines
// rotted locators, and repairs each bad replica by re-writing the payload
// from a surviving verified copy. When every replica of a piece is rotted the
// scrubber records an irreparable-loss verdict — the shard is reported lost,
// never silently served.
//
// The paper's frames carry CRCs precisely so that "torn or rotted payloads"
// are detectable (§2); production S3 runs continuous scrubbing against
// exactly this failure. The scrubber is validated the same way the paper
// validates ShardStore itself: the conformance harness injects silent
// corruption (disk.CorruptPage) and checks, in lockstep with the reference
// model, that k < R rotted copies leave every shard readable after a scrub
// round and that k = R surfaces as a reported loss.
//
// Repair follows the same GC discipline as reclamation's evacuation: the
// healed copy is written with the extent pinned (the release closure), the
// index entry is swapped by compare-and-swap under the store lock, and the
// entry update carries a dependency on the repair write — so a crash between
// the two leaves the old (still-referenced) state, and a reclamation racing
// with repair simply wins the CAS, turning the healed copy into garbage
// instead of resurrecting a reclaimed chunk.
package scrub

import (
	"fmt"
	"sort"

	"shardstore/internal/chunk"
	"shardstore/internal/coverage"
	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/obs"
	"shardstore/internal/vsync"
)

// Host is the storage-node surface the scrubber works against. It is
// implemented by the store layer; the indirection keeps the package free of
// an import cycle (store imports scrub for its lifecycle).
type Host interface {
	// LiveKeys lists the shard ids currently in the index.
	LiveKeys() ([]string, error)
	// ReadEntry returns the per-piece replica locator groups for key, or an
	// error if the key is gone (deleted concurrently with the scan).
	ReadEntry(key string) ([][]chunk.Locator, error)
	// ReadFrame reads the raw frame bytes at loc from the disk (bypassing
	// the chunk buffer cache — the scrubber verifies media, not cache).
	ReadFrame(loc chunk.Locator) ([]byte, error)
	// WriteRepair appends a fresh chunk for key avoiding the given extents,
	// returning the locator, the write's dependency, and a release closure
	// that unpins the extent (hold it until the reference is swapped in).
	WriteRepair(key string, payload []byte, avoid []disk.ExtentID) (chunk.Locator, *dep.Dependency, func(), error)
	// SwapReplica compare-and-swaps old for newLoc in key's index entry,
	// ordering the entry update after d. It reports false if the entry no
	// longer references old (a concurrent put, delete, or reclamation won).
	SwapReplica(key string, old, newLoc chunk.Locator, d *dep.Dependency) (bool, error)
	// Quarantine marks loc as failed-verification so reads refuse it.
	Quarantine(loc chunk.Locator)
}

// Config tunes a scrubber.
type Config struct {
	// KeysPerStep rate-limits Step: at most this many shards are verified
	// per call, resuming from a cursor. Zero selects 8.
	KeysPerStep int
	// Obs is the observability registry for metrics and tracing. Nil gives
	// the scrubber a private registry.
	Obs *obs.Obs
}

// Stats counts scrubber activity (cumulative since creation). It is a thin
// snapshot of the scrubber's obs registry counters.
type Stats struct {
	Rounds         uint64 // completed full passes
	KeysScanned    uint64
	FramesVerified uint64
	BytesVerified  uint64
	BadReplicas    uint64 // replicas that failed frame verification
	Repaired       uint64 // bad replicas healed from a surviving copy
	RepairFailed   uint64 // repair write or swap errors (will be retried)
	SwapLost       uint64 // repairs beaten by a concurrent entry update
	Irreparable    uint64 // pieces with every replica rotted
}

// Result summarizes one Step or Round.
type Result struct {
	KeysScanned    int
	FramesVerified int
	BytesVerified  int
	BadReplicas    int
	Repaired       int
	Irreparable    int
}

func (r *Result) add(o Result) {
	r.KeysScanned += o.KeysScanned
	r.FramesVerified += o.FramesVerified
	r.BytesVerified += o.BytesVerified
	r.BadReplicas += o.BadReplicas
	r.Repaired += o.Repaired
	r.Irreparable += o.Irreparable
}

// scrubMetrics holds the obs handles, resolved once at construction.
type scrubMetrics struct {
	rounds         *obs.Counter
	keysScanned    *obs.Counter
	framesVerified *obs.Counter
	bytesVerified  *obs.Counter
	badReplicas    *obs.Counter
	repaired       *obs.Counter
	repairFailed   *obs.Counter
	swapLost       *obs.Counter
	irreparable    *obs.Counter
	lostShards     *obs.Gauge
	roundDur       *obs.Histogram
	repairDur      *obs.Histogram
}

func newScrubMetrics(o *obs.Obs) scrubMetrics {
	return scrubMetrics{
		rounds:         o.Counter("scrub.rounds"),
		keysScanned:    o.Counter("scrub.keys_scanned"),
		framesVerified: o.Counter("scrub.frames_verified"),
		bytesVerified:  o.Counter("scrub.bytes_verified"),
		badReplicas:    o.Counter("scrub.bad_replicas"),
		repaired:       o.Counter("scrub.repaired"),
		repairFailed:   o.Counter("scrub.repair_failed"),
		swapLost:       o.Counter("scrub.swap_lost"),
		irreparable:    o.Counter("scrub.irreparable"),
		lostShards:     o.Gauge("scrub.lost_shards"),
		roundDur:       o.Histogram("scrub.round_dur"),
		repairDur:      o.Histogram("scrub.repair_dur"),
	}
}

// Scrubber walks one node's live shards verifying and repairing replicas.
// Methods are safe for concurrent use; a single pass runs at a time.
type Scrubber struct {
	mu   vsync.Mutex
	host Host
	cfg  Config
	cov  *coverage.Registry
	bugs *faults.Set
	obs  *obs.Obs
	met  scrubMetrics

	cursor string // next key for Step's resumable partial pass
	// lost records shards with at least one irreparable piece, cleared when
	// a later pass finds the shard healthy again (it was rewritten) or gone.
	lost map[string]bool
}

// New creates a scrubber over host. bugs selects seeded scrubber defects
// (FaultScrubRepairUnverified); nil means the fixed code paths.
func New(host Host, cfg Config, cov *coverage.Registry, bugs *faults.Set) *Scrubber {
	if cfg.KeysPerStep <= 0 {
		cfg.KeysPerStep = 8
	}
	o := cfg.Obs
	if o == nil {
		o = obs.New(nil)
	}
	return &Scrubber{host: host, cfg: cfg, cov: cov, bugs: bugs, obs: o, met: newScrubMetrics(o), lost: make(map[string]bool)}
}

// Stats returns a snapshot of the cumulative counters (reading the obs
// registry).
func (s *Scrubber) Stats() Stats {
	return Stats{
		Rounds:         s.met.rounds.Value(),
		KeysScanned:    s.met.keysScanned.Value(),
		FramesVerified: s.met.framesVerified.Value(),
		BytesVerified:  s.met.bytesVerified.Value(),
		BadReplicas:    s.met.badReplicas.Value(),
		Repaired:       s.met.repaired.Value(),
		RepairFailed:   s.met.repairFailed.Value(),
		SwapLost:       s.met.swapLost.Value(),
		Irreparable:    s.met.irreparable.Value(),
	}
}

// LostKeys returns the shards currently recorded as having irreparable
// pieces, sorted. A shard leaves the list when a later pass finds it healthy
// (it was overwritten) or deleted.
func (s *Scrubber) LostKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.lost))
	for k := range s.lost {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Round runs one full verification pass over every live shard.
func (s *Scrubber) Round() (Result, error) {
	bg := s.obs.Tracer().Background("scrub", "round")
	defer bg.End()
	start := s.obs.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	keys, err := s.host.LiveKeys()
	if err != nil {
		return Result{}, err
	}
	s.pruneLostLocked(keys)
	var res Result
	for _, key := range keys {
		res.add(s.scrubKeyLocked(key))
	}
	s.met.rounds.Inc()
	s.met.roundDur.Observe(s.obs.Now() - start)
	s.cov.Hit("scrub.round")
	if s.obs.Tracing() {
		s.obs.Record("scrub", "round", fmt.Sprintf("%d keys", res.KeysScanned), "ok", s.obs.Now()-start)
	}
	return res, nil
}

// Step runs a rate-limited partial pass: at most cfg.KeysPerStep shards,
// resuming from where the previous Step stopped. wrapped reports that the
// pass completed the key space (counting as a finished round).
func (s *Scrubber) Step() (res Result, wrapped bool, err error) {
	bg := s.obs.Tracer().Background("scrub", "step")
	defer bg.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	keys, err := s.host.LiveKeys()
	if err != nil {
		return Result{}, false, err
	}
	s.pruneLostLocked(keys)
	if len(keys) == 0 {
		s.cursor = ""
		s.met.rounds.Inc()
		return Result{}, true, nil
	}
	sort.Strings(keys)
	start := sort.SearchStrings(keys, s.cursor)
	if start == len(keys) {
		start = 0
	}
	n := s.cfg.KeysPerStep
	if n > len(keys) {
		n = len(keys)
	}
	for i := 0; i < n; i++ {
		res.add(s.scrubKeyLocked(keys[(start+i)%len(keys)]))
	}
	next := start + n
	if next >= len(keys) {
		wrapped = true
		s.met.rounds.Inc()
		s.cursor = ""
	} else {
		s.cursor = keys[next]
	}
	s.cov.Hit("scrub.step")
	return res, wrapped, nil
}

// pruneLostLocked drops irreparable-loss verdicts for shards that are no
// longer live: a deleted shard never lists again, so without pruning its
// verdict would outlive the data loss it reported. Caller holds s.mu.
func (s *Scrubber) pruneLostLocked(live []string) {
	if len(s.lost) == 0 {
		return
	}
	set := make(map[string]bool, len(live))
	for _, k := range live {
		set[k] = true
	}
	for k := range s.lost {
		if !set[k] {
			delete(s.lost, k)
		}
	}
}

// replica is one copy's verification state within a group.
type replica struct {
	loc     chunk.Locator
	payload []byte // verified payload when good
	raw     []byte // raw frame bytes (whatever was read)
	good    bool
	bad     bool // definitively rotted (read succeeded, verification failed)
}

// scrubKeyLocked verifies and repairs one shard. Caller holds s.mu.
func (s *Scrubber) scrubKeyLocked(key string) Result {
	var res Result
	groups, err := s.host.ReadEntry(key)
	if err != nil {
		// Deleted concurrently, or the entry itself is unreadable; either
		// way there is nothing replica-level to verify here.
		delete(s.lost, key)
		return res
	}
	res.KeysScanned = 1
	s.met.keysScanned.Inc()
	anyIrreparable := false
	sawUnknown := false
	for _, group := range groups {
		reps := make([]replica, len(group))
		allBad := len(group) > 0
		for i, loc := range group {
			reps[i] = s.verifyReplica(key, loc)
			if reps[i].raw == nil {
				sawUnknown = true
			}
			if reps[i].raw != nil {
				res.FramesVerified++
				res.BytesVerified += len(reps[i].raw)
				s.met.framesVerified.Inc()
				s.met.bytesVerified.Add(uint64(len(reps[i].raw)))
			}
			if reps[i].bad {
				res.BadReplicas++
				s.met.badReplicas.Inc()
				s.cov.Hit("scrub.bad_replica")
				if s.obs.Tracing() {
					s.obs.Record("scrub", "bad_replica", reps[i].loc.String(), "rot", 0)
				}
			} else {
				allBad = false
			}
		}
		source := s.pickSource(reps)
		for i := range reps {
			if !reps[i].bad {
				continue
			}
			if source != nil {
				if s.repairLocked(key, reps, i, source) {
					res.Repaired++
				}
			} else {
				// No usable source this pass. The replica is definitively
				// rotted either way, so its bytes must never be served again.
				s.host.Quarantine(reps[i].loc)
			}
		}
		// "Irreparable" is a definitive verdict: it requires every replica to
		// have been read successfully and failed verification. A replica whose
		// read errored is unknown — its media bytes may be fine behind a
		// transient disk fault (§4.4) — so the verdict waits for a pass that
		// can actually see it.
		if allBad {
			anyIrreparable = true
			res.Irreparable++
			s.met.irreparable.Inc()
			s.cov.Hit("scrub.irreparable")
		}
	}
	if anyIrreparable {
		if !s.lost[key] {
			s.lost[key] = true
			s.cov.Hit("scrub.lost_shard")
			if s.obs.Tracing() {
				s.obs.Record("scrub", "lost_shard", key, "irreparable", 0)
			}
		}
	} else if !sawUnknown {
		// Only a fully determinate pass (every replica actually read) may
		// clear a standing loss verdict.
		delete(s.lost, key)
	}
	s.met.lostShards.Set(int64(len(s.lost)))
	return res
}

// verifyReplica reads and fully validates one replica's frame.
func (s *Scrubber) verifyReplica(key string, loc chunk.Locator) replica {
	r := replica{loc: loc}
	buf, err := s.host.ReadFrame(loc)
	if err != nil {
		// An IO error is the §4.4 environmental-failure domain, not rot: the
		// bytes may be fine. Leave the replica unknown (neither a repair
		// source nor a repair target); the next pass retries it.
		return r
	}
	r.raw = buf
	_, owner, payload, err := chunk.DecodeFrame(buf)
	if err != nil || owner != key {
		r.bad = true
		return r
	}
	r.good = true
	r.payload = append([]byte(nil), payload...)
	return r
}

// pickSource selects the replica to repair from, or nil when none qualifies.
// The fixed scrubber only ever copies from a fully verified replica. Seeded
// fault: FaultScrubRepairUnverified takes the first replica's payload
// *without* re-verifying the frame — sourced from a rotted copy whose header
// survived, the repair writes a fresh, valid-CRC frame around rotted payload
// bytes, laundering the corruption instead of healing it.
func (s *Scrubber) pickSource(reps []replica) *replica {
	if s.bugs.Enabled(faults.FaultScrubRepairUnverified) && len(reps) > 0 && reps[0].raw != nil {
		r := &reps[0]
		if h, err := chunk.ParseHeader(r.raw); err == nil && h.FrameLen() <= len(r.raw) {
			start := headerFixedPrefix + h.KeyLen
			if start+h.PayloadLen <= len(r.raw) {
				s.cov.Hit("scrub.bug.unverified_source")
				cp := *r
				cp.payload = append([]byte(nil), r.raw[start:start+h.PayloadLen]...)
				return &cp
			}
		}
		return nil
	}
	for i := range reps {
		if reps[i].good {
			return &reps[i]
		}
	}
	return nil
}

// headerFixedPrefix mirrors the chunk frame's fixed header length
// (magic + uuid + tag + keyLen + payloadLen) for the seeded unverified-read
// defect, which slices payload bytes straight out of the raw frame.
const headerFixedPrefix = 1 + 16 + 1 + 2 + 4

// repairLocked heals reps[i] from source: write a fresh copy on an extent
// holding none of the group's other replicas, CAS it into the index entry,
// and quarantine the rotted locator. Caller holds s.mu.
func (s *Scrubber) repairLocked(key string, reps []replica, i int, source *replica) bool {
	start := s.obs.Now()
	var avoid []disk.ExtentID
	for j := range reps {
		if j != i {
			avoid = append(avoid, reps[j].loc.Extent)
		}
	}
	newLoc, d, release, err := s.host.WriteRepair(key, source.payload, avoid)
	if err != nil {
		s.met.repairFailed.Inc()
		s.cov.Hit("scrub.repair_failed")
		return false
	}
	// Hold the pin across the swap so reclamation cannot evacuate the healed
	// copy before its reference exists (the bug #14 discipline).
	swapped, err := s.host.SwapReplica(key, reps[i].loc, newLoc, d)
	release()
	if err != nil {
		s.met.repairFailed.Inc()
		s.cov.Hit("scrub.repair_failed")
		return false
	}
	if !swapped {
		// A concurrent put, delete, or reclamation changed the entry; the
		// healed copy becomes garbage for a future reclamation.
		s.met.swapLost.Inc()
		s.cov.Hit("scrub.swap_lost")
		return false
	}
	s.host.Quarantine(reps[i].loc)
	s.met.repaired.Inc()
	s.met.repairDur.Observe(s.obs.Now() - start)
	s.cov.Hit("scrub.repaired")
	if s.obs.Tracing() {
		s.obs.Record("scrub", "repair", key, "ok", s.obs.Now()-start)
	}
	return true
}

package scrub_test

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"shardstore/internal/chunk"
	"shardstore/internal/coverage"
	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/scrub"
	"shardstore/internal/store"
)

// --- fake host: full control over frame bytes for unit-testing the scrubber
// in isolation (the real store integration lives further down) ---

type fakeHost struct {
	entries     map[string][][]chunk.Locator
	frames      map[chunk.Locator][]byte
	quarantined map[chunk.Locator]bool
	readErr     map[chunk.Locator]error
	swapRefuse  bool
	nextExtent  disk.ExtentID
	repairs     []fakeRepair
}

type fakeRepair struct {
	key     string
	payload []byte
	avoid   []disk.ExtentID
}

func newFakeHost() *fakeHost {
	return &fakeHost{
		entries:     make(map[string][][]chunk.Locator),
		frames:      make(map[chunk.Locator][]byte),
		quarantined: make(map[chunk.Locator]bool),
		readErr:     make(map[chunk.Locator]error),
		nextExtent:  100,
	}
}

// addShard installs a shard with the given replica payloads for one piece and
// returns the group. Every replica starts as a valid frame for (key, payload).
func (h *fakeHost) addShard(t *testing.T, key string, payload []byte, replicas int) []chunk.Locator {
	t.Helper()
	group := make([]chunk.Locator, replicas)
	for i := range group {
		group[i] = h.addFrame(t, key, payload)
	}
	h.entries[key] = [][]chunk.Locator{append([]chunk.Locator(nil), group...)}
	return group
}

func (h *fakeHost) addFrame(t *testing.T, key string, payload []byte) chunk.Locator {
	t.Helper()
	var uuid chunk.UUID
	uuid[0] = byte(h.nextExtent)
	frame, err := chunk.EncodeFrame(chunk.TagData, key, payload, uuid)
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	loc := chunk.Locator{Extent: h.nextExtent, Offset: 0, Length: len(frame)}
	h.nextExtent++
	h.frames[loc] = frame
	return loc
}

func (h *fakeHost) LiveKeys() ([]string, error) {
	out := make([]string, 0, len(h.entries))
	for k := range h.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

func (h *fakeHost) ReadEntry(key string) ([][]chunk.Locator, error) {
	groups, ok := h.entries[key]
	if !ok {
		return nil, errors.New("fake: no such key")
	}
	return groups, nil
}

func (h *fakeHost) ReadFrame(loc chunk.Locator) ([]byte, error) {
	if err := h.readErr[loc]; err != nil {
		return nil, err
	}
	f, ok := h.frames[loc]
	if !ok {
		return nil, errors.New("fake: no frame")
	}
	return append([]byte(nil), f...), nil
}

func (h *fakeHost) WriteRepair(key string, payload []byte, avoid []disk.ExtentID) (chunk.Locator, *dep.Dependency, func(), error) {
	h.repairs = append(h.repairs, fakeRepair{
		key:     key,
		payload: append([]byte(nil), payload...),
		avoid:   append([]disk.ExtentID(nil), avoid...),
	})
	var uuid chunk.UUID
	uuid[0] = byte(h.nextExtent)
	frame, err := chunk.EncodeFrame(chunk.TagData, key, payload, uuid)
	if err != nil {
		return chunk.Locator{}, nil, nil, err
	}
	loc := chunk.Locator{Extent: h.nextExtent, Offset: 0, Length: len(frame)}
	h.nextExtent++
	h.frames[loc] = frame
	return loc, dep.Resolved(), func() {}, nil
}

func (h *fakeHost) SwapReplica(key string, old, newLoc chunk.Locator, d *dep.Dependency) (bool, error) {
	if h.swapRefuse {
		return false, nil
	}
	groups, ok := h.entries[key]
	if !ok {
		return false, nil
	}
	for gi := range groups {
		for ri := range groups[gi] {
			if groups[gi][ri] == old {
				groups[gi][ri] = newLoc
				return true, nil
			}
		}
	}
	return false, nil
}

func (h *fakeHost) Quarantine(loc chunk.Locator) { h.quarantined[loc] = true }

var _ scrub.Host = (*fakeHost)(nil)

// rotPayload flips one payload byte inside the stored frame for loc, leaving
// the header intact (the CRC no longer matches).
func (h *fakeHost) rotPayload(t *testing.T, loc chunk.Locator) {
	t.Helper()
	f := h.frames[loc]
	hdr, err := chunk.ParseHeader(f)
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	if hdr.PayloadLen == 0 {
		t.Fatal("rotPayload needs a non-empty payload")
	}
	const trailerLen = 4 + 16      // CRC32 + trailing UUID
	f[len(f)-trailerLen-1] ^= 0xff // last payload byte
}

func newScrubber(h scrub.Host, bugs *faults.Set) *scrub.Scrubber {
	if bugs == nil {
		bugs = faults.NewSet()
	}
	return scrub.New(h, scrub.Config{}, coverage.NewRegistry(), bugs)
}

func TestRoundRepairsFromSurvivor(t *testing.T) {
	h := newFakeHost()
	payload := []byte("the quick brown fox")
	group := h.addShard(t, "k00", payload, 2)
	h.rotPayload(t, group[0])

	s := newScrubber(h, nil)
	res, err := s.Round()
	if err != nil {
		t.Fatalf("Round: %v", err)
	}
	if res.BadReplicas != 1 || res.Repaired != 1 || res.Irreparable != 0 {
		t.Fatalf("Round = %+v, want 1 bad, 1 repaired, 0 irreparable", res)
	}
	if len(h.repairs) != 1 || !bytes.Equal(h.repairs[0].payload, payload) {
		t.Fatalf("repair wrote %q, want the survivor's payload %q", h.repairs[0].payload, payload)
	}
	// The healed copy avoided the survivor's extent and replaced the rotted
	// locator in the entry; the rotted locator is quarantined.
	if len(h.repairs[0].avoid) != 1 || h.repairs[0].avoid[0] != group[1].Extent {
		t.Fatalf("repair avoid = %v, want [%v]", h.repairs[0].avoid, group[1].Extent)
	}
	if !h.quarantined[group[0]] {
		t.Fatal("rotted locator not quarantined")
	}
	newGroup := h.entries["k00"][0]
	if newGroup[0] == group[0] {
		t.Fatal("entry still references the rotted locator")
	}
	if got := s.LostKeys(); len(got) != 0 {
		t.Fatalf("LostKeys = %v, want none", got)
	}
	// Every replica now verifies: a second round is clean.
	res, err = s.Round()
	if err != nil || res.BadReplicas != 0 {
		t.Fatalf("second Round = %+v, %v; want clean", res, err)
	}
	if st := s.Stats(); st.Rounds != 2 || st.Repaired != 1 {
		t.Fatalf("Stats = %+v, want 2 rounds, 1 repaired", st)
	}
}

func TestRoundReportsIrreparableLoss(t *testing.T) {
	h := newFakeHost()
	group := h.addShard(t, "k00", []byte("doomed"), 2)
	h.rotPayload(t, group[0])
	h.rotPayload(t, group[1])

	s := newScrubber(h, nil)
	res, err := s.Round()
	if err != nil {
		t.Fatalf("Round: %v", err)
	}
	if res.Irreparable != 1 || res.Repaired != 0 {
		t.Fatalf("Round = %+v, want 1 irreparable, 0 repaired", res)
	}
	if len(h.repairs) != 0 {
		t.Fatalf("scrub wrote a repair from a rotted source: %+v", h.repairs)
	}
	if !h.quarantined[group[0]] || !h.quarantined[group[1]] {
		t.Fatal("rotted replicas not quarantined")
	}
	if got := s.LostKeys(); len(got) != 1 || got[0] != "k00" {
		t.Fatalf("LostKeys = %v, want [k00]", got)
	}
	// A rewrite of the shard (fresh entry, healthy frames) clears the verdict.
	h.addShard(t, "k00", []byte("rewritten"), 2)
	if _, err := s.Round(); err != nil {
		t.Fatalf("Round after rewrite: %v", err)
	}
	if got := s.LostKeys(); len(got) != 0 {
		t.Fatalf("LostKeys after rewrite = %v, want none", got)
	}
}

func TestLostClearedWhenShardDeleted(t *testing.T) {
	h := newFakeHost()
	group := h.addShard(t, "k00", []byte("gone"), 1)
	h.rotPayload(t, group[0])
	s := newScrubber(h, nil)
	if _, err := s.Round(); err != nil {
		t.Fatalf("Round: %v", err)
	}
	if got := s.LostKeys(); len(got) != 1 {
		t.Fatalf("LostKeys = %v, want [k00]", got)
	}
	// Delete the shard: the next pass prunes the verdict — a loss report must
	// not outlive the shard it reported on.
	delete(h.entries, "k00")
	h.addShard(t, "k01", []byte("fine"), 1)
	if _, err := s.Round(); err != nil {
		t.Fatalf("Round: %v", err)
	}
	if got := s.LostKeys(); len(got) != 0 {
		t.Fatalf("LostKeys = %v, want none after the shard was deleted", got)
	}
}

func TestIOErrorIsNotRot(t *testing.T) {
	h := newFakeHost()
	group := h.addShard(t, "k00", []byte("flaky"), 2)
	h.readErr[group[0]] = errors.New("injected IO error")

	s := newScrubber(h, nil)
	res, err := s.Round()
	if err != nil {
		t.Fatalf("Round: %v", err)
	}
	// An unreadable replica is the §4.4 environmental domain: neither a repair
	// target nor an irreparable verdict.
	if res.BadReplicas != 0 || res.Repaired != 0 || res.Irreparable != 0 {
		t.Fatalf("Round = %+v, want no rot verdicts for an IO error", res)
	}
	if len(h.repairs) != 0 || h.quarantined[group[0]] {
		t.Fatal("IO-erroring replica must not be repaired or quarantined")
	}
}

func TestSwapLostLeavesEntryAlone(t *testing.T) {
	h := newFakeHost()
	group := h.addShard(t, "k00", []byte("contended"), 2)
	h.rotPayload(t, group[0])
	h.swapRefuse = true // a concurrent put/delete/reclaim wins every CAS

	s := newScrubber(h, nil)
	res, err := s.Round()
	if err != nil {
		t.Fatalf("Round: %v", err)
	}
	if res.Repaired != 0 {
		t.Fatalf("Round = %+v, want 0 repaired when the swap is lost", res)
	}
	if st := s.Stats(); st.SwapLost != 1 {
		t.Fatalf("Stats = %+v, want SwapLost 1", st)
	}
	// The rotted locator must NOT be quarantined: the entry was concurrently
	// replaced, and whatever it references now was never verified bad.
	if h.quarantined[group[0]] {
		t.Fatal("lost swap must not quarantine")
	}
}

func TestStepRateLimitAndCursor(t *testing.T) {
	h := newFakeHost()
	for i := 0; i < 5; i++ {
		h.addShard(t, fmt.Sprintf("k%02d", i), []byte("v"), 1)
	}
	s := scrub.New(h, scrub.Config{KeysPerStep: 2}, coverage.NewRegistry(), faults.NewSet())
	var scanned int
	wraps := []bool{false, false, true}
	for i, wantWrap := range wraps {
		res, wrapped, err := s.Step()
		if err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
		scanned += res.KeysScanned
		if wrapped != wantWrap {
			t.Fatalf("Step %d wrapped = %v, want %v", i, wrapped, wantWrap)
		}
	}
	if scanned != 6 { // 2+2+2: the last step wraps past the end into key 0
		t.Fatalf("scanned %d keys over 3 steps, want 6", scanned)
	}
	if st := s.Stats(); st.Rounds != 1 {
		t.Fatalf("Stats = %+v, want 1 completed round", st)
	}
}

func TestUnverifiedRepairFaultLaundersRot(t *testing.T) {
	h := newFakeHost()
	payload := []byte("authentic payload bytes")
	group := h.addShard(t, "k00", payload, 2)
	h.rotPayload(t, group[0]) // header survives, payload rots

	bugs := faults.NewSet(faults.FaultScrubRepairUnverified)
	s := newScrubber(h, bugs)
	if _, err := s.Round(); err != nil {
		t.Fatalf("Round: %v", err)
	}
	if len(h.repairs) != 1 {
		t.Fatalf("got %d repairs, want 1", len(h.repairs))
	}
	// The seeded defect copies replica 0's payload without re-verifying the
	// frame: the repair launders the rotted bytes into a fresh, valid-CRC
	// frame instead of healing from the survivor.
	if bytes.Equal(h.repairs[0].payload, payload) {
		t.Fatal("buggy scrubber repaired from the verified survivor; the seeded defect did not fire")
	}
	// And the fixed scrubber, same setup, heals correctly.
	h2 := newFakeHost()
	g2 := h2.addShard(t, "k00", payload, 2)
	h2.rotPayload(t, g2[0])
	s2 := newScrubber(h2, nil)
	if _, err := s2.Round(); err != nil {
		t.Fatalf("Round: %v", err)
	}
	if len(h2.repairs) != 1 || !bytes.Equal(h2.repairs[0].payload, payload) {
		t.Fatalf("fixed scrubber repair = %+v, want the survivor's payload", h2.repairs)
	}
}

// --- integration: the real store stack (disk → chunk → index → scrub) ---

func newNode(t *testing.T, replicas int, bugs ...faults.Bug) (*store.Store, *disk.Disk) {
	t.Helper()
	set := faults.NewSet(bugs...)
	set.Enable(faults.FaultSilentCorruption)
	dcfg := disk.DefaultConfig()
	dcfg.Faults = set
	s, d, err := store.New(store.Config{
		Disk:     dcfg,
		Seed:     1,
		Bugs:     set,
		Coverage: coverage.NewRegistry(),
		Replicas: replicas,
	})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	return s, d
}

// settle makes every pending write durable and empties the disk write cache,
// so CorruptPage hits the bytes reads will actually observe.
func settle(t *testing.T, s *store.Store, d *disk.Disk) {
	t.Helper()
	if _, err := s.FlushIndex(); err != nil {
		t.Fatalf("FlushIndex: %v", err)
	}
	if _, err := s.FlushSuperblock(); err != nil {
		t.Fatalf("FlushSuperblock: %v", err)
	}
	if err := s.Scheduler().Pump(); err != nil {
		t.Fatalf("Pump: %v", err)
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func groupsOf(t *testing.T, s *store.Store, key string) [][]chunk.Locator {
	t.Helper()
	entry, err := s.Index().Get(key)
	if err != nil {
		t.Fatalf("Index.Get(%q): %v", key, err)
	}
	groups, err := store.DecodeEntryGroups(entry)
	if err != nil {
		t.Fatalf("DecodeEntryGroups: %v", err)
	}
	return groups
}

func corruptReplica(t *testing.T, d *disk.Disk, loc chunk.Locator) {
	t.Helper()
	page := loc.Offset / d.Config().PageSize
	if !d.CorruptPage(loc.Extent, page, disk.RotZero, 1) {
		t.Fatalf("CorruptPage(%v, page %d) refused", loc, page)
	}
}

func TestStoreScrubRepairsRottedReplica(t *testing.T) {
	s, d := newNode(t, 2)
	value := []byte("replicated shard value")
	if _, err := s.Put("shard-a", value); err != nil {
		t.Fatalf("Put: %v", err)
	}
	settle(t, s, d)

	groups := groupsOf(t, s, "shard-a")
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("entry groups = %v, want 1 piece × 2 replicas", groups)
	}
	if groups[0][0].Extent == groups[0][1].Extent {
		t.Fatalf("replicas share extent %v; replica spreading failed", groups[0][0].Extent)
	}
	rotted := groups[0][0]
	corruptReplica(t, d, rotted)

	res, err := s.ScrubRound()
	if err != nil {
		t.Fatalf("ScrubRound: %v", err)
	}
	if res.BadReplicas != 1 || res.Repaired != 1 || res.Irreparable != 0 {
		t.Fatalf("ScrubRound = %+v, want 1 bad / 1 repaired / 0 irreparable", res)
	}
	if got := s.Scrubber().LostKeys(); len(got) != 0 {
		t.Fatalf("LostKeys = %v, want none after repair", got)
	}
	if !s.Chunks().IsQuarantined(rotted) {
		t.Fatal("rotted locator not quarantined after repair")
	}
	// Reads must survive with caches dropped: only the healed on-disk state.
	s.DrainCache()
	settle(t, s, d)
	got, err := s.Get("shard-a")
	if err != nil {
		t.Fatalf("Get after repair: %v", err)
	}
	if !bytes.Equal(got, value) {
		t.Fatalf("Get after repair = %q, want %q", got, value)
	}
	// The entry no longer references the rotted locator.
	for _, g := range groupsOf(t, s, "shard-a") {
		for _, loc := range g {
			if loc == rotted {
				t.Fatal("entry still references the rotted locator")
			}
		}
	}
}

func TestStoreScrubReportsLossWhenAllReplicasRot(t *testing.T) {
	s, d := newNode(t, 2)
	if _, err := s.Put("shard-a", []byte("all copies doomed")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	settle(t, s, d)
	for _, loc := range groupsOf(t, s, "shard-a")[0] {
		corruptReplica(t, d, loc)
	}
	s.DrainCache()

	res, err := s.ScrubRound()
	if err != nil {
		t.Fatalf("ScrubRound: %v", err)
	}
	if res.Irreparable != 1 || res.Repaired != 0 {
		t.Fatalf("ScrubRound = %+v, want 1 irreparable / 0 repaired", res)
	}
	if got := s.Scrubber().LostKeys(); len(got) != 1 || got[0] != "shard-a" {
		t.Fatalf("LostKeys = %v, want [shard-a]", got)
	}
	// The loss is reported, never silently served: the read fails.
	if _, err := s.Get("shard-a"); err == nil {
		t.Fatal("Get of an all-replicas-rotted shard succeeded")
	}
	// Overwriting the shard heals it and clears the verdict.
	if _, err := s.Put("shard-a", []byte("fresh value")); err != nil {
		t.Fatalf("Put over lost shard: %v", err)
	}
	settle(t, s, d)
	if _, err := s.ScrubRound(); err != nil {
		t.Fatalf("ScrubRound: %v", err)
	}
	if got := s.Scrubber().LostKeys(); len(got) != 0 {
		t.Fatalf("LostKeys after overwrite = %v, want none", got)
	}
	got, err := s.Get("shard-a")
	if err != nil || !bytes.Equal(got, []byte("fresh value")) {
		t.Fatalf("Get after overwrite = %q, %v", got, err)
	}
}

func TestCorruptPageInertWithoutFaultSwitch(t *testing.T) {
	dcfg := disk.DefaultConfig() // no Faults set: clean runs stay byte-identical
	d, err := disk.New(dcfg)
	if err != nil {
		t.Fatalf("disk.New: %v", err)
	}
	if d.CorruptPage(1, 0, disk.RotZero, 1) {
		t.Fatal("CorruptPage armed without FaultSilentCorruption")
	}
	if st := d.Stats(); st.SilentRots != 0 {
		t.Fatalf("SilentRots = %d, want 0", st.SilentRots)
	}
}

package benchfmt

import (
	"encoding/json"
	"strings"
	"testing"
)

func goodReport() *Report {
	pt := Point{Writers: 8, PutsPerSec: 1000, P50Micros: 500, P99Micros: 900, SyncsPerOp: 0.5, GroupSizeMean: 6}
	return &Report{
		Schema:      Schema,
		FlushMicros: 300,
		Baseline:    []Point{pt},
		GroupCommit: []Point{pt},
		RPC:         []Point{pt},
	}
}

func TestValidateAcceptsGoodReport(t *testing.T) {
	if err := goodReport().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Report)
		want string
	}{
		{"stale-schema", func(r *Report) { r.Schema = "shardstore-bench-pr5/v1" }, "not current"},
		{"empty-section", func(r *Report) { r.GroupCommit = nil }, "empty"},
		{"zero-throughput", func(r *Report) { r.Baseline[0].PutsPerSec = 0 }, "implausible"},
		{"inverted-percentiles", func(r *Report) { r.RPC[0].P99Micros = r.RPC[0].P50Micros / 2 }, "implausible"},
		{"negative-syncs", func(r *Report) { r.GroupCommit[0].SyncsPerOp = -1 }, "negative"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := goodReport()
			tc.mut(r)
			err := r.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestParseRoundTrip(t *testing.T) {
	blob, err := json.Marshal(goodReport())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Baseline) != 1 || r.Baseline[0].Writers != 8 {
		t.Fatalf("round trip lost data: %+v", r)
	}
	if _, err := Parse([]byte("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

// Read-path snapshot format (BENCH_PR7.json): cmd/benchread emits it, and
// the CI leg re-parses the committed file, exactly like the write-path
// snapshot in benchfmt.go. A separate schema string keeps the two snapshots
// independently regenerable.

package benchfmt

import (
	"encoding/json"
	"fmt"
)

// ReadSchema identifies the read-path snapshot layout.
const ReadSchema = "shardstore-bench-pr7/v1"

// ReadPoint is the read path measured against one index shape.
type ReadPoint struct {
	// Runs is the on-disk run count the reads ran against.
	Runs int `json:"runs"`
	// GetsPerSec is the end-to-end Get throughput.
	GetsPerSec float64 `json:"gets_per_sec"`
	// P50Micros / P99Micros are per-Get latency percentiles in microseconds.
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// RunsProbedPerGet is the measured read amplification: the index's
	// lsm.runs_probed counter over lsm.gets for this measurement window.
	RunsProbedPerGet float64 `json:"runs_probed_per_get"`
}

// ReadReport is the whole read-path snapshot: the same keyspace read before
// and after the leveled-compaction engine quiesces.
type ReadReport struct {
	Schema string `json:"schema"`
	// Keys is the keyspace size; seeding flushes one run per key, so it is
	// also the pre-compaction run count.
	Keys int `json:"keys"`
	// Before is the fragmented (one-run-per-key) shape; After is the shape
	// the compaction engine settled into.
	Before ReadPoint `json:"before_compaction"`
	After  ReadPoint `json:"after_compaction"`
	// Compactions and BytesRewritten summarize the work the engine did to
	// get from Before to After (compact.steps / compact.bytes_rewritten).
	Compactions    int    `json:"compactions"`
	BytesRewritten uint64 `json:"bytes_rewritten"`
}

// Validate checks structural integrity and that the snapshot actually shows
// the win the engine exists for: strictly lower read amplification after
// compaction.
func (r *ReadReport) Validate() error {
	if r.Schema != ReadSchema {
		return fmt.Errorf("benchfmt: read schema %q is not current (want %q); regenerate with scripts/bench.sh", r.Schema, ReadSchema)
	}
	if r.Keys <= 0 {
		return fmt.Errorf("benchfmt: read snapshot has no keys")
	}
	for _, sec := range []struct {
		name string
		p    ReadPoint
	}{{"before_compaction", r.Before}, {"after_compaction", r.After}} {
		p := sec.p
		if p.Runs <= 0 || p.GetsPerSec <= 0 || p.P50Micros <= 0 || p.P99Micros < p.P50Micros {
			return fmt.Errorf("benchfmt: section %q has an implausible point %+v", sec.name, p)
		}
		if p.RunsProbedPerGet < 1 {
			return fmt.Errorf("benchfmt: section %q probes %.2f runs/get — every hit probes at least one run", sec.name, p.RunsProbedPerGet)
		}
	}
	if r.Compactions <= 0 {
		return fmt.Errorf("benchfmt: read snapshot recorded no compactions")
	}
	if r.After.RunsProbedPerGet >= r.Before.RunsProbedPerGet {
		return fmt.Errorf("benchfmt: read amplification did not improve (%.2f -> %.2f runs/get)",
			r.Before.RunsProbedPerGet, r.After.RunsProbedPerGet)
	}
	return nil
}

// ParseRead decodes and validates a read-path snapshot.
func ParseRead(data []byte) (*ReadReport, error) {
	var r ReadReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Package benchfmt defines the committed benchmark snapshot format
// (BENCH_PR6.json): cmd/benchwrite emits it, and the CI leg re-parses the
// committed file against the same schema so the snapshot can never drift
// from the code that produced it.
package benchfmt

import (
	"encoding/json"
	"fmt"
)

// Schema identifies the snapshot layout. Bump it whenever the Report shape
// or the meaning of a field changes; the CI validation test fails on any
// committed snapshot whose schema string does not match, which is what
// "the file is current" means mechanically.
const Schema = "shardstore-bench-pr6/v1"

// Point is one measured write-path configuration.
type Point struct {
	// Writers is the number of concurrent durable writers.
	Writers int `json:"writers"`
	// PutsPerSec is the end-to-end durable-put throughput.
	PutsPerSec float64 `json:"puts_per_sec"`
	// P50Micros / P99Micros are per-put latency percentiles in microseconds.
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// SyncsPerOp is device flushes divided by puts — the quantity group
	// commit amortizes (1.0 ≈ lock-step, →0 as groups widen).
	SyncsPerOp float64 `json:"syncs_per_op"`
	// GroupSizeMean is the mean commit-group size (0 for the baseline,
	// which has no commit groups).
	GroupSizeMean float64 `json:"group_size_mean,omitempty"`
}

// Report is the whole snapshot.
type Report struct {
	Schema string `json:"schema"`
	// FlushMicros is the modeled device-flush latency both disciplines ran
	// against (the simulator's Sync is otherwise instantaneous).
	FlushMicros int `json:"flush_us"`
	// Baseline is the per-put lock-step discipline (put, pump, repeat).
	Baseline []Point `json:"baseline"`
	// GroupCommit is the shared-flush-barrier discipline.
	GroupCommit []Point `json:"group_commit"`
	// RPC is the durable-put path over the v2 wire protocol.
	RPC []Point `json:"rpc"`
}

// Validate checks structural integrity: current schema, at least one point
// per section, and strictly positive throughput and latency everywhere.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("benchfmt: schema %q is not current (want %q); regenerate with scripts/bench.sh", r.Schema, Schema)
	}
	sections := []struct {
		name string
		pts  []Point
	}{{"baseline", r.Baseline}, {"group_commit", r.GroupCommit}, {"rpc", r.RPC}}
	for _, sec := range sections {
		if len(sec.pts) == 0 {
			return fmt.Errorf("benchfmt: section %q is empty", sec.name)
		}
		for _, p := range sec.pts {
			if p.Writers <= 0 || p.PutsPerSec <= 0 || p.P50Micros <= 0 || p.P99Micros < p.P50Micros {
				return fmt.Errorf("benchfmt: section %q has an implausible point %+v", sec.name, p)
			}
			if p.SyncsPerOp < 0 {
				return fmt.Errorf("benchfmt: section %q has negative syncs/op %+v", sec.name, p)
			}
		}
	}
	return nil
}

// Parse decodes and validates a snapshot.
func Parse(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Package coverage implements the lightweight probe registry the validation
// harnesses use to monitor check effectiveness (§4.2 of the paper).
//
// The paper uses code-coverage metrics to find blind spots in property-based
// tests — states the harness never reaches — and tunes argument-selection
// strategies to remedy them. Go's native coverage tooling is file-oriented
// and awkward to interrogate from inside a running harness, so we instead
// instrument interesting implementation sites with named probes. A harness
// resets the registry, runs its workload, and then inspects which probes were
// hit and how often.
//
// Registries are safe for concurrent use: the parallel conformance pool
// (internal/core) hammers probes from many worker goroutines at once, so
// counters are lock-free atomics and per-case registries can be combined
// with Merge.
package coverage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry accumulates named hit counters. The zero value is ready to use.
// All methods are safe for concurrent use; Hit is lock-free on the fast path
// (an existing probe is a sync.Map load plus an atomic add).
type Registry struct {
	// probes maps probe name -> *atomic.Uint64. It is held behind an atomic
	// pointer so Reset can swap in a fresh map without racing in-flight Hits
	// (a Hit racing a Reset lands in exactly one of the two generations,
	// which is the same guarantee a locked map would give).
	probes atomic.Pointer[sync.Map]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// current returns the live probe map, creating it on first use.
func (r *Registry) current() *sync.Map {
	if m := r.probes.Load(); m != nil {
		return m
	}
	m := &sync.Map{}
	if r.probes.CompareAndSwap(nil, m) {
		return m
	}
	return r.probes.Load()
}

// counter returns the hit counter for name, creating it if needed.
func (r *Registry) counter(name string) *atomic.Uint64 {
	m := r.current()
	if v, ok := m.Load(name); ok {
		return v.(*atomic.Uint64)
	}
	v, _ := m.LoadOrStore(name, new(atomic.Uint64))
	return v.(*atomic.Uint64)
}

// Hit increments the counter for probe name. A nil registry discards hits, so
// production code can hold a nil *Registry.
func (r *Registry) Hit(name string) {
	if r == nil {
		return
	}
	r.counter(name).Add(1)
}

// Add increments the counter for probe name by n.
func (r *Registry) Add(name string, n uint64) {
	if r == nil || n == 0 {
		return
	}
	r.counter(name).Add(n)
}

// Count returns the number of times probe name was hit.
func (r *Registry) Count(name string) uint64 {
	if r == nil {
		return 0
	}
	m := r.probes.Load()
	if m == nil {
		return 0
	}
	v, ok := m.Load(name)
	if !ok {
		return 0
	}
	return v.(*atomic.Uint64).Load()
}

// Covered reports whether probe name was hit at least once.
func (r *Registry) Covered(name string) bool { return r.Count(name) > 0 }

// Reset clears all counters.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.probes.Store(&sync.Map{})
}

// Merge adds every counter of other into r. The parallel conformance pool
// gives each test case a private registry and merges the per-case counts
// into the run's shared registry afterwards, so coverage totals are
// independent of worker count and scheduling. Merging a registry into itself
// is a no-op rather than a doubling.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil || r == other {
		return
	}
	m := other.probes.Load()
	if m == nil {
		return
	}
	m.Range(func(k, v any) bool {
		if n := v.(*atomic.Uint64).Load(); n > 0 {
			r.counter(k.(string)).Add(n)
		}
		return true
	})
}

// Snapshot returns a copy of all counters.
func (r *Registry) Snapshot() map[string]uint64 {
	if r == nil {
		return nil
	}
	m := r.probes.Load()
	if m == nil {
		return nil
	}
	out := make(map[string]uint64)
	m.Range(func(k, v any) bool {
		if n := v.(*atomic.Uint64).Load(); n > 0 {
			out[k.(string)] = n
		}
		return true
	})
	return out
}

// Missing returns the probes in want that were never hit. Harnesses declare
// the probe set they expect their workload to reach and fail (or retune their
// biases) when coverage erodes.
func (r *Registry) Missing(want []string) []string {
	var missing []string
	for _, name := range want {
		if !r.Covered(name) {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}

// Report renders the counters as a stable, human-readable table, optionally
// filtered to probes with the given prefix.
func (r *Registry) Report(prefix string) string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-48s %d\n", name, snap[name])
	}
	return b.String()
}

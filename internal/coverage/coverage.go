// Package coverage implements the lightweight probe registry the validation
// harnesses use to monitor check effectiveness (§4.2 of the paper).
//
// The paper uses code-coverage metrics to find blind spots in property-based
// tests — states the harness never reaches — and tunes argument-selection
// strategies to remedy them. Go's native coverage tooling is file-oriented
// and awkward to interrogate from inside a running harness, so we instead
// instrument interesting implementation sites with named probes. A harness
// resets the registry, runs its workload, and then inspects which probes were
// hit and how often.
package coverage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry accumulates named hit counters. The zero value is ready to use.
type Registry struct {
	mu     sync.Mutex
	counts map[string]uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counts: make(map[string]uint64)}
}

// Hit increments the counter for probe name. A nil registry discards hits, so
// production code can hold a nil *Registry.
func (r *Registry) Hit(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.counts == nil {
		r.counts = make(map[string]uint64)
	}
	r.counts[name]++
	r.mu.Unlock()
}

// Count returns the number of times probe name was hit.
func (r *Registry) Count(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[name]
}

// Covered reports whether probe name was hit at least once.
func (r *Registry) Covered(name string) bool { return r.Count(name) > 0 }

// Reset clears all counters.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counts = make(map[string]uint64)
	r.mu.Unlock()
}

// Snapshot returns a copy of all counters.
func (r *Registry) Snapshot() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// Missing returns the probes in want that were never hit. Harnesses declare
// the probe set they expect their workload to reach and fail (or retune their
// biases) when coverage erodes.
func (r *Registry) Missing(want []string) []string {
	var missing []string
	for _, name := range want {
		if !r.Covered(name) {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}

// Report renders the counters as a stable, human-readable table, optionally
// filtered to probes with the given prefix.
func (r *Registry) Report(prefix string) string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-48s %d\n", name, snap[name])
	}
	return b.String()
}

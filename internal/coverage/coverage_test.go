package coverage

import (
	"strings"
	"sync"
	"testing"
)

func TestHitAndCount(t *testing.T) {
	r := NewRegistry()
	r.Hit("a")
	r.Hit("a")
	r.Hit("b")
	if r.Count("a") != 2 || r.Count("b") != 1 || r.Count("c") != 0 {
		t.Fatalf("counts: a=%d b=%d c=%d", r.Count("a"), r.Count("b"), r.Count("c"))
	}
	if !r.Covered("a") || r.Covered("c") {
		t.Fatal("covered wrong")
	}
}

func TestNilRegistryDiscards(t *testing.T) {
	var r *Registry
	r.Hit("x") // must not panic
	if r.Count("x") != 0 || r.Covered("x") {
		t.Fatal("nil registry recorded")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil snapshot")
	}
	r.Reset()
}

func TestZeroValueUsable(t *testing.T) {
	var r Registry
	r.Hit("x")
	if r.Count("x") != 1 {
		t.Fatal("zero value broken")
	}
}

func TestMissing(t *testing.T) {
	r := NewRegistry()
	r.Hit("reached")
	missing := r.Missing([]string{"reached", "blind-spot-2", "blind-spot-1"})
	if len(missing) != 2 || missing[0] != "blind-spot-1" {
		t.Fatalf("missing: %v", missing)
	}
}

func TestResetAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Hit("x")
	snap := r.Snapshot()
	r.Reset()
	if snap["x"] != 1 {
		t.Fatal("snapshot should be a copy")
	}
	if r.Count("x") != 0 {
		t.Fatal("reset failed")
	}
}

func TestReportFiltersByPrefix(t *testing.T) {
	r := NewRegistry()
	r.Hit("cache.hit")
	r.Hit("cache.miss")
	r.Hit("disk.crash")
	rep := r.Report("cache.")
	if !strings.Contains(rep, "cache.hit") || strings.Contains(rep, "disk.crash") {
		t.Fatalf("report: %q", rep)
	}
}

func TestConcurrentHits(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Hit("contended")
			}
		}()
	}
	wg.Wait()
	if r.Count("contended") != 8000 {
		t.Fatalf("lost hits: %d", r.Count("contended"))
	}
}

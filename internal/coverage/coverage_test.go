package coverage

import (
	"strings"
	"sync"
	"testing"
)

func TestHitAndCount(t *testing.T) {
	r := NewRegistry()
	r.Hit("a")
	r.Hit("a")
	r.Hit("b")
	if r.Count("a") != 2 || r.Count("b") != 1 || r.Count("c") != 0 {
		t.Fatalf("counts: a=%d b=%d c=%d", r.Count("a"), r.Count("b"), r.Count("c"))
	}
	if !r.Covered("a") || r.Covered("c") {
		t.Fatal("covered wrong")
	}
}

func TestNilRegistryDiscards(t *testing.T) {
	var r *Registry
	r.Hit("x") // must not panic
	if r.Count("x") != 0 || r.Covered("x") {
		t.Fatal("nil registry recorded")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil snapshot")
	}
	r.Reset()
}

func TestZeroValueUsable(t *testing.T) {
	var r Registry
	r.Hit("x")
	if r.Count("x") != 1 {
		t.Fatal("zero value broken")
	}
}

func TestMissing(t *testing.T) {
	r := NewRegistry()
	r.Hit("reached")
	missing := r.Missing([]string{"reached", "blind-spot-2", "blind-spot-1"})
	if len(missing) != 2 || missing[0] != "blind-spot-1" {
		t.Fatalf("missing: %v", missing)
	}
}

func TestResetAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Hit("x")
	snap := r.Snapshot()
	r.Reset()
	if snap["x"] != 1 {
		t.Fatal("snapshot should be a copy")
	}
	if r.Count("x") != 0 {
		t.Fatal("reset failed")
	}
}

func TestReportFiltersByPrefix(t *testing.T) {
	r := NewRegistry()
	r.Hit("cache.hit")
	r.Hit("cache.miss")
	r.Hit("disk.crash")
	rep := r.Report("cache.")
	if !strings.Contains(rep, "cache.hit") || strings.Contains(rep, "disk.crash") {
		t.Fatalf("report: %q", rep)
	}
}

func TestConcurrentHits(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Hit("contended")
			}
		}()
	}
	wg.Wait()
	if r.Count("contended") != 8000 {
		t.Fatalf("lost hits: %d", r.Count("contended"))
	}
}

func TestMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Hit("shared")
	a.Hit("only-a")
	b.Hit("shared")
	b.Hit("shared")
	b.Hit("only-b")
	a.Merge(b)
	if a.Count("shared") != 3 || a.Count("only-a") != 1 || a.Count("only-b") != 1 {
		t.Fatalf("merge: %v", a.Snapshot())
	}
	// Merging must not mutate the source.
	if b.Count("shared") != 2 || b.Count("only-a") != 0 {
		t.Fatalf("merge mutated source: %v", b.Snapshot())
	}
	// Self-merge and nil cases are no-ops.
	a.Merge(a)
	if a.Count("shared") != 3 {
		t.Fatalf("self-merge doubled counts: %d", a.Count("shared"))
	}
	a.Merge(nil)
	var nilr *Registry
	nilr.Merge(a)
	a.Merge(NewRegistry())
	if a.Count("shared") != 3 {
		t.Fatalf("no-op merges changed counts: %d", a.Count("shared"))
	}
}

func TestAdd(t *testing.T) {
	r := NewRegistry()
	r.Add("bulk", 5)
	r.Add("bulk", 0)
	if r.Count("bulk") != 5 {
		t.Fatalf("add: %d", r.Count("bulk"))
	}
	var nilr *Registry
	nilr.Add("bulk", 1) // must not panic
}

// TestParallelHarnessHammer is the concurrency-safety regression test for
// the parallel conformance pool: many goroutines hammering overlapping probe
// sets, interleaved with snapshots, merges into a shared registry, and a
// reset — the exact access pattern core.Run's workers produce. Run under
// -race (scripts/ci.sh does) to catch unsynchronized access.
func TestParallelHarnessHammer(t *testing.T) {
	shared := NewRegistry()
	const workers = 16
	const hitsPerProbe = 500
	probes := []string{"store.put", "store.get", "disk.crash", "lsm.flush", "chunk.reclaim"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := NewRegistry()
			for j := 0; j < hitsPerProbe; j++ {
				for _, p := range probes {
					local.Hit(p)
				}
				if j%100 == 0 {
					_ = local.Snapshot()
					_ = local.Covered("store.put")
				}
			}
			shared.Merge(local)
		}(w)
	}
	// Concurrent readers over the shared registry while merges land.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = shared.Snapshot()
					_ = shared.Report("store.")
					_ = shared.Missing(probes)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	for _, p := range probes {
		if got := shared.Count(p); got != workers*hitsPerProbe {
			t.Fatalf("probe %s: %d hits, want %d", p, got, workers*hitsPerProbe)
		}
	}
	shared.Reset()
	if len(shared.Snapshot()) != 0 {
		t.Fatalf("reset left counters: %v", shared.Snapshot())
	}
}

package faults

import "testing"

func TestCatalogComplete(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("catalog has %d entries, want 16 (Fig 5)", len(all))
	}
	classes := map[Class]int{}
	for i, info := range all {
		if int(info.Bug) != i+1 {
			t.Fatalf("catalog out of order at %d: %v", i, info.Bug)
		}
		if info.Description == "" || info.Component == "" {
			t.Fatalf("incomplete entry: %+v", info)
		}
		classes[info.Class]++
	}
	// Fig 5's grouping: 5 functional correctness, 5 crash consistency,
	// 6 concurrency.
	if classes[FunctionalCorrectness] != 5 || classes[CrashConsistency] != 5 || classes[Concurrency] != 6 {
		t.Fatalf("class split: %v", classes)
	}
}

func TestSetEnableDisable(t *testing.T) {
	s := NewSet()
	if s.Enabled(Bug1ReclaimOffByOne) {
		t.Fatal("fresh set has bugs enabled")
	}
	s.Enable(Bug1ReclaimOffByOne)
	if !s.Enabled(Bug1ReclaimOffByOne) {
		t.Fatal("enable failed")
	}
	if s.Enabled(Bug2CacheNotDrained) {
		t.Fatal("wrong bug enabled")
	}
	s.Disable(Bug1ReclaimOffByOne)
	if s.Enabled(Bug1ReclaimOffByOne) {
		t.Fatal("disable failed")
	}
}

func TestNilSetIsAllFixed(t *testing.T) {
	var s *Set
	if s.Enabled(Bug10UUIDCollision) {
		t.Fatal("nil set enabled a bug")
	}
	s.Enable(Bug1ReclaimOffByOne) // must not panic
	s.Reset()
	if s.List() != nil {
		t.Fatal("nil set lists bugs")
	}
}

func TestSetListAndReset(t *testing.T) {
	s := NewSet(Bug3ShutdownMetadataSkip, Bug1ReclaimOffByOne)
	got := s.List()
	if len(got) != 2 || got[0] != Bug1ReclaimOffByOne || got[1] != Bug3ShutdownMetadataSkip {
		t.Fatalf("list: %v", got)
	}
	s.Reset()
	if len(s.List()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestLookup(t *testing.T) {
	info, ok := Lookup(Bug14CompactionReclaimRace)
	if !ok || info.Class != Concurrency || info.Component != "index" {
		t.Fatalf("lookup: %+v %v", info, ok)
	}
	if _, ok := Lookup(Bug(99)); ok {
		t.Fatal("phantom bug found")
	}
}

func TestEnableUnknownBugPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSet().Enable(Bug(99))
}

func TestStrings(t *testing.T) {
	if Bug10UUIDCollision.String() == "" || FunctionalCorrectness.String() == "" {
		t.Fatal("empty strings")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class string empty")
	}
}

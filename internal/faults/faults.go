// Package faults is a registry of seedable defects and environmental fault
// switches used by the validation experiments.
//
// The paper's headline result (Fig 5) is a catalog of 16 issues that the
// lightweight formal methods stack prevented from reaching production. To
// reproduce that result without access to the original buggy revisions, each
// issue is re-seeded here as a named fault. Implementation code consults
// Enabled at the exact site where the production bug lived; with the fault
// disabled the code takes the fixed path, with it enabled the original defect
// is reintroduced. Experiments then demonstrate that the designated checker
// class detects each fault.
//
// The registry is also used for environmental failure injection (transient
// and permanent disk IO errors, §4.4), which is orthogonal to the seeded
// bugs: failure injection exercises the *fixed* code under a hostile
// environment, while seeded bugs break the code under a clean environment.
package faults

import (
	"fmt"
	"sort"
	"sync"
)

// Bug identifies one of the seeded defects from Fig 5 of the paper, plus a
// small number of auxiliary faults used by individual tests.
type Bug int

// The 16 issues of Fig 5, in paper order. The comment after each constant is
// the paper's one-line description.
const (
	bugInvalid Bug = iota

	// Functional correctness (found by property-based testing, §4).

	Bug1ReclaimOffByOne      // chunk store: off-by-one in reclamation for chunks of size close to PageSize
	Bug2CacheNotDrained      // buffer cache: cache not drained after resetting an extent
	Bug3ShutdownMetadataSkip // index: metadata not flushed during shutdown if an extent was reset
	Bug4DiskReturnLosesShard // API: shards lost if a disk was removed from service and later returned
	Bug5ReclaimIOErrorDrop   // chunk store: reclamation forgets chunks after a transient read IO error

	// Crash consistency (found by PBT over crash states, §5).

	Bug6SuperblockOwnershipDep // superblock: Dependency for extent ownership incorrect after a reboot
	Bug7SoftHardPointerSkew    // superblock: mismatch between soft and hard write pointers after crash following extent reset
	Bug8CacheWriteMissingDep   // buffer cache: writes missing a dependency on the soft write pointer update
	Bug9RefModelCrashReclaim   // harness: reference model not updated correctly after a crash during reclamation
	Bug10UUIDCollision         // chunk store: reclamation forgets chunks after a crash and UUID collision

	// Concurrency (found by stateless model checking, §6).

	Bug11WriteFlushRace        // chunk store: chunk locators invalid after a race between write and flush
	Bug12BufferPoolDeadlock    // superblock: buffer pool exhaustion deadlocks threads waiting for a superblock update
	Bug13ListRemoveRace        // API: race between control plane listing and removal of shards
	Bug14CompactionReclaimRace // index: race between reclamation and LSM compaction loses recent index entries
	Bug15RefModelLocatorReuse  // harness: reference model reused chunk locators other code assumed unique
	Bug16BulkCreateRemoveRace  // API: race between control plane bulk create and remove of shards

	// Auxiliary faults. These are not part of the Fig 5 catalog (All and
	// Lookup do not report them): the first is an environmental switch like
	// the §4.4 IO-error injection, the second is a seeded scrubber defect
	// used by the scrub detection experiment.

	// FaultSilentCorruption arms disk-level silent corruption: with it
	// enabled, Disk.CorruptPage mutates durable page bytes in place (bit rot)
	// without any IO error. Disabled, CorruptPage is a no-op, so clean runs
	// are byte-for-byte unaffected by the scrub machinery.
	FaultSilentCorruption

	// FaultScrubRepairUnverified seeds a scrubber defect: repair copies from
	// the first replica without re-verifying its frame, so a repair sourced
	// from a rotted replica spreads the corruption instead of healing it.
	FaultScrubRepairUnverified

	// FaultGroupCommitTornBarrier seeds a group-commit defect: the commit
	// leader skips the device flush but still reports the whole group
	// durable, so dependencies claim persistence for pages that are only in
	// the volatile write cache — a torn barrier the §5 persistence check
	// must catch after a crash.
	FaultGroupCommitTornBarrier

	// FaultCompactStaleManifest seeds a leveled-compaction defect: the new
	// manifest generation is published without a dependency on the output
	// run chunk, so both sit in the volatile write cache as peers. A crash
	// that tears the cache can persist the manifest page while dropping the
	// chunk's pages — recovery then serves a generation whose merged run
	// never reached the media, and the index entries it carried are gone.
	FaultCompactStaleManifest

	// FaultScanTornLevelSwap seeds a scan-path defect: the iterator snapshot
	// skips the manifest-generation re-check, so a scan that overlaps a
	// leveled compaction composes its view from the pre-swap deep levels and
	// the post-swap L0 — a torn level set. Keys whose newest version moved
	// across the swap boundary vanish from (or resurrect in) scan results
	// even though point gets still see them.
	FaultScanTornLevelSwap

	numBugs
)

// Class is the top-level correctness property a bug violates (the section
// grouping of Fig 5).
type Class int

const (
	FunctionalCorrectness Class = iota
	CrashConsistency
	Concurrency
)

func (c Class) String() string {
	switch c {
	case FunctionalCorrectness:
		return "functional correctness"
	case CrashConsistency:
		return "crash consistency"
	case Concurrency:
		return "concurrency"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Info describes one catalog entry.
type Info struct {
	Bug         Bug
	Class       Class
	Component   string
	Description string
}

var catalog = map[Bug]Info{
	Bug1ReclaimOffByOne:        {Bug1ReclaimOffByOne, FunctionalCorrectness, "chunk store", "off-by-one error in reclamation for chunks of size close to PageSize"},
	Bug2CacheNotDrained:        {Bug2CacheNotDrained, FunctionalCorrectness, "buffer cache", "cache was not correctly drained after resetting an extent"},
	Bug3ShutdownMetadataSkip:   {Bug3ShutdownMetadataSkip, FunctionalCorrectness, "index", "metadata was not flushed correctly during shutdown if an extent was reset"},
	Bug4DiskReturnLosesShard:   {Bug4DiskReturnLosesShard, FunctionalCorrectness, "api", "shards could be lost if a disk was removed from service and then later returned"},
	Bug5ReclaimIOErrorDrop:     {Bug5ReclaimIOErrorDrop, FunctionalCorrectness, "chunk store", "reclamation could forget chunks after a transient read IO error"},
	Bug6SuperblockOwnershipDep: {Bug6SuperblockOwnershipDep, CrashConsistency, "superblock", "superblock dependency for extent ownership was incorrect after a reboot"},
	Bug7SoftHardPointerSkew:    {Bug7SoftHardPointerSkew, CrashConsistency, "superblock", "mismatch between soft and hard write pointers in a crash after an extent reset"},
	Bug8CacheWriteMissingDep:   {Bug8CacheWriteMissingDep, CrashConsistency, "buffer cache", "writes did not include a dependency on the soft write pointer update"},
	Bug9RefModelCrashReclaim:   {Bug9RefModelCrashReclaim, CrashConsistency, "chunk store", "reference model was not updated correctly after a crash during reclamation"},
	Bug10UUIDCollision:         {Bug10UUIDCollision, CrashConsistency, "chunk store", "reclamation could forget chunks after a crash and UUID collision"},
	Bug11WriteFlushRace:        {Bug11WriteFlushRace, Concurrency, "chunk store", "chunk locators could become invalid after a race between write and flush"},
	Bug12BufferPoolDeadlock:    {Bug12BufferPoolDeadlock, Concurrency, "superblock", "buffer pool exhaustion could cause threads waiting for a superblock update to deadlock"},
	Bug13ListRemoveRace:        {Bug13ListRemoveRace, Concurrency, "api", "race between control plane operations for listing and removal of shards"},
	Bug14CompactionReclaimRace: {Bug14CompactionReclaimRace, Concurrency, "index", "race between reclamation and LSM compaction could lose recent index entries"},
	Bug15RefModelLocatorReuse:  {Bug15RefModelLocatorReuse, Concurrency, "chunk store", "reference model could re-use chunk locators, which other code assumed were unique"},
	Bug16BulkCreateRemoveRace:  {Bug16BulkCreateRemoveRace, Concurrency, "api", "race between control plane bulk operations for creating and removing shards"},
}

// Lookup returns the catalog entry for b.
func Lookup(b Bug) (Info, bool) {
	info, ok := catalog[b]
	return info, ok
}

// All returns the full Fig 5 catalog in paper order.
func All() []Info {
	out := make([]Info, 0, len(catalog))
	for _, info := range catalog {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bug < out[j].Bug })
	return out
}

func (b Bug) String() string {
	if info, ok := catalog[b]; ok {
		return fmt.Sprintf("bug#%d(%s)", int(b), info.Component)
	}
	switch b {
	case FaultSilentCorruption:
		return "fault(silent-corruption)"
	case FaultScrubRepairUnverified:
		return "fault(scrub-repair-unverified)"
	case FaultGroupCommitTornBarrier:
		return "fault(group-commit-torn-barrier)"
	case FaultCompactStaleManifest:
		return "fault(compact-stale-manifest)"
	case FaultScanTornLevelSwap:
		return "fault(scan-torn-level-swap)"
	}
	return fmt.Sprintf("bug#%d", int(b))
}

// Set is an independent collection of enabled faults. A Set is what test
// harnesses thread through the system under test so that concurrently running
// tests do not interfere.
type Set struct {
	mu      sync.Mutex
	enabled [numBugs]bool
}

// NewSet returns a Set with every fault disabled (the fixed code paths).
func NewSet(bugs ...Bug) *Set {
	s := &Set{}
	for _, b := range bugs {
		s.Enable(b)
	}
	return s
}

// Enable reintroduces the defect b.
func (s *Set) Enable(b Bug) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b <= bugInvalid || b >= numBugs {
		panic(fmt.Sprintf("faults: unknown bug %d", int(b)))
	}
	s.enabled[b] = true
}

// Disable restores the fixed behavior for b.
func (s *Set) Disable(b Bug) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enabled[b] = false
}

// Enabled reports whether the defect b is active. A nil Set behaves as all
// faults disabled, so production code can hold a nil *Set at zero cost.
func (s *Set) Enabled(b Bug) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return b > bugInvalid && b < numBugs && s.enabled[b]
}

// Reset disables every fault.
func (s *Set) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enabled = [numBugs]bool{}
}

// List returns the enabled faults in ascending order.
func (s *Set) List() []Bug {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Bug
	for b := bugInvalid + 1; b < numBugs; b++ {
		if s.enabled[b] {
			out = append(out, b)
		}
	}
	return out
}

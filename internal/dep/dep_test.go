package dep

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"shardstore/internal/disk"
)

func newSched(t *testing.T) *Scheduler {
	t.Helper()
	d, err := disk.New(disk.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return NewScheduler(d, nil)
}

func TestWriteBecomesPersistentAfterPump(t *testing.T) {
	s := newSched(t)
	d := s.Write("w", 1, 0, []byte{1, 2, 3})
	if d.IsPersistent() {
		t.Fatal("persistent before pump")
	}
	if err := s.Pump(); err != nil {
		t.Fatal(err)
	}
	if !d.IsPersistent() {
		t.Fatal("not persistent after pump")
	}
	buf := make([]byte, 3)
	if err := s.Disk().ReadAt(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Fatalf("data not written: %v", buf)
	}
}

func TestDependencyOrderingEnforced(t *testing.T) {
	s := newSched(t)
	first := s.Write("first", 1, 0, []byte{1})
	second := s.Write("second", 2, 0, []byte{2}, first)

	// One issue round puts only the first write on disk.
	if n := s.Step(); n != 1 {
		t.Fatalf("step issued %d, want 1 (only the independent write)", n)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if !first.IsPersistent() {
		t.Fatal("first should be durable")
	}
	if second.IsPersistent() {
		t.Fatal("second must not be durable before being issued")
	}
	if n := s.Step(); n != 1 {
		t.Fatalf("second step issued %d, want 1", n)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if !second.IsPersistent() {
		t.Fatal("second should now be durable")
	}
}

func TestAndCombinesDependencies(t *testing.T) {
	s := newSched(t)
	a := s.Write("a", 1, 0, []byte{1})
	b := s.Write("b", 2, 0, []byte{2})
	both := a.And(b)
	if n := s.Step(); n != 2 {
		t.Fatalf("issued %d", n)
	}
	if both.IsPersistent() {
		t.Fatal("And persistent before sync")
	}
	_ = s.Sync()
	if !both.IsPersistent() {
		t.Fatal("And not persistent after sync")
	}
}

func TestResolvedIsAlwaysPersistent(t *testing.T) {
	if !Resolved().IsPersistent() {
		t.Fatal("Resolved must be persistent")
	}
	if Resolved().And() != Resolved() {
		t.Fatal("And of nothing should collapse to Resolved")
	}
	if !All(nil, Resolved(), nil).IsPersistent() {
		t.Fatal("All of nils must be persistent")
	}
}

func TestFutureBinding(t *testing.T) {
	s := newSched(t)
	fut := s.Future()
	if fut.IsPersistent() {
		t.Fatal("unbound future persistent")
	}
	w := s.Write("record", 0, 0, []byte{7})
	s.Bind(fut, w)
	if fut.IsPersistent() {
		t.Fatal("bound future persistent before pump")
	}
	_ = s.Pump()
	if !fut.IsPersistent() {
		t.Fatal("bound future not persistent after pump")
	}
}

func TestWriteWaitingOnUnboundFutureBlocksPump(t *testing.T) {
	s := newSched(t)
	fut := s.Future()
	s.Write("gated", 1, 0, []byte{1}, fut)
	if err := s.Pump(); !errors.Is(err, ErrUnboundFuture) {
		t.Fatalf("pump error = %v, want ErrUnboundFuture", err)
	}
	s.Bind(fut, Resolved())
	if err := s.Pump(); err != nil {
		t.Fatalf("pump after bind: %v", err)
	}
}

func TestCoalescingAdjacentWrites(t *testing.T) {
	s := newSched(t)
	s.Write("a", 1, 0, []byte{1, 2})
	s.Write("b", 1, 2, []byte{3, 4})
	s.Write("c", 1, 4, []byte{5, 6})
	s.Write("d", 2, 0, []byte{9}) // different extent: separate IO
	if n := s.Step(); n != 4 {
		t.Fatalf("issued %d", n)
	}
	st := s.Stats()
	if st.IOs != 2 {
		t.Fatalf("IOs = %d, want 2 (one coalesced run + one single)", st.IOs)
	}
	if st.Coalesced != 2 {
		t.Fatalf("coalesced = %d, want 2", st.Coalesced)
	}
	_ = s.Sync()
	buf := make([]byte, 6)
	_ = s.Disk().ReadAt(1, 0, buf)
	if !bytes.Equal(buf, []byte{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("coalesced content: %v", buf)
	}
}

func TestReadAtOverlaysPendingQueue(t *testing.T) {
	s := newSched(t)
	fut := s.Future() // keeps the write unissuable
	s.Write("pending", 1, 4, []byte{0xAB, 0xCD}, fut)
	buf := make([]byte, 8)
	if err := s.ReadAt(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[4] != 0xAB || buf[5] != 0xCD {
		t.Fatalf("pending write not visible: %v", buf)
	}
	if buf[0] != 0 {
		t.Fatalf("unrelated bytes affected: %v", buf)
	}
}

func TestCrashFreezesPersistence(t *testing.T) {
	s := newSched(t)
	a := s.Write("durable", 1, 0, []byte{1})
	_ = s.Pump()
	b := s.Write("pending", 2, 0, []byte{2})
	s.Crash(rand.New(rand.NewSource(1)))
	if !a.IsPersistent() {
		t.Fatal("pre-crash durable write lost its persistence")
	}
	if b.IsPersistent() {
		t.Fatal("pending write persistent after crash")
	}
}

func TestCancelExtentPendingSupersedes(t *testing.T) {
	s := newSched(t)
	old := s.Write("old", 3, 0, []byte{1})
	replacement := s.Write("replacement", 4, 0, []byte{1})
	n := s.CancelExtentPending(3, replacement)
	if n != 1 {
		t.Fatalf("cancelled %d", n)
	}
	if old.IsPersistent() {
		t.Fatal("superseded write persistent before replacement durable")
	}
	_ = s.Pump()
	if !old.IsPersistent() {
		t.Fatal("superseded write should inherit replacement's persistence")
	}
	// The cancelled bytes must never reach the disk.
	buf := make([]byte, 1)
	_ = s.Disk().ReadAt(3, 0, buf)
	if buf[0] != 0 {
		t.Fatal("cancelled write reached the disk")
	}
}

func TestStepRandomIssuesSubset(t *testing.T) {
	s := newSched(t)
	for i := 0; i < 10; i++ {
		s.Write("w", disk.ExtentID(1+i%3), (i/3)*s.Disk().Config().PageSize, []byte{byte(i)})
	}
	rng := rand.New(rand.NewSource(3))
	n := s.StepRandom(rng)
	if n == 0 {
		t.Fatal("StepRandom issued nothing despite issuable writes")
	}
	if n == 10 && s.PendingCount() == 0 {
		t.Log("all issued (possible but unlikely)")
	}
}

func TestTransientWriteFailureRetried(t *testing.T) {
	s := newSched(t)
	d := s.Write("w", 1, 0, []byte{1})
	s.Disk().InjectFailOnce(1)
	if err := s.Pump(); err != nil {
		t.Fatalf("pump with transient failure: %v", err)
	}
	if !d.IsPersistent() {
		t.Fatal("write not retried after transient failure")
	}
	if s.Stats().WriteErrors == 0 {
		t.Fatal("write error not counted")
	}
}

func TestPermanentWriteFailureBlocksPump(t *testing.T) {
	s := newSched(t)
	s.Write("w", 1, 0, []byte{1})
	s.Disk().InjectFailPermanent(1)
	if err := s.Pump(); err == nil {
		t.Fatal("pump should report blocked writebacks")
	}
}

func TestGraphInspection(t *testing.T) {
	s := newSched(t)
	data := s.Write("shard data chunk", 4, 0, []byte{1})
	idx := s.Write("index entry", 12, 0, []byte{2}, data)
	meta := s.Write("LSM-tree metadata", 9, 0, []byte{3}, idx)
	nodes, edges := meta.Graph()
	if len(nodes) != 3 {
		t.Fatalf("nodes: %v", nodes)
	}
	// Direct edges plus the transitive data->meta edge are all legitimate
	// orderings; require the two essential ones.
	hasEdge := func(from, to uint64) bool {
		for _, e := range edges {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}
	if !hasEdge(1, 2) || !hasEdge(2, 3) {
		t.Fatalf("missing essential edges: %v", edges)
	}
	dump := DumpGraph(meta)
	if dump == "" {
		t.Fatal("empty dump")
	}
}

func TestDifferentSchedulerAndPanics(t *testing.T) {
	s1 := newSched(t)
	s2 := newSched(t)
	a := s1.Write("a", 0, 0, []byte{1})
	b := s2.Write("b", 0, 0, []byte{1})
	defer func() {
		if recover() == nil {
			t.Fatal("combining deps across schedulers should panic")
		}
	}()
	_ = a.And(b)
}

func TestPersistenceMonotonic(t *testing.T) {
	s := newSched(t)
	d := s.Write("w", 1, 0, []byte{1})
	_ = s.Pump()
	if !d.IsPersistent() {
		t.Fatal("not persistent")
	}
	// Crash after persistence: must stay persistent.
	s.Crash(rand.New(rand.NewSource(9)))
	if !d.IsPersistent() {
		t.Fatal("persistence not monotonic across crash")
	}
}

func TestPumpDrainsChains(t *testing.T) {
	s := newSched(t)
	prev := Resolved()
	var deps []*Dependency
	for i := 0; i < 20; i++ {
		prev = s.Write("chain", disk.ExtentID(1+i%4), (i/4)*s.Disk().Config().PageSize, []byte{byte(i)}, prev)
		deps = append(deps, prev)
	}
	if err := s.Pump(); err != nil {
		t.Fatal(err)
	}
	for i, d := range deps {
		if !d.IsPersistent() {
			t.Fatalf("chain link %d not persistent", i)
		}
	}
	if s.PendingCount() != 0 || s.IssuedCount() != 0 {
		t.Fatal("queue not drained")
	}
}

package dep

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"shardstore/internal/coverage"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/obs"
	"shardstore/internal/shuttle"
	"shardstore/internal/vsync"
)

func TestCommitMakesDurable(t *testing.T) {
	s := newSched(t)
	d := s.Write("w", 1, 0, []byte{1, 2, 3})
	if err := s.Commit(d, nil); err != nil {
		t.Fatal(err)
	}
	if !d.IsPersistent() {
		t.Fatal("not persistent after Commit")
	}
}

func TestCommitFastPaths(t *testing.T) {
	s := newSched(t)
	before := s.Disk().Stats().Syncs
	if err := s.Commit(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(Resolved(), nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Disk().Stats().Syncs; got != before {
		t.Fatalf("fast-path Commit issued %d syncs", got-before)
	}
}

// TestGroupCommitAmortizesSyncs orchestrates a deterministic group: the
// first committer's device flush is held open while seven more writers
// enroll in the barrier, so when the flush completes the stragglers are
// drained by at most two further leader rounds — far fewer than one sync
// per waiter.
func TestGroupCommitAmortizesSyncs(t *testing.T) {
	d, err := disk.New(disk.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(nil)
	s := NewSchedulerOpts(d, coverage.NewRegistry(), Options{Obs: o})

	const writers = 8
	gate := make(chan struct{})
	var once sync.Once
	entered := make(chan struct{})
	disk.TestHookPreSync = func() {
		once.Do(func() {
			close(entered)
			<-gate
		})
	}
	defer func() { disk.TestHookPreSync = nil }()

	var wg sync.WaitGroup
	deps := make([]*Dependency, writers)
	errs := make([]error, writers)
	deps[0] = s.Write("w0", 1, 0, []byte{0})
	wg.Add(1)
	//shardlint:allow syncusage real-scheduler stress test joined by wg.Wait; TestShuttleGroupCommit covers this path under shuttle
	go func() {
		defer wg.Done()
		errs[0] = s.Commit(deps[0], nil)
	}()
	<-entered // leader is inside the held-open device flush

	for i := 1; i < writers; i++ {
		deps[i] = s.Write("w", disk.ExtentID(1+i%3), i*16, []byte{byte(i)})
	}
	for i := 1; i < writers; i++ {
		i := i
		wg.Add(1)
		//shardlint:allow syncusage real-scheduler stress test joined by wg.Wait; TestShuttleGroupCommit covers this path under shuttle
		go func() {
			defer wg.Done()
			errs[i] = s.Commit(deps[i], nil)
		}()
	}
	// Give the stragglers a moment to enroll behind the busy leader, then
	// release the flush. Enrollment is what the barrier amortizes; the
	// sleep only widens the window, correctness never depends on it.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	for i := 0; i < writers; i++ {
		if errs[i] != nil {
			t.Fatalf("committer %d: %v", i, errs[i])
		}
		if !deps[i].IsPersistent() {
			t.Fatalf("dep %d not persistent after Commit", i)
		}
	}
	if got := d.Stats().Syncs; got >= writers {
		t.Fatalf("%d syncs for %d committers: group commit did not amortize", got, writers)
	}
	snap := o.Snapshot()
	gs := snap.Histograms["sched.group_size"]
	if gs.Count == 0 || gs.Max < 2 {
		t.Fatalf("group-size histogram shows no grouping: %+v", gs)
	}
	if snap.Counters["sched.commit_followers"] == 0 {
		t.Fatal("no commit followers recorded despite concurrent waiters")
	}
}

// TestCommitTornBarrierFault checks the seeded defect is live: with the
// fault enabled the leader reports the group durable without flushing the
// device cache, so the dependency claims persistence the disk cannot back.
func TestCommitTornBarrierFault(t *testing.T) {
	d, err := disk.New(disk.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cov := coverage.NewRegistry()
	s := NewSchedulerOpts(d, cov, Options{Bugs: faults.NewSet(faults.FaultGroupCommitTornBarrier)})
	dep := s.Write("w", 1, 0, []byte{9})
	if err := s.Commit(dep, nil); err != nil {
		t.Fatal(err)
	}
	if !dep.IsPersistent() {
		t.Fatal("torn barrier should still (wrongly) report persistence")
	}
	if got := d.Stats().Syncs; got != 0 {
		t.Fatalf("torn barrier issued %d device flushes, want 0", got)
	}
	if cov.Count("sched.fault.torn_barrier") == 0 {
		t.Fatal("torn-barrier probe not hit")
	}
	// The lie becomes observable at a crash: the issued-but-unflushed pages
	// sit in the volatile disk cache and an adversarial crash drops them.
	s.Crash(rand.New(rand.NewSource(1)))
	if !dep.IsPersistent() {
		t.Fatal("persistence is monotonic; the dependency must keep claiming it")
	}
}

// TestWriteErrorSplitsCoalescedRun is the satellite-2 regression: a
// transient WriteAt failure against a coalesced run must split the run and
// land the surviving halves rather than leave the whole run queued.
func TestWriteErrorSplitsCoalescedRun(t *testing.T) {
	d, err := disk.New(disk.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cov := coverage.NewRegistry()
	s := NewSchedulerOpts(d, cov, Options{})
	// Two physically adjacent writes coalesce into one IO.
	w1 := s.Write("a", 1, 0, []byte{1, 1})
	w2 := s.Write("b", 1, 2, []byte{2, 2})
	d.InjectFailOnce(1)
	if err := s.Pump(); err != nil {
		t.Fatal(err)
	}
	if !w1.IsPersistent() || !w2.IsPersistent() {
		t.Fatal("split retry did not land both halves")
	}
	if cov.Count("sched.run_split") == 0 {
		t.Fatal("run-split probe not hit")
	}
	if st := s.Stats(); st.WriteErrors == 0 {
		t.Fatalf("expected a recorded write error, got %+v", st)
	}
}

// TestReadsProceedDuringSync is the satellite-1 regression: the scheduler
// mutex must not be held across the device flush, so reads (which overlay
// the pending queue under that mutex) proceed while a sync is in flight.
func TestReadsProceedDuringSync(t *testing.T) {
	d, err := disk.New(disk.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(d, nil)
	w := s.Write("w", 1, 0, []byte{7, 7})

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	disk.TestHookPreSync = func() {
		once.Do(func() {
			close(entered)
			<-gate
		})
	}
	defer func() { disk.TestHookPreSync = nil }()

	pumpDone := make(chan error, 1)
	//shardlint:allow syncusage real-scheduler test joined via pumpDone; exercises a held-open device flush shuttle cannot model
	go func() { pumpDone <- s.Pump() }()
	<-entered

	readDone := make(chan error, 1)
	//shardlint:allow syncusage real-scheduler test joined via readDone with a wall-clock timeout guard
	go func() {
		buf := make([]byte, 2)
		readDone <- s.ReadAt(1, 0, buf)
	}()
	select {
	case err := <-readDone:
		if err != nil {
			t.Fatalf("read during sync: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadAt blocked behind an in-flight device flush")
	}

	close(gate)
	if err := <-pumpDone; err != nil {
		t.Fatal(err)
	}
	if !w.IsPersistent() {
		t.Fatal("write not persistent after pump")
	}
}

// TestCrashDuringSyncNotDurable: a crash that lands while a device flush is
// in flight must not let the scheduler mark the flushed batch durable — the
// crash epoch advanced, so the sync's result no longer describes the disk.
func TestCrashDuringSyncNotDurable(t *testing.T) {
	d, err := disk.New(disk.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(d, nil)
	w := s.Write("w", 1, 0, []byte{3, 3})

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	disk.TestHookPreSync = func() {
		once.Do(func() {
			close(entered)
			<-gate
		})
	}
	defer func() { disk.TestHookPreSync = nil }()

	pumpDone := make(chan error, 1)
	//shardlint:allow syncusage real-scheduler test joined via pumpDone; exercises a crash during a held-open device flush
	go func() { pumpDone <- s.Pump() }()
	<-entered
	s.Crash(rand.New(rand.NewSource(7)))
	close(gate)
	<-pumpDone

	if w.IsPersistent() {
		t.Fatal("write marked durable despite crashing mid-flush")
	}
}

// TestShuttleGroupCommit model-checks the commit barrier: concurrent
// committers under adversarial interleavings must all return with their
// dependencies persistent, and the device must hold every committed byte.
func TestShuttleGroupCommit(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	body := func() {
		d, err := disk.New(disk.DefaultConfig())
		if err != nil {
			panic(err)
		}
		s := NewScheduler(d, nil)
		const committers = 3
		handles := make([]vsync.Handle, committers)
		for i := 0; i < committers; i++ {
			i := i
			handles[i] = vsync.Go("committer", func() {
				dep := s.Write("w", disk.ExtentID(1+i), 0, []byte{byte(i), byte(i)})
				if err := s.Commit(dep, nil); err != nil {
					panic(err)
				}
				if !dep.IsPersistent() {
					panic("Commit returned before persistence")
				}
			})
		}
		for _, h := range handles {
			h.Join()
		}
		buf := make([]byte, 2)
		for i := 0; i < committers; i++ {
			if err := d.ReadAt(disk.ExtentID(1+i), 0, buf); err != nil {
				panic(err)
			}
			if buf[0] != byte(i) || buf[1] != byte(i) {
				panic("committed bytes missing from device")
			}
		}
	}
	rep := shuttle.Explore(shuttle.Options{Strategy: shuttle.NewRandom(42), Iterations: iters}, body)
	if rep.Failed() {
		t.Fatalf("shuttle found %d failures; first: %v", len(rep.Failures), rep.First())
	}
	t.Logf("explored %d interleavings, %d scheduling steps", rep.Iterations, rep.TotalSteps)
}

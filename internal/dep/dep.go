// Package dep implements ShardStore's soft-updates crash consistency
// machinery (§2.2 of the paper): run-time dependency graphs that declare
// valid write orderings, and the IO scheduler that enforces them.
//
// Every write to disk is enqueued as a writeback with a set of input
// dependencies. The contract (quoting the paper's append API) is that "the
// append will not be issued to disk until the input dependency has been
// persisted". The scheduler issues writebacks in dependency order, coalesces
// physically adjacent writes into single IOs, and tracks durability so that
// clients can poll Dependency.IsPersistent — the primitive on which the
// crash-consistency properties of §5 (persistence, forward progress) are
// specified and checked.
package dep

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"shardstore/internal/coverage"
	"shardstore/internal/disk"
	"shardstore/internal/vsync"
)

// ErrUnboundFuture is returned by Pump when progress is blocked on a future
// dependency that was never bound (typically a staged-but-unflushed
// superblock record).
var ErrUnboundFuture = errors.New("dep: writeback waits on an unbound future dependency")

type wbState int

const (
	statePending    wbState = iota // enqueued, not yet written to the disk cache
	stateIssued                    // written to the disk's volatile cache
	stateDurable                   // synced; survives any crash
	stateSuperseded                // cancelled by an extent reset; persistence delegates to the superseding dependency
)

// writeback is one pending disk write.
type writeback struct {
	id    uint64
	label string
	ext   disk.ExtentID
	off   int
	data  []byte
	waits []*Dependency
	state wbState
	// supersededBy carries the persistence obligation of a cancelled
	// writeback: an extent reset evacuates (or legitimately supersedes) the
	// data, so the writeback's dependency is satisfied exactly when the
	// reset — which waits on the evacuations and reference updates — is
	// durable.
	supersededBy *Dependency
}

// Dependency is a node in the crash-consistency dependency graph. A
// Dependency is persistent once every writeback it transitively covers is
// durable on disk. Dependencies are created by Scheduler.Write, combined with
// And, and polled with IsPersistent (§2.2).
//
// Dependency values remain valid after a crash: they keep reporting the
// persistence status they had when the crash occurred, which is exactly what
// the §5 persistence check needs.
type Dependency struct {
	s *Scheduler // nil for the static resolved dependency

	wbs     []*writeback
	parents []*Dependency

	// future dependencies are placeholders handed out before the write they
	// cover exists (e.g. a batched superblock record). Bind attaches the
	// real dependency.
	future bool
	bound  *Dependency

	persistMemo bool
}

// Resolved returns a dependency that is always persistent — the root of
// every dependency chain.
func Resolved() *Dependency { return resolvedDep }

var resolvedDep = &Dependency{persistMemo: true}

// And combines d with others: the result is persistent only when d and all
// others are persistent. Combining dependencies from different schedulers is
// a programming error and panics.
func (d *Dependency) And(others ...*Dependency) *Dependency {
	parents := make([]*Dependency, 0, 1+len(others))
	s := d.s
	if d != resolvedDep {
		parents = append(parents, d)
	}
	for _, o := range others {
		if o == nil || o == resolvedDep {
			continue
		}
		if s == nil {
			s = o.s
		} else if o.s != nil && o.s != s {
			panic("dep: combining dependencies from different schedulers")
		}
		parents = append(parents, o)
	}
	if len(parents) == 0 {
		return resolvedDep
	}
	if len(parents) == 1 {
		return parents[0]
	}
	return &Dependency{s: s, parents: parents}
}

// All combines any number of dependencies; nil entries are ignored.
func All(deps ...*Dependency) *Dependency {
	out := Resolved()
	for _, d := range deps {
		if d != nil {
			out = out.And(d)
		}
	}
	return out
}

// IsPersistent reports whether every write covered by d is durable on disk.
// The result is monotonic: once true it stays true, even across a crash.
func (d *Dependency) IsPersistent() bool {
	if d == nil {
		return true
	}
	if d.persistMemo {
		return true
	}
	if d.s == nil {
		// Unbound future with no scheduler yet, or resolved.
		if d.future && d.bound == nil {
			return false
		}
	}
	s := d.scheduler()
	if s == nil {
		return d.computePersistent()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return d.computePersistent()
}

func (d *Dependency) scheduler() *Scheduler {
	if d.s != nil {
		return d.s
	}
	if d.bound != nil {
		return d.bound.scheduler()
	}
	return nil
}

// computePersistent assumes the scheduler lock is held (or no scheduler).
func (d *Dependency) computePersistent() bool {
	if d.persistMemo {
		return true
	}
	if d.future {
		if d.bound == nil || !d.bound.computePersistent() {
			return false
		}
		d.persistMemo = true
		return true
	}
	for _, wb := range d.wbs {
		switch wb.state {
		case stateDurable:
		case stateSuperseded:
			if wb.supersededBy == nil || !wb.supersededBy.computePersistent() {
				return false
			}
		default:
			return false
		}
	}
	for _, p := range d.parents {
		if !p.computePersistent() {
			return false
		}
	}
	d.persistMemo = true
	return true
}

// readyLocked reports whether every input dependency is persistent, i.e. the
// writeback may be issued. Caller holds the scheduler lock.
func (wb *writeback) readyLocked() (ready bool, unboundFuture bool) {
	for _, w := range wb.waits {
		if w.future && w.bound == nil && !w.persistMemo {
			return false, true
		}
		if !w.computePersistent() {
			return false, false
		}
	}
	return true, false
}

// WriteInfo describes one writeback covered by a dependency, for graph
// inspection (the Fig 2 experiment).
type WriteInfo struct {
	ID     uint64
	Label  string
	Extent disk.ExtentID
	Offset int
	Length int
}

// Edge is a dependency-graph edge: From must persist before To is issued.
type Edge struct{ From, To uint64 }

// Graph walks the dependency graph rooted at d and returns the covered
// writebacks and ordering edges. Used to regenerate Fig 2.
func (d *Dependency) Graph() (nodes []WriteInfo, edges []Edge) {
	s := d.scheduler()
	if s != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	seenDep := map[*Dependency]bool{}
	seenWB := map[uint64]bool{}
	var visitDep func(*Dependency)
	var visitWB func(*writeback)
	visitWB = func(wb *writeback) {
		if seenWB[wb.id] {
			return
		}
		seenWB[wb.id] = true
		nodes = append(nodes, WriteInfo{ID: wb.id, Label: wb.label, Extent: wb.ext, Offset: wb.off, Length: len(wb.data)})
		for _, w := range wb.waits {
			before := collectWBs(w, map[*Dependency]bool{})
			for _, b := range before {
				edges = append(edges, Edge{From: b.id, To: wb.id})
				visitWB(b)
			}
		}
	}
	visitDep = func(dd *Dependency) {
		if dd == nil || seenDep[dd] {
			return
		}
		seenDep[dd] = true
		for _, wb := range dd.wbs {
			visitWB(wb)
		}
		for _, p := range dd.parents {
			visitDep(p)
		}
		if dd.bound != nil {
			visitDep(dd.bound)
		}
	}
	visitDep(d)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return nodes, edges
}

func collectWBs(d *Dependency, seen map[*Dependency]bool) []*writeback {
	if d == nil || seen[d] {
		return nil
	}
	seen[d] = true
	out := append([]*writeback(nil), d.wbs...)
	for _, p := range d.parents {
		out = append(out, collectWBs(p, seen)...)
	}
	if d.bound != nil {
		out = append(out, collectWBs(d.bound, seen)...)
	}
	return out
}

// Stats counts scheduler activity.
type Stats struct {
	Enqueued     uint64
	Issued       uint64
	IOs          uint64 // physical WriteAt calls after coalescing
	Coalesced    uint64 // writebacks merged into a preceding IO
	Syncs        uint64
	WriteErrors  uint64
	MadeDurable  uint64
	PendingPeak  int
	DroppedCrash uint64
}

// Scheduler owns the writeback queue for one disk and enforces dependency
// ordering (§2.2: "ShardStore's IO scheduler ensures that writebacks respect
// these dependencies").
type Scheduler struct {
	mu     vsync.Mutex
	d      *disk.Disk
	nextID uint64
	queue  []*writeback
	issued []*writeback // issued but not yet durable
	cov    *coverage.Registry
	stats  Stats
}

// NewScheduler creates a scheduler over d.
func NewScheduler(d *disk.Disk, cov *coverage.Registry) *Scheduler {
	return &Scheduler{d: d, cov: cov}
}

// Disk returns the underlying disk.
func (s *Scheduler) Disk() *disk.Disk { return s.d }

// Stats returns a snapshot of scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Write enqueues a writeback of data to (ext, off) that may only be issued
// once every dependency in waits is persistent. It returns the dependency
// representing this write. label names the write in dependency-graph dumps.
func (s *Scheduler) Write(label string, ext disk.ExtentID, off int, data []byte, waits ...*Dependency) *Dependency {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	wb := &writeback{
		id:    s.nextID,
		label: label,
		ext:   ext,
		off:   off,
		data:  append([]byte(nil), data...),
		waits: compactDeps(waits),
	}
	s.queue = append(s.queue, wb)
	s.stats.Enqueued++
	if len(s.queue) > s.stats.PendingPeak {
		s.stats.PendingPeak = len(s.queue)
	}
	d := &Dependency{s: s, wbs: []*writeback{wb}, parents: compactDeps(waits)}
	return d
}

func compactDeps(waits []*Dependency) []*Dependency {
	var out []*Dependency
	for _, w := range waits {
		if w != nil && w != resolvedDep {
			out = append(out, w)
		}
	}
	return out
}

// ReadAt reads from the disk with the pending writeback queue overlaid, so
// reads observe writes that have been enqueued but not yet issued (the
// node's page-cache coherence: acknowledged writes are immediately readable
// regardless of writeback progress).
func (s *Scheduler) ReadAt(ext disk.ExtentID, off int, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.d.ReadAt(ext, off, buf); err != nil {
		return err
	}
	end := off + len(buf)
	for _, wb := range s.queue {
		if wb.ext != ext {
			continue
		}
		wbEnd := wb.off + len(wb.data)
		lo, hi := wb.off, wbEnd
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		if lo < hi {
			copy(buf[lo-off:hi-off], wb.data[lo-wb.off:hi-wb.off])
		}
	}
	return nil
}

// Future returns an unbound placeholder dependency. It reports not-persistent
// until Bind attaches the real dependency. Futures let components hand out a
// dependency for a write that will be batched later (the superblock record).
func (s *Scheduler) Future() *Dependency {
	return &Dependency{s: s, future: true}
}

// NewDetachedFuture returns an unbound future dependency not tied to any
// scheduler. It is used by mock implementations (reference models) where
// persistence is immediate once bound.
func NewDetachedFuture() *Dependency { return &Dependency{future: true} }

// BindDetached binds a detached future created by NewDetachedFuture.
func BindDetached(future, real *Dependency) {
	if !future.future {
		panic("dep: BindDetached on non-future dependency")
	}
	if future.bound != nil {
		panic("dep: future already bound")
	}
	future.bound = real
}

// Bind attaches the real dependency to a future created by Future.
func (s *Scheduler) Bind(future, real *Dependency) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !future.future {
		panic("dep: Bind on non-future dependency")
	}
	if future.bound != nil {
		panic("dep: future already bound")
	}
	future.bound = real
}

// issuableLocked returns the queue indexes of writebacks whose dependencies
// are persistent. Caller holds the lock.
func (s *Scheduler) issuableLocked() (idx []int, sawUnbound bool) {
	for i, wb := range s.queue {
		ready, unbound := wb.readyLocked()
		if unbound {
			sawUnbound = true
		}
		if ready {
			idx = append(idx, i)
		}
	}
	return idx, sawUnbound
}

// issueLocked writes the selected queue entries to the disk cache, coalescing
// physically adjacent writebacks into single IOs. Returns issued writebacks.
// Caller holds the lock. Writebacks whose write fails (injected IO errors)
// remain queued for retry.
func (s *Scheduler) issueLocked(idx []int) []*writeback {
	if len(idx) == 0 {
		return nil
	}
	batch := make([]*writeback, 0, len(idx))
	for _, i := range idx {
		batch = append(batch, s.queue[i])
	}
	// Sort the batch by physical position so adjacent writes coalesce.
	sort.SliceStable(batch, func(i, j int) bool {
		if batch[i].ext != batch[j].ext {
			return batch[i].ext < batch[j].ext
		}
		return batch[i].off < batch[j].off
	})

	issuedSet := make(map[uint64]bool)
	var issued []*writeback
	for i := 0; i < len(batch); {
		run := []*writeback{batch[i]}
		j := i + 1
		for j < len(batch) && batch[j].ext == batch[i].ext &&
			batch[j].off == run[len(run)-1].off+len(run[len(run)-1].data) {
			run = append(run, batch[j])
			j++
		}
		var buf []byte
		for _, wb := range run {
			buf = append(buf, wb.data...)
		}
		err := s.d.WriteAt(run[0].ext, run[0].off, buf)
		if err != nil {
			s.stats.WriteErrors++
			s.cov.Hit("sched.write_error")
			// Leave the whole run queued; transient failures clear and the
			// writebacks are retried on the next pump.
		} else {
			s.stats.IOs++
			if len(run) > 1 {
				s.stats.Coalesced += uint64(len(run) - 1)
				s.cov.Hit("sched.coalesced")
			}
			for _, wb := range run {
				wb.state = stateIssued
				issuedSet[wb.id] = true
				issued = append(issued, wb)
				s.stats.Issued++
			}
		}
		i = j
	}
	if len(issuedSet) > 0 {
		remaining := s.queue[:0]
		for _, wb := range s.queue {
			if !issuedSet[wb.id] {
				remaining = append(remaining, wb)
			}
		}
		s.queue = remaining
		s.issued = append(s.issued, issued...)
	}
	return issued
}

// syncLocked makes all issued writebacks durable. Caller holds the lock.
func (s *Scheduler) syncLocked() error {
	if err := s.d.Sync(); err != nil {
		return err
	}
	s.stats.Syncs++
	for _, wb := range s.issued {
		wb.state = stateDurable
		// Durable writebacks never serve reads (the overlay only scans the
		// pending queue) and never re-issue; releasing their payloads keeps
		// long-lived dependency graphs from retaining the whole write
		// history.
		wb.data = nil
		wb.waits = nil
		s.stats.MadeDurable++
	}
	s.issued = s.issued[:0]
	return nil
}

// Step performs one scheduler round: issue every currently-issuable
// writeback to the disk cache, without syncing. Data issued by Step can be
// torn by a crash at page granularity — this is where the interesting
// soft-updates crash states come from. It returns the number of writebacks
// issued.
func (s *Scheduler) Step() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, _ := s.issuableLocked()
	// A writeback only becomes issuable once its inputs are *durable*, so
	// issuing without syncing is safe: everything in the current cache batch
	// is mutually unordered.
	return len(s.issueLocked(idx))
}

// Sync flushes the disk write cache, making all issued writebacks durable.
func (s *Scheduler) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

// Pump drives the scheduler to quiescence: repeatedly issue all issuable
// writebacks and sync, until nothing is left or no progress can be made.
// It returns ErrUnboundFuture if the only obstacle to progress is a future
// dependency that was never bound, and nil if the queue drained.
func (s *Scheduler) Pump() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	failedRounds := 0
	for {
		idx, sawUnbound := s.issuableLocked()
		if len(idx) == 0 {
			if len(s.issued) > 0 {
				if err := s.syncLocked(); err != nil {
					return err
				}
				continue
			}
			if len(s.queue) == 0 {
				return nil
			}
			if sawUnbound {
				return ErrUnboundFuture
			}
			// Blocked on a dependency that cannot progress (e.g. writes to a
			// permanently failed extent). Leave the queue intact.
			return fmt.Errorf("dep: %d writebacks blocked (IO failures?)", len(s.queue))
		}
		issued := s.issueLocked(idx)
		if len(issued) == 0 {
			// Every issuable writeback failed to write (injected faults).
			// Transient failures clear on their first hit, so retry a few
			// rounds before giving up (permanent failures stay blocked).
			if len(s.issued) > 0 {
				if err := s.syncLocked(); err != nil {
					return err
				}
				continue
			}
			failedRounds++
			if failedRounds > 4 {
				return fmt.Errorf("dep: write failures blocked %d writebacks", len(s.queue))
			}
			continue
		}
		failedRounds = 0
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
}

// StepRandom issues a random subset of the currently-issuable writebacks —
// used by harnesses to explore more intermediate states than Step's
// everything-at-once policy.
func (s *Scheduler) StepRandom(rng *rand.Rand) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, _ := s.issuableLocked()
	var pick []int
	for _, i := range idx {
		if rng.Intn(2) == 0 {
			pick = append(pick, i)
		}
	}
	if len(pick) == 0 && len(idx) > 0 {
		pick = idx[:1]
	}
	return len(s.issueLocked(pick))
}

// CancelExtentPending removes every queued (not yet issued) writeback
// targeting ext, marking each as superseded by supersede. An extent reset
// calls this: data still buffered for a reset extent must not be written
// into the reclaimed space later, and its durability obligation transfers
// to the reset (which is ordered after the evacuations and the reference
// updates that superseded the data). It returns the number of cancellations.
func (s *Scheduler) CancelExtentPending(ext disk.ExtentID, supersede *Dependency) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.queue[:0]
	n := 0
	for _, wb := range s.queue {
		if wb.ext == ext {
			wb.state = stateSuperseded
			wb.supersededBy = supersede
			n++
			continue
		}
		kept = append(kept, wb)
	}
	s.queue = kept
	if n > 0 {
		s.cov.Hit("sched.cancelled")
	}
	return n
}

// Crash discards all pending writebacks (they lived only in memory) and
// tears the disk cache via disk.Crash. Dependencies keep their pre-crash
// persistence status. The scheduler is unusable afterwards; recovery builds
// a fresh one on the same disk.
func (s *Scheduler) Crash(rng *rand.Rand) (kept, lost []disk.PageAddr) {
	s.mu.Lock()
	s.stats.DroppedCrash += uint64(len(s.queue))
	s.queue = nil
	s.issued = nil
	s.mu.Unlock()
	return s.d.Crash(rng)
}

// CrashKeep is the deterministic crash used by the exhaustive block-level
// enumerator.
func (s *Scheduler) CrashKeep(keep func(disk.PageAddr) bool) (kept, lost []disk.PageAddr) {
	s.mu.Lock()
	s.stats.DroppedCrash += uint64(len(s.queue))
	s.queue = nil
	s.issued = nil
	s.mu.Unlock()
	return s.d.CrashKeep(keep)
}

// PendingCount returns the number of enqueued-but-unissued writebacks.
func (s *Scheduler) PendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// IssuedCount returns the number of issued-but-not-durable writebacks.
func (s *Scheduler) IssuedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.issued)
}

// DumpBlocked describes the queued writebacks and why each is not issuable
// (debugging aid).
func (s *Scheduler) DumpBlocked() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	for _, wb := range s.queue {
		ready, unbound := wb.readyLocked()
		fmt.Fprintf(&b, "wb#%d %q e%d+%d:%d ready=%v unboundFuture=%v\n", wb.id, wb.label, wb.ext, wb.off, len(wb.data), ready, unbound)
		for i, w := range wb.waits {
			fmt.Fprintf(&b, "   wait[%d] persistent=%v %s\n", i, w.computePersistent(), describeDep(w, 0))
		}
	}
	return b.String()
}

func describeDep(d *Dependency, depth int) string {
	if depth > 6 {
		return "..."
	}
	if d == nil || d == resolvedDep {
		return "resolved"
	}
	if d.future {
		if d.bound == nil {
			return "future(unbound)"
		}
		return "future->" + describeDep(d.bound, depth+1)
	}
	out := ""
	for _, wb := range d.wbs {
		st := map[wbState]string{statePending: "pending", stateIssued: "issued", stateDurable: "durable", stateSuperseded: "superseded"}[wb.state]
		out += fmt.Sprintf("wb#%d(%s,%s)", wb.id, wb.label, st)
		if wb.state == stateSuperseded {
			out += "->" + describeDep(wb.supersededBy, depth+1)
		}
	}
	for _, p := range d.parents {
		if !p.computePersistent() {
			out += "{" + describeDep(p, depth+1) + "}"
		}
	}
	return out
}

// DumpGraph renders the dependency graph rooted at d as indented text, for
// examples and debugging.
func DumpGraph(d *Dependency) string {
	nodes, edges := d.Graph()
	var b strings.Builder
	byID := map[uint64]WriteInfo{}
	for _, n := range nodes {
		byID[n.ID] = n
	}
	for _, n := range nodes {
		fmt.Fprintf(&b, "wb#%d %-28s extent %d [%d,%d)\n", n.ID, n.Label, n.Extent, n.Offset, n.Offset+n.Length)
		for _, e := range edges {
			if e.To == n.ID {
				from := byID[e.From]
				fmt.Fprintf(&b, "  after wb#%d %s\n", e.From, from.Label)
			}
		}
	}
	return b.String()
}

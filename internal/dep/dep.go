// Package dep implements ShardStore's soft-updates crash consistency
// machinery (§2.2 of the paper): run-time dependency graphs that declare
// valid write orderings, and the IO scheduler that enforces them.
//
// Every write to disk is enqueued as a writeback with a set of input
// dependencies. The contract (quoting the paper's append API) is that "the
// append will not be issued to disk until the input dependency has been
// persisted". The scheduler issues writebacks in dependency order, coalesces
// physically adjacent writes into single IOs, and tracks durability so that
// clients can poll Dependency.IsPersistent — the primitive on which the
// crash-consistency properties of §5 (persistence, forward progress) are
// specified and checked.
//
// Durability-seeking callers do not each pay a device flush: Commit enrolls
// the caller in the current commit group, and one leader drives issue+sync
// for the whole group (group commit). Readiness is tracked incrementally —
// each pending writeback carries a count of unresolved inputs, decremented
// as inputs become durable — so a scheduling round selects from a ready
// list instead of rescanning the whole queue.
package dep

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"shardstore/internal/coverage"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/obs"
	"shardstore/internal/vsync"
)

// ErrUnboundFuture is returned by Pump when progress is blocked on a future
// dependency that was never bound (typically a staged-but-unflushed
// superblock record).
var ErrUnboundFuture = errors.New("dep: writeback waits on an unbound future dependency")

type wbState int

const (
	statePending    wbState = iota // enqueued, not yet written to the disk cache
	stateIssued                    // written to the disk's volatile cache
	stateDurable                   // synced; survives any crash
	stateSuperseded                // cancelled by an extent reset; persistence delegates to the superseding dependency
)

// writeback is one pending disk write.
type writeback struct {
	id    uint64
	label string
	ext   disk.ExtentID
	off   int
	data  []byte
	waits []*Dependency
	state wbState
	// supersededBy carries the persistence obligation of a cancelled
	// writeback: an extent reset evacuates (or legitimately supersedes) the
	// data, so the writeback's dependency is satisfied exactly when the
	// reset — which waits on the evacuations and reference updates — is
	// durable.
	supersededBy *Dependency

	// Incremental readiness tracking. nblock counts the unresolved inputs
	// (non-durable writebacks and unbound futures) registered at the last
	// classification; classGen invalidates registrations from earlier
	// classifications; inReady marks membership in the scheduler ready list.
	nblock   int
	classGen uint64
	inReady  bool
}

// blockRef records that a pending writeback was counting on some blocker
// (another writeback, or an unbound future) at classification generation gen.
// Stale refs — the waiter was reclassified or left statePending — are
// skipped when the blocker resolves.
type blockRef struct {
	wb  *writeback
	gen uint64
}

// Dependency is a node in the crash-consistency dependency graph. A
// Dependency is persistent once every writeback it transitively covers is
// durable on disk. Dependencies are created by Scheduler.Write, combined with
// And, and polled with IsPersistent (§2.2).
//
// Dependency values remain valid after a crash: they keep reporting the
// persistence status they had when the crash occurred, which is exactly what
// the §5 persistence check needs.
type Dependency struct {
	s *Scheduler // nil for the static resolved dependency

	wbs     []*writeback
	parents []*Dependency

	// future dependencies are placeholders handed out before the write they
	// cover exists (e.g. a batched superblock record). Bind attaches the
	// real dependency.
	future bool
	bound  *Dependency

	persistMemo bool
}

// Resolved returns a dependency that is always persistent — the root of
// every dependency chain.
func Resolved() *Dependency { return resolvedDep }

var resolvedDep = &Dependency{persistMemo: true}

// And combines d with others: the result is persistent only when d and all
// others are persistent. Combining dependencies from different schedulers is
// a programming error and panics.
func (d *Dependency) And(others ...*Dependency) *Dependency {
	parents := make([]*Dependency, 0, 1+len(others))
	s := d.s
	if d != resolvedDep {
		parents = append(parents, d)
	}
	for _, o := range others {
		if o == nil || o == resolvedDep {
			continue
		}
		if s == nil {
			s = o.s
		} else if o.s != nil && o.s != s {
			panic("dep: combining dependencies from different schedulers")
		}
		parents = append(parents, o)
	}
	if len(parents) == 0 {
		return resolvedDep
	}
	if len(parents) == 1 {
		return parents[0]
	}
	return &Dependency{s: s, parents: parents}
}

// All combines any number of dependencies; nil entries are ignored.
func All(deps ...*Dependency) *Dependency {
	out := Resolved()
	for _, d := range deps {
		if d != nil {
			out = out.And(d)
		}
	}
	return out
}

// IsPersistent reports whether every write covered by d is durable on disk.
// The result is monotonic: once true it stays true, even across a crash.
func (d *Dependency) IsPersistent() bool {
	if d == nil {
		return true
	}
	if d.persistMemo {
		return true
	}
	if d.s == nil {
		// Unbound future with no scheduler yet, or resolved.
		if d.future && d.bound == nil {
			return false
		}
	}
	s := d.scheduler()
	if s == nil {
		return d.computePersistent()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return d.computePersistent()
}

func (d *Dependency) scheduler() *Scheduler {
	if d.s != nil {
		return d.s
	}
	if d.bound != nil {
		return d.bound.scheduler()
	}
	return nil
}

// computePersistent assumes the scheduler lock is held (or no scheduler).
func (d *Dependency) computePersistent() bool {
	if d.persistMemo {
		return true
	}
	if d.future {
		if d.bound == nil || !d.bound.computePersistent() {
			return false
		}
		d.persistMemo = true
		return true
	}
	for _, wb := range d.wbs {
		switch wb.state {
		case stateDurable:
		case stateSuperseded:
			if wb.supersededBy == nil || !wb.supersededBy.computePersistent() {
				return false
			}
		default:
			return false
		}
	}
	for _, p := range d.parents {
		if !p.computePersistent() {
			return false
		}
	}
	d.persistMemo = true
	return true
}

// readyLocked reports whether every input dependency is persistent, i.e. the
// writeback may be issued. Caller holds the scheduler lock.
func (wb *writeback) readyLocked() (ready bool, unboundFuture bool) {
	for _, w := range wb.waits {
		if w.future && w.bound == nil && !w.persistMemo {
			return false, true
		}
		if !w.computePersistent() {
			return false, false
		}
	}
	return true, false
}

// WriteInfo describes one writeback covered by a dependency, for graph
// inspection (the Fig 2 experiment).
type WriteInfo struct {
	ID     uint64
	Label  string
	Extent disk.ExtentID
	Offset int
	Length int
}

// Edge is a dependency-graph edge: From must persist before To is issued.
type Edge struct{ From, To uint64 }

// Graph walks the dependency graph rooted at d and returns the covered
// writebacks and ordering edges. Used to regenerate Fig 2.
func (d *Dependency) Graph() (nodes []WriteInfo, edges []Edge) {
	s := d.scheduler()
	if s != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	seenDep := map[*Dependency]bool{}
	seenWB := map[uint64]bool{}
	var visitDep func(*Dependency)
	var visitWB func(*writeback)
	visitWB = func(wb *writeback) {
		if seenWB[wb.id] {
			return
		}
		seenWB[wb.id] = true
		nodes = append(nodes, WriteInfo{ID: wb.id, Label: wb.label, Extent: wb.ext, Offset: wb.off, Length: len(wb.data)})
		for _, w := range wb.waits {
			before := collectWBs(w, map[*Dependency]bool{})
			for _, b := range before {
				edges = append(edges, Edge{From: b.id, To: wb.id})
				visitWB(b)
			}
		}
	}
	visitDep = func(dd *Dependency) {
		if dd == nil || seenDep[dd] {
			return
		}
		seenDep[dd] = true
		for _, wb := range dd.wbs {
			visitWB(wb)
		}
		for _, p := range dd.parents {
			visitDep(p)
		}
		if dd.bound != nil {
			visitDep(dd.bound)
		}
	}
	visitDep(d)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return nodes, edges
}

func collectWBs(d *Dependency, seen map[*Dependency]bool) []*writeback {
	if d == nil || seen[d] {
		return nil
	}
	seen[d] = true
	out := append([]*writeback(nil), d.wbs...)
	for _, p := range d.parents {
		out = append(out, collectWBs(p, seen)...)
	}
	if d.bound != nil {
		out = append(out, collectWBs(d.bound, seen)...)
	}
	return out
}

// Stats counts scheduler activity.
type Stats struct {
	Enqueued     uint64
	Issued       uint64
	IOs          uint64 // physical WriteAt calls after coalescing
	Coalesced    uint64 // writebacks merged into a preceding IO
	Syncs        uint64
	WriteErrors  uint64
	MadeDurable  uint64
	PendingPeak  int
	DroppedCrash uint64
}

// schedMetrics holds the obs handles the scheduler hot paths touch, resolved
// once at construction. All handles are nil-safe, so a scheduler without an
// Obs meters nothing at zero cost.
type schedMetrics struct {
	o           *obs.Obs
	syncs       *obs.Counter
	ios         *obs.Counter
	coalesced   *obs.Counter
	commits     *obs.Counter
	followers   *obs.Counter
	groupSize   *obs.Histogram
	barrierWait *obs.Histogram
	barrierLead *obs.Histogram
}

func newSchedMetrics(o *obs.Obs) schedMetrics {
	return schedMetrics{
		o:           o,
		syncs:       o.Counter("sched.syncs"),
		ios:         o.Counter("sched.ios"),
		coalesced:   o.Counter("sched.coalesced"),
		commits:     o.Counter("sched.commits"),
		followers:   o.Counter("sched.commit_followers"),
		groupSize:   o.Histogram("sched.group_size"),
		barrierWait: o.Histogram("sched.barrier_wait"),
		barrierLead: o.Histogram("sched.barrier_wait_leader"),
	}
}

// Options configures optional scheduler integrations: metrics and the seeded
// fault set. The zero value disables both.
type Options struct {
	// Obs receives scheduler metrics: sched.syncs, sched.ios,
	// sched.coalesced, sched.commits, sched.commit_followers, and the
	// sched.group_size / sched.barrier_wait / sched.barrier_wait_leader
	// histograms (the latter pair splits barrier time by role: follower
	// enroll wait vs leader drive+sync time). Metering is count-only and
	// never changes scheduling decisions.
	Obs *obs.Obs
	// Bugs gates seeded faults (FaultGroupCommitTornBarrier).
	Bugs *faults.Set
}

// Scheduler owns the writeback queue for one disk and enforces dependency
// ordering (§2.2: "ShardStore's IO scheduler ensures that writebacks respect
// these dependencies").
type Scheduler struct {
	mu     vsync.Mutex
	d      *disk.Disk
	nextID uint64
	queue  []*writeback
	issued []*writeback // issued but not yet durable
	cov    *coverage.Registry
	stats  Stats

	// Incremental readiness: ready holds the pending writebacks whose every
	// input is persistent; blockers and futureWaiters are the reverse edges
	// along which durability/bind events decrement waiter nblock counts.
	// Both maps are only ever accessed by key (never iterated), so they add
	// no ordering nondeterminism.
	ready         []*writeback
	blockers      map[uint64][]blockRef
	futureWaiters map[*Dependency][]blockRef

	// crashEpoch guards the unlocked window of syncOutside: a crash that
	// interleaves with an in-flight device flush bumps the epoch, and the
	// flushed batch is then conservatively left non-durable.
	crashEpoch uint64

	// Group-commit barrier state, under its own lock so enrolment never
	// contends with the writeback queue.
	gmu        vsync.Mutex
	gcond      *vsync.Cond
	leaderBusy bool
	enrolled   int
	commitSeq  uint64

	bugs *faults.Set
	met  schedMetrics
}

// NewScheduler creates a scheduler over d with no optional integrations.
func NewScheduler(d *disk.Disk, cov *coverage.Registry) *Scheduler {
	return NewSchedulerOpts(d, cov, Options{})
}

// NewSchedulerOpts creates a scheduler over d with metrics and seeded-fault
// integrations.
func NewSchedulerOpts(d *disk.Disk, cov *coverage.Registry, opts Options) *Scheduler {
	s := &Scheduler{
		d:             d,
		cov:           cov,
		blockers:      map[uint64][]blockRef{},
		futureWaiters: map[*Dependency][]blockRef{},
		bugs:          opts.Bugs,
		met:           newSchedMetrics(opts.Obs),
	}
	s.gcond = vsync.NewCond(&s.gmu)
	return s
}

// Disk returns the underlying disk.
func (s *Scheduler) Disk() *disk.Disk { return s.d }

// Stats returns a snapshot of scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Write enqueues a writeback of data to (ext, off) that may only be issued
// once every dependency in waits is persistent. It returns the dependency
// representing this write. label names the write in dependency-graph dumps.
// The data slice is copied; callers may reuse it.
func (s *Scheduler) Write(label string, ext disk.ExtentID, off int, data []byte, waits ...*Dependency) *Dependency {
	return s.enqueue(label, ext, off, append([]byte(nil), data...), waits)
}

// WriteOwned is Write without the defensive copy: ownership of data
// transfers to the scheduler, which may hold it until the write is durable
// and serve reads from it. Callers must not retain or mutate data afterwards.
// Layers that build a fresh buffer per write (chunk framing, superblock and
// LSM metadata records) use this to keep the value path copy-free.
func (s *Scheduler) WriteOwned(label string, ext disk.ExtentID, off int, data []byte, waits ...*Dependency) *Dependency {
	return s.enqueue(label, ext, off, data, waits)
}

func (s *Scheduler) enqueue(label string, ext disk.ExtentID, off int, data []byte, waits []*Dependency) *Dependency {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	wb := &writeback{
		id:    s.nextID,
		label: label,
		ext:   ext,
		off:   off,
		data:  data,
		waits: compactDeps(waits),
	}
	s.queue = append(s.queue, wb)
	s.stats.Enqueued++
	if len(s.queue) > s.stats.PendingPeak {
		s.stats.PendingPeak = len(s.queue)
	}
	s.classifyLocked(wb)
	d := &Dependency{s: s, wbs: []*writeback{wb}, parents: compactDeps(waits)}
	return d
}

func compactDeps(waits []*Dependency) []*Dependency {
	var out []*Dependency
	for _, w := range waits {
		if w != nil && w != resolvedDep {
			out = append(out, w)
		}
	}
	return out
}

// classifyLocked (re)derives wb's readiness: either every input is already
// persistent and wb joins the ready list, or a blockRef is registered on each
// unresolved input so the resolving event can decrement wb.nblock. Caller
// holds the lock.
func (s *Scheduler) classifyLocked(wb *writeback) {
	if wb.state != statePending || wb.inReady {
		return
	}
	wb.classGen++
	wb.nblock = 0
	seenDeps := map[*Dependency]bool{}
	seenWBs := map[uint64]bool{}
	var visit func(d *Dependency)
	visit = func(d *Dependency) {
		if d == nil || d.persistMemo || seenDeps[d] {
			return
		}
		seenDeps[d] = true
		if d.future {
			if d.bound == nil {
				wb.nblock++
				s.futureWaiters[d] = append(s.futureWaiters[d], blockRef{wb: wb, gen: wb.classGen})
				return
			}
			visit(d.bound)
			return
		}
		for _, b := range d.wbs {
			switch b.state {
			case stateDurable:
			case stateSuperseded:
				visit(b.supersededBy)
			default:
				if !seenWBs[b.id] {
					seenWBs[b.id] = true
					wb.nblock++
					s.blockers[b.id] = append(s.blockers[b.id], blockRef{wb: wb, gen: wb.classGen})
				}
			}
		}
		for _, p := range d.parents {
			visit(p)
		}
	}
	for _, w := range wb.waits {
		visit(w)
	}
	if wb.nblock == 0 {
		s.pushReadyLocked(wb)
	}
}

func (s *Scheduler) pushReadyLocked(wb *writeback) {
	if wb.inReady || wb.state != statePending {
		return
	}
	wb.inReady = true
	s.ready = append(s.ready, wb)
}

// filterReadyLocked drops writebacks that left statePending from the ready
// list (they were issued or superseded).
func (s *Scheduler) filterReadyLocked() {
	kept := s.ready[:0]
	for _, wb := range s.ready {
		if wb.state == statePending {
			kept = append(kept, wb)
			continue
		}
		wb.inReady = false
	}
	s.ready = kept
}

// notifyDurableLocked resolves id as a blocker: every valid registration on
// it has its unresolved-input count decremented, and waiters reaching zero
// join the ready list.
func (s *Scheduler) notifyDurableLocked(id uint64) {
	refs, ok := s.blockers[id]
	if !ok {
		return
	}
	delete(s.blockers, id)
	for _, r := range refs {
		if r.gen != r.wb.classGen || r.wb.state != statePending || r.wb.inReady {
			continue
		}
		r.wb.nblock--
		if r.wb.nblock <= 0 {
			s.pushReadyLocked(r.wb)
		}
	}
}

// reclassifyAllLocked re-derives readiness for every pending writeback not
// already on the ready list. It is the safety net for dependency transitions
// the incremental tracker cannot observe (a detached future bound outside
// the scheduler lock); scheduling only falls back to it when the ready list
// is empty while writebacks remain queued.
func (s *Scheduler) reclassifyAllLocked() {
	for _, wb := range s.queue {
		if !wb.inReady {
			s.classifyLocked(wb)
		}
	}
}

// issuableSortedLocked returns the ready writebacks in enqueue (id) order —
// the same order the per-round queue rescan used to yield, which keeps
// harness rng pairing stable. Caller holds the lock; the returned slice
// aliases the ready list.
func (s *Scheduler) issuableSortedLocked() []*writeback {
	if len(s.ready) == 0 && len(s.queue) > 0 {
		s.reclassifyAllLocked()
	}
	sort.Slice(s.ready, func(i, j int) bool { return s.ready[i].id < s.ready[j].id })
	return s.ready
}

// sawUnboundLocked reports whether any queued writeback is blocked on an
// unbound future (first-obstacle semantics, matching readyLocked).
func (s *Scheduler) sawUnboundLocked() bool {
	for _, wb := range s.queue {
		if _, unbound := wb.readyLocked(); unbound {
			return true
		}
	}
	return false
}

// ReadAt reads from the disk with the pending writeback queue overlaid, so
// reads observe writes that have been enqueued but not yet issued (the
// node's page-cache coherence: acknowledged writes are immediately readable
// regardless of writeback progress).
func (s *Scheduler) ReadAt(ext disk.ExtentID, off int, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.d.ReadAt(ext, off, buf); err != nil {
		return err
	}
	end := off + len(buf)
	for _, wb := range s.queue {
		if wb.ext != ext {
			continue
		}
		wbEnd := wb.off + len(wb.data)
		lo, hi := wb.off, wbEnd
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		if lo < hi {
			copy(buf[lo-off:hi-off], wb.data[lo-wb.off:hi-wb.off])
		}
	}
	return nil
}

// Future returns an unbound placeholder dependency. It reports not-persistent
// until Bind attaches the real dependency. Futures let components hand out a
// dependency for a write that will be batched later (the superblock record).
func (s *Scheduler) Future() *Dependency {
	return &Dependency{s: s, future: true}
}

// NewDetachedFuture returns an unbound future dependency not tied to any
// scheduler. It is used by mock implementations (reference models) where
// persistence is immediate once bound.
func NewDetachedFuture() *Dependency { return &Dependency{future: true} }

// BindDetached binds a detached future created by NewDetachedFuture.
func BindDetached(future, real *Dependency) {
	if !future.future {
		panic("dep: BindDetached on non-future dependency")
	}
	if future.bound != nil {
		panic("dep: future already bound")
	}
	future.bound = real
}

// Bind attaches the real dependency to a future created by Future.
func (s *Scheduler) Bind(future, real *Dependency) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !future.future {
		panic("dep: Bind on non-future dependency")
	}
	if future.bound != nil {
		panic("dep: future already bound")
	}
	future.bound = real
	refs, ok := s.futureWaiters[future]
	if !ok {
		return
	}
	delete(s.futureWaiters, future)
	for _, r := range refs {
		if r.gen == r.wb.classGen && r.wb.state == statePending && !r.wb.inReady {
			s.classifyLocked(r.wb)
		}
	}
}

// issueLocked writes the selected writebacks to the disk cache, coalescing
// physically adjacent writebacks into single IOs. Returns issued writebacks.
// Caller holds the lock. Writebacks whose write fails (injected IO errors)
// remain queued — and on the ready list — for retry.
func (s *Scheduler) issueLocked(batch []*writeback) []*writeback {
	if len(batch) == 0 {
		return nil
	}
	batch = append([]*writeback(nil), batch...)
	// Sort the batch by physical position so adjacent writes coalesce.
	sort.SliceStable(batch, func(i, j int) bool {
		if batch[i].ext != batch[j].ext {
			return batch[i].ext < batch[j].ext
		}
		return batch[i].off < batch[j].off
	})

	var issued []*writeback
	for i := 0; i < len(batch); {
		run := []*writeback{batch[i]}
		j := i + 1
		for j < len(batch) && batch[j].ext == batch[i].ext &&
			batch[j].off == run[len(run)-1].off+len(run[len(run)-1].data) {
			run = append(run, batch[j])
			j++
		}
		issued = append(issued, s.writeRunLocked(run)...)
		i = j
	}
	if len(issued) > 0 {
		issuedSet := make(map[uint64]bool, len(issued))
		for _, wb := range issued {
			issuedSet[wb.id] = true
		}
		remaining := s.queue[:0]
		for _, wb := range s.queue {
			if !issuedSet[wb.id] {
				remaining = append(remaining, wb)
			}
		}
		s.queue = remaining
		s.filterReadyLocked()
		s.issued = append(s.issued, issued...)
	}
	return issued
}

// writeRunLocked issues one coalesced run and returns the writebacks that
// made it into the disk cache. A failing multi-writeback run is bisected and
// the halves retried independently, so a single bad page does not re-defer
// unrelated adjacent writebacks (a transient fault is consumed by the failed
// attempt, so the survivors usually land within the same round).
func (s *Scheduler) writeRunLocked(run []*writeback) []*writeback {
	var buf []byte
	for _, wb := range run {
		buf = append(buf, wb.data...)
	}
	if err := s.d.WriteAt(run[0].ext, run[0].off, buf); err != nil {
		s.stats.WriteErrors++
		s.cov.Hit("sched.write_error")
		if len(run) == 1 {
			// Leave it queued; transient failures clear and the writeback
			// is retried on the next pump.
			return nil
		}
		s.cov.Hit("sched.run_split")
		mid := len(run) / 2
		issued := s.writeRunLocked(run[:mid])
		return append(issued, s.writeRunLocked(run[mid:])...)
	}
	s.stats.IOs++
	s.met.ios.Inc()
	if len(run) > 1 {
		s.stats.Coalesced += uint64(len(run) - 1)
		s.met.coalesced.Add(uint64(len(run) - 1))
		s.cov.Hit("sched.coalesced")
	}
	for _, wb := range run {
		wb.state = stateIssued
		s.stats.Issued++
	}
	return run
}

// markDurableLocked transitions batch to durable and notifies readiness
// waiters. Caller holds the lock.
func (s *Scheduler) markDurableLocked(batch []*writeback) {
	for _, wb := range batch {
		wb.state = stateDurable
		// Durable writebacks never serve reads (the overlay only scans the
		// pending queue) and never re-issue; releasing their payloads keeps
		// long-lived dependency graphs from retaining the whole write
		// history.
		wb.data = nil
		wb.waits = nil
		s.stats.MadeDurable++
	}
	for _, wb := range batch {
		s.notifyDurableLocked(wb.id)
	}
}

// syncOutside makes all issued writebacks durable, holding the scheduler
// lock only to snapshot and to apply the outcome — the device flush itself
// runs unlocked, so reads of already-issued data (and new enqueues) proceed
// during the sync.
func (s *Scheduler) syncOutside() error {
	s.mu.Lock()
	batch := s.issued
	s.issued = nil
	epoch := s.crashEpoch
	s.mu.Unlock()

	err := s.d.Sync()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashEpoch != epoch {
		// A crash raced the flush. Whatever the flush landed is in the
		// durable image, but these writebacks may have been torn — leave
		// them non-durable (persistence stays conservative and monotonic).
		return err
	}
	if err != nil {
		s.issued = append(batch, s.issued...)
		return err
	}
	s.stats.Syncs++
	s.met.syncs.Inc()
	s.markDurableLocked(batch)
	return nil
}

// commitSyncOutside is the group leader's sync step. With the seeded
// FaultGroupCommitTornBarrier it reports the group durable without flushing
// the device — a torn barrier the §5 persistence check must catch after a
// crash.
func (s *Scheduler) commitSyncOutside() error {
	if s.bugs.Enabled(faults.FaultGroupCommitTornBarrier) {
		s.mu.Lock()
		batch := s.issued
		s.issued = nil
		s.markDurableLocked(batch)
		s.mu.Unlock()
		s.cov.Hit("sched.fault.torn_barrier")
		return nil
	}
	return s.syncOutside()
}

// Step performs one scheduler round: issue every currently-issuable
// writeback to the disk cache, without syncing. Data issued by Step can be
// torn by a crash at page granularity — this is where the interesting
// soft-updates crash states come from. It returns the number of writebacks
// issued.
func (s *Scheduler) Step() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A writeback only becomes issuable once its inputs are *durable*, so
	// issuing without syncing is safe: everything in the current ready batch
	// is mutually unordered.
	return len(s.issueLocked(s.issuableSortedLocked()))
}

// Sync flushes the disk write cache, making all issued writebacks durable.
// The device flush runs outside the scheduler critical section.
func (s *Scheduler) Sync() error {
	return s.syncOutside()
}

// Pump drives the scheduler to quiescence: repeatedly issue all issuable
// writebacks and sync, until nothing is left or no progress can be made.
// It returns ErrUnboundFuture if the only obstacle to progress is a future
// dependency that was never bound, and nil if the queue drained.
func (s *Scheduler) Pump() error {
	return s.drive(nil, s.syncOutside)
}

// drive is the scheduler's issue+sync loop, shared by Pump and the group
// leader. Each round issues one topological level (the ready list — all
// mutually unordered) as coalesced batches, then syncs via syncFn with the
// scheduler lock released. A non-nil stop short-circuits the loop once the
// caller's durability goal is met.
func (s *Scheduler) drive(stop func() bool, syncFn func() error) error {
	failedRounds := 0
	for {
		if stop != nil && stop() {
			return nil
		}
		s.mu.Lock()
		batch := append([]*writeback(nil), s.issuableSortedLocked()...)
		if len(batch) == 0 {
			hasIssued := len(s.issued) > 0
			queued := len(s.queue)
			sawUnbound := false
			if !hasIssued && queued > 0 {
				sawUnbound = s.sawUnboundLocked()
			}
			s.mu.Unlock()
			if hasIssued {
				if err := syncFn(); err != nil {
					return err
				}
				continue
			}
			if queued == 0 {
				return nil
			}
			if sawUnbound {
				return ErrUnboundFuture
			}
			// Blocked on a dependency that cannot progress (e.g. writes to a
			// permanently failed extent). Leave the queue intact.
			return fmt.Errorf("dep: %d writebacks blocked (IO failures?)", queued)
		}
		issued := s.issueLocked(batch)
		if len(issued) == 0 {
			// Every issuable writeback failed to write (injected faults).
			// Transient failures clear on their first hit, so retry a few
			// rounds before giving up (permanent failures stay blocked).
			hasIssued := len(s.issued) > 0
			queued := len(s.queue)
			s.mu.Unlock()
			if hasIssued {
				if err := syncFn(); err != nil {
					return err
				}
				continue
			}
			failedRounds++
			if failedRounds > 4 {
				return fmt.Errorf("dep: write failures blocked %d writebacks", queued)
			}
			continue
		}
		failedRounds = 0
		s.mu.Unlock()
		if err := syncFn(); err != nil {
			return err
		}
	}
}

// Commit drives the scheduler until d is persistent, amortizing device
// flushes across concurrent callers: if a commit is already in flight the
// caller enrolls in the current group and sleeps on the barrier; otherwise
// it becomes the leader and drives issue+sync rounds for everyone enrolled —
// one disk.Sync per dependency level regardless of how many callers wait.
//
// bind, if non-nil, is invoked by the leader before driving and again if an
// unbound future still blocks d; it must bind the futures d transitively
// waits on (e.g. by flushing the index memtable and the superblock record),
// and doing so for the leader binds them for every enrolled follower from
// the same generation — the shared flush barrier.
//
// d must come from this scheduler. All barrier synchronization goes through
// vsync, so shuttle explorations interleave leaders, followers, and crashes
// deterministically.
func (s *Scheduler) Commit(d *Dependency, bind func() error) error {
	return s.CommitTraced(d, bind, nil)
}

// CommitTraced is Commit with an optional request span: each enrollment
// period lands on sp as a sched.barrier_wait stage (detail "follower"), and
// the leader's coalesced sync rounds land as disk.sync_wait stages carrying
// the group size — the per-request view of where a durable ack's time went.
// A nil sp meters exactly like Commit; the span never influences scheduling.
func (s *Scheduler) CommitTraced(d *Dependency, bind func() error, sp *obs.Span) error {
	if d == nil || d.IsPersistent() {
		return nil
	}
	s.met.commits.Inc()
	for {
		s.gmu.Lock()
		if s.leaderBusy {
			start := s.met.o.Now()
			spStart := sp.Now()
			seq := s.commitSeq
			s.enrolled++
			for s.leaderBusy && s.commitSeq == seq {
				s.gcond.Wait()
			}
			s.enrolled--
			s.gmu.Unlock()
			sp.Stage(obs.StageBarrierWait, spStart, "follower")
			if d.IsPersistent() {
				s.met.followers.Inc()
				s.met.barrierWait.Observe(s.met.o.Now() - start)
				s.cov.Hit("sched.commit_follower")
				return nil
			}
			continue
		}
		s.leaderBusy = true
		s.gmu.Unlock()
		leadStart := s.met.o.Now()
		err := s.commitLead(d, bind, sp)
		s.met.barrierLead.Observe(s.met.o.Now() - leadStart)
		s.gmu.Lock()
		s.leaderBusy = false
		s.commitSeq++
		s.gcond.Broadcast()
		s.gmu.Unlock()
		return err
	}
}

// commitLead is the group leader's loop: bind futures, then drive issue+sync
// rounds until d is persistent, publishing each completed sync to the
// barrier so satisfied followers wake without waiting for the leader's own
// goal.
func (s *Scheduler) commitLead(d *Dependency, bind func() error, sp *obs.Span) error {
	stop := func() bool { return d.IsPersistent() }
	syncFn := func() error {
		spStart := sp.Now()
		if err := s.commitSyncOutside(); err != nil {
			return err
		}
		s.gmu.Lock()
		size := 1 + s.enrolled
		s.commitSeq++
		s.gcond.Broadcast()
		s.gmu.Unlock()
		s.met.groupSize.Observe(uint64(size))
		if sp != nil {
			sp.Stage(obs.StageDiskSync, spStart, fmt.Sprintf("leader group=%d", size))
		}
		if size > 1 {
			s.cov.Hit("sched.group_commit")
		}
		return nil
	}
	for attempt := 0; ; attempt++ {
		if d.IsPersistent() {
			return nil
		}
		if bind != nil {
			if err := bind(); err != nil {
				return err
			}
		}
		err := s.drive(stop, syncFn)
		if d.IsPersistent() {
			return err
		}
		if err == nil {
			// The queue drained but d still waits on an unbound future that
			// blocks no writeback (e.g. a staged superblock pointer).
			err = ErrUnboundFuture
		}
		if bind == nil || !errors.Is(err, ErrUnboundFuture) || attempt >= 3 {
			return err
		}
		// bind itself may stage further futures (an index flush stages new
		// superblock pointers); bind and drive again.
	}
}

// StepRandom issues a random subset of the currently-issuable writebacks —
// used by harnesses to explore more intermediate states than Step's
// everything-at-once policy.
func (s *Scheduler) StepRandom(rng *rand.Rand) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cands := s.issuableSortedLocked()
	var pick []*writeback
	for _, wb := range cands {
		if rng.Intn(2) == 0 {
			pick = append(pick, wb)
		}
	}
	if len(pick) == 0 && len(cands) > 0 {
		pick = cands[:1]
	}
	return len(s.issueLocked(pick))
}

// CancelExtentPending removes every queued (not yet issued) writeback
// targeting ext, marking each as superseded by supersede. An extent reset
// calls this: data still buffered for a reset extent must not be written
// into the reclaimed space later, and its durability obligation transfers
// to the reset (which is ordered after the evacuations and the reference
// updates that superseded the data). It returns the number of cancellations.
func (s *Scheduler) CancelExtentPending(ext disk.ExtentID, supersede *Dependency) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.queue[:0]
	var cancelled []*writeback
	for _, wb := range s.queue {
		if wb.ext == ext {
			wb.state = stateSuperseded
			wb.supersededBy = supersede
			cancelled = append(cancelled, wb)
			continue
		}
		kept = append(kept, wb)
	}
	s.queue = kept
	if len(cancelled) == 0 {
		return 0
	}
	s.filterReadyLocked()
	// Anything counting on a cancelled writeback re-derives its readiness:
	// the walk now follows the superseding dependency instead.
	for _, wb := range cancelled {
		refs, ok := s.blockers[wb.id]
		if !ok {
			continue
		}
		delete(s.blockers, wb.id)
		for _, r := range refs {
			if r.gen == r.wb.classGen && r.wb.state == statePending && !r.wb.inReady {
				s.classifyLocked(r.wb)
			}
		}
	}
	s.cov.Hit("sched.cancelled")
	return len(cancelled)
}

// Crash discards all pending writebacks (they lived only in memory) and
// tears the disk cache via disk.Crash. Dependencies keep their pre-crash
// persistence status. The scheduler is unusable afterwards; recovery builds
// a fresh one on the same disk.
func (s *Scheduler) Crash(rng *rand.Rand) (kept, lost []disk.PageAddr) {
	s.mu.Lock()
	s.dropAllLocked()
	s.mu.Unlock()
	return s.d.Crash(rng)
}

// CrashKeep is the deterministic crash used by the exhaustive block-level
// enumerator.
func (s *Scheduler) CrashKeep(keep func(disk.PageAddr) bool) (kept, lost []disk.PageAddr) {
	s.mu.Lock()
	s.dropAllLocked()
	s.mu.Unlock()
	return s.d.CrashKeep(keep)
}

// dropAllLocked empties the scheduler for a crash: pending and issued
// writebacks are dropped, readiness tracking is reset, and the crash epoch
// invalidates any sync that is concurrently in flight.
func (s *Scheduler) dropAllLocked() {
	s.crashEpoch++
	s.stats.DroppedCrash += uint64(len(s.queue))
	s.queue = nil
	s.issued = nil
	s.ready = nil
	s.blockers = map[uint64][]blockRef{}
	s.futureWaiters = map[*Dependency][]blockRef{}
}

// PendingCount returns the number of enqueued-but-unissued writebacks.
func (s *Scheduler) PendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// IssuedCount returns the number of issued-but-not-durable writebacks.
func (s *Scheduler) IssuedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.issued)
}

// DumpBlocked describes the queued writebacks and why each is not issuable
// (debugging aid).
func (s *Scheduler) DumpBlocked() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	for _, wb := range s.queue {
		ready, unbound := wb.readyLocked()
		fmt.Fprintf(&b, "wb#%d %q e%d+%d:%d ready=%v unboundFuture=%v\n", wb.id, wb.label, wb.ext, wb.off, len(wb.data), ready, unbound)
		for i, w := range wb.waits {
			fmt.Fprintf(&b, "   wait[%d] persistent=%v %s\n", i, w.computePersistent(), describeDep(w, 0))
		}
	}
	return b.String()
}

func describeDep(d *Dependency, depth int) string {
	if depth > 6 {
		return "..."
	}
	if d == nil || d == resolvedDep {
		return "resolved"
	}
	if d.future {
		if d.bound == nil {
			return "future(unbound)"
		}
		return "future->" + describeDep(d.bound, depth+1)
	}
	out := ""
	for _, wb := range d.wbs {
		st := map[wbState]string{statePending: "pending", stateIssued: "issued", stateDurable: "durable", stateSuperseded: "superseded"}[wb.state]
		out += fmt.Sprintf("wb#%d(%s,%s)", wb.id, wb.label, st)
		if wb.state == stateSuperseded {
			out += "->" + describeDep(wb.supersededBy, depth+1)
		}
	}
	for _, p := range d.parents {
		if !p.computePersistent() {
			out += "{" + describeDep(p, depth+1) + "}"
		}
	}
	return out
}

// DumpGraph renders the dependency graph rooted at d as indented text, for
// examples and debugging.
func DumpGraph(d *Dependency) string {
	nodes, edges := d.Graph()
	var b strings.Builder
	byID := map[uint64]WriteInfo{}
	for _, n := range nodes {
		byID[n.ID] = n
	}
	for _, n := range nodes {
		fmt.Fprintf(&b, "wb#%d %-28s extent %d [%d,%d)\n", n.ID, n.Label, n.Extent, n.Offset, n.Offset+n.Length)
		for _, e := range edges {
			if e.To == n.ID {
				from := byID[e.From]
				fmt.Fprintf(&b, "  after wb#%d %s\n", e.From, from.Label)
			}
		}
	}
	return b.String()
}

// Package prop is a small property-based testing engine (the paper's
// stand-in for proptest [30], §4.1): generator combinators with probabilistic
// biasing, deterministic seed-driven case generation, and automatic
// minimization of failing inputs.
//
// The engine favors the behaviors §4 calls out: biases are always
// probabilistic (they raise the chance of interesting arguments without
// excluding others), generation is replayable from a seed, and minimization
// uses simple reduction heuristics — remove operations, shrink arguments
// toward zero, prefer earlier enum variants — iterated to a fixpoint.
package prop

import (
	"math/rand"
)

// Gen produces a random value. size loosely bounds the magnitude/length of
// generated values.
type Gen[T any] func(r *rand.Rand, size int) T

// Const always generates v.
func Const[T any](v T) Gen[T] {
	return func(*rand.Rand, int) T { return v }
}

// IntRange generates integers in [lo, hi] inclusive.
func IntRange(lo, hi int) Gen[int] {
	if hi < lo {
		lo, hi = hi, lo
	}
	return func(r *rand.Rand, _ int) int { return lo + r.Intn(hi-lo+1) }
}

// OneOf picks uniformly among alternatives.
func OneOf[T any](gens ...Gen[T]) Gen[T] {
	return func(r *rand.Rand, size int) T {
		return gens[r.Intn(len(gens))](r, size)
	}
}

// Weighted picks among alternatives with the given relative weights. Weights
// must be positive.
func Weighted[T any](weights []int, gens []Gen[T]) Gen[T] {
	if len(weights) != len(gens) || len(gens) == 0 {
		panic("prop: Weighted needs equal, non-empty weights and gens")
	}
	total := 0
	for _, w := range weights {
		if w <= 0 {
			panic("prop: non-positive weight")
		}
		total += w
	}
	return func(r *rand.Rand, size int) T {
		n := r.Intn(total)
		for i, w := range weights {
			if n < w {
				return gens[i](r, size)
			}
			n -= w
		}
		return gens[len(gens)-1](r, size)
	}
}

// Biased returns a generator that uses preferred with probability p and
// fallback otherwise — the §4.2 pattern: "biases are always probabilistic:
// they only increase the chance of selecting desirable cases, but other
// cases remain possible".
func Biased[T any](p float64, preferred, fallback Gen[T]) Gen[T] {
	return func(r *rand.Rand, size int) T {
		if r.Float64() < p {
			return preferred(r, size)
		}
		return fallback(r, size)
	}
}

// Bytes generates byte slices of length up to size.
func Bytes() Gen[[]byte] {
	return func(r *rand.Rand, size int) []byte {
		n := r.Intn(size + 1)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		return b
	}
}

// SliceOf generates slices of elem with length up to size.
func SliceOf[T any](elem Gen[T]) Gen[[]T] {
	return func(r *rand.Rand, size int) []T {
		n := r.Intn(size + 1)
		out := make([]T, n)
		for i := range out {
			out[i] = elem(r, size)
		}
		return out
	}
}

// Map transforms generated values.
func Map[T, U any](g Gen[T], f func(T) U) Gen[U] {
	return func(r *rand.Rand, size int) U { return f(g(r, size)) }
}

// CaseSeed derives the deterministic seed for case i of a run seeded with
// root. SplitMix64 finalizer keeps neighbouring cases uncorrelated.
func CaseSeed(root int64, i int) int64 {
	z := uint64(root) + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Failure describes a failing case found by ForAll.
type Failure[T any] struct {
	// Case is the zero-based index of the failing case.
	Case int
	// Seed replays the failing case.
	Seed int64
	// Input is the generated input that failed.
	Input T
	// Minimized is the shrunk input (equal to Input if shrinking is
	// disabled or found nothing smaller).
	Minimized T
	// Err is the property violation.
	Err error
}

// Config tunes a ForAll run.
type Config struct {
	// Cases is the number of random cases (default 100).
	Cases int
	// Seed roots the run; 0 means 1 (fully deterministic by default).
	Seed int64
	// Size is the generator size parameter (default 32).
	Size int
}

func (c Config) withDefaults() Config {
	if c.Cases == 0 {
		c.Cases = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Size == 0 {
		c.Size = 32
	}
	return c
}

// ForAll checks prop on Cases random inputs and returns the first failure
// (shrunk with shrink, if non-nil), or nil if every case passed.
func ForAll[T any](cfg Config, gen Gen[T], property func(T) error, shrink func(T) []T) *Failure[T] {
	cfg = cfg.withDefaults()
	for i := 0; i < cfg.Cases; i++ {
		seed := CaseSeed(cfg.Seed, i)
		r := rand.New(rand.NewSource(seed))
		input := gen(r, cfg.Size)
		err := property(input)
		if err == nil {
			continue
		}
		f := &Failure[T]{Case: i, Seed: seed, Input: input, Minimized: input, Err: err}
		if shrink != nil {
			f.Minimized, f.Err = MinimizeValue(input, err, property, shrink, 1000)
		}
		return f
	}
	return nil
}

// MinimizeValue greedily applies shrink candidates while the property keeps
// failing, up to budget property evaluations. It returns the smallest
// still-failing input found and its error.
func MinimizeValue[T any](input T, err error, property func(T) error, shrink func(T) []T, budget int) (T, error) {
	cur, curErr := input, err
	for budget > 0 {
		improved := false
		for _, cand := range shrink(cur) {
			if budget <= 0 {
				break
			}
			budget--
			if cerr := property(cand); cerr != nil {
				cur, curErr = cand, cerr
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return cur, curErr
}

// MinimizeSeq shrinks a failing operation sequence with the §4.3 heuristics:
// first delta-debugging style chunk removal ("remove an operation from the
// sequence"), then per-element shrinking via shrinkOp ("shrink an integer
// argument towards zero" / earlier enum variants). fails must be
// deterministic; budget bounds the number of fails evaluations.
func MinimizeSeq[O any](seq []O, fails func([]O) bool, shrinkOp func(O) []O, budget int) []O {
	cur := append([]O(nil), seq...)
	eval := func(c []O) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return fails(c)
	}

	// Phase 1: remove chunks, halving granularity.
	for chunkLen := len(cur) / 2; chunkLen >= 1; chunkLen /= 2 {
		changed := true
		for changed {
			changed = false
			for start := 0; start+chunkLen <= len(cur); start++ {
				cand := make([]O, 0, len(cur)-chunkLen)
				cand = append(cand, cur[:start]...)
				cand = append(cand, cur[start+chunkLen:]...)
				if len(cand) == 0 {
					continue
				}
				if eval(cand) {
					cur = cand
					changed = true
				}
			}
			if budget <= 0 {
				return cur
			}
		}
	}

	// Phase 2: shrink individual operations to a fixpoint.
	if shrinkOp != nil {
		for improved := true; improved && budget > 0; {
			improved = false
			for i := range cur {
				for _, alt := range shrinkOp(cur[i]) {
					cand := append([]O(nil), cur...)
					cand[i] = alt
					if eval(cand) {
						cur = cand
						improved = true
						break
					}
				}
			}
		}
	}
	return cur
}

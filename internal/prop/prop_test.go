package prop

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestIntRange(t *testing.T) {
	g := IntRange(3, 7)
	r := rng()
	for i := 0; i < 100; i++ {
		v := g(r, 0)
		if v < 3 || v > 7 {
			t.Fatalf("out of range: %d", v)
		}
	}
	// Swapped bounds are normalized.
	g2 := IntRange(7, 3)
	if v := g2(r, 0); v < 3 || v > 7 {
		t.Fatalf("swapped bounds: %d", v)
	}
}

func TestConstAndMap(t *testing.T) {
	g := Map(Const(21), func(v int) int { return v * 2 })
	if g(rng(), 0) != 42 {
		t.Fatal("map/const broken")
	}
}

func TestWeightedDistribution(t *testing.T) {
	g := Weighted([]int{9, 1}, []Gen[string]{Const("a"), Const("b")})
	r := rng()
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		counts[g(r, 0)]++
	}
	if counts["a"] < 700 || counts["b"] == 0 {
		t.Fatalf("weights not respected: %v", counts)
	}
}

func TestWeightedPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched weights")
		}
	}()
	Weighted([]int{1}, []Gen[int]{Const(1), Const(2)})
}

func TestBiasedProbabilistic(t *testing.T) {
	g := Biased(0.9, Const("preferred"), Const("fallback"))
	r := rng()
	pref := 0
	for i := 0; i < 1000; i++ {
		if g(r, 0) == "preferred" {
			pref++
		}
	}
	if pref < 800 || pref == 1000 {
		t.Fatalf("bias must be probabilistic, got %d/1000", pref)
	}
}

func TestBytesAndSlices(t *testing.T) {
	r := rng()
	for i := 0; i < 50; i++ {
		b := Bytes()(r, 16)
		if len(b) > 16 {
			t.Fatalf("bytes too long: %d", len(b))
		}
		s := SliceOf(IntRange(0, 9))(r, 8)
		if len(s) > 8 {
			t.Fatalf("slice too long: %d", len(s))
		}
	}
}

func TestCaseSeedDeterministicAndSpread(t *testing.T) {
	if CaseSeed(1, 0) != CaseSeed(1, 0) {
		t.Fatal("nondeterministic")
	}
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := CaseSeed(42, i)
		if seen[s] {
			t.Fatalf("seed collision at %d", i)
		}
		seen[s] = true
	}
}

func TestForAllPasses(t *testing.T) {
	f := ForAll(Config{Cases: 50}, IntRange(0, 100), func(v int) error {
		if v < 0 || v > 100 {
			return errors.New("out of range")
		}
		return nil
	}, nil)
	if f != nil {
		t.Fatalf("spurious failure: %+v", f)
	}
}

func TestForAllFindsAndShrinks(t *testing.T) {
	shrink := func(v int) []int {
		if v == 0 {
			return nil
		}
		return []int{v / 2, v - 1}
	}
	f := ForAll(Config{Cases: 200}, IntRange(0, 1000), func(v int) error {
		if v >= 17 {
			return fmt.Errorf("too big: %d", v)
		}
		return nil
	}, shrink)
	if f == nil {
		t.Fatal("failure not found")
	}
	if f.Minimized != 17 {
		t.Fatalf("minimized to %d, want 17", f.Minimized)
	}
}

func TestForAllReplayableBySeed(t *testing.T) {
	var first int
	f := ForAll(Config{Cases: 10}, IntRange(0, 1<<30), func(v int) error {
		first = v
		return errors.New("always fails")
	}, nil)
	r := rand.New(rand.NewSource(f.Seed))
	replayed := IntRange(0, 1<<30)(r, 32)
	_ = first
	if replayed != f.Input {
		t.Fatalf("seed replay mismatch: %d vs %d", replayed, f.Input)
	}
}

func TestMinimizeSeqRemovesIrrelevantOps(t *testing.T) {
	// Failure iff the sequence contains both 3 and 7.
	seq := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	fails := func(s []int) bool {
		has3, has7 := false, false
		for _, v := range s {
			if v == 3 {
				has3 = true
			}
			if v == 7 {
				has7 = true
			}
		}
		return has3 && has7
	}
	min := MinimizeSeq(seq, fails, nil, 10000)
	if len(min) != 2 {
		t.Fatalf("minimized to %v, want [3 7]", min)
	}
}

func TestMinimizeSeqShrinksArguments(t *testing.T) {
	seq := []int{100, 200}
	fails := func(s []int) bool {
		sum := 0
		for _, v := range s {
			sum += v
		}
		return sum >= 50
	}
	shrink := func(v int) []int {
		if v == 0 {
			return nil
		}
		return []int{0, v / 2}
	}
	min := MinimizeSeq(seq, fails, shrink, 10000)
	sum := 0
	for _, v := range min {
		sum += v
	}
	if sum >= 150 {
		t.Fatalf("arguments not shrunk: %v", min)
	}
	if !fails(min) {
		t.Fatalf("minimized sequence no longer fails: %v", min)
	}
}

func TestMinimizeSeqRespectsBudget(t *testing.T) {
	calls := 0
	seq := make([]int, 64)
	fails := func(s []int) bool {
		calls++
		return true
	}
	MinimizeSeq(seq, fails, nil, 10)
	if calls > 11 {
		t.Fatalf("budget exceeded: %d calls", calls)
	}
}

func TestMinimizeValue(t *testing.T) {
	prop := func(v int) error {
		if v >= 10 {
			return errors.New("big")
		}
		return nil
	}
	shrink := func(v int) []int { return []int{v - 1} }
	min, err := MinimizeValue(100, errors.New("big"), prop, shrink, 1000)
	if min != 10 || err == nil {
		t.Fatalf("minimized to %d (%v), want 10", min, err)
	}
}

func TestOneOfCoversAlternatives(t *testing.T) {
	g := OneOf(Const(1), Const(2), Const(3))
	r := rng()
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[g(r, 0)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("alternatives not covered: %v", seen)
	}
}

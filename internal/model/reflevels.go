package model

import (
	"fmt"
	"sort"

	"shardstore/internal/dep"
	"shardstore/internal/lsm"
)

// RefLevels is the reference model for the leveled LSM index, in the
// CobbleDB style: each level is itself modeled as a simple composed store —
// a memtable map, a list of L0 run maps (newest first), and one map per
// deeper level — and a read consults them in precedence order. Where
// RefIndex specifies only the key-value mapping (and so validates that
// compaction changes nothing observable), RefLevels additionally specifies
// the *level structure*: which entries live at which level after a flush,
// an L0 promotion, or a level push. The lockstep test drives the production
// tree and this model through identical operations and compares both the
// flattened mapping and the per-level composition.
type RefLevels struct {
	mem map[string]refCell
	l0  []map[string]refCell // newest first
	// deep[l] is the single merged store at level l (1..MaxLevels).
	deep map[int]map[string]refCell
}

// refCell is one modeled entry: a value or a tombstone.
type refCell struct {
	value     []byte
	tombstone bool
}

// NewRefLevels returns an empty leveled reference model.
func NewRefLevels() *RefLevels {
	return &RefLevels{
		mem:  make(map[string]refCell),
		deep: make(map[int]map[string]refCell),
	}
}

// Put implements lsm.Index.
func (r *RefLevels) Put(key string, value []byte, waits ...*dep.Dependency) (*dep.Dependency, error) {
	r.mem[key] = refCell{value: append([]byte(nil), value...)}
	return dep.Resolved(), nil
}

// Delete implements lsm.Index: it buffers a tombstone, exactly like the tree.
func (r *RefLevels) Delete(key string, waits ...*dep.Dependency) (*dep.Dependency, error) {
	r.mem[key] = refCell{tombstone: true}
	return dep.Resolved(), nil
}

// lookup returns the newest cell for key across the composed stores.
func (r *RefLevels) lookup(key string) (refCell, bool) {
	if c, ok := r.mem[key]; ok {
		return c, true
	}
	for _, run := range r.l0 {
		if c, ok := run[key]; ok {
			return c, true
		}
	}
	for lv := 1; lv <= lsm.MaxLevels; lv++ {
		if c, ok := r.deep[lv][key]; ok {
			return c, true
		}
	}
	return refCell{}, false
}

// Get implements lsm.Index.
func (r *RefLevels) Get(key string) ([]byte, error) {
	c, ok := r.lookup(key)
	if !ok || c.tombstone {
		return nil, lsm.ErrNotFound
	}
	return append([]byte(nil), c.value...), nil
}

// Keys implements lsm.Index.
func (r *RefLevels) Keys() ([]string, error) {
	seen := make(map[string]bool)
	collect := func(m map[string]refCell) {
		for k := range m {
			seen[k] = true
		}
	}
	collect(r.mem)
	for _, run := range r.l0 {
		collect(run)
	}
	for lv := 1; lv <= lsm.MaxLevels; lv++ {
		collect(r.deep[lv])
	}
	all := make([]string, 0, len(seen))
	for k := range seen {
		all = append(all, k)
	}
	sort.Strings(all)
	var out []string
	for _, k := range all {
		if c, _ := r.lookup(k); !c.tombstone {
			out = append(out, k)
		}
	}
	return out, nil
}

// Flush implements lsm.Index: the memtable becomes the newest L0 run.
func (r *RefLevels) Flush() (*dep.Dependency, error) {
	if len(r.mem) == 0 {
		return dep.Resolved(), nil
	}
	r.l0 = append([]map[string]refCell{r.mem}, r.l0...)
	r.mem = make(map[string]refCell)
	return dep.Resolved(), nil
}

// PromoteL0 mirrors the tree's L0→L1 compaction (flush auto-compaction and
// the engine's L0-pressure plan): every L0 run and the resident L1 store
// merge into L1, newest winning; tombstones are elided only when no deeper
// level holds data they might mask.
func (r *RefLevels) PromoteL0() {
	if len(r.l0) == 0 && len(r.deep[1]) == 0 {
		return
	}
	merged := make(map[string]refCell)
	for k, c := range r.deep[1] {
		merged[k] = c
	}
	for i := len(r.l0) - 1; i >= 0; i-- { // oldest first; newer overwrite
		for k, c := range r.l0[i] {
			merged[k] = c
		}
	}
	r.l0 = nil
	r.deep[1] = r.dropShadowedTombstones(merged, 1)
}

// Promote mirrors the engine's deep-level push: level lv and level lv+1
// merge into lv+1 (lv's data is newer and wins).
func (r *RefLevels) Promote(lv int) error {
	if lv < 1 || lv >= lsm.MaxLevels {
		return fmt.Errorf("model: promote level %d out of range", lv)
	}
	merged := make(map[string]refCell)
	for k, c := range r.deep[lv+1] {
		merged[k] = c
	}
	for k, c := range r.deep[lv] {
		merged[k] = c
	}
	delete(r.deep, lv)
	r.deep[lv+1] = r.dropShadowedTombstones(merged, lv+1)
	return nil
}

// dropShadowedTombstones elides tombstones from a merged store landing at
// outLevel when no deeper level remains — the same rule ApplyPlan uses.
func (r *RefLevels) dropShadowedTombstones(m map[string]refCell, outLevel int) map[string]refCell {
	deeper := false
	for lv := outLevel + 1; lv <= lsm.MaxLevels; lv++ {
		if len(r.deep[lv]) > 0 {
			deeper = true
			break
		}
	}
	if deeper {
		return m
	}
	for k, c := range m {
		if c.tombstone {
			delete(m, k)
		}
	}
	return m
}

// Compact implements lsm.Index: the control-plane full merge collapses every
// level into the deepest occupied one.
func (r *RefLevels) Compact() error {
	out := 1
	for lv := 1; lv <= lsm.MaxLevels; lv++ {
		if len(r.deep[lv]) > 0 {
			out = lv
		}
	}
	merged := make(map[string]refCell)
	for lv := lsm.MaxLevels; lv >= 1; lv-- { // deepest (oldest) first
		for k, c := range r.deep[lv] {
			merged[k] = c
		}
	}
	for i := len(r.l0) - 1; i >= 0; i-- {
		for k, c := range r.l0[i] {
			merged[k] = c
		}
	}
	r.l0 = nil
	r.deep = make(map[int]map[string]refCell)
	for k, c := range merged {
		if c.tombstone {
			continue // full merge always drops tombstones (nothing deeper remains)
		}
		if r.deep[out] == nil {
			r.deep[out] = make(map[string]refCell)
		}
		r.deep[out][k] = c
	}
	return nil
}

// Scan mirrors the tree's ordered-map read: the live entries in [start, end)
// in ascending key order, newest version per key, tombstones elided, bounded
// by limit (<= 0 unbounded; empty end unbounded). Because the model is an
// ordinary composed map, the result is trivially a point-in-time snapshot —
// the property the tree's generation-pinned iterator must match.
func (r *RefLevels) Scan(start, end string, limit int) ([]lsm.Entry, bool, error) {
	keys, err := r.Keys()
	if err != nil {
		return nil, false, err
	}
	out := make([]lsm.Entry, 0)
	for _, k := range keys {
		if k < start {
			continue
		}
		if end != "" && k >= end {
			break
		}
		if limit > 0 && len(out) >= limit {
			return out, true, nil
		}
		c, _ := r.lookup(k)
		out = append(out, lsm.Entry{Key: k, Value: append([]byte(nil), c.value...)})
	}
	return out, false, nil
}

// L0Count returns the number of modeled L0 runs.
func (r *RefLevels) L0Count() int { return len(r.l0) }

// LevelKeys returns the sorted keys (live or tombstoned) present at a level:
// 0 aggregates the L0 runs, 1..MaxLevels read the merged stores. It is the
// structural surface the lockstep test compares against the tree's runs.
func (r *RefLevels) LevelKeys(lv int) []string {
	seen := make(map[string]bool)
	if lv == 0 {
		for _, run := range r.l0 {
			for k := range run {
				seen[k] = true
			}
		}
	} else {
		for k := range r.deep[lv] {
			seen[k] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

var _ lsm.Index = (*RefLevels)(nil)

package model

import (
	"errors"
	"fmt"

	"shardstore/internal/chunk"
	"shardstore/internal/dep"
	"shardstore/internal/faults"
	"shardstore/internal/lsm"
	"shardstore/internal/vsync"
)

// ErrNoChunk is returned by the reference chunk store for unknown locators.
var ErrNoChunk = errors.New("model: no such chunk")

// RefChunkStore is the reference model for the chunk store: an in-memory
// map from synthetic locators to payloads. It serves as the mock chunk
// store when unit-testing components above the chunk layer (the paper's Fig
// 4 harness "mocks out the persistent chunk storage that backs the LSM
// tree").
//
// The model hands out locators from a monotonic counter — the paper's bug
// #15 was this very model re-using locators after a simulated reclamation,
// violating an assumption other code made about locator uniqueness.
type RefChunkStore struct {
	mu     vsync.Mutex
	bugs   *faults.Set
	chunks map[chunk.Locator][]byte
	next   int
	// checkpoint is the counter value at the last reclaim; the bug #15 path
	// rewinds to it.
	checkpoint int
}

// NewRefChunkStore returns an empty reference chunk store.
func NewRefChunkStore(bugs *faults.Set) *RefChunkStore {
	return &RefChunkStore{bugs: bugs, chunks: make(map[chunk.Locator][]byte)}
}

// refExtent is the synthetic extent id for model locators, far outside any
// real disk geometry so confusion with real locators is detectable.
const refExtent = 1 << 20

func (r *RefChunkStore) locator(n, length int) chunk.Locator {
	return chunk.Locator{Extent: refExtent, Offset: n, Length: length}
}

// Put implements lsm.ChunkStore.
func (r *RefChunkStore) Put(tag chunk.Tag, key string, payload []byte, waits ...*dep.Dependency) (chunk.Locator, *dep.Dependency, func(), error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	loc := r.locator(r.next, len(payload))
	r.next++
	r.chunks[loc] = append([]byte(nil), payload...)
	return loc, dep.Resolved(), func() {}, nil
}

// Get implements lsm.ChunkStore.
func (r *RefChunkStore) Get(loc chunk.Locator) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.chunks[loc]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoChunk, loc)
	}
	return append([]byte(nil), p...), nil
}

// Delete drops a chunk from the model.
func (r *RefChunkStore) Delete(loc chunk.Locator) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.chunks, loc)
}

// Reclaim models the chunk-reclamation background task. In the model it
// must be a no-op on the visible mapping; under seeded bug #15 it rewinds
// the locator counter to its last checkpoint, so subsequent Puts re-issue
// locators that other code (run caches, locator-keyed maps) assumed unique.
func (r *RefChunkStore) Reclaim() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bugs.Enabled(faults.Bug15RefModelLocatorReuse) {
		r.next = r.checkpoint
		return
	}
	r.checkpoint = r.next
}

// Len returns the number of stored chunks.
func (r *RefChunkStore) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.chunks)
}

// RefMetaStore is the in-memory mock of the LSM metadata store.
type RefMetaStore struct {
	mu     vsync.Mutex
	latest []byte
}

// NewRefMetaStore returns an empty metadata mock.
func NewRefMetaStore() *RefMetaStore { return &RefMetaStore{} }

// WriteRecord implements lsm.MetaStore.
func (r *RefMetaStore) WriteRecord(payload []byte, waits ...*dep.Dependency) (*dep.Dependency, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.latest = append([]byte(nil), payload...)
	return dep.Resolved(), nil
}

// LastDep implements lsm.MetaStore.
func (r *RefMetaStore) LastDep() *dep.Dependency { return dep.Resolved() }

// ReadLatest implements lsm.MetaStore.
func (r *RefMetaStore) ReadLatest() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.latest == nil {
		return nil, nil
	}
	return append([]byte(nil), r.latest...), nil
}

// ResolvedFutures is a FutureFactory whose futures bind through a throwaway
// holder — suitable for mock-backed unit tests where persistence is
// immediate.
type ResolvedFutures struct{}

// Future implements lsm.FutureFactory.
func (ResolvedFutures) Future() *dep.Dependency { return dep.NewDetachedFuture() }

// Bind implements lsm.FutureFactory.
func (ResolvedFutures) Bind(future, real *dep.Dependency) { dep.BindDetached(future, real) }

var (
	_ lsm.ChunkStore    = (*RefChunkStore)(nil)
	_ lsm.MetaStore     = (*RefMetaStore)(nil)
	_ lsm.FutureFactory = ResolvedFutures{}
)

package model

import (
	"bytes"
	"fmt"
	"sort"

	"shardstore/internal/dep"
	"shardstore/internal/faults"
)

// RefStore is the crash-extended reference model for the whole key-value
// store (§3.1/§5). In crash-free operation it is simply a map and the
// durability property is exact equivalence of the key-value mapping. To
// reason about crashes the model additionally records, per mutation, the
// Dependency the implementation returned; at a dirty reboot it derives the
// set of values soft updates allows each key to hold:
//
//   - the value of the latest mutation whose dependency reports persistent
//     (or the pre-crash durable base if none does) — this one is mandatory
//     in the sense that the implementation may not lose it;
//   - any later, not-yet-persistent mutation — unacknowledged writes may
//     legitimately survive a crash;
//   - and nothing else: a value that was never written for the key (or a
//     resurrected value from before the last persistent mutation) is a
//     consistency violation.
//
// Environmental failure injection (§4.4) weakens this with a per-mutation
// "maybe" marker: when the implementation reported an error for a mutation
// after a fault was injected, both the before and after states are allowed
// ("allowed to fail by returning no data, but never allowed to return the
// wrong data").
type RefStore struct {
	bugs *faults.Set

	// base holds values considered durable as of the last reboot (or since
	// the store was created). A nil slice never occurs; absence is absence.
	base map[string][]byte

	// log holds the mutations applied since the last reboot, in order.
	log []Mutation

	// hasFailed relaxes comparisons after an environmental fault (§4.4).
	hasFailed bool

	// rotted maps keys whose every replica has been silently corrupted
	// (k = R) to the mutation seq at injection time. The marker means "a read
	// error is additionally allowed" — never that one is required: caches and
	// pending writebacks may still legitimately serve (or re-persist) the
	// clean bytes. Wrong values stay forbidden; CRC verification must turn
	// rot into an error, never into different data. A later successful
	// mutation supersedes the rot for the current view (Rotted), but only a
	// *persistent* later mutation makes it unreachable by a crash — a torn
	// reboot can revert the key to its rotted-era entry.
	rotted map[string]uint64

	// reclaimSinceReboot is the seeded bug #9 trigger: the buggy adoption
	// path mishandles crash states that follow a reclamation.
	reclaimSinceReboot bool

	// seq numbers mutations within this model instance.
	seq uint64
}

// Mutation is one logged state change.
type Mutation struct {
	Seq    uint64
	Key    string
	Value  []byte // nil = deletion
	Dep    *dep.Dependency
	Maybe  bool // the implementation errored; effect may or may not apply
	Seen   bool // set once adopted into base
	OpName string
}

// NewRefStore returns an empty model.
func NewRefStore(bugs *faults.Set) *RefStore {
	return &RefStore{bugs: bugs, base: make(map[string][]byte), rotted: make(map[string]uint64)}
}

// seq numbers are per-model.

// ApplyPut records a put of key=value whose implementation dependency is d.
// maybe marks mutations whose implementation call failed under injected
// faults.
func (r *RefStore) ApplyPut(key string, value []byte, d *dep.Dependency, maybe bool) {
	r.seq++
	// A put's value is always non-nil, even when empty: nil is the deletion
	// marker in the log.
	v := make([]byte, len(value))
	copy(v, value)
	r.log = append(r.log, Mutation{Seq: r.seq, Key: key, Value: v, Dep: d, Maybe: maybe, OpName: "put"})
}

// ApplyDelete records a deletion of key.
func (r *RefStore) ApplyDelete(key string, d *dep.Dependency, maybe bool) {
	r.seq++
	r.log = append(r.log, Mutation{Seq: r.seq, Key: key, Value: nil, Dep: d, Maybe: maybe, OpName: "delete"})
}

// MarkRotted records that every replica of key's data has been silently
// corrupted (k = R): reads of key are now allowed — not required — to fail.
func (r *RefStore) MarkRotted(key string) { r.rotted[key] = r.seq }

// Rotted reports whether the current view of key may still be its rotted-era
// entry: rot was injected and no definite (non-maybe) mutation has superseded
// it since. A maybe-mutation does not clear it — its effect may never have
// applied.
func (r *RefStore) Rotted(key string) bool {
	rotSeq, ok := r.rotted[key]
	if !ok {
		return false
	}
	for i := len(r.log) - 1; i >= 0; i-- {
		m := r.log[i]
		if m.Key == key && m.Seq > rotSeq && !m.Maybe {
			return false
		}
	}
	return true
}

// rotReachableAfterCrash reports whether a crash may surface key's rotted-era
// entry: rot was injected and no definite mutation issued after it has a
// persistent dependency. (A later non-persistent Put can be torn away by the
// crash, reverting the key to its rotted copies.)
func (r *RefStore) rotReachableAfterCrash(key string) bool {
	rotSeq, ok := r.rotted[key]
	if !ok {
		return false
	}
	for i := len(r.log) - 1; i >= 0; i-- {
		m := r.log[i]
		if m.Key == key && m.Seq > rotSeq && !m.Maybe && m.Dep.IsPersistent() {
			return false
		}
	}
	return true
}

// MarkFailed records that an environmental fault was injected; subsequent
// checks use the relaxed comparison.
func (r *RefStore) MarkFailed() { r.hasFailed = true }

// HasFailed reports whether the relaxed comparison is in effect.
func (r *RefStore) HasFailed() bool { return r.hasFailed }

// MarkReclaim records that a reclamation ran (bug #9 trigger state).
func (r *RefStore) MarkReclaim() { r.reclaimSinceReboot = true }

// Expected returns the allowed values for key in crash-free operation:
// normally a single value (or absence), plus alternates for "maybe"
// mutations. Values are returned newest-allowed-first; a nil entry means
// "absent is allowed".
func (r *RefStore) Expected(key string) [][]byte {
	// Walk the log newest-first; the newest non-maybe mutation pins the
	// value, with every newer maybe mutation contributing an alternate.
	var allowed [][]byte
	for i := len(r.log) - 1; i >= 0; i-- {
		m := r.log[i]
		if m.Key != key {
			continue
		}
		allowed = append(allowed, cloneOrNil(m.Value))
		if !m.Maybe {
			return dedupValues(allowed)
		}
	}
	if v, ok := r.base[key]; ok {
		allowed = append(allowed, cloneOrNil(v))
	} else {
		allowed = append(allowed, nil)
	}
	return dedupValues(allowed)
}

// Keys returns every key that may be present (base plus logged puts).
func (r *RefStore) Keys() []string {
	set := make(map[string]bool)
	for k := range r.base {
		set[k] = true
	}
	for _, m := range r.log {
		set[m.Key] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MustBePresent reports whether key must currently resolve to exactly one
// value (no maybes in play).
func (r *RefStore) MustBePresent(key string) ([]byte, bool) {
	allowed := r.Expected(key)
	if len(allowed) != 1 {
		return nil, false
	}
	return allowed[0], allowed[0] != nil
}

// CheckRead validates an implementation read result against the model.
// got == nil means the implementation reported not-found; gotErr means the
// read failed outright.
func (r *RefStore) CheckRead(key string, got []byte, gotErr bool) error {
	allowed := r.Expected(key)
	if gotErr {
		if r.Rotted(key) {
			// Every replica was silently corrupted; CRC verification turning
			// that into a read error is exactly the required behaviour
			// ("allowed to fail by returning no data, but never ... the
			// wrong data").
			return nil
		}
		// The harness retries reads past transient injected faults, so an
		// error that reaches the model is conclusive: the data is gone or
		// corrupt, which the relaxation of §4.4 never allows ("allowed to
		// fail by returning no data, but never ... the wrong data" — and a
		// persistent failure with no outstanding fault is not "during an IO
		// error").
		return fmt.Errorf("model: read of %q failed persistently: data lost or corrupt", key)
	}
	for _, v := range allowed {
		if v == nil && got == nil {
			return nil
		}
		if v != nil && got != nil && bytes.Equal(v, got) {
			return nil
		}
	}
	return fmt.Errorf("model: read of %q returned %s, allowed %s", key, fmtVal(got), fmtVals(allowed))
}

// CheckScan validates one ordered-scan page against the model. keys/values
// are the page the implementation returned for Scan(start, end, limit); more
// is its continuation flag. The page must be strictly ascending, confined to
// [start, end), within limit, and per-key consistent: every observed value
// must be an allowed value for its key (phantoms — keys the model says must
// be absent — fail here too), and every key the model says must be present
// in the range must appear. When more is true the page is an honest prefix:
// completeness is only required up to the last returned key.
func (r *RefStore) CheckScan(start, end string, limit int, keys []string, values [][]byte, more bool) error {
	if len(keys) != len(values) {
		return fmt.Errorf("model: scan returned %d keys but %d values", len(keys), len(values))
	}
	if limit > 0 && len(keys) > limit {
		return fmt.Errorf("model: scan returned %d entries, limit %d", len(keys), limit)
	}
	if more && (limit <= 0 || len(keys) != limit) {
		return fmt.Errorf("model: scan reported more with %d entries under limit %d", len(keys), limit)
	}
	for i, k := range keys {
		if i > 0 && keys[i-1] >= k {
			return fmt.Errorf("model: scan keys out of order: %q then %q", keys[i-1], k)
		}
		if k < start || (end != "" && k >= end) {
			return fmt.Errorf("model: scan key %q outside range [%q, %q)", k, start, end)
		}
		allowed := r.Expected(k)
		match := false
		for _, v := range allowed {
			if v != nil && bytes.Equal(v, values[i]) {
				match = true
				break
			}
		}
		if !match {
			return fmt.Errorf("model: scan of [%q, %q) returned %q=%s, allowed %s",
				start, end, k, fmtVal(values[i]), fmtVals(allowed))
		}
	}
	// Completeness: every mandatory in-range key must appear. A truncated
	// page (more) only vouches for the prefix up to its last key.
	horizon := end
	if more {
		horizon = keys[len(keys)-1] + "\x00"
	}
	got := make(map[string]bool, len(keys))
	for _, k := range keys {
		got[k] = true
	}
	for _, k := range r.Keys() {
		if k < start || (horizon != "" && k >= horizon) {
			continue
		}
		if _, present := r.MustBePresent(k); present && !got[k] {
			return fmt.Errorf("model: scan of [%q, %q) missing mandatory key %q", start, end, k)
		}
	}
	return nil
}

// AdoptDirtyReboot reconciles the model with the implementation after a
// crash + recovery (§5's persistence check). read is the implementation's
// post-recovery read for a key (nil = absent, err for IO failure). It
// returns an error describing the first consistency violation found.
func (r *RefStore) AdoptDirtyReboot(read func(key string) ([]byte, error)) error {
	keys := r.Keys()
	bug9 := r.bugs.Enabled(faults.Bug9RefModelCrashReclaim) && r.reclaimSinceReboot
	newBase := make(map[string][]byte, len(r.base))
	for _, key := range keys {
		allowed := r.allowedAfterCrash(key, bug9)
		got, err := read(key)
		if err != nil {
			if r.rotReachableAfterCrash(key) {
				// Rot persists on the durable image across reboots; the
				// recovered store failing this read is allowed. An absent key
				// reads as not-found, not as an error, so the key is present
				// but unreadable: keep the marker and adopt an allowed value
				// so presence checks (listings, phantom detection) still see
				// it. The value bytes are never observable while the rot
				// stands — a fresh Put both clears the marker and supersedes
				// the adopted value.
				adopted := false
				for _, v := range allowed {
					if v != nil {
						newBase[key] = cloneOrNil(v)
						adopted = true
						break
					}
				}
				if adopted {
					continue
				}
				// No allowed value is non-nil: the model says the key must be
				// gone, yet the implementation holds an unreadable entry for
				// it. That is a genuine violation, not rot tolerance.
			}
			return fmt.Errorf("model: post-crash read of %q failed: %v", key, err)
		}
		match := false
		for _, v := range allowed {
			if v == nil && got == nil {
				match = true
				break
			}
			if v != nil && got != nil && bytes.Equal(v, got) {
				match = true
				break
			}
		}
		if !match {
			return fmt.Errorf("model: crash consistency violation on %q: implementation has %s, allowed %s",
				key, fmtVal(got), fmtVals(allowed))
		}
		if got != nil {
			newBase[key] = cloneOrNil(got)
		}
		// A successful post-crash read reflects the durable image directly (no
		// volatile state survives a crash), and durable state never regresses:
		// whatever rot the key carried is permanently superseded or gone.
		delete(r.rotted, key)
	}
	r.base = newBase
	r.log = nil
	r.hasFailed = false
	r.reclaimSinceReboot = false
	return nil
}

// allowedAfterCrash computes the §5 allowed-value set for key.
func (r *RefStore) allowedAfterCrash(key string, bug9 bool) [][]byte {
	var muts []Mutation
	for _, m := range r.log {
		if m.Key == key {
			muts = append(muts, m)
		}
	}
	if bug9 {
		// Seeded bug #9: after a crash that followed a reclamation, the
		// model ignored dependency persistence and insisted on the latest
		// acknowledged value — a model bug producing spurious failures,
		// which is how the real issue surfaced.
		if len(muts) > 0 {
			return [][]byte{cloneOrNil(muts[len(muts)-1].Value)}
		}
		if v, ok := r.base[key]; ok {
			return [][]byte{append([]byte(nil), v...)}
		}
		return [][]byte{nil}
	}
	lastPersistent := -1
	for i := len(muts) - 1; i >= 0; i-- {
		if muts[i].Dep.IsPersistent() && !muts[i].Maybe {
			lastPersistent = i
			break
		}
	}
	var allowed [][]byte
	if lastPersistent >= 0 {
		allowed = append(allowed, cloneOrNil(muts[lastPersistent].Value))
	} else {
		if v, ok := r.base[key]; ok {
			allowed = append(allowed, cloneOrNil(v))
		} else {
			allowed = append(allowed, nil)
		}
		// With no persistent mutation, any earlier in-flight value may also
		// have survived partially ordered writes.
		for i := 0; i < len(muts) && i < lastPersistent+1; i++ {
			allowed = append(allowed, cloneOrNil(muts[i].Value))
		}
	}
	for i := lastPersistent + 1; i < len(muts); i++ {
		allowed = append(allowed, cloneOrNil(muts[i].Value))
	}
	return dedupValues(allowed)
}

// CheckCleanShutdown enforces the forward-progress property (§5): after a
// non-crashing shutdown every mutation's dependency must report persistent.
// It then promotes the final state into the durable base.
func (r *RefStore) CheckCleanShutdown() error {
	for _, m := range r.log {
		if m.Maybe {
			continue
		}
		if !m.Dep.IsPersistent() {
			return fmt.Errorf("model: forward progress violation: %s of %q (seq %d) still not persistent after clean shutdown",
				m.OpName, m.Key, m.Seq)
		}
	}
	for _, m := range r.log {
		if m.Maybe {
			continue
		}
		if m.Value == nil {
			delete(r.base, m.Key)
		} else {
			r.base[m.Key] = cloneOrNil(m.Value)
		}
		// Every definite mutation is persistent here (checked above), so one
		// issued after a key's rot permanently supersedes the rotted copies.
		// Clear the marker before the superseding mutation leaves the log.
		if rotSeq, ok := r.rotted[m.Key]; ok && m.Seq > rotSeq {
			delete(r.rotted, m.Key)
		}
	}
	r.log = filterMaybes(r.log)
	r.reclaimSinceReboot = false
	return nil
}

// filterMaybes keeps maybe-mutations in the log across a clean reboot: their
// ambiguity persists until a read observes the key.
func filterMaybes(log []Mutation) []Mutation {
	var out []Mutation
	for _, m := range log {
		if m.Maybe {
			out = append(out, m)
		}
	}
	return out
}

// ResolveMaybe collapses maybe-ambiguity for key after a successful read
// observed its value: the maybe mutation whose effect the read witnessed (if
// any) becomes definite — keeping its original dependency, so crash
// reasoning stays sound — and the other maybe mutations for the key are
// discarded. Callers must have validated observed via CheckRead first.
func (r *RefStore) ResolveMaybe(key string, observed []byte) {
	// Find the latest maybe mutation whose value matches the observation.
	witness := -1
	anyMaybe := false
	for i := len(r.log) - 1; i >= 0; i-- {
		m := r.log[i]
		if m.Key != key {
			continue
		}
		if !m.Maybe {
			break // mutations below the newest definite one are superseded
		}
		anyMaybe = true
		if valuesEqual(m.Value, observed) && witness < 0 {
			witness = i
		}
	}
	if !anyMaybe {
		return
	}
	// Check whether the definite state (ignoring maybes) already explains
	// the observation; if so, every maybe mutation simply did not apply.
	definite := r.definiteValue(key)
	definiteMatches := valuesEqual(definite, observed)
	kept := r.log[:0]
	for i, m := range r.log {
		if m.Key == key && m.Maybe {
			if i == witness && !definiteMatches {
				m.Maybe = false // the read proves this effect applied
				kept = append(kept, m)
			}
			continue
		}
		kept = append(kept, m)
	}
	r.log = kept
}

// definiteValue returns the value of key considering only non-maybe
// mutations and the base (nil = absent).
func (r *RefStore) definiteValue(key string) []byte {
	for i := len(r.log) - 1; i >= 0; i-- {
		m := r.log[i]
		if m.Key == key && !m.Maybe {
			return m.Value
		}
	}
	if v, ok := r.base[key]; ok {
		return v
	}
	return nil
}

func valuesEqual(a, b []byte) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || bytes.Equal(a, b)
}

// Clone deep-copies the model state (dependency handles are shared — they
// are immutable from the model's perspective). The exhaustive block-level
// crash enumerator clones the model once per candidate crash state.
func (r *RefStore) Clone() *RefStore {
	out := &RefStore{
		bugs:               r.bugs,
		base:               make(map[string][]byte, len(r.base)),
		log:                append([]Mutation(nil), r.log...),
		hasFailed:          r.hasFailed,
		reclaimSinceReboot: r.reclaimSinceReboot,
		seq:                r.seq,
		rotted:             make(map[string]uint64, len(r.rotted)),
	}
	for k, v := range r.base {
		out.base[k] = cloneOrNil(v)
	}
	for k, s := range r.rotted {
		out.rotted[k] = s
	}
	return out
}

// PendingMutations returns the number of logged mutations (diagnostics).
func (r *RefStore) PendingMutations() int { return len(r.log) }

// DepLog exposes the mutation log for the §5 persistence iteration
// ("the test iterates through the dependencies returned by each mutating
// operation").
func (r *RefStore) DepLog() []Mutation { return append([]Mutation(nil), r.log...) }

func cloneOrNil(v []byte) []byte {
	if v == nil {
		return nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

func dedupValues(vals [][]byte) [][]byte {
	var out [][]byte
	for _, v := range vals {
		dup := false
		for _, o := range out {
			if (v == nil) == (o == nil) && (v == nil || bytes.Equal(v, o)) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

func fmtVal(v []byte) string {
	if v == nil {
		return "<absent>"
	}
	if len(v) == 0 {
		return "<empty>"
	}
	if len(v) > 16 {
		return fmt.Sprintf("%d bytes %x...", len(v), v[:16])
	}
	return fmt.Sprintf("%x", v)
}

func fmtVals(vals [][]byte) string {
	out := "{"
	for i, v := range vals {
		if i > 0 {
			out += ", "
		}
		out += fmtVal(v)
	}
	return out + "}"
}

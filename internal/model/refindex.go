// Package model contains the executable reference models (§3.2 of the
// paper): small specifications, written in the implementation language, that
// define the expected behavior of each ShardStore component. They are the
// "source of truth" the property-based conformance checks compare against,
// and they double as mock implementations for unit tests — which is what
// keeps them maintained as the system evolves.
package model

import (
	"sort"

	"shardstore/internal/dep"
	"shardstore/internal/lsm"
)

// RefIndex is the reference model for the index component: where the
// production implementation is a persistent LSM tree, the model is a plain
// hash map (§3.2: "a reference model that uses a simple hash table to store
// the mapping"). Background operations — flush, compaction, reclamation,
// clean reboots — are no-ops on the model: they must not change the
// key-value mapping, and checking the implementation against that no-op is
// precisely what validates them.
type RefIndex struct {
	vals map[string][]byte
}

// NewRefIndex returns an empty reference index.
func NewRefIndex() *RefIndex {
	return &RefIndex{vals: make(map[string][]byte)}
}

// Put implements lsm.Index.
func (r *RefIndex) Put(key string, value []byte, waits ...*dep.Dependency) (*dep.Dependency, error) {
	r.vals[key] = append([]byte(nil), value...)
	return dep.Resolved(), nil
}

// Get implements lsm.Index.
func (r *RefIndex) Get(key string) ([]byte, error) {
	v, ok := r.vals[key]
	if !ok {
		return nil, lsm.ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Delete implements lsm.Index.
func (r *RefIndex) Delete(key string, waits ...*dep.Dependency) (*dep.Dependency, error) {
	delete(r.vals, key)
	return dep.Resolved(), nil
}

// Keys implements lsm.Index.
func (r *RefIndex) Keys() ([]string, error) {
	out := make([]string, 0, len(r.vals))
	for k := range r.vals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Flush implements lsm.Index as a no-op.
func (r *RefIndex) Flush() (*dep.Dependency, error) { return dep.Resolved(), nil }

// Compact implements lsm.Index as a no-op.
func (r *RefIndex) Compact() error { return nil }

// Len returns the number of live keys.
func (r *RefIndex) Len() int { return len(r.vals) }

// Clone deep-copies the model (used by the linearizability checker).
func (r *RefIndex) Clone() *RefIndex {
	out := NewRefIndex()
	for k, v := range r.vals {
		out.vals[k] = append([]byte(nil), v...)
	}
	return out
}

var _ lsm.Index = (*RefIndex)(nil)

package model

import (
	"bytes"
	"errors"
	"testing"

	"shardstore/internal/chunk"
	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/lsm"
)

// --- RefIndex ---

func TestRefIndexBasics(t *testing.T) {
	r := NewRefIndex()
	if _, err := r.Get("missing"); !errors.Is(err, lsm.ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	d, err := r.Put("k", []byte{1})
	if err != nil || !d.IsPersistent() {
		t.Fatal("model puts are immediately persistent")
	}
	v, err := r.Get("k")
	if err != nil || v[0] != 1 {
		t.Fatalf("get: %v %v", v, err)
	}
	if _, err := r.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("k"); !errors.Is(err, lsm.ErrNotFound) {
		t.Fatal("delete did not remove")
	}
}

func TestRefIndexBackgroundOpsAreNoOps(t *testing.T) {
	r := NewRefIndex()
	_, _ = r.Put("k", []byte{7})
	if _, err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	v, err := r.Get("k")
	if err != nil || v[0] != 7 {
		t.Fatal("background ops changed the mapping")
	}
}

func TestRefIndexKeysSorted(t *testing.T) {
	r := NewRefIndex()
	for _, k := range []string{"c", "a", "b"} {
		_, _ = r.Put(k, []byte(k))
	}
	keys, _ := r.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys: %v", keys)
	}
}

func TestRefIndexCloneIsDeep(t *testing.T) {
	r := NewRefIndex()
	_, _ = r.Put("k", []byte{1})
	c := r.Clone()
	_, _ = c.Put("k", []byte{2})
	v, _ := r.Get("k")
	if v[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestRefIndexValueIsolation(t *testing.T) {
	r := NewRefIndex()
	buf := []byte{1}
	_, _ = r.Put("k", buf)
	buf[0] = 9
	v, _ := r.Get("k")
	if v[0] != 1 {
		t.Fatal("model aliases caller buffer")
	}
	v[0] = 8
	v2, _ := r.Get("k")
	if v2[0] != 1 {
		t.Fatal("model exposes internal buffer")
	}
}

// --- RefChunkStore ---

func TestRefChunkStoreUniqueLocators(t *testing.T) {
	cs := NewRefChunkStore(nil)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		loc, _, rel, err := cs.Put(0, "k", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		rel()
		if seen[loc.String()] {
			t.Fatalf("locator reused: %v", loc)
		}
		seen[loc.String()] = true
		if i%5 == 0 {
			cs.Reclaim()
		}
	}
}

func TestRefChunkStoreBug15ReusesLocators(t *testing.T) {
	bugs := faults.NewSet(faults.Bug15RefModelLocatorReuse)
	cs := NewRefChunkStore(bugs)
	loc1, _, rel, _ := cs.Put(0, "k", []byte{1})
	rel()
	cs.Reclaim() // rewinds
	loc2, _, rel2, _ := cs.Put(0, "k", []byte{2})
	rel2()
	if loc1 != loc2 {
		t.Fatalf("bug15 should reuse locators: %v vs %v", loc1, loc2)
	}
	// The collision clobbers the first chunk.
	v, err := cs.Get(loc1)
	if err != nil || v[0] != 2 {
		t.Fatalf("clobbered chunk: %v %v", v, err)
	}
}

func TestRefChunkStoreGetUnknown(t *testing.T) {
	cs := NewRefChunkStore(nil)
	if _, err := cs.Get(chunk.Locator{Extent: 1, Offset: 2, Length: 3}); !errors.Is(err, ErrNoChunk) {
		t.Fatalf("unknown locator: %v", err)
	}
}

// --- RefStore (crash-extended model) ---

func mkDep(t *testing.T) (*dep.Scheduler, func() *dep.Dependency) {
	t.Helper()
	d, _ := disk.New(disk.DefaultConfig())
	s := dep.NewScheduler(d, nil)
	i := 0
	return s, func() *dep.Dependency {
		i++
		return s.Write("w", 1, i*8, []byte{byte(i)})
	}
}

func TestRefStoreSequentialExpectations(t *testing.T) {
	s, w := mkDep(t)
	_ = s
	r := NewRefStore(nil)
	r.ApplyPut("k", []byte{1}, w(), false)
	if err := r.CheckRead("k", []byte{1}, false); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckRead("k", []byte{2}, false); err == nil {
		t.Fatal("wrong value accepted")
	}
	if err := r.CheckRead("k", nil, false); err == nil {
		t.Fatal("absence accepted while value expected")
	}
	r.ApplyDelete("k", w(), false)
	if err := r.CheckRead("k", nil, false); err != nil {
		t.Fatal(err)
	}
}

func TestRefStoreEmptyValueDistinctFromAbsent(t *testing.T) {
	_, w := mkDep(t)
	r := NewRefStore(nil)
	r.ApplyPut("k", []byte{}, w(), false)
	if err := r.CheckRead("k", []byte{}, false); err != nil {
		t.Fatalf("empty value rejected: %v", err)
	}
	if err := r.CheckRead("k", nil, false); err == nil {
		t.Fatal("absence accepted for empty value")
	}
}

func TestRefStoreMaybeMutations(t *testing.T) {
	_, w := mkDep(t)
	r := NewRefStore(nil)
	r.MarkFailed()
	r.ApplyPut("k", []byte{1}, w(), false)
	r.ApplyPut("k", []byte{2}, nil, true) // op errored: may or may not apply
	if err := r.CheckRead("k", []byte{1}, false); err != nil {
		t.Fatalf("pre-maybe value rejected: %v", err)
	}
	if err := r.CheckRead("k", []byte{2}, false); err != nil {
		t.Fatalf("maybe value rejected: %v", err)
	}
	if err := r.CheckRead("k", []byte{3}, false); err == nil {
		t.Fatal("phantom value accepted")
	}
	// A read observation collapses the ambiguity.
	r.ResolveMaybe("k", []byte{2})
	if err := r.CheckRead("k", []byte{1}, false); err == nil {
		t.Fatal("stale value accepted after observation")
	}
}

func TestRefStoreCrashAllowedSet(t *testing.T) {
	s, _ := mkDep(t)
	r := NewRefStore(nil)
	d1 := s.Write("a", 1, 0, []byte{1})
	r.ApplyPut("k", []byte{1}, d1, false)
	_ = s.Pump() // d1 persistent
	d2 := s.Write("b", 2, 0, []byte{2})
	r.ApplyPut("k", []byte{2}, d2, false) // not persistent

	// Crash: the implementation may hold 1 (persistent) or 2 (in flight).
	for _, v := range [][]byte{{1}, {2}} {
		clone := r.Clone()
		err := clone.AdoptDirtyReboot(func(string) ([]byte, error) { return v, nil })
		if err != nil {
			t.Fatalf("value %v rejected: %v", v, err)
		}
	}
	// Absence is not allowed: put 1 was persistent.
	clone := r.Clone()
	if err := clone.AdoptDirtyReboot(func(string) ([]byte, error) { return nil, nil }); err == nil {
		t.Fatal("loss of persistent put accepted")
	}
	// Phantom values are never allowed.
	clone = r.Clone()
	if err := clone.AdoptDirtyReboot(func(string) ([]byte, error) { return []byte{9}, nil }); err == nil {
		t.Fatal("phantom value accepted after crash")
	}
}

func TestRefStoreCrashDeleteNotPersistent(t *testing.T) {
	s, _ := mkDep(t)
	r := NewRefStore(nil)
	d1 := s.Write("a", 1, 0, []byte{1})
	r.ApplyPut("k", []byte{1}, d1, false)
	_ = s.Pump()
	d2 := s.Write("b", 2, 0, []byte{2})
	r.ApplyDelete("k", d2, false) // in-flight delete
	// Both "still there" and "gone" are allowed.
	for _, v := range [][]byte{{1}, nil} {
		clone := r.Clone()
		if err := clone.AdoptDirtyReboot(func(string) ([]byte, error) { return v, nil }); err != nil {
			t.Fatalf("value %v rejected: %v", v, err)
		}
	}
}

func TestRefStoreForwardProgress(t *testing.T) {
	s, _ := mkDep(t)
	r := NewRefStore(nil)
	d1 := s.Write("a", 1, 0, []byte{1})
	r.ApplyPut("k", []byte{1}, d1, false)
	if err := r.CheckCleanShutdown(); err == nil {
		t.Fatal("forward progress must fail while pending")
	}
	_ = s.Pump()
	if err := r.CheckCleanShutdown(); err != nil {
		t.Fatalf("forward progress after pump: %v", err)
	}
	// The state is promoted to the durable base.
	if err := r.CheckRead("k", []byte{1}, false); err != nil {
		t.Fatal(err)
	}
}

func TestRefStoreAdoptionRebasesState(t *testing.T) {
	s, _ := mkDep(t)
	r := NewRefStore(nil)
	d1 := s.Write("a", 1, 0, []byte{1})
	r.ApplyPut("k", []byte{1}, d1, false)
	_ = s.Pump()
	if err := r.AdoptDirtyReboot(func(string) ([]byte, error) { return []byte{1}, nil }); err != nil {
		t.Fatal(err)
	}
	if r.PendingMutations() != 0 {
		t.Fatal("log not cleared by adoption")
	}
	if err := r.CheckRead("k", []byte{1}, false); err != nil {
		t.Fatal("adopted base lost")
	}
}

func TestRefStoreBug9SpuriousFailure(t *testing.T) {
	bugs := faults.NewSet(faults.Bug9RefModelCrashReclaim)
	s, _ := mkDep(t)
	r := NewRefStore(bugs)
	d1 := s.Write("a", 1, 0, []byte{1})
	r.ApplyPut("k", []byte{1}, d1, false)
	_ = s.Pump()
	d2 := s.Write("b", 2, 0, []byte{2})
	r.ApplyPut("k", []byte{2}, d2, false) // in flight
	r.MarkReclaim()
	// Implementation legitimately recovered to the persistent value {1};
	// the buggy model insists on the latest acknowledged value {2}.
	err := r.AdoptDirtyReboot(func(string) ([]byte, error) { return []byte{1}, nil })
	if err == nil {
		t.Fatal("bug9 model should spuriously reject the legal state")
	}
}

func TestRefStoreExpectedNeverEmpty(t *testing.T) {
	_, w := mkDep(t)
	r := NewRefStore(nil)
	if got := r.Expected("never-seen"); len(got) != 1 || got[0] != nil {
		t.Fatalf("unknown key expected-set: %v", got)
	}
	r.ApplyPut("k", []byte{1}, w(), false)
	r.ApplyPut("k", []byte{2}, nil, true)
	if got := r.Expected("k"); len(got) == 0 {
		t.Fatal("empty expected set")
	}
}

func TestRefMetaStore(t *testing.T) {
	ms := NewRefMetaStore()
	if v, _ := ms.ReadLatest(); v != nil {
		t.Fatal("fresh meta store non-empty")
	}
	d, err := ms.WriteRecord([]byte("abc"))
	if err != nil || !d.IsPersistent() {
		t.Fatal("mock meta writes are immediately persistent")
	}
	v, _ := ms.ReadLatest()
	if !bytes.Equal(v, []byte("abc")) {
		t.Fatalf("latest: %q", v)
	}
	if !ms.LastDep().IsPersistent() {
		t.Fatal("LastDep not persistent")
	}
}

// Leveled compaction application (the host side of internal/compact): the
// engine plans over LevelInfo and the tree applies plans — merge-write the
// output run as a new pinned chunk, then publish a new manifest generation
// whose run list swaps the inputs for the output in one CAS-guarded step.
// A crash anywhere before the manifest record reaches the media leaves the
// previous generation fully intact: the inputs are still named by the
// highest durable manifest, the output chunk is just unreferenced garbage.
package lsm

import (
	"fmt"

	"shardstore/internal/chunk"
	"shardstore/internal/compact"
	"shardstore/internal/dep"
	"shardstore/internal/faults"
)

// LevelInfo implements compact.Host's view: the current manifest
// generation's runs in read order.
func (t *Tree) LevelInfo() []compact.RunInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]compact.RunInfo, 0, len(t.runs))
	for _, r := range t.runs {
		out = append(out, compact.RunInfo{Level: r.level, Seq: r.seq, Bytes: int(r.loc.Length)})
	}
	return out
}

// ApplyPlan merges the plan's input runs into a single run at p.OutLevel and
// publishes the swap as a new manifest generation. Applied=false (with no
// error) means the CAS lost: some input run is no longer part of the current
// generation, so nothing was published and the caller should re-plan.
func (t *Tree) ApplyPlan(p compact.Plan) (compact.Result, error) {
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	return t.applyPlanLocked(p)
}

// compactL0 pushes the entire L0 block (plus the resident L1 run, if any)
// into L1 — the flush path's bounded auto-compaction. Requires flushMu held
// by the caller; takes compactMu (that lock order, never the reverse).
func (t *Tree) compactL0() error {
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	t.mu.Lock()
	var inputs []uint64
	for _, r := range t.runs {
		if r.level <= 1 {
			inputs = append(inputs, r.seq)
		}
	}
	t.mu.Unlock()
	if len(inputs) == 0 {
		return nil
	}
	_, err := t.applyPlanLocked(compact.Plan{Inputs: inputs, OutLevel: 1})
	return err
}

// applyPlanLocked requires t.compactMu held.
func (t *Tree) applyPlanLocked(p compact.Plan) (compact.Result, error) {
	start := t.obs.Now()
	if len(p.Inputs) == 0 || p.OutLevel < 1 || p.OutLevel > MaxLevels {
		return compact.Result{}, fmt.Errorf("lsm: invalid compaction plan (%d inputs, out L%d)", len(p.Inputs), p.OutLevel)
	}
	inSet := make(map[uint64]bool, len(p.Inputs))
	for _, s := range p.Inputs {
		inSet[s] = true
	}

	t.mu.Lock()
	snapshot := append([]runRef(nil), t.runs...)
	t.mu.Unlock()
	var inputs, rest []runRef
	for _, r := range snapshot {
		if inSet[r.seq] {
			inputs = append(inputs, r)
		} else {
			rest = append(rest, r)
		}
	}
	if len(inputs) != len(p.Inputs) {
		t.cov.Hit("lsm.compact.abort_missing_input")
		return compact.Result{}, nil
	}
	if err := validatePlanShape(inputs, rest, p.OutLevel); err != nil {
		return compact.Result{}, err
	}

	// Merge in snapshot order — read-precedence order, newest data first.
	loaded := make([][]Entry, 0, len(inputs))
	bytesIn := 0
	for _, r := range inputs {
		entries, err := t.loadRun(r)
		if err != nil {
			return compact.Result{}, err
		}
		loaded = append(loaded, entries)
		bytesIn += int(r.loc.Length)
	}
	// Tombstones may be elided only when no level deeper than the output
	// remains: a deeper run can still hold an older value the marker masks.
	dropTomb := true
	for _, r := range rest {
		if r.level > p.OutLevel {
			dropTomb = false
			break
		}
	}
	merged := mergeRuns(loaded, false)
	dropped := 0
	if dropTomb {
		kept := merged[:0]
		for _, e := range merged {
			if e.Tombstone {
				dropped++
			} else {
				kept = append(kept, e)
			}
		}
		merged = kept
	}

	// Write the output chunk, pinned (the deferred release) until the new
	// manifest generation names it — the bug #14 lesson. A merge that
	// cancels to nothing (all inputs were tombstones over each other)
	// publishes pure removal: no output run at all.
	var (
		out     runRef
		cdep    *dep.Dependency
		release func()
		hasOut  = len(merged) > 0
		payload []byte
	)
	if hasOut {
		t.mu.Lock()
		out = runRef{seq: t.runSeq, level: p.OutLevel}
		t.runSeq++
		t.mu.Unlock()
		payload = encodeRun(merged)
		var err error
		out.loc, cdep, release, err = t.cs.Put(chunk.TagIndexRun, runKeyFor(out.seq), payload)
		if err != nil {
			return compact.Result{}, err
		}
		defer release()
	} else {
		t.cov.Hit("lsm.compact.empty_output")
	}

	t.mu.Lock()
	// The CAS: the swap publishes only if every input is still part of the
	// current generation. Concurrent flushes prepend new L0 runs and commute
	// with the swap; anything that removed an input (a control-plane full
	// compaction racing in) loses us the exchange and we publish nothing.
	cur := make(map[uint64]bool, len(t.runs))
	for _, r := range t.runs {
		cur[r.seq] = true
	}
	for _, s := range p.Inputs {
		if !cur[s] {
			t.mu.Unlock()
			t.cov.Hit("lsm.compact.cas_abort")
			return compact.Result{}, nil
		}
	}
	newRuns := make([]runRef, 0, len(t.runs))
	inserted := !hasOut
	for _, r := range t.runs {
		if inSet[r.seq] {
			continue
		}
		if !inserted && r.level > p.OutLevel {
			newRuns = append(newRuns, out)
			inserted = true
		}
		newRuns = append(newRuns, r)
	}
	if !inserted {
		newRuns = append(newRuns, out)
	}
	if t.bugs.Enabled(faults.FaultScanTornLevelSwap) {
		// Seeded fault state: remember the pre-swap run list so the scan
		// path can compose its torn mid-swap view (see scan.go).
		t.staleRuns = append([]runRef(nil), t.runs...)
	}
	t.runs = newRuns
	if hasOut {
		t.runCache[out.loc] = merged
	}
	t.pruneRunCacheLocked()
	t.updateRunMetricsLocked()
	var manifestWaits []*dep.Dependency
	if hasOut {
		if t.bugs.Enabled(faults.FaultCompactStaleManifest) {
			// Seeded fault: publish the manifest generation without ordering
			// it after the output chunk. Both writes sit in the device cache
			// as peers, so a crash can tear them apart — the manifest page
			// survives, the output chunk's pages do not — and recovery then
			// serves a generation whose run chunk never reached the media.
			t.cov.Hit("lsm.compact.stale_manifest")
		} else {
			manifestWaits = append(manifestWaits, cdep)
		}
	}
	mdep, werr := t.stageManifestLocked(manifestWaits...)
	t.mu.Unlock()
	if werr != nil {
		return compact.Result{}, werr
	}

	manifest := mdep
	if cdep != nil {
		manifest = cdep.And(mdep)
	}
	t.cov.Hit("lsm.compact.leveled")
	t.met.compactions.Inc()
	t.met.compactDur.Observe(t.obs.Now() - start)
	if t.obs.Tracing() {
		t.obs.Record("lsm", "compact-leveled", fmt.Sprintf("L%d", p.OutLevel), "ok", t.obs.Now()-start)
	}
	return compact.Result{
		Applied:           true,
		BytesIn:           bytesIn,
		BytesOut:          len(payload),
		DroppedTombstones: dropped,
		Manifest:          manifest,
	}, nil
}

// validatePlanShape rejects plans that would reorder read precedence: the
// output run adopts OutLevel's position, so every non-input run must keep
// the same newer/older relation to the merged data it had before the swap.
func validatePlanShape(inputs, rest []runRef, outLevel int) error {
	minInLevel := MaxLevels + 1
	maxL0Seq := uint64(0)
	hasL0 := false
	for _, r := range inputs {
		if r.level > outLevel {
			return fmt.Errorf("lsm: plan input run %d at L%d is deeper than output L%d", r.seq, r.level, outLevel)
		}
		if r.level < minInLevel {
			minInLevel = r.level
		}
		if r.level == 0 {
			hasL0 = true
			if r.seq > maxL0Seq {
				maxL0Seq = r.seq
			}
		}
	}
	for _, r := range rest {
		switch {
		case r.level == 0:
			// A remaining L0 run keeps its position before the output, so it
			// must be newer than every L0 input it will now shadow.
			if hasL0 && r.seq < maxL0Seq {
				return fmt.Errorf("lsm: plan skips L0 run %d older than input %d", r.seq, maxL0Seq)
			}
		case r.level <= outLevel:
			// A remaining mid-level run ends up before the output; data merged
			// from any shallower (newer) level would be shadowed by it.
			if minInLevel < r.level {
				return fmt.Errorf("lsm: plan moves L%d data below remaining L%d run %d", minInLevel, r.level, r.seq)
			}
		}
	}
	return nil
}

package lsm_test

// Leveled-compaction tests over the reference mocks: the CobbleDB-style
// composed per-level model (model.RefLevels) runs in lockstep with the
// production tree through flushes, L0 promotions, deep-level pushes, and
// full compactions, comparing both the flattened key-value mapping and the
// per-level composition after every step. The manifest-generation edge
// cases (empty output, wraparound guard, newest-generation-first reads,
// v1-format fallback) live here too.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"shardstore/internal/chunk"
	"shardstore/internal/compact"
	"shardstore/internal/dep"
	"shardstore/internal/faults"
	"shardstore/internal/lsm"
	"shardstore/internal/model"
)

// levelSeqs returns the input seqs for a leveled plan over the tree's
// current view: every run at the given levels.
func levelSeqs(tree *lsm.Tree, levels ...int) []uint64 {
	want := make(map[int]bool, len(levels))
	for _, l := range levels {
		want[l] = true
	}
	var out []uint64
	for _, r := range tree.LevelInfo() {
		if want[r.Level] {
			out = append(out, r.Seq)
		}
	}
	return out
}

// treeLevelKeys reads the keys (live or tombstoned) the tree holds at a
// level, by decoding its run chunks straight from the mock chunk store.
func treeLevelKeys(t *testing.T, tree *lsm.Tree, cs *model.RefChunkStore, lv int) []string {
	t.Helper()
	infos := tree.LevelInfo()
	locs := tree.RunLocs()
	if len(infos) != len(locs) {
		t.Fatalf("LevelInfo %d runs, RunLocs %d", len(infos), len(locs))
	}
	seen := make(map[string]bool)
	for i, info := range infos {
		if info.Level != lv {
			continue
		}
		payload, err := cs.Get(locs[i])
		if err != nil {
			t.Fatalf("read run %d: %v", info.Seq, err)
		}
		entries, err := lsm.DecodeRunForTest(payload)
		if err != nil {
			t.Fatalf("decode run %d: %v", info.Seq, err)
		}
		for _, e := range entries {
			seen[e.Key] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func checkLockstep(t *testing.T, step string, tree *lsm.Tree, ref *model.RefLevels, cs *model.RefChunkStore, keys []string) {
	t.Helper()
	for _, k := range keys {
		tv, terr := tree.Get(k)
		rv, rerr := ref.Get(k)
		if (terr != nil) != (rerr != nil) {
			t.Fatalf("%s: Get(%q) tree err=%v model err=%v", step, k, terr, rerr)
		}
		if terr == nil && !bytes.Equal(tv, rv) {
			t.Fatalf("%s: Get(%q) tree=%v model=%v", step, k, tv, rv)
		}
	}
	tk, err := tree.Keys()
	if err != nil {
		t.Fatalf("%s: tree keys: %v", step, err)
	}
	rk, _ := ref.Keys()
	if fmt.Sprint(tk) != fmt.Sprint(rk) {
		t.Fatalf("%s: keys tree=%v model=%v", step, tk, rk)
	}
	for lv := 0; lv <= lsm.MaxLevels; lv++ {
		got := treeLevelKeys(t, tree, cs, lv)
		want := ref.LevelKeys(lv)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: level %d keys tree=%v model=%v", step, lv, got, want)
		}
	}
}

// TestLeveledLockstepRandomOps drives the tree and the composed per-level
// reference model through identical randomized histories and requires the
// full composition — mapping and level shapes — to match after every
// structural operation.
func TestLeveledLockstepRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			bugs := faults.NewSet()
			cs := model.NewRefChunkStore(bugs)
			ms := model.NewRefMetaStore()
			// MaxRuns 64: structural ops are explicit here, so the flush
			// path's own auto-compaction stays out of the way.
			tree, err := lsm.NewTree(cs, ms, model.ResolvedFutures{}, lsm.Config{MaxRuns: 64}, nil, bugs)
			if err != nil {
				t.Fatal(err)
			}
			ref := model.NewRefLevels()
			rng := rand.New(rand.NewSource(seed))
			keys := make([]string, 12)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%02d", i)
			}
			for step := 0; step < 160; step++ {
				k := keys[rng.Intn(len(keys))]
				label := fmt.Sprintf("step %d", step)
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					v := []byte{byte(step), byte(rng.Intn(256))}
					if _, err := tree.Put(k, v); err != nil {
						t.Fatal(err)
					}
					_, _ = ref.Put(k, v)
				case 4:
					if _, err := tree.Delete(k); err != nil {
						t.Fatal(err)
					}
					_, _ = ref.Delete(k)
				case 5, 6:
					if _, err := tree.Flush(); err != nil {
						t.Fatal(err)
					}
					_, _ = ref.Flush()
				case 7:
					in := levelSeqs(tree, 0, 1)
					if len(in) == 0 {
						continue
					}
					res, err := tree.ApplyPlan(compact.Plan{Inputs: in, OutLevel: 1})
					if err != nil {
						t.Fatal(err)
					}
					if !res.Applied {
						t.Fatalf("%s: L0 promotion not applied", label)
					}
					ref.PromoteL0()
				case 8:
					lv := 1 + rng.Intn(lsm.MaxLevels-1)
					in := levelSeqs(tree, lv, lv+1)
					if len(levelSeqs(tree, lv)) == 0 {
						continue
					}
					res, err := tree.ApplyPlan(compact.Plan{Inputs: in, OutLevel: lv + 1})
					if err != nil {
						t.Fatal(err)
					}
					if !res.Applied {
						t.Fatalf("%s: L%d push not applied", label, lv)
					}
					if err := ref.Promote(lv); err != nil {
						t.Fatal(err)
					}
				case 9:
					if err := tree.Compact(); err != nil {
						t.Fatal(err)
					}
					_ = ref.Compact()
				}
				checkLockstep(t, label, tree, ref, cs, keys)
			}
		})
	}
}

// TestApplyPlanEmptyOutput covers the empty-level compaction edge: a merge
// whose entries cancel to nothing (tombstones over their own puts at the
// deepest level) publishes pure removal — no output run, and the next
// recovery sees the empty manifest.
func TestApplyPlanEmptyOutput(t *testing.T) {
	bugs := faults.NewSet()
	cs := model.NewRefChunkStore(bugs)
	ms := model.NewRefMetaStore()
	tree, err := lsm.NewTree(cs, ms, model.ResolvedFutures{}, lsm.Config{MaxRuns: 64}, nil, bugs)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = tree.Put("k", []byte{1})
	if _, err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	_, _ = tree.Delete("k")
	if _, err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := tree.ApplyPlan(compact.Plan{Inputs: levelSeqs(tree, 0), OutLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied || res.BytesOut != 0 || res.DroppedTombstones != 1 {
		t.Fatalf("empty-output result: %+v", res)
	}
	if tree.RunCount() != 0 {
		t.Fatalf("runs after cancelling merge: %d", tree.RunCount())
	}
	if _, err := tree.Get("k"); !errors.Is(err, lsm.ErrNotFound) {
		t.Fatalf("Get after cancelling merge: %v", err)
	}
	reopened, err := lsm.NewTree(cs, ms, model.ResolvedFutures{}, lsm.Config{MaxRuns: 64}, nil, bugs)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.RunCount() != 0 {
		t.Fatalf("recovered runs: %d", reopened.RunCount())
	}
}

// TestManifestGenWraparoundGuard forces the generation counter to its guard
// value and requires the next manifest publication to refuse rather than
// wrap (a wrapped generation would recover out of order).
func TestManifestGenWraparoundGuard(t *testing.T) {
	tree, _, _ := newMockTree(t, nil)
	_, _ = tree.Put("k", []byte{1})
	tree.SetManifestGenForTest(^uint64(0) - 1)
	if _, err := tree.Flush(); !errors.Is(err, lsm.ErrManifestGenExhausted) {
		t.Fatalf("flush at max generation: %v", err)
	}
}

// TestManifestGenMonotonic checks every structural operation publishes a
// strictly newer generation.
func TestManifestGenMonotonic(t *testing.T) {
	tree, _, _ := newMockTree(t, nil)
	last := tree.ManifestGen()
	for i := 0; i < 4; i++ {
		_, _ = tree.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
		if _, err := tree.Flush(); err != nil {
			t.Fatal(err)
		}
		if g := tree.ManifestGen(); g <= last {
			t.Fatalf("flush %d: generation %d after %d", i, g, last)
		} else {
			last = g
		}
	}
	if err := tree.Compact(); err != nil {
		t.Fatal(err)
	}
	if g := tree.ManifestGen(); g <= last {
		t.Fatalf("compact: generation %d after %d", g, last)
	}
}

// TestNewestGenerationFirstRead pins the moment both generations' chunks are
// live at once: the inputs' run chunks still decode from the chunk store
// after the swap (reclamation has not swept them), but every read goes
// through the new manifest and serves the newest data.
func TestNewestGenerationFirstRead(t *testing.T) {
	bugs := faults.NewSet()
	cs := model.NewRefChunkStore(bugs)
	ms := model.NewRefMetaStore()
	tree, err := lsm.NewTree(cs, ms, model.ResolvedFutures{}, lsm.Config{MaxRuns: 64}, nil, bugs)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = tree.Put("k", []byte{1})
	if _, err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	_, _ = tree.Put("k", []byte{2})
	if _, err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	oldLocs := tree.RunLocs()
	res, err := tree.ApplyPlan(compact.Plan{Inputs: levelSeqs(tree, 0), OutLevel: 1})
	if err != nil || !res.Applied {
		t.Fatalf("promote: %+v %v", res, err)
	}
	// Old generation's chunks are still physically present...
	for _, loc := range oldLocs {
		payload, err := cs.Get(loc)
		if err != nil {
			t.Fatalf("old-generation chunk %v gone before reclamation: %v", loc, err)
		}
		if _, err := lsm.DecodeRunForTest(payload); err != nil {
			t.Fatalf("old-generation chunk %v: %v", loc, err)
		}
	}
	// ...yet reads serve only the new generation, newest value first.
	v, err := tree.Get("k")
	if err != nil || !bytes.Equal(v, []byte{2}) {
		t.Fatalf("read with both generations live: %v %v", v, err)
	}
	if got := tree.RunCount(); got != 1 {
		t.Fatalf("new generation runs: %d", got)
	}
}

// TestManifestV1Fallback writes a v1 flat run list (the pre-leveled format)
// and checks recovery accepts it: every run lands at level 0, generation 0,
// and the data reads back.
func TestManifestV1Fallback(t *testing.T) {
	bugs := faults.NewSet()
	cs := model.NewRefChunkStore(bugs)
	ms := model.NewRefMetaStore()
	tree, err := lsm.NewTree(cs, ms, model.ResolvedFutures{}, lsm.Config{MaxRuns: 64}, nil, bugs)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = tree.Put("k", []byte{7})
	if _, err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	infos := tree.LevelInfo()
	locs := tree.RunLocs()
	// Hand-encode the same single run in the v1 layout: u32 count, then per
	// run a u64 seq and the locator — no marker, no generation, no levels.
	v1 := binary.BigEndian.AppendUint32(nil, 1)
	v1 = binary.BigEndian.AppendUint64(v1, infos[0].Seq)
	v1 = append(v1, chunk.EncodeLocator(locs[0])...)
	if _, err := ms.WriteRecord(v1, dep.Resolved()); err != nil {
		t.Fatal(err)
	}
	reopened, err := lsm.NewTree(cs, ms, model.ResolvedFutures{}, lsm.Config{MaxRuns: 64}, nil, bugs)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.ManifestGen() != 0 {
		t.Fatalf("v1 manifest generation: %d", reopened.ManifestGen())
	}
	ri := reopened.LevelInfo()
	if len(ri) != 1 || ri[0].Level != 0 || ri[0].Seq != infos[0].Seq {
		t.Fatalf("v1 runs: %+v", ri)
	}
	v, err := reopened.Get("k")
	if err != nil || !bytes.Equal(v, []byte{7}) {
		t.Fatalf("read after v1 recovery: %v %v", v, err)
	}
}

// TestApplyPlanRejectsUnsafePlans checks the precedence validation: plans
// that would shadow newer data with older are refused outright.
func TestApplyPlanRejectsUnsafePlans(t *testing.T) {
	bugs := faults.NewSet()
	cs := model.NewRefChunkStore(bugs)
	ms := model.NewRefMetaStore()
	tree, err := lsm.NewTree(cs, ms, model.ResolvedFutures{}, lsm.Config{MaxRuns: 64}, nil, bugs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, _ = tree.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
		if _, err := tree.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	infos := tree.LevelInfo() // newest first: seqs 2, 1, 0 at L0
	// Merging the two NEWEST L0 runs while the oldest stays would let the
	// old run shadow the merged output.
	unsafe := compact.Plan{Inputs: []uint64{infos[0].Seq, infos[1].Seq}, OutLevel: 1}
	if _, err := tree.ApplyPlan(unsafe); err == nil {
		t.Fatal("plan skipping an older L0 run was accepted")
	}
	// Out-of-range output levels are refused.
	if _, err := tree.ApplyPlan(compact.Plan{Inputs: []uint64{infos[2].Seq}, OutLevel: lsm.MaxLevels + 1}); err == nil {
		t.Fatal("plan beyond MaxLevels was accepted")
	}
	// Merging the two OLDEST runs is fine; the newest keeps shadowing both.
	safe := compact.Plan{Inputs: []uint64{infos[1].Seq, infos[2].Seq}, OutLevel: 1}
	res, err := tree.ApplyPlan(safe)
	if err != nil || !res.Applied {
		t.Fatalf("safe suffix plan: %+v %v", res, err)
	}
	for i := 0; i < 3; i++ {
		v, err := tree.Get(fmt.Sprintf("k%d", i))
		if err != nil || v[0] != byte(i) {
			t.Fatalf("k%d after suffix merge: %v %v", i, v, err)
		}
	}
	// A plan naming a vanished seq is a clean CAS abort, not an error.
	res, err = tree.ApplyPlan(compact.Plan{Inputs: []uint64{9999}, OutLevel: 1})
	if err != nil || res.Applied {
		t.Fatalf("missing-input plan: %+v %v", res, err)
	}
}

package lsm_test

// Ordered-scan tests over the reference mocks: the composed per-level model
// (model.RefLevels, which gained the same Scan signature) runs in lockstep
// with the production tree through randomized structural histories, and every
// step compares full range scans, sub-ranges, and paginated cursor walks.
// The seeded FaultScanTornLevelSwap view is pinned down here too: armed, a
// scan overlapping a level swap drops keys that point gets still serve;
// disarmed, the fault path is provably dead (no stale run list is ever
// captured).

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"shardstore/internal/compact"
	"shardstore/internal/faults"
	"shardstore/internal/lsm"
	"shardstore/internal/model"
)

func newScanTree(t *testing.T, bugs *faults.Set) (*lsm.Tree, *model.RefChunkStore) {
	t.Helper()
	cs := model.NewRefChunkStore(bugs)
	ms := model.NewRefMetaStore()
	tree, err := lsm.NewTree(cs, ms, model.ResolvedFutures{}, lsm.Config{MaxRuns: 64}, nil, bugs)
	if err != nil {
		t.Fatal(err)
	}
	return tree, cs
}

func checkScanLockstep(t *testing.T, step string, tree *lsm.Tree, ref *model.RefLevels, start, end string, limit int) {
	t.Helper()
	got, gotMore, err := tree.Scan(start, end, limit)
	if err != nil {
		t.Fatalf("%s: tree.Scan(%q, %q, %d): %v", step, start, end, limit, err)
	}
	want, wantMore, err := ref.Scan(start, end, limit)
	if err != nil {
		t.Fatalf("%s: ref.Scan: %v", step, err)
	}
	if gotMore != wantMore {
		t.Fatalf("%s: Scan(%q, %q, %d) more: tree=%v model=%v", step, start, end, limit, gotMore, wantMore)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: Scan(%q, %q, %d): tree %d entries, model %d", step, start, end, limit, len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("%s: Scan(%q, %q, %d) entry %d: tree %q=%x model %q=%x",
				step, start, end, limit, i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
}

// TestScanLockstepRandomOps drives the tree and the composed reference model
// through identical randomized histories (puts, deletes, flushes, L0
// promotions, deep pushes, full compactions) and after every step compares
// ordered scans: the unbounded scan, random sub-ranges, and limited pages.
func TestScanLockstepRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			bugs := faults.NewSet()
			tree, _ := newScanTree(t, bugs)
			ref := model.NewRefLevels()
			rng := rand.New(rand.NewSource(seed))
			keys := make([]string, 12)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%02d", i)
			}
			for step := 0; step < 120; step++ {
				k := keys[rng.Intn(len(keys))]
				label := fmt.Sprintf("step %d", step)
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					v := []byte{byte(step), byte(rng.Intn(256))}
					if _, err := tree.Put(k, v); err != nil {
						t.Fatal(err)
					}
					_, _ = ref.Put(k, v)
				case 4:
					if _, err := tree.Delete(k); err != nil {
						t.Fatal(err)
					}
					_, _ = ref.Delete(k)
				case 5, 6:
					if _, err := tree.Flush(); err != nil {
						t.Fatal(err)
					}
					_, _ = ref.Flush()
				case 7:
					in := levelSeqs(tree, 0, 1)
					if len(in) == 0 {
						continue
					}
					if _, err := tree.ApplyPlan(compact.Plan{Inputs: in, OutLevel: 1}); err != nil {
						t.Fatal(err)
					}
					ref.PromoteL0()
				case 8:
					lv := 1 + rng.Intn(lsm.MaxLevels-1)
					if len(levelSeqs(tree, lv)) == 0 {
						continue
					}
					in := levelSeqs(tree, lv, lv+1)
					if _, err := tree.ApplyPlan(compact.Plan{Inputs: in, OutLevel: lv + 1}); err != nil {
						t.Fatal(err)
					}
					if err := ref.Promote(lv); err != nil {
						t.Fatal(err)
					}
				case 9:
					if err := tree.Compact(); err != nil {
						t.Fatal(err)
					}
					_ = ref.Compact()
				}
				checkScanLockstep(t, label, tree, ref, "", "", 0)
				lo, hi := rng.Intn(len(keys)), rng.Intn(len(keys))
				if lo > hi {
					lo, hi = hi, lo
				}
				checkScanLockstep(t, label, tree, ref, keys[lo], keys[hi], 0)
				checkScanLockstep(t, label, tree, ref, keys[lo], "", 1+rng.Intn(4))
			}
		})
	}
}

// TestScanCursorWalk checks the pagination contract: walking the key space
// one bounded page at a time, resuming each page with start = lastKey+"\x00",
// visits exactly the full unbounded scan in order, and the final page reports
// more=false.
func TestScanCursorWalk(t *testing.T) {
	bugs := faults.NewSet()
	tree, _ := newScanTree(t, bugs)
	for i := 0; i < 9; i++ {
		if _, err := tree.Put(fmt.Sprintf("k%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			if _, err := tree.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := tree.Delete("k04"); err != nil {
		t.Fatal(err)
	}
	full, more, err := tree.Scan("", "", 0)
	if err != nil || more {
		t.Fatalf("full scan: err=%v more=%v", err, more)
	}
	if len(full) != 8 {
		t.Fatalf("full scan: %d entries, want 8 (tombstone elided)", len(full))
	}
	var walked []lsm.Entry
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 10 {
			t.Fatal("cursor walk did not terminate")
		}
		page, pageMore, err := tree.Scan(cursor, "", 3)
		if err != nil {
			t.Fatalf("page from %q: %v", cursor, err)
		}
		walked = append(walked, page...)
		if !pageMore {
			break
		}
		if len(page) != 3 {
			t.Fatalf("page from %q: more=true with %d entries, want limit 3", cursor, len(page))
		}
		cursor = page[len(page)-1].Key + "\x00"
	}
	if len(walked) != len(full) {
		t.Fatalf("cursor walk visited %d entries, full scan %d", len(walked), len(full))
	}
	for i := range full {
		if walked[i].Key != full[i].Key || !bytes.Equal(walked[i].Value, full[i].Value) {
			t.Fatalf("cursor walk entry %d: %q=%x, want %q=%x",
				i, walked[i].Key, walked[i].Value, full[i].Key, full[i].Value)
		}
	}
}

// TestScanTornLevelSwapFault pins the seeded defect's observable effect: with
// the fault armed, a scan issued after a level swap composes its deep levels
// from the pre-swap run list, so a key whose newest version moved across the
// swap vanishes from scan results while point gets still serve it.
func TestScanTornLevelSwapFault(t *testing.T) {
	bugs := faults.NewSet(faults.FaultScanTornLevelSwap)
	tree, _ := newScanTree(t, bugs)
	if _, err := tree.Put("k01", []byte("moved")); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.ApplyPlan(compact.Plan{Inputs: levelSeqs(tree, 0), OutLevel: 1}); err != nil {
		t.Fatal(err)
	}
	// Point reads are unaffected — the defect is scan-only.
	if v, err := tree.Get("k01"); err != nil || !bytes.Equal(v, []byte("moved")) {
		t.Fatalf("Get after swap: %x, %v", v, err)
	}
	got, _, err := tree.Scan("", "", 0)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	for _, e := range got {
		if e.Key == "k01" {
			t.Fatalf("fault armed: scan still sees k01 after the swap (torn view not composed)")
		}
	}
}

// TestScanFaultPathDeadWhenDisarmed is the honesty check at the unit level:
// with the fault disarmed the identical history yields a scan that agrees
// with point reads — the stale run list is never captured, so the fault
// branch is unreachable.
func TestScanFaultPathDeadWhenDisarmed(t *testing.T) {
	bugs := faults.NewSet()
	tree, _ := newScanTree(t, bugs)
	if _, err := tree.Put("k01", []byte("moved")); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.ApplyPlan(compact.Plan{Inputs: levelSeqs(tree, 0), OutLevel: 1}); err != nil {
		t.Fatal(err)
	}
	got, _, err := tree.Scan("", "", 0)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != 1 || got[0].Key != "k01" || !bytes.Equal(got[0].Value, []byte("moved")) {
		t.Fatalf("scan after swap: %v", got)
	}
}

package lsm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"shardstore/internal/dep"
	"shardstore/internal/disk"
)

// --- run serialization (§7 robustness) ---

func TestRunEncodeDecodeRoundTrip(t *testing.T) {
	entries := []Entry{
		{Key: "a", Value: []byte{1, 2}},
		{Key: "b", Tombstone: true},
		{Key: "c", Value: []byte{}},
	}
	buf := encodeRun(entries)
	got, err := decodeRun(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Key != "a" || !got[1].Tombstone || got[2].Key != "c" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestRunDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeRunForTest(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDecodeRejectsUnsorted(t *testing.T) {
	entries := []Entry{{Key: "b", Value: []byte{1}}, {Key: "a", Value: []byte{2}}}
	buf := encodeRun(entries)
	if _, err := decodeRun(buf); err == nil {
		t.Fatal("unsorted run accepted")
	}
}

func TestMergeRunsNewestWins(t *testing.T) {
	newer := []Entry{{Key: "k", Value: []byte{2}}, {Key: "x", Tombstone: true}}
	older := []Entry{{Key: "k", Value: []byte{1}}, {Key: "x", Value: []byte{9}}, {Key: "y", Value: []byte{3}}}
	merged := mergeRuns([][]Entry{newer, older}, true)
	if len(merged) != 2 {
		t.Fatalf("merged: %+v", merged)
	}
	if merged[0].Key != "k" || merged[0].Value[0] != 2 {
		t.Fatalf("newest-wins violated: %+v", merged[0])
	}
	if merged[1].Key != "y" {
		t.Fatalf("expected y to survive: %+v", merged)
	}
	withTombs := mergeRuns([][]Entry{newer, older}, false)
	if len(withTombs) != 3 {
		t.Fatalf("tombstones dropped when they should be kept: %+v", withTombs)
	}
}

func TestSearchRun(t *testing.T) {
	entries := []Entry{{Key: "a"}, {Key: "c"}, {Key: "e"}}
	if _, ok := searchRun(entries, "c"); !ok {
		t.Fatal("missing present key")
	}
	if _, ok := searchRun(entries, "b"); ok {
		t.Fatal("found absent key")
	}
	if _, ok := searchRun(nil, "a"); ok {
		t.Fatal("found in empty run")
	}
}

// --- the real metadata store over a disk ---

func TestExtentMetaStoreRoundTrip(t *testing.T) {
	d, _ := disk.New(disk.DefaultConfig())
	sched := dep.NewScheduler(d, nil)
	ms, err := NewExtentMetaStore(sched, 1, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := ms.ReadLatest(); got != nil {
		t.Fatal("fresh store has a record")
	}
	dep1, err := ms.WriteRecord([]byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Pump(); err != nil {
		t.Fatal(err)
	}
	if !dep1.IsPersistent() {
		t.Fatal("record dep not persistent")
	}
	got, err := ms.ReadLatest()
	if err != nil || string(got) != "one" {
		t.Fatalf("latest: %q %v", got, err)
	}
}

func TestExtentMetaStoreNewestGenerationWins(t *testing.T) {
	d, _ := disk.New(disk.DefaultConfig())
	sched := dep.NewScheduler(d, nil)
	ms, _ := NewExtentMetaStore(sched, 1, 64, nil)
	for i := 0; i < 12; i++ { // cycles through the slots
		if _, err := ms.WriteRecord([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
		if err := sched.Pump(); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := ms.ReadLatest()
	if string(got) != string(byte('a'+11)) {
		t.Fatalf("latest after cycling: %q", got)
	}
	// A new store on the same disk adopts the generation cursor.
	ms2, _ := NewExtentMetaStore(dep.NewScheduler(d, nil), 1, 64, nil)
	got2, _ := ms2.ReadLatest()
	if string(got2) != string(got) {
		t.Fatalf("recovered latest: %q", got2)
	}
}

func TestExtentMetaStoreRecordTooLarge(t *testing.T) {
	d, _ := disk.New(disk.DefaultConfig())
	sched := dep.NewScheduler(d, nil)
	ms, _ := NewExtentMetaStore(sched, 1, 64, nil)
	if _, err := ms.WriteRecord(make([]byte, 500)); !errors.Is(err, ErrMetaTooLarge) {
		t.Fatalf("oversized record: %v", err)
	}
}

func TestExtentMetaStoreTornWriteKeepsPrevious(t *testing.T) {
	d, _ := disk.New(disk.DefaultConfig())
	sched := dep.NewScheduler(d, nil)
	ms, _ := NewExtentMetaStore(sched, 1, 200, nil) // records span multiple pages
	_, _ = ms.WriteRecord(bytes.Repeat([]byte{1}, 200))
	_ = sched.Pump()
	_, _ = ms.WriteRecord(bytes.Repeat([]byte{2}, 200))
	sched.Step() // issue to cache without syncing
	// Crash keeps only the first page of the new record: torn.
	d.CrashKeep(func(a disk.PageAddr) bool { return a.Page%3 == 0 })
	got, err := ms.ReadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got[0] != 1 {
		t.Fatalf("torn record should fall back to the previous one: %v", got)
	}
}

// Snapshot-consistent range scans over the tree: one merged, ordered view of
// memtable + flushing generation + every on-disk run, pinned against
// concurrent flush/compaction by the manifest generation. The scan snapshots
// the run list under t.mu, loads every run, then re-checks the generation:
// if a flush or compaction published a new generation mid-load, the view may
// straddle the swap (some runs read pre-swap, some post-swap), so the scan
// discards it and re-snapshots. Loaded entry slices are immutable once
// decoded, so a view whose generation re-check passes is a true snapshot.
package lsm

import (
	"sort"

	"shardstore/internal/faults"
	"shardstore/internal/vsync"
)

// maxScanAttempts bounds the optimistic snapshot loop before the scan falls
// back to serializing against the run-list mutators.
const maxScanAttempts = 4

// Scan returns the live entries in [start, end) in ascending key order,
// newest version of each key, tombstones elided. An empty end means
// unbounded; limit <= 0 means unbounded. more reports that entries beyond
// the limit remain in range — resume with start = lastKey + "\x00".
func (t *Tree) Scan(start, end string, limit int) ([]Entry, bool, error) {
	opStart := t.obs.Now()
	t.met.scans.Inc()
	for attempt := 0; attempt < maxScanAttempts; attempt++ {
		view, gen, torn, err := t.scanView()
		if err != nil {
			// A run vanished mid-load (compaction swapped it out and
			// reclamation got there first): the generation moved, take a
			// fresh snapshot.
			t.cov.Hit("lsm.scan.load_retry")
			vsync.Yield()
			continue
		}
		if !torn && t.ManifestGen() != gen {
			// Torn snapshot: a flush/compaction published a new generation
			// while runs were loading. Discard and retry.
			t.cov.Hit("lsm.scan.gen_retry")
			vsync.Yield()
			continue
		}
		out, more := collectRange(view, start, end, limit)
		t.met.scanEntries.Add(uint64(len(out)))
		t.met.scanLat.Observe(t.obs.Now() - opStart)
		if t.obs.Tracing() {
			t.obs.Record("lsm", "scan", start, "ok", t.obs.Now()-opStart)
		}
		return out, more, nil
	}
	// The optimistic loop kept losing to concurrent run-list churn: take the
	// mutator locks (flushMu before compactMu, the tree's lock order) so the
	// run list holds still for one authoritative pass.
	t.flushMu.Lock()
	defer t.flushMu.Unlock()
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	t.cov.Hit("lsm.scan.stable_fallback")
	view, _, _, err := t.scanView()
	if err != nil {
		return nil, false, err
	}
	out, more := collectRange(view, start, end, limit)
	t.met.scanEntries.Add(uint64(len(out)))
	t.met.scanLat.Observe(t.obs.Now() - opStart)
	return out, more, nil
}

// scanView snapshots the tree and loads one merged newest-wins view
// (tombstones retained). It returns the manifest generation the snapshot was
// taken under; the caller decides whether a generation drift voids the view.
// torn reports that the seeded FaultScanTornLevelSwap composed the view from
// mixed generations, in which case the generation re-check must be skipped —
// that skip is exactly the seeded defect.
func (t *Tree) scanView() ([]Entry, uint64, bool, error) {
	t.mu.Lock()
	gen := t.manifestGen
	runs := append([]runRef(nil), t.runs...)
	overlay := make(map[string]memEntry, len(t.mem)+len(t.flushing))
	for k, e := range t.flushing {
		overlay[k] = e
	}
	for k, e := range t.mem {
		overlay[k] = e
	}
	torn := t.bugs.Enabled(faults.FaultScanTornLevelSwap) && t.staleRuns != nil
	if torn {
		// Seeded fault: the deep levels come from the pre-swap run list while
		// L0 comes from the current one — the mid-swap level set a correct
		// iterator must never observe. Keys whose newest version crossed the
		// swap boundary vanish or resurrect relative to point gets.
		composed := make([]runRef, 0, len(runs)+len(t.staleRuns))
		for _, r := range runs {
			if r.level == 0 {
				composed = append(composed, r)
			}
		}
		for _, r := range t.staleRuns {
			if r.level >= 1 {
				composed = append(composed, r)
			}
		}
		runs = composed
		t.cov.Hit("lsm.scan.torn_view")
	}
	t.mu.Unlock()

	// The overlay is the newest data; mergeRuns is newest-first, so it leads.
	memRun := make([]Entry, 0, len(overlay))
	for k, e := range overlay {
		memRun = append(memRun, Entry{Key: k, Value: e.value, Tombstone: e.tombstone})
	}
	sort.Slice(memRun, func(i, j int) bool { return memRun[i].Key < memRun[j].Key })
	loaded := make([][]Entry, 0, len(runs)+1)
	loaded = append(loaded, memRun)
	for _, r := range runs {
		entries, err := t.loadRun(r)
		if err != nil {
			if torn {
				// A stale pre-swap run may already be reclaimed; the defect
				// path drops it silently (part of the torn observation).
				continue
			}
			return nil, gen, false, err
		}
		loaded = append(loaded, entries)
	}
	return mergeRuns(loaded, false), gen, torn, nil
}

// collectRange filters a merged view down to the live entries of
// [start, end), applying the limit. Values are copied: run-cache and
// memtable slices must not escape to callers.
func collectRange(view []Entry, start, end string, limit int) ([]Entry, bool) {
	out := make([]Entry, 0)
	for _, e := range view {
		if e.Key < start {
			continue
		}
		if end != "" && e.Key >= end {
			break
		}
		if e.Tombstone {
			continue
		}
		if limit > 0 && len(out) >= limit {
			return out, true
		}
		out = append(out, Entry{Key: e.Key, Value: append([]byte(nil), e.Value...)})
	}
	return out, false
}

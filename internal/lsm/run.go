package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// A run is an immutable sorted sequence of key/value entries, serialized as
// one chunk payload. Tombstones (deletions) are entries with a sentinel
// value length so they shadow older runs until a full compaction drops them.

const tombstoneLen = 0xFFFFFFFF

// Entry is one key/value pair in a run or memtable.
type Entry struct {
	Key       string
	Value     []byte
	Tombstone bool
}

// ErrCorruptRun is returned when run bytes fail to decode.
var ErrCorruptRun = errors.New("lsm: corrupt run")

// encodeRun serializes entries (which must be sorted by key).
func encodeRun(entries []Entry) []byte {
	size := 4
	for _, e := range entries {
		size += 2 + len(e.Key) + 4 + len(e.Value)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Key)))
		buf = append(buf, e.Key...)
		if e.Tombstone {
			buf = binary.BigEndian.AppendUint32(buf, tombstoneLen)
			continue
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Value)))
		buf = append(buf, e.Value...)
	}
	return buf
}

// decodeRun parses run bytes. It is written defensively — on-disk data is
// untrusted (§7: deserializers must never panic on corrupt input).
func decodeRun(buf []byte) ([]Entry, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("%w: short header", ErrCorruptRun)
	}
	count := int(binary.BigEndian.Uint32(buf[:4]))
	pos := 4
	if count < 0 || count > len(buf) {
		return nil, fmt.Errorf("%w: implausible entry count %d", ErrCorruptRun, count)
	}
	entries := make([]Entry, 0, count)
	for i := 0; i < count; i++ {
		if pos+2 > len(buf) {
			return nil, fmt.Errorf("%w: truncated key length", ErrCorruptRun)
		}
		klen := int(binary.BigEndian.Uint16(buf[pos : pos+2]))
		pos += 2
		if pos+klen+4 > len(buf) {
			return nil, fmt.Errorf("%w: truncated key/value length", ErrCorruptRun)
		}
		key := string(buf[pos : pos+klen])
		pos += klen
		vlen := binary.BigEndian.Uint32(buf[pos : pos+4])
		pos += 4
		if vlen == tombstoneLen {
			entries = append(entries, Entry{Key: key, Tombstone: true})
			continue
		}
		if vlen > uint32(len(buf)-pos) {
			return nil, fmt.Errorf("%w: truncated value", ErrCorruptRun)
		}
		entries = append(entries, Entry{Key: key, Value: append([]byte(nil), buf[pos:pos+int(vlen)]...)})
		pos += int(vlen)
	}
	if !sort.SliceIsSorted(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key }) {
		return nil, fmt.Errorf("%w: entries out of order", ErrCorruptRun)
	}
	return entries, nil
}

// searchRun finds key in sorted entries.
func searchRun(entries []Entry, key string) (Entry, bool) {
	i := sort.Search(len(entries), func(i int) bool { return entries[i].Key >= key })
	if i < len(entries) && entries[i].Key == key {
		return entries[i], true
	}
	return Entry{}, false
}

// mergeRuns merges runs ordered newest first into a single sorted entry list
// with newest-wins semantics. If dropTombstones is true (full compaction),
// deletion markers are elided from the output.
func mergeRuns(runs [][]Entry, dropTombstones bool) []Entry {
	latest := make(map[string]Entry)
	order := make([]string, 0)
	for _, run := range runs { // newest first: first writer wins
		for _, e := range run {
			if _, seen := latest[e.Key]; !seen {
				latest[e.Key] = e
				order = append(order, e.Key)
			}
		}
	}
	sort.Strings(order)
	out := make([]Entry, 0, len(order))
	for _, k := range order {
		e := latest[k]
		if e.Tombstone && dropTombstones {
			continue
		}
		out = append(out, e)
	}
	return out
}

// DecodeRunForTest exposes decodeRun to the serialization-robustness
// property tests (§7).
func DecodeRunForTest(buf []byte) ([]Entry, error) { return decodeRun(buf) }

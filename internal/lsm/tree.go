// Package lsm implements ShardStore's index: a log-structured merge tree
// mapping shard identifiers to values (chunk locator lists), itself stored
// as chunks on disk (§2.1, WiscKey-style). The in-memory memtable absorbs
// writes; Flush serializes it into a sorted level-0 run chunk and publishes a
// new manifest generation naming it; compaction (ApplyPlan, driven by
// internal/compact) merges runs into deeper levels. Because the tree's own
// chunks live on reclaimable extents, the tree also implements the
// reclamation resolver for index-run chunks.
package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"shardstore/internal/chunk"
	"shardstore/internal/coverage"
	"shardstore/internal/dep"
	"shardstore/internal/faults"
	"shardstore/internal/obs"
	"shardstore/internal/vsync"
)

// ErrNotFound is returned by Get for absent (or deleted) keys. The reference
// model returns the identical error so conformance checks compare equal.
var ErrNotFound = errors.New("index: key not found")

// Index is the interface shared by the production LSM tree and its reference
// model (§3.2). Writing unit tests against Index lets the reference model
// double as the mock implementation.
type Index interface {
	// Put records key=value. The returned dependency becomes persistent once
	// the entry is durable (for the LSM tree: run chunk + metadata + their
	// superblock updates). waits orders the entry after other writes — a
	// shard put passes its data chunks' dependency here (Fig 2).
	Put(key string, value []byte, waits ...*dep.Dependency) (*dep.Dependency, error)
	// Get returns the value for key or ErrNotFound.
	Get(key string) ([]byte, error)
	// Delete removes key. Deleting an absent key is not an error.
	Delete(key string, waits ...*dep.Dependency) (*dep.Dependency, error)
	// Keys returns all live keys in ascending order.
	Keys() ([]string, error)
	// Flush persists buffered entries.
	Flush() (*dep.Dependency, error)
	// Compact merges on-disk structures; a no-op for the model.
	Compact() error
}

// ChunkStore is what the tree needs from the chunk layer. The production
// implementation is chunk.Store; unit tests substitute the reference model.
type ChunkStore interface {
	Put(tag chunk.Tag, key string, payload []byte, waits ...*dep.Dependency) (chunk.Locator, *dep.Dependency, func(), error)
	Get(loc chunk.Locator) ([]byte, error)
}

// Config tunes the tree.
type Config struct {
	// MaxRuns triggers an automatic compaction when a flush would exceed it.
	MaxRuns int
	// MaxMemEntries flushes the memtable automatically when it grows past
	// this; zero disables (harnesses flush explicitly for determinism).
	MaxMemEntries int
	// ResetHappened reports whether any extent was reset this session — the
	// trigger state for seeded bug #3 in the shutdown path.
	ResetHappened func() bool
	// Obs is the observability registry for metrics and tracing. Nil gives
	// the tree a private registry.
	Obs *obs.Obs
}

// treeMetrics holds the obs handles, resolved once at construction.
type treeMetrics struct {
	flushes     *obs.Counter
	compactions *obs.Counter
	runLoads    *obs.Counter
	gets        *obs.Counter
	runsProbed  *obs.Counter
	scans       *obs.Counter
	scanEntries *obs.Counter
	memEntries  *obs.Gauge
	runCount    *obs.Gauge
	levels      *obs.Gauge
	flushDur    *obs.Histogram
	compactDur  *obs.Histogram
	scanLat     *obs.Histogram
}

func newTreeMetrics(o *obs.Obs) treeMetrics {
	return treeMetrics{
		flushes:     o.Counter("lsm.flushes"),
		compactions: o.Counter("lsm.compactions"),
		runLoads:    o.Counter("lsm.run_loads"),
		gets:        o.Counter("lsm.gets"),
		runsProbed:  o.Counter("lsm.runs_probed"),
		scans:       o.Counter("lsm.scans"),
		scanEntries: o.Counter("lsm.scan_entries"),
		memEntries:  o.Gauge("lsm.mem_entries"),
		runCount:    o.Gauge("lsm.runs"),
		levels:      o.Gauge("lsm.levels"),
		flushDur:    o.Histogram("lsm.flush_dur"),
		compactDur:  o.Histogram("lsm.compact_dur"),
		scanLat:     o.Histogram("lsm.scan_lat"),
	}
}

// TestHookWindow, when non-nil, observes the bug #14 window opening and
// closing around the given run locator (diagnostics).
var TestHookWindow func(loc chunk.Locator, open bool)

// DefaultMaxRuns bounds the run list so metadata records stay small.
const DefaultMaxRuns = 6

type memEntry struct {
	value     []byte
	tombstone bool
	// wait orders this entry's run chunk after the writes the entry refers
	// to (its shard data chunks, Fig 2). Waits are per entry: when an entry
	// is overwritten or relocated, the superseded wait goes with it —
	// keeping a flat accumulated list would leave the flush waiting on
	// dependencies that an extent reset has since rerouted, which can tie
	// the flush and the reset into a cycle.
	wait *dep.Dependency
}

type runRef struct {
	seq uint64
	loc chunk.Locator
	// level is the run's compaction level: 0 for raw flush output (runs
	// overlap; newest first in t.runs), 1..MaxLevels for merged runs (one
	// per level, ascending after the L0 block). Slice order in t.runs is
	// always read-precedence order, so Get probes newest data first.
	level int
}

// Tree is the production LSM index.
type Tree struct {
	mu   vsync.Mutex
	cs   ChunkStore
	ms   MetaStore
	futs FutureFactory
	cfg  Config
	cov  *coverage.Registry
	bugs *faults.Set
	obs  *obs.Obs
	met  treeMetrics

	mem    map[string]memEntry
	future *dep.Dependency // pending-memtable dependency, bound at flush
	// flushing holds the memtable generation currently being written to a
	// run chunk. It stays visible to reads until the run is registered, so
	// a concurrent Get cannot miss entries mid-flush, and a concurrent Put
	// goes into the fresh memtable instead of being wiped by the flush — a
	// lost-update race this very repository's Fig 4 harness caught.
	flushing    map[string]memEntry
	flushMu     vsync.Mutex // serializes flushes (one memtable generation in flight)
	compactMu   vsync.Mutex // serializes compactions (flushMu may be held while taking it, never the reverse)
	runs        []runRef    // read-precedence order: L0 newest first, then ascending levels
	runSeq      uint64
	manifestGen uint64
	// staleRuns is the pre-swap run list captured at the last leveled swap,
	// recorded only while FaultScanTornLevelSwap is armed: the seeded defect
	// composes a scan view from these deep levels plus the current L0.
	staleRuns []runRef
	runCache  map[chunk.Locator][]Entry
	lastFlush *dep.Dependency
}

// FutureFactory creates unbound dependencies; satisfied by *dep.Scheduler.
type FutureFactory interface {
	Future() *dep.Dependency
	Bind(future, real *dep.Dependency)
}

// NewTree opens (or recovers) a tree whose runs are listed in ms. A fresh
// metadata extent yields an empty tree.
func NewTree(cs ChunkStore, ms MetaStore, futs FutureFactory, cfg Config, cov *coverage.Registry, bugs *faults.Set) (*Tree, error) {
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = DefaultMaxRuns
	}
	o := cfg.Obs
	if o == nil {
		o = obs.New(nil)
	}
	t := &Tree{
		cs:       cs,
		ms:       ms,
		futs:     futs,
		cfg:      cfg,
		cov:      cov,
		bugs:     bugs,
		obs:      o,
		met:      newTreeMetrics(o),
		mem:      make(map[string]memEntry),
		runCache: make(map[chunk.Locator][]Entry),
	}
	payload, err := ms.ReadLatest()
	if err != nil {
		return nil, err
	}
	if payload != nil {
		runs, gen, err := decodeManifest(payload)
		if err != nil {
			return nil, err
		}
		t.runs = runs
		t.manifestGen = gen
		for _, r := range runs {
			if r.seq >= t.runSeq {
				t.runSeq = r.seq + 1
			}
		}
		t.updateRunMetricsLocked()
		cov.Hit("lsm.recovered")
	}
	return t, nil
}

// MaxMetaPayload returns the metadata payload bound for the given run limit,
// used to size the metadata slots. The bound covers MaxRuns level-0 runs
// (plus one of transient headroom while a flush races a compaction abort)
// and one merged run per level 1..MaxLevels.
func MaxMetaPayload(maxRuns int) int {
	if maxRuns <= 0 {
		maxRuns = DefaultMaxRuns
	}
	return 16 + (maxRuns+MaxLevels+1)*manifestRunLen
}

// updateRunMetricsLocked refreshes the run-shape gauges; requires t.mu.
func (t *Tree) updateRunMetricsLocked() {
	t.met.runCount.Set(int64(len(t.runs)))
	seen := make(map[int]bool, len(t.runs))
	for _, r := range t.runs {
		seen[r.level] = true
	}
	t.met.levels.Set(int64(len(seen)))
}

// decodeRunList parses the v1 (pre-leveled) flat run list; kept so recovery
// accepts manifests written before the v2 generation format.
func decodeRunList(buf []byte) ([]runRef, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("lsm: short run list")
	}
	count := int(binary.BigEndian.Uint32(buf[:4]))
	rest := buf[4:]
	if count < 0 || count > len(buf) {
		return nil, fmt.Errorf("lsm: implausible run count %d", count)
	}
	runs := make([]runRef, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < 8 {
			return nil, fmt.Errorf("lsm: truncated run list")
		}
		seq := binary.BigEndian.Uint64(rest[:8])
		loc, r2, err := chunk.DecodeLocator(rest[8:])
		if err != nil {
			return nil, err
		}
		rest = r2
		runs = append(runs, runRef{seq: seq, loc: loc})
	}
	return runs, nil
}

// Put implements Index.
func (t *Tree) Put(key string, value []byte, waits ...*dep.Dependency) (*dep.Dependency, error) {
	t.mu.Lock()
	t.mem[key] = memEntry{value: append([]byte(nil), value...), wait: dep.All(waits...)}
	if t.future == nil {
		t.future = t.futs.Future()
	}
	fut := t.future
	needFlush := t.cfg.MaxMemEntries > 0 && len(t.mem) >= t.cfg.MaxMemEntries
	t.met.memEntries.Set(int64(len(t.mem)))
	t.mu.Unlock()
	if needFlush {
		if _, err := t.Flush(); err != nil {
			return fut, err
		}
	}
	return fut, nil
}

// Delete implements Index: it buffers a tombstone.
func (t *Tree) Delete(key string, waits ...*dep.Dependency) (*dep.Dependency, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mem[key] = memEntry{tombstone: true, wait: dep.All(waits...)}
	if t.future == nil {
		t.future = t.futs.Future()
	}
	t.met.memEntries.Set(int64(len(t.mem)))
	return t.future, nil
}

// Get implements Index. The probe order is t.runs' slice order — newest
// manifest data first — so when two generations' chunks are momentarily both
// live (a compaction just published, reclamation has not swept the inputs),
// reads see only the newest generation. lsm.runs_probed over lsm.gets is the
// read-amplification ratio leveled compaction exists to bound.
func (t *Tree) Get(key string) ([]byte, error) {
	t.met.gets.Inc()
	t.mu.Lock()
	if e, ok := t.mem[key]; ok {
		t.mu.Unlock()
		if e.tombstone {
			return nil, ErrNotFound
		}
		return append([]byte(nil), e.value...), nil
	}
	if e, ok := t.flushing[key]; ok {
		t.mu.Unlock()
		if e.tombstone {
			return nil, ErrNotFound
		}
		return append([]byte(nil), e.value...), nil
	}
	runs := append([]runRef(nil), t.runs...)
	t.mu.Unlock()

	for _, r := range runs {
		t.met.runsProbed.Inc()
		entries, err := t.loadRun(r)
		if err != nil {
			return nil, err
		}
		if e, ok := searchRun(entries, key); ok {
			if e.Tombstone {
				return nil, ErrNotFound
			}
			return append([]byte(nil), e.Value...), nil
		}
	}
	return nil, ErrNotFound
}

// Keys implements Index.
func (t *Tree) Keys() ([]string, error) {
	t.mu.Lock()
	runs := append([]runRef(nil), t.runs...)
	mem := make(map[string]memEntry, len(t.mem)+len(t.flushing))
	for k, v := range t.flushing {
		mem[k] = v
	}
	for k, v := range t.mem {
		mem[k] = v
	}
	t.mu.Unlock()

	state := make(map[string]bool) // key -> live
	for i := len(runs) - 1; i >= 0; i-- {
		entries, err := t.loadRun(runs[i])
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			state[e.Key] = !e.Tombstone
		}
	}
	for k, e := range mem {
		state[k] = !e.tombstone
	}
	var keys []string
	for k, live := range state {
		if live {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// runKeyFor names the chunk holding run seq; chunk frames carry this key,
// which is what lets a reader detect that a locator went stale.
func runKeyFor(seq uint64) string { return fmt.Sprintf("run-%016x", seq) }

// loadRun fetches and decodes one run, memoizing the result.
//
// A run locator can go stale concurrently: reclamation relocates run chunks
// and recycles their extents, so by the time the read lands, the physical
// location may hold a different chunk entirely. The read is validated two
// ways — the frame's owner key must match the run's name, and the payload
// must decode as a run — and on any mismatch the current locator for the
// same run sequence is fetched from the metadata and the read retried.
func (t *Tree) loadRun(ref runRef) ([]Entry, error) {
	loc := ref.loc
	want := runKeyFor(ref.seq)
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		t.mu.Lock()
		if entries, ok := t.runCache[loc]; ok {
			t.mu.Unlock()
			return entries, nil
		}
		t.mu.Unlock()
		t.met.runLoads.Inc()
		payload, owner, err := t.getRunChunk(loc)
		if err == nil && (owner == "" || owner == want) {
			entries, derr := decodeRun(payload)
			if derr == nil {
				t.mu.Lock()
				t.runCache[loc] = entries
				t.mu.Unlock()
				return entries, nil
			}
			lastErr = fmt.Errorf("lsm: run %v: %w", loc, derr)
		} else if err != nil {
			lastErr = fmt.Errorf("lsm: load run %v: %w", loc, err)
		} else {
			lastErr = fmt.Errorf("lsm: run %v owned by %q, want %q (stale locator)", loc, owner, want)
		}
		// Refresh the locator: relocation may have moved the run.
		t.mu.Lock()
		fresh := loc
		for _, r := range t.runs {
			if r.seq == ref.seq {
				fresh = r.loc
				break
			}
		}
		t.mu.Unlock()
		if fresh == loc {
			break // nothing moved; the failure is real
		}
		loc = fresh
	}
	return nil, lastErr
}

// runChunkGetter is implemented by chunk stores that expose the owning key
// (the production store); mocks fall back to plain Get.
type runChunkGetter interface {
	GetWithKey(chunk.Locator) ([]byte, string, error)
}

func (t *Tree) getRunChunk(loc chunk.Locator) ([]byte, string, error) {
	if g, ok := t.cs.(runChunkGetter); ok {
		return g.GetWithKey(loc)
	}
	payload, err := t.cs.Get(loc)
	return payload, "", err
}

// Flush implements Index: it serializes the memtable into a new run chunk,
// then writes a metadata record pointing at it — exactly the index-entry and
// LSM-metadata writes of Fig 2, with the metadata ordered after the run and
// the run ordered after the callers' data chunks.
func (t *Tree) Flush() (*dep.Dependency, error) {
	return t.flush(false)
}

func (t *Tree) flush(skipMeta bool) (*dep.Dependency, error) {
	start := t.obs.Now()
	// Serialize flushes (and compactions) so only one memtable generation is
	// in flight at a time.
	t.flushMu.Lock()
	defer t.flushMu.Unlock()

	t.mu.Lock()
	if len(t.mem) == 0 {
		last := t.lastFlush
		t.mu.Unlock()
		if last == nil {
			return dep.Resolved(), nil
		}
		return last, nil
	}
	// Swap the memtable: the generation being flushed stays readable via
	// t.flushing; concurrent Puts land in the fresh memtable.
	gen := t.mem
	t.mem = make(map[string]memEntry)
	t.flushing = gen
	future := t.future
	t.future = nil
	entries := make([]Entry, 0, len(gen))
	for k, e := range gen {
		entries = append(entries, Entry{Key: k, Value: e.value, Tombstone: e.tombstone})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	// Collect the flush dependencies in sorted-key order, not memtable
	// iteration order: the memtable is a map, and Go randomizes map order
	// per run, so building waits inside the range above would leak that
	// randomization into the dependency graph and break bit-identical
	// replay of a failing case.
	var waits []*dep.Dependency
	for _, ent := range entries {
		if w := gen[ent.Key].wait; w != nil && w != dep.Resolved() {
			waits = append(waits, w)
		}
	}
	seq := t.runSeq
	t.runSeq++
	l0 := 0
	for _, r := range t.runs {
		if r.level == 0 {
			l0++
		}
	}
	needCompact := l0+1 > t.cfg.MaxRuns
	t.met.memEntries.Set(0)
	t.mu.Unlock()

	// restore puts the un-flushed generation back on the error path (keys
	// overwritten since keep their newer value).
	restore := func() {
		t.mu.Lock()
		for k, e := range gen {
			if _, exists := t.mem[k]; !exists {
				t.mem[k] = e
			}
		}
		t.flushing = nil
		if future != nil && t.future == nil {
			t.future = future
		}
		t.mu.Unlock()
	}

	if needCompact {
		// Push the whole L0 block (and the resident L1 run, if any) into L1
		// before registering the new run, so L0 stays bounded by MaxRuns.
		if err := t.compactL0(); err != nil {
			restore()
			return nil, err
		}
	}

	payload := encodeRun(entries)
	runKey := runKeyFor(seq)
	loc, cdep, release, err := t.cs.Put(chunk.TagIndexRun, runKey, payload, waits...)
	if err != nil {
		restore()
		return nil, err
	}
	defer release()

	// Register the run and enqueue the metadata record atomically (under
	// t.mu): capturing the run list and assigning the record's generation
	// must not interleave with a concurrent compaction or relocation, or a
	// higher-generation record could carry an older run list.
	t.mu.Lock()
	t.runs = append([]runRef{{seq: seq, loc: loc, level: 0}}, t.runs...)
	t.runCache[loc] = entries
	t.flushing = nil // the run is registered; reads find it there
	var flushDep *dep.Dependency
	var mdErr error
	if skipMeta {
		// Seeded bug #3: the shutdown path skipped the metadata record when
		// an extent had been reset this session, so the freshly flushed run
		// is forgotten by the next recovery even though every dependency
		// reported persistent.
		t.cov.Hit("lsm.bug3.meta_skipped")
		flushDep = cdep
	} else {
		var mdep *dep.Dependency
		mdep, mdErr = t.stageManifestLocked(cdep)
		if mdErr == nil {
			flushDep = cdep.And(mdep)
		}
	}
	t.mu.Unlock()
	if mdErr != nil {
		return nil, mdErr
	}

	t.mu.Lock()
	if future != nil {
		t.futs.Bind(future, flushDep)
	}
	t.lastFlush = flushDep
	t.updateRunMetricsLocked()
	t.mu.Unlock()
	t.cov.Hit("lsm.flush")
	t.met.flushes.Inc()
	t.met.flushDur.Observe(t.obs.Now() - start)
	if t.obs.Tracing() {
		t.obs.Record("lsm", "flush", runKey, "ok", t.obs.Now()-start)
	}
	return flushDep, nil
}

// Shutdown flushes the memtable for a clean shutdown.
func (t *Tree) Shutdown() (*dep.Dependency, error) {
	skipMeta := false
	if t.bugs.Enabled(faults.Bug3ShutdownMetadataSkip) && t.cfg.ResetHappened != nil && t.cfg.ResetHappened() {
		skipMeta = true
	}
	return t.flush(skipMeta)
}

// Compact implements Index: it merges every on-disk run into one, dropping
// tombstones, and publishes the new manifest generation. The new run's extent
// stays pinned (the release closure) until the manifest references it; the
// paper's bug #14 released the pin before the metadata update, letting a
// concurrent reclamation drop the brand-new run chunk. Leveled compaction
// (ApplyPlan) does incremental per-level merges instead; this full merge
// remains the control-plane CompactIndex operation.
func (t *Tree) Compact() error {
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	return t.compactLocked()
}

// compactLocked requires t.compactMu held.
func (t *Tree) compactLocked() error {
	start := t.obs.Now()
	t.mu.Lock()
	runs := append([]runRef(nil), t.runs...)
	t.mu.Unlock()
	if len(runs) == 0 {
		return nil
	}
	var loaded [][]Entry
	for _, r := range runs {
		entries, err := t.loadRun(r)
		if err != nil {
			return err
		}
		loaded = append(loaded, entries)
	}
	merged := mergeRuns(loaded, true)
	// The full merge subsumes every input, so the output belongs at the
	// deepest level any input occupied (at least 1: it is merged, not raw
	// flush output).
	outLevel := 1
	for _, r := range runs {
		if r.level > outLevel {
			outLevel = r.level
		}
	}

	t.mu.Lock()
	seq := t.runSeq
	t.runSeq++
	t.mu.Unlock()

	payload := encodeRun(merged)
	runKey := runKeyFor(seq)
	loc, cdep, release, err := t.cs.Put(chunk.TagIndexRun, runKey, payload)
	if err != nil {
		return err
	}

	if t.bugs.Enabled(faults.Bug14CompactionReclaimRace) {
		// Seeded bug #14 (§6's worked example): compaction unpinned the
		// extent holding the new run chunk before updating the metadata to
		// point at it. A reclamation scheduled in that window finds the
		// chunk unreferenced, drops it, and resets the extent — and the
		// metadata update then installs a dangling pointer, losing the
		// index entries the run contained.
		release()
		t.cov.Hit("lsm.bug14.early_unpin")
		t.cov.Hit("lsm.bug14.window@" + loc.String())
		if TestHookWindow != nil {
			TestHookWindow(loc, true)
		}
		vsync.Yield()
	} else {
		defer release()
	}

	if TestHookWindow != nil && t.bugs.Enabled(faults.Bug14CompactionReclaimRace) {
		TestHookWindow(loc, false)
	}
	t.mu.Lock()
	// Replace exactly the runs we merged; runs flushed concurrently (they
	// are prepended) stay.
	keep := t.runs[:len(t.runs)-len(runs)]
	t.runs = append(append([]runRef(nil), keep...), runRef{seq: seq, loc: loc, level: outLevel})
	t.runCache[loc] = merged
	t.pruneRunCacheLocked()
	t.updateRunMetricsLocked()
	_, werr := t.stageManifestLocked(cdep)
	t.mu.Unlock()
	if werr != nil {
		return werr
	}
	t.cov.Hit("lsm.compact")
	t.met.compactions.Inc()
	t.met.compactDur.Observe(t.obs.Now() - start)
	if t.obs.Tracing() {
		t.obs.Record("lsm", "compact", runKey, "ok", t.obs.Now()-start)
	}
	return nil
}

// pruneRunCacheLocked drops cache entries for runs no manifest names;
// requires t.mu.
func (t *Tree) pruneRunCacheLocked() {
	live := make(map[chunk.Locator]bool, len(t.runs))
	for _, r := range t.runs {
		live[r.loc] = true
	}
	for l := range t.runCache {
		if !live[l] {
			delete(t.runCache, l)
		}
	}
}

// RunLocs returns the locators of the current on-disk runs (diagnostics).
func (t *Tree) RunLocs() []chunk.Locator {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]chunk.Locator, 0, len(t.runs))
	for _, r := range t.runs {
		out = append(out, r.loc)
	}
	return out
}

// RunCount returns the number of on-disk runs.
func (t *Tree) RunCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.runs)
}

// MemLen returns the number of buffered memtable entries.
func (t *Tree) MemLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.mem)
}

// PendingFlush reports whether unflushed memtable entries exist.
func (t *Tree) PendingFlush() bool { return t.MemLen() > 0 }

// --- Reclamation resolver for index-run chunks (§2.1) ---

// RunResolver adapts the tree to chunk.Resolver for TagIndexRun chunks: the
// reverse lookup consults the metadata run list instead of the index.
type RunResolver struct{ Tree *Tree }

// ChunkLive reports whether loc backs a current run.
func (r RunResolver) ChunkLive(key string, loc chunk.Locator) bool {
	t := r.Tree
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, run := range t.runs {
		if run.loc == loc {
			return true
		}
	}
	return false
}

// RelocateChunk repoints the metadata at an evacuated run chunk.
func (r RunResolver) RelocateChunk(key string, old, newLoc chunk.Locator, newDep *dep.Dependency) (bool, *dep.Dependency, error) {
	t := r.Tree
	t.mu.Lock()
	found := false
	for i := range t.runs {
		if t.runs[i].loc == old {
			t.runs[i].loc = newLoc
			found = true
			break
		}
	}
	if !found {
		t.mu.Unlock()
		return false, nil, nil
	}
	if entries, ok := t.runCache[old]; ok {
		t.runCache[newLoc] = entries
		delete(t.runCache, old)
	}
	mdep, err := t.stageManifestLocked(newDep)
	t.mu.Unlock()
	if err != nil {
		return false, nil, err
	}
	t.cov.Hit("lsm.run_relocated")
	return true, mdep, nil
}

// SyncReferences implements chunk.Resolver. Run chunks become garbage when a
// newer metadata record supersedes them (compaction, relocation); the extent
// reset that destroys a garbage run must therefore wait for the current
// metadata record — the chained LastDep covers every earlier record and run.
func (r RunResolver) SyncReferences() (*dep.Dependency, error) {
	return r.Tree.ms.LastDep(), nil
}

var _ chunk.Resolver = RunResolver{}
var _ Index = (*Tree)(nil)

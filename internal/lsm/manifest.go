// Manifest encoding: the metadata record that names the tree's current run
// list. Version 2 carries a manifest generation number and a per-run level,
// the substrate for leveled compaction (internal/compact): every mutation of
// the run list — flush, compaction, relocation — publishes a complete new
// manifest under a bumped generation, and recovery's highest-valid-record
// rule makes the publication a single atomic swap of the "current" pointer
// (histdb's generation-numbered current file, transplanted onto the
// metadata-slot CAS discipline).
package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"shardstore/internal/chunk"
	"shardstore/internal/dep"
)

// MaxLevels is the deepest level a run can occupy. Level 0 holds raw flush
// output (runs overlap, newest first); levels 1..MaxLevels hold one merged
// run each. The metadata slots are sized for MaxLevels, so compaction
// policies must not exceed it.
const MaxLevels = 4

// manifestMarker opens a v2 manifest. It is unrepresentable as a v1 run
// count (the v1 decoder rejects counts larger than the record), so the two
// layouts cannot be confused.
const manifestMarker = 0xFFFFFFFF

// maxManifestGen is the last usable generation; the counter refuses to wrap.
const maxManifestGen = ^uint64(0) - 1

// ErrManifestGenExhausted is returned when the manifest generation counter
// would wrap. At one generation per flush this is unreachable in any real
// deployment; the guard exists so the failure mode is an explicit error, not
// a silent generation collision that recovery would misorder.
var ErrManifestGenExhausted = errors.New("lsm: manifest generation counter exhausted")

const manifestRunLen = 1 + 8 + 12 // level byte + seq + locator

// encodeManifest serializes a v2 manifest: marker, generation, run count,
// then per run a level byte, the sequence number, and the locator — in read
// order (L0 newest first, then ascending levels).
func encodeManifest(gen uint64, runs []runRef) []byte {
	buf := make([]byte, 0, 16+len(runs)*manifestRunLen)
	buf = binary.BigEndian.AppendUint32(buf, manifestMarker)
	buf = binary.BigEndian.AppendUint64(buf, gen)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(runs)))
	for _, r := range runs {
		buf = append(buf, byte(r.level))
		buf = binary.BigEndian.AppendUint64(buf, r.seq)
		buf = append(buf, chunk.EncodeLocator(r.loc)...)
	}
	return buf
}

// decodeManifest parses a metadata record, accepting both layouts: a v2
// manifest yields its generation, a v1 flat run list (pre-compaction
// deployments) yields generation 0 with every run at level 0 — read order is
// identical, and the first leveled compaction rebuilds the level structure.
func decodeManifest(buf []byte) ([]runRef, uint64, error) {
	if len(buf) >= 4 && binary.BigEndian.Uint32(buf[:4]) == manifestMarker {
		if len(buf) < 16 {
			return nil, 0, fmt.Errorf("lsm: short manifest header")
		}
		gen := binary.BigEndian.Uint64(buf[4:12])
		count := int(binary.BigEndian.Uint32(buf[12:16]))
		rest := buf[16:]
		if count < 0 || count*manifestRunLen > len(rest) {
			return nil, 0, fmt.Errorf("lsm: implausible manifest run count %d", count)
		}
		runs := make([]runRef, 0, count)
		for i := 0; i < count; i++ {
			level := int(rest[0])
			if level > MaxLevels {
				return nil, 0, fmt.Errorf("lsm: manifest run level %d exceeds MaxLevels %d", level, MaxLevels)
			}
			seq := binary.BigEndian.Uint64(rest[1:9])
			loc, r2, err := chunk.DecodeLocator(rest[9:])
			if err != nil {
				return nil, 0, err
			}
			rest = r2
			runs = append(runs, runRef{seq: seq, loc: loc, level: level})
		}
		return runs, gen, nil
	}
	runs, err := decodeRunList(buf)
	return runs, 0, err
}

// stageManifestLocked bumps the manifest generation and enqueues the record
// for the current run list, ordered after waits. It requires t.mu held: the
// run-list snapshot and the record's metadata-slot generation must not
// interleave with a concurrent flush, compaction, or relocation, or a
// higher-generation record could carry an older run list.
func (t *Tree) stageManifestLocked(waits ...*dep.Dependency) (*dep.Dependency, error) {
	if t.manifestGen >= maxManifestGen {
		return nil, ErrManifestGenExhausted
	}
	t.manifestGen++
	return t.ms.WriteRecord(encodeManifest(t.manifestGen, t.runs), waits...)
}

// ManifestGen returns the current manifest generation.
func (t *Tree) ManifestGen() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.manifestGen
}

// SetManifestGenForTest forces the generation counter, for wraparound tests.
func (t *Tree) SetManifestGenForTest(gen uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.manifestGen = gen
}

package lsm_test

// The tree tests in this file run against the reference chunk store and
// metadata mocks — exactly the §3.2 pattern: reference models double as mock
// implementations for unit tests. The conformance harness covers the tree
// over the real chunk store.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"shardstore/internal/chunk"
	"shardstore/internal/dep"
	"shardstore/internal/faults"
	"shardstore/internal/lsm"
	"shardstore/internal/model"
)

func newMockTree(t *testing.T, bugs *faults.Set) (*lsm.Tree, *model.RefChunkStore, *model.RefMetaStore) {
	t.Helper()
	cs := model.NewRefChunkStore(bugs)
	ms := model.NewRefMetaStore()
	tree, err := lsm.NewTree(cs, ms, model.ResolvedFutures{}, lsm.Config{MaxRuns: 4}, nil, bugs)
	if err != nil {
		t.Fatal(err)
	}
	return tree, cs, ms
}

func TestTreePutGetDelete(t *testing.T) {
	tree, _, _ := newMockTree(t, nil)
	if _, err := tree.Put("a", []byte{1}); err != nil {
		t.Fatal(err)
	}
	v, err := tree.Get("a")
	if err != nil || v[0] != 1 {
		t.Fatalf("get: %v %v", v, err)
	}
	if _, err := tree.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Get("a"); !errors.Is(err, lsm.ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
}

func TestTreeFlushMovesMemtableToRun(t *testing.T) {
	tree, _, _ := newMockTree(t, nil)
	for i := 0; i < 5; i++ {
		_, _ = tree.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if tree.MemLen() != 5 {
		t.Fatalf("memtable %d", tree.MemLen())
	}
	if _, err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	if tree.MemLen() != 0 || tree.RunCount() != 1 {
		t.Fatalf("after flush: mem=%d runs=%d", tree.MemLen(), tree.RunCount())
	}
	for i := 0; i < 5; i++ {
		v, err := tree.Get(fmt.Sprintf("k%d", i))
		if err != nil || v[0] != byte(i) {
			t.Fatalf("k%d after flush: %v %v", i, v, err)
		}
	}
}

func TestTreeNewestRunWins(t *testing.T) {
	tree, _, _ := newMockTree(t, nil)
	_, _ = tree.Put("k", []byte{1})
	_, _ = tree.Flush()
	_, _ = tree.Put("k", []byte{2})
	_, _ = tree.Flush()
	v, err := tree.Get("k")
	if err != nil || v[0] != 2 {
		t.Fatalf("overwrite across runs: %v %v", v, err)
	}
}

func TestTreeTombstoneShadowsOlderRuns(t *testing.T) {
	tree, _, _ := newMockTree(t, nil)
	_, _ = tree.Put("k", []byte{1})
	_, _ = tree.Flush()
	_, _ = tree.Delete("k")
	_, _ = tree.Flush()
	if _, err := tree.Get("k"); !errors.Is(err, lsm.ErrNotFound) {
		t.Fatalf("tombstone not honored: %v", err)
	}
	keys, _ := tree.Keys()
	if len(keys) != 0 {
		t.Fatalf("keys: %v", keys)
	}
}

func TestTreeCompactMergesAndDropsTombstones(t *testing.T) {
	tree, _, _ := newMockTree(t, nil)
	for i := 0; i < 4; i++ {
		_, _ = tree.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
		_, _ = tree.Flush()
	}
	_, _ = tree.Delete("k0")
	_, _ = tree.Flush()
	if err := tree.Compact(); err != nil {
		t.Fatal(err)
	}
	if tree.RunCount() != 1 {
		t.Fatalf("runs after compact: %d", tree.RunCount())
	}
	if _, err := tree.Get("k0"); !errors.Is(err, lsm.ErrNotFound) {
		t.Fatal("deleted key resurrected by compaction")
	}
	for i := 1; i < 4; i++ {
		if _, err := tree.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("k%d lost in compaction: %v", i, err)
		}
	}
}

func TestTreeAutoCompactsAtMaxRuns(t *testing.T) {
	tree, _, _ := newMockTree(t, nil) // MaxRuns = 4
	for i := 0; i < 10; i++ {
		_, _ = tree.Put(fmt.Sprintf("k%d", i%3), []byte{byte(i)})
		if _, err := tree.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if tree.RunCount() > 5 {
		t.Fatalf("auto-compaction did not bound runs: %d", tree.RunCount())
	}
}

func TestTreeRecoverFromMetadata(t *testing.T) {
	bugs := faults.NewSet()
	cs := model.NewRefChunkStore(bugs)
	ms := model.NewRefMetaStore()
	tree, _ := lsm.NewTree(cs, ms, model.ResolvedFutures{}, lsm.Config{}, nil, bugs)
	_, _ = tree.Put("persist", []byte("me"))
	_, _ = tree.Flush()

	tree2, err := lsm.NewTree(cs, ms, model.ResolvedFutures{}, lsm.Config{}, nil, bugs)
	if err != nil {
		t.Fatal(err)
	}
	v, err := tree2.Get("persist")
	if err != nil || !bytes.Equal(v, []byte("me")) {
		t.Fatalf("recovered tree: %v %v", v, err)
	}
	if tree2.RunCount() != 1 {
		t.Fatalf("recovered runs: %d", tree2.RunCount())
	}
}

func TestTreeKeysMergesAllSources(t *testing.T) {
	tree, _, _ := newMockTree(t, nil)
	_, _ = tree.Put("a", []byte{1})
	_, _ = tree.Flush()
	_, _ = tree.Put("b", []byte{2})
	_, _ = tree.Delete("a")
	keys, err := tree.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "b" {
		t.Fatalf("keys: %v", keys)
	}
}

func TestRunResolverLivenessAndRelocation(t *testing.T) {
	tree, cs, _ := newMockTree(t, nil)
	_, _ = tree.Put("k", []byte{1})
	_, _ = tree.Flush()
	locs := tree.RunLocs()
	if len(locs) != 1 {
		t.Fatalf("runs: %v", locs)
	}
	r := lsm.RunResolver{Tree: tree}
	if !r.ChunkLive("run-0000000000000000", locs[0]) {
		t.Fatal("current run not live")
	}
	// Relocate: copy the run to a new mock chunk.
	payload, _ := cs.Get(locs[0])
	newLoc, _, rel, _ := cs.Put(chunk.TagIndexRun, "run", payload)
	rel()
	relocated, d, err := r.RelocateChunk("run-0000000000000000", locs[0], newLoc, dep.Resolved())
	if err != nil || !relocated || d == nil {
		t.Fatalf("relocate: %v %v", relocated, err)
	}
	if tree.RunLocs()[0] != newLoc {
		t.Fatal("run list not updated")
	}
	if r.ChunkLive("x", locs[0]) {
		t.Fatal("old locator still live")
	}
	if v, err := tree.Get("k"); err != nil || v[0] != 1 {
		t.Fatalf("after relocation: %v %v", v, err)
	}
	// Relocating an unknown locator is a no-op.
	relocated, _, err = r.RelocateChunk("x", locs[0], newLoc, dep.Resolved())
	if err != nil || relocated {
		t.Fatalf("stale relocate: %v %v", relocated, err)
	}
}

func TestBug3ShutdownSkipsMetadata(t *testing.T) {
	bugs := faults.NewSet(faults.Bug3ShutdownMetadataSkip)
	cs := model.NewRefChunkStore(bugs)
	ms := model.NewRefMetaStore()
	tree, _ := lsm.NewTree(cs, ms, model.ResolvedFutures{}, lsm.Config{ResetHappened: func() bool { return true }}, nil, bugs)
	_, _ = tree.Put("k", []byte{9})
	if _, err := tree.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Recovery sees the stale metadata: the flushed run is forgotten.
	tree2, _ := lsm.NewTree(cs, ms, model.ResolvedFutures{}, lsm.Config{}, nil, bugs)
	if _, err := tree2.Get("k"); !errors.Is(err, lsm.ErrNotFound) {
		t.Fatalf("bug3 should lose the entry: %v", err)
	}
}

func TestBug15LocatorReuseCorruptsRunCache(t *testing.T) {
	bugs := faults.NewSet(faults.Bug15RefModelLocatorReuse)
	tree, cs, _ := newMockTree(t, bugs)
	_, _ = tree.Put("x", []byte{1})
	_, _ = tree.Flush()
	cs.Reclaim() // bug: rewinds the locator counter
	_, _ = tree.Put("x", []byte{2})
	_, _ = tree.Flush() // new run reuses the first run's locator
	v, err := tree.Get("x")
	if err == nil && len(v) == 1 && v[0] == 2 {
		t.Skip("layout did not reproduce the collision")
	}
	// Either a stale value or a decode error demonstrates the model bug.
}

func TestIndexInterfaceConformance(t *testing.T) {
	// Both the production tree and the reference index implement lsm.Index,
	// which is what lets the model double as a mock (§3.2).
	var impl lsm.Index
	tree, _, _ := newMockTree(t, nil)
	impl = tree
	if _, err := impl.Put("k", []byte{1}); err != nil {
		t.Fatal(err)
	}
	impl = model.NewRefIndex()
	if _, err := impl.Put("k", []byte{1}); err != nil {
		t.Fatal(err)
	}
}

package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"shardstore/internal/coverage"
	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/vsync"
)

// MetaStore persists the tree's metadata record — the list of chunk locators
// currently backing the tree (§2.1: "the LSM tree's metadata structure,
// stored on disk in a reserved metadata extent, records locators of chunks
// currently in use by the tree").
type MetaStore interface {
	// WriteRecord durably replaces the metadata with payload, ordered after
	// waits. The returned dependency covers the record write.
	WriteRecord(payload []byte, waits ...*dep.Dependency) (*dep.Dependency, error)
	// ReadLatest returns the most recent durable metadata payload, or nil if
	// none was ever written.
	ReadLatest() ([]byte, error)
	// LastDep returns the dependency of the newest metadata record. Because
	// record writes are chained, its persistence implies every earlier
	// record (and, transitively, every run those records reference) is
	// durable.
	LastDep() *dep.Dependency
}

// metaMagic marks LSM metadata records on disk.
const metaMagic uint32 = 0x4C534D31 // "LSM1"

const metaHeaderLen = 4 + 8 + 4 // magic, gen, payload length
const metaTrailerLen = 4        // crc

// ErrMetaTooLarge is returned when a metadata record does not fit a slot.
var ErrMetaTooLarge = errors.New("lsm: metadata record exceeds slot size")

// ExtentMetaStore writes generation-tagged, CRC-protected records into
// fixed-size page-aligned slots on the reserved metadata extent, cycling
// through the slots. Recovery scans every slot and adopts the
// highest-generation valid record, so a torn record write simply loses that
// write, never the previous metadata — the same discipline the superblock
// uses.
type ExtentMetaStore struct {
	mu       vsync.Mutex
	sched    *dep.Scheduler
	ext      disk.ExtentID
	slotSize int
	slots    int
	nextSlot int
	gen      uint64
	cov      *coverage.Registry
	// lastRec chains record writes so at most one is in flight; see the
	// superblock's identical discipline for why (a torn slot reuse must not
	// be able to destroy the newest durable record).
	lastRec *dep.Dependency
}

// NewExtentMetaStore creates a metadata store on ext. maxPayload bounds the
// record payload; it determines the slot size.
func NewExtentMetaStore(sched *dep.Scheduler, ext disk.ExtentID, maxPayload int, cov *coverage.Registry) (*ExtentMetaStore, error) {
	cfg := sched.Disk().Config()
	raw := metaHeaderLen + maxPayload + metaTrailerLen
	ps := cfg.PageSize
	slotSize := (raw + ps - 1) / ps * ps
	slots := cfg.ExtentBytes() / slotSize
	if slots < 2 {
		return nil, fmt.Errorf("lsm: metadata extent too small: %d slots of %d bytes", slots, slotSize)
	}
	m := &ExtentMetaStore{sched: sched, ext: ext, slotSize: slotSize, slots: slots, cov: cov}
	// Adopt the generation and slot cursor from any existing records so a
	// recovered store keeps ascending generations.
	if err := m.recoverCursor(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *ExtentMetaStore) recoverCursor() error {
	buf := make([]byte, m.slotSize)
	bestSlot := -1
	for slot := 0; slot < m.slots; slot++ {
		if err := m.sched.Disk().ReadAt(m.ext, slot*m.slotSize, buf); err != nil {
			return fmt.Errorf("lsm: metadata cursor scan: %w", err)
		}
		gen, _, ok := decodeMetaRecord(buf)
		if ok && gen > m.gen {
			m.gen = gen
			bestSlot = slot
		}
	}
	if bestSlot >= 0 {
		m.nextSlot = (bestSlot + 1) % m.slots
	}
	return nil
}

// WriteRecord implements MetaStore.
func (m *ExtentMetaStore) WriteRecord(payload []byte, waits ...*dep.Dependency) (*dep.Dependency, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	raw := make([]byte, 0, metaHeaderLen+len(payload)+metaTrailerLen)
	m.gen++
	raw = binary.BigEndian.AppendUint32(raw, metaMagic)
	raw = binary.BigEndian.AppendUint64(raw, m.gen)
	raw = binary.BigEndian.AppendUint32(raw, uint32(len(payload)))
	raw = append(raw, payload...)
	raw = binary.BigEndian.AppendUint32(raw, crc32.ChecksumIEEE(raw))
	if len(raw) > m.slotSize {
		return nil, fmt.Errorf("%w: %d > %d", ErrMetaTooLarge, len(raw), m.slotSize)
	}
	rec := make([]byte, m.slotSize)
	copy(rec, raw)
	off := m.nextSlot * m.slotSize
	m.nextSlot = (m.nextSlot + 1) % m.slots
	allWaits := append([]*dep.Dependency(nil), waits...)
	if m.lastRec != nil && !m.lastRec.IsPersistent() {
		allWaits = append(allWaits, m.lastRec)
	}
	d := m.sched.WriteOwned("LSM-tree metadata", m.ext, off, rec, allWaits...)
	m.lastRec = d
	m.cov.Hit("lsm.meta.write")
	return d, nil
}

// LastDep implements MetaStore.
func (m *ExtentMetaStore) LastDep() *dep.Dependency {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lastRec == nil {
		return dep.Resolved()
	}
	return m.lastRec
}

// ReadLatest implements MetaStore.
func (m *ExtentMetaStore) ReadLatest() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf := make([]byte, m.slotSize)
	var best []byte
	var bestGen uint64
	for slot := 0; slot < m.slots; slot++ {
		if err := m.sched.Disk().ReadAt(m.ext, slot*m.slotSize, buf); err != nil {
			return nil, fmt.Errorf("lsm: metadata scan: %w", err)
		}
		gen, payload, ok := decodeMetaRecord(buf)
		if !ok {
			continue
		}
		if best == nil || gen > bestGen {
			bestGen = gen
			best = append([]byte(nil), payload...)
		}
	}
	return best, nil
}

func decodeMetaRecord(buf []byte) (gen uint64, payload []byte, ok bool) {
	if len(buf) < metaHeaderLen+metaTrailerLen {
		return 0, nil, false
	}
	if binary.BigEndian.Uint32(buf[0:4]) != metaMagic {
		return 0, nil, false
	}
	gen = binary.BigEndian.Uint64(buf[4:12])
	plen := int(binary.BigEndian.Uint32(buf[12:16]))
	if plen < 0 || metaHeaderLen+plen+metaTrailerLen > len(buf) {
		return 0, nil, false
	}
	body := buf[:metaHeaderLen+plen]
	want := binary.BigEndian.Uint32(buf[metaHeaderLen+plen : metaHeaderLen+plen+4])
	if crc32.ChecksumIEEE(body) != want {
		return 0, nil, false
	}
	return gen, buf[metaHeaderLen : metaHeaderLen+plen], true
}

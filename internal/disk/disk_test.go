package disk

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func newTestDisk(t *testing.T) *Disk {
	t.Helper()
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newTestDisk(t)
	data := []byte("hello, disk")
	if err := d.WriteAt(3, 17, data); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	buf := make([]byte, len(data))
	if err := d.ReadAt(3, 17, buf); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read %q, want %q", buf, data)
	}
}

func TestReadSeesUnsyncedWrites(t *testing.T) {
	d := newTestDisk(t)
	if err := d.WriteAt(0, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if err := d.ReadAt(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[2] != 3 {
		t.Fatalf("cache not visible to reads: %v", buf)
	}
}

func TestCrashLosesUnsyncedData(t *testing.T) {
	d := newTestDisk(t)
	// Deterministically lose everything by crashing many times until clean,
	// then verify zeroes. Use CrashKeep for determinism instead.
	if err := d.WriteAt(1, 0, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	kept, lost := d.CrashKeep(func(PageAddr) bool { return false })
	if len(kept) != 0 || len(lost) != 1 {
		t.Fatalf("kept=%v lost=%v", kept, lost)
	}
	buf := make([]byte, 2)
	if err := d.ReadAt(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 || buf[1] != 0 {
		t.Fatalf("lost write still visible: %v", buf)
	}
}

func TestSyncMakesDataDurable(t *testing.T) {
	d := newTestDisk(t)
	if err := d.WriteAt(1, 0, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.CrashKeep(func(PageAddr) bool { return false })
	buf := make([]byte, 1)
	if err := d.ReadAt(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAA {
		t.Fatalf("synced data lost: %v", buf)
	}
}

func TestCrashTearsAtPageGranularity(t *testing.T) {
	d := newTestDisk(t)
	ps := d.Config().PageSize
	data := make([]byte, 3*ps)
	for i := range data {
		data[i] = byte(i%255 + 1)
	}
	if err := d.WriteAt(2, 0, data); err != nil {
		t.Fatal(err)
	}
	// Keep only the middle page.
	d.CrashKeep(func(a PageAddr) bool { return a.Page == 1 })
	buf := make([]byte, 3*ps)
	if err := d.ReadAt(2, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatal("page 0 should be lost")
	}
	if !bytes.Equal(buf[ps:2*ps], data[ps:2*ps]) {
		t.Fatal("page 1 should survive")
	}
	if buf[2*ps] != 0 {
		t.Fatal("page 2 should be lost")
	}
}

func TestLostPagesRevertToPreviousDurableContent(t *testing.T) {
	d := newTestDisk(t)
	if err := d.WriteAt(0, 0, []byte{0x11}); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(0, 0, []byte{0x22}); err != nil {
		t.Fatal(err)
	}
	d.CrashKeep(func(PageAddr) bool { return false })
	buf := make([]byte, 1)
	if err := d.ReadAt(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x11 {
		t.Fatalf("lost page did not revert to durable content: %x", buf[0])
	}
}

func TestBoundsChecks(t *testing.T) {
	d := newTestDisk(t)
	cfg := d.Config()
	if err := d.WriteAt(ExtentID(cfg.ExtentCount), 0, []byte{1}); !errors.Is(err, ErrBadExtent) {
		t.Fatalf("bad extent: %v", err)
	}
	if err := d.WriteAt(0, cfg.ExtentBytes()-1, []byte{1, 2}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overflow: %v", err)
	}
	if err := d.WriteAt(0, -1, []byte{1}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative offset: %v", err)
	}
	if err := d.ReadAt(0, 0, nil); !errors.Is(err, ErrShortRequest) {
		t.Fatalf("zero read: %v", err)
	}
}

func TestInjectFailOnce(t *testing.T) {
	d := newTestDisk(t)
	d.InjectFailOnce(4)
	buf := make([]byte, 1)
	if err := d.ReadAt(4, 0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("first IO should fail: %v", err)
	}
	if err := d.ReadAt(4, 0, buf); err != nil {
		t.Fatalf("second IO should succeed: %v", err)
	}
	// Other extents unaffected.
	d.InjectFailOnce(5)
	if err := d.ReadAt(6, 0, buf); err != nil {
		t.Fatalf("unrelated extent affected: %v", err)
	}
}

func TestInjectFailPermanent(t *testing.T) {
	d := newTestDisk(t)
	d.InjectFailPermanent(2)
	buf := make([]byte, 1)
	for i := 0; i < 3; i++ {
		if err := d.WriteAt(2, 0, buf); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d should fail: %v", i, err)
		}
	}
	d.ClearFailures()
	if err := d.WriteAt(2, 0, buf); err != nil {
		t.Fatalf("after clear: %v", err)
	}
}

func TestCrashClearsTransientFaultsKeepsPermanent(t *testing.T) {
	d := newTestDisk(t)
	d.InjectFailOnce(1)
	d.InjectFailPermanent(2)
	d.Crash(rand.New(rand.NewSource(1)))
	buf := make([]byte, 1)
	if err := d.ReadAt(1, 0, buf); err != nil {
		t.Fatalf("transient fault survived crash: %v", err)
	}
	if err := d.ReadAt(2, 0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("permanent fault lost in crash: %v", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := newTestDisk(t)
	if err := d.WriteAt(0, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(0, 1, []byte{2}); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if err := d.WriteAt(0, 2, []byte{3}); err != nil {
		t.Fatal(err)
	}
	d.CrashKeep(func(PageAddr) bool { return true })
	d.Restore(snap)
	buf := make([]byte, 3)
	if err := d.ReadAt(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 0 {
		t.Fatalf("restore mismatch: %v", buf)
	}
	if d.DirtyPageCount() != 1 {
		t.Fatalf("dirty pages after restore: %d", d.DirtyPageCount())
	}
}

func TestDirtyPagesOrdering(t *testing.T) {
	d := newTestDisk(t)
	ps := d.Config().PageSize
	_ = d.WriteAt(5, 2*ps, []byte{1})
	_ = d.WriteAt(4, 0, []byte{1})
	_ = d.WriteAt(5, 0, []byte{1})
	dirty := d.DirtyPages()
	want := []PageAddr{{5, 2}, {4, 0}, {5, 0}}
	if len(dirty) != len(want) {
		t.Fatalf("dirty=%v", dirty)
	}
	for i := range want {
		if dirty[i] != want[i] {
			t.Fatalf("dirty order %v, want %v", dirty, want)
		}
	}
}

func TestCrashIsDeterministicForSeed(t *testing.T) {
	run := func() ([]PageAddr, []PageAddr) {
		d := newTestDisk(t)
		for i := 0; i < 8; i++ {
			_ = d.WriteAt(ExtentID(i%4), (i/4)*d.Config().PageSize, []byte{byte(i)})
		}
		return d.Crash(rand.New(rand.NewSource(42)))
	}
	k1, l1 := run()
	k2, l2 := run()
	if len(k1) != len(k2) || len(l1) != len(l2) {
		t.Fatalf("crash nondeterministic: %v/%v vs %v/%v", k1, l1, k2, l2)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("kept mismatch at %d", i)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	d := newTestDisk(t)
	_ = d.WriteAt(0, 0, make([]byte, 100))
	_ = d.ReadAt(0, 0, make([]byte, 50))
	_ = d.Sync()
	s := d.Stats()
	if s.Writes != 1 || s.Reads != 1 || s.Syncs != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.BytesWritten != 100 || s.BytesRead != 50 {
		t.Fatalf("byte counters: %+v", s)
	}
}

func TestClosedDiskRejectsIO(t *testing.T) {
	d := newTestDisk(t)
	d.Close()
	if err := d.WriteAt(0, 0, []byte{1}); !errors.Is(err, ErrClosedDisk) {
		t.Fatalf("write after close: %v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrClosedDisk) {
		t.Fatalf("sync after close: %v", err)
	}
}

func TestInvalidGeometry(t *testing.T) {
	if _, err := New(Config{PageSize: 0, PagesPerExtent: 1, ExtentCount: 1}); err == nil {
		t.Fatal("zero page size accepted")
	}
	if _, err := New(Config{PageSize: 8, PagesPerExtent: -1, ExtentCount: 1}); err == nil {
		t.Fatal("negative extent length accepted")
	}
}

// TestCrashSubsetProperty: property-based check that any crash keeps a disk
// state where every page is either the pre-crash durable content or the
// written content — never a mix within one page.
func TestCrashSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		d := newTestDisk(t)
		ps := d.Config().PageSize
		// Durable base: page of 0x0F.
		base := bytes.Repeat([]byte{0x0F}, ps)
		_ = d.WriteAt(0, 0, base)
		_ = d.Sync()
		// Unsynced overwrite: page of 0xF0.
		over := bytes.Repeat([]byte{0xF0}, ps)
		_ = d.WriteAt(0, 0, over)
		d.Crash(rng)
		buf := make([]byte, ps)
		if err := d.ReadAt(0, 0, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, base) && !bytes.Equal(buf, over) {
			t.Fatalf("trial %d: torn page within page boundary: %x", trial, buf[:8])
		}
	}
}

func TestDurableEqual(t *testing.T) {
	a := newTestDisk(t)
	b := newTestDisk(t)
	if !DurableEqual(a, b) {
		t.Fatal("fresh disks should be equal")
	}
	_ = a.WriteAt(0, 0, []byte{9})
	if !DurableEqual(a, b) {
		t.Fatal("unsynced write should not affect durable equality")
	}
	_ = a.Sync()
	if DurableEqual(a, b) {
		t.Fatal("synced write should differ")
	}
}

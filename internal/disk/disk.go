// Package disk implements the in-memory user-space disk that backs the
// storage node during validation and examples.
//
// The paper's property-based tests run the entire ShardStore stack above an
// in-memory disk for determinism and speed (§4.1): "the implementation under
// test uses an in-memory user-space disk, but all components above the disk
// layer use their actual implementation code". This package is that disk.
//
// The disk is an array of extents, each a contiguous run of fixed-size pages.
// Writes land in a volatile write cache at page granularity; an explicit Sync
// makes cached pages durable. A crash (§5) discards an arbitrary subset of
// the cached-but-unsynced page writes — each lost page reverts to its
// previous durable content, which is exactly the behavior that makes the
// paper's bug #10 (magic-byte collision with stale data) reachable.
//
// The disk also supports the environmental failure injection of §4.4:
// transient (fail-once) and permanent IO errors, scoped per extent.
package disk

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"shardstore/internal/coverage"
	"shardstore/internal/faults"
	"shardstore/internal/obs"
	"shardstore/internal/vsync"
)

// Common IO errors returned by the disk. Injected failures wrap ErrInjected
// so harnesses can distinguish environment faults from logic errors.
var (
	ErrInjected     = errors.New("disk: injected IO failure")
	ErrOutOfRange   = errors.New("disk: IO beyond extent bounds")
	ErrBadExtent    = errors.New("disk: no such extent")
	ErrClosedDisk   = errors.New("disk: disk is closed")
	ErrShortRequest = errors.New("disk: zero-length IO")
)

// ExtentID names one extent on a disk. Extent 0 is reserved for the
// superblock by the layers above; the disk itself treats all extents alike.
type ExtentID uint32

// PageAddr identifies one page on the disk.
type PageAddr struct {
	Extent ExtentID
	Page   int
}

func (a PageAddr) String() string { return fmt.Sprintf("e%d/p%d", a.Extent, a.Page) }

// Config sizes a disk.
type Config struct {
	// PageSize is the crash and IO-failure granularity in bytes.
	PageSize int
	// PagesPerExtent is the extent length in pages.
	PagesPerExtent int
	// ExtentCount is the number of extents.
	ExtentCount int
	// Coverage optionally records probe hits.
	Coverage *coverage.Registry
	// Faults gates environmental fault injection that must stay inert on
	// clean runs (currently FaultSilentCorruption for CorruptPage). A nil
	// set disables all of it.
	Faults *faults.Set
	// Obs is the observability layer (metrics + optional tracing). A nil Obs
	// gives the disk a private registry so Stats keeps working standalone.
	Obs *obs.Obs
}

// DefaultConfig returns the small geometry used throughout the validation
// harnesses: pages are deliberately tiny so that interesting multi-page
// layouts (chunks spilling onto a second page, §5) arise from small inputs.
func DefaultConfig() Config {
	return Config{PageSize: 128, PagesPerExtent: 16, ExtentCount: 32}
}

// ExtentBytes returns the extent capacity in bytes.
func (c Config) ExtentBytes() int { return c.PageSize * c.PagesPerExtent }

func (c Config) validate() error {
	if c.PageSize <= 0 || c.PagesPerExtent <= 0 || c.ExtentCount <= 0 {
		return fmt.Errorf("disk: invalid geometry %+v", c)
	}
	return nil
}

// Stats counts disk activity. It is a thin snapshot of the disk's obs
// registry counters (see internal/obs); the disk keeps no counter state of
// its own.
type Stats struct {
	Reads        uint64
	Writes       uint64
	Syncs        uint64
	BytesRead    uint64
	BytesWritten uint64
	Crashes      uint64
	InjectedErrs uint64
	SilentRots   uint64
}

// diskMetrics holds the obs handles, resolved once at construction so the IO
// paths never touch the registry's lock.
type diskMetrics struct {
	reads        *obs.Counter
	writes       *obs.Counter
	syncs        *obs.Counter
	bytesRead    *obs.Counter
	bytesWritten *obs.Counter
	crashes      *obs.Counter
	injectedErrs *obs.Counter
	silentRots   *obs.Counter
	readLat      *obs.Histogram
	writeLat     *obs.Histogram
	syncLat      *obs.Histogram
}

func newDiskMetrics(o *obs.Obs) diskMetrics {
	return diskMetrics{
		reads:        o.Counter("disk.reads"),
		writes:       o.Counter("disk.writes"),
		syncs:        o.Counter("disk.syncs"),
		bytesRead:    o.Counter("disk.bytes_read"),
		bytesWritten: o.Counter("disk.bytes_written"),
		crashes:      o.Counter("disk.crashes"),
		injectedErrs: o.Counter("disk.injected_errs"),
		silentRots:   o.Counter("disk.silent_rots"),
		readLat:      o.Histogram("disk.read_lat"),
		writeLat:     o.Histogram("disk.write_lat"),
		syncLat:      o.Histogram("disk.sync_lat"),
	}
}

// failMode describes injected failures for one extent.
type failMode struct {
	failOnce bool // next IO fails, then clears
	failPerm bool // every IO fails until cleared
}

// Disk is an in-memory disk. All methods are safe for concurrent use and are
// instrumented with vsync so the model checker can interleave IO.
type Disk struct {
	mu  vsync.Mutex
	cfg Config

	closed bool

	// durable holds the persistent content of every extent.
	durable [][]byte

	// cache holds volatile page images written since the last Sync, in
	// insertion order for deterministic crash enumeration.
	cache      map[PageAddr][]byte
	cacheOrder []PageAddr

	failures map[ExtentID]*failMode

	obs *obs.Obs
	met diskMetrics
}

// New creates a zero-filled disk.
func New(cfg Config) (*Disk, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	o := cfg.Obs
	if o == nil {
		o = obs.New(nil)
	}
	d := &Disk{
		cfg:      cfg,
		durable:  make([][]byte, cfg.ExtentCount),
		cache:    make(map[PageAddr][]byte),
		failures: make(map[ExtentID]*failMode),
		obs:      o,
		met:      newDiskMetrics(o),
	}
	for i := range d.durable {
		d.durable[i] = make([]byte, cfg.ExtentBytes())
	}
	return d, nil
}

// Config returns the disk geometry.
func (d *Disk) Config() Config { return d.cfg }

// Stats returns a snapshot of the activity counters (reading the obs
// registry; each field is an atomic load).
func (d *Disk) Stats() Stats {
	return Stats{
		Reads:        d.met.reads.Value(),
		Writes:       d.met.writes.Value(),
		Syncs:        d.met.syncs.Value(),
		BytesRead:    d.met.bytesRead.Value(),
		BytesWritten: d.met.bytesWritten.Value(),
		Crashes:      d.met.crashes.Value(),
		InjectedErrs: d.met.injectedErrs.Value(),
		SilentRots:   d.met.silentRots.Value(),
	}
}

// Obs returns the disk's observability handle.
func (d *Disk) Obs() *obs.Obs { return d.obs }

// Close marks the disk closed; subsequent IO fails.
func (d *Disk) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
}

func (d *Disk) checkRange(ext ExtentID, off, n int) error {
	if d.closed {
		return ErrClosedDisk
	}
	if int(ext) >= d.cfg.ExtentCount {
		return fmt.Errorf("%w: extent %d of %d", ErrBadExtent, ext, d.cfg.ExtentCount)
	}
	if n <= 0 {
		return ErrShortRequest
	}
	if off < 0 || off+n > d.cfg.ExtentBytes() {
		return fmt.Errorf("%w: extent %d [%d,%d) cap %d", ErrOutOfRange, ext, off, off+n, d.cfg.ExtentBytes())
	}
	return nil
}

// checkFailure consumes any injected failure for ext. Caller holds d.mu.
func (d *Disk) checkFailure(ext ExtentID, op string) error {
	fm := d.failures[ext]
	if fm == nil {
		return nil
	}
	if fm.failPerm {
		d.met.injectedErrs.Inc()
		d.cfg.Coverage.Hit("disk.fail.permanent")
		if d.obs.Tracing() {
			d.obs.Record("disk", "fail", fmt.Sprintf("e%d", ext), "permanent:"+op, 0)
		}
		return fmt.Errorf("%w: permanent failure on extent %d during %s", ErrInjected, ext, op)
	}
	if fm.failOnce {
		fm.failOnce = false
		d.met.injectedErrs.Inc()
		d.cfg.Coverage.Hit("disk.fail.transient")
		if d.obs.Tracing() {
			d.obs.Record("disk", "fail", fmt.Sprintf("e%d", ext), "transient:"+op, 0)
		}
		return fmt.Errorf("%w: transient failure on extent %d during %s", ErrInjected, ext, op)
	}
	return nil
}

// InjectFailOnce makes the next IO (read or write) to ext fail.
func (d *Disk) InjectFailOnce(ext ExtentID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fm := d.failures[ext]
	if fm == nil {
		fm = &failMode{}
		d.failures[ext] = fm
	}
	fm.failOnce = true
}

// InjectFailPermanent makes every IO to ext fail until ClearFailures.
func (d *Disk) InjectFailPermanent(ext ExtentID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fm := d.failures[ext]
	if fm == nil {
		fm = &failMode{}
		d.failures[ext] = fm
	}
	fm.failPerm = true
}

// ClearFailures removes all injected failure modes.
func (d *Disk) ClearFailures() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failures = make(map[ExtentID]*failMode)
}

// WriteAt writes data to extent ext at byte offset off. The write lands in
// the volatile cache; it is not durable until Sync (or until a crash happens
// to preserve it). Writes may span pages; each touched page gets a cached
// image so a crash can tear the write at page granularity.
func (d *Disk) WriteAt(ext ExtentID, off int, data []byte) error {
	start := d.obs.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(ext, off, len(data)); err != nil {
		return err
	}
	if err := d.checkFailure(ext, "write"); err != nil {
		return err
	}
	d.met.writes.Inc()
	d.met.bytesWritten.Add(uint64(len(data)))
	defer func() {
		dur := d.obs.Now() - start
		d.met.writeLat.Observe(dur)
		if d.obs.Tracing() {
			d.obs.Record("disk", "write", fmt.Sprintf("e%d+%d:%d", ext, off, len(data)), "ok", dur)
		}
	}()

	ps := d.cfg.PageSize
	for len(data) > 0 {
		page := off / ps
		inPage := off % ps
		n := ps - inPage
		if n > len(data) {
			n = len(data)
		}
		addr := PageAddr{Extent: ext, Page: page}
		img, ok := d.cache[addr]
		if !ok {
			img = make([]byte, ps)
			copy(img, d.durable[ext][page*ps:(page+1)*ps])
			d.cache[addr] = img
			d.cacheOrder = append(d.cacheOrder, addr)
		}
		copy(img[inPage:], data[:n])
		off += n
		data = data[n:]
	}
	return nil
}

// TestHookPreRead, if non-nil, runs at the start of every ReadAt before the
// disk lock is taken. Benchmarks use it to model a device whose reads cost
// real time, so probe-count reductions show up in wall-clock latency. It
// must be set and cleared only while no ReadAt can be running.
var TestHookPreRead func()

// ReadAt reads len(buf) bytes from extent ext at offset off, observing the
// volatile cache (reads see the latest write, synced or not).
func (d *Disk) ReadAt(ext ExtentID, off int, buf []byte) error {
	if TestHookPreRead != nil {
		TestHookPreRead()
	}
	start := d.obs.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(ext, off, len(buf)); err != nil {
		return err
	}
	if err := d.checkFailure(ext, "read"); err != nil {
		return err
	}
	d.met.reads.Inc()
	d.met.bytesRead.Add(uint64(len(buf)))
	defer func() {
		dur := d.obs.Now() - start
		d.met.readLat.Observe(dur)
		if d.obs.Tracing() {
			d.obs.Record("disk", "read", fmt.Sprintf("e%d+%d:%d", ext, off, len(buf)), "ok", dur)
		}
	}()

	ps := d.cfg.PageSize
	pos := 0
	for pos < len(buf) {
		cur := off + pos
		page := cur / ps
		inPage := cur % ps
		n := ps - inPage
		if n > len(buf)-pos {
			n = len(buf) - pos
		}
		if img, ok := d.cache[PageAddr{Extent: ext, Page: page}]; ok {
			copy(buf[pos:pos+n], img[inPage:inPage+n])
		} else {
			copy(buf[pos:pos+n], d.durable[ext][page*ps+inPage:page*ps+inPage+n])
		}
		pos += n
	}
	return nil
}

// TestHookPreSync, if non-nil, runs at the start of every Sync before the
// disk lock is taken. Tests use it to hold a device flush in flight and
// observe what the rest of the stack can do meanwhile (e.g. that scheduler
// reads proceed during a sync). It must be set and cleared only while no
// Sync can be running.
var TestHookPreSync func()

// Sync makes every cached page write durable. It models a full write-cache
// flush (FUA/barrier for everything outstanding).
func (d *Disk) Sync() error {
	if TestHookPreSync != nil {
		TestHookPreSync()
	}
	bg := d.obs.Tracer().Background("disk", "sync")
	start := d.obs.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	defer bg.End()
	if d.closed {
		return ErrClosedDisk
	}
	d.met.syncs.Inc()
	flushed := len(d.cacheOrder)
	d.applyCacheLocked(func(PageAddr) bool { return true })
	dur := d.obs.Now() - start
	d.met.syncLat.Observe(dur)
	if d.obs.Tracing() {
		d.obs.Record("disk", "sync", fmt.Sprintf("%d pages", flushed), "ok", dur)
	}
	return nil
}

// applyCacheLocked moves cached pages for which keep returns true into the
// durable image and discards the rest. Caller holds d.mu.
func (d *Disk) applyCacheLocked(keep func(PageAddr) bool) (kept, lost []PageAddr) {
	ps := d.cfg.PageSize
	for _, addr := range d.cacheOrder {
		img, ok := d.cache[addr]
		if !ok {
			continue
		}
		if keep(addr) {
			copy(d.durable[addr.Extent][addr.Page*ps:(addr.Page+1)*ps], img)
			kept = append(kept, addr)
		} else {
			lost = append(lost, addr)
		}
	}
	d.cache = make(map[PageAddr][]byte)
	d.cacheOrder = nil
	return kept, lost
}

// RotMode selects how CorruptPage mutates a page.
type RotMode int

const (
	// RotFlip flips a seed-chosen set of bits in the page (classic bit rot).
	RotFlip RotMode = iota
	// RotZero zeroes the whole page (a dropped or unmapped sector).
	RotZero
)

func (m RotMode) String() string {
	switch m {
	case RotFlip:
		return "flip"
	case RotZero:
		return "zero"
	default:
		return fmt.Sprintf("RotMode(%d)", int(m))
	}
}

// CorruptPage silently corrupts one durable page: the bytes change but no IO
// error is ever reported — exactly the failure the chunk-frame CRCs exist to
// catch. The mutation is deterministic in (mode, seed). It touches only the
// durable image; a cached (volatile, unsynced) page image is left alone, so a
// later Sync can legitimately overwrite the rot, like a fresh write to a
// rotted sector would.
//
// The whole mechanism is gated on FaultSilentCorruption: unless that switch
// is enabled in cfg.Faults, CorruptPage is a no-op returning false, keeping
// clean runs byte-for-byte identical.
func (d *Disk) CorruptPage(ext ExtentID, page int, mode RotMode, seed int64) bool {
	if !d.cfg.Faults.Enabled(faults.FaultSilentCorruption) {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || int(ext) >= d.cfg.ExtentCount || page < 0 || page >= d.cfg.PagesPerExtent {
		return false
	}
	ps := d.cfg.PageSize
	img := d.durable[ext][page*ps : (page+1)*ps]
	switch mode {
	case RotZero:
		for i := range img {
			img[i] = 0
		}
	default:
		rng := rand.New(rand.NewSource(seed))
		// At least one flipped bit; a few more scattered ones for realism.
		nbits := 1 + rng.Intn(8)
		for i := 0; i < nbits; i++ {
			img[rng.Intn(ps)] ^= 1 << uint(rng.Intn(8))
		}
	}
	d.met.silentRots.Inc()
	d.cfg.Coverage.Hit("disk.rot")
	if d.obs.Tracing() {
		d.obs.Record("disk", "rot", fmt.Sprintf("e%d/p%d", ext, page), mode.String(), 0)
	}
	return true
}

// DirtyPages returns the addresses of cached-but-unsynced pages in write
// order. Used by the exhaustive block-level crash enumerator (§5).
func (d *Disk) DirtyPages() []PageAddr {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]PageAddr, len(d.cacheOrder))
	copy(out, d.cacheOrder)
	return out
}

// Crash simulates a fail-stop crash: each cached-but-unsynced page write
// independently survives with probability 1/2, chosen by rng. Lost pages
// revert to their previous durable content. It returns the surviving and
// lost page addresses. The disk remains usable afterwards (it represents the
// same physical medium across the reboot).
func (d *Disk) Crash(rng *rand.Rand) (kept, lost []PageAddr) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.met.crashes.Inc()
	d.cfg.Coverage.Hit("disk.crash")
	kept, lost = d.applyCacheLocked(func(PageAddr) bool { return rng.Intn(2) == 0 })
	if d.obs.Tracing() {
		d.obs.Record("disk", "crash", "", fmt.Sprintf("kept=%d lost=%d", len(kept), len(lost)), 0)
	}
	// A crash also clears injected transient failures (the process restarts),
	// but permanent media failures persist.
	for ext, fm := range d.failures {
		fm.failOnce = false
		if !fm.failPerm {
			delete(d.failures, ext)
		}
	}
	return kept, lost
}

// CrashKeep is the deterministic variant of Crash used by the exhaustive
// block-level enumerator: keep decides the fate of each dirty page.
func (d *Disk) CrashKeep(keep func(PageAddr) bool) (kept, lost []PageAddr) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.met.crashes.Inc()
	return d.applyCacheLocked(keep)
}

// Snapshot captures the full durable + volatile state of the disk so the
// exhaustive crash enumerator can restore and retry different crash subsets.
type Snapshot struct {
	durable    [][]byte
	cache      map[PageAddr][]byte
	cacheOrder []PageAddr
}

// Snapshot returns a deep copy of the disk state.
func (d *Disk) Snapshot() *Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := &Snapshot{
		durable:    make([][]byte, len(d.durable)),
		cache:      make(map[PageAddr][]byte, len(d.cache)),
		cacheOrder: append([]PageAddr(nil), d.cacheOrder...),
	}
	for i, e := range d.durable {
		s.durable[i] = append([]byte(nil), e...)
	}
	for a, img := range d.cache {
		s.cache[a] = append([]byte(nil), img...)
	}
	return s
}

// Restore resets the disk to a previously captured snapshot.
func (d *Disk) Restore(s *Snapshot) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.durable = make([][]byte, len(s.durable))
	for i, e := range s.durable {
		d.durable[i] = append([]byte(nil), e...)
	}
	d.cache = make(map[PageAddr][]byte, len(s.cache))
	for a, img := range s.cache {
		d.cache[a] = append([]byte(nil), img...)
	}
	d.cacheOrder = append([]PageAddr(nil), s.cacheOrder...)
	d.closed = false
}

// DurableEqual reports whether the durable images of two disks are identical.
// Test helper for crash-state reasoning.
func DurableEqual(a, b *Disk) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(a.durable) != len(b.durable) {
		return false
	}
	for i := range a.durable {
		if string(a.durable[i]) != string(b.durable[i]) {
			return false
		}
	}
	return true
}

// DirtyPageCount returns the number of cached-but-unsynced pages.
func (d *Disk) DirtyPageCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.cacheOrder)
}

// SortPageAddrs orders addresses by (extent, page); helper for stable output.
func SortPageAddrs(addrs []PageAddr) {
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].Extent != addrs[j].Extent {
			return addrs[i].Extent < addrs[j].Extent
		}
		return addrs[i].Page < addrs[j].Page
	})
}

package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"shardstore/internal/disk"
	"shardstore/internal/obs"
)

// newTracedServer builds a server whose Obs carries a span tracer on the
// deterministic logical clock, plus a v2 client with tracing requested.
func newTracedServer(tb testing.TB, disks int, slowThresh uint64) (*Server, *Client) {
	tb.Helper()
	o := obs.New(nil).WithSpans(64, slowThresh)
	srv := NewServer(newTestStores(tb, disks), o)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(srv.Close)
	c, err := Dial(addr)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = c.Close() })
	c.SetTracing(true)
	return srv, c
}

// waitTrace polls the server tracer until pred finds a trace: the server
// finishes a span only after the reply bytes hit the wire, so the trace can
// land moments after the client sees the response.
func waitTrace(tb testing.TB, srv *Server, pred func(obs.ReqTrace) bool) obs.ReqTrace {
	tb.Helper()
	for i := 0; i < 500; i++ {
		traces, _ := srv.tracer.Completed()
		for _, tr := range traces {
			if pred(tr) {
				return tr
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	tb.Fatal("trace never completed on the server")
	return obs.ReqTrace{}
}

// TestTraceFlagRoundTrip: the traced bit travels with the request, the
// server echoes it on the response (the negotiation signal), and the frame's
// request id doubles as the server-side trace id.
func TestTraceFlagRoundTrip(t *testing.T) {
	ctx := context.Background()
	srv, c := newTracedServer(t, 2, 0)

	call := c.submit(&wireReq{op: opPut, key: "shard-1", value: []byte("v")})
	if _, err := call.waitResp(ctx); err != nil {
		t.Fatal(err)
	}
	if call.flags&flagTraced == 0 {
		t.Fatalf("tracing server did not echo the traced flag (flags=%#x)", call.flags)
	}
	tr := waitTrace(t, srv, func(tr obs.ReqTrace) bool { return tr.TraceID == call.id })
	if tr.Op != "put" || tr.Key != "shard-1" {
		t.Fatalf("trace identity: %+v (want op=put key=shard-1 id=%d)", tr, call.id)
	}

	// An untraced request on the same connection: no echo, no trace.
	c.SetTracing(false)
	call = c.submit(&wireReq{op: opGet, key: "shard-1"})
	if _, err := call.waitResp(ctx); err != nil {
		t.Fatal(err)
	}
	if call.flags&flagTraced != 0 {
		t.Fatalf("untraced request got the traced echo (flags=%#x)", call.flags)
	}
	if traces, _ := srv.tracer.Completed(); len(traces) != 1 {
		t.Fatalf("untraced request produced a trace: %d traces", len(traces))
	}
}

// TestTraceFlagAgainstUntracedServer: a client may request tracing from a
// server that has none — the flag is ignored, the echo stays clear, and the
// trace op reports unsupported.
func TestTraceFlagAgainstUntracedServer(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, 2)
	c.SetTracing(true)

	call := c.submit(&wireReq{op: opPut, key: "shard-1", value: []byte("v")})
	if _, err := call.waitResp(ctx); err != nil {
		t.Fatal(err)
	}
	if call.flags&flagTraced != 0 {
		t.Fatalf("tracing-disabled server echoed the traced flag (flags=%#x)", call.flags)
	}
	if _, err := c.Trace(ctx); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("trace op on untraced server: %v, want ErrUnsupported", err)
	}
	if _, err := c.SlowLog(ctx); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("slowlog op on untraced server: %v, want ErrUnsupported", err)
	}
}

// TestV1ShimIgnoresTracing: the legacy JSON protocol has no flags byte, so a
// v1 client against a tracing-enabled server works unchanged and produces no
// spans.
func TestV1ShimIgnoresTracing(t *testing.T) {
	srv, _ := newTracedServer(t, 2, 0)
	c, err := DialV1(srv.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("v1-shard", []byte("legacy")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("v1-shard")
	if err != nil || !bytes.Equal(v, []byte("legacy")) {
		t.Fatalf("v1 get through tracing server: %q %v", v, err)
	}
	if traces, _ := srv.tracer.Completed(); len(traces) != 0 {
		t.Fatalf("v1 requests produced %d traces", len(traces))
	}
	if n := srv.tracer.ActiveCount(); n != 0 {
		t.Fatalf("v1 requests leaked %d active spans", n)
	}
}

// TestDurablePutTraceStageSum is the acceptance check from the issue: a
// durable put through RPC v2 yields a trace whose stages sit inside the
// parent span, sum to at most its duration, and cover the whole path —
// queue wait, store op, the group-commit leader's sync, reply write.
func TestDurablePutTraceStageSum(t *testing.T) {
	ctx := context.Background()
	srv, c := newTracedServer(t, 2, 0)
	if err := c.PutDurable(ctx, "shard-1", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	tr := waitTrace(t, srv, func(tr obs.ReqTrace) bool { return tr.Op == "put" })

	var sum uint64
	names := make(map[string]string)
	for _, st := range tr.Stages {
		if st.Start < tr.Start || st.End > tr.End || st.End < st.Start {
			t.Fatalf("stage outside parent span: %+v not within [%d,%d]", st, tr.Start, tr.End)
		}
		sum += st.Dur()
		names[st.Name] = st.Detail
	}
	if sum > tr.Duration() {
		t.Fatalf("stage durations sum to %d, parent span is only %d:\n%s",
			sum, tr.Duration(), obs.FormatReqTrace(tr, obs.UnitTicks))
	}
	for _, want := range []string{obs.StageQueueWait, "store.put", obs.StageDiskSync, obs.StageReply} {
		if _, ok := names[want]; !ok {
			t.Fatalf("missing stage %q in:\n%s", want, obs.FormatReqTrace(tr, obs.UnitTicks))
		}
	}
	if d := names[obs.StageDiskSync]; !strings.HasPrefix(d, "leader group=") {
		t.Fatalf("disk sync stage lost leader attribution: %q", d)
	}
}

// TestTraceOpsOverRPC: the trace and slowlog ops round-trip the server's
// rings over the wire, including the slow threshold and truncation count.
func TestTraceOpsOverRPC(t *testing.T) {
	ctx := context.Background()
	srv, c := newTracedServer(t, 2, 1) // threshold 1 tick: everything is slow
	const puts = 3
	for i := 0; i < puts; i++ {
		if err := c.Put(ctx, fmt.Sprintf("shard-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	waitTrace(t, srv, func(tr obs.ReqTrace) bool { return tr.Key == fmt.Sprintf("shard-%d", puts-1) })

	d, err := c.Trace(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The trace fetch itself may have completed as a trace by now; require
	// at least the puts, oldest-first.
	if len(d.Traces) < puts {
		t.Fatalf("trace op returned %d traces, want >= %d", len(d.Traces), puts)
	}
	for i := 1; i < len(d.Traces); i++ {
		if d.Traces[i].End < d.Traces[i-1].End {
			t.Fatalf("traces not oldest-first: %d before %d", d.Traces[i-1].End, d.Traces[i].End)
		}
	}
	s, err := c.SlowLog(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Threshold != 1 {
		t.Fatalf("slowlog threshold over the wire: %d, want 1", s.Threshold)
	}
	if len(s.Traces) < puts {
		t.Fatalf("slowlog returned %d traces, want >= %d", len(s.Traces), puts)
	}
	if out := obs.FormatTraceDump(d.Traces, d.Truncated, obs.UnitTicks); !strings.Contains(out, "store.put") {
		t.Fatalf("rendered dump missing store stage:\n%s", out)
	}
}

// TestTraceStageHistogramsOverMetricsOp: per-stage latency histograms reach
// a plain metrics client — the existing op, no new surface.
func TestTraceStageHistogramsOverMetricsOp(t *testing.T) {
	ctx := context.Background()
	srv, c := newTracedServer(t, 2, 0)
	if err := c.PutDurable(ctx, "shard-1", []byte("v")); err != nil {
		t.Fatal(err)
	}
	waitTrace(t, srv, func(tr obs.ReqTrace) bool { return tr.Op == "put" })
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{obs.StageQueueWait, obs.StageDiskSync, obs.StageReply, "sched.barrier_wait_leader"} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Fatalf("stage histogram %q missing from metrics op (have %v)", name, len(snap.Histograms))
		}
	}
}

// TestTraceAttributionStress drives concurrent durable writers against a
// tracing server and logs the slowest attributed request — run with -v to
// capture a real slow-op breakdown (EXPERIMENTS.md).
func TestTraceAttributionStress(t *testing.T) {
	ctx := context.Background()
	// Model a device whose cache flush costs real time — the latency the
	// group-commit barrier exists to amortize and the tracer to attribute.
	disk.TestHookPreSync = func() { time.Sleep(300 * time.Microsecond) }
	defer func() { disk.TestHookPreSync = nil }()
	o := obs.New(obs.NewWallClock()).WithSpans(256, uint64(time.Millisecond))
	srv := NewServer(newWideStores(t, 2), o)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	const writers, perWriter = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			c.SetTracing(true)
			val := bytes.Repeat([]byte{byte(w)}, 1024)
			for i := 0; i < perWriter; i++ {
				if err := c.PutDurable(ctx, fmt.Sprintf("shard-%d-%d", w, i), val); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Let in-flight reply spans finish, then pick the slowest trace.
	var slowest obs.ReqTrace
	for i := 0; i < 100; i++ {
		traces, _ := srv.tracer.Completed()
		for _, tr := range traces {
			if tr.Duration() > slowest.Duration() {
				slowest = tr
			}
		}
		if srv.tracer.ActiveCount() == 0 && slowest.Duration() > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if slowest.Duration() == 0 {
		t.Fatal("stress run produced no traces")
	}
	var staged uint64
	for _, st := range slowest.Stages {
		staged += st.Dur()
	}
	t.Logf("slowest of %d durable puts (%d writers):\n%s", writers*perWriter, writers,
		obs.FormatReqTrace(slowest, obs.UnitNanos))
	t.Logf("attributed %d of %d ns (%.0f%%)", staged, slowest.Duration(),
		100*float64(staged)/float64(slowest.Duration()))
	slow, _ := srv.tracer.Slow()
	t.Logf("slow log retained %d of %d requests over threshold", len(slow), writers*perWriter)
}

package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"shardstore/internal/faults"
	"shardstore/internal/store"
)

// newDurableServer builds a server over stores we keep references to, so
// tests can inspect the backends' disks after durable requests.
func newDurableServer(t *testing.T, disks int) ([]*store.Store, *Client) {
	t.Helper()
	stores := newTestStores(t, disks)
	srv := NewServer(stores)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return stores, c
}

// TestPutDurableFlushes: a flagDurable put must be acknowledged only after
// the backend crossed the commit barrier — observable as at least one
// device flush, where a plain put leaves the scheduler untouched.
func TestPutDurableFlushes(t *testing.T) {
	ctx := context.Background()
	stores, c := newDurableServer(t, 1)
	if err := c.Put(ctx, "plain", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := stores[0].Disk().Stats().Syncs; got != 0 {
		t.Fatalf("plain put forced %d device flushes", got)
	}
	if err := c.PutDurable(ctx, "durable", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := stores[0].Disk().Stats().Syncs; got == 0 {
		t.Fatal("durable put acknowledged without a device flush")
	}
	v, err := c.Get(ctx, "durable")
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("get after durable put: %q %v", v, err)
	}
}

// TestMPutDurable: batched durable puts across several disks succeed
// per-item and every touched backend flushed at least once.
func TestMPutDurable(t *testing.T) {
	ctx := context.Background()
	stores, c := newDurableServer(t, 3)
	var ids []string
	var vals [][]byte
	for i := 0; i < 12; i++ {
		ids = append(ids, fmt.Sprintf("mshard-%02d", i))
		vals = append(vals, []byte(fmt.Sprintf("payload-%02d", i)))
	}
	errs, err := c.MPutDurable(ctx, ids, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("item %d: %v", i, e)
		}
	}
	flushed := 0
	for _, st := range stores {
		if st.Disk().Stats().Syncs > 0 {
			flushed++
		}
	}
	if flushed == 0 {
		t.Fatal("durable mput acknowledged without any device flush")
	}
	for i, id := range ids {
		v, err := c.Get(ctx, id)
		if err != nil || !bytes.Equal(v, vals[i]) {
			t.Fatalf("get %q: %q %v", id, v, err)
		}
	}
}

// TestPutDurableConcurrent hammers the durable plane from several
// goroutines through one client: the commit barrier must group the
// requests without losing or misacknowledging any.
func TestPutDurableConcurrent(t *testing.T) {
	ctx := context.Background()
	_, c := newDurableServer(t, 2)
	const workers, puts = 8, 10
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				key := fmt.Sprintf("cw%d-%d", w, i)
				if err := c.PutDurable(ctx, key, []byte(key)); err != nil {
					errCh <- fmt.Errorf("%s: %w", key, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < puts; i++ {
			key := fmt.Sprintf("cw%d-%d", w, i)
			v, err := c.Get(ctx, key)
			if err != nil || !bytes.Equal(v, []byte(key)) {
				t.Fatalf("get %q: %q %v", key, v, err)
			}
		}
	}
}

// TestPutDurableKVOnlyBackend: a backend without the durableWaiter
// capability must answer CodeUnsupported for durable requests (and keep
// serving plain ones) instead of silently dropping the durability wait.
func TestPutDurableKVOnlyBackend(t *testing.T) {
	ctx := context.Background()
	st, _, err := store.New(store.Config{Seed: 1, Bugs: faults.NewSet()})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerKV([]store.KV{minimalKV{KV: st}})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	if err := c.PutDurable(ctx, "k", []byte("v")); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("durable put on kv-only backend: %v, want ErrUnsupported", err)
	}
	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("plain put must still work: %v", err)
	}
	errs, err := c.MPutDurable(ctx, []string{"a", "b"}, [][]byte{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if !errors.Is(e, ErrUnsupported) {
			t.Fatalf("durable mput item %d on kv-only backend: %v, want ErrUnsupported", i, e)
		}
	}
}

package rpc

import (
	"errors"
	"fmt"

	"shardstore/internal/store"
)

// Code is a stable wire error code (u16 in the v2 status field, a string in
// v1 JSON responses). Codes are the contract: clients match on the sentinel
// errors below with errors.Is, never on message text. See doc.go for the
// meaning of each code.
type Code uint16

// The error-code taxonomy. Values are wire-stable: never renumber.
const (
	CodeOK            Code = 0
	CodeNotFound      Code = 1
	CodeOutOfService  Code = 2
	CodeBadRequest    Code = 3
	CodeInternal      Code = 4
	CodeFrameTooLarge Code = 5
	CodeShutdown      Code = 6
	CodeUnsupported   Code = 7
)

// String returns the v1-compatible snake_case name carried in JSON frames.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeNotFound:
		return "not_found"
	case CodeOutOfService:
		return "out_of_service"
	case CodeBadRequest:
		return "bad_request"
	case CodeInternal:
		return "internal"
	case CodeFrameTooLarge:
		return "frame_too_large"
	case CodeShutdown:
		return "shutdown"
	case CodeUnsupported:
		return "unsupported"
	default:
		return fmt.Sprintf("code_%d", uint16(c))
	}
}

// codeFromString maps a v1 JSON code name back to its Code (for the v1
// client shim talking to a v2 server and vice versa).
func codeFromString(s string) Code {
	switch s {
	case "not_found":
		return CodeNotFound
	case "out_of_service":
		return CodeOutOfService
	case "bad_request":
		return CodeBadRequest
	case "frame_too_large":
		return CodeFrameTooLarge
	case "shutdown":
		return CodeShutdown
	case "unsupported":
		return CodeUnsupported
	default:
		return CodeInternal
	}
}

// Sentinel errors, one per non-OK code. A failed call returns a *WireError
// whose Is method matches the code's sentinel, so callers write
// errors.Is(err, rpc.ErrNotFound) and keep working if the server adds
// detail to the message.
var (
	ErrNotFound      = errors.New("rpc: shard not found")
	ErrOutOfService  = errors.New("rpc: disk out of service")
	ErrBadRequest    = errors.New("rpc: bad request")
	ErrInternal      = errors.New("rpc: internal error")
	ErrFrameTooLarge = errors.New("rpc: frame exceeds MaxFrame")
	ErrShutdown      = errors.New("rpc: server shutting down")
	ErrUnsupported   = errors.New("rpc: operation unsupported by backend")
)

// sentinel returns the package-level sentinel for a code.
func (c Code) sentinel() error {
	switch c {
	case CodeNotFound:
		return ErrNotFound
	case CodeOutOfService:
		return ErrOutOfService
	case CodeBadRequest:
		return ErrBadRequest
	case CodeFrameTooLarge:
		return ErrFrameTooLarge
	case CodeShutdown:
		return ErrShutdown
	case CodeUnsupported:
		return ErrUnsupported
	default:
		return ErrInternal
	}
}

// WireError is a non-OK response surfaced to the caller: the stable code
// plus the server's human-readable message. errors.Is(err, <sentinel>)
// matches by code.
type WireError struct {
	Code Code
	Msg  string
}

func (e *WireError) Error() string {
	if e.Msg == "" {
		return "rpc: " + e.Code.String()
	}
	return "rpc: " + e.Msg
}

// Is matches the sentinel error for e's code.
func (e *WireError) Is(target error) bool { return target == e.Code.sentinel() }

// wireErr builds the error a client returns for a non-OK (code, msg) pair.
func wireErr(code Code, msg string) error {
	if code == CodeOK {
		return nil
	}
	return &WireError{Code: code, Msg: msg}
}

// codeFor classifies a server-side error into its wire code.
func codeFor(err error) Code {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, store.ErrNotFound):
		return CodeNotFound
	case errors.Is(err, store.ErrOutOfService):
		return CodeOutOfService
	case errors.Is(err, ErrFrameTooLarge):
		return CodeFrameTooLarge
	default:
		return CodeInternal
	}
}

package rpc

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame bounds a single request/response frame's payload, enforced on
// BOTH the write and read side (a peer that encodes an oversized frame gets
// ErrFrameTooLarge locally instead of hanging the connection).
const MaxFrame = 16 << 20

// Connection preamble: a v2 client's first four bytes. A v1 client's first
// four bytes are a frame length <= MaxFrame (0x01000000), so its first byte
// is 0x00 or 0x01 and can never collide with 'S'.
var preambleV2 = [4]byte{'S', '2', 'P', 0x02}

// Opcode is a v2 wire operation. Values are wire-stable: never renumber.
type Opcode uint8

const (
	opInvalid     Opcode = 0
	opPut         Opcode = 1
	opGet         Opcode = 2
	opDelete      Opcode = 3
	opList        Opcode = 4
	opBulkCreate  Opcode = 5
	opBulkRemove  Opcode = 6
	opRemoveDisk  Opcode = 7
	opReturnDisk  Opcode = 8
	opFlush       Opcode = 9
	opStats       Opcode = 10
	opScrub       Opcode = 11
	opScrubStatus Opcode = 12
	opMetrics     Opcode = 13
	opMGet        Opcode = 14
	opMPut        Opcode = 15
	opMDelete     Opcode = 16
	opTrace       Opcode = 17
	opSlowLog     Opcode = 18
	opScan        Opcode = 19

	// opMax is the highest assigned opcode (per-op metric handles are
	// resolved for every opcode up to it).
	opMax = opScan
)

// opName maps opcodes to the v1 op strings (metric names, traces, errors).
func opName(op Opcode) string {
	switch op {
	case opPut:
		return "put"
	case opGet:
		return "get"
	case opDelete:
		return "delete"
	case opList:
		return "list"
	case opBulkCreate:
		return "bulk_create"
	case opBulkRemove:
		return "bulk_remove"
	case opRemoveDisk:
		return "remove_disk"
	case opReturnDisk:
		return "return_disk"
	case opFlush:
		return "flush"
	case opStats:
		return "stats"
	case opScrub:
		return "scrub"
	case opScrubStatus:
		return "scrub_status"
	case opMetrics:
		return "metrics"
	case opMGet:
		return "mget"
	case opMPut:
		return "mput"
	case opMDelete:
		return "mdelete"
	case opTrace:
		return "trace"
	case opSlowLog:
		return "slowlog"
	case opScan:
		return "scan"
	default:
		return fmt.Sprintf("op_%d", uint8(op))
	}
}

// v2 frame header layout (16 bytes, big-endian). See doc.go for the full
// wire contract.
const (
	frameMagic   = 0xA7
	frameVersion = 2
	headerSize   = 16
)

// flagDurable marks a put/mput request frame as durability-waiting: the
// server acknowledges only after the mutation's dependency is persistent,
// enrolling in the backend's group-commit barrier. Other bits are reserved
// and ignored.
const flagDurable uint8 = 0x01

// flagTraced on a request asks the server to trace it end-to-end, using the
// frame's request id as the trace id (no extra header bytes). A server with
// tracing enabled echoes the flag on the response so the client learns the
// negotiation outcome; v1 peers have no flags byte and older v2 peers ignore
// reserved bits, so the flag is backward-compatible in both directions.
const flagTraced uint8 = 0x02

// header is one decoded v2 frame header.
type header struct {
	op    Opcode
	flags uint8
	id    uint64
	n     uint32 // payload length
}

func putHeader(buf []byte, h header) {
	buf[0] = frameMagic
	buf[1] = frameVersion
	buf[2] = uint8(h.op)
	buf[3] = h.flags
	binary.BigEndian.PutUint64(buf[4:12], h.id)
	binary.BigEndian.PutUint32(buf[12:16], h.n)
}

func parseHeader(buf []byte) (header, error) {
	if buf[0] != frameMagic || buf[1] != frameVersion {
		return header{}, fmt.Errorf("rpc: bad frame header % x", buf[:2])
	}
	return header{
		op:    Opcode(buf[2]),
		flags: buf[3],
		id:    binary.BigEndian.Uint64(buf[4:12]),
		n:     binary.BigEndian.Uint32(buf[12:16]),
	}, nil
}

// appendFrameV2 appends one encoded v2 frame (header + raw payload) to dst —
// the write-combining form: callers batch several frames into one buffer and
// issue a single Write, collapsing syscalls (and, with TCP_NODELAY, packets)
// under pipelined load. Oversized payloads fail with ErrFrameTooLarge before
// any byte is appended.
func appendFrameV2(dst []byte, op Opcode, flags uint8, id uint64, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrame {
		return dst, fmt.Errorf("%w: payload %d > %d", ErrFrameTooLarge, len(payload), MaxFrame)
	}
	var hb [headerSize]byte
	putHeader(hb[:], header{op: op, flags: flags, id: id, n: uint32(len(payload))})
	dst = append(dst, hb[:]...)
	return append(dst, payload...), nil
}

// writeFrameV2 sends one v2 frame as a single Write so concurrent writers
// never interleave partial frames. Returns the total bytes written.
// Oversized payloads fail with ErrFrameTooLarge before any byte hits the
// wire.
func writeFrameV2(w io.Writer, op Opcode, flags uint8, id uint64, payload []byte) (int, error) {
	buf, err := appendFrameV2(nil, op, flags, id, payload)
	if err != nil {
		return 0, err
	}
	return w.Write(buf)
}

// readFrameV2 receives one v2 frame, enforcing MaxFrame before allocating.
func readFrameV2(r io.Reader) (header, []byte, error) {
	var hb [headerSize]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return header{}, nil, err
	}
	h, err := parseHeader(hb[:])
	if err != nil {
		return header{}, nil, err
	}
	if h.n > MaxFrame {
		return header{}, nil, fmt.Errorf("%w: payload %d > %d", ErrFrameTooLarge, h.n, MaxFrame)
	}
	payload := make([]byte, h.n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return header{}, nil, err
	}
	return h, payload, nil
}

// --- payload codecs ---
//
// Payloads are raw big-endian binary: strings are u16 length + bytes,
// values are u32 length + bytes (raw, never base64). A truncated or
// oversized field decodes to an error, not a panic.

type wireBuf struct{ b []byte }

func (w *wireBuf) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *wireBuf) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }

func (w *wireBuf) str(s string) {
	w.u16(uint16(len(s)))
	w.b = append(w.b, s...)
}

func (w *wireBuf) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}

type wireReader struct{ b []byte }

var errTruncated = fmt.Errorf("rpc: truncated payload")

func (r *wireReader) u16() (uint16, error) {
	if len(r.b) < 2 {
		return 0, errTruncated
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v, nil
}

func (r *wireReader) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, errTruncated
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *wireReader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if len(r.b) < int(n) {
		return "", errTruncated
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

func (r *wireReader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.b)) < uint64(n) {
		return nil, errTruncated
	}
	v := r.b[:n:n]
	r.b = r.b[n:]
	return v, nil
}

// rest consumes the remaining payload (the raw-value tail of put/get).
func (r *wireReader) rest() []byte {
	v := r.b
	r.b = nil
	return v
}

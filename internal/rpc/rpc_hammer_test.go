package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestMetricsOp: the metrics op returns the host-wide merged snapshot — the
// rpc layer's own counters plus every store's registry.
func TestMetricsOp(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, 2)
	for i := 0; i < 10; i++ {
		if err := c.Put(ctx, fmt.Sprintf("m-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(ctx, fmt.Sprintf("m-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Pump both disks so the scheduler's buffered chunk writes actually reach
	// the disk layer (write metrics are recorded at WriteAt, not at staging).
	for i := 0; i < 2; i++ {
		if err := c.Flush(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["store.puts"] != 10 || snap.Counters["store.gets"] != 10 {
		t.Fatalf("store counters: puts=%d gets=%d", snap.Counters["store.puts"], snap.Counters["store.gets"])
	}
	if snap.Counters["rpc.requests"] < 20 {
		t.Fatalf("rpc.requests = %d, want >= 20", snap.Counters["rpc.requests"])
	}
	if snap.Counters["rpc.bytes_in"] == 0 || snap.Counters["rpc.bytes_out"] == 0 {
		t.Fatalf("wire byte counters not recorded: in=%d out=%d",
			snap.Counters["rpc.bytes_in"], snap.Counters["rpc.bytes_out"])
	}
	if h := snap.Histograms["rpc.put_lat"]; h.Count != 10 {
		t.Fatalf("rpc.put_lat count = %d, want 10", h.Count)
	}
	if h := snap.Histograms["rpc.pipeline_depth"]; h.Count == 0 {
		t.Fatal("rpc.pipeline_depth never observed")
	}
	if h := snap.Histograms["disk.write_lat"]; h.Count == 0 {
		t.Fatal("disk.write_lat never observed — disk registry not merged")
	}
}

// TestStatsMetricsHammer drives puts/gets/deletes from several goroutines
// while other goroutines continuously pull stats and metrics snapshots. Run
// under -race by the CI obs leg: any unsynchronized read between the snapshot
// paths and the hot paths shows up here.
func TestStatsMetricsHammer(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, 2)
	addr := srv.ln.Addr().String()

	const writers, readers, opsPer = 4, 3, 40
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer wc.Close()
			for i := 0; i < opsPer; i++ {
				id := fmt.Sprintf("h-%d-%d", w, i%8)
				if err := wc.Put(ctx, id, []byte{byte(i)}); err != nil {
					errs <- err
					return
				}
				if _, err := wc.Get(ctx, id); err != nil && !errors.Is(err, ErrNotFound) {
					errs <- err
					return
				}
				if i%5 == 4 {
					if err := wc.Delete(ctx, id); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rc, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer rc.Close()
			for i := 0; i < opsPer; i++ {
				if _, err := rc.Stats(ctx); err != nil {
					errs <- err
					return
				}
				if _, err := rc.Metrics(ctx); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the dust settles the merged snapshot must be internally
	// consistent: rpc saw every request, and the store-level counters bound
	// the rpc-level ones.
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["store.puts"] != writers*opsPer {
		t.Fatalf("store.puts = %d, want %d", snap.Counters["store.puts"], writers*opsPer)
	}
	if snap.Histograms["store.put_lat"].Count != writers*opsPer {
		t.Fatalf("store.put_lat count = %d, want %d", snap.Histograms["store.put_lat"].Count, writers*opsPer)
	}
}

// TestSharedClientPipelineHammer: the headline v2 concurrency contract — ONE
// client shared by many goroutines, each keeping a deep pipeline in flight.
// Run under -race by the CI rpc leg: the demux loop, the pending map, the
// write mutex, and the server's per-connection worker pool are all exercised
// simultaneously.
func TestSharedClientPipelineHammer(t *testing.T) {
	ctx := context.Background()
	_, c := newWideServer(t, 4)

	const goroutines = 8
	const depth = 64
	const rounds = 4

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Fill the window: depth puts in flight before the first wait.
				calls := make([]*Call, depth)
				for i := range calls {
					id := fmt.Sprintf("hammer-%d-%d", g, i)
					calls[i] = c.GoPut(id, []byte{byte(g), byte(r), byte(i)})
				}
				for i, call := range calls {
					if _, err := call.Wait(ctx); err != nil {
						errs <- fmt.Errorf("g%d r%d put %d: %w", g, r, i, err)
						return
					}
				}
				// Same window shape on the read side, verifying payloads.
				gets := make([]*Call, depth)
				for i := range gets {
					gets[i] = c.GoGet(fmt.Sprintf("hammer-%d-%d", g, i))
				}
				for i, call := range gets {
					v, err := call.Wait(ctx)
					if err != nil {
						errs <- fmt.Errorf("g%d r%d get %d: %w", g, r, i, err)
						return
					}
					want := []byte{byte(g), byte(r), byte(i)}
					if !bytes.Equal(v, want) {
						errs <- fmt.Errorf("g%d r%d get %d: cross-wired response %v != %v", g, r, i, v, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := c.pendingCount(); n != 0 {
		t.Fatalf("pending map not drained after hammer: %d", n)
	}
}

package rpc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestMetricsOp: the metrics op returns the host-wide merged snapshot — the
// rpc layer's own counters plus every store's registry.
func TestMetricsOp(t *testing.T) {
	_, c := newTestServer(t, 2)
	for i := 0; i < 10; i++ {
		if err := c.Put(fmt.Sprintf("m-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(fmt.Sprintf("m-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Pump both disks so the scheduler's buffered chunk writes actually reach
	// the disk layer (write metrics are recorded at WriteAt, not at staging).
	for i := 0; i < 2; i++ {
		if err := c.Flush(i); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["store.puts"] != 10 || snap.Counters["store.gets"] != 10 {
		t.Fatalf("store counters: puts=%d gets=%d", snap.Counters["store.puts"], snap.Counters["store.gets"])
	}
	if snap.Counters["rpc.requests"] < 20 {
		t.Fatalf("rpc.requests = %d, want >= 20", snap.Counters["rpc.requests"])
	}
	if h := snap.Histograms["rpc.put_lat"]; h.Count != 10 {
		t.Fatalf("rpc.put_lat count = %d, want 10", h.Count)
	}
	if h := snap.Histograms["disk.write_lat"]; h.Count == 0 {
		t.Fatal("disk.write_lat never observed — disk registry not merged")
	}
}

// TestStatsMetricsHammer drives puts/gets/deletes from several goroutines
// while other goroutines continuously pull stats and metrics snapshots. Run
// under -race by the CI obs leg: any unsynchronized read between the snapshot
// paths and the hot paths shows up here.
func TestStatsMetricsHammer(t *testing.T) {
	srv, c := newTestServer(t, 2)
	addr := srv.ln.Addr().String()

	const writers, readers, opsPer = 4, 3, 40
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer wc.Close()
			for i := 0; i < opsPer; i++ {
				id := fmt.Sprintf("h-%d-%d", w, i%8)
				if err := wc.Put(id, []byte{byte(i)}); err != nil {
					errs <- err
					return
				}
				if _, err := wc.Get(id); err != nil && !errors.Is(err, ErrNotFound) {
					errs <- err
					return
				}
				if i%5 == 4 {
					if err := wc.Delete(id); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rc, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer rc.Close()
			for i := 0; i < opsPer; i++ {
				if _, err := rc.Stats(); err != nil {
					errs <- err
					return
				}
				if _, err := rc.Metrics(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the dust settles the merged snapshot must be internally
	// consistent: rpc saw every request, and the store-level counters bound
	// the rpc-level ones.
	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["store.puts"] != writers*opsPer {
		t.Fatalf("store.puts = %d, want %d", snap.Counters["store.puts"], writers*opsPer)
	}
	if snap.Histograms["store.put_lat"].Count != writers*opsPer {
		t.Fatalf("store.put_lat count = %d, want %d", snap.Histograms["store.put_lat"].Count, writers*opsPer)
	}
}

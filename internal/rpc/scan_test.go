package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"shardstore/internal/faults"
	"shardstore/internal/store"
)

// newKVOnlyServer serves a bare store.KV backend: no ordered-map, batch,
// durability, scrub, or service-state capabilities.
func newKVOnlyServer(tb testing.TB) *Client {
	tb.Helper()
	st, _, err := store.New(store.Config{Seed: 1, Bugs: faults.NewSet()})
	if err != nil {
		tb.Fatal(err)
	}
	srv := NewServerKV([]store.KV{minimalKV{KV: st}})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(srv.Close)
	c, err := Dial(addr)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = c.Close() })
	return c
}

// TestScanOverRPC: a scan merges every disk's ordered page into one sorted,
// complete range — across memtable and flushed state, shrinking on delete.
func TestScanOverRPC(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, 3)
	want := make(map[string]string)
	for i := 0; i < 30; i++ {
		k, v := fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i)
		if err := c.Put(ctx, k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	// Flush every disk mid-history so the scan spans flushed runs AND the
	// memtable writes that follow.
	for i := range srv.stats().ShardsPer {
		if err := c.Flush(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 30; i < 40; i++ {
		k, v := fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i)
		if err := c.Put(ctx, k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}

	entries, next, err := c.Scan(ctx, "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if next != "" {
		t.Fatalf("full scan truncated, next %q", next)
	}
	if len(entries) != len(want) {
		t.Fatalf("full scan: %d entries, want %d", len(entries), len(want))
	}
	for i, e := range entries {
		if i > 0 && entries[i-1].Key >= e.Key {
			t.Fatalf("scan out of order at %d: %q >= %q", i, entries[i-1].Key, e.Key)
		}
		if want[e.Key] != string(e.Value) {
			t.Fatalf("scan %q = %q, want %q", e.Key, e.Value, want[e.Key])
		}
	}

	sub, _, err := c.Scan(ctx, "k05", "k10", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 5 || sub[0].Key != "k05" || sub[4].Key != "k09" {
		t.Fatalf("sub-range scan: %+v", sub)
	}

	if err := c.Delete(ctx, "k07"); err != nil {
		t.Fatal(err)
	}
	sub, _, err = c.Scan(ctx, "k05", "k10", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sub {
		if e.Key == "k07" {
			t.Fatal("deleted shard still in scan")
		}
	}
	if len(sub) != 4 {
		t.Fatalf("sub-range after delete: %d entries", len(sub))
	}
}

// TestScanContinuationToken: a limited page stops at the limit with a
// resumable token (last key + \x00); walking tokens reassembles the exact
// ordered range with no duplicates or gaps.
func TestScanContinuationToken(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, 3)
	var want []string
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("k%02d", i)
		if err := c.Put(ctx, k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		want = append(want, k)
	}
	sort.Strings(want)

	var got []string
	cursor, pages := "", 0
	for {
		entries, next, err := c.Scan(ctx, cursor, "", 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) > 7 {
			t.Fatalf("page of %d exceeds limit 7", len(entries))
		}
		for _, e := range entries {
			got = append(got, e.Key)
		}
		pages++
		if next == "" {
			break
		}
		if len(entries) > 0 && next != entries[len(entries)-1].Key+"\x00" {
			t.Fatalf("token %q does not resume after %q", next, entries[len(entries)-1].Key)
		}
		cursor = next
		if pages > 30 {
			t.Fatal("scan never exhausted")
		}
	}
	if pages < 5 {
		t.Fatalf("30 keys at limit 7 took %d pages", pages)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("paged scan reassembled %v, want %v", got, want)
	}
}

// TestScanIteratorRefetch: the client-side Iterator refetches pages through
// continuation tokens transparently — callers see one seamless cursor.
func TestScanIteratorRefetch(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, 3)
	want := make(map[string]byte)
	for i := 0; i < 41; i++ {
		k := fmt.Sprintf("s%03d", i)
		if err := c.Put(ctx, k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		want[k] = byte(i)
	}
	it := c.Iterator(ctx, "", "", 5)
	var keys []string
	for it.Next() {
		e := it.Entry()
		if want[e.Key] != e.Value[0] {
			t.Fatalf("iterator %q = %v", e.Key, e.Value)
		}
		keys = append(keys, e.Key)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(want) {
		t.Fatalf("iterator walked %d keys, want %d", len(keys), len(want))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("iterator out of order: %v", keys)
	}

	// A bounded sub-range walk honors the exclusive upper bound.
	it = c.Iterator(ctx, "s010", "s020", 3)
	keys = keys[:0]
	for it.Next() {
		keys = append(keys, it.Entry().Key)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 10 || keys[0] != "s010" || keys[9] != "s019" {
		t.Fatalf("bounded iterator: %v", keys)
	}
}

// TestScanUnsupportedBackend: a backend without the ordered-map capability
// fails scans with the uniform ErrUnsupported — through both the one-page
// call and the Iterator.
func TestScanUnsupportedBackend(t *testing.T) {
	ctx := context.Background()
	c := newKVOnlyServer(t)
	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Scan(ctx, "", "", 0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("scan on kv-only backend: %v", err)
	}
	it := c.Iterator(ctx, "", "", 0)
	if it.Next() {
		t.Fatal("iterator yielded an entry on kv-only backend")
	}
	if err := it.Err(); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("iterator error: %v", err)
	}
}

// firstItemErr flattens a per-item batch outcome into its first failure.
func firstItemErr(errs []error, err error) error {
	if err != nil {
		return err
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// TestCapabilityOpcodeMatrix pins the capability × opcode contract: every
// opcode against a full store backend and a bare KV backend. Ops gated on a
// missing capability (ordered-map scan, durability barrier, scrubber,
// service control) fail with exactly CodeUnsupported — uniformly matchable
// via errors.Is(err, ErrUnsupported) — never a panic or a misclassified
// internal error.
func TestCapabilityOpcodeMatrix(t *testing.T) {
	ctx := context.Background()
	_, full := newTestServer(t, 2)
	kvOnly := newKVOnlyServer(t)

	rows := []struct {
		op         string
		call       func(c *Client) error
		wantKVOnly error // nil = must succeed; matrix order is load-bearing
	}{
		{"put", func(c *Client) error { return c.Put(ctx, "m-put", []byte("v")) }, nil},
		{"get", func(c *Client) error { _, err := c.Get(ctx, "seed"); return err }, nil},
		{"delete", func(c *Client) error { return c.Delete(ctx, "del-seed") }, nil},
		{"list", func(c *Client) error { _, err := c.List(ctx); return err }, nil},
		{"stats", func(c *Client) error { _, err := c.Stats(ctx); return err }, nil},
		{"mget", func(c *Client) error { _, err := c.MGet(ctx, []string{"seed"}); return err }, nil},
		{"mput", func(c *Client) error {
			return firstItemErr(c.MPut(ctx, []string{"m-mput"}, [][]byte{[]byte("v")}))
		}, nil},
		{"mdelete", func(c *Client) error {
			return firstItemErr(c.MDelete(ctx, []string{"mdel-seed"}))
		}, nil},
		{"scan", func(c *Client) error { _, _, err := c.Scan(ctx, "", "", 0); return err }, ErrUnsupported},
		{"put_durable", func(c *Client) error { return c.PutDurable(ctx, "m-dur", []byte("v")) }, ErrUnsupported},
		{"mput_durable", func(c *Client) error {
			return firstItemErr(c.MPutDurable(ctx, []string{"m-mdur"}, [][]byte{[]byte("v")}))
		}, ErrUnsupported},
		{"flush", func(c *Client) error { return c.Flush(ctx, 0) }, ErrUnsupported},
		{"scrub", func(c *Client) error { _, err := c.Scrub(ctx, 0); return err }, ErrUnsupported},
		{"scrub_status", func(c *Client) error { _, err := c.ScrubStatus(ctx, 0); return err }, ErrUnsupported},
		{"remove_disk", func(c *Client) error { return c.RemoveDisk(ctx, 0) }, ErrUnsupported},
		{"return_disk", func(c *Client) error { return c.ReturnDisk(ctx, 0) }, ErrUnsupported},
	}

	for _, tc := range []struct {
		backend string
		c       *Client
		want    func(i int) error
	}{
		{"full", full, func(int) error { return nil }},
		{"kv-only", kvOnly, func(i int) error { return rows[i].wantKVOnly }},
	} {
		t.Run(tc.backend, func(t *testing.T) {
			for _, k := range []string{"seed", "del-seed", "mdel-seed"} {
				if err := tc.c.Put(ctx, k, []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			for i, row := range rows {
				err := row.call(tc.c)
				switch want := tc.want(i); {
				case want == nil && err != nil:
					t.Errorf("%s: %v, want success", row.op, err)
				case want != nil && !errors.Is(err, want):
					t.Errorf("%s: %v, want %v", row.op, err, want)
				case want != nil:
					var we *WireError
					if !errors.As(err, &we) || we.Code != CodeUnsupported {
						t.Errorf("%s: code %v, want uniform CodeUnsupported", row.op, err)
					}
				}
			}
		})
	}
}

// TestBatchPerItemOutcomesKVOnly drives the multi-ops against a backend
// WITHOUT store.BatchKV — the server's per-item fallback loop — with mixed
// present/missing keys and an oversized item, checking outcomes land at the
// right slots and the connection outlives the oversized rejection.
func TestBatchPerItemOutcomesKVOnly(t *testing.T) {
	ctx := context.Background()
	c := newKVOnlyServer(t)
	for _, k := range []string{"a", "c"} {
		if err := c.Put(ctx, k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}

	res, err := c.MGet(ctx, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || !bytes.Equal(res[0].Value, []byte("v-a")) {
		t.Fatalf("mget[0]: %+v", res[0])
	}
	if !errors.Is(res[1].Err, ErrNotFound) {
		t.Fatalf("mget[1] missing key: %v", res[1].Err)
	}
	if res[2].Err != nil || !bytes.Equal(res[2].Value, []byte("v-c")) {
		t.Fatalf("mget[2]: %+v", res[2])
	}

	// Deletes are blind tombstone writes: a missing key succeeds too.
	errs, err := c.MDelete(ctx, []string{"a", "nope"})
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("mdelete outcomes: %v", errs)
	}
	if _, err := c.Get(ctx, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("mdelete did not delete: %v", err)
	}

	errs, err = c.MPut(ctx, []string{"x", "y"}, [][]byte{[]byte("1"), []byte("2")})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("mput[%d]: %v", i, e)
		}
	}

	// An oversized item rejects the whole frame client-side, before any
	// byte hits the wire: no partial application, and the connection (and
	// its pending map) survives for the next call.
	big := make([]byte, MaxFrame+1)
	if _, err := c.MPut(ctx, []string{"small", "big"}, [][]byte{[]byte("s"), big}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized mput: %v", err)
	}
	if _, err := c.Get(ctx, "small"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oversized mput partially applied: %v", err)
	}
	v, err := c.Get(ctx, "x")
	if err != nil || !bytes.Equal(v, []byte("1")) {
		t.Fatalf("connection after oversized frame: %q %v", v, err)
	}
	if n := c.pendingCount(); n != 0 {
		t.Fatalf("pending map not drained: %d", n)
	}
}

package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"shardstore/internal/chunk"
	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/obs"
	"shardstore/internal/scrub"
	"shardstore/internal/store"
)

// connWorkers bounds concurrent dispatch per connection: a pipeline can
// queue arbitrarily deep, but only this many requests execute at once, so
// one chatty client cannot monopolize the host's goroutine budget.
const connWorkers = 32

// ScrubStatus is one disk's cumulative scrubber state: the integrity
// counters plus the shards currently recorded as irreparably lost.
type ScrubStatus struct {
	Rounds         uint64   `json:"rounds"`
	KeysScanned    uint64   `json:"keys_scanned"`
	FramesVerified uint64   `json:"frames_verified"`
	BytesVerified  uint64   `json:"bytes_verified"`
	BadReplicas    uint64   `json:"bad_replicas"`
	Repaired       uint64   `json:"repaired"`
	RepairFailed   uint64   `json:"repair_failed"`
	SwapLost       uint64   `json:"swap_lost"`
	Irreparable    uint64   `json:"irreparable"`
	LostShards     []string `json:"lost_shards,omitempty"`
}

// Stats is the aggregate server view.
type Stats struct {
	Disks         int      `json:"disks"`
	Shards        int      `json:"shards"`
	ShardsPer     []int    `json:"shards_per_disk"`
	InService     []bool   `json:"in_service"`
	ChunkPuts     []uint64 `json:"chunk_puts"`
	Reclaims      []uint64 `json:"reclaims"`
	GetsPerDisk   []uint64 `json:"gets_per_disk"`
	ScrubRounds   []uint64 `json:"scrub_rounds"`
	ScrubRepaired []uint64 `json:"scrub_repaired"`
	ScrubLost     []int    `json:"scrub_lost"` // shards per disk with a standing loss verdict
}

// Optional control-plane capabilities a store.KV backend may implement.
// *store.Store implements all of them; a backend that lacks one answers the
// corresponding op with CodeUnsupported instead of forcing every future
// backend to fake a scrubber or an IO scheduler. The request-plane
// capabilities (store.BatchKV for the multi-ops' batched fast path,
// store.OrderedKV for scan) are probed the same way: a missing capability
// either falls back (batch → per-item calls) or answers CodeUnsupported
// (scan — there is no sound point-read fallback for an ordered range).
type (
	flusher         interface{ Pump() error }
	serviceRemover  interface{ RemoveFromService() error }
	serviceReturner interface {
		ReturnToService() (*store.Store, error)
	}
	scrubBackend interface {
		ScrubRound() (scrub.Result, error)
		Scrubber() *scrub.Scrubber
	}
	meteredBackend interface {
		Obs() *obs.Obs
		Disk() *disk.Disk
	}
	// durableWaiter backs the flagDurable request plane: WaitDurable blocks
	// until d is persistent, enrolling in the backend's group-commit
	// barrier (one device flush amortized over all concurrent waiters).
	durableWaiter interface {
		WaitDurable(d *dep.Dependency) error
	}
	// tracedDurableWaiter lets a traced request's span follow the wait into
	// the barrier (follower wait vs leader sync stages). Backends without it
	// still serve traced requests; the barrier just stays unattributed.
	tracedDurableWaiter interface {
		WaitDurableTraced(d *dep.Dependency, sp *obs.Span) error
	}
	chunkStatsBackend interface{ Chunks() *chunk.Store }
)

// TraceDump is the payload of the trace and slowlog ops: the server-side
// tracer's retained request traces, oldest-first, plus how many earlier
// traces the ring overwrote.
type TraceDump struct {
	Traces    []obs.ReqTrace `json:"traces,omitempty"`
	Truncated uint64         `json:"truncated,omitempty"`
	// Threshold is the slow-log gate in server clock units (slowlog only).
	Threshold uint64 `json:"threshold,omitempty"`
}

// waitDurableTraced routes a durability wait through the backend's traced
// variant when the request carries a span and the backend offers one.
func waitDurableTraced(dw durableWaiter, d *dep.Dependency, sp *obs.Span) error {
	if sp != nil {
		if tw, ok := dw.(tracedDurableWaiter); ok {
			return tw.WaitDurableTraced(d, sp)
		}
	}
	return dw.WaitDurable(d)
}

// Server hosts one KV backend per disk behind a shared listener, speaking
// v2 (pipelined binary frames) and v1 (lock-step JSON) per connection.
type Server struct {
	mu     sync.Mutex
	kvs    []store.KV
	ln     net.Listener
	wg     sync.WaitGroup
	conns  map[net.Conn]struct{}
	closed bool

	// obs meters the rpc layer itself. The server runs on the wall clock by
	// default; per-store registries keep whatever clock they were built with.
	obs *obs.Obs
	// tracer is resolved once at construction (attach WithSpans to the Obs
	// before building the server); nil means traced-request flags are
	// ignored and the trace/slowlog ops answer CodeUnsupported.
	tracer   *obs.Tracer
	requests *obs.Counter
	failures *obs.Counter
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	inflight *obs.Gauge
	depth    *obs.Histogram
	opLat    map[Opcode]*obs.Histogram
}

// NewServer wraps per-disk stores. The rpc layer meters itself on the wall
// clock; pass a non-nil o to use a caller-supplied registry (e.g. a logical
// clock for deterministic output).
func NewServer(stores []*store.Store, o ...*obs.Obs) *Server {
	kvs := make([]store.KV, len(stores))
	for i, st := range stores {
		kvs[i] = st
	}
	return NewServerKV(kvs, o...)
}

// NewServerKV wraps arbitrary per-disk KV backends (the multi-backend
// seam). Backends that also implement the optional capability interfaces
// get the full control plane; the rest serve the request plane only.
func NewServerKV(kvs []store.KV, o ...*obs.Obs) *Server {
	var so *obs.Obs
	if len(o) > 0 && o[0] != nil {
		so = o[0]
	} else {
		so = obs.New(obs.NewWallClock())
	}
	s := &Server{
		kvs:      append([]store.KV(nil), kvs...),
		conns:    make(map[net.Conn]struct{}),
		obs:      so,
		tracer:   so.Tracer(),
		requests: so.Counter("rpc.requests"),
		failures: so.Counter("rpc.failures"),
		bytesIn:  so.Counter("rpc.bytes_in"),
		bytesOut: so.Counter("rpc.bytes_out"),
		inflight: so.Gauge("rpc.inflight"),
		depth:    so.Histogram("rpc.pipeline_depth"),
		opLat:    make(map[Opcode]*obs.Histogram),
	}
	for op := opPut; op <= opMax; op++ {
		s.opLat[op] = so.Histogram("rpc." + opName(op) + "_lat")
	}
	return s
}

// Obs returns the server's own observability registry.
func (s *Server) Obs() *obs.Obs { return s.obs }

// steer picks the disk for a shard id (the §2.1 steering function).
func (s *Server) steer(shardID string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(shardID))
	return int(h.Sum32() % uint32(len(s.kvs)))
}

// Serve starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if !s.track(conn) {
				_ = conn.Close()
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer s.untrack(conn)
				s.serveConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	_ = conn.Close()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close stops the listener, closes open connections, and waits for
// in-flight work. Requests dispatched after Close begins answer
// CodeShutdown.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns { //shardlint:allow mapiter every tracked connection is closed; order is unobservable
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

// serveConn sniffs the protocol version from the connection's first four
// bytes: the v2 preamble "S2P\x02", or a v1 frame-length prefix (first
// byte 0x00/0x01 — lengths are capped at MaxFrame).
func (s *Server) serveConn(conn net.Conn) {
	var head [4]byte
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return
	}
	if head == preambleV2 {
		s.bytesIn.Add(uint64(len(head)))
		s.serveConnV2(conn)
		return
	}
	s.serveConnV1(conn, head[:])
}

// serveConnV1 is the legacy lock-step loop: one frame in, one frame out.
func (s *Server) serveConnV1(conn net.Conn, head []byte) {
	for {
		var req Request
		if err := readFrameV1(conn, head, &req); err != nil {
			return // EOF or protocol error: drop the connection
		}
		head = nil
		var resp *Response
		q, err := reqFromV1(&req)
		if err != nil {
			resp = &Response{OK: false, Err: err.Error(), Code: CodeBadRequest.String()}
			s.requests.Inc()
			s.failures.Inc()
		} else {
			resp = respToV1(s.dispatch(q, nil))
		}
		if err := writeFrameV1(conn, resp); err != nil {
			return
		}
	}
}

// outFrame is one response queued for the connection's writer goroutine.
type outFrame struct {
	op      Opcode
	flags   uint8
	id      uint64
	payload []byte
	// sp is the request's span (nil when untraced); the writer records the
	// reply stage from queued and finishes it after the frame hits the wire.
	sp     *obs.Span
	queued uint64
}

// inFrame is one request queued for the connection's worker pool.
type inFrame struct {
	h       header
	payload []byte
	sp      *obs.Span
}

// serveConnV2 runs the pipelined loop: the reader parses frames and hands
// each request to a bounded worker; one writer goroutine serializes
// response frames, so responses complete — and return — out of order.
func (s *Server) serveConnV2(conn net.Conn) {
	writeCh := make(chan outFrame, connWorkers)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		var buf []byte
		batch := make([]outFrame, 0, connWorkers)
		for f := range writeCh {
			// Write-combining: take every response already queued and emit
			// them as ONE Write. Under pipelined load this collapses up to
			// connWorkers response syscalls into a single one.
			batch = append(batch[:0], f)
			buf, _ = appendFrameV2(buf[:0], f.op, f.flags, f.id, f.payload)
		drain:
			for len(buf) < MaxFrame {
				select {
				case more, ok := <-writeCh:
					if !ok {
						break drain
					}
					batch = append(batch, more)
					buf, _ = appendFrameV2(buf, more.op, more.flags, more.id, more.payload)
				default:
					break drain
				}
			}
			n, err := conn.Write(buf)
			s.bytesOut.Add(uint64(n))
			if err != nil {
				// The connection is gone (oversized frames are impossible
				// here: encodeResp already guards MaxFrame); drain remaining
				// frames so handlers never block on a dead writer, finishing
				// any spans so they do not linger in the active set.
				for _, f := range batch {
					f.sp.Finish()
				}
				for f := range writeCh {
					f.sp.Finish()
				}
				return
			}
			// The reply stage ends only after the frame is on the wire, so a
			// stalled writer shows up in the trace, not as unattributed time.
			for _, f := range batch {
				if f.sp != nil {
					f.sp.Stage(obs.StageReply, f.queued, "")
					f.sp.Finish()
				}
			}
		}
	}()

	// Fixed worker pool: connWorkers goroutines live for the connection's
	// lifetime instead of one spawn per request — deep pipelines reuse warm
	// stacks (dispatch recurses into the store; per-request goroutines paid a
	// stack growth every time). The buffered channel doubles as the dispatch
	// bound: the reader blocks once connWorkers requests are queued unserved.
	workCh := make(chan inFrame, connWorkers)
	var workers sync.WaitGroup
	var depth atomic.Int64
	for i := 0; i < connWorkers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for w := range workCh {
				// The span opened when the reader parsed the frame; time
				// until a worker picked it up is dispatch-queue wait.
				w.sp.Stage(obs.StageQueueWait, w.sp.StartTick(), "")
				var p *wireResp
				q, err := decodeReq(w.h.op, w.payload)
				if q != nil {
					q.durable = w.h.flags&flagDurable != 0
					w.sp.SetKey(q.key)
				}
				if err != nil {
					p = respErr(CodeBadRequest, err.Error())
					s.requests.Inc()
					s.failures.Inc()
				} else {
					p = s.dispatch(q, w.sp)
				}
				body, err := encodeResp(w.h.op, p)
				if err != nil {
					body, _ = encodeResp(w.h.op, respErr(codeFor(err), err.Error()))
				}
				if len(body) > MaxFrame {
					// E.g. an mget whose aggregate values exceed the frame
					// cap: answer typed instead of handing the writer an
					// unsendable frame (which would strand the caller's
					// request id).
					body, _ = encodeResp(w.h.op, respErr(CodeFrameTooLarge,
						fmt.Sprintf("response payload %d > %d", len(body), MaxFrame)))
				}
				// A send after the writer bailed is safe: the writer drains
				// the channel before returning, and it only returns once the
				// connection is dead.
				var flags uint8
				if w.sp != nil {
					// Echo the traced flag so the client knows the server
					// honored the request (the negotiation signal).
					flags |= flagTraced
				}
				select {
				case writeCh <- outFrame{op: w.h.op, flags: flags, id: w.h.id, payload: body, sp: w.sp, queued: w.sp.Now()}:
				case <-writerDone:
					w.sp.Finish()
				}
				depth.Add(-1)
				s.inflight.Add(-1)
			}
		}()
	}

	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		h, payload, err := readFrameV2(br)
		if err != nil {
			break
		}
		s.bytesIn.Add(uint64(headerSize + len(payload)))
		s.depth.Observe(uint64(depth.Add(1)))
		s.inflight.Add(1)
		var sp *obs.Span
		if h.flags&flagTraced != 0 && s.tracer != nil {
			// The frame's request id doubles as the trace id; the op name is
			// set here, the key once the worker decodes the payload.
			sp = s.tracer.Start(h.id, opName(h.op), "")
		}
		workCh <- inFrame{h: h, payload: payload, sp: sp}
	}
	close(workCh)
	workers.Wait()
	close(writeCh)
	<-writerDone
}

// dispatch runs one request through the shared (protocol-neutral) path,
// metering it. sp is the request's span (nil when untraced or over v1).
func (s *Server) dispatch(q *wireReq, sp *obs.Span) *wireResp {
	start := s.obs.Now()
	var p *wireResp
	if s.isClosed() {
		p = respErr(CodeShutdown, "server shutting down")
	} else {
		p = s.dispatchInner(q, sp)
	}
	s.requests.Inc()
	if p.code != CodeOK {
		s.failures.Inc()
	}
	if h := s.opLat[q.op]; h != nil {
		h.Observe(s.obs.Now() - start)
	}
	if s.obs.Tracing() {
		outcome := "ok"
		if p.code != CodeOK {
			outcome = "err:" + p.code.String()
		}
		s.obs.Record("rpc", opName(q.op), q.key, outcome, s.obs.Now()-start)
	}
	return p
}

// kvFor returns the steering target for a request-plane call, or the
// explicit disk for control-plane calls.
func (s *Server) kvFor(q *wireReq) (store.KV, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.kvs) == 0 {
		return nil, 0, errors.New("rpc: no disks")
	}
	idx := q.disk
	if q.key != "" {
		idx = s.steer(q.key)
	}
	if idx < 0 || idx >= len(s.kvs) {
		return nil, 0, fmt.Errorf("rpc: disk %d out of range", idx)
	}
	return s.kvs[idx], idx, nil
}

// kvForKey steers one shard id (batch items steer independently).
func (s *Server) kvForKey(key string) (store.KV, error) {
	kv, _, err := s.kvFor(&wireReq{key: key})
	return kv, err
}

// replaceKV swaps the backend for disk idx (after a service-cycle reopen).
func (s *Server) replaceKV(idx int, kv store.KV) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kvs[idx] = kv
}

func errResp(err error) *wireResp {
	return respErr(codeFor(err), err.Error())
}

func (s *Server) dispatchInner(q *wireReq, sp *obs.Span) *wireResp {
	kv, idx, err := s.kvFor(q)
	if err != nil {
		return respErr(CodeBadRequest, err.Error())
	}
	switch q.op {
	case opPut:
		if q.key == "" {
			return respErr(CodeBadRequest, "missing shard_id")
		}
		t0 := sp.Now()
		d, err := kv.Put(q.key, q.value)
		sp.Stage("store.put", t0, "")
		if err != nil {
			return errResp(err)
		}
		if q.durable {
			dw, ok := kv.(durableWaiter)
			if !ok {
				return respErr(CodeUnsupported, "backend cannot wait for durability")
			}
			if err := waitDurableTraced(dw, d, sp); err != nil {
				return errResp(err)
			}
		}
		return &wireResp{code: CodeOK}
	case opGet:
		t0 := sp.Now()
		v, err := kv.Get(q.key)
		sp.Stage("store.get", t0, "")
		if err != nil {
			return errResp(err)
		}
		return &wireResp{code: CodeOK, value: v}
	case opDelete:
		t0 := sp.Now()
		_, err := kv.Delete(q.key)
		sp.Stage("store.delete", t0, "")
		if err != nil {
			return errResp(err)
		}
		return &wireResp{code: CodeOK}
	case opList:
		// Control plane: list across all disks.
		var all []string
		s.mu.Lock()
		kvs := append([]store.KV(nil), s.kvs...)
		s.mu.Unlock()
		for _, kv := range kvs {
			ids, err := kv.List()
			if err != nil {
				if errors.Is(err, store.ErrOutOfService) {
					continue
				}
				return errResp(err)
			}
			all = append(all, ids...)
		}
		return &wireResp{code: CodeOK, keys: all}
	case opBulkCreate:
		if len(q.keys) != len(q.values) {
			return respErr(CodeBadRequest, "shards/values mismatch")
		}
		// Steer each shard to its disk (fail-fast: control-plane semantics).
		for i, id := range q.keys {
			target, err := s.kvForKey(id)
			if err != nil {
				return errResp(err)
			}
			if _, err := target.Put(id, q.values[i]); err != nil {
				return errResp(err)
			}
		}
		return &wireResp{code: CodeOK}
	case opBulkRemove:
		for _, id := range q.keys {
			target, err := s.kvForKey(id)
			if err != nil {
				return errResp(err)
			}
			if _, err := target.BulkRemove([]string{id}); err != nil {
				return errResp(err)
			}
		}
		return &wireResp{code: CodeOK}
	case opScan:
		return s.scan(q)
	case opMGet:
		return s.mGet(q.keys)
	case opMPut:
		if len(q.keys) != len(q.values) {
			return respErr(CodeBadRequest, "shards/values mismatch")
		}
		return s.mMutate(q.keys, q.values, true, q.durable, sp)
	case opMDelete:
		return s.mMutate(q.keys, nil, false, false, nil)
	case opRemoveDisk:
		sr, ok := kv.(serviceRemover)
		if !ok {
			return respErr(CodeUnsupported, "backend cannot remove_disk")
		}
		if err := sr.RemoveFromService(); err != nil {
			return errResp(err)
		}
		return &wireResp{code: CodeOK}
	case opReturnDisk:
		sr, ok := kv.(serviceReturner)
		if !ok {
			return respErr(CodeUnsupported, "backend cannot return_disk")
		}
		ns, err := sr.ReturnToService()
		if err != nil {
			return errResp(err)
		}
		s.replaceKV(idx, ns)
		return &wireResp{code: CodeOK}
	case opFlush:
		fl, ok := kv.(flusher)
		if !ok {
			return respErr(CodeUnsupported, "backend cannot flush")
		}
		if err := fl.Pump(); err != nil {
			return errResp(err)
		}
		return &wireResp{code: CodeOK}
	case opScrub:
		sb, ok := kv.(scrubBackend)
		if !ok {
			return respErr(CodeUnsupported, "backend cannot scrub")
		}
		if _, err := sb.ScrubRound(); err != nil {
			return errResp(err)
		}
		return &wireResp{code: CodeOK, scrub: scrubStatus(sb)}
	case opScrubStatus:
		sb, ok := kv.(scrubBackend)
		if !ok {
			return respErr(CodeUnsupported, "backend cannot scrub_status")
		}
		return &wireResp{code: CodeOK, scrub: scrubStatus(sb)}
	case opStats:
		return &wireResp{code: CodeOK, stats: s.stats()}
	case opMetrics:
		return &wireResp{code: CodeOK, metrics: s.metrics()}
	case opTrace:
		if s.tracer == nil {
			return respErr(CodeUnsupported, "tracing not enabled on this node")
		}
		traces, truncated := s.tracer.Completed()
		return &wireResp{code: CodeOK, trace: &TraceDump{Traces: traces, Truncated: truncated}}
	case opSlowLog:
		if s.tracer == nil {
			return respErr(CodeUnsupported, "tracing not enabled on this node")
		}
		traces, truncated := s.tracer.Slow()
		return &wireResp{code: CodeOK, trace: &TraceDump{
			Traces: traces, Truncated: truncated, Threshold: s.tracer.SlowThreshold(),
		}}
	default:
		return respErr(CodeBadRequest, fmt.Sprintf("unknown opcode %d", q.op))
	}
}

// scanPageMax bounds the entries in one scan response when the client asks
// for an unbounded page; scanByteBudget bounds the page's payload bytes so
// the response frame stays well under MaxFrame even with large values. The
// continuation token resumes the cursor where the page stopped.
const (
	scanPageMax    = 1024
	scanByteBudget = 8 << 20
)

// scan serves the ordered-range op: a range spans the whole steering space,
// so the server scans EVERY in-service backend and merges the pages (shard
// ids steer to exactly one disk, so the per-disk pages are disjoint and the
// merge is a sort). A backend that truncated its page caps the completeness
// horizon at its last key — beyond it, that backend may hold unreturned
// in-range shards, so entries past the horizon are withheld and the client
// resumes via the continuation token. Any backend lacking the ordered-map
// capability fails the whole op with the uniform CodeUnsupported: there is
// no sound point-read fallback for a range.
func (s *Server) scan(q *wireReq) *wireResp {
	s.mu.Lock()
	kvs := append([]store.KV(nil), s.kvs...)
	s.mu.Unlock()
	if len(kvs) == 0 {
		return respErr(CodeBadRequest, "rpc: no disks")
	}
	effLimit := q.limit
	if effLimit <= 0 || effLimit > scanPageMax {
		effLimit = scanPageMax
	}
	horizon := "" // "" = complete everywhere
	var merged []store.ScanEntry
	anyMore := false
	for _, kv := range kvs {
		okv, ok := kv.(store.OrderedKV)
		if !ok {
			return respErr(CodeUnsupported, "backend cannot scan")
		}
		entries, more, err := okv.Scan(q.key, q.end, effLimit)
		if err != nil {
			if errors.Is(err, store.ErrOutOfService) {
				continue // like list: out-of-service disks drop out
			}
			return errResp(err)
		}
		if more {
			anyMore = true
			if len(entries) > 0 {
				if last := entries[len(entries)-1].Key; horizon == "" || last < horizon {
					horizon = last
				}
			} else {
				// A truncated page with zero survivors (every snapshot entry
				// vanished before its chunks were read): nothing past the
				// start is known complete.
				horizon = q.key
			}
		}
		merged = append(merged, entries...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Key < merged[j].Key })
	p := &wireResp{code: CodeOK}
	more := anyMore
	pageBytes := 0
	for _, e := range merged {
		if horizon != "" && e.Key > horizon {
			break // incomplete beyond the horizon; anyMore already set
		}
		if len(p.keys) >= effLimit || (pageBytes > scanByteBudget && len(p.keys) > 0) {
			more = true
			break
		}
		p.keys = append(p.keys, e.Key)
		p.values = append(p.values, e.Value)
		pageBytes += len(e.Key) + len(e.Value)
	}
	if more {
		if len(p.keys) > 0 {
			p.next = p.keys[len(p.keys)-1] + "\x00"
		} else {
			// Empty page but the range is not exhausted: advance past the
			// start key so the cursor always makes progress (the start itself
			// can only be missing because it vanished mid-scan).
			p.next = q.key + "\x00"
		}
	}
	return p
}

// mGet steers each key independently, using the backend's batch entry point
// per disk when available so a whole per-disk group shares one pass.
func (s *Server) mGet(keys []string) *wireResp {
	p := &wireResp{
		code:      CodeOK,
		itemCodes: make([]Code, len(keys)),
		values:    make([][]byte, len(keys)),
	}
	for disk, idxs := range s.groupBySteer(keys) {
		kv := disk.kv
		if bkv, ok := kv.(store.BatchKV); ok {
			ids := make([]string, len(idxs))
			for j, i := range idxs {
				ids[j] = keys[i]
			}
			vals, errs := bkv.GetBatch(ids)
			for j, i := range idxs {
				p.itemCodes[i] = codeFor(errs[j])
				if errs[j] == nil {
					p.values[i] = vals[j]
				}
			}
			continue
		}
		for _, i := range idxs {
			v, err := kv.Get(keys[i])
			p.itemCodes[i] = codeFor(err)
			if err == nil {
				p.values[i] = v
			}
		}
	}
	return p
}

// mMutate implements mput (put=true) and mdelete with per-item outcomes.
func (s *Server) mMutate(keys []string, values [][]byte, put bool, durable bool, sp *obs.Span) *wireResp {
	p := &wireResp{code: CodeOK, itemCodes: make([]Code, len(keys))}
	for disk, idxs := range s.groupBySteer(keys) {
		kv := disk.kv
		if durable {
			mMutateDurableGroup(kv, keys, values, idxs, p, sp)
			continue
		}
		bkv, batched := kv.(store.BatchKV)
		if batched {
			ids := make([]string, len(idxs))
			vals := make([][]byte, len(idxs))
			for j, i := range idxs {
				ids[j] = keys[i]
				if put {
					vals[j] = values[i]
				}
			}
			var errs []error
			if put {
				errs = bkv.PutBatch(ids, vals)
			} else {
				errs = bkv.DeleteBatch(ids)
			}
			for j, i := range idxs {
				p.itemCodes[i] = codeFor(errs[j])
			}
			continue
		}
		for _, i := range idxs {
			var err error
			if put {
				_, err = kv.Put(keys[i], values[i])
			} else {
				_, err = kv.Delete(keys[i])
			}
			p.itemCodes[i] = codeFor(err)
		}
	}
	return p
}

// mMutateDurableGroup applies one steering group's puts durably: collect
// each successful put's dependency and cross the commit barrier once for
// the whole per-disk group — one leader-driven flush regardless of batch
// size. Item outcomes land at fixed indices of p.itemCodes, so the caller's
// map-iteration order over groups never becomes observable.
func mMutateDurableGroup(kv store.KV, keys []string, values [][]byte, idxs []int, p *wireResp, sp *obs.Span) {
	dw, ok := kv.(durableWaiter)
	if !ok {
		for _, i := range idxs {
			p.itemCodes[i] = CodeUnsupported
		}
		return
	}
	deps := make([]*dep.Dependency, 0, len(idxs))
	okIdx := make([]int, 0, len(idxs))
	for _, i := range idxs {
		d, err := kv.Put(keys[i], values[i])
		p.itemCodes[i] = codeFor(err)
		if err == nil {
			deps = append(deps, d)
			okIdx = append(okIdx, i)
		}
	}
	if len(deps) > 0 {
		if err := waitDurableTraced(dw, dep.All(deps...), sp); err != nil {
			for _, i := range okIdx {
				p.itemCodes[i] = codeFor(err)
			}
		}
	}
}

// steerGroup keys groupBySteer's map by disk index with the KV captured at
// grouping time, so a concurrent return_disk swap cannot split one batch
// across two backend generations.
type steerGroup struct {
	idx int
	kv  store.KV
}

// groupBySteer partitions batch item indices by target disk. Iteration
// order of the result is irrelevant: every per-item outcome lands at the
// item's own index.
func (s *Server) groupBySteer(keys []string) map[steerGroup][]int {
	s.mu.Lock()
	kvs := append([]store.KV(nil), s.kvs...)
	s.mu.Unlock()
	byDisk := make(map[int][]int)
	for i, k := range keys {
		byDisk[s.steer(k)] = append(byDisk[s.steer(k)], i)
	}
	out := make(map[steerGroup][]int, len(byDisk))
	for d, idxs := range byDisk {
		out[steerGroup{idx: d, kv: kvs[d]}] = idxs
	}
	return out
}

// diskStats is one backend's state captured at a single point: every field
// is read back to back before the next backend is touched, so the aggregate
// view cannot interleave one disk's counters with traffic that lands
// between loop iterations over the same disk.
type diskStats struct {
	ids       []string
	inService bool
	chunks    struct{ puts, reclaims, gets uint64 }
	scrub     struct {
		rounds, repaired uint64
		lost             int
	}
}

func snapshotDisk(kv store.KV) diskStats {
	var d diskStats
	ids, err := kv.List()
	d.ids = ids
	d.inService = !errors.Is(err, store.ErrOutOfService)
	if cb, ok := kv.(chunkStatsBackend); ok {
		cs := cb.Chunks().Stats()
		d.chunks.puts, d.chunks.reclaims, d.chunks.gets = cs.Puts, cs.Reclaims, cs.Gets
	}
	if sb, ok := kv.(scrubBackend); ok {
		ss := sb.Scrubber().Stats()
		d.scrub.rounds, d.scrub.repaired = ss.Rounds, ss.Repaired
		d.scrub.lost = len(sb.Scrubber().LostKeys())
	}
	return d
}

func (s *Server) stats() *Stats {
	s.mu.Lock()
	kvs := append([]store.KV(nil), s.kvs...)
	s.mu.Unlock()
	// One pass: capture each backend's complete snapshot first, then
	// aggregate, so every per-disk column in the result describes the same
	// instant for that disk.
	snaps := make([]diskStats, len(kvs))
	for i, kv := range kvs {
		snaps[i] = snapshotDisk(kv)
	}
	out := &Stats{Disks: len(kvs)}
	for _, d := range snaps {
		out.InService = append(out.InService, d.inService)
		out.ShardsPer = append(out.ShardsPer, len(d.ids))
		out.Shards += len(d.ids)
		out.ChunkPuts = append(out.ChunkPuts, d.chunks.puts)
		out.Reclaims = append(out.Reclaims, d.chunks.reclaims)
		out.GetsPerDisk = append(out.GetsPerDisk, d.chunks.gets)
		out.ScrubRounds = append(out.ScrubRounds, d.scrub.rounds)
		out.ScrubRepaired = append(out.ScrubRepaired, d.scrub.repaired)
		out.ScrubLost = append(out.ScrubLost, d.scrub.lost)
	}
	return out
}

// metrics folds the server's own registry and every metered backend's
// registry into one host-wide snapshot: counters and gauges add, histograms
// merge bucket-wise (merge order does not matter — see the associativity
// property test in internal/obs). Backends sharing one registry are folded
// once.
func (s *Server) metrics() *obs.Snapshot {
	s.mu.Lock()
	kvs := append([]store.KV(nil), s.kvs...)
	s.mu.Unlock()
	merged := s.obs.Snapshot()
	seen := map[*obs.Obs]bool{s.obs: true}
	for _, kv := range kvs {
		mb, ok := kv.(meteredBackend)
		if !ok {
			continue
		}
		for _, o := range []*obs.Obs{mb.Obs(), mb.Disk().Obs()} {
			if o == nil || seen[o] {
				continue
			}
			seen[o] = true
			merged.Merge(o.Snapshot())
		}
	}
	return &merged
}

// scrubStatus snapshots one backend's scrubber state for the wire.
func scrubStatus(sb scrubBackend) *ScrubStatus {
	sc := sb.Scrubber()
	ss := sc.Stats()
	return &ScrubStatus{
		Rounds:         ss.Rounds,
		KeysScanned:    ss.KeysScanned,
		FramesVerified: ss.FramesVerified,
		BytesVerified:  ss.BytesVerified,
		BadReplicas:    ss.BadReplicas,
		Repaired:       ss.Repaired,
		RepairFailed:   ss.RepairFailed,
		SwapLost:       ss.SwapLost,
		Irreparable:    ss.Irreparable,
		LostShards:     sc.LostKeys(),
	}
}

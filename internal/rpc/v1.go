package rpc

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The legacy v1 protocol: length-prefixed JSON frames, one request/response
// pair per round trip, shard payloads base64-encoded by encoding/json. Kept
// as a compatibility shim (the server sniffs the version per connection)
// and as the lock-step baseline for BenchmarkRPCPipelined.

// Op names a v1 wire operation.
type Op string

// v1 wire operations.
const (
	OpPut         Op = "put"
	OpGet         Op = "get"
	OpDelete      Op = "delete"
	OpList        Op = "list"
	OpBulkCreate  Op = "bulk_create"
	OpBulkRemove  Op = "bulk_remove"
	OpRemoveDisk  Op = "remove_disk"
	OpReturnDisk  Op = "return_disk"
	OpFlush       Op = "flush"
	OpStats       Op = "stats"
	OpScrub       Op = "scrub"
	OpScrubStatus Op = "scrub_status"
	OpMetrics     Op = "metrics"
)

// opcodeForV1 lowers a v1 op string to the shared dispatch opcode.
func opcodeForV1(op Op) Opcode {
	switch op {
	case OpPut:
		return opPut
	case OpGet:
		return opGet
	case OpDelete:
		return opDelete
	case OpList:
		return opList
	case OpBulkCreate:
		return opBulkCreate
	case OpBulkRemove:
		return opBulkRemove
	case OpRemoveDisk:
		return opRemoveDisk
	case OpReturnDisk:
		return opReturnDisk
	case OpFlush:
		return opFlush
	case OpStats:
		return opStats
	case OpScrub:
		return opScrub
	case OpScrubStatus:
		return opScrubStatus
	case OpMetrics:
		return opMetrics
	default:
		return opInvalid
	}
}

// Request is one v1 wire request.
type Request struct {
	Op      Op       `json:"op"`
	ShardID string   `json:"shard_id,omitempty"`
	Value   []byte   `json:"value,omitempty"`
	Shards  []string `json:"shards,omitempty"`
	Values  [][]byte `json:"values,omitempty"`
	Disk    int      `json:"disk,omitempty"` // control-plane target disk
}

// Response is one v1 wire response. Code carries the snake_case name of the
// Code taxonomy (see doc.go).
type Response struct {
	OK      bool         `json:"ok"`
	Err     string       `json:"err,omitempty"`
	Code    string       `json:"code,omitempty"`
	Value   []byte       `json:"value,omitempty"`
	Shards  []string     `json:"shards,omitempty"`
	Stats   *Stats       `json:"stats,omitempty"`
	Scrub   *ScrubStatus `json:"scrub,omitempty"`
	Metrics *jsonRaw     `json:"metrics,omitempty"`
}

// jsonRaw defers metrics decoding so v1.go does not depend on obs types.
type jsonRaw = json.RawMessage

// writeFrameV1 sends one length-prefixed JSON frame. MaxFrame is enforced
// on the write side with the typed error: a client that encodes an
// oversized request learns immediately instead of hanging the connection
// (the pre-v2 codec only checked on read).
func writeFrameV1(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("%w: frame %d > %d", ErrFrameTooLarge, len(body), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrameV1 receives one length-prefixed JSON frame into v. head holds
// already-sniffed bytes of the length prefix (the server's version sniff
// consumes them from the socket).
func readFrameV1(r io.Reader, head []byte, v any) error {
	var hdr [4]byte
	copy(hdr[:], head)
	if len(head) < 4 {
		if _, err := io.ReadFull(r, hdr[len(head):]); err != nil {
			return err
		}
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("%w: frame %d > %d", ErrFrameTooLarge, n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// reqFromV1 lowers a v1 JSON request into the shared dispatch form.
func reqFromV1(req *Request) (*wireReq, error) {
	op := opcodeForV1(req.Op)
	if op == opInvalid {
		return nil, fmt.Errorf("unknown op %q", req.Op)
	}
	return &wireReq{
		op:     op,
		key:    req.ShardID,
		value:  req.Value,
		keys:   req.Shards,
		values: req.Values,
		disk:   req.Disk,
	}, nil
}

// respToV1 raises a dispatch result back into the v1 JSON shape.
func respToV1(p *wireResp) *Response {
	resp := &Response{OK: p.code == CodeOK}
	if !resp.OK {
		resp.Err = p.msg
		resp.Code = p.code.String()
		return resp
	}
	resp.Value = p.value
	resp.Shards = p.keys
	resp.Stats = p.stats
	resp.Scrub = p.scrub
	if p.metrics != nil {
		if blob, err := json.Marshal(p.metrics); err == nil {
			raw := jsonRaw(blob)
			resp.Metrics = &raw
		}
	}
	return resp
}

// ClientV1 is the legacy synchronous client: safe for concurrent use, but
// calls are serialized over one connection — a full write-then-read round
// trip holds the lock, so a single connection never has more than one
// request in flight.
//
// Deprecated: use Client (DialContext/Dial), which pipelines.
type ClientV1 struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
}

// DialV1 connects with the legacy lock-step protocol.
func DialV1(addr string) (*ClientV1, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &ClientV1{conn: conn}, nil
}

// Close closes the connection.
func (c *ClientV1) Close() error { return c.conn.Close() }

// SetTimeout bounds each subsequent call's full round trip. Unlike the v2
// client, a timed-out v1 call leaves an unread response in flight: the
// connection is broken afterwards and must be re-dialed.
func (c *ClientV1) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// Call performs one lock-step round trip.
func (c *ClientV1) Call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil { //shardlint:allow determinism socket deadlines are wire-level wall time, not harness state
			return nil, err
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeFrameV1(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := readFrameV1(c.conn, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *ClientV1) do(req *Request) (*Response, error) {
	resp, err := c.Call(req)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return resp, wireErr(codeFromString(resp.Code), resp.Err)
	}
	return resp, nil
}

// Put stores a shard.
func (c *ClientV1) Put(shardID string, value []byte) error {
	_, err := c.do(&Request{Op: OpPut, ShardID: shardID, Value: value})
	return err
}

// Get fetches a shard.
func (c *ClientV1) Get(shardID string) ([]byte, error) {
	resp, err := c.do(&Request{Op: OpGet, ShardID: shardID})
	if err != nil {
		return nil, err
	}
	if resp.Value == nil {
		return []byte{}, nil
	}
	return resp.Value, nil
}

// Delete removes a shard.
func (c *ClientV1) Delete(shardID string) error {
	_, err := c.do(&Request{Op: OpDelete, ShardID: shardID})
	return err
}

// List returns all shard ids across disks.
func (c *ClientV1) List() ([]string, error) {
	resp, err := c.do(&Request{Op: OpList})
	if err != nil {
		return nil, err
	}
	return resp.Shards, nil
}

package rpc

import (
	"encoding/json"
	"fmt"

	"shardstore/internal/obs"
)

// wireReq is the protocol-neutral request: the v2 codec and the v1 JSON
// shim both lower into it, so the server has exactly one dispatch path.
type wireReq struct {
	op     Opcode
	key    string // also the scan start bound
	value  []byte
	keys   []string
	values [][]byte
	disk   int
	// end/limit are the scan range's exclusive upper bound ("" unbounded)
	// and page limit (0 unbounded; the server clamps pages anyway).
	end   string
	limit int
	// durable requests an acknowledgment only after the mutation is
	// persistent (group commit). Carried in the v2 frame header's flag byte,
	// not the payload; the v1 shim has no way to set it.
	durable bool
}

// wireResp is the protocol-neutral response.
type wireResp struct {
	code Code
	msg  string

	value     []byte       // get
	keys      []string     // list; scan page keys
	itemCodes []Code       // mget/mput/mdelete per-item outcomes
	values    [][]byte     // mget per-item values (parallel to itemCodes); scan page values
	next      string       // scan continuation token ("" = range exhausted)
	stats     *Stats       // stats
	scrub     *ScrubStatus // scrub, scrub_status
	metrics   *obs.Snapshot
	trace     *TraceDump // trace, slowlog
}

func respErr(code Code, msg string) *wireResp { return &wireResp{code: code, msg: msg} }

// encodeReq serializes a request payload (client side).
func encodeReq(q *wireReq) ([]byte, error) {
	var w wireBuf
	switch q.op {
	case opPut:
		w.str(q.key)
		w.b = append(w.b, q.value...) // raw tail: no length, no base64
	case opGet, opDelete:
		w.str(q.key)
	case opScan:
		w.str(q.key)
		w.str(q.end)
		w.u32(uint32(q.limit))
	case opList, opStats, opMetrics, opTrace, opSlowLog:
		// empty payload
	case opRemoveDisk, opReturnDisk, opFlush, opScrub, opScrubStatus:
		w.u32(uint32(q.disk))
	case opBulkCreate, opMPut:
		if len(q.keys) != len(q.values) {
			return nil, fmt.Errorf("%w: %d keys, %d values", ErrBadRequest, len(q.keys), len(q.values))
		}
		w.u32(uint32(len(q.keys)))
		for i, k := range q.keys {
			w.str(k)
			w.bytes(q.values[i])
		}
	case opBulkRemove, opMGet, opMDelete:
		w.u32(uint32(len(q.keys)))
		for _, k := range q.keys {
			w.str(k)
		}
	default:
		return nil, fmt.Errorf("%w: unknown opcode %d", ErrBadRequest, q.op)
	}
	return w.b, nil
}

// decodeReq parses a request payload (server side).
func decodeReq(op Opcode, payload []byte) (*wireReq, error) {
	q := &wireReq{op: op}
	r := wireReader{b: payload}
	var err error
	switch op {
	case opPut:
		if q.key, err = r.str(); err != nil {
			return nil, err
		}
		q.value = r.rest()
	case opGet, opDelete:
		if q.key, err = r.str(); err != nil {
			return nil, err
		}
	case opScan:
		if q.key, err = r.str(); err != nil {
			return nil, err
		}
		if q.end, err = r.str(); err != nil {
			return nil, err
		}
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		q.limit = int(n)
	case opList, opStats, opMetrics, opTrace, opSlowLog:
	case opRemoveDisk, opReturnDisk, opFlush, opScrub, opScrubStatus:
		d, err := r.u32()
		if err != nil {
			return nil, err
		}
		q.disk = int(d)
	case opBulkCreate, opMPut:
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < n; i++ {
			k, err := r.str()
			if err != nil {
				return nil, err
			}
			v, err := r.bytes()
			if err != nil {
				return nil, err
			}
			q.keys = append(q.keys, k)
			q.values = append(q.values, v)
		}
	case opBulkRemove, opMGet, opMDelete:
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < n; i++ {
			k, err := r.str()
			if err != nil {
				return nil, err
			}
			q.keys = append(q.keys, k)
		}
	default:
		return nil, fmt.Errorf("unknown opcode %d", op)
	}
	return q, nil
}

// encodeResp serializes a response payload (server side). Layout: u16
// status code; on failure a message string and nothing else; on success the
// op-specific body.
func encodeResp(op Opcode, p *wireResp) ([]byte, error) {
	var w wireBuf
	w.u16(uint16(p.code))
	if p.code != CodeOK {
		w.str(p.msg)
		return w.b, nil
	}
	switch op {
	case opGet:
		w.b = append(w.b, p.value...) // raw tail
	case opList:
		w.u32(uint32(len(p.keys)))
		for _, k := range p.keys {
			w.str(k)
		}
	case opScan:
		w.u32(uint32(len(p.keys)))
		for i, k := range p.keys {
			w.str(k)
			w.bytes(p.values[i])
		}
		w.str(p.next)
	case opMGet:
		w.u32(uint32(len(p.itemCodes)))
		for i, c := range p.itemCodes {
			w.u16(uint16(c))
			var v []byte
			if i < len(p.values) {
				v = p.values[i]
			}
			w.bytes(v)
		}
	case opMPut, opMDelete:
		w.u32(uint32(len(p.itemCodes)))
		for _, c := range p.itemCodes {
			w.u16(uint16(c))
		}
	case opStats:
		return appendJSON(w, p.stats)
	case opScrub, opScrubStatus:
		return appendJSON(w, p.scrub)
	case opMetrics:
		return appendJSON(w, p.metrics)
	case opTrace, opSlowLog:
		return appendJSON(w, p.trace)
	}
	return w.b, nil
}

// appendJSON attaches a control-plane blob (stats, scrub state, metrics
// snapshots are low-rate and structurally rich; JSON keeps them evolvable
// without a schema change — the hot request plane never goes through here).
func appendJSON(w wireBuf, v any) ([]byte, error) {
	blob, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	w.bytes(blob)
	return w.b, nil
}

// decodeResp parses a response payload (client side).
func decodeResp(op Opcode, payload []byte) (*wireResp, error) {
	r := wireReader{b: payload}
	c, err := r.u16()
	if err != nil {
		return nil, err
	}
	p := &wireResp{code: Code(c)}
	if p.code != CodeOK {
		if p.msg, err = r.str(); err != nil {
			return nil, err
		}
		return p, nil
	}
	switch op {
	case opGet:
		p.value = r.rest()
	case opList:
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < n; i++ {
			k, err := r.str()
			if err != nil {
				return nil, err
			}
			p.keys = append(p.keys, k)
		}
	case opScan:
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < n; i++ {
			k, err := r.str()
			if err != nil {
				return nil, err
			}
			v, err := r.bytes()
			if err != nil {
				return nil, err
			}
			p.keys = append(p.keys, k)
			p.values = append(p.values, v)
		}
		if p.next, err = r.str(); err != nil {
			return nil, err
		}
	case opMGet:
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < n; i++ {
			c, err := r.u16()
			if err != nil {
				return nil, err
			}
			v, err := r.bytes()
			if err != nil {
				return nil, err
			}
			p.itemCodes = append(p.itemCodes, Code(c))
			p.values = append(p.values, v)
		}
	case opMPut, opMDelete:
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < n; i++ {
			c, err := r.u16()
			if err != nil {
				return nil, err
			}
			p.itemCodes = append(p.itemCodes, Code(c))
		}
	case opStats:
		p.stats = &Stats{}
		if err := decodeJSON(&r, p.stats); err != nil {
			return nil, err
		}
	case opScrub, opScrubStatus:
		p.scrub = &ScrubStatus{}
		if err := decodeJSON(&r, p.scrub); err != nil {
			return nil, err
		}
	case opMetrics:
		p.metrics = &obs.Snapshot{}
		if err := decodeJSON(&r, p.metrics); err != nil {
			return nil, err
		}
	case opTrace, opSlowLog:
		p.trace = &TraceDump{}
		if err := decodeJSON(&r, p.trace); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func decodeJSON(r *wireReader, v any) error {
	blob, err := r.bytes()
	if err != nil {
		return err
	}
	return json.Unmarshal(blob, v)
}

package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"shardstore/internal/faults"
	"shardstore/internal/store"
)

// gatedKV wraps a real store and blocks Get on designated keys until the
// test releases them — the test double for out-of-order, cancellation, and
// timeout semantics. The server runs each request in its own worker, so a
// blocked Get must not stall the rest of the pipeline.
type gatedKV struct {
	store.KV
	gates map[string]chan struct{}
}

func (g *gatedKV) Get(shardID string) ([]byte, error) {
	if gate, ok := g.gates[shardID]; ok {
		<-gate
	}
	return g.KV.Get(shardID)
}

// newGatedServer builds a one-disk server whose Get blocks on the given
// keys, plus a connected v2 client.
func newGatedServer(t *testing.T, gatedKeys ...string) (*Server, *Client, map[string]chan struct{}) {
	t.Helper()
	st, _, err := store.New(store.Config{Seed: 1, Bugs: faults.NewSet()})
	if err != nil {
		t.Fatal(err)
	}
	gates := make(map[string]chan struct{})
	for _, k := range gatedKeys {
		gates[k] = make(chan struct{})
	}
	srv := NewServerKV([]store.KV{&gatedKV{KV: st, gates: gates}})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return srv, c, gates
}

// release opens a gate exactly once (safe to call from Cleanup too).
func release(gate chan struct{}) {
	select {
	case <-gate:
	default:
		close(gate)
	}
}

// TestOutOfOrderCompletion: a slow Get issued first must not block a fast
// Put issued after it on the same connection — responses return out of
// order.
func TestOutOfOrderCompletion(t *testing.T) {
	ctx := context.Background()
	_, c, gates := newGatedServer(t, "slow")
	t.Cleanup(func() { release(gates["slow"]) })

	if err := c.Put(ctx, "slow", []byte("blocked value")); err != nil {
		t.Fatal(err)
	}
	slow := c.GoGet("slow") // server-side handler parks on the gate

	// The pipeline stays live: this full round trip completes while the
	// earlier request is still parked.
	if err := c.Put(ctx, "fast", []byte("v")); err != nil {
		t.Fatalf("put behind a slow get: %v", err)
	}
	v, err := c.Get(ctx, "fast")
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("get behind a slow get: %q %v", v, err)
	}

	release(gates["slow"])
	got, err := slow.Wait(ctx)
	if err != nil || !bytes.Equal(got, []byte("blocked value")) {
		t.Fatalf("slow get after release: %q %v", got, err)
	}
}

// TestPerCallCancellation: cancelling one call's context abandons only that
// request id; the late response is discarded and the connection survives.
func TestPerCallCancellation(t *testing.T) {
	ctx := context.Background()
	_, c, gates := newGatedServer(t, "slow")
	t.Cleanup(func() { release(gates["slow"]) })

	if err := c.Put(ctx, "slow", []byte("v")); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	slow := c.GoGet("slow")
	cancel()
	if _, err := slow.Wait(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call: %v", err)
	}

	// The connection survives; the discarded late response does not cross
	// wires with new calls.
	release(gates["slow"])
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("after-cancel-%d", i)
		if err := c.Put(ctx, id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		v, err := c.Get(ctx, id)
		if err != nil || v[0] != byte(i) {
			t.Fatalf("call after cancellation %d: %q %v", i, v, err)
		}
	}
	if n := c.pendingCount(); n != 0 {
		t.Fatalf("pending map not drained: %d", n)
	}
}

// TestTimeoutConnectionSurvives: a per-call context deadline is the only
// timeout mechanism; a timed-out call abandons its request id and the SAME
// client keeps working (the v1 "connection is broken after timeout" wart).
func TestTimeoutConnectionSurvives(t *testing.T) {
	ctx := context.Background()
	_, c, gates := newGatedServer(t, "stalled")
	t.Cleanup(func() { release(gates["stalled"]) })

	if err := c.Put(ctx, "stalled", []byte("v")); err != nil {
		t.Fatal(err)
	}
	tctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	start := time.Now() //shardlint:allow determinism wall-clock upper bound on client timeout, not a replayed path
	_, err := c.Get(tctx, "stalled")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled call: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second { //shardlint:allow determinism wall-clock upper bound on client timeout, not a replayed path
		t.Fatalf("timeout took %v", elapsed)
	}

	// Same connection, next call (no deadline): healthy.
	if err := c.Put(ctx, "fine", []byte("v2")); err != nil {
		t.Fatalf("connection did not survive the timeout: %v", err)
	}
	v, err := c.Get(ctx, "fine")
	if err != nil || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("read after timeout: %q %v", v, err)
	}
	if n := c.pendingCount(); n != 0 {
		t.Fatalf("pending map not drained: %d", n)
	}
}

// TestDemuxCleanupOnServerClose: when the server closes mid-flight, every
// pending call fails promptly and the pending map drains.
func TestDemuxCleanupOnServerClose(t *testing.T) {
	ctx := context.Background()
	srv, c, gates := newGatedServer(t, "slow")

	if err := c.Put(ctx, "slow", []byte("v")); err != nil {
		t.Fatal(err)
	}
	calls := make([]*Call, 4)
	for i := range calls {
		calls[i] = c.GoGet("slow")
	}

	// Close in the background: it tears down the connection immediately,
	// then blocks until the parked handlers drain.
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()

	for i, call := range calls {
		if _, err := call.Wait(ctx); err == nil {
			t.Fatalf("call %d survived server close", i)
		}
	}
	if n := c.pendingCount(); n != 0 {
		t.Fatalf("pending map not drained after server close: %d", n)
	}
	release(gates["slow"])
	<-closed
}

// TestMultiOps: MPut/MGet/MDelete are one frame each with per-item status
// codes; a missing shard fails only its own slot.
func TestMultiOps(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, 3)
	ids := make([]string, 12)
	vals := make([][]byte, 12)
	for i := range ids {
		ids[i] = fmt.Sprintf("batch-%02d", i)
		vals[i] = bytes.Repeat([]byte{byte(i + 1)}, 8+i)
	}
	perr, err := c.MPut(ctx, ids, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range perr {
		if e != nil {
			t.Fatalf("mput item %d: %v", i, e)
		}
	}

	probe := append([]string{"missing-shard"}, ids...)
	res, err := c.MGet(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res[0].Err, ErrNotFound) {
		t.Fatalf("missing item: %+v", res[0])
	}
	for i, id := range ids {
		r := res[i+1]
		if r.Err != nil || !bytes.Equal(r.Value, vals[i]) {
			t.Fatalf("mget %s: %q %v", id, r.Value, r.Err)
		}
	}

	derr, err := c.MDelete(ctx, ids[:6])
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range derr {
		if e != nil {
			t.Fatalf("mdelete item %d: %v", i, e)
		}
	}
	res, err = c.MGet(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if i < 6 && !errors.Is(res[i].Err, ErrNotFound) {
			t.Fatalf("deleted item %d still readable: %+v", i, res[i])
		}
		if i >= 6 && res[i].Err != nil {
			t.Fatalf("surviving item %d: %v", i, res[i].Err)
		}
	}
}

// TestV1CompatShim: a legacy lock-step JSON client still talks to the v2
// server — the connection sniff keeps old deployments working.
func TestV1CompatShim(t *testing.T) {
	srv, _ := newTestServer(t, 2)
	addr := srv.ln.Addr().String()
	c, err := DialV1(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("v1-shard", []byte("legacy")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("v1-shard")
	if err != nil || !bytes.Equal(v, []byte("legacy")) {
		t.Fatalf("v1 get: %q %v", v, err)
	}
	ids, err := c.List()
	if err != nil || len(ids) != 1 {
		t.Fatalf("v1 list: %v %v", ids, err)
	}
	if _, err := c.Get("never-stored"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("v1 typed error mapping: %v", err)
	}
	if err := c.Delete("v1-shard"); err != nil {
		t.Fatal(err)
	}

	// v1 and v2 clients interleave on the same server.
	ctx := context.Background()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Put(ctx, "v2-shard", []byte("pipelined")); err != nil {
		t.Fatal(err)
	}
	v, err = c.Get("v2-shard")
	if err != nil || !bytes.Equal(v, []byte("pipelined")) {
		t.Fatalf("v1 reads v2 write: %q %v", v, err)
	}
}

// minimalKV is a KV-only backend (no scrubber, no scheduler, no metrics):
// the request plane must work and the control plane must answer
// CodeUnsupported instead of panicking.
type minimalKV struct{ store.KV }

func TestKVOnlyBackend(t *testing.T) {
	ctx := context.Background()
	st, _, err := store.New(store.Config{Seed: 1, Bugs: faults.NewSet()})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerKV([]store.KV{minimalKV{KV: st}})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get(ctx, "k")
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("kv-only get: %q %v", v, err)
	}
	if err := c.Flush(ctx, 0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("flush on kv-only backend: %v", err)
	}
	if _, err := c.Scrub(ctx, 0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("scrub on kv-only backend: %v", err)
	}
	if err := c.RemoveDisk(ctx, 0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("remove_disk on kv-only backend: %v", err)
	}
	// Stats degrade gracefully: listing works, instrumented columns zero.
	stats, err := c.Stats(ctx)
	if err != nil || stats.Shards != 1 {
		t.Fatalf("kv-only stats: %+v %v", stats, err)
	}
}

package rpc

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"shardstore/internal/obs"
	"shardstore/internal/store"
)

// Client is the v2 pipelined client. It is safe for concurrent use and —
// unlike the lock-step ClientV1 — keeps many requests in flight on one
// connection: each call is assigned a request id, frames are written
// back-to-back, and a demux loop routes responses (which may arrive out of
// order) to their callers.
//
// Every call takes a context.Context: cancellation or a deadline abandons
// that one request id (the demux loop discards the late response) and the
// connection stays healthy for every other call.
type Client struct {
	conn net.Conn

	// Outbound frames flow through a dedicated writer goroutine that
	// write-combines: whatever has queued since its last syscall goes out as
	// ONE conn.Write. Under pipelined load (many submitters, deep windows)
	// this collapses dozens of tiny frame writes — and with TCP_NODELAY,
	// packets — into each syscall; an uncontended call still writes
	// immediately because the channel hands its frame straight over.
	writeCh    chan []byte
	writerDone chan struct{}
	stop       chan struct{}
	stopOnce   sync.Once

	mu      sync.Mutex
	pending map[uint64]*Call
	nextID  uint64
	err     error // set once the demux loop exits; sticky

	// tracing marks every subsequent request frame with flagTraced, asking
	// the server to trace it end-to-end under the frame's request id. A
	// server without tracing ignores the bit (and does not echo it), so
	// enabling this against any peer is safe.
	tracing atomic.Bool
}

// Dial connects to a server with the v2 pipelined protocol.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects with the v2 pipelined protocol, honoring ctx for
// the TCP dial.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(preambleV2[:]); err != nil {
		_ = conn.Close()
		return nil, err
	}
	c := &Client{
		conn:       conn,
		writeCh:    make(chan []byte, 256),
		writerDone: make(chan struct{}),
		stop:       make(chan struct{}),
		pending:    make(map[uint64]*Call),
	}
	go c.demux()
	go c.writeLoop()
	return c, nil
}

// Close closes the connection. In-flight calls fail with net.ErrClosed.
func (c *Client) Close() error {
	c.stopOnce.Do(func() { close(c.stop) })
	err := c.conn.Close()
	return err
}

// writeLoop is the write-combining sender: it drains every frame queued on
// writeCh and emits them as a single conn.Write. On a write error it fails
// all pending calls (the read side of a half-broken connection might stay
// up) and exits; closing writerDone unblocks submitters.
func (c *Client) writeLoop() {
	defer close(c.writerDone)
	var buf []byte
	for {
		select {
		case frame := <-c.writeCh:
			buf = append(buf[:0], frame...)
		drain:
			for len(buf) < MaxFrame {
				select {
				case more := <-c.writeCh:
					buf = append(buf, more...)
				default:
					break drain
				}
			}
			if _, err := c.conn.Write(buf); err != nil {
				c.failAll(err)
				return
			}
		case <-c.stop:
			return
		}
	}
}

// Deadlines and cancellation are the caller's context's job — every call
// takes a context.Context and there is no client-level timeout knob. A
// timed-out or cancelled call abandons its request id (the demux loop
// discards the late response), so the connection SURVIVES and other calls
// proceed untouched. The legacy lock-step client keeps its documented
// ClientV1.SetTimeout for v1 compatibility.

// demux is the response loop: one reader per connection, routing frames to
// pending calls by request id. Responses for abandoned ids (cancelled or
// timed-out callers) are discarded. On a connection error every pending
// call fails and the client is sticky-broken.
func (c *Client) demux() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		h, payload, err := readFrameV2(br)
		if err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		call, ok := c.pending[h.id]
		if ok {
			delete(c.pending, h.id)
		}
		c.mu.Unlock()
		if !ok {
			continue // abandoned call: discard the late response
		}
		call.flags = h.flags // e.g. the server's flagTraced echo
		p, derr := decodeResp(call.op, payload)
		if derr != nil {
			p = respErr(CodeInternal, "decode response: "+derr.Error())
		}
		call.ch <- p // buffered; never blocks
	}
}

// failAll terminates every pending call after the demux loop exits.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	calls := c.pending
	c.pending = make(map[uint64]*Call)
	c.mu.Unlock()
	for _, call := range calls {
		close(call.ch)
	}
}

// connErr reports why the connection died.
func (c *Client) connErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return net.ErrClosed
}

// pendingCount reports in-flight calls (tests assert demux cleanup).
func (c *Client) pendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// SetTracing toggles server-side tracing for subsequent requests from this
// client (the flagTraced negotiation bit).
func (c *Client) SetTracing(on bool) { c.tracing.Store(on) }

// Call is one in-flight request: the future returned by the Go* forms.
type Call struct {
	c     *Client
	op    Opcode
	id    uint64
	ch    chan *wireResp
	err   error // submit-time failure; Wait returns it
	flags uint8 // response frame flags (set by demux before delivery)
}

// submit encodes and writes one request frame, registering the pending
// call. It never blocks on the response.
func (c *Client) submit(q *wireReq) *Call {
	call := &Call{c: c, op: q.op, ch: make(chan *wireResp, 1)}
	payload, err := encodeReq(q)
	if err != nil {
		call.err = err
		return call
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		call.err = err
		return call
	}
	c.nextID++
	call.id = c.nextID
	c.pending[call.id] = call
	c.mu.Unlock()

	var flags uint8
	if q.durable {
		flags |= flagDurable
	}
	if c.tracing.Load() {
		flags |= flagTraced
	}
	frame, werr := appendFrameV2(nil, q.op, flags, call.id, payload)
	if werr == nil {
		select {
		case c.writeCh <- frame:
		case <-c.writerDone:
			werr = c.connErr()
		}
	}
	if werr != nil {
		c.abandon(call.id)
		call.err = werr
	}
	return call
}

// abandon forgets a request id; the demux loop will discard its response.
func (c *Client) abandon(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// waitResp blocks for the response, the context, or connection death.
func (call *Call) waitResp(ctx context.Context) (*wireResp, error) {
	if call.err != nil {
		return nil, call.err
	}
	select {
	case p, ok := <-call.ch:
		if !ok {
			return nil, call.c.connErr()
		}
		if p.code != CodeOK {
			return nil, wireErr(p.code, p.msg)
		}
		return p, nil
	case <-ctx.Done():
		call.c.abandon(call.id)
		return nil, ctx.Err()
	}
}

// Wait blocks until the call completes, the context is done, or the
// connection dies. For a GoGet call the returned bytes are the shard value;
// mutating calls return nil bytes. A context expiry abandons only this
// call — the connection survives.
func (call *Call) Wait(ctx context.Context) ([]byte, error) {
	p, err := call.waitResp(ctx)
	if err != nil {
		return nil, err
	}
	if call.op == opGet && p.value == nil {
		return []byte{}, nil
	}
	return p.value, nil
}

// roundTrip is the synchronous form: submit + wait.
func (c *Client) roundTrip(ctx context.Context, q *wireReq) (*wireResp, error) {
	return c.submit(q).waitResp(ctx)
}

// --- async futures (harness-driven concurrency) ---

// GoPut issues a put without waiting; Wait resolves it.
func (c *Client) GoPut(shardID string, value []byte) *Call {
	return c.submit(&wireReq{op: opPut, key: shardID, value: value})
}

// GoGet issues a get without waiting; Wait returns the value.
func (c *Client) GoGet(shardID string) *Call {
	return c.submit(&wireReq{op: opGet, key: shardID})
}

// GoDelete issues a delete without waiting; Wait resolves it.
func (c *Client) GoDelete(shardID string) *Call {
	return c.submit(&wireReq{op: opDelete, key: shardID})
}

// --- request plane ---

// Put stores a shard.
func (c *Client) Put(ctx context.Context, shardID string, value []byte) error {
	_, err := c.roundTrip(ctx, &wireReq{op: opPut, key: shardID, value: value})
	return err
}

// PutDurable stores a shard and returns only once the server reports the
// write persistent: the server enrolls the put in its group-commit barrier,
// so concurrent PutDurable calls from any number of clients share device
// flushes instead of paying one per call.
func (c *Client) PutDurable(ctx context.Context, shardID string, value []byte) error {
	_, err := c.roundTrip(ctx, &wireReq{op: opPut, key: shardID, value: value, durable: true})
	return err
}

// Get fetches a shard.
func (c *Client) Get(ctx context.Context, shardID string) ([]byte, error) {
	p, err := c.roundTrip(ctx, &wireReq{op: opGet, key: shardID})
	if err != nil {
		return nil, err
	}
	if p.value == nil {
		return []byte{}, nil
	}
	return p.value, nil
}

// Delete removes a shard.
func (c *Client) Delete(ctx context.Context, shardID string) error {
	_, err := c.roundTrip(ctx, &wireReq{op: opDelete, key: shardID})
	return err
}

// BatchResult is one item's outcome in an MGet.
type BatchResult struct {
	Value []byte
	Err   error // nil, or a *WireError matching the sentinel taxonomy
}

// itemErrs lowers per-item wire codes into errors (nil for OK).
func itemErrs(codes []Code) []error {
	errs := make([]error, len(codes))
	for i, code := range codes {
		errs[i] = wireErr(code, "")
	}
	return errs
}

// MGet fetches a batch of shards in ONE frame. Items are steered across
// disks server-side; outcomes are per item — a missing shard yields
// ErrNotFound in its slot without failing the rest.
func (c *Client) MGet(ctx context.Context, shardIDs []string) ([]BatchResult, error) {
	p, err := c.roundTrip(ctx, &wireReq{op: opMGet, keys: shardIDs})
	if err != nil {
		return nil, err
	}
	if len(p.itemCodes) != len(shardIDs) {
		return nil, fmt.Errorf("rpc: mget returned %d items for %d ids", len(p.itemCodes), len(shardIDs))
	}
	out := make([]BatchResult, len(shardIDs))
	for i, code := range p.itemCodes {
		if code == CodeOK {
			v := p.values[i]
			if v == nil {
				v = []byte{}
			}
			out[i] = BatchResult{Value: v}
		} else {
			out[i] = BatchResult{Err: wireErr(code, "")}
		}
	}
	return out, nil
}

// MPut stores a batch of shards in ONE frame with per-item outcomes.
func (c *Client) MPut(ctx context.Context, shardIDs []string, values [][]byte) ([]error, error) {
	p, err := c.roundTrip(ctx, &wireReq{op: opMPut, keys: shardIDs, values: values})
	if err != nil {
		return nil, err
	}
	if len(p.itemCodes) != len(shardIDs) {
		return nil, fmt.Errorf("rpc: mput returned %d items for %d ids", len(p.itemCodes), len(shardIDs))
	}
	return itemErrs(p.itemCodes), nil
}

// MPutDurable is MPut with a durability barrier: the server acknowledges
// each item only after its write is persistent, amortizing one group commit
// across the whole batch (per target disk).
func (c *Client) MPutDurable(ctx context.Context, shardIDs []string, values [][]byte) ([]error, error) {
	p, err := c.roundTrip(ctx, &wireReq{op: opMPut, keys: shardIDs, values: values, durable: true})
	if err != nil {
		return nil, err
	}
	if len(p.itemCodes) != len(shardIDs) {
		return nil, fmt.Errorf("rpc: mput returned %d items for %d ids", len(p.itemCodes), len(shardIDs))
	}
	return itemErrs(p.itemCodes), nil
}

// MDelete removes a batch of shards in ONE frame with per-item outcomes.
func (c *Client) MDelete(ctx context.Context, shardIDs []string) ([]error, error) {
	p, err := c.roundTrip(ctx, &wireReq{op: opMDelete, keys: shardIDs})
	if err != nil {
		return nil, err
	}
	if len(p.itemCodes) != len(shardIDs) {
		return nil, fmt.Errorf("rpc: mdelete returned %d items for %d ids", len(p.itemCodes), len(shardIDs))
	}
	return itemErrs(p.itemCodes), nil
}

// Scan fetches one ordered page of the range [start, end): live shards in
// ascending byte order, newest value each, end "" unbounded, limit 0 letting
// the server pick its page cap. next is the continuation token: "" means the
// range is exhausted; otherwise pass it as the next call's start to resume
// the cursor. Fails with ErrUnsupported when any backend lacks the
// ordered-map capability.
func (c *Client) Scan(ctx context.Context, start, end string, limit int) (entries []store.ScanEntry, next string, err error) {
	p, err := c.roundTrip(ctx, &wireReq{op: opScan, key: start, end: end, limit: limit})
	if err != nil {
		return nil, "", err
	}
	entries = make([]store.ScanEntry, len(p.keys))
	for i, k := range p.keys {
		v := p.values[i]
		if v == nil {
			v = []byte{}
		}
		entries[i] = store.ScanEntry{Key: k, Value: v}
	}
	return entries, p.next, nil
}

// Iterator streams the ordered range [start, end), fetching pages of up to
// pageSize entries (0 = server's cap) and refetching transparently via
// continuation tokens, so callers see one seamless cursor regardless of how
// the server paginates under its frame cap.
type Iterator struct {
	c        *Client
	ctx      context.Context
	end      string
	pageSize int
	cursor   string
	buf      []store.ScanEntry
	i        int
	done     bool
	err      error
}

// Iterator starts a streaming scan of [start, end).
func (c *Client) Iterator(ctx context.Context, start, end string, pageSize int) *Iterator {
	return &Iterator{c: c, ctx: ctx, end: end, pageSize: pageSize, cursor: start}
}

// Next advances to the next entry, fetching the next page when the buffered
// one is spent. It returns false at the end of the range or on error (check
// Err to tell the two apart).
func (it *Iterator) Next() bool {
	for {
		if it.err != nil {
			return false
		}
		if it.i < len(it.buf) {
			it.i++
			return true
		}
		if it.done {
			return false
		}
		entries, next, err := it.c.Scan(it.ctx, it.cursor, it.end, it.pageSize)
		if err != nil {
			it.err = err
			return false
		}
		it.buf, it.i = entries, 0
		it.cursor = next
		it.done = next == ""
		// An empty non-final page still advanced the cursor; refetch.
	}
}

// Entry returns the current entry (valid after a true Next).
func (it *Iterator) Entry() store.ScanEntry { return it.buf[it.i-1] }

// Err returns the terminal error, if Next stopped on one.
func (it *Iterator) Err() error { return it.err }

// --- control plane ---

// List returns all shard ids across disks.
func (c *Client) List(ctx context.Context) ([]string, error) {
	p, err := c.roundTrip(ctx, &wireReq{op: opList})
	if err != nil {
		return nil, err
	}
	return p.keys, nil
}

// BulkCreate stores a batch of shards (control plane, fail-fast).
func (c *Client) BulkCreate(ctx context.Context, ids []string, values [][]byte) error {
	_, err := c.roundTrip(ctx, &wireReq{op: opBulkCreate, keys: ids, values: values})
	return err
}

// BulkRemove deletes a batch of shards (control plane, fail-fast).
func (c *Client) BulkRemove(ctx context.Context, ids []string) error {
	_, err := c.roundTrip(ctx, &wireReq{op: opBulkRemove, keys: ids})
	return err
}

// RemoveDisk takes disk idx out of service.
func (c *Client) RemoveDisk(ctx context.Context, idx int) error {
	_, err := c.roundTrip(ctx, &wireReq{op: opRemoveDisk, disk: idx})
	return err
}

// ReturnDisk brings disk idx back into service.
func (c *Client) ReturnDisk(ctx context.Context, idx int) error {
	_, err := c.roundTrip(ctx, &wireReq{op: opReturnDisk, disk: idx})
	return err
}

// Flush pumps disk idx's IO scheduler to durability.
func (c *Client) Flush(ctx context.Context, idx int) error {
	_, err := c.roundTrip(ctx, &wireReq{op: opFlush, disk: idx})
	return err
}

// Scrub runs one full integrity-scrub round on disk idx and returns the
// disk's cumulative scrubber state afterwards.
func (c *Client) Scrub(ctx context.Context, idx int) (*ScrubStatus, error) {
	p, err := c.roundTrip(ctx, &wireReq{op: opScrub, disk: idx})
	if err != nil {
		return nil, err
	}
	return p.scrub, nil
}

// ScrubStatus reports disk idx's scrubber state without scrubbing.
func (c *Client) ScrubStatus(ctx context.Context, idx int) (*ScrubStatus, error) {
	p, err := c.roundTrip(ctx, &wireReq{op: opScrubStatus, disk: idx})
	if err != nil {
		return nil, err
	}
	return p.scrub, nil
}

// Stats returns the aggregate server statistics.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	p, err := c.roundTrip(ctx, &wireReq{op: opStats})
	if err != nil {
		return nil, err
	}
	return p.stats, nil
}

// Metrics returns the host-wide observability snapshot: the server's rpc
// metrics merged with every metered backend's registry.
func (c *Client) Metrics(ctx context.Context) (*obs.Snapshot, error) {
	p, err := c.roundTrip(ctx, &wireReq{op: opMetrics})
	if err != nil {
		return nil, err
	}
	if p.metrics == nil {
		return &obs.Snapshot{}, nil
	}
	return p.metrics, nil
}

// Trace returns the server's last completed request traces (oldest-first).
// Requires the server to run with tracing enabled; otherwise the call fails
// with ErrUnsupported.
func (c *Client) Trace(ctx context.Context) (*TraceDump, error) {
	p, err := c.roundTrip(ctx, &wireReq{op: opTrace})
	if err != nil {
		return nil, err
	}
	if p.trace == nil {
		return &TraceDump{}, nil
	}
	return p.trace, nil
}

// SlowLog returns the server's retained slow-request traces: completed
// requests whose duration met the server's slow threshold.
func (c *Client) SlowLog(ctx context.Context) (*TraceDump, error) {
	p, err := c.roundTrip(ctx, &wireReq{op: opSlowLog})
	if err != nil {
		return nil, err
	}
	if p.trace == nil {
		return &TraceDump{}, nil
	}
	return p.trace, nil
}

package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"shardstore/internal/coverage"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/store"
)

func newTestServer(t *testing.T, disks int) (*Server, *Client) {
	t.Helper()
	var stores []*store.Store
	for i := 0; i < disks; i++ {
		st, _, err := store.New(store.Config{Seed: int64(i + 1), Bugs: faults.NewSet()})
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, st)
	}
	srv := NewServer(stores)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return srv, c
}

func TestPutGetDeleteOverRPC(t *testing.T) {
	_, c := newTestServer(t, 3)
	if err := c.Put("shard-1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("shard-1")
	if err != nil || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("get: %q %v", v, err)
	}
	if err := c.Delete("shard-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("shard-1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted shard: %v", err)
	}
}

func TestSteeringSpreadsShards(t *testing.T) {
	srv, c := newTestServer(t, 4)
	for i := 0; i < 40; i++ {
		if err := c.Put(fmt.Sprintf("shard-%03d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	stats := srv.stats()
	nonEmpty := 0
	for _, n := range stats.ShardsPer {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 3 {
		t.Fatalf("steering did not spread shards: %v", stats.ShardsPer)
	}
	if stats.Shards != 40 {
		t.Fatalf("total shards: %d", stats.Shards)
	}
}

func TestSteeringIsStable(t *testing.T) {
	srv, c := newTestServer(t, 4)
	if err := c.Put("stable-shard", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if srv.steer("stable-shard") != srv.steer("stable-shard") {
		t.Fatal("steering nondeterministic")
	}
	// Overwrite routes to the same disk: the value is replaced, not duplicated.
	if err := c.Put("stable-shard", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, _ := c.Get("stable-shard")
	if !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("overwrite: %q", v)
	}
	ids, _ := c.List()
	count := 0
	for _, id := range ids {
		if id == "stable-shard" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("shard appears %d times", count)
	}
}

func TestListAcrossDisks(t *testing.T) {
	_, c := newTestServer(t, 3)
	want := map[string]bool{}
	for i := 0; i < 9; i++ {
		id := fmt.Sprintf("s%d", i)
		want[id] = true
		if err := c.Put(id, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 9 {
		t.Fatalf("list: %v", ids)
	}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected shard %q", id)
		}
	}
}

func TestBulkOps(t *testing.T) {
	_, c := newTestServer(t, 2)
	ids := []string{"a", "b", "c"}
	vals := [][]byte{{1}, {2}, {3}}
	if err := c.BulkCreate(ids, vals); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		v, err := c.Get(id)
		if err != nil || !bytes.Equal(v, vals[i]) {
			t.Fatalf("bulk-created %q: %v %v", id, v, err)
		}
	}
	if err := c.BulkRemove([]string{"a", "c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("a not removed")
	}
	if _, err := c.Get("b"); err != nil {
		t.Fatal("b removed by mistake")
	}
}

func TestServiceCycleOverRPC(t *testing.T) {
	srv, c := newTestServer(t, 2)
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	disk := srv.steer("k")
	if err := c.RemoveDisk(disk); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrOutOfService) {
		t.Fatalf("out-of-service read: %v", err)
	}
	if err := c.ReturnDisk(disk); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("k")
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("after return: %q %v", v, err)
	}
}

func TestFlushAndStats(t *testing.T) {
	_, c := newTestServer(t, 2)
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(1); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Disks != 2 || stats.Shards != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestEmptyValueRoundTrip(t *testing.T) {
	_, c := newTestServer(t, 1)
	if err := c.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("empty")
	if err != nil || v == nil || len(v) != 0 {
		t.Fatalf("empty value: %v %v", v, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := newTestServer(t, 2)
	addr := srv.ln.Addr().String()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				id := fmt.Sprintf("g%d-s%d", g, i)
				if err := c.Put(id, []byte{byte(g), byte(i)}); err != nil {
					errs <- err
					return
				}
				v, err := c.Get(id)
				if err != nil || v[0] != byte(g) {
					errs <- fmt.Errorf("read-after-write %s: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// newScrubServer builds a one-disk server whose store replicates chunks and
// whose disk accepts silent-corruption injection, returning the raw store and
// disk handles for out-of-band rot.
func newScrubServer(t *testing.T) (*store.Store, *disk.Disk, *Client) {
	t.Helper()
	set := faults.NewSet()
	set.Enable(faults.FaultSilentCorruption)
	dcfg := disk.DefaultConfig()
	dcfg.Faults = set
	st, d, err := store.New(store.Config{
		Disk:     dcfg,
		Seed:     1,
		Bugs:     set,
		Coverage: coverage.NewRegistry(),
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer([]*store.Store{st})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return st, d, c
}

func TestScrubOverRPC(t *testing.T) {
	st, d, c := newScrubServer(t)
	value := []byte("replicated over the wire")
	if err := c.Put("wire-shard", value); err != nil {
		t.Fatal(err)
	}
	// Make everything durable so rot on the durable image is observable.
	if _, err := st.FlushIndex(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.FlushSuperblock(); err != nil {
		t.Fatal(err)
	}
	if err := st.Scheduler().Pump(); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	entry, err := st.Index().Get("wire-shard")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := store.DecodeEntryGroups(entry)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("entry groups = %v, want 1 piece × 2 replicas", groups)
	}
	loc := groups[0][0]
	if !d.CorruptPage(loc.Extent, loc.Offset/d.Config().PageSize, disk.RotZero, 1) {
		t.Fatalf("CorruptPage(%v) refused", loc)
	}

	status, err := c.Scrub(0)
	if err != nil {
		t.Fatal(err)
	}
	if status.Rounds < 1 || status.BadReplicas < 1 || status.Repaired < 1 {
		t.Fatalf("scrub status after repair: %+v", status)
	}
	if len(status.LostShards) != 0 {
		t.Fatalf("k < R rot must be repairable, got lost shards %v", status.LostShards)
	}
	got, err := c.Get("wire-shard")
	if err != nil || !bytes.Equal(got, value) {
		t.Fatalf("get after repair: %q %v", got, err)
	}
	status2, err := c.ScrubStatus(0)
	if err != nil {
		t.Fatal(err)
	}
	if status2.Repaired != status.Repaired || status2.Rounds != status.Rounds {
		t.Fatalf("scrub_status drifted without scrubbing: %+v vs %+v", status2, status)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.ScrubRounds) != 1 || stats.ScrubRounds[0] != status.Rounds || stats.ScrubLost[0] != 0 {
		t.Fatalf("aggregate scrub stats: %+v", stats)
	}
}

// TestClientTimeoutOnStalledServer: a server that accepts the connection but
// never responds must not hang a client with a per-call timeout configured.
func TestClientTimeoutOnStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				<-stop // swallow the request, never answer
			}(conn)
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(100 * time.Millisecond)
	start := time.Now() //shardlint:allow determinism wall-clock upper bound on client timeout, not a replayed path
	_, err = c.Get("never-answered")
	if err == nil {
		t.Fatal("call against stalled server succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want timeout net.Error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second { //shardlint:allow determinism wall-clock upper bound on client timeout, not a replayed path
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestBadRequests(t *testing.T) {
	_, c := newTestServer(t, 1)
	resp, err := c.call(&Request{Op: "bogus"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeBadRequest {
		t.Fatalf("bogus op: %+v", resp)
	}
	resp, _ = c.call(&Request{Op: OpPut})
	if resp.OK {
		t.Fatal("put without shard id accepted")
	}
	resp, _ = c.call(&Request{Op: OpBulkCreate, Shards: []string{"a"}, Values: nil})
	if resp.OK {
		t.Fatal("mismatched bulk create accepted")
	}
}

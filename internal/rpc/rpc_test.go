package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"shardstore/internal/coverage"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/store"
)

func newTestStores(tb testing.TB, disks int) []*store.Store {
	tb.Helper()
	var stores []*store.Store
	for i := 0; i < disks; i++ {
		st, _, err := store.New(store.Config{Seed: int64(i + 1), Bugs: faults.NewSet()})
		if err != nil {
			tb.Fatal(err)
		}
		stores = append(stores, st)
	}
	return stores
}

// newWideStores builds stores with production-ish disk geometry and
// auto-flush thresholds — enough extent headroom for high-volume pipeline
// load (the hammer and throughput tests overwrite thousands of shards).
func newWideStores(tb testing.TB, disks int) []*store.Store {
	tb.Helper()
	var stores []*store.Store
	for i := 0; i < disks; i++ {
		cfg := store.Config{Seed: int64(i + 1), Bugs: faults.NewSet()}
		cfg.Disk.PageSize = 4096
		cfg.Disk.PagesPerExtent = 256
		cfg.Disk.ExtentCount = 64
		cfg.MaxMemEntries = 128
		cfg.AutoFlushThreshold = 64
		st, _, err := store.New(cfg)
		if err != nil {
			tb.Fatal(err)
		}
		stores = append(stores, st)
	}
	return stores
}

func newWideServer(tb testing.TB, disks int) (*Server, *Client) {
	tb.Helper()
	srv := NewServer(newWideStores(tb, disks))
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(srv.Close)
	c, err := Dial(addr)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = c.Close() })
	return srv, c
}

func newTestServer(tb testing.TB, disks int) (*Server, *Client) {
	tb.Helper()
	srv := NewServer(newTestStores(tb, disks))
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(srv.Close)
	c, err := Dial(addr)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = c.Close() })
	return srv, c
}

func TestPutGetDeleteOverRPC(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, 3)
	if err := c.Put(ctx, "shard-1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get(ctx, "shard-1")
	if err != nil || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("get: %q %v", v, err)
	}
	if err := c.Delete(ctx, "shard-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "shard-1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted shard: %v", err)
	}
}

func TestSteeringSpreadsShards(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, 4)
	for i := 0; i < 40; i++ {
		if err := c.Put(ctx, fmt.Sprintf("shard-%03d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	stats := srv.stats()
	nonEmpty := 0
	for _, n := range stats.ShardsPer {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 3 {
		t.Fatalf("steering did not spread shards: %v", stats.ShardsPer)
	}
	if stats.Shards != 40 {
		t.Fatalf("total shards: %d", stats.Shards)
	}
}

func TestSteeringIsStable(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, 4)
	if err := c.Put(ctx, "stable-shard", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if srv.steer("stable-shard") != srv.steer("stable-shard") {
		t.Fatal("steering nondeterministic")
	}
	// Overwrite routes to the same disk: the value is replaced, not duplicated.
	if err := c.Put(ctx, "stable-shard", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, _ := c.Get(ctx, "stable-shard")
	if !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("overwrite: %q", v)
	}
	ids, _ := c.List(ctx)
	count := 0
	for _, id := range ids {
		if id == "stable-shard" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("shard appears %d times", count)
	}
}

func TestListAcrossDisks(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, 3)
	want := map[string]bool{}
	for i := 0; i < 9; i++ {
		id := fmt.Sprintf("s%d", i)
		want[id] = true
		if err := c.Put(ctx, id, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 9 {
		t.Fatalf("list: %v", ids)
	}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected shard %q", id)
		}
	}
}

func TestBulkOps(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, 2)
	ids := []string{"a", "b", "c"}
	vals := [][]byte{{1}, {2}, {3}}
	if err := c.BulkCreate(ctx, ids, vals); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		v, err := c.Get(ctx, id)
		if err != nil || !bytes.Equal(v, vals[i]) {
			t.Fatalf("bulk-created %q: %v %v", id, v, err)
		}
	}
	if err := c.BulkRemove(ctx, []string{"a", "c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("a not removed")
	}
	if _, err := c.Get(ctx, "b"); err != nil {
		t.Fatal("b removed by mistake")
	}
}

func TestServiceCycleOverRPC(t *testing.T) {
	ctx := context.Background()
	srv, c := newTestServer(t, 2)
	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	disk := srv.steer("k")
	if err := c.RemoveDisk(ctx, disk); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "k"); !errors.Is(err, ErrOutOfService) {
		t.Fatalf("out-of-service read: %v", err)
	}
	if err := c.ReturnDisk(ctx, disk); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get(ctx, "k")
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("after return: %q %v", v, err)
	}
}

func TestFlushAndStats(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, 2)
	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx, 1); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Disks != 2 || stats.Shards != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestEmptyValueRoundTrip(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, 1)
	if err := c.Put(ctx, "empty", nil); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get(ctx, "empty")
	if err != nil || v == nil || len(v) != 0 {
		t.Fatalf("empty value: %v %v", v, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	ctx := context.Background()
	srv, _ := newTestServer(t, 2)
	addr := srv.ln.Addr().String()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				id := fmt.Sprintf("g%d-s%d", g, i)
				if err := c.Put(ctx, id, []byte{byte(g), byte(i)}); err != nil {
					errs <- err
					return
				}
				v, err := c.Get(ctx, id)
				if err != nil || v[0] != byte(g) {
					errs <- fmt.Errorf("read-after-write %s: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// newScrubServer builds a one-disk server whose store replicates chunks and
// whose disk accepts silent-corruption injection, returning the raw store and
// disk handles for out-of-band rot.
func newScrubServer(t *testing.T) (*store.Store, *disk.Disk, *Client) {
	t.Helper()
	set := faults.NewSet()
	set.Enable(faults.FaultSilentCorruption)
	dcfg := disk.DefaultConfig()
	dcfg.Faults = set
	st, d, err := store.New(store.Config{
		Disk:     dcfg,
		Seed:     1,
		Bugs:     set,
		Coverage: coverage.NewRegistry(),
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer([]*store.Store{st})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return st, d, c
}

func TestScrubOverRPC(t *testing.T) {
	ctx := context.Background()
	st, d, c := newScrubServer(t)
	value := []byte("replicated over the wire")
	if err := c.Put(ctx, "wire-shard", value); err != nil {
		t.Fatal(err)
	}
	// Make everything durable so rot on the durable image is observable.
	if _, err := st.FlushIndex(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.FlushSuperblock(); err != nil {
		t.Fatal(err)
	}
	if err := st.Scheduler().Pump(); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	entry, err := st.Index().Get("wire-shard")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := store.DecodeEntryGroups(entry)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("entry groups = %v, want 1 piece × 2 replicas", groups)
	}
	loc := groups[0][0]
	if !d.CorruptPage(loc.Extent, loc.Offset/d.Config().PageSize, disk.RotZero, 1) {
		t.Fatalf("CorruptPage(%v) refused", loc)
	}

	status, err := c.Scrub(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if status.Rounds < 1 || status.BadReplicas < 1 || status.Repaired < 1 {
		t.Fatalf("scrub status after repair: %+v", status)
	}
	if len(status.LostShards) != 0 {
		t.Fatalf("k < R rot must be repairable, got lost shards %v", status.LostShards)
	}
	got, err := c.Get(ctx, "wire-shard")
	if err != nil || !bytes.Equal(got, value) {
		t.Fatalf("get after repair: %q %v", got, err)
	}
	status2, err := c.ScrubStatus(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if status2.Repaired != status.Repaired || status2.Rounds != status.Rounds {
		t.Fatalf("scrub_status drifted without scrubbing: %+v vs %+v", status2, status)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.ScrubRounds) != 1 || stats.ScrubRounds[0] != status.Rounds || stats.ScrubLost[0] != 0 {
		t.Fatalf("aggregate scrub stats: %+v", stats)
	}
}

func TestBadRequests(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, 1)
	if err := c.Put(ctx, "", []byte("v")); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("put without shard id: %v", err)
	}
	if err := c.BulkCreate(ctx, []string{"a"}, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("mismatched bulk create: %v", err)
	}
	if _, err := c.MPut(ctx, []string{"a"}, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("mismatched mput: %v", err)
	}
	// A bad request must not poison the connection.
	if err := c.Put(ctx, "ok-after-bad", []byte("v")); err != nil {
		t.Fatal(err)
	}
}

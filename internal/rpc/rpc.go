// Package rpc implements ShardStore's shared RPC interface (§2.1 of the
// paper): storage hosts run an independent key-value store per disk, and a
// shared endpoint "steers requests to target disks based on shard IDs". The
// interface offers the usual request-plane calls (put, get, delete) and
// control-plane operations (list, bulk create/remove, remove/return a disk
// from service, flush, stats).
//
// The wire protocol is deliberately simple: length-prefixed JSON frames over
// TCP, one request/response pair per frame, concurrent requests multiplexed
// by connection.
package rpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"time"

	"shardstore/internal/obs"
	"shardstore/internal/store"
)

// MaxFrame bounds a single request/response frame.
const MaxFrame = 16 << 20

// Op names a wire operation.
type Op string

// Wire operations.
const (
	OpPut         Op = "put"
	OpGet         Op = "get"
	OpDelete      Op = "delete"
	OpList        Op = "list"
	OpBulkCreate  Op = "bulk_create"
	OpBulkRemove  Op = "bulk_remove"
	OpRemoveDisk  Op = "remove_disk"
	OpReturnDisk  Op = "return_disk"
	OpFlush       Op = "flush"
	OpStats       Op = "stats"
	OpScrub       Op = "scrub"        // run one full scrub round on a disk
	OpScrubStatus Op = "scrub_status" // report a disk's scrubber state
	OpMetrics     Op = "metrics"      // full obs registry snapshot, all disks merged
)

// Request is one wire request.
type Request struct {
	Op      Op       `json:"op"`
	ShardID string   `json:"shard_id,omitempty"`
	Value   []byte   `json:"value,omitempty"`
	Shards  []string `json:"shards,omitempty"`
	Values  [][]byte `json:"values,omitempty"`
	Disk    int      `json:"disk,omitempty"` // control-plane target disk
}

// Response is one wire response.
type Response struct {
	OK      bool          `json:"ok"`
	Err     string        `json:"err,omitempty"`
	Code    string        `json:"code,omitempty"` // "not_found", "out_of_service", ...
	Value   []byte        `json:"value,omitempty"`
	Shards  []string      `json:"shards,omitempty"`
	Stats   *Stats        `json:"stats,omitempty"`
	Scrub   *ScrubStatus  `json:"scrub,omitempty"`
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// ScrubStatus is one disk's cumulative scrubber state: the integrity
// counters plus the shards currently recorded as irreparably lost.
type ScrubStatus struct {
	Rounds         uint64   `json:"rounds"`
	KeysScanned    uint64   `json:"keys_scanned"`
	FramesVerified uint64   `json:"frames_verified"`
	BytesVerified  uint64   `json:"bytes_verified"`
	BadReplicas    uint64   `json:"bad_replicas"`
	Repaired       uint64   `json:"repaired"`
	RepairFailed   uint64   `json:"repair_failed"`
	SwapLost       uint64   `json:"swap_lost"`
	Irreparable    uint64   `json:"irreparable"`
	LostShards     []string `json:"lost_shards,omitempty"`
}

// Stats is the aggregate server view.
type Stats struct {
	Disks         int      `json:"disks"`
	Shards        int      `json:"shards"`
	ShardsPer     []int    `json:"shards_per_disk"`
	InService     []bool   `json:"in_service"`
	ChunkPuts     []uint64 `json:"chunk_puts"`
	Reclaims      []uint64 `json:"reclaims"`
	GetsPerDisk   []uint64 `json:"gets_per_disk"`
	ScrubRounds   []uint64 `json:"scrub_rounds"`
	ScrubRepaired []uint64 `json:"scrub_repaired"`
	ScrubLost     []int    `json:"scrub_lost"` // shards per disk with a standing loss verdict
}

// Error codes.
const (
	CodeNotFound     = "not_found"
	CodeOutOfService = "out_of_service"
	CodeBadRequest   = "bad_request"
	CodeInternal     = "internal"
)

// ErrNotFound mirrors store.ErrNotFound on the client side.
var ErrNotFound = errors.New("rpc: shard not found")

// ErrOutOfService mirrors store.ErrOutOfService on the client side.
var ErrOutOfService = errors.New("rpc: disk out of service")

// writeFrame sends one length-prefixed JSON frame.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("rpc: frame too large: %d", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame receives one length-prefixed JSON frame into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("rpc: frame too large: %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// Server hosts one store per disk behind a shared listener.
type Server struct {
	mu     sync.Mutex
	stores []*store.Store
	ln     net.Listener
	wg     sync.WaitGroup
	closed bool

	// obs meters the rpc layer itself (request counts and per-op latency).
	// The server runs on the wall clock; per-store registries keep whatever
	// clock they were built with.
	obs      *obs.Obs
	requests *obs.Counter
	failures *obs.Counter
	opLat    map[Op]*obs.Histogram
}

// NewServer wraps the given per-disk stores. The rpc layer meters itself on
// the wall clock; pass a non-nil o to use a caller-supplied registry (e.g. a
// logical clock for deterministic output).
func NewServer(stores []*store.Store, o ...*obs.Obs) *Server {
	var so *obs.Obs
	if len(o) > 0 && o[0] != nil {
		so = o[0]
	} else {
		so = obs.New(obs.NewWallClock())
	}
	s := &Server{
		stores:   append([]*store.Store(nil), stores...),
		obs:      so,
		requests: so.Counter("rpc.requests"),
		failures: so.Counter("rpc.failures"),
		opLat:    make(map[Op]*obs.Histogram),
	}
	for _, op := range []Op{OpPut, OpGet, OpDelete, OpList, OpBulkCreate, OpBulkRemove,
		OpRemoveDisk, OpReturnDisk, OpFlush, OpStats, OpScrub, OpScrubStatus, OpMetrics} {
		s.opLat[op] = so.Histogram("rpc." + string(op) + "_lat")
	}
	return s
}

// Obs returns the server's own observability registry.
func (s *Server) Obs() *obs.Obs { return s.obs }

// steer picks the disk for a shard id (the §2.1 steering function).
func (s *Server) steer(shardID string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(shardID))
	return int(h.Sum32() % uint32(len(s.stores)))
}

// Serve starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		var req Request
		if err := readFrame(conn, &req); err != nil {
			return // EOF or protocol error: drop the connection
		}
		resp := s.dispatch(&req)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func errResponse(err error) *Response {
	code := CodeInternal
	switch {
	case errors.Is(err, store.ErrNotFound):
		code = CodeNotFound
	case errors.Is(err, store.ErrOutOfService):
		code = CodeOutOfService
	}
	return &Response{OK: false, Err: err.Error(), Code: code}
}

// storeFor returns the steering target for a request-plane call, or the
// explicit disk for control-plane calls.
func (s *Server) storeFor(req *Request) (*store.Store, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.stores) == 0 {
		return nil, 0, errors.New("rpc: no disks")
	}
	idx := req.Disk
	if req.ShardID != "" {
		idx = s.steer(req.ShardID)
	}
	if idx < 0 || idx >= len(s.stores) {
		return nil, 0, fmt.Errorf("rpc: disk %d out of range", idx)
	}
	return s.stores[idx], idx, nil
}

// replaceStore swaps the store for disk idx (after a service-cycle reopen).
func (s *Server) replaceStore(idx int, ns *store.Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stores[idx] = ns
}

func (s *Server) dispatch(req *Request) *Response {
	start := s.obs.Now()
	resp := s.dispatchInner(req)
	s.requests.Inc()
	if !resp.OK {
		s.failures.Inc()
	}
	if h := s.opLat[req.Op]; h != nil {
		h.Observe(s.obs.Now() - start)
	}
	if s.obs.Tracing() {
		outcome := "ok"
		if !resp.OK {
			outcome = "err:" + resp.Code
		}
		s.obs.Record("rpc", string(req.Op), req.ShardID, outcome, s.obs.Now()-start)
	}
	return resp
}

func (s *Server) dispatchInner(req *Request) *Response {
	st, idx, err := s.storeFor(req)
	if err != nil {
		return &Response{OK: false, Err: err.Error(), Code: CodeBadRequest}
	}
	switch req.Op {
	case OpPut:
		if req.ShardID == "" {
			return &Response{OK: false, Err: "missing shard_id", Code: CodeBadRequest}
		}
		if _, err := st.Put(req.ShardID, req.Value); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true}
	case OpGet:
		v, err := st.Get(req.ShardID)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Value: v}
	case OpDelete:
		if _, err := st.Delete(req.ShardID); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true}
	case OpList:
		// Control plane: list across all disks.
		var all []string
		s.mu.Lock()
		stores := append([]*store.Store(nil), s.stores...)
		s.mu.Unlock()
		for _, st := range stores {
			ids, err := st.List()
			if err != nil {
				if errors.Is(err, store.ErrOutOfService) {
					continue
				}
				return errResponse(err)
			}
			all = append(all, ids...)
		}
		return &Response{OK: true, Shards: all}
	case OpBulkCreate:
		if len(req.Shards) != len(req.Values) {
			return &Response{OK: false, Err: "shards/values mismatch", Code: CodeBadRequest}
		}
		// Steer each shard to its disk.
		for i, id := range req.Shards {
			target, _, err := s.storeFor(&Request{ShardID: id})
			if err != nil {
				return errResponse(err)
			}
			if _, err := target.Put(id, req.Values[i]); err != nil {
				return errResponse(err)
			}
		}
		return &Response{OK: true}
	case OpBulkRemove:
		for _, id := range req.Shards {
			target, _, err := s.storeFor(&Request{ShardID: id})
			if err != nil {
				return errResponse(err)
			}
			if _, err := target.BulkRemove([]string{id}); err != nil {
				return errResponse(err)
			}
		}
		return &Response{OK: true}
	case OpRemoveDisk:
		if err := st.RemoveFromService(); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true}
	case OpReturnDisk:
		ns, err := st.ReturnToService()
		if err != nil {
			return errResponse(err)
		}
		s.replaceStore(idx, ns)
		return &Response{OK: true}
	case OpFlush:
		if err := st.Pump(); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true}
	case OpScrub:
		if _, err := st.ScrubRound(); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Scrub: scrubStatus(st)}
	case OpScrubStatus:
		return &Response{OK: true, Scrub: scrubStatus(st)}
	case OpStats:
		return &Response{OK: true, Stats: s.stats()}
	case OpMetrics:
		return &Response{OK: true, Metrics: s.metrics()}
	default:
		return &Response{OK: false, Err: fmt.Sprintf("unknown op %q", req.Op), Code: CodeBadRequest}
	}
}

// diskStats is one store's state captured at a single point: every field is
// read back to back before the next store is touched, so the aggregate view
// cannot interleave one disk's counters with traffic that lands between loop
// iterations over the same disk.
type diskStats struct {
	ids       []string
	inService bool
	chunks    struct{ puts, reclaims, gets uint64 }
	scrub     struct {
		rounds, repaired uint64
		lost             int
	}
}

func snapshotDisk(st *store.Store) diskStats {
	var d diskStats
	ids, err := st.List()
	d.ids = ids
	d.inService = !errors.Is(err, store.ErrOutOfService)
	cs := st.Chunks().Stats()
	d.chunks.puts, d.chunks.reclaims, d.chunks.gets = cs.Puts, cs.Reclaims, cs.Gets
	ss := st.Scrubber().Stats()
	d.scrub.rounds, d.scrub.repaired = ss.Rounds, ss.Repaired
	d.scrub.lost = len(st.Scrubber().LostKeys())
	return d
}

func (s *Server) stats() *Stats {
	s.mu.Lock()
	stores := append([]*store.Store(nil), s.stores...)
	s.mu.Unlock()
	// One pass: capture each store's complete snapshot first, then aggregate,
	// so every per-disk column in the result describes the same instant for
	// that disk.
	snaps := make([]diskStats, len(stores))
	for i, st := range stores {
		snaps[i] = snapshotDisk(st)
	}
	out := &Stats{Disks: len(stores)}
	for _, d := range snaps {
		out.InService = append(out.InService, d.inService)
		out.ShardsPer = append(out.ShardsPer, len(d.ids))
		out.Shards += len(d.ids)
		out.ChunkPuts = append(out.ChunkPuts, d.chunks.puts)
		out.Reclaims = append(out.Reclaims, d.chunks.reclaims)
		out.GetsPerDisk = append(out.GetsPerDisk, d.chunks.gets)
		out.ScrubRounds = append(out.ScrubRounds, d.scrub.rounds)
		out.ScrubRepaired = append(out.ScrubRepaired, d.scrub.repaired)
		out.ScrubLost = append(out.ScrubLost, d.scrub.lost)
	}
	return out
}

// metrics folds the server's own registry and every store's registry into one
// host-wide snapshot: counters and gauges add, histograms merge bucket-wise
// (merge order does not matter — see the associativity property test in
// internal/obs). Stores sharing one registry are folded once.
func (s *Server) metrics() *obs.Snapshot {
	s.mu.Lock()
	stores := append([]*store.Store(nil), s.stores...)
	s.mu.Unlock()
	merged := s.obs.Snapshot()
	seen := map[*obs.Obs]bool{s.obs: true}
	for _, st := range stores {
		for _, o := range []*obs.Obs{st.Obs(), st.Disk().Obs()} {
			if o == nil || seen[o] {
				continue
			}
			seen[o] = true
			merged.Merge(o.Snapshot())
		}
	}
	return &merged
}

// scrubStatus snapshots one store's scrubber state for the wire.
func scrubStatus(st *store.Store) *ScrubStatus {
	sc := st.Scrubber()
	ss := sc.Stats()
	return &ScrubStatus{
		Rounds:         ss.Rounds,
		KeysScanned:    ss.KeysScanned,
		FramesVerified: ss.FramesVerified,
		BytesVerified:  ss.BytesVerified,
		BadReplicas:    ss.BadReplicas,
		Repaired:       ss.Repaired,
		RepairFailed:   ss.RepairFailed,
		SwapLost:       ss.SwapLost,
		Irreparable:    ss.Irreparable,
		LostShards:     sc.LostKeys(),
	}
}

// Client is a synchronous RPC client. It is safe for concurrent use (calls
// are serialized over one connection).
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetTimeout bounds each subsequent call's full round trip (write + read).
// Zero — the default — disables the deadline. A timed-out call returns a
// net.Error with Timeout() == true; the connection is left with an unread
// response in flight, so callers should treat the client as broken and
// re-dial.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// call performs one round trip.
func (c *Client) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil { //shardlint:allow determinism socket deadlines are wire-level wall time, not harness state
			return nil, err
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := readFrame(c.conn, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *Client) do(req *Request) (*Response, error) {
	resp, err := c.call(req)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		switch resp.Code {
		case CodeNotFound:
			return resp, ErrNotFound
		case CodeOutOfService:
			return resp, ErrOutOfService
		default:
			return resp, fmt.Errorf("rpc: %s", resp.Err)
		}
	}
	return resp, nil
}

// Put stores a shard.
func (c *Client) Put(shardID string, value []byte) error {
	_, err := c.do(&Request{Op: OpPut, ShardID: shardID, Value: value})
	return err
}

// Get fetches a shard.
func (c *Client) Get(shardID string) ([]byte, error) {
	resp, err := c.do(&Request{Op: OpGet, ShardID: shardID})
	if err != nil {
		return nil, err
	}
	if resp.Value == nil {
		return []byte{}, nil
	}
	return resp.Value, nil
}

// Delete removes a shard.
func (c *Client) Delete(shardID string) error {
	_, err := c.do(&Request{Op: OpDelete, ShardID: shardID})
	return err
}

// List returns all shard ids across disks.
func (c *Client) List() ([]string, error) {
	resp, err := c.do(&Request{Op: OpList})
	if err != nil {
		return nil, err
	}
	return resp.Shards, nil
}

// BulkCreate stores a batch of shards (control plane).
func (c *Client) BulkCreate(ids []string, values [][]byte) error {
	_, err := c.do(&Request{Op: OpBulkCreate, Shards: ids, Values: values})
	return err
}

// BulkRemove deletes a batch of shards (control plane).
func (c *Client) BulkRemove(ids []string) error {
	_, err := c.do(&Request{Op: OpBulkRemove, Shards: ids})
	return err
}

// RemoveDisk takes disk idx out of service.
func (c *Client) RemoveDisk(idx int) error {
	_, err := c.do(&Request{Op: OpRemoveDisk, Disk: idx})
	return err
}

// ReturnDisk brings disk idx back into service.
func (c *Client) ReturnDisk(idx int) error {
	_, err := c.do(&Request{Op: OpReturnDisk, Disk: idx})
	return err
}

// Flush pumps disk idx's IO scheduler to durability.
func (c *Client) Flush(idx int) error {
	_, err := c.do(&Request{Op: OpFlush, Disk: idx})
	return err
}

// Scrub runs one full integrity-scrub round on disk idx and returns the
// disk's cumulative scrubber state afterwards.
func (c *Client) Scrub(idx int) (*ScrubStatus, error) {
	resp, err := c.do(&Request{Op: OpScrub, Disk: idx})
	if err != nil {
		return nil, err
	}
	return resp.Scrub, nil
}

// ScrubStatus reports disk idx's scrubber state without scrubbing.
func (c *Client) ScrubStatus(idx int) (*ScrubStatus, error) {
	resp, err := c.do(&Request{Op: OpScrubStatus, Disk: idx})
	if err != nil {
		return nil, err
	}
	return resp.Scrub, nil
}

// Stats returns the aggregate server statistics.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.do(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Metrics returns the host-wide observability snapshot: the server's rpc
// metrics merged with every disk's registry.
func (c *Client) Metrics() (*obs.Snapshot, error) {
	resp, err := c.do(&Request{Op: OpMetrics})
	if err != nil {
		return nil, err
	}
	if resp.Metrics == nil {
		return &obs.Snapshot{}, nil
	}
	return resp.Metrics, nil
}

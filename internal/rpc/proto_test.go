package rpc

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
)

// TestFrameTooLargeOnWrite: MaxFrame is enforced on the WRITE side with the
// typed error, in both protocol versions — an oversized frame never reaches
// the wire, so the peer cannot be hung by it.
func TestFrameTooLargeOnWrite(t *testing.T) {
	cases := []struct {
		name    string
		payload int
		wantErr bool
	}{
		{"v2 under limit", MaxFrame - 1, false},
		{"v2 at limit", MaxFrame, false},
		{"v2 one over", MaxFrame + 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := writeFrameV2(io.Discard, opPut, 0, 1, make([]byte, tc.payload))
			if tc.wantErr != (err != nil) {
				t.Fatalf("payload %d: err=%v, want err=%v", tc.payload, err, tc.wantErr)
			}
			if tc.wantErr && !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("payload %d: %v is not ErrFrameTooLarge", tc.payload, err)
			}
		})
	}

	// v1: the JSON+base64 codec can inflate a legal-looking value past
	// MaxFrame; the writer must catch it (pre-v2 it only checked on read).
	big := &Request{Op: OpPut, ShardID: "k", Value: make([]byte, 13<<20)}
	if err := writeFrameV1(io.Discard, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("v1 oversized write: %v", err)
	}
}

// TestFrameTooLargeOnRead: a corrupt or hostile length field fails before
// allocation.
func TestFrameTooLargeOnRead(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, headerSize)
	putHeader(hdr, header{op: opGet, id: 1, n: MaxFrame + 1})
	buf.Write(hdr)
	if _, _, err := readFrameV2(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized read: %v", err)
	}
}

// TestOversizedPutDoesNotPoisonConnection: the end-to-end form of the write
// bugfix — a too-large request fails typed and the SAME connection keeps
// working (nothing partial was written).
func TestOversizedPutDoesNotPoisonConnection(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t, 1)
	err := c.Put(ctx, "huge", make([]byte, MaxFrame))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized put: %v", err)
	}
	if err := c.Put(ctx, "normal", []byte("v")); err != nil {
		t.Fatalf("connection poisoned by oversized put: %v", err)
	}
	v, err := c.Get(ctx, "normal")
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("read after oversized put: %q %v", v, err)
	}
	if n := c.pendingCount(); n != 0 {
		t.Fatalf("pending map leaked the rejected call: %d", n)
	}
}

// TestErrorTaxonomy: every non-OK code surfaces as a *WireError matching
// exactly its own sentinel via errors.Is, and the snake_case names round-trip
// (the v1 JSON code field).
func TestErrorTaxonomy(t *testing.T) {
	sentinels := map[Code]error{
		CodeNotFound:      ErrNotFound,
		CodeOutOfService:  ErrOutOfService,
		CodeBadRequest:    ErrBadRequest,
		CodeInternal:      ErrInternal,
		CodeFrameTooLarge: ErrFrameTooLarge,
		CodeShutdown:      ErrShutdown,
		CodeUnsupported:   ErrUnsupported,
	}
	for code, want := range sentinels {
		err := wireErr(code, "detail text")
		if !errors.Is(err, want) {
			t.Fatalf("%v does not match its sentinel", code)
		}
		for other, sentinel := range sentinels {
			if other != code && errors.Is(err, sentinel) {
				t.Fatalf("%v also matches %v's sentinel", code, other)
			}
		}
		if codeFromString(code.String()) != code {
			t.Fatalf("code %v does not round-trip via %q", code, code.String())
		}
		var we *WireError
		if !errors.As(err, &we) || we.Code != code {
			t.Fatalf("%v: not a *WireError carrying its code", code)
		}
	}
	if wireErr(CodeOK, "") != nil {
		t.Fatal("CodeOK must map to a nil error")
	}
}

// TestUnknownOpcodeOnWire: a raw v2 frame with an unknown opcode gets a
// bad_request response echoing the request id — it must not kill the
// connection.
func TestUnknownOpcodeOnWire(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	conn, err := net.Dial("tcp", srv.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(preambleV2[:]); err != nil {
		t.Fatal(err)
	}
	const bogusID = 0xDEADBEEF
	if _, err := writeFrameV2(conn, Opcode(99), 0, bogusID, nil); err != nil {
		t.Fatal(err)
	}
	h, payload, err := readFrameV2(conn)
	if err != nil {
		t.Fatal(err)
	}
	if h.id != bogusID {
		t.Fatalf("response id = %#x, want %#x", h.id, bogusID)
	}
	r := wireReader{b: payload}
	code, err := r.u16()
	if err != nil || Code(code) != CodeBadRequest {
		t.Fatalf("unknown opcode response code = %d (%v)", code, err)
	}
	// Connection is still alive: a well-formed request on the same socket.
	var w wireBuf
	w.str("probe")
	w.b = append(w.b, []byte("value")...)
	if _, err := writeFrameV2(conn, opPut, 0, 2, w.b); err != nil {
		t.Fatal(err)
	}
	h, payload, err = readFrameV2(conn)
	if err != nil || h.id != 2 {
		t.Fatalf("follow-up frame: id=%d err=%v", h.id, err)
	}
	r = wireReader{b: payload}
	if code, _ := r.u16(); Code(code) != CodeOK {
		t.Fatalf("follow-up put code = %d", code)
	}
}

// Package rpc implements ShardStore's shared RPC interface (§2.1 of the
// paper): storage hosts run an independent key-value store per disk, and a
// shared endpoint "steers requests to target disks based on shard IDs". The
// interface offers the request-plane calls (put, get, delete, the batched
// mget/mput/mdelete forms, and the ordered-range scan) and control-plane
// operations (list, bulk create/remove, remove/return a disk from service,
// flush, scrub, stats, metrics).
//
// # Wire contract (v2)
//
// A v2 connection opens with a 4-byte preamble "S2P\x02". Every frame in
// either direction then carries a fixed 16-byte header followed by a raw
// binary payload (values travel as raw bytes — never base64):
//
//	offset  size  field
//	0       1     magic      0xA7
//	1       1     version    0x02
//	2       1     opcode     (put=1 get=2 delete=3 list=4 bulk_create=5
//	                          bulk_remove=6 remove_disk=7 return_disk=8
//	                          flush=9 stats=10 scrub=11 scrub_status=12
//	                          metrics=13 mget=14 mput=15 mdelete=16
//	                          trace=17 slowlog=18 scan=19)
//	3       1     flags      bit 0 (0x01): durable — acknowledge the
//	                          mutation only once persistent (group commit).
//	                          bit 1 (0x02): traced — trace this request
//	                          end-to-end under its request id; a server
//	                          with tracing enabled echoes the bit on the
//	                          response (the negotiation signal). All other
//	                          bits are reserved and must be ignored, so new
//	                          flags stay compatible with older v2 peers.
//	4       8     request id (big-endian; client-assigned, echoed verbatim)
//	12      4     payload length (big-endian; <= MaxFrame, enforced on
//	                          write AND read)
//
// Requests carry client-assigned IDs and responses may return OUT OF ORDER:
// one connection is a true pipeline. The server dispatches each request
// concurrently (bounded per-connection worker semaphore) and a single
// writer goroutine serializes response frames; the client demultiplexes by
// request id. A request whose caller gave up (context cancelled or timed
// out) is simply abandoned — the late response is discarded by the demux
// loop and the connection stays healthy.
//
// Payload scalars are big-endian; strings are u16 length + bytes, values
// are u32 length + bytes. put/get value bodies are the raw frame tail.
// Control-plane result blobs (stats, scrub state, metrics snapshots) are
// JSON inside a u32-length field: they are low-rate and evolve faster than
// the hot request plane, which never pays for that flexibility.
//
// Every response payload begins with a u16 status code followed, when the
// code is non-zero, by a u16-length message string. Batch responses carry
// an additional per-item code vector. The code taxonomy is wire-stable:
//
//	0 ok              success
//	1 not_found       the shard id has no live value (ErrNotFound)
//	2 out_of_service  the steered disk is removed from service
//	                  (ErrOutOfService)
//	3 bad_request     malformed frame, unknown opcode, missing or
//	                  mismatched arguments (ErrBadRequest)
//	4 internal        the backend failed the operation; the message has
//	                  detail (ErrInternal)
//	5 frame_too_large a frame would exceed MaxFrame; raised on the WRITE
//	                  side before any byte hits the wire (ErrFrameTooLarge)
//	6 shutdown        the server is draining; retry against another host
//	                  (ErrShutdown)
//	7 unsupported     the backend behind this disk does not implement the
//	                  requested control-plane capability (ErrUnsupported)
//
// Clients surface failures as *WireError and match with errors.Is against
// the sentinel per code — never against message text, which is not part of
// the contract.
//
// # Scan (opcode 19)
//
// scan reads one ordered page of the half-open range [start, end): live
// shard ids in ascending byte order, the newest value for each, deleted
// shards elided. The request payload is
//
//	str(start) str(end) u32(limit)
//
// where end "" means unbounded above and limit 0 lets the server choose its
// page cap (the server clamps every page to its cap regardless). The
// success response payload is
//
//	u32(count) (str(key) bytes(value))* str(next)
//
// next is the continuation token: "" means the range is exhausted;
// otherwise the client resumes the cursor by reissuing the scan with
// start = next (the token is last returned key + "\x00", so the cursor
// always advances — a scan can never loop). Pages are bounded by the
// limit, the server's page cap, and a byte budget that keeps response
// frames under MaxFrame even with large values, so a client must always be
// prepared to follow the token; the Iterator type does so transparently.
//
// A range spans the whole steering space, so the server scans every
// in-service backend and merges the ordered per-disk pages (shard ids steer
// to exactly one disk, making the pages disjoint). Each per-disk page is a
// point-in-time snapshot of that backend — entries within one disk's page
// are mutually consistent, while the cross-disk merge is only as atomic as
// the constituent snapshots. Out-of-service disks drop out of the merge,
// like list. If any backend lacks the ordered-map capability
// (store.OrderedKV) the whole op fails with code 7 (unsupported): there is
// no sound point-read fallback for an ordered range.
//
// # Capability probes
//
// The server accepts any store.KV backend; richer behavior is negotiated
// per backend by interface probe, and every missing capability answers the
// SAME wire code 7 / ErrUnsupported so clients need exactly one check:
//
//	store.OrderedKV  scan (request plane; no fallback)
//	store.BatchKV    mget/mput/mdelete fast path (falls back to per-item
//	                 KV calls — never unsupported)
//	durability       flagDurable on put/mput (per-item code 7 on mput)
//	scrubber, service control, flush, stats columns: control plane probes
//

// # v1 compatibility
//
// The legacy protocol (length-prefixed JSON frames, one lock-step
// request/response pair at a time) is still served: the server sniffs the
// first four bytes of each connection — a v1 frame starts with a 4-byte
// length whose first byte is 0x00 or 0x01, which cannot collide with the
// v2 preamble's 'S'. DialV1 provides the old client for compatibility
// testing and as the benchmark baseline.
package rpc

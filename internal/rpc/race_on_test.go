//go:build race

package rpc

// raceEnabled reports whether this test binary was built with the race
// detector. The throughput-ratio assertion skips under -race: detector
// instrumentation taxes the pipelined client's channel- and atomic-heavy
// paths far more than the lock-step baseline's syscall-bound loop, so the
// measured ratio stops reflecting the protocol. The race detector's value in
// this package is the shared-client hammer, which still runs.
const raceEnabled = true

package rpc

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// benchSeed loads n small shards so benchmark reads hit real entries.
func benchSeed(tb testing.TB, c *Client, n int) {
	tb.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if err := c.Put(ctx, benchKey(i), []byte("benchmark value payload")); err != nil {
			tb.Fatal(err)
		}
	}
}

func benchKey(i int) string { return fmt.Sprintf("bench-%03d", i%64) }

// BenchmarkRPCLockstepV1 is the baseline the redesign is measured against:
// the legacy JSON client holds its mutex across the full round trip, so
// throughput is bounded by one wire latency per op.
func BenchmarkRPCLockstepV1(b *testing.B) {
	srv, c := newTestServer(b, 2)
	benchSeed(b, c, 64)
	v1, err := DialV1(srv.ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer v1.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v1.Get(benchKey(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkRPCPipelined measures the v2 client with a fixed window of
// in-flight requests on ONE connection. depth=1 is the lock-step shape in
// the new framing (isolates the codec win); depth 8 and 64 show the
// pipelining win (amortizes wire latency across the window).
func BenchmarkRPCPipelined(b *testing.B) {
	for _, depth := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			ctx := context.Background()
			_, c := newTestServer(b, 2)
			benchSeed(b, c, 64)
			b.ResetTimer()
			window := make([]*Call, 0, depth)
			for i := 0; i < b.N; i++ {
				window = append(window, c.GoGet(benchKey(i)))
				if len(window) == depth {
					for _, call := range window {
						if _, err := call.Wait(ctx); err != nil {
							b.Fatal(err)
						}
					}
					window = window[:0]
				}
			}
			for _, call := range window {
				if _, err := call.Wait(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkRPCSharedClient8 is the acceptance shape: ONE v2 client shared by
// 8 goroutines, each keeping a depth-64 pipeline in flight.
func BenchmarkRPCSharedClient8(b *testing.B) {
	ctx := context.Background()
	_, c := newTestServer(b, 2)
	benchSeed(b, c, 64)
	const goroutines, depth = 8, 64
	b.ResetTimer()
	perG := b.N / goroutines
	if perG == 0 {
		perG = 1
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			window := make([]*Call, 0, depth)
			drain := func() {
				for _, call := range window {
					if _, err := call.Wait(ctx); err != nil {
						b.Error(err)
						return
					}
				}
				window = window[:0]
			}
			for i := 0; i < perG; i++ {
				window = append(window, c.GoGet(benchKey(i)))
				if len(window) == depth {
					drain()
				}
			}
			drain()
		}()
	}
	wg.Wait()
	b.ReportMetric(float64(perG*goroutines)/b.Elapsed().Seconds(), "ops/s")
}

// TestPipelineThroughputGain enforces the redesign's acceptance bar: a single
// v2 client shared by 8 goroutines at pipeline depth 64 sustains at least 4x
// the ops/sec of the v1 lock-step client against the same server. The real
// gap on loopback is far larger; 4x keeps the test robust on loaded CI boxes.
func TestPipelineThroughputGain(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the pipelined/lock-step ratio; see race_on_test.go")
	}
	ctx := context.Background()
	srv, c := newWideServer(t, 4)
	benchSeed(t, c, 64)
	addr := srv.ln.Addr().String()

	const v1Ops = 400
	v1, err := DialV1(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	v1Start := time.Now() //shardlint:allow determinism throughput measurement, not a replayed path
	for i := 0; i < v1Ops; i++ {
		if _, err := v1.Get(benchKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	v1Rate := float64(v1Ops) / time.Since(v1Start).Seconds() //shardlint:allow determinism throughput measurement, not a replayed path

	const goroutines, depth, perG = 8, 64, 1024
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	v2Start := time.Now() //shardlint:allow determinism throughput measurement, not a replayed path
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			window := make([]*Call, 0, depth)
			drain := func() error {
				for _, call := range window {
					if _, err := call.Wait(ctx); err != nil {
						return err
					}
				}
				window = window[:0]
				return nil
			}
			for i := 0; i < perG; i++ {
				window = append(window, c.GoGet(benchKey(i)))
				if len(window) == depth {
					if err := drain(); err != nil {
						errs <- err
						return
					}
				}
			}
			if err := drain(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	v2Rate := float64(goroutines*perG) / time.Since(v2Start).Seconds() //shardlint:allow determinism throughput measurement, not a replayed path

	t.Logf("v1 lock-step: %.0f ops/s; v2 shared 8×depth64: %.0f ops/s (%.1fx)", v1Rate, v2Rate, v2Rate/v1Rate)
	if v2Rate < 4*v1Rate {
		t.Fatalf("pipelined throughput %.0f ops/s is under 4x the lock-step %.0f ops/s", v2Rate, v1Rate)
	}
}

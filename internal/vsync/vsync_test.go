package vsync

import (
	"sync"
	"testing"
)

// Passthrough-mode tests: with no runtime installed, vsync must behave
// exactly like the standard library.

func TestMutexPassthrough(t *testing.T) {
	var mu Mutex
	n := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				mu.Lock()
				n++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if n != 8000 {
		t.Fatalf("lost updates: %d", n)
	}
}

func TestTryLockPassthrough(t *testing.T) {
	var mu Mutex
	if !mu.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if mu.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	mu.Unlock()
}

func TestRWMutexPassthrough(t *testing.T) {
	var rw RWMutex
	rw.RLock()
	rw.RLock()
	rw.RUnlock()
	rw.RUnlock()
	rw.Lock()
	rw.Unlock()
}

func TestCondPassthrough(t *testing.T) {
	var mu Mutex
	c := NewCond(&mu)
	ready := false
	done := make(chan struct{})
	go func() {
		mu.Lock()
		for !ready {
			c.Wait()
		}
		mu.Unlock()
		close(done)
	}()
	mu.Lock()
	ready = true
	c.Broadcast()
	mu.Unlock()
	<-done
}

func TestGoAndJoinPassthrough(t *testing.T) {
	ran := false
	h := Go("worker", func() { ran = true })
	h.Join()
	if !ran {
		t.Fatal("goroutine did not run before Join returned")
	}
}

func TestYieldPassthroughIsNoOp(t *testing.T) {
	Yield() // must not panic or block
}

func TestSetRuntimeSwap(t *testing.T) {
	if CurrentRuntime() != nil {
		t.Fatal("runtime installed at test start")
	}
	prev := SetRuntime(nil)
	if prev != nil {
		t.Fatal("prev should be nil")
	}
}

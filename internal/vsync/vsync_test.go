package vsync

import (
	"sync"
	"testing"
)

// Passthrough-mode tests: with no runtime installed, vsync must behave
// exactly like the standard library.

func TestMutexPassthrough(t *testing.T) {
	var mu Mutex
	n := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				mu.Lock()
				n++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if n != 8000 {
		t.Fatalf("lost updates: %d", n)
	}
}

func TestTryLockPassthrough(t *testing.T) {
	var mu Mutex
	if !mu.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if mu.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	mu.Unlock()
}

func TestRWMutexPassthrough(t *testing.T) {
	var rw RWMutex
	rw.RLock()
	rw.RLock()
	rw.RUnlock()
	rw.RUnlock()
	rw.Lock()
	rw.Unlock()
}

func TestCondPassthrough(t *testing.T) {
	var mu Mutex
	c := NewCond(&mu)
	ready := false
	done := make(chan struct{})
	go func() {
		mu.Lock()
		for !ready {
			c.Wait()
		}
		mu.Unlock()
		close(done)
	}()
	mu.Lock()
	ready = true
	c.Broadcast()
	mu.Unlock()
	<-done
}

func TestGoAndJoinPassthrough(t *testing.T) {
	ran := false
	h := Go("worker", func() { ran = true })
	h.Join()
	if !ran {
		t.Fatal("goroutine did not run before Join returned")
	}
}

func TestYieldPassthroughIsNoOp(t *testing.T) {
	Yield() // must not panic or block
}

func TestSetRuntimeSwap(t *testing.T) {
	if CurrentRuntime() != nil {
		t.Fatal("runtime installed at test start")
	}
	prev := SetRuntime(nil)
	if prev != nil {
		t.Fatal("prev should be nil")
	}
}

// panicRuntime is a Runtime stub for guard tests; none of its methods should
// ever be reached.
type panicRuntime struct{}

func (panicRuntime) MutexLock(*Mutex)            { panic("unreachable") }
func (panicRuntime) MutexTryLock(*Mutex) bool    { panic("unreachable") }
func (panicRuntime) MutexUnlock(*Mutex)          { panic("unreachable") }
func (panicRuntime) RLock(*RWMutex)              { panic("unreachable") }
func (panicRuntime) RUnlock(*RWMutex)            { panic("unreachable") }
func (panicRuntime) WLock(*RWMutex)              { panic("unreachable") }
func (panicRuntime) WUnlock(*RWMutex)            { panic("unreachable") }
func (panicRuntime) CondWait(*Cond)              { panic("unreachable") }
func (panicRuntime) CondSignal(*Cond)            { panic("unreachable") }
func (panicRuntime) CondBroadcast(*Cond)         { panic("unreachable") }
func (panicRuntime) Spawn(string, func()) Handle { panic("unreachable") }
func (panicRuntime) Yield()                      { panic("unreachable") }

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

// TestSetRuntimeRefusedWhilePinned is the regression test for the parallel
// harness guard: installing a model-checking runtime while passthrough
// goroutines are pinned must fail loudly instead of silently corrupting the
// schedule.
func TestSetRuntimeRefusedWhilePinned(t *testing.T) {
	release := PinPassthrough()
	if !PassthroughPinned() {
		t.Fatal("pin not recorded")
	}
	mustPanic(t, "SetRuntime under pin", func() { SetRuntime(panicRuntime{}) })
	if CurrentRuntime() != nil {
		t.Fatal("refused install still left a runtime behind")
	}
	// Uninstalling (nil) must stay allowed while pinned, so a failing
	// exploration that raced the pool can still restore passthrough mode.
	if prev := SetRuntime(nil); prev != nil {
		t.Fatalf("prev runtime: %v", prev)
	}
	release()
	release() // idempotent
	if PassthroughPinned() {
		t.Fatal("release did not drop the pin")
	}

	// After release, installation works again and nested pins still guard.
	if prev := SetRuntime(panicRuntime{}); prev != nil {
		t.Fatalf("prev runtime: %v", prev)
	}
	// A parallel harness must refuse to start inside a model-checking run.
	mustPanic(t, "PinPassthrough under runtime", func() { PinPassthrough() })
	if PassthroughPinned() {
		t.Fatal("failed pin leaked a count")
	}
	SetRuntime(nil)

	r1 := PinPassthrough()
	r2 := PinPassthrough()
	r1()
	mustPanic(t, "SetRuntime under second pin", func() { SetRuntime(panicRuntime{}) })
	r2()
	if PassthroughPinned() {
		t.Fatal("pins leaked")
	}
}

// Package vsync is a pluggable synchronization layer.
//
// The ShardStore implementation packages use vsync.Mutex, vsync.RWMutex,
// vsync.Cond, and vsync.Go instead of their sync/runtime equivalents. In
// normal operation these delegate directly to the standard library with no
// measurable overhead. When a stateless model-checking run is active
// (internal/shuttle), every operation instead routes through the shuttle
// scheduler, which serializes execution and controls the interleaving of the
// virtual threads — the same instrumentation trick Loom and Shuttle use for
// Rust (§6 of the paper).
//
// The runtime is installed process-globally. Model-checking tests therefore
// must not run concurrently with each other, which Go's default sequential
// test execution guarantees as long as such tests avoid t.Parallel.
package vsync

import (
	"sync"
	"sync/atomic"
)

// Runtime is implemented by the shuttle scheduler. All methods are invoked
// from the single virtual thread the scheduler is currently running.
type Runtime interface {
	// MutexLock blocks the calling virtual thread until it holds m.
	MutexLock(m *Mutex)
	// MutexTryLock attempts to acquire m without blocking.
	MutexTryLock(m *Mutex) bool
	// MutexUnlock releases m.
	MutexUnlock(m *Mutex)
	// RLock acquires m for reading.
	RLock(m *RWMutex)
	// RUnlock releases a read acquisition of m.
	RUnlock(m *RWMutex)
	// WLock acquires m for writing.
	WLock(m *RWMutex)
	// WUnlock releases a write acquisition of m.
	WUnlock(m *RWMutex)
	// CondWait atomically releases c.L and blocks until signalled.
	CondWait(c *Cond)
	// CondSignal wakes one waiter on c.
	CondSignal(c *Cond)
	// CondBroadcast wakes all waiters on c.
	CondBroadcast(c *Cond)
	// Spawn starts f as a new virtual thread and returns a join handle.
	Spawn(name string, f func()) Handle
	// Yield introduces a scheduling point.
	Yield()
}

// Handle joins a spawned virtual thread (or goroutine in passthrough mode).
type Handle interface {
	// Join blocks until the thread has finished.
	Join()
}

var active atomic.Pointer[runtimeBox]

type runtimeBox struct{ rt Runtime }

// passthroughPins counts live users of passthrough mode that would be
// silently corrupted by installing a model-checking runtime underneath them
// — e.g. the worker goroutines of the parallel conformance pool
// (internal/core), whose vsync.Mutex operations must keep delegating to the
// standard library for the whole run.
var passthroughPins atomic.Int64

// PinPassthrough declares that the caller is about to run passthrough-mode
// goroutines (a parallel harness). While any pin is held, SetRuntime refuses
// to install a model-checking runtime: the runtime is process-global, so a
// shuttle exploration started mid-run would reroute the pool's in-flight
// lock operations through the scheduler and corrupt both the run and the
// schedule. The returned release function is idempotent.
//
// PinPassthrough panics if a runtime is already installed — a parallel
// harness must not start inside a model-checking run either.
func PinPassthrough() (release func()) {
	passthroughPins.Add(1)
	if CurrentRuntime() != nil {
		passthroughPins.Add(-1)
		panic("vsync: cannot start a parallel passthrough harness while a model-checking runtime is installed; shuttle explorations are sequential-only")
	}
	var once sync.Once
	return func() { once.Do(func() { passthroughPins.Add(-1) }) }
}

// PassthroughPinned reports whether any passthrough pins are held.
func PassthroughPinned() bool { return passthroughPins.Load() > 0 }

// SetRuntime installs rt as the process-global scheduler. Passing nil
// restores standard-library behavior. It returns the previously installed
// runtime, if any.
//
// SetRuntime panics if a non-nil runtime is installed while passthrough
// goroutines are pinned (see PinPassthrough): model-checking runs must stay
// sequential with respect to the parallel validation pool, and failing
// loudly here beats silently corrupting the exploration schedule.
func SetRuntime(rt Runtime) Runtime {
	if rt != nil && PassthroughPinned() {
		panic("vsync: SetRuntime while passthrough goroutines are live (a parallel harness such as core.Run is active); shuttle/model-checking runs must not overlap it")
	}
	var prev *runtimeBox
	if rt == nil {
		prev = active.Swap(nil)
	} else {
		prev = active.Swap(&runtimeBox{rt: rt})
	}
	if prev == nil {
		return nil
	}
	return prev.rt
}

// CurrentRuntime returns the installed runtime, or nil in passthrough mode.
func CurrentRuntime() Runtime {
	box := active.Load()
	if box == nil {
		return nil
	}
	return box.rt
}

// Mutex is a mutual exclusion lock that is model-checkable. The zero value is
// an unlocked mutex.
type Mutex struct {
	mu sync.Mutex
	// State owned by the shuttle runtime while a run is active.
	Sched any
}

// Lock acquires the mutex.
func (m *Mutex) Lock() {
	if rt := CurrentRuntime(); rt != nil {
		rt.MutexLock(m)
		return
	}
	m.mu.Lock()
}

// TryLock attempts to acquire the mutex and reports whether it succeeded.
func (m *Mutex) TryLock() bool {
	if rt := CurrentRuntime(); rt != nil {
		return rt.MutexTryLock(m)
	}
	return m.mu.TryLock()
}

// Unlock releases the mutex.
func (m *Mutex) Unlock() {
	if rt := CurrentRuntime(); rt != nil {
		rt.MutexUnlock(m)
		return
	}
	m.mu.Unlock()
}

// RWMutex is a reader/writer lock that is model-checkable. The zero value is
// an unlocked RWMutex.
type RWMutex struct {
	mu sync.RWMutex
	// State owned by the shuttle runtime while a run is active.
	Sched any
}

// Lock acquires the write lock.
func (m *RWMutex) Lock() {
	if rt := CurrentRuntime(); rt != nil {
		rt.WLock(m)
		return
	}
	m.mu.Lock()
}

// Unlock releases the write lock.
func (m *RWMutex) Unlock() {
	if rt := CurrentRuntime(); rt != nil {
		rt.WUnlock(m)
		return
	}
	m.mu.Unlock()
}

// RLock acquires the read lock.
func (m *RWMutex) RLock() {
	if rt := CurrentRuntime(); rt != nil {
		rt.RLock(m)
		return
	}
	m.mu.RLock()
}

// RUnlock releases the read lock.
func (m *RWMutex) RUnlock() {
	if rt := CurrentRuntime(); rt != nil {
		rt.RUnlock(m)
		return
	}
	m.mu.RUnlock()
}

// Cond is a model-checkable condition variable bound to a Mutex.
type Cond struct {
	// L is the mutex held while waiting.
	L *Mutex
	// State owned by the shuttle runtime while a run is active.
	Sched any

	once sync.Once
	cond *sync.Cond
}

// NewCond returns a condition variable bound to l.
func NewCond(l *Mutex) *Cond { return &Cond{L: l} }

func (c *Cond) std() *sync.Cond {
	c.once.Do(func() { c.cond = sync.NewCond(&c.L.mu) })
	return c.cond
}

// Wait atomically releases c.L and suspends the caller until Signal or
// Broadcast wakes it, then reacquires c.L before returning.
func (c *Cond) Wait() {
	if rt := CurrentRuntime(); rt != nil {
		rt.CondWait(c)
		return
	}
	c.std().Wait()
}

// Signal wakes one goroutine waiting on c, if there is any.
func (c *Cond) Signal() {
	if rt := CurrentRuntime(); rt != nil {
		rt.CondSignal(c)
		return
	}
	c.std().Signal()
}

// Broadcast wakes all goroutines waiting on c.
func (c *Cond) Broadcast() {
	if rt := CurrentRuntime(); rt != nil {
		rt.CondBroadcast(c)
		return
	}
	c.std().Broadcast()
}

// goHandle joins a plain goroutine in passthrough mode.
type goHandle struct{ done chan struct{} }

func (h *goHandle) Join() { <-h.done }

// Go starts f concurrently — as a goroutine in passthrough mode, or as a
// scheduler-controlled virtual thread during model checking — and returns a
// handle that joins it. name labels the thread in model-checker reports.
func Go(name string, f func()) Handle {
	if rt := CurrentRuntime(); rt != nil {
		return rt.Spawn(name, f)
	}
	h := &goHandle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		f()
	}()
	return h
}

// Yield introduces a scheduling point during model checking and is a no-op
// otherwise. Implementation code sprinkles Yield at interesting non-locking
// steps (e.g. between computing a value and publishing it) to expose more
// interleavings to the checker.
func Yield() {
	if rt := CurrentRuntime(); rt != nil {
		rt.Yield()
	}
}

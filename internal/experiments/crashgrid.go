package experiments

import (
	"fmt"
	"io"
	"time"

	"shardstore/internal/core"
	"shardstore/internal/faults"
)

// CrashGrid reproduces the §5 comparison between the paper's default
// coarse-grained crash states (per-component RebootType flushes plus
// interleaved flush operations) and the exhaustive block-level enumeration
// ("similar to BOB and CrashMonkey"): the exhaustive variant "has not found
// additional bugs and is dramatically slower to test".
//
// Both modes run the same budgets against (a) the fixed implementation
// (expect: nothing found) and (b) seeded crash-consistency bug #8 (expect:
// both modes find it; coarse mode is much faster per sequence).
//
// The four cells run one after another — the coarse-vs-exhaustive wall-time
// ratio is the experiment's headline and co-running cells would distort it —
// but each cell's sequences fan out across the shared worker pool (Workers
// wide), so the grid still scales with the machine and the ratio compares
// like with like.
func CrashGrid(w io.Writer, quick bool) error {
	header(w, "§5: coarse vs block-level crash states")
	cleanCases := 400
	bugCases := 4000
	if quick {
		cleanCases = 100
		bugCases = 1000
	}

	type cell struct {
		mode    string
		target  string
		cases   int
		found   bool
		foundAt int
		crashes int64
		elapsed time.Duration
	}
	var cells []cell

	run := func(mode string, exhaustive bool, target string, bugs *faults.Set, cases int) {
		cfg := core.Config{
			Seed:       21,
			Cases:      cases,
			OpsPerCase: 30,
			Bias:       core.DefaultBias(),
			Minimize:   false,

			EnableCrashes:   true,
			EnableReboots:   true,
			ExhaustiveCrash: exhaustive,
			ExhaustiveCap:   64,

			Workers: Workers,
		}
		cfg.StoreConfig.Bugs = bugs
		start := time.Now() //shardlint:allow determinism wall-clock experiment timing column, not a replayed path
		res := core.Run(cfg)
		c := cell{mode: mode, target: target, cases: res.Cases, crashes: res.Crashes, elapsed: time.Since(start)} //shardlint:allow determinism wall-clock experiment timing column, not a replayed path
		if res.Failure != nil {
			c.found = true
			c.foundAt = res.Failure.Case + 1
		}
		cells = append(cells, c)
	}

	run("coarse (RebootType)", false, "fixed code", faults.NewSet(), cleanCases)
	run("block-level exhaustive", true, "fixed code", faults.NewSet(), cleanCases)
	run("coarse (RebootType)", false, "bug #8 seeded", faults.NewSet(faults.Bug8CacheWriteMissingDep), bugCases)
	run("block-level exhaustive", true, "bug #8 seeded", faults.NewSet(faults.Bug8CacheWriteMissingDep), bugCases)

	tb := newTable("crash-state mode", "target", "sequences", "crash states", "bug found", "at case", "wall time", "seq/s")
	for _, c := range cells {
		found := "no"
		at := "-"
		if c.found {
			found = "YES"
			at = fmt.Sprint(c.foundAt)
		}
		tb.add(c.mode, c.target, fmt.Sprint(c.cases), fmt.Sprint(c.crashes), found, at,
			fmtDuration(c.elapsed), fmt.Sprintf("%.0f", float64(c.cases)/c.elapsed.Seconds()))
	}
	tb.write(w)

	// The headline comparison: slowdown factor on the clean workload.
	if cells[0].elapsed > 0 {
		ratio := float64(cells[1].elapsed) / float64(cells[0].elapsed)
		fmt.Fprintf(w, "\nexhaustive block-level enumeration is %.1fx slower per clean sequence\n", ratio)
	}
	fmt.Fprintln(w, "(paper: the exhaustive variant found no additional bugs and is dramatically")
	fmt.Fprintln(w, " slower, so the coarse RebootType + interleaved component flushes are the default)")

	if cells[0].found || cells[1].found {
		return fmt.Errorf("crashgrid: clean run found a spurious failure")
	}
	if !cells[2].found {
		return fmt.Errorf("crashgrid: coarse mode missed bug #8")
	}
	return nil
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"shardstore/internal/core"
	"shardstore/internal/faults"
	"shardstore/internal/shuttle"
)

// fig5Budget is the detection budget per seeded bug. The paper runs "tens of
// millions of random test sequences before every deployment"; these budgets
// are sized so the whole table regenerates in minutes on a laptop while every
// bug is still found.
type fig5Budget struct {
	cases      int // PBT sequences for sequential/crash bugs
	iterations int // shuttle iterations for concurrency bugs
	strategy   func() shuttle.Strategy
}

func fig5Budgets(quick bool) map[faults.Bug]fig5Budget {
	random := func() shuttle.Strategy { return shuttle.NewRandom(5) }
	pct := func() shuttle.Strategy { return shuttle.NewPCT(11, 3, 3000) }
	b := map[faults.Bug]fig5Budget{
		faults.Bug1ReclaimOffByOne:        {cases: 4000},
		faults.Bug2CacheNotDrained:        {cases: 6000},
		faults.Bug3ShutdownMetadataSkip:   {cases: 4000},
		faults.Bug4DiskReturnLosesShard:   {cases: 2000},
		faults.Bug5ReclaimIOErrorDrop:     {cases: 8000},
		faults.Bug6SuperblockOwnershipDep: {cases: 4000},
		faults.Bug7SoftHardPointerSkew:    {cases: 4000},
		faults.Bug8CacheWriteMissingDep:   {cases: 6000},
		faults.Bug9RefModelCrashReclaim:   {cases: 2000},
		faults.Bug10UUIDCollision:         {cases: 40000},
		faults.Bug11WriteFlushRace:        {iterations: 8000, strategy: pct},
		faults.Bug12BufferPoolDeadlock:    {iterations: 4000, strategy: random},
		faults.Bug13ListRemoveRace:        {iterations: 4000, strategy: random},
		faults.Bug14CompactionReclaimRace: {iterations: 12000, strategy: pct},
		faults.Bug15RefModelLocatorReuse:  {iterations: 4000, strategy: random},
		faults.Bug16BulkCreateRemoveRace:  {iterations: 4000, strategy: random},
	}
	if quick {
		for k, v := range b {
			v.cases /= 4
			v.iterations /= 4
			b[k] = v
		}
	}
	return b
}

// Fig5Row is one row of the reproduced issue catalog.
type Fig5Row struct {
	Bug       faults.Bug
	Component string
	Class     faults.Class
	Checker   core.CheckerKind
	Detected  bool
	Effort    string // cases or interleavings until detection
	Elapsed   time.Duration
	Witness   string
}

// Fig5Run executes the headline experiment: re-seed each of the paper's 16
// issues, run the designated checker class, and record whether (and how
// fast) it is detected. It also verifies the clean baseline: with all bugs
// fixed, the same budgets find nothing.
//
// The PBT rows (#1–#10) are independent detection cells and run on the
// worker pool (Workers wide), each cell strictly sequential inside so the
// machine is not oversubscribed; per-row wall times therefore overlap and
// only the table's total regeneration time reflects the speedup. The
// concurrency rows (#11–#16) run strictly sequentially afterwards: shuttle
// installs the process-global vsync runtime, which must not overlap the
// pool (vsync.SetRuntime fails loudly if it does).
func Fig5Run(quick bool) ([]Fig5Row, error) {
	budgets := fig5Budgets(quick)
	all := faults.All()
	rows := make([]Fig5Row, len(all))
	var pbt []int
	for i, info := range all {
		rows[i] = Fig5Row{Bug: info.Bug, Component: info.Component, Class: info.Class, Checker: core.CheckerFor(info.Bug)}
		if info.Class != faults.Concurrency {
			pbt = append(pbt, i)
		}
	}

	core.ParallelFor(Workers, len(pbt), func(j int) {
		i := pbt[j]
		row := &rows[i]
		b := budgets[row.Bug]
		start := time.Now() //shardlint:allow determinism wall-clock experiment timing column, not a replayed path
		res := core.DetectSequentialN(row.Bug, 1234, b.cases, 1)
		row.Detected = res.Detected
		row.Effort = fmt.Sprintf("%d/%d sequences", res.CasesNeeded, b.cases)
		if res.Failure != nil {
			row.Witness = fmt.Sprintf("minimized to %d ops", len(res.Failure.Minimized))
		}
		row.Elapsed = time.Since(start) //shardlint:allow determinism wall-clock experiment timing column, not a replayed path
	})

	for i, info := range all {
		if info.Class != faults.Concurrency {
			continue
		}
		row := &rows[i]
		b := budgets[info.Bug]
		start := time.Now() //shardlint:allow determinism wall-clock experiment timing column, not a replayed path
		res, rep := core.DetectConcurrent(info.Bug, b.strategy(), b.iterations)
		row.Detected = res.Detected
		row.Effort = fmt.Sprintf("%d/%d interleavings", res.CasesNeeded, b.iterations)
		if f := rep.First(); f != nil {
			row.Witness = fmt.Sprintf("%v, %d scheduling points", f.Kind, len(f.Trace))
		}
		row.Elapsed = time.Since(start) //shardlint:allow determinism wall-clock experiment timing column, not a replayed path
	}
	return rows, nil
}

// Fig5 renders the catalog table.
func Fig5(w io.Writer, quick bool) error {
	header(w, "Fig 5: issues prevented from reaching production")
	rows, err := Fig5Run(quick)
	if err != nil {
		return err
	}
	tb := newTable("ID", "component", "class", "checker", "detected", "effort", "witness", "time")
	missed := 0
	lastClass := faults.Class(-1)
	for _, r := range rows {
		if r.Class != lastClass {
			tb.add("--", "-- "+r.Class.String()+" --", "", "", "", "", "", "")
			lastClass = r.Class
		}
		det := "YES"
		if !r.Detected {
			det = "NO"
			missed++
		}
		tb.add(fmt.Sprintf("#%d", int(r.Bug)), r.Component, "", r.Checker.String(), det, r.Effort, r.Witness, fmtDuration(r.Elapsed))
	}
	tb.write(w)
	fmt.Fprintf(w, "\n%d/16 issues detected by the designated checker class\n", 16-missed)
	fmt.Fprintln(w, "(paper: all 16 prevented from reaching production by the same decomposition)")
	if missed > 0 {
		return fmt.Errorf("fig5: %d bugs escaped their budget", missed)
	}
	return nil
}

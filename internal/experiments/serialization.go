package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"shardstore/internal/chunk"
	"shardstore/internal/lsm"
	"shardstore/internal/prop"
	"shardstore/internal/store"
)

// serializationSeedRoot derives the per-decoder fuzz seeds through the same
// prop.CaseSeed scheme the harness uses, so each decoder's input stream is
// reproducible independently of decoder order.
const serializationSeedRoot = 13

// Serialization is the §7 deserializer-robustness experiment. The paper
// proves panic-freedom of ShardStore's deserializers with the Crux symbolic
// evaluation engine (bounded) and fuzzes larger inputs; Go is memory-safe,
// so the equivalent property is: for any on-disk byte sequence, every
// decoder returns an error or a value — it never panics — and accepting
// corrupted input silently is not possible because every format carries a
// checksum.
//
// The experiment fuzzes every on-disk decoder with (a) random bytes,
// (b) random mutations of valid encodings, and (c) adversarial length
// fields, counting inputs, rejections, and panics (which must be zero).
func Serialization(w io.Writer, quick bool) error {
	header(w, "§7: deserializer robustness (Crux substitute)")
	perDecoder := 200000
	if quick {
		perDecoder = 20000
	}
	type decoder struct {
		name  string
		valid func() []byte // a valid encoding to mutate
		run   func([]byte) error
	}
	validFrame, err := chunk.EncodeFrame(chunk.TagData, "key", []byte("payload-bytes"), chunk.UUID{1, 2, 3})
	if err != nil {
		return fmt.Errorf("serialization: encode reference frame: %w", err)
	}
	decoders := []decoder{
		{
			name:  "chunk frame",
			valid: func() []byte { return append([]byte(nil), validFrame...) },
			run:   chunk.VerifyFrameBytes,
		},
		{
			name: "LSM run",
			valid: func() []byte {
				return []byte{0, 0, 0, 1, 0, 1, 'k', 0, 0, 0, 2, 7, 8}
			},
			run: func(b []byte) error { _, err := lsm.DecodeRunForTest(b); return err },
		},
		{
			name:  "index entry (locator list)",
			valid: func() []byte { return []byte{0, 1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 9} },
			run:   func(b []byte) error { _, err := store.DecodeEntry(b); return err },
		},
	}

	tb := newTable("decoder", "inputs", "rejected", "accepted", "panics")
	for di, d := range decoders {
		rng := rand.New(rand.NewSource(prop.CaseSeed(serializationSeedRoot, di)))
		inputs, rejected, accepted, panics := 0, 0, 0, 0
		try := func(b []byte) {
			inputs++
			defer func() {
				if r := recover(); r != nil {
					panics++
				}
			}()
			if err := d.run(b); err != nil {
				rejected++
			} else {
				accepted++
			}
		}
		// (a) random bytes of random lengths
		for i := 0; i < perDecoder/2; i++ {
			b := make([]byte, rng.Intn(200))
			rng.Read(b)
			try(b)
		}
		// (b) single/multi-byte mutations of a valid encoding
		for i := 0; i < perDecoder/2; i++ {
			b := d.valid()
			for m := 0; m <= rng.Intn(3); m++ {
				if len(b) > 0 {
					b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
				}
			}
			try(b)
		}
		// (c) adversarial length fields: all-0xFF runs at every offset
		base := d.valid()
		for off := 0; off+4 <= len(base); off++ {
			b := append([]byte(nil), base...)
			b[off], b[off+1], b[off+2], b[off+3] = 0xFF, 0xFF, 0xFF, 0xFF
			try(b)
		}
		tb.add(d.name, fmt.Sprint(inputs), fmt.Sprint(rejected), fmt.Sprint(accepted), fmt.Sprint(panics))
		if panics > 0 {
			tb.write(w)
			return fmt.Errorf("serialization: %s panicked on corrupt input", d.name)
		}
	}
	tb.write(w)
	fmt.Fprintln(w, "\nno decoder panics on any input; corrupted encodings are rejected by checksums")
	fmt.Fprintln(w, "(paper: Crux proves panic-freedom up to a size bound; fuzzing covers larger inputs)")
	return nil
}

package experiments

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"shardstore/internal/core"
)

// Fig 6 of the paper tallies lines of code for the ShardStore implementation
// and its validation artifacts, the basis of the "13% of the code base,
// 20% of the implementation" overhead claim. This experiment regenerates the
// same table for this repository by categorizing every Go file.

// locCategory classifies one file.
type locCategory string

const (
	catImplementation locCategory = "Implementation"
	catUnitTests      locCategory = "Unit tests & integration tests"
	catRefModels      locCategory = "Reference models (§3.2)"
	catFunctional     locCategory = "Functional correctness checks (§3-4)"
	catCrash          locCategory = "Crash consistency checks (§5)"
	catConcurrency    locCategory = "Concurrency checks (§6)"
	catTooling        locCategory = "Experiment tooling & examples"
)

// categorize maps a repo-relative path to its Fig 6 bucket. The mapping
// mirrors the paper's split: the implementation packages, their ordinary
// unit/integration tests, the reference models, and the three classes of
// validation infrastructure.
func categorize(rel string) locCategory {
	rel = filepath.ToSlash(rel)
	isTest := strings.HasSuffix(rel, "_test.go")
	switch {
	case strings.HasPrefix(rel, "internal/model/"):
		if isTest {
			return catUnitTests
		}
		return catRefModels
	case strings.HasPrefix(rel, "internal/shuttle/"),
		strings.HasPrefix(rel, "internal/linearize/"):
		return catConcurrency
	case strings.HasPrefix(rel, "internal/core/"):
		base := filepath.Base(rel)
		switch {
		case strings.Contains(base, "concurrency"):
			return catConcurrency
		case base == "harness.go", strings.Contains(base, "smallgeom"),
			strings.Contains(base, "crash"), strings.Contains(base, "smoke"):
			// The store harness's substance is crash-state generation, the
			// §5 persistence/forward-progress checks, and the exhaustive
			// block-level enumerator.
			return catCrash
		default:
			return catFunctional
		}
	case strings.HasPrefix(rel, "internal/prop/"):
		return catFunctional
	case strings.HasPrefix(rel, "internal/experiments/"),
		strings.HasPrefix(rel, "cmd/"),
		strings.HasPrefix(rel, "examples/"),
		rel == "bench_test.go":
		return catTooling
	case isTest:
		return catUnitTests
	default:
		return catImplementation
	}
}

// countLines counts physical source lines in a file.
func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		n++
	}
	return n, sc.Err()
}

// CountLOC walks the repository and returns per-category line counts. The
// walk collects the file list sequentially (ordering and categorization stay
// deterministic), then the per-file line counting — the IO-bound part —
// fans out across the shared worker pool, each file writing only its own
// slot before a sequential aggregation pass.
func CountLOC(root string) (map[locCategory]int, int, error) {
	type goFile struct {
		path string
		cat  locCategory
		n    int
		err  error
	}
	var files []goFile
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		files = append(files, goFile{path: path, cat: categorize(rel)})
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	core.ParallelFor(Workers, len(files), func(i int) {
		files[i].n, files[i].err = countLines(files[i].path)
	})
	counts := map[locCategory]int{}
	total := 0
	for _, f := range files {
		if f.err != nil {
			return nil, 0, f.err
		}
		counts[f.cat] += f.n
		total += f.n
	}
	return counts, total, nil
}

// repoRoot locates the module root (the directory containing go.mod).
func repoRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

// Fig6 renders the lines-of-code table for this repository, mirroring the
// paper's Fig 6 categories, and reports the validation overhead ratios the
// paper highlights.
func Fig6(w io.Writer, quick bool) error {
	header(w, "Fig 6: lines of code (this repository)")
	counts, total, err := CountLOC(repoRoot())
	if err != nil {
		return err
	}
	order := []locCategory{
		catImplementation, catUnitTests, catRefModels,
		catFunctional, catCrash, catConcurrency, catTooling,
	}
	tb := newTable("component", "lines")
	for _, c := range order {
		tb.add(string(c), fmt.Sprint(counts[c]))
	}
	tb.add("Total", fmt.Sprint(total))
	tb.write(w)

	impl := counts[catImplementation]
	validation := counts[catRefModels] + counts[catFunctional] + counts[catCrash] + counts[catConcurrency]
	if impl > 0 && total > 0 {
		fmt.Fprintf(w, "\nreference models + validation = %d lines: %.0f%% of the code base, %.0f%% of the implementation\n",
			validation, 100*float64(validation)/float64(total), 100*float64(validation)/float64(impl))
		fmt.Fprintf(w, "(paper: 13%% of the code base, 20%% of the implementation — vs 3-10x for full verification)\n")
	}
	return nil
}

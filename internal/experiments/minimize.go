package experiments

import (
	"fmt"
	"io"

	"shardstore/internal/core"
	"shardstore/internal/faults"
)

// Minimization reproduces the §4.3 anecdote: "when discovering bug #9, the
// first random sequence that failed the test had 61 operations, including 9
// crashes and 14 writes totalling 226 KiB of data; the final automatically
// minimized sequence had 6 operations, including 1 crash and 2 writes
// totalling 2 B of data."
//
// For a selection of seeded bugs, the experiment records the originally
// generated failing sequence and what the reduction heuristics ("remove an
// operation", "shrink an integer argument towards zero", earlier-variant
// preference) leave behind.
func Minimization(w io.Writer, quick bool) error {
	header(w, "§4.3: automatic test-case minimization")
	bugs := []faults.Bug{
		faults.Bug9RefModelCrashReclaim,
		faults.Bug3ShutdownMetadataSkip,
		faults.Bug4DiskReturnLosesShard,
		faults.Bug7SoftHardPointerSkew,
		faults.Bug8CacheWriteMissingDep,
	}
	if quick {
		bugs = bugs[:3]
	}
	tb := newTable("bug", "checker",
		"orig ops", "orig crashes", "orig bytes",
		"min ops", "min crashes", "min bytes")
	for _, b := range bugs {
		res := core.DetectSequential(b, 99, 20000)
		if !res.Detected {
			tb.add(b.String(), core.CheckerFor(b).String(), "not found", "", "", "", "", "")
			continue
		}
		o := core.StatsOf(res.Failure.Seq)
		m := core.StatsOf(res.Failure.Minimized)
		tb.add(b.String(), core.CheckerFor(b).String(),
			fmt.Sprint(o.Ops), fmt.Sprint(o.Crashes), fmt.Sprint(o.BytesWritten),
			fmt.Sprint(m.Ops), fmt.Sprint(m.Crashes), fmt.Sprint(m.BytesWritten))
	}
	tb.write(w)
	fmt.Fprintln(w, "\n(paper's bug #9: 61 ops / 9 crashes / 226 KiB  ->  6 ops / 1 crash / 2 B)")

	// Show one minimized counterexample in full, the way a developer would
	// replay it as a unit test.
	res := core.DetectSequential(faults.Bug9RefModelCrashReclaim, 99, 20000)
	if res.Detected {
		fmt.Fprintf(w, "\nminimized counterexample for %v:\n", res.Failure.Err)
		for i, op := range res.Failure.Minimized {
			fmt.Fprintf(w, "  %2d. %s\n", i, op)
		}
	}
	return nil
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"shardstore/internal/core"
	"shardstore/internal/dep"
	"shardstore/internal/faults"
	"shardstore/internal/shuttle"
	"shardstore/internal/store"
)

// Fig2 reproduces the paper's Fig 2: the dependency graph for three put
// operations — two whose data chunks share an extent (their writebacks
// coalesce into one IO and their soft-write-pointer updates share a
// superblock record) and a third on a different extent, all sharing one
// LSM-tree flush whose metadata update depends on the new index run.
func Fig2(w io.Writer, quick bool) error {
	header(w, "Fig 2: dependency graph for three puts")
	st, _, err := store.New(store.Config{Seed: 1})
	if err != nil {
		return err
	}
	// Puts #1 and #2 are small: their chunks land on the same extent.
	d1, err := st.Put("shard-0x1", make([]byte, 40))
	if err != nil {
		return err
	}
	d2, err := st.Put("shard-0x2", make([]byte, 40))
	if err != nil {
		return err
	}
	// Put #3 is large enough to move the append target to a new extent.
	d3, err := st.Put("shard-0x3", make([]byte, 1800))
	if err != nil {
		return err
	}
	// One LSM-tree flush covers all three index entries (as in the paper:
	// "all three puts arrive close enough together in time to participate in
	// the same LSM-tree flush").
	if _, err := st.FlushIndex(); err != nil {
		return err
	}
	if _, err := st.FlushSuperblock(); err != nil {
		return err
	}

	combined := dep.All(d1, d2, d3)
	nodes, edges := combined.Graph()

	fmt.Fprintf(w, "dependency graph (%d writebacks, %d ordering edges):\n\n", len(nodes), len(edges))
	fmt.Fprint(w, dep.DumpGraph(combined))

	// Structural checks corresponding to the figure's shape.
	labels := map[string]int{}
	extentsOfData := map[int]bool{}
	for _, n := range nodes {
		switch {
		case contains(n.Label, "data chunk"):
			labels["shard data chunk"]++
			extentsOfData[int(n.Extent)] = true
		case contains(n.Label, "index-run chunk"):
			labels["index entry (run chunk)"]++
		case contains(n.Label, "LSM-tree metadata"):
			labels["LSM-tree metadata"]++
		case contains(n.Label, "pointer record"):
			labels["superblock pointer record"]++
		case contains(n.Label, "ownership record"):
			labels["superblock ownership record"]++
		}
	}
	tb := newTable("node kind", "count")
	for _, k := range sortedKeys(labels) {
		tb.add(k, fmt.Sprint(labels[k]))
	}
	tb.write(w)

	if err := st.Pump(); err != nil {
		return err
	}
	stats := st.Scheduler().Stats()
	fmt.Fprintf(w, "\nafter pump: %d physical IOs for %d writebacks (%d coalesced)\n",
		stats.IOs, stats.Issued, stats.Coalesced)
	fmt.Fprintf(w, "all three puts persistent: %v %v %v\n",
		d1.IsPersistent(), d2.IsPersistent(), d3.IsPersistent())
	if !d1.IsPersistent() || !d2.IsPersistent() || !d3.IsPersistent() {
		return fmt.Errorf("fig2: puts not persistent after pump")
	}
	if len(extentsOfData) < 2 {
		return fmt.Errorf("fig2: expected shard data on at least two extents, got %d", len(extentsOfData))
	}
	if stats.Coalesced == 0 {
		return fmt.Errorf("fig2: expected coalesced IOs for same-extent puts")
	}
	return nil
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Fig3 runs the index conformance harness (the paper's Fig 3 proptest) on
// the fixed implementation and reports throughput; it must find nothing.
func Fig3(w io.Writer, quick bool) error {
	header(w, "Fig 3: index conformance harness (clean run)")
	cases := 2000
	if quick {
		cases = 200
	}
	start := time.Now() //shardlint:allow determinism wall-clock experiment timing column, not a replayed path
	res := core.RunIndexConformance(core.IndexConfig{
		Seed: 11, Cases: cases, OpsPerCase: 30, Bias: core.DefaultBias(), Minimize: true,
		Workers: Workers,
	})
	elapsed := time.Since(start) //shardlint:allow determinism wall-clock experiment timing column, not a replayed path
	tb := newTable("metric", "value")
	tb.add("sequences", fmt.Sprint(res.Cases))
	tb.add("operations", fmt.Sprint(res.Ops))
	tb.add("wall time", fmtDuration(elapsed))
	tb.add("sequences/sec", fmt.Sprintf("%.0f", float64(res.Cases)/elapsed.Seconds()))
	tb.add("violations", fmt.Sprint(boolCount(res.Failure != nil)))
	tb.write(w)
	if res.Failure != nil {
		return fmt.Errorf("fig3: clean index run found a failure: %v", res.Failure.Err)
	}
	fmt.Fprintln(w, "\nno divergence between PersistentLSMTIndex and the hash-map reference model")
	return nil
}

func boolCount(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Fig4 runs the paper's Fig 4 stateless-model-checking harness on the fixed
// implementation under both randomized strategies; it must find nothing, and
// the run reports the interleavings explored.
func Fig4(w io.Writer, quick bool) error {
	header(w, "Fig 4: stateless model checking harness (clean run)")
	iters := 2000
	if quick {
		iters = 200
	}
	body := core.Fig4Harness(faults.NewSet())
	tb := newTable("strategy", "interleavings", "sched points", "wall time", "failures")
	for _, s := range []shuttle.Strategy{shuttle.NewRandom(3), shuttle.NewPCT(3, 3, 4000)} {
		start := time.Now() //shardlint:allow determinism wall-clock experiment timing column, not a replayed path
		rep := shuttle.Explore(shuttle.Options{Strategy: s, Iterations: iters}, body)
		elapsed := time.Since(start) //shardlint:allow determinism wall-clock experiment timing column, not a replayed path
		tb.add(s.Name(), fmt.Sprint(rep.Iterations), fmt.Sprint(rep.TotalSteps), fmtDuration(elapsed), fmt.Sprint(len(rep.Failures)))
		if rep.Failed() {
			tb.write(w)
			return fmt.Errorf("fig4: clean harness failed: %v", rep.First())
		}
	}
	tb.write(w)
	fmt.Fprintln(w, "\nread-after-write consistency holds under concurrent reclamation + compaction")
	return nil
}

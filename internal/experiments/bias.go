package experiments

import (
	"fmt"
	"io"
	"sort"

	"shardstore/internal/core"
	"shardstore/internal/faults"
	"shardstore/internal/prop"
)

// BiasAblation quantifies the §4.2 claims:
//
//   - argument biasing ("prefer keys that were Put earlier", "read/write
//     sizes close to the disk page size") materially raises the probability
//     of reaching interesting states per test case;
//   - testing is pay-as-you-go: running more random sequences monotonically
//     raises detection probability, so the same checks run both on laptops
//     and at fleet scale before deployments.
//
// The target is seeded bug #1 (the reclamation off-by-one for chunks whose
// frames end exactly on a page boundary) — precisely the page-size corner
// case the paper's biasing discussion uses as its example.
func BiasAblation(w io.Writer, quick bool) error {
	header(w, "§4.2: argument bias ablation (target: bug #1, page-size off-by-one)")
	trials := 30
	budget := 3000
	if quick {
		trials = 8
		budget = 1500
	}

	configs := []struct {
		name string
		bias core.Bias
	}{
		{"no biasing", core.NoBias()},
		{"key reuse only", core.Bias{KeyReuse: 0.8}},
		{"page-size values only", core.Bias{PageSizeValues: 0.6}},
		{"full default biasing", func() core.Bias { b := core.DefaultBias(); b.PageSizeValues = 0.6; return b }()},
	}

	tb := newTable("bias configuration", "detected", "median cases to detection", "p90")
	detectionsByConfig := map[string][]int{}
	for _, cfgSpec := range configs {
		// Trials are independent detection cells: run them on the worker
		// pool, each strictly sequential inside. Results land in per-trial
		// slots, so the table is identical at any pool width.
		needed := make([]int, trials)
		core.ParallelFor(Workers, trials, func(trial int) {
			cfg := core.DetectionConfig(faults.Bug1ReclaimOffByOne, prop.CaseSeed(7, trial))
			cfg.Bias = cfgSpec.bias
			cfg.Cases = budget
			cfg.Minimize = false
			cfg.Workers = 1
			res := core.Run(cfg)
			if res.Failure != nil {
				needed[trial] = res.Failure.Case + 1
			} else {
				needed[trial] = budget + 1 // censored
			}
		})
		detected := 0
		for _, n := range needed {
			if n <= budget {
				detected++
			}
		}
		detectionsByConfig[cfgSpec.name] = needed
		needed = append([]int(nil), needed...)
		sort.Ints(needed)
		med := fmt.Sprint(needed[len(needed)/2])
		p90 := fmt.Sprint(needed[len(needed)*9/10])
		if needed[len(needed)/2] > budget {
			med = ">" + fmt.Sprint(budget)
		}
		if needed[len(needed)*9/10] > budget {
			p90 = ">" + fmt.Sprint(budget)
		}
		tb.add(cfgSpec.name, fmt.Sprintf("%d/%d", detected, trials), med, p90)
	}
	tb.write(w)
	fmt.Fprintln(w, "\nexpected shape: the page-size bias dominates detection of this bug;")
	fmt.Fprintln(w, "biases are probabilistic, so even unbiased runs find it eventually (pay-as-you-go)")

	// Pay-as-you-go curve: detection probability vs budget under the full
	// bias, computed from the per-trial cases-to-detection samples.
	header(w, "§4.2: pay-as-you-go scaling (full biasing)")
	samples := detectionsByConfig["full default biasing"]
	tb2 := newTable("budget (sequences)", "detection probability")
	for _, b := range []int{100, 300, 1000, budget} {
		hit := 0
		for _, n := range samples {
			if n <= b {
				hit++
			}
		}
		tb2.add(fmt.Sprint(b), fmt.Sprintf("%.0f%%", 100*float64(hit)/float64(len(samples))))
	}
	tb2.write(w)
	return nil
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"shardstore/internal/core"
	"shardstore/internal/faults"
	"shardstore/internal/shuttle"
	"shardstore/internal/vsync"
)

// MCTradeoff reproduces the §6 soundness/scalability comparison: "We use
// Loom to soundly check all interleavings of small, correctness-critical
// code such as custom concurrency primitives, and Shuttle to randomly check
// interleavings of larger test harnesses to which Loom does not scale."
//
// Part 1 (the Loom role): bounded-exhaustive DFS fully explores a small
// lock-protected primitive, proving a property over every interleaving, and
// demonstrates soundness by surely finding a seeded rare-ordering bug that
// random search hits only occasionally.
//
// Part 2 (the Shuttle role): the full Fig 4 store harness is far beyond
// exhaustive reach (the paper: "even a relatively small test involves tens
// of thousands of atomic steps"); randomized strategies check it at high
// throughput, and PCT finds the seeded bug #14 that needs a long preemption.
func MCTradeoff(w io.Writer, quick bool) error {
	header(w, "§6 part 1: sound DFS on a small primitive (the Loom role)")

	// A small concurrency-critical primitive: a once-cell built from a
	// mutex. DFS explores every interleaving.
	onceCell := func() {
		var mu vsync.Mutex
		done := false
		val := 0
		initOnce := func() {
			mu.Lock()
			if !done {
				val++
				done = true
			}
			mu.Unlock()
		}
		h1 := vsync.Go("a", initOnce)
		h2 := vsync.Go("b", initOnce)
		h3 := vsync.Go("c", initOnce)
		h1.Join()
		h2.Join()
		h3.Join()
		if val != 1 {
			panic(fmt.Sprintf("once ran %d times", val))
		}
	}
	dfs := shuttle.NewDFS()
	start := time.Now() //shardlint:allow determinism wall-clock experiment timing column, not a replayed path
	rep := shuttle.Explore(shuttle.Options{Strategy: dfs, Iterations: 500000}, onceCell)
	tb := newTable("strategy", "interleavings", "sched points", "exhausted", "failures", "wall time")
	tb.add("dfs (sound)", fmt.Sprint(rep.Iterations), fmt.Sprint(rep.TotalSteps),
		fmt.Sprint(rep.Exhausted), fmt.Sprint(len(rep.Failures)), fmtDuration(time.Since(start))) //shardlint:allow determinism wall-clock experiment timing column, not a replayed path
	tb.write(w)
	if rep.Failed() {
		return fmt.Errorf("mctradeoff: once-cell failed: %v", rep.First())
	}
	if !rep.Exhausted {
		return fmt.Errorf("mctradeoff: DFS did not exhaust the small primitive")
	}
	fmt.Fprintln(w, "\nevery interleaving of the primitive was checked — a proof at this bound")

	// A rare 3-step ordering bug: DFS finds it with certainty; uniform
	// random needs luck.
	rare := func() {
		var mu vsync.Mutex
		stage := 0
		step := func(want, next int) {
			mu.Lock()
			if stage == want {
				stage = next
			}
			mu.Unlock()
		}
		h1 := vsync.Go("t1", func() { step(0, 1) })
		h2 := vsync.Go("t2", func() { step(1, 2) })
		h3 := vsync.Go("t3", func() { step(2, 3) })
		h1.Join()
		h2.Join()
		h3.Join()
		if stage == 3 {
			panic("rare ordering reached")
		}
	}
	tb2 := newTable("strategy", "found rare ordering", "interleavings needed")
	dfs2 := shuttle.NewDFS()
	rep2 := shuttle.Explore(shuttle.Options{Strategy: dfs2, Iterations: 500000}, rare)
	found := "no"
	needed := "-"
	if rep2.Failed() {
		found = "YES (guaranteed)"
		needed = fmt.Sprint(rep2.First().Iteration + 1)
	}
	tb2.add("dfs (sound)", found, needed)
	rep3 := shuttle.Explore(shuttle.Options{Strategy: shuttle.NewRandom(2), Iterations: 5000}, rare)
	found = "no"
	needed = "-"
	if rep3.Failed() {
		found = "yes (probabilistic)"
		needed = fmt.Sprint(rep3.First().Iteration + 1)
	}
	tb2.add("random", found, needed)
	tb2.write(w)

	header(w, "§6 part 2: randomized checking of the full store harness (the Shuttle role)")
	iters := 1500
	if quick {
		iters = 300
	}
	body := core.Fig4Harness(faults.NewSet())
	tb3 := newTable("strategy", "interleavings", "sched points", "steps/interleaving", "wall time", "failures")
	for _, s := range []shuttle.Strategy{shuttle.NewRandom(3), shuttle.NewPCT(3, 3, 4000)} {
		start := time.Now() //shardlint:allow determinism wall-clock experiment timing column, not a replayed path
		rep := shuttle.Explore(shuttle.Options{Strategy: s, Iterations: iters}, body)
		per := int64(0)
		if rep.Iterations > 0 {
			per = rep.TotalSteps / int64(rep.Iterations)
		}
		tb3.add(s.Name(), fmt.Sprint(rep.Iterations), fmt.Sprint(rep.TotalSteps),
			fmt.Sprint(per), fmtDuration(time.Since(start)), fmt.Sprint(len(rep.Failures))) //shardlint:allow determinism wall-clock experiment timing column, not a replayed path
		if rep.Failed() {
			return fmt.Errorf("mctradeoff: clean fig4 failed under %s: %v", s.Name(), rep.First())
		}
	}
	tb3.write(w)
	fmt.Fprintln(w, "\nthe store harness runs hundreds of scheduling points per interleaving —")
	fmt.Fprintln(w, "exhaustive exploration is hopeless, randomized exploration is cheap (pay-as-you-go)")

	// The bug that needs PCT's long preemptions (#14): iterations to
	// detection under PCT, mirroring the paper's worked example.
	if !quick {
		res, rep := core.DetectConcurrent(faults.Bug14CompactionReclaimRace, shuttle.NewPCT(11, 3, 3000), 12000)
		if res.Detected {
			fmt.Fprintf(w, "\nseeded bug #14 (the paper's §6 example) found by PCT at interleaving %d (%d total steps)\n",
				res.CasesNeeded, rep.TotalSteps)
		} else {
			fmt.Fprintln(w, "\nseeded bug #14 escaped this PCT budget (rerun fig5 for the full hunt)")
		}
	}
	return nil
}

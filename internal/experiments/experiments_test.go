package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The fast experiments run as tests so regressions in table generation are
// caught; the long ones (fig5, bias, mctradeoff) are covered by their
// building blocks' own tests and by cmd/experiments runs.

func TestFig2(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(&buf, true); err != nil {
		t.Fatalf("fig2: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"shard data chunk", "LSM-tree metadata", "coalesced", "persistent: true true true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3(&buf, true); err != nil {
		t.Fatalf("fig3: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no divergence") {
		t.Fatalf("fig3 output:\n%s", buf.String())
	}
}

func TestFig6(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6(&buf, true); err != nil {
		t.Fatalf("fig6: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Implementation", "Reference models", "Total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig6 output missing %q:\n%s", want, out)
		}
	}
}

func TestSerializationQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := Serialization(&buf, true); err != nil {
		t.Fatalf("serialization: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no decoder panics") {
		t.Fatalf("serialization output:\n%s", buf.String())
	}
}

func TestCategorizeMapping(t *testing.T) {
	cases := map[string]locCategory{
		"internal/disk/disk.go":           catImplementation,
		"internal/disk/disk_test.go":      catUnitTests,
		"internal/model/refindex.go":      catRefModels,
		"internal/model/model_test.go":    catUnitTests,
		"internal/core/ops.go":            catFunctional,
		"internal/core/harness.go":        catCrash,
		"internal/core/concurrency.go":    catConcurrency,
		"internal/shuttle/shuttle.go":     catConcurrency,
		"internal/linearize/linearize.go": catConcurrency,
		"internal/prop/prop.go":           catFunctional,
		"internal/experiments/fig5.go":    catTooling,
		"cmd/experiments/main.go":         catTooling,
		"examples/quickstart/main.go":     catTooling,
		"bench_test.go":                   catTooling,
		"internal/store/store.go":         catImplementation,
	}
	for path, want := range cases {
		if got := categorize(path); got != want {
			t.Errorf("categorize(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestLookupAndAll(t *testing.T) {
	if len(All()) != 10 {
		t.Fatalf("experiments: %d", len(All()))
	}
	if _, ok := Lookup("fig5"); !ok {
		t.Fatal("fig5 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestTableRendering(t *testing.T) {
	tb := newTable("a", "bb")
	tb.add("1", "2")
	tb.addf("x|y")
	var buf bytes.Buffer
	tb.write(&buf)
	if !strings.Contains(buf.String(), "a  bb") {
		t.Fatalf("table:\n%s", buf.String())
	}
}

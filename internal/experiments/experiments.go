// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index): the Fig 2 dependency
// graph, the Fig 3 index conformance harness, the Fig 4 model-checking
// harness, the Fig 5 catalog of 16 prevented issues, the Fig 6
// lines-of-code table, and the quantitative claims of §4–§6 (minimization,
// pay-as-you-go scaling, argument-bias ablation, block-level vs coarse crash
// states, and the Loom-vs-Shuttle soundness/scalability trade-off).
//
// Each experiment is a function from a configuration to a rendered table,
// runnable via cmd/experiments and exercised by the repo's benchmarks.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Workers is the worker-pool width the experiments hand to the conformance
// harnesses and grid runners: 0 means one worker per CPU, 1 forces
// sequential execution. cmd/experiments sets it from -workers. Detection
// results are deterministic at any width (same seed ⇒ same table); only
// wall-clock columns change. Shuttle-based model-checking experiments
// (fig4, mctradeoff, the fig5 concurrency rows) ignore it — they install a
// process-global scheduler and must stay sequential.
var Workers int

// Experiment is one runnable table/figure generator.
type Experiment struct {
	// Name is the cmd/experiments -run selector (e.g. "fig5").
	Name string
	// Paper identifies the table/figure reproduced.
	Paper string
	// Quick runs a reduced budget suitable for CI; Run uses the full one.
	Run func(w io.Writer, quick bool) error
}

// All returns the experiments in presentation order.
func All() []Experiment {
	return []Experiment{
		{Name: "fig2", Paper: "Fig 2: dependency graph for three puts", Run: Fig2},
		{Name: "fig3", Paper: "Fig 3: index conformance harness", Run: Fig3},
		{Name: "fig4", Paper: "Fig 4: stateless model checking harness", Run: Fig4},
		{Name: "fig5", Paper: "Fig 5: issues prevented from reaching production", Run: Fig5},
		{Name: "fig6", Paper: "Fig 6: lines of code", Run: Fig6},
		{Name: "minimize", Paper: "§4.3: automatic test-case minimization", Run: Minimization},
		{Name: "bias", Paper: "§4.2: argument bias ablation / pay-as-you-go", Run: BiasAblation},
		{Name: "crashgrid", Paper: "§5: coarse vs block-level crash states", Run: CrashGrid},
		{Name: "mctradeoff", Paper: "§6: sound (DFS) vs randomized model checking", Run: MCTradeoff},
		{Name: "serialization", Paper: "§7: deserializer robustness", Run: Serialization},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// table is a tiny text-table renderer.
type table struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *table { return &table{headers: headers} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.rows = append(t.rows, strings.Split(fmt.Sprintf(format, args...), "|"))
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n\n", title)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package store

import "shardstore/internal/dep"

// KV is the minimal request/control-plane surface a per-disk backend must
// offer: the operations the shared RPC endpoint steers (§2.1) and the
// conformance harness replays. *Store satisfies it; future backends (an
// alternative index, a remote disk, a caching tier) implement this one
// interface instead of re-touching every rpc and harness call site.
//
// Mutating calls return the dependency that resolves once the operation is
// durable (nil is treated as already-durable by callers that only poll).
//
// NOTE (shardlint): implementations of KV that the conformance harness or
// the shuttle model checker will drive are *instrumented packages* in the
// sense of the syncusage pass — their internal synchronization must route
// through internal/vsync (no raw sync.Mutex/RWMutex/Cond, no bare go
// statements), or the model checker's exhaustiveness claim over them is
// silently unsound. See internal/analysis/syncusage.go.
type KV interface {
	Put(shardID string, value []byte) (*dep.Dependency, error)
	Get(shardID string) ([]byte, error)
	Delete(shardID string) (*dep.Dependency, error)
	List() ([]string, error)
	BulkCreate(ids []string, values [][]byte) (*dep.Dependency, error)
	BulkRemove(ids []string) (*dep.Dependency, error)
}

// BatchKV is the optional batched request plane. The RPC server's MGet/
// MPut/MDelete ops use it when the backend offers it and fall back to
// per-item KV calls otherwise. Unlike KV's fail-fast bulk ops, batch
// methods run every item and report per-item outcomes — the wire contract
// for the v2 multi-op frames.
type BatchKV interface {
	PutBatch(ids []string, values [][]byte) []error
	GetBatch(ids []string) ([][]byte, []error)
	DeleteBatch(ids []string) []error
}

// ScanEntry is one shard in a Scan result page.
type ScanEntry struct {
	Key   string
	Value []byte
}

// OrderedKV is the optional ordered-map capability: backends whose key space
// supports range iteration in byte order. The RPC server's scan op probes
// for it and answers CodeUnsupported when any steered backend lacks it —
// point-only backends remain first-class KV citizens.
//
// Scan returns the live shards in [start, end) in ascending key order,
// bounded by limit (<= 0 means unbounded; empty end means unbounded). more
// reports that in-range shards beyond the limit remain; resume the cursor
// with start = lastKey + "\x00". Implementations must return a
// snapshot-consistent page: the result reflects one logical point in time
// even when flushes or compactions run concurrently.
type OrderedKV interface {
	Scan(start, end string, limit int) (entries []ScanEntry, more bool, err error)
}

var (
	_ KV        = (*Store)(nil)
	_ BatchKV   = (*Store)(nil)
	_ OrderedKV = (*Store)(nil)
)

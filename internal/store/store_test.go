package store

import (
	"bytes"
	"math/rand"
	"testing"

	"shardstore/internal/coverage"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
)

func testConfig(seed int64) Config {
	return Config{
		Disk:     disk.DefaultConfig(),
		Seed:     seed,
		Bugs:     faults.NewSet(),
		Coverage: coverage.NewRegistry(),
	}
}

func mustOpen(t *testing.T, cfg Config) (*Store, *disk.Disk) {
	t.Helper()
	s, d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, d
}

func TestPutGetDelete(t *testing.T) {
	s, _ := mustOpen(t, testConfig(1))
	if _, err := s.Put("shard-a", []byte("hello")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("shard-a")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Get = %q, want hello", got)
	}
	if _, err := s.Delete("shard-a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("shard-a"); err != ErrNotFound {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
}

func TestGetAbsent(t *testing.T) {
	s, _ := mustOpen(t, testConfig(2))
	if _, err := s.Get("nope"); err != ErrNotFound {
		t.Fatalf("Get = %v, want ErrNotFound", err)
	}
}

func TestLargeValueSpansChunks(t *testing.T) {
	s, _ := mustOpen(t, testConfig(3))
	val := make([]byte, 700) // several chunks at default max payload
	for i := range val {
		val[i] = byte(i)
	}
	if _, err := s.Put("big", val); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("big")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, val) {
		t.Fatalf("Get returned %d bytes, mismatch", len(got))
	}
}

func TestOverwrite(t *testing.T) {
	s, _ := mustOpen(t, testConfig(4))
	for i := 0; i < 5; i++ {
		val := []byte{byte(i), byte(i + 1)}
		if _, err := s.Put("k", val); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		got, err := s.Get("k")
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("Get %d = %q, %v", i, got, err)
		}
	}
}

func TestPutDependencyBecomesPersistent(t *testing.T) {
	s, _ := mustOpen(t, testConfig(5))
	d, err := s.Put("k", []byte("v"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if d.IsPersistent() {
		t.Fatal("dependency persistent before any flush")
	}
	if err := s.Pump(); err != nil {
		t.Fatalf("Pump: %v", err)
	}
	if !d.IsPersistent() {
		t.Fatal("dependency not persistent after pump")
	}
}

func TestCleanShutdownForwardProgress(t *testing.T) {
	s, _ := mustOpen(t, testConfig(6))
	var deps []interface{ IsPersistent() bool }
	for i := 0; i < 10; i++ {
		d, err := s.Put(string(rune('a'+i)), []byte{byte(i)})
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		deps = append(deps, d)
	}
	dd, err := s.Delete("a")
	if err != nil {
		t.Fatalf("Delete: %v", err)
	}
	deps = append(deps, dd)
	if err := s.CleanShutdown(); err != nil {
		t.Fatalf("CleanShutdown: %v", err)
	}
	for i, d := range deps {
		if !d.IsPersistent() {
			t.Fatalf("dep %d not persistent after clean shutdown", i)
		}
	}
}

func TestCleanRebootKeepsData(t *testing.T) {
	cfg := testConfig(7)
	s, d := mustOpen(t, cfg)
	want := map[string][]byte{}
	for i := 0; i < 8; i++ {
		k := string(rune('a' + i))
		v := bytes.Repeat([]byte{byte(i + 1)}, i*37+1)
		if _, err := s.Put(k, v); err != nil {
			t.Fatalf("Put: %v", err)
		}
		want[k] = v
	}
	if _, err := s.Delete("c"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	delete(want, "c")
	if err := s.CleanShutdown(); err != nil {
		t.Fatalf("CleanShutdown: %v", err)
	}
	s2, err := Open(d, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for k, v := range want {
		got, err := s2.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("after reboot Get(%q) = %q, %v; want %q", k, got, err, v)
		}
	}
	if _, err := s2.Get("c"); err != ErrNotFound {
		t.Fatalf("deleted key resurrected: %v", err)
	}
}

func TestCrashPersistedDataSurvives(t *testing.T) {
	cfg := testConfig(8)
	s, d := mustOpen(t, cfg)
	dp, err := s.Put("k", []byte("durable"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Pump(); err != nil {
		t.Fatalf("Pump: %v", err)
	}
	if !dp.IsPersistent() {
		t.Fatal("put not persistent after pump")
	}
	// Unpersisted second put.
	if _, err := s.Put("k2", []byte("volatile")); err != nil {
		t.Fatalf("Put2: %v", err)
	}
	s.Crash(rand.New(rand.NewSource(99)))
	s2, err := Open(d, cfg)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	got, err := s2.Get("k")
	if err != nil || !bytes.Equal(got, []byte("durable")) {
		t.Fatalf("persistent shard lost: %q, %v", got, err)
	}
}

func TestReclaimPreservesLiveData(t *testing.T) {
	cfg := testConfig(9)
	s, _ := mustOpen(t, cfg)
	want := map[string][]byte{}
	// Fill several extents, delete half the shards, reclaim, verify.
	for i := 0; i < 20; i++ {
		k := string(rune('a' + i))
		v := bytes.Repeat([]byte{byte(i + 1)}, 150)
		if _, err := s.Put(k, v); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		want[k] = v
	}
	if err := s.Pump(); err != nil {
		t.Fatalf("Pump: %v", err)
	}
	for i := 0; i < 20; i += 2 {
		k := string(rune('a' + i))
		if _, err := s.Delete(k); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		delete(want, k)
	}
	if err := s.Pump(); err != nil {
		t.Fatalf("Pump: %v", err)
	}
	for i := 0; i < 10; i++ {
		ran, err := s.ReclaimAuto()
		if err != nil {
			t.Fatalf("ReclaimAuto: %v", err)
		}
		if !ran {
			break
		}
		if err := s.Pump(); err != nil {
			t.Fatalf("Pump after reclaim: %v", err)
		}
	}
	for k, v := range want {
		got, err := s.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("after reclaim Get(%q) = %v (len %d)", k, err, len(got))
		}
	}
	if s.Chunks().Stats().ExtentsRecycled == 0 {
		t.Fatal("no extents were recycled")
	}
}

func TestRemoveReturnService(t *testing.T) {
	cfg := testConfig(10)
	s, _ := mustOpen(t, cfg)
	if _, err := s.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.RemoveFromService(); err != nil {
		t.Fatalf("RemoveFromService: %v", err)
	}
	if _, err := s.Get("k"); err != ErrOutOfService {
		t.Fatalf("Get out of service = %v", err)
	}
	s2, err := s.ReturnToService()
	if err != nil {
		t.Fatalf("ReturnToService: %v", err)
	}
	got, err := s2.Get("k")
	if err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("after return Get = %q, %v", got, err)
	}
}

func TestBug4LosesShardAcrossServiceCycle(t *testing.T) {
	cfg := testConfig(11)
	cfg.Bugs.Enable(faults.Bug4DiskReturnLosesShard)
	s, _ := mustOpen(t, cfg)
	if _, err := s.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.RemoveFromService(); err != nil {
		t.Fatalf("RemoveFromService: %v", err)
	}
	s2, err := s.ReturnToService()
	if err != nil {
		t.Fatalf("ReturnToService: %v", err)
	}
	if _, err := s2.Get("k"); err == nil {
		t.Fatal("bug #4 enabled but shard survived the service cycle")
	}
}

func TestListMatchesCatalog(t *testing.T) {
	s, _ := mustOpen(t, testConfig(12))
	ids := []string{"b", "a", "c"}
	for _, id := range ids {
		if _, err := s.Put(id, []byte(id)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	got, err := s.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("List = %v", got)
	}
}

func TestBulkCreateRemove(t *testing.T) {
	s, _ := mustOpen(t, testConfig(13))
	ids := []string{"x", "y", "z"}
	vals := [][]byte{[]byte("1"), []byte("2"), []byte("3")}
	if _, err := s.BulkCreate(ids, vals); err != nil {
		t.Fatalf("BulkCreate: %v", err)
	}
	if _, err := s.BulkRemove([]string{"y"}); err != nil {
		t.Fatalf("BulkRemove: %v", err)
	}
	got, _ := s.List()
	if len(got) != 2 || got[0] != "x" || got[1] != "z" {
		t.Fatalf("List after bulk remove = %v", got)
	}
	if _, err := s.Get("y"); err != ErrNotFound {
		t.Fatalf("removed shard still readable: %v", err)
	}
}

func TestManyRunsCompaction(t *testing.T) {
	cfg := testConfig(14)
	s, _ := mustOpen(t, cfg)
	for round := 0; round < 10; round++ {
		k := string(rune('a' + round%4))
		if _, err := s.Put(k, []byte{byte(round)}); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if _, err := s.FlushIndex(); err != nil {
			t.Fatalf("FlushIndex: %v", err)
		}
	}
	if s.Index().RunCount() > 7 {
		t.Fatalf("auto-compaction did not bound runs: %d", s.Index().RunCount())
	}
	for round := 6; round < 10; round++ {
		k := string(rune('a' + round%4))
		got, err := s.Get(k)
		if err != nil || got[0] != byte(round) {
			t.Fatalf("Get(%q) = %v %v", k, got, err)
		}
	}
}

func TestCrashRecoverLoop(t *testing.T) {
	cfg := testConfig(15)
	s, d := mustOpen(t, cfg)
	rng := rand.New(rand.NewSource(42))
	persisted := map[string][]byte{}
	for round := 0; round < 6; round++ {
		k := string(rune('a' + round))
		v := bytes.Repeat([]byte{byte(round + 1)}, 40)
		dp, err := s.Put(k, v)
		if err != nil {
			t.Fatalf("round %d Put: %v", round, err)
		}
		if round%2 == 0 {
			if err := s.Pump(); err != nil {
				t.Fatalf("round %d Pump: %v", round, err)
			}
			if !dp.IsPersistent() {
				t.Fatalf("round %d: dep not persistent after pump", round)
			}
			persisted[k] = v
		}
		s.Crash(rng)
		s2, err := Open(d, cfg)
		if err != nil {
			t.Fatalf("round %d recover: %v", round, err)
		}
		s = s2
		for pk, pv := range persisted {
			got, err := s.Get(pk)
			if err != nil || !bytes.Equal(got, pv) {
				t.Fatalf("round %d: persistent shard %q lost: %v", round, pk, err)
			}
		}
	}
}

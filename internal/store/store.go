// Package store implements the ShardStore key-value storage node API (§2 of
// the paper): put/get/delete of shards, the background maintenance tasks
// (index flush and compaction, chunk reclamation, superblock flush), clean
// shutdown, crash + recovery, and the control-plane operations (list, bulk
// create/remove, remove/return from service).
//
// A shard's value is split into one or more data chunks in the chunk store;
// the index entry written to the LSM tree is the encoded list of chunk
// locators. A put's returned dependency covers the data chunks, the index
// entry (run chunk + LSM metadata), and the superblock soft-write-pointer
// updates — the dependency graph of the paper's Fig 2.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"shardstore/internal/chunk"
	"shardstore/internal/compact"
	"shardstore/internal/coverage"
	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/extent"
	"shardstore/internal/faults"
	"shardstore/internal/lsm"
	"shardstore/internal/obs"
	"shardstore/internal/scrub"
	"shardstore/internal/vsync"
)

// Store-level errors.
var (
	// ErrNotFound is returned by Get for unknown shards.
	ErrNotFound = lsm.ErrNotFound
	// ErrOutOfService is returned while the disk is removed from service.
	ErrOutOfService = errors.New("store: disk out of service")
	// ErrCorruptEntry is returned when an index entry fails to decode.
	ErrCorruptEntry = errors.New("store: corrupt index entry")
)

// Config assembles a storage node.
type Config struct {
	// Disk is the geometry for a freshly created disk (ignored by Reopen).
	Disk disk.Config
	// Seed drives all internal randomness deterministically.
	Seed int64
	// MaxChunkPayload splits shard values into chunks of at most this many
	// bytes (§2.1: "a single shard comprises one or more chunks depending on
	// its size"). Zero selects a default of 1.5 pages.
	MaxChunkPayload int
	// Replicas writes each data chunk to this many distinct extents
	// (intra-host redundancy, the raw material scrub repair works with).
	// Zero or one means a single copy. Replication covers shard data only;
	// index runs and metadata keep their existing single-copy layout.
	Replicas int
	// CacheCapacity is the buffer cache size in chunks.
	CacheCapacity int
	// MaxRuns bounds the LSM run list before auto-compaction.
	MaxRuns int
	// Compact tunes the leveled-compaction engine; the zero value takes the
	// engine's defaults (see compact.Policy).
	Compact compact.Policy
	// MaxMemEntries auto-flushes the memtable; zero disables.
	MaxMemEntries int
	// AutoFlushThreshold auto-flushes the superblock; zero disables.
	AutoFlushThreshold int
	// StagingTokens bounds staged superblock mutations (bug #12 pool).
	StagingTokens int
	// UUIDGen optionally overrides chunk UUID generation (§4.2 biasing).
	UUIDGen func() chunk.UUID
	// UUIDZeroBias biases chunk UUIDs toward all-zeros (see chunk.Config).
	UUIDZeroBias float64
	// Bugs selects seeded faults; nil means all fixed.
	Bugs *faults.Set
	// Coverage optionally records probe hits.
	Coverage *coverage.Registry
	// Obs is the node-wide observability registry: every layer (disk, cache,
	// chunk, LSM, scrub, store) resolves its metric handles from it, and its
	// optional trace ring receives the cross-layer event trail. Nil gives the
	// node a private registry on a logical clock, so per-layer Stats keep
	// working standalone and harness runs stay deterministic.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.Disk.PageSize == 0 {
		c.Disk = disk.DefaultConfig()
	}
	if c.MaxChunkPayload <= 0 {
		c.MaxChunkPayload = c.Disk.PageSize + c.Disk.PageSize/2
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 32
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Obs == nil {
		c.Obs = obs.New(nil)
	}
	if c.Disk.Obs == nil {
		c.Disk.Obs = c.Obs
	}
	return c
}

// storeMetrics holds the store-layer obs handles, resolved once at Open.
type storeMetrics struct {
	puts        *obs.Counter
	gets        *obs.Counter
	deletes     *obs.Counter
	getErrors   *obs.Counter
	putErrors   *obs.Counter
	scans       *obs.Counter
	scanEntries *obs.Counter
	scanErrors  *obs.Counter
	putLat      *obs.Histogram
	getLat      *obs.Histogram
	deleteLat   *obs.Histogram
	scanLat     *obs.Histogram
	shardCount  *obs.Gauge
}

func newStoreMetrics(o *obs.Obs) storeMetrics {
	return storeMetrics{
		puts:        o.Counter("store.puts"),
		gets:        o.Counter("store.gets"),
		deletes:     o.Counter("store.deletes"),
		getErrors:   o.Counter("store.get_errors"),
		putErrors:   o.Counter("store.put_errors"),
		scans:       o.Counter("store.scans"),
		scanEntries: o.Counter("store.scan_entries"),
		scanErrors:  o.Counter("store.scan_errors"),
		putLat:      o.Histogram("store.put_lat"),
		getLat:      o.Histogram("store.get_lat"),
		deleteLat:   o.Histogram("store.delete_lat"),
		scanLat:     o.Histogram("store.scan_lat"),
		shardCount:  o.Gauge("store.shards"),
	}
}

// Store is one storage node (one disk's key-value store).
type Store struct {
	mu  vsync.Mutex
	cfg Config
	obs *obs.Obs
	met storeMetrics

	d         *disk.Disk
	sched     *dep.Scheduler
	em        *extent.Manager
	cs        *chunk.Store
	idx       *lsm.Tree
	scrubber  *scrub.Scrubber
	compactor *compact.Engine

	// scrubStop/scrubDone manage the background scrub loop (StartScrub).
	scrubStop chan struct{}
	scrubDone chan struct{}
	// compactStop/compactDone manage the background compaction loop
	// (StartCompact).
	compactStop chan struct{}
	compactDone chan struct{}

	// catalog is the control plane's sorted view of shard ids (bug #13/#16
	// sites operate on it).
	catalog []string

	inService bool
	rng       *rand.Rand
}

// Open creates or recovers a storage node on d. A zero-filled disk is
// formatted; a disk with a valid superblock is recovered from it.
func Open(d *disk.Disk, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	cov := cfg.Coverage
	bugs := cfg.Bugs
	sched := dep.NewSchedulerOpts(d, cov, dep.Options{Obs: cfg.Obs, Bugs: bugs})
	em, err := extent.Recover(sched, extent.Config{
		AutoFlushThreshold: cfg.AutoFlushThreshold,
		StagingTokens:      cfg.StagingTokens,
	}, cov, bugs)
	if err != nil {
		return nil, err
	}
	cs := chunk.NewStore(em, chunk.Config{UUIDGen: cfg.UUIDGen, UUIDZeroBias: cfg.UUIDZeroBias, CacheCapacity: cfg.CacheCapacity, Obs: cfg.Obs}, cfg.Seed, cov, bugs)
	ms, err := lsm.NewExtentMetaStore(sched, extent.MetaExtent, lsm.MaxMetaPayload(cfg.MaxRuns), cov)
	if err != nil {
		return nil, err
	}
	idx, err := lsm.NewTree(cs, ms, sched, lsm.Config{
		MaxRuns:       cfg.MaxRuns,
		MaxMemEntries: cfg.MaxMemEntries,
		ResetHappened: em.ResetHappened,
		Obs:           cfg.Obs,
	}, cov, bugs)
	if err != nil {
		return nil, err
	}
	s := &Store{
		cfg:       cfg,
		obs:       cfg.Obs,
		met:       newStoreMetrics(cfg.Obs),
		d:         d,
		sched:     sched,
		em:        em,
		cs:        cs,
		idx:       idx,
		inService: true,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	cs.RegisterResolver(chunk.TagIndexRun, lsm.RunResolver{Tree: idx})
	cs.RegisterResolver(chunk.TagData, dataResolver{s: s})
	s.scrubber = scrub.New(scrubHost{s: s}, scrub.Config{Obs: cfg.Obs}, cov, bugs)
	s.compactor = compact.New(compactHost{s: s}, cfg.Compact, cfg.Obs)
	keys, err := idx.Keys()
	if err != nil {
		return nil, fmt.Errorf("store: catalog rebuild: %w", err)
	}
	s.catalog = keys
	s.met.shardCount.Set(int64(len(keys)))
	cov.Hit("store.open")
	return s, nil
}

// New creates a fresh disk from cfg.Disk and opens a store on it.
func New(cfg Config) (*Store, *disk.Disk, error) {
	cfg = cfg.withDefaults()
	if cfg.Disk.Coverage == nil {
		cfg.Disk.Coverage = cfg.Coverage
	}
	d, err := disk.New(cfg.Disk)
	if err != nil {
		return nil, nil, err
	}
	s, err := Open(d, cfg)
	if err != nil {
		return nil, nil, err
	}
	return s, d, nil
}

// Disk returns the underlying disk.
func (s *Store) Disk() *disk.Disk { return s.d }

// Config returns the configuration the store was opened with (with defaults
// applied), so a recovered instance can be opened identically.
func (s *Store) Config() Config { return s.cfg }

// Scheduler returns the IO scheduler.
func (s *Store) Scheduler() *dep.Scheduler { return s.sched }

// Extents returns the extent manager.
func (s *Store) Extents() *extent.Manager { return s.em }

// Chunks returns the chunk store.
func (s *Store) Chunks() *chunk.Store { return s.cs }

// Obs returns the node-wide observability registry.
func (s *Store) Obs() *obs.Obs { return s.obs }

// Index returns the LSM index.
func (s *Store) Index() *lsm.Tree { return s.idx }

// Reseed re-seeds internal randomness (chunk UUIDs etc.) so harness op
// sequences replay deterministically after minimization (§4.3).
func (s *Store) Reseed(seed int64) {
	s.mu.Lock()
	s.rng = rand.New(rand.NewSource(seed))
	s.mu.Unlock()
	s.cs.Reseed(seed)
}

// --- index entry encoding: the chunk locators for a shard ---
//
// Single-copy entries use the legacy flat format `uint16 pieceCount |
// pieceCount locators` (length ≡ 2 mod 12). Replicated entries record,
// piece-major, the replica locators of every piece: `uint16 pieceCount |
// uint16 replicas | pieceCount×replicas locators` (length ≡ 4 mod 12, so the
// two formats never collide). Piece i's replicas are the i-th group of
// `replicas` locators; any one decodable replica of each piece reconstructs
// the piece. Entries self-describe their replication factor, so a disk
// written with one cfg.Replicas recovers correctly under another.

func encodeEntryGroups(groups [][]chunk.Locator) []byte {
	replicas := 1
	for _, g := range groups {
		if len(g) > replicas {
			replicas = len(g)
		}
	}
	if replicas == 1 {
		locs := make([]chunk.Locator, 0, len(groups))
		for _, g := range groups {
			locs = append(locs, g...)
		}
		return encodeEntry(locs)
	}
	buf := make([]byte, 0, 4+len(groups)*replicas*12)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(groups)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(replicas))
	for _, g := range groups {
		for _, l := range g {
			buf = append(buf, chunk.EncodeLocator(l)...)
		}
	}
	return buf
}

// encodeEntry encodes single-copy locators (one replica per piece) in the
// legacy flat format.
func encodeEntry(locs []chunk.Locator) []byte {
	buf := make([]byte, 0, 2+len(locs)*12)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(locs)))
	for _, l := range locs {
		buf = append(buf, chunk.EncodeLocator(l)...)
	}
	return buf
}

// DecodeEntryGroups parses an index entry into per-piece replica groups.
// Flat (single-copy) entries decode as one-replica groups.
func DecodeEntryGroups(buf []byte) ([][]chunk.Locator, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("%w: short entry", ErrCorruptEntry)
	}
	pieces := int(binary.BigEndian.Uint16(buf[:2]))
	replicas := 1
	rest := buf[2:]
	if len(buf)%12 == 4 { // grouped format carries a replica count too
		replicas = int(binary.BigEndian.Uint16(buf[2:4]))
		rest = buf[4:]
		if replicas < 1 {
			return nil, fmt.Errorf("%w: zero replicas", ErrCorruptEntry)
		}
	}
	// Size check before allocating: a fuzzed header must not buy a huge slice.
	if len(rest) != pieces*replicas*12 {
		return nil, fmt.Errorf("%w: %d bytes for %d×%d locators", ErrCorruptEntry, len(rest), pieces, replicas)
	}
	groups := make([][]chunk.Locator, pieces)
	for i := range groups {
		g := make([]chunk.Locator, 0, replicas)
		for r := 0; r < replicas; r++ {
			l, r2, err := chunk.DecodeLocator(rest)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorruptEntry, err)
			}
			g = append(g, l)
			rest = r2
		}
		groups[i] = g
	}
	return groups, nil
}

// DecodeEntry parses an index entry into the flat list of every locator it
// references (all replicas of all pieces). Exported for the
// serialization-robustness property tests (§7); reclamation's reverse lookup
// uses it too, since a chunk is live if any group references it.
func DecodeEntry(buf []byte) ([]chunk.Locator, error) {
	groups, err := DecodeEntryGroups(buf)
	if err != nil {
		return nil, err
	}
	var locs []chunk.Locator
	for _, g := range groups {
		locs = append(locs, g...)
	}
	return locs, nil
}

// Put stores data under shardID and returns the dependency that becomes
// persistent once the shard is durable (data chunks + index entry + LSM
// metadata + superblock pointer updates; Fig 2). The shard is readable
// immediately; the dependency is for durability polling.
func (s *Store) Put(shardID string, data []byte) (*dep.Dependency, error) {
	start := s.obs.Now()
	d, err := s.putInner(shardID, data)
	if err != nil {
		s.met.putErrors.Inc()
	} else {
		s.met.puts.Inc()
		s.met.putLat.Observe(s.obs.Now() - start)
	}
	if s.obs.Tracing() {
		s.obs.Record("store", "put", shardID, obs.Outcome(err), s.obs.Now()-start)
	}
	return d, err
}

func (s *Store) putInner(shardID string, data []byte) (*dep.Dependency, error) {
	if err := s.requireInService(); err != nil {
		return nil, err
	}
	// Chunk the value; each piece is written cfg.Replicas times, every copy
	// on a distinct extent, so one rotted extent cannot take out a piece.
	var groups [][]chunk.Locator
	var releases []func()
	dataDep := dep.Resolved()
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	pieces := splitValue(data, s.cfg.MaxChunkPayload)
	for _, piece := range pieces {
		group := make([]chunk.Locator, 0, s.cfg.Replicas)
		var used []disk.ExtentID
		for r := 0; r < s.cfg.Replicas; r++ {
			loc, d, release, err := s.cs.PutAvoiding(chunk.TagData, shardID, piece, used)
			if err != nil {
				return nil, err
			}
			releases = append(releases, release)
			group = append(group, loc)
			used = append(used, loc.Extent)
			dataDep = dataDep.And(d)
		}
		groups = append(groups, group)
	}
	if s.cfg.Replicas > 1 {
		s.cfg.Coverage.Hit("store.put.replicated")
	}
	// The index entry is ordered after the shard data (Fig 2). The entry
	// write must happen under the store lock: reclamation's relocation path
	// (dataResolver.RelocateChunk) does a read-modify-write of the same entry
	// under s.mu, and an entry written between its read and its write would
	// be silently clobbered with the pre-relocation locators — a lost update
	// that serves stale shard data.
	s.mu.Lock()
	idxDep, err := s.idx.Put(shardID, encodeEntryGroups(groups), dataDep)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.catalogInsertLocked(shardID)
	s.met.shardCount.Set(int64(len(s.catalog)))
	s.mu.Unlock()
	s.cfg.Coverage.Hit("store.put")
	return dataDep.And(idxDep), nil
}

// splitValue cuts data into max-sized pieces; an empty value still gets one
// empty chunk so the shard exists on disk.
func splitValue(data []byte, max int) [][]byte {
	if len(data) == 0 {
		return [][]byte{{}}
	}
	var out [][]byte
	for len(data) > 0 {
		n := max
		if n > len(data) {
			n = len(data)
		}
		out = append(out, data[:n])
		data = data[n:]
	}
	return out
}

// Get returns the shard's data or ErrNotFound.
//
// Because reclamation can relocate a shard's chunks concurrently with a
// read, a locator fetched from the index may be stale by the time its chunk
// is read. The chunk frame carries its owning key, so Get validates every
// chunk it reads against shardID and retries once through the index on a
// mismatch or decode failure. Seeded bug #11 skips that validation — the
// race the paper describes as "chunk locators could become invalid after a
// race between write and flush".
func (s *Store) Get(shardID string) ([]byte, error) {
	start := s.obs.Now()
	data, err := s.getInner(shardID)
	if err != nil {
		s.met.getErrors.Inc()
	} else {
		s.met.gets.Inc()
		s.met.getLat.Observe(s.obs.Now() - start)
	}
	if s.obs.Tracing() {
		s.obs.Record("store", "get", shardID, obs.Outcome(err), s.obs.Now()-start)
	}
	return data, err
}

func (s *Store) getInner(shardID string) ([]byte, error) {
	if err := s.requireInService(); err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		entry, err := s.idx.Get(shardID)
		if err != nil {
			return nil, err
		}
		groups, err := DecodeEntryGroups(entry)
		if err != nil {
			return nil, err
		}
		data, err := s.readChunks(shardID, groups)
		if err == nil {
			s.cfg.Coverage.Hit("store.get")
			return data, nil
		}
		lastErr = err
		if s.bugs().Enabled(faults.Bug11WriteFlushRace) {
			// Seeded bug #11: no validation retry; a stale locator's data is
			// returned (or failed) as-is.
			s.cfg.Coverage.Hit("store.bug11.no_retry")
			break
		}
		s.cfg.Coverage.Hit("store.get.retry")
		vsync.Yield()
	}
	return nil, fmt.Errorf("store: shard %q: %w", shardID, lastErr)
}

// readChunks fetches and validates the shard's chunks, invalidating the
// cache entries of mismatching locators so a retry re-reads from disk. Each
// piece needs only one healthy replica: replicas are tried in entry order and
// the first one that decodes with the right owner wins, so k < R rotted (or
// quarantined) copies leave the shard readable.
func (s *Store) readChunks(shardID string, groups [][]chunk.Locator) ([]byte, error) {
	bug11 := s.bugs().Enabled(faults.Bug11WriteFlushRace)
	var data []byte
	for _, group := range groups {
		var payload []byte
		var lastErr error
		ok := false
		for ri, loc := range group {
			p, owner, err := s.cs.GetWithKey(loc)
			if err != nil {
				s.cs.InvalidateCached(loc)
				lastErr = err
				continue
			}
			if owner != shardID && !bug11 {
				s.cs.InvalidateCached(loc)
				s.cfg.Coverage.Hit("store.get.key_mismatch")
				lastErr = fmt.Errorf("store: locator %v owned by %q, want %q", loc, owner, shardID)
				continue
			}
			if ri > 0 {
				s.cfg.Coverage.Hit("store.get.replica_fallback")
			}
			payload = p
			ok = true
			break
		}
		if !ok {
			return nil, lastErr
		}
		data = append(data, payload...)
	}
	if data == nil {
		data = []byte{}
	}
	return data, nil
}

// Delete removes shardID; its chunks become garbage for reclamation.
// Deleting an absent shard is not an error (it is idempotent).
func (s *Store) Delete(shardID string) (*dep.Dependency, error) {
	start := s.obs.Now()
	d, err := s.deleteInner(shardID)
	if err == nil {
		s.met.deletes.Inc()
		s.met.deleteLat.Observe(s.obs.Now() - start)
	}
	if s.obs.Tracing() {
		s.obs.Record("store", "delete", shardID, obs.Outcome(err), s.obs.Now()-start)
	}
	return d, err
}

func (s *Store) deleteInner(shardID string) (*dep.Dependency, error) {
	if err := s.requireInService(); err != nil {
		return nil, err
	}
	// Under s.mu for the same reason as putInner: a relocation's
	// read-modify-write of this entry must not straddle the tombstone, or
	// the relocated entry resurrects the deleted shard.
	s.mu.Lock()
	d, err := s.idx.Delete(shardID)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.catalogRemoveLocked(shardID)
	s.met.shardCount.Set(int64(len(s.catalog)))
	s.mu.Unlock()
	s.cfg.Coverage.Hit("store.delete")
	return d, nil
}

func (s *Store) requireInService() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.inService {
		return ErrOutOfService
	}
	return nil
}

// --- catalog (control plane view) ---

func (s *Store) catalogInsertLocked(id string) {
	i := sort.SearchStrings(s.catalog, id)
	if i < len(s.catalog) && s.catalog[i] == id {
		return
	}
	s.catalog = append(s.catalog, "")
	copy(s.catalog[i+1:], s.catalog[i:])
	s.catalog[i] = id
}

func (s *Store) catalogRemoveLocked(id string) {
	i := sort.SearchStrings(s.catalog, id)
	if i < len(s.catalog) && s.catalog[i] == id {
		s.catalog = append(s.catalog[:i], s.catalog[i+1:]...)
	}
}

// Keys returns the live shard ids directly from the index (bypassing the
// control-plane catalog); used by conformance invariant checks.
func (s *Store) Keys() ([]string, error) {
	return s.idx.Keys()
}

// --- background maintenance (explicit so harnesses control scheduling) ---

// FlushIndex flushes the LSM memtable (the IndexFlush op of §5).
func (s *Store) FlushIndex() (*dep.Dependency, error) { return s.idx.Flush() }

// CompactIndex merges the LSM runs.
func (s *Store) CompactIndex() error { return s.idx.Compact() }

// FlushSuperblock writes a superblock record with the staged pointers.
func (s *Store) FlushSuperblock() (*dep.Dependency, error) { return s.em.Flush() }

// Reclaim garbage-collects one extent.
func (s *Store) Reclaim(ext disk.ExtentID) error {
	err := s.cs.Reclaim(ext)
	if err == nil {
		s.cfg.Coverage.Hit("store.reclaim")
	}
	return err
}

// ReclaimAuto garbage-collects the first eligible extent.
func (s *Store) ReclaimAuto() (bool, error) { return s.cs.ReclaimAuto() }

// SchedStep issues one round of issuable writebacks without syncing.
func (s *Store) SchedStep() int { return s.sched.Step() }

// SchedSync flushes the disk write cache.
func (s *Store) SchedSync() error { return s.sched.Sync() }

// Pump drives the IO scheduler to quiescence (flushing the index and
// superblock first so futures are bound).
func (s *Store) Pump() error {
	if _, err := s.idx.Flush(); err != nil {
		return err
	}
	if _, err := s.em.Flush(); err != nil {
		return err
	}
	return s.sched.Pump()
}

// WaitDurable blocks until d is persistent, enrolling in the scheduler's
// current commit group: concurrent durability waiters (puts, LSM flushes,
// scrub repairs, durable RPC mutations) share one leader-driven issue+sync
// pass instead of each pumping the scheduler — the group-commit write path.
// The leader's bind step flushes the index memtable and the superblock
// record, which binds the staged futures of every waiter enrolled from the
// same generation.
func (s *Store) WaitDurable(d *dep.Dependency) error {
	return s.WaitDurableTraced(d, nil)
}

// WaitDurableTraced is WaitDurable with an optional request span: the
// caller's barrier role — follower enroll waits vs the leader's coalesced
// sync rounds (with group size) — lands on sp as stages. A nil sp behaves
// exactly like WaitDurable; the span never changes scheduling.
func (s *Store) WaitDurableTraced(d *dep.Dependency, sp *obs.Span) error {
	return s.sched.CommitTraced(d, func() error {
		if _, err := s.idx.Flush(); err != nil {
			return err
		}
		_, err := s.em.Flush()
		return err
	}, sp)
}

// DrainCache empties the buffer cache (a harness op for reaching the
// cache-miss path; §8.3).
func (s *Store) DrainCache() { s.cs.Cache().DrainAll() }

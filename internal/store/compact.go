package store

import (
	"time"

	"shardstore/internal/compact"
	"shardstore/internal/dep"
)

// --- compaction host: the storage-node surface the leveled-compaction
// engine works against (see internal/compact). The tree owns the whole
// pinned-write + manifest-CAS discipline; the store contributes only the
// group-commit barrier, so a compaction's manifest swap becomes durable the
// same way every foreground put does. ---

type compactHost struct{ s *Store }

func (h compactHost) Levels() []compact.RunInfo { return h.s.idx.LevelInfo() }

func (h compactHost) Compact(p compact.Plan) (compact.Result, error) {
	return h.s.idx.ApplyPlan(p)
}

func (h compactHost) WaitDurable(d *dep.Dependency) error { return h.s.WaitDurable(d) }

var _ compact.Host = compactHost{}

// Compactor returns the node's leveled-compaction engine.
func (s *Store) Compactor() *compact.Engine { return s.compactor }

// CompactStep applies at most one leveled compaction, without waiting on the
// commit barrier: the manifest record's dependency on the output chunk alone
// protects a crash, exactly like an index flush. Deterministic harnesses use
// this as their compaction op so their own scheduling controls when the swap
// reaches the media; it reports whether a compaction was applied.
func (s *Store) CompactStep() (bool, error) {
	if err := s.requireInService(); err != nil {
		return false, err
	}
	did, err := s.compactor.StepNoWait()
	if err == nil && did {
		s.cfg.Coverage.Hit("store.compact_step")
	}
	return did, err
}

// CompactQuiesce runs durable compaction steps until the level shape is
// within policy (or maxSteps is reached), returning the number applied.
func (s *Store) CompactQuiesce(maxSteps int) (int, error) {
	if err := s.requireInService(); err != nil {
		return 0, err
	}
	return s.compactor.Quiesce(maxSteps)
}

// StartCompact launches the background compaction loop, one durable engine
// step per tick. It is idempotent while a loop is running. Like StartScrub,
// the loop is a plain goroutine: deterministic harnesses never start it —
// they call CompactStep explicitly, the way they schedule every other
// background task.
func (s *Store) StartCompact(interval time.Duration) {
	if interval <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.compactStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.compactStop, s.compactDone = stop, done
	//shardlint:allow syncusage wall-clock maintenance loop; shuttle-driven harnesses never start it and call CompactStep directly
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if s.requireInService() != nil {
					continue
				}
				_, _ = s.compactor.Step()
			}
		}
	}()
	s.cfg.Coverage.Hit("store.compact_loop_start")
}

// StopCompact stops the background compaction loop and waits for it to exit;
// no merge IO is in flight afterwards. Safe to call when no loop is running.
// CleanShutdown and Crash stop this loop before the scrub loop and before any
// teardown flush, so shutdown never races an in-progress manifest swap.
func (s *Store) StopCompact() {
	s.mu.Lock()
	stop, done := s.compactStop, s.compactDone
	s.compactStop, s.compactDone = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

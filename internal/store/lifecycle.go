package store

import (
	"fmt"
	"math/rand"

	"shardstore/internal/chunk"
	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/vsync"
)

// CleanShutdown quiesces the node for a non-crashing shutdown: the memtable
// is flushed (bug #3 site inside lsm), the superblock is written, and the IO
// scheduler pumps every writeback to durability. After a successful
// CleanShutdown every previously returned dependency reports persistent —
// the §5 forward-progress property.
func (s *Store) CleanShutdown() error {
	// Stop the compaction loop before the scrub loop and before any teardown
	// flush: a manifest swap mid-shutdown would race the final index flush.
	s.StopCompact()
	s.StopScrub()
	if _, err := s.idx.Shutdown(); err != nil {
		return fmt.Errorf("store: shutdown index flush: %w", err)
	}
	if _, err := s.em.Flush(); err != nil {
		return fmt.Errorf("store: shutdown superblock flush: %w", err)
	}
	if err := s.sched.Pump(); err != nil {
		return fmt.Errorf("store: shutdown pump: %w", err)
	}
	// The index flush itself staged new superblock pointers; flush and pump
	// once more so they are durable too.
	if _, err := s.em.Flush(); err != nil {
		return err
	}
	if err := s.sched.Pump(); err != nil {
		return fmt.Errorf("store: shutdown final pump: %w", err)
	}
	s.mu.Lock()
	s.inService = false
	s.mu.Unlock()
	s.cfg.Coverage.Hit("store.clean_shutdown")
	return nil
}

// Crash simulates a fail-stop crash: pending writebacks are dropped and the
// disk write cache is torn at page granularity using rng. The store object
// is dead afterwards; call Open on the same disk to recover. The returned
// page lists describe what survived.
func (s *Store) Crash(rng *rand.Rand) (kept, lost []disk.PageAddr) {
	s.StopCompact()
	s.StopScrub()
	s.mu.Lock()
	s.inService = false
	s.mu.Unlock()
	s.cfg.Coverage.Hit("store.crash")
	return s.sched.Crash(rng)
}

// CrashKeep is the deterministic crash used by the exhaustive block-level
// crash-state enumerator (§5).
func (s *Store) CrashKeep(keep func(disk.PageAddr) bool) (kept, lost []disk.PageAddr) {
	s.StopCompact()
	s.StopScrub()
	s.mu.Lock()
	s.inService = false
	s.mu.Unlock()
	return s.sched.CrashKeep(keep)
}

// --- control plane (§2.1 RPC interface: "control-plane operations for
// migration and repair") ---

// List returns the shard ids known to the control plane. The correct
// implementation snapshots the catalog under the lock; seeded bug #13 reads
// the length and the elements in separate steps, racing with concurrent
// removals.
func (s *Store) List() ([]string, error) {
	if err := s.requireInService(); err != nil {
		return nil, err
	}
	if s.bugs().Enabled(faults.Bug13ListRemoveRace) {
		s.mu.Lock()
		n := len(s.catalog)
		s.mu.Unlock()
		vsync.Yield()
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			s.mu.Lock()
			if i < len(s.catalog) {
				out = append(out, s.catalog[i])
			}
			s.mu.Unlock()
			vsync.Yield()
		}
		s.cfg.Coverage.Hit("store.bug13.racy_list")
		return out, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.catalog...), nil
}

// BulkCreate stores a batch of shards (a control-plane repair/migration
// operation). values[i] is stored under ids[i].
func (s *Store) BulkCreate(ids []string, values [][]byte) (*dep.Dependency, error) {
	if len(ids) != len(values) {
		return nil, fmt.Errorf("store: bulk create: %d ids, %d values", len(ids), len(values))
	}
	d := dep.Resolved()
	for i, id := range ids {
		pd, err := s.Put(id, values[i])
		if err != nil {
			return nil, err
		}
		d = d.And(pd)
		vsync.Yield()
	}
	s.cfg.Coverage.Hit("store.bulk_create")
	return d, nil
}

// BulkRemove deletes a batch of shards. The correct implementation looks up
// and removes each shard atomically; seeded bug #16 captures the catalog
// position in one step and deletes whatever occupies that position in a
// later step — racing with a concurrent bulk create, it can remove a shard
// the caller never named.
func (s *Store) BulkRemove(ids []string) (*dep.Dependency, error) {
	if err := s.requireInService(); err != nil {
		return nil, err
	}
	d := dep.Resolved()
	for _, id := range ids {
		if s.bugs().Enabled(faults.Bug16BulkCreateRemoveRace) {
			s.mu.Lock()
			pos := -1
			for i, c := range s.catalog {
				if c == id {
					pos = i
					break
				}
			}
			s.mu.Unlock()
			if pos < 0 {
				continue
			}
			vsync.Yield() // a concurrent BulkCreate can shift the catalog here
			s.mu.Lock()
			if pos < len(s.catalog) {
				victim := s.catalog[pos]
				s.catalog = append(s.catalog[:pos], s.catalog[pos+1:]...)
				s.mu.Unlock()
				dd, err := s.idx.Delete(victim)
				if err != nil {
					return nil, err
				}
				d = d.And(dd)
				s.cfg.Coverage.Hit("store.bug16.positional_delete")
			} else {
				s.mu.Unlock()
			}
			continue
		}
		dd, err := s.Delete(id)
		if err != nil {
			return nil, err
		}
		d = d.And(dd)
		vsync.Yield()
	}
	s.cfg.Coverage.Hit("store.bulk_remove")
	return d, nil
}

// RemoveFromService takes the disk out of service for maintenance (a
// control-plane operation). The correct implementation quiesces the node
// first, exactly like a clean shutdown; seeded bug #4 skips that flush, so
// buffered index entries are silently dropped and the shards they describe
// are lost when the disk later returns to service.
func (s *Store) RemoveFromService() error {
	if err := s.requireInService(); err != nil {
		return err
	}
	if s.bugs().Enabled(faults.Bug4DiskReturnLosesShard) {
		s.mu.Lock()
		s.inService = false
		s.mu.Unlock()
		s.cfg.Coverage.Hit("store.bug4.skip_flush")
		return nil
	}
	return s.CleanShutdown()
}

// ReturnToService brings a removed disk back by re-opening the store state
// from disk, exactly like crash recovery but without a crash.
func (s *Store) ReturnToService() (*Store, error) {
	s.mu.Lock()
	if s.inService {
		s.mu.Unlock()
		return s, nil
	}
	s.mu.Unlock()
	ns, err := Open(s.d, s.cfg)
	if err != nil {
		return nil, fmt.Errorf("store: return to service: %w", err)
	}
	s.cfg.Coverage.Hit("store.return_to_service")
	return ns, nil
}

func (s *Store) bugs() *faults.Set { return s.cfg.Bugs }

// --- reclamation resolver for shard data chunks (§2.1: "reclamation
// performs a reverse lookup in the index") ---

type dataResolver struct{ s *Store }

// ChunkLive reports whether the index still references loc for key.
func (r dataResolver) ChunkLive(key string, loc chunk.Locator) bool {
	entry, err := r.s.idx.Get(key)
	if err != nil {
		return false
	}
	locs, err := DecodeEntry(entry)
	if err != nil {
		return false
	}
	for _, l := range locs {
		if l == loc {
			return true
		}
	}
	return false
}

// RelocateChunk atomically swaps old for newLoc in key's index entry. The
// store lock makes the read-modify-write atomic with respect to concurrent
// puts of the same shard.
func (r dataResolver) RelocateChunk(key string, old, newLoc chunk.Locator, newDep *dep.Dependency) (bool, *dep.Dependency, error) {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, err := s.idx.Get(key)
	if err != nil {
		return false, nil, nil // entry gone; evacuated copy becomes garbage
	}
	groups, err := DecodeEntryGroups(entry)
	if err != nil {
		return false, nil, err
	}
	found := false
	for gi := range groups {
		for ri := range groups[gi] {
			if groups[gi][ri] == old {
				groups[gi][ri] = newLoc
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		return false, nil, nil
	}
	// The updated index entry must persist only after the evacuated chunk.
	d, err := s.idx.Put(key, encodeEntryGroups(groups), newDep)
	if err != nil {
		return false, nil, err
	}
	s.cfg.Coverage.Hit("store.chunk_relocated")
	return true, d, nil
}

// SyncReferences implements chunk.Resolver. Data chunks become garbage when
// a delete or an overwrite supersedes them; that superseding index state may
// still be buffered in the memtable or sitting in unsynced runs. Flushing
// the memtable returns a dependency that — through the chained metadata
// records — covers the entire current index state, so an extent reset that
// waits on it can never destroy a chunk that a crash-recovered index would
// still reference.
func (r dataResolver) SyncReferences() (*dep.Dependency, error) {
	return r.s.idx.Flush()
}

var _ chunk.Resolver = dataResolver{}

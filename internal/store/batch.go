package store

import "shardstore/internal/vsync"

// Batch entry points for the v2 RPC multi-op frames. Unlike BulkCreate/
// BulkRemove (control-plane, fail-fast, one combined dependency), these run
// every item and report per-item outcomes, and the mutating forms share a
// single scheduler round at the end: each item only stages its writebacks,
// and one Step issues everything currently issuable for the whole batch —
// amortizing the IO kick across items instead of paying it per op.

// PutBatch stores values[i] under ids[i] and returns one error slot per
// item (nil on success). The slices must be the same length; extra values
// are ignored and missing ones surface as per-item errors downstream, so
// callers should validate lengths first (the RPC server does).
func (s *Store) PutBatch(ids []string, values [][]byte) []error {
	errs := make([]error, len(ids))
	for i, id := range ids {
		if i >= len(values) {
			errs[i] = ErrNotFound // defensive: length-checked by callers
			continue
		}
		_, errs[i] = s.Put(id, values[i])
		vsync.Yield()
	}
	s.sched.Step() // one shared IO kick for the whole batch
	s.cfg.Coverage.Hit("store.put_batch")
	return errs
}

// GetBatch reads every id, returning parallel value and error slices.
func (s *Store) GetBatch(ids []string) ([][]byte, []error) {
	vals := make([][]byte, len(ids))
	errs := make([]error, len(ids))
	for i, id := range ids {
		vals[i], errs[i] = s.Get(id)
		vsync.Yield()
	}
	s.cfg.Coverage.Hit("store.get_batch")
	return vals, errs
}

// DeleteBatch removes every id with per-item outcomes, sharing one
// scheduler round like PutBatch.
func (s *Store) DeleteBatch(ids []string) []error {
	errs := make([]error, len(ids))
	for i, id := range ids {
		_, errs[i] = s.Delete(id)
		vsync.Yield()
	}
	s.sched.Step()
	s.cfg.Coverage.Hit("store.delete_batch")
	return errs
}

package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"shardstore/internal/compact"
	"shardstore/internal/obs"
)

func compactTestConfig(seed int64) Config {
	cfg := testConfig(seed)
	cfg.MaxRuns = 16
	cfg.Compact = compact.Policy{L0Trigger: 2, BaseBytes: 256, Growth: 2, MaxLevels: 4}
	cfg.Obs = obs.New(nil)
	return cfg
}

// seedCompactionWork flushes several L0 runs so the engine has a plan ready.
func seedCompactionWork(t *testing.T, s *Store, keys int) {
	t.Helper()
	for i := 0; i < keys; i++ {
		if _, err := s.Put(fmt.Sprintf("c%02d", i), bytes.Repeat([]byte{byte(i + 1)}, 60)); err != nil {
			t.Fatalf("seed put: %v", err)
		}
		if _, err := s.FlushIndex(); err != nil {
			t.Fatalf("seed flush: %v", err)
		}
	}
	if err := s.Pump(); err != nil {
		t.Fatalf("seed pump: %v", err)
	}
}

func TestCompactStepAppliesUnderPressure(t *testing.T) {
	cfg := compactTestConfig(40)
	s, d := mustOpen(t, cfg)
	seedCompactionWork(t, s, 4)
	did, err := s.CompactStep()
	if err != nil || !did {
		t.Fatalf("compact step: did=%v err=%v", did, err)
	}
	if n, err := s.CompactQuiesce(16); err != nil {
		t.Fatalf("quiesce: applied=%d err=%v", n, err)
	}
	if err := s.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("c%02d", i)
		got, err := s2.Get(k)
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, 60)) {
			t.Fatalf("%s after compaction + reboot: %v", k, err)
		}
	}
}

// TestCompactLoopStartStopIdempotent: the background loop starts once, a
// second Start is a no-op, and Stop (twice) terminates and is safe when no
// loop runs.
func TestCompactLoopStartStopIdempotent(t *testing.T) {
	cfg := compactTestConfig(41)
	s, _ := mustOpen(t, cfg)
	s.StartCompact(0) // disabled: no loop
	s.StopCompact()   // safe with no loop
	s.StartCompact(time.Millisecond)
	s.StartCompact(time.Millisecond) // idempotent while running
	s.StopCompact()
	s.StopCompact() // safe after stop
	if hits := cfg.Coverage.Count("store.compact_loop_start"); hits != 1 {
		t.Fatalf("loop started %d times, want 1", hits)
	}
}

// TestCrashDuringCompactionLoop: a crash while the background compaction
// loop is live must stop the loop before tearing down (StopCompact runs
// ahead of StopScrub and the teardown flush), and recovery must serve every
// key that was durable before the crash — whatever compaction state the
// loop reached.
func TestCrashDuringCompactionLoop(t *testing.T) {
	cfg := compactTestConfig(42)
	s, d := mustOpen(t, cfg)
	seedCompactionWork(t, s, 6)

	s.StartCompact(time.Millisecond)
	// Give the ticker a chance to run real steps; the crash below must be
	// correct whether or not any fired.
	for i := 0; i < 200; i++ {
		if cfg.Obs.Snapshot().Counters["compact.steps"] > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	s.Crash(rand.New(rand.NewSource(42)))
	// Crash must have stopped the loop: another stop is a no-op, and a
	// restart after crash is rejected by the loop body (out of service).
	s.StopCompact()

	s2, err := Open(d, cfg)
	if err != nil {
		t.Fatalf("recovery after crash during compaction loop: %v", err)
	}
	for i := 0; i < 6; i++ {
		k := fmt.Sprintf("c%02d", i)
		got, err := s2.Get(k)
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, 60)) {
			t.Fatalf("%s lost across crash during compaction loop: %v", k, err)
		}
	}
}

// TestCleanShutdownStopsCompactionLoop: CleanShutdown with a live loop
// terminates it first and the final flush lands; reopening serves all keys.
func TestCleanShutdownStopsCompactionLoop(t *testing.T) {
	cfg := compactTestConfig(43)
	s, d := mustOpen(t, cfg)
	seedCompactionWork(t, s, 4)
	s.StartCompact(time.Millisecond)
	if _, err := s.Put("late", []byte("unflushed at shutdown")); err != nil {
		t.Fatal(err)
	}
	if err := s.CleanShutdown(); err != nil {
		t.Fatalf("clean shutdown with live compaction loop: %v", err)
	}
	s2, err := Open(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Get("late"); err != nil || !bytes.Equal(got, []byte("unflushed at shutdown")) {
		t.Fatalf("late write lost in clean shutdown: %v", err)
	}
}

package store

import (
	"strings"
	"testing"

	"shardstore/internal/faults"
	"shardstore/internal/obs"
)

// TestWaitDurableTracedReplay: under the logical clock, an identical durable
// put renders a byte-identical trace across fresh runs — the replay property
// the determinism gate depends on — and carries the group-commit leader's
// attribution through the store/scheduler seam.
func TestWaitDurableTracedReplay(t *testing.T) {
	run := func() string {
		o := obs.New(nil).WithSpans(8, 0)
		st, _, err := New(Config{Seed: 1, Bugs: faults.NewSet(), Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		sp := o.Tracer().Start(7, "put", "shard-1")
		d, err := st.Put("shard-1", []byte("durable"))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.WaitDurableTraced(d, sp); err != nil {
			t.Fatal(err)
		}
		sp.Finish()
		traces, trunc := o.Tracer().Completed()
		return obs.FormatTraceDump(traces, trunc, obs.UnitTicks)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("traced durable put replay diverged:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, obs.StageDiskSync) || !strings.Contains(a, "leader group=1") {
		t.Fatalf("trace missing leader sync attribution:\n%s", a)
	}
}

// TestWaitDurableTracedNilSpan: the traced entry point with a nil span is
// exactly WaitDurable — the untraced path records nothing and reads no clock
// through span code.
func TestWaitDurableTracedNilSpan(t *testing.T) {
	o := obs.New(nil).WithSpans(8, 0)
	st, _, err := New(Config{Seed: 1, Bugs: faults.NewSet(), Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	d, err := st.Put("shard-1", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitDurableTraced(d, nil); err != nil {
		t.Fatal(err)
	}
	if traces, _ := o.Tracer().Completed(); len(traces) != 0 {
		t.Fatalf("nil-span durable wait produced traces: %+v", traces)
	}
}

package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"shardstore/internal/chunk"
	"shardstore/internal/faults"
)

// --- additional lifecycle, control-plane, and property tests ---

func TestEntryEncodingRoundTrip(t *testing.T) {
	locs := []chunk.Locator{
		{Extent: 1, Offset: 0, Length: 100},
		{Extent: 30, Offset: 1920, Length: 7},
	}
	buf := encodeEntry(locs)
	got, err := DecodeEntry(buf)
	if err != nil || len(got) != 2 || got[0] != locs[0] || got[1] != locs[1] {
		t.Fatalf("round trip: %v %v", got, err)
	}
}

func TestEntryDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeEntry(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryDecodeRejectsTrailingBytes(t *testing.T) {
	buf := append(encodeEntry([]chunk.Locator{{Extent: 1}}), 0xFF)
	if _, err := DecodeEntry(buf); !errors.Is(err, ErrCorruptEntry) {
		t.Fatalf("trailing bytes: %v", err)
	}
}

func TestDeleteAbsentShardIdempotent(t *testing.T) {
	s, _ := mustOpen(t, testConfig(20))
	if _, err := s.Delete("never-existed"); err != nil {
		t.Fatalf("delete absent: %v", err)
	}
	if _, err := s.Delete("never-existed"); err != nil {
		t.Fatalf("delete twice: %v", err)
	}
}

func TestEmptyValueRoundTrip(t *testing.T) {
	s, _ := mustOpen(t, testConfig(21))
	if _, err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("empty")
	if err != nil || v == nil || len(v) != 0 {
		t.Fatalf("empty value: %v %v", v, err)
	}
}

func TestOutOfServiceRejectsEverything(t *testing.T) {
	s, _ := mustOpen(t, testConfig(22))
	if err := s.RemoveFromService(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("k", []byte{1}); !errors.Is(err, ErrOutOfService) {
		t.Fatalf("put: %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrOutOfService) {
		t.Fatalf("get: %v", err)
	}
	if _, err := s.Delete("k"); !errors.Is(err, ErrOutOfService) {
		t.Fatalf("delete: %v", err)
	}
	if _, err := s.List(); !errors.Is(err, ErrOutOfService) {
		t.Fatalf("list: %v", err)
	}
	if _, err := s.BulkRemove([]string{"k"}); !errors.Is(err, ErrOutOfService) {
		t.Fatalf("bulk remove: %v", err)
	}
	// RemoveFromService twice: second is rejected.
	if err := s.RemoveFromService(); !errors.Is(err, ErrOutOfService) {
		t.Fatalf("second remove: %v", err)
	}
}

func TestReturnToServiceIdempotentWhileInService(t *testing.T) {
	s, _ := mustOpen(t, testConfig(23))
	ns, err := s.ReturnToService()
	if err != nil || ns != s {
		t.Fatalf("return while in service: %v %v", ns == s, err)
	}
}

func TestCatalogSurvivesReboot(t *testing.T) {
	cfg := testConfig(24)
	s, d := mustOpen(t, cfg)
	for _, id := range []string{"z", "a", "m"} {
		if _, err := s.Put(id, []byte(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "m" || ids[2] != "z" {
		t.Fatalf("catalog after reboot: %v", ids)
	}
}

func TestGetRetriesThroughIndexOnStaleLocator(t *testing.T) {
	// Delete + reclaim + rewrite recycles locators; a fresh Get must always
	// resolve through the current index state.
	cfg := testConfig(25)
	s, _ := mustOpen(t, cfg)
	if _, err := s.Put("victim", bytes.Repeat([]byte{1}, 60)); err != nil {
		t.Fatal(err)
	}
	if err := s.Pump(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("victim"); err != nil {
		t.Fatal(err)
	}
	if err := s.Pump(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Put(fmt.Sprintf("fill%02d", i), bytes.Repeat([]byte{byte(i)}, 150)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Pump(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if ran, err := s.ReclaimAuto(); err != nil || !ran {
			break
		}
		_ = s.Pump()
	}
	if _, err := s.Get("victim"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted shard after churn: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Get(fmt.Sprintf("fill%02d", i)); err != nil {
			t.Fatalf("fill%02d lost: %v", i, err)
		}
	}
}

func TestBug13RacyListIsSequentiallyInvisible(t *testing.T) {
	// The racy listing is only wrong under concurrency; sequentially it must
	// behave (which is why the paper needed model checking to catch it).
	cfg := testConfig(26)
	cfg.Bugs.Enable(faults.Bug13ListRemoveRace)
	s, _ := mustOpen(t, cfg)
	for _, id := range []string{"a", "b", "c"} {
		_, _ = s.Put(id, []byte(id))
	}
	ids, err := s.List()
	if err != nil || len(ids) != 3 {
		t.Fatalf("sequential racy list: %v %v", ids, err)
	}
}

func TestBug16PositionalRemoveSequentiallyCorrect(t *testing.T) {
	cfg := testConfig(27)
	cfg.Bugs.Enable(faults.Bug16BulkCreateRemoveRace)
	s, _ := mustOpen(t, cfg)
	_, _ = s.Put("a", []byte{1})
	_, _ = s.Put("b", []byte{2})
	if _, err := s.BulkRemove([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("a not removed")
	}
	if _, err := s.Get("b"); err != nil {
		t.Fatal("b removed by mistake (sequentially!)")
	}
}

func TestSplitValueProperty(t *testing.T) {
	f := func(data []byte, maxRaw uint8) bool {
		max := int(maxRaw%64) + 1
		pieces := splitValue(data, max)
		var joined []byte
		for _, p := range pieces {
			if len(p) > max {
				return false
			}
			joined = append(joined, p...)
		}
		if len(data) == 0 {
			return len(pieces) == 1 && len(pieces[0]) == 0
		}
		return bytes.Equal(joined, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValuesSpanningManyChunksSurviveCrashCycle(t *testing.T) {
	cfg := testConfig(28)
	s, d := mustOpen(t, cfg)
	val := make([]byte, 1500) // many chunks at default max payload
	for i := range val {
		val[i] = byte(i * 7)
	}
	dp, err := s.Put("wide", val)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Pump(); err != nil {
		t.Fatal(err)
	}
	if !dp.IsPersistent() {
		t.Fatal("not persistent")
	}
	s.Crash(rand.New(rand.NewSource(3)))
	s2, err := Open(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("wide")
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("wide value after crash: len=%d err=%v", len(got), err)
	}
}

func TestReseedMakesStoresIdentical(t *testing.T) {
	run := func() []string {
		cfg := testConfig(29)
		s, _ := mustOpen(t, cfg)
		s.Reseed(555)
		var out []string
		for i := 0; i < 5; i++ {
			_, _ = s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 100))
		}
		keys, _ := s.Keys()
		out = append(out, keys...)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("diverged")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("diverged")
		}
	}
}

func TestManyCrashRecoverCyclesWithReclaim(t *testing.T) {
	cfg := testConfig(30)
	s, d := mustOpen(t, cfg)
	rng := rand.New(rand.NewSource(77))
	durable := map[string][]byte{}
	for round := 0; round < 12; round++ {
		k := fmt.Sprintf("r%02d", round)
		v := bytes.Repeat([]byte{byte(round + 1)}, 60+round*13)
		if _, err := s.Put(k, v); err != nil {
			t.Fatalf("round %d put: %v", round, err)
		}
		if round%3 == 0 {
			if err := s.Pump(); err != nil {
				t.Fatalf("round %d pump: %v", round, err)
			}
			durable[k] = v
			_, _ = s.ReclaimAuto()
		}
		if round%4 == 1 {
			s.Crash(rng)
			ns, err := Open(d, cfg)
			if err != nil {
				t.Fatalf("round %d recover: %v", round, err)
			}
			s = ns
			for dk, dv := range durable {
				got, err := s.Get(dk)
				if err != nil || !bytes.Equal(got, dv) {
					t.Fatalf("round %d: durable %s lost: %v", round, dk, err)
				}
			}
		}
	}
}

package store

import (
	"errors"

	"shardstore/internal/obs"
)

// Scan implements OrderedKV: the live shards in [start, end) in ascending
// key order, newest value per shard, bounded by limit. The index scan is
// snapshot-consistent (pinned by the LSM manifest generation); each entry's
// chunks are then read and owner-validated exactly like Get, with the same
// stale-locator retry, so a relocation racing the scan cannot surface
// foreign bytes.
func (s *Store) Scan(start, end string, limit int) ([]ScanEntry, bool, error) {
	opStart := s.obs.Now()
	out, more, err := s.scanInner(start, end, limit)
	if err != nil {
		s.met.scanErrors.Inc()
	} else {
		s.met.scans.Inc()
		s.met.scanEntries.Add(uint64(len(out)))
		s.met.scanLat.Observe(s.obs.Now() - opStart)
	}
	if s.obs.Tracing() {
		s.obs.Record("store", "scan", start, obs.Outcome(err), s.obs.Now()-opStart)
	}
	return out, more, err
}

func (s *Store) scanInner(start, end string, limit int) ([]ScanEntry, bool, error) {
	if err := s.requireInService(); err != nil {
		return nil, false, err
	}
	idxEntries, more, err := s.idx.Scan(start, end, limit)
	if err != nil {
		return nil, false, err
	}
	out := make([]ScanEntry, 0, len(idxEntries))
	for _, e := range idxEntries {
		groups, derr := DecodeEntryGroups(e.Value)
		var data []byte
		if derr == nil {
			data, derr = s.readChunks(e.Key, groups)
		}
		if derr != nil {
			// The snapshot's locators can be stale by read time (reclamation
			// relocated the chunks): retry through the point-read path, which
			// refreshes locators via the index. A shard deleted since the
			// snapshot simply drops out of the page.
			s.cfg.Coverage.Hit("store.scan.reread")
			data, derr = s.getInner(e.Key)
			if errors.Is(derr, ErrNotFound) {
				continue
			}
			if derr != nil {
				return nil, false, derr
			}
		}
		out = append(out, ScanEntry{Key: e.Key, Value: data})
	}
	s.cfg.Coverage.Hit("store.scan")
	return out, more, nil
}

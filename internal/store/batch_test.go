package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"shardstore/internal/coverage"
	"shardstore/internal/faults"
)

func newBatchStore(t *testing.T) *Store {
	t.Helper()
	st, _, err := New(Config{Seed: 7, Bugs: faults.NewSet(), Coverage: coverage.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBatchRoundTrip(t *testing.T) {
	st := newBatchStore(t)
	ids := make([]string, 10)
	vals := make([][]byte, 10)
	for i := range ids {
		ids[i] = fmt.Sprintf("b-%02d", i)
		vals[i] = bytes.Repeat([]byte{byte(i + 1)}, 4+i)
	}
	for i, err := range st.PutBatch(ids, vals) {
		if err != nil {
			t.Fatalf("put item %d: %v", i, err)
		}
	}
	got, errs := st.GetBatch(ids)
	for i := range ids {
		if errs[i] != nil || !bytes.Equal(got[i], vals[i]) {
			t.Fatalf("get item %d: %q %v", i, got[i], errs[i])
		}
	}
	for i, err := range st.DeleteBatch(ids[:5]) {
		if err != nil {
			t.Fatalf("delete item %d: %v", i, err)
		}
	}
	got, errs = st.GetBatch(ids)
	for i := range ids {
		if i < 5 {
			if !errors.Is(errs[i], ErrNotFound) {
				t.Fatalf("deleted item %d: %q %v", i, got[i], errs[i])
			}
		} else if errs[i] != nil {
			t.Fatalf("surviving item %d: %v", i, errs[i])
		}
	}
}

// TestBatchPerItemErrors: one bad item does not fail the batch — every other
// slot still runs and reports its own outcome.
func TestBatchPerItemErrors(t *testing.T) {
	st := newBatchStore(t)
	if _, err := st.Put("exists", []byte("v")); err != nil {
		t.Fatal(err)
	}
	_, errs := st.GetBatch([]string{"missing-a", "exists", "missing-b"})
	if !errors.Is(errs[0], ErrNotFound) || !errors.Is(errs[2], ErrNotFound) {
		t.Fatalf("missing slots: %v", errs)
	}
	if errs[1] != nil {
		t.Fatalf("existing slot: %v", errs[1])
	}
	// Delete is idempotent at the store layer: a missing id is a nil outcome,
	// same as the single-op Delete.
	derrs := st.DeleteBatch([]string{"missing-a", "exists"})
	if derrs[0] != nil || derrs[1] != nil {
		t.Fatalf("delete outcomes: %v", derrs)
	}
	if _, err := st.Get("exists"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("exists not deleted: %v", err)
	}
}

// TestBatchCoverageAndInterfaces: the batch entry points are coverage-visible
// and Store satisfies both narrow interfaces the RPC server consumes.
func TestBatchCoverageAndInterfaces(t *testing.T) {
	st := newBatchStore(t)
	var _ KV = st
	var _ BatchKV = st
	st.PutBatch([]string{"c"}, [][]byte{{1}})
	st.GetBatch([]string{"c"})
	st.DeleteBatch([]string{"c"})
	hits := st.cfg.Coverage.Snapshot()
	for _, point := range []string{"store.put_batch", "store.get_batch", "store.delete_batch"} {
		if hits[point] == 0 {
			t.Fatalf("coverage point %q never hit: %v", point, hits)
		}
	}
}

package store

import (
	"time"

	"shardstore/internal/chunk"
	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/scrub"
)

// --- scrub host: the storage-node surface the integrity scrubber works
// against (see internal/scrub). Repair reuses the reclamation machinery:
// PutAvoiding for the pinned write, the data resolver's CAS for the entry
// swap — so scrub and GC share one ordering discipline and a repair can
// never resurrect a chunk that reclamation already moved. ---

type scrubHost struct{ s *Store }

func (h scrubHost) LiveKeys() ([]string, error) { return h.s.idx.Keys() }

func (h scrubHost) ReadEntry(key string) ([][]chunk.Locator, error) {
	entry, err := h.s.idx.Get(key)
	if err != nil {
		return nil, err
	}
	return DecodeEntryGroups(entry)
}

// ReadFrame reads the raw frame bytes from the extent manager, bypassing the
// chunk buffer cache: the scrubber verifies what the media holds, not what a
// cache remembers from before the rot.
func (h scrubHost) ReadFrame(loc chunk.Locator) ([]byte, error) {
	buf := make([]byte, loc.Length)
	if err := h.s.em.Read(loc.Extent, loc.Offset, loc.Length, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (h scrubHost) WriteRepair(key string, payload []byte, avoid []disk.ExtentID) (chunk.Locator, *dep.Dependency, func(), error) {
	return h.s.cs.PutAvoiding(chunk.TagData, key, payload, avoid)
}

func (h scrubHost) SwapReplica(key string, old, newLoc chunk.Locator, d *dep.Dependency) (bool, error) {
	swapped, _, err := dataResolver{s: h.s}.RelocateChunk(key, old, newLoc, d)
	return swapped, err
}

func (h scrubHost) Quarantine(loc chunk.Locator) { h.s.cs.Quarantine(loc) }

var _ scrub.Host = scrubHost{}

// Scrubber returns the node's integrity scrubber.
func (s *Store) Scrubber() *scrub.Scrubber { return s.scrubber }

// ScrubRound runs one full scrub pass over every live shard: verify all
// replicas, repair rotted copies from survivors, record irreparable losses.
func (s *Store) ScrubRound() (scrub.Result, error) {
	if err := s.requireInService(); err != nil {
		return scrub.Result{}, err
	}
	res, err := s.scrubber.Round()
	if err == nil {
		s.cfg.Coverage.Hit("store.scrub_round")
	}
	if err == nil && res.Repaired > 0 {
		// Repairs rewrote chunks and swapped index locators; make them
		// durable through the shared commit barrier so a crash right after
		// the round cannot resurrect the rotted copies. The index flush
		// dependency covers the whole current index state (see
		// dataResolver.SyncReferences), including the repair swaps.
		fd, ferr := s.idx.Flush()
		if ferr != nil {
			return res, ferr
		}
		if werr := s.WaitDurable(fd); werr != nil {
			return res, werr
		}
		s.cfg.Coverage.Hit("store.scrub_repair_committed")
	}
	return res, err
}

// ScrubStep runs one rate-limited scrub increment (at most the configured
// number of shards), resuming from the previous step's cursor.
func (s *Store) ScrubStep() (scrub.Result, bool, error) {
	if err := s.requireInService(); err != nil {
		return scrub.Result{}, false, err
	}
	return s.scrubber.Step()
}

// StartScrub launches the background scrub loop, one rate-limited ScrubStep
// per tick. It is idempotent while a loop is running. The loop is a plain
// goroutine (like cmd/shardstore's maintenance ticker), not a vsync-managed
// one: deterministic harnesses never start it — they call ScrubRound
// explicitly, the way they schedule every other background task.
func (s *Store) StartScrub(interval time.Duration) {
	if interval <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scrubStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.scrubStop, s.scrubDone = stop, done
	//shardlint:allow syncusage wall-clock maintenance loop; shuttle-driven harnesses never start it and call ScrubRound directly
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				_, _, _ = s.ScrubStep()
			}
		}
	}()
	s.cfg.Coverage.Hit("store.scrub_loop_start")
}

// StopScrub stops the background scrub loop and waits for it to exit; no
// repair IO is in flight afterwards. Safe to call when no loop is running.
// CleanShutdown and Crash stop the loop first, so shutdown flushes and crash
// teardown never race an in-progress repair.
func (s *Store) StopScrub() {
	s.mu.Lock()
	stop, done := s.scrubStop, s.scrubDone
	s.scrubStop, s.scrubDone = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

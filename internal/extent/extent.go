// Package extent manages the disk's extents: append-only write pointers,
// extent ownership and allocation, extent reset, and the superblock that
// persists all of this (§2.1–2.2 of the paper).
//
// ShardStore tracks an in-memory soft write pointer per extent, translates
// appends into disk writes, and persists the pointers in a superblock
// (extent 0) flushed on a cadence. Ownership (which subsystem an extent
// belongs to) is persisted the same way. Appends, resets, and allocations
// all participate in the soft-updates dependency graph:
//
//   - every append's returned dependency covers both the data write and the
//     superblock record carrying the new pointer (bug #8 site);
//   - appends to a freshly allocated extent wait for the ownership record
//     (bug #6 site);
//   - appends to a freshly reset extent wait for the reset to be durable,
//     which in turn waits for the caller-supplied evacuation dependencies
//     (bug #7 site) — this is what makes reclamation crash consistent.
package extent

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"shardstore/internal/coverage"
	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/vsync"
)

// Owner identifies the subsystem an extent belongs to.
type Owner uint8

const (
	// OwnerFree marks an unallocated extent. Its contents are ignored by
	// recovery and it may be handed out by Allocate.
	OwnerFree Owner = iota
	// OwnerSuperblock is extent 0, reserved for superblock records.
	OwnerSuperblock
	// OwnerMeta is the reserved LSM-tree metadata extent.
	OwnerMeta
	// OwnerData holds chunks (shard data and LSM run chunks alike).
	OwnerData
)

func (o Owner) String() string {
	switch o {
	case OwnerFree:
		return "free"
	case OwnerSuperblock:
		return "superblock"
	case OwnerMeta:
		return "meta"
	case OwnerData:
		return "data"
	default:
		return fmt.Sprintf("Owner(%d)", uint8(o))
	}
}

// Well-known extents.
const (
	SuperblockExtent disk.ExtentID = 0
	MetaExtent       disk.ExtentID = 1
)

var (
	// ErrExtentFull is returned when an append does not fit.
	ErrExtentFull = errors.New("extent: append exceeds extent capacity")
	// ErrNoFreeExtent is returned when allocation finds no free extent.
	ErrNoFreeExtent = errors.New("extent: no free extents")
	// ErrNotOwned is returned for IO against an extent the caller does not own.
	ErrNotOwned = errors.New("extent: extent not owned by caller")
	// ErrBeyondPointer is returned for reads past the soft write pointer.
	ErrBeyondPointer = errors.New("extent: read beyond write pointer")
)

// The superblock holds two independent record streams in one extent: pointer
// records (the soft write pointer snapshot) and ownership records (the
// extent ownership snapshot). They are flushed separately — which is exactly
// why an append to a freshly allocated extent must carry a dependency on the
// ownership record (the bug #6 gate): the pointer record covering the append
// can be durable while the ownership record is not.
const (
	ptrRecordMagic uint32 = 0x53425031 // "SBP1"
	ownRecordMagic uint32 = 0x53424F31 // "SBO1"
	headerSize            = 4 + 8 + 4  // magic, gen, count
	entrySize             = 4 + 4 + 1  // extent, pointer/owner, pad
	trailerSize           = 4          // crc32
)

// Manager owns the extent table for one disk.
type Manager struct {
	mu    vsync.Mutex
	sched *dep.Scheduler
	cfg   disk.Config
	cov   *coverage.Registry
	bugs  *faults.Set

	soft  []int   // in-memory soft write pointer per extent
	owner []Owner // in-memory ownership per extent

	// gates holds, per extent, dependencies that must persist before new
	// appends to the extent are issued: the ownership record for a fresh
	// allocation, or the reset record for a reset extent.
	gates map[disk.ExtentID]*dep.Dependency
	// resetGates tracks the reset-record component of gates separately:
	// evacuations must avoid extents whose reset is not yet durable, or the
	// reset's wait-chain could cycle through its own gate (reset A waits on
	// data evacuated onto reset B, whose reset waits on data evacuated onto
	// A, each append gated on the other's reset record).
	resetGates map[disk.ExtentID]*dep.Dependency

	// Superblock staging: pointer and ownership mutations accumulate and are
	// persisted by the next Flush, each stream in its own record.
	stagedPtr   bool
	stagedOwn   bool
	stagedWaits []*dep.Dependency // attached to the next pointer record
	futurePtr   *dep.Dependency   // bound to the next pointer record at Flush
	futureOwn   *dep.Dependency   // bound to the next ownership record at Flush
	genPtr      uint64
	genOwn      uint64
	// The superblock extent is split into two slot regions so the
	// high-frequency pointer stream can never overwrite the newest
	// ownership record: ownership records cycle through the first
	// ownSlots slots, pointer records through the rest.
	ownSlots int
	sbOffOwn int // next ownership record offset
	sbOffPtr int // next pointer record offset

	// recovered marks managers constructed by Recover — the bug #6 trigger
	// condition ("incorrect after a reboot").
	recovered bool

	// resetHappened records whether any extent was reset this session — the
	// bug #3 trigger condition in the LSM shutdown path.
	resetHappened bool

	// Staging token pool (bug #12 site). Every staged mutation holds a token
	// until the next flush writes the record. The flusher itself must not
	// compete for a token; with bug #12 enabled it does, which deadlocks when
	// stagers exhaust the pool.
	poolCap  int
	poolUsed int
	poolCond *vsync.Cond

	// autoFlush flushes the superblock once this many mutations are staged
	// (zero disables).
	autoFlush int

	// lastPtrRec / lastOwnRec chain record writes so at most one record per
	// stream is in flight (issued but unsynced) at any time. Without this, a
	// wrapped slot reuse could tear the only durable record of the stream:
	// the crash applies some pages of the new write over the old record,
	// invalidating both.
	lastPtrRec *dep.Dependency
	lastOwnRec *dep.Dependency

	lastRecord *dep.Dependency
}

// Config tunes the manager.
type Config struct {
	// AutoFlushThreshold flushes the superblock automatically once this many
	// mutations are staged. Zero disables auto-flush (harnesses drive flushes
	// explicitly for determinism).
	AutoFlushThreshold int
	// StagingTokens bounds concurrently staged mutations (bug #12 pool).
	// Zero means a generous default.
	StagingTokens int
}

// NewManager formats a fresh extent table over sched's disk: extent 0 is the
// superblock, extent 1 the LSM metadata extent, the rest free.
func NewManager(sched *dep.Scheduler, cfg Config, cov *coverage.Registry, bugs *faults.Set) (*Manager, error) {
	m, err := newManager(sched, cfg, cov, bugs)
	if err != nil {
		return nil, err
	}
	m.owner[SuperblockExtent] = OwnerSuperblock
	if int(MetaExtent) < len(m.owner) {
		m.owner[MetaExtent] = OwnerMeta
	}
	return m, nil
}

func newManager(sched *dep.Scheduler, cfg Config, cov *coverage.Registry, bugs *faults.Set) (*Manager, error) {
	dcfg := sched.Disk().Config()
	recSize := recordSize(dcfg)
	if recSize > dcfg.ExtentBytes() {
		return nil, fmt.Errorf("extent: superblock record (%d B) exceeds extent capacity (%d B)", recSize, dcfg.ExtentBytes())
	}
	tokens := cfg.StagingTokens
	if tokens <= 0 {
		tokens = 1024
	}
	m := &Manager{
		sched:      sched,
		cfg:        dcfg,
		cov:        cov,
		bugs:       bugs,
		soft:       make([]int, dcfg.ExtentCount),
		owner:      make([]Owner, dcfg.ExtentCount),
		gates:      make(map[disk.ExtentID]*dep.Dependency),
		resetGates: make(map[disk.ExtentID]*dep.Dependency),
		poolCap:    tokens,
	}
	m.poolCond = vsync.NewCond(&m.mu)
	m.autoFlush = cfg.AutoFlushThreshold
	slots := dcfg.ExtentBytes() / recSize
	if slots < 4 {
		return nil, fmt.Errorf("extent: superblock extent too small: %d record slots, need 4", slots)
	}
	m.ownSlots = 2
	m.sbOffPtr = m.ownSlots * recSize
	return m, nil
}

// recordSize returns the page-aligned on-disk size of one superblock record.
func recordSize(dcfg disk.Config) int {
	raw := headerSize + dcfg.ExtentCount*entrySize + trailerSize
	ps := dcfg.PageSize
	return (raw + ps - 1) / ps * ps
}

// Scheduler returns the IO scheduler this manager writes through.
func (m *Manager) Scheduler() *dep.Scheduler { return m.sched }

// Pointer returns the in-memory soft write pointer of ext.
func (m *Manager) Pointer(ext disk.ExtentID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.soft[ext]
}

// OwnerOf returns the in-memory ownership of ext.
func (m *Manager) OwnerOf(ext disk.ExtentID) Owner {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.owner[ext]
}

// Capacity returns the byte capacity of every extent.
func (m *Manager) Capacity() int { return m.cfg.ExtentBytes() }

// ExtentCount returns the number of extents on the disk.
func (m *Manager) ExtentCount() int { return m.cfg.ExtentCount }

// ResetHappened reports whether any extent was reset this session (bug #3
// trigger state, consulted by the LSM shutdown path).
func (m *Manager) ResetHappened() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resetHappened
}

// acquireTokenLocked takes one staging token. When the pool is exhausted
// the correct implementation drains it itself by flushing the staged record
// inline (releasing every token); the seeded bug #12 instead parks on the
// pool condvar, relying on a separate flusher thread — which deadlocks when
// that flusher competes for a token too. Caller holds m.mu.
func (m *Manager) acquireTokenLocked() {
	for m.poolUsed >= m.poolCap {
		m.cov.Hit("extent.pool.exhausted")
		if m.bugs.Enabled(faults.Bug12BufferPoolDeadlock) {
			m.poolCond.Wait()
			continue
		}
		if _, err := m.flushLocked(); err != nil {
			// Flush failures leave the pool full; waiting is the only option.
			m.poolCond.Wait()
		}
	}
	m.poolUsed++
}

// releaseTokensLocked returns n staging tokens and wakes waiters.
func (m *Manager) releaseTokensLocked(n int) {
	m.poolUsed -= n
	if m.poolUsed < 0 {
		m.poolUsed = 0
	}
	m.poolCond.Broadcast()
}

// stagePtrLocked records a pointer mutation and returns the future
// dependency for the pointer record that will carry it. waits are attached
// to that record's writeback. Caller holds m.mu.
func (m *Manager) stagePtrLocked(waits ...*dep.Dependency) *dep.Dependency {
	m.acquireTokenLocked()
	if m.futurePtr == nil {
		m.futurePtr = m.sched.Future()
	}
	m.stagedPtr = true
	for _, w := range waits {
		if w != nil {
			m.stagedWaits = append(m.stagedWaits, w)
		}
	}
	return m.futurePtr
}

// stageOwnLocked records an ownership mutation and returns the future
// dependency for the ownership record that will carry it.
func (m *Manager) stageOwnLocked() *dep.Dependency {
	m.acquireTokenLocked()
	if m.futureOwn == nil {
		m.futureOwn = m.sched.Future()
	}
	m.stagedOwn = true
	return m.futureOwn
}

// Allocate hands out a free extent to owner, staging the ownership change
// into the next superblock record. New appends to the extent wait for that
// record to persist — except under bug #6, where managers built by Recover
// forget to install the gate.
func (m *Manager) Allocate(owner Owner) (disk.ExtentID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.owner {
		ext := disk.ExtentID(i)
		if m.owner[i] != OwnerFree {
			continue
		}
		m.owner[i] = owner
		m.soft[i] = 0
		ownDep := m.stageOwnLocked()
		m.gates[ext] = dep.All(m.gates[ext], ownDep)
		m.cov.Hit("extent.allocate")
		return ext, nil
	}
	return 0, ErrNoFreeExtent
}

// Append writes data at the extent's soft write pointer, advancing it, and
// returns the data's offset plus the dependency covering the data write, the
// superblock pointer update, and any allocation/reset gates (§2.2, Fig 2).
// The append is not issued to disk until every dependency in waits persists.
// Ownership of data transfers to the scheduler (zero-copy enqueue): callers
// must not mutate it afterwards.
func (m *Manager) Append(label string, ext disk.ExtentID, data []byte, waits ...*dep.Dependency) (int, *dep.Dependency, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.owner[ext] == OwnerFree || m.owner[ext] == OwnerSuperblock {
		return 0, nil, fmt.Errorf("%w: append to %v extent %d", ErrNotOwned, m.owner[ext], ext)
	}
	off := m.soft[ext]
	if off+len(data) > m.cfg.ExtentBytes() {
		return 0, nil, fmt.Errorf("%w: extent %d pointer %d + %d > %d", ErrExtentFull, ext, off, len(data), m.cfg.ExtentBytes())
	}
	m.soft[ext] += len(data)

	allWaits := append([]*dep.Dependency(nil), waits...)
	if gate := m.gates[ext]; gate != nil {
		allWaits = append(allWaits, gate)
	}
	wdep := m.sched.WriteOwned(label, ext, off, data, allWaits...)
	ptrDep := m.stagePtrLocked()
	if err := m.maybeAutoFlushLocked(); err != nil {
		return 0, nil, fmt.Errorf("auto-flush after append: %w", err)
	}
	if m.bugs.Enabled(faults.Bug8CacheWriteMissingDep) {
		// Seeded bug #8: the write's dependency omitted the soft write
		// pointer update, so a crash could persist the data while the
		// superblock still points before it — making the data unreadable
		// after recovery even though the dependency claimed persistence.
		m.cov.Hit("extent.bug8.missing_ptr_dep")
		return off, wdep, nil
	}
	return off, wdep.And(ptrDep), nil
}

// Read reads length bytes at off from ext, refusing reads past the soft
// write pointer (§2.1: "ShardStore forbids reads beyond an extent's write
// pointer").
func (m *Manager) Read(ext disk.ExtentID, off, length int, buf []byte) error {
	m.mu.Lock()
	if m.owner[ext] == OwnerFree {
		m.mu.Unlock()
		return fmt.Errorf("%w: read from free extent %d", ErrNotOwned, ext)
	}
	if off+length > m.soft[ext] {
		ptr := m.soft[ext]
		m.mu.Unlock()
		return fmt.Errorf("%w: extent %d [%d,%d) pointer %d", ErrBeyondPointer, ext, off, off+length, ptr)
	}
	m.mu.Unlock()
	return m.sched.ReadAt(ext, off, buf[:length])
}

// Reset returns the extent's write pointer to zero so the space can be
// reused (§2.1). waits carries the caller's evacuation dependencies: the
// reset record — and, via the gate, any subsequent append to this extent —
// persists only after the evacuated chunks and their index updates are
// durable. Under bug #7 the gate is skipped, so new appends can physically
// overwrite live data before the evacuations persist.
func (m *Manager) Reset(ext disk.ExtentID, waits ...*dep.Dependency) (*dep.Dependency, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.owner[ext] == OwnerFree || m.owner[ext] == OwnerSuperblock {
		return nil, fmt.Errorf("%w: reset of %v extent %d", ErrNotOwned, m.owner[ext], ext)
	}
	// Flush any already-staged mutations into their own record first. The
	// reset record must wait on the caller's evacuation dependencies, and
	// those dependencies typically include pointer updates staged for the
	// *current* record — batching them together would make the record wait
	// on its own future, a cycle that would wedge the IO scheduler.
	if m.stagedPtr || m.stagedOwn {
		if _, err := m.flushLocked(); err != nil {
			return nil, err
		}
	}
	m.soft[ext] = 0
	m.resetHappened = true
	resetDep := m.stagePtrLocked(waits...)
	if _, err := m.flushLocked(); err != nil {
		return nil, err
	}
	// Cancel buffered writebacks into the reclaimed space. Their durability
	// obligation transfers to the reset record, which is ordered after the
	// evacuations and reference updates that superseded the data.
	m.sched.CancelExtentPending(ext, resetDep)
	if m.bugs.Enabled(faults.Bug7SoftHardPointerSkew) {
		// Seeded bug #7: appends after a reset did not wait for the reset
		// record (and its evacuation dependencies) to persist, so the soft
		// and hard write pointers could disagree across a crash.
		m.cov.Hit("extent.bug7.skipped_gate")
		delete(m.gates, ext)
		delete(m.resetGates, ext)
	} else {
		m.gates[ext] = resetDep
		m.resetGates[ext] = resetDep
	}
	m.cov.Hit("extent.reset")
	if err := m.maybeAutoFlushLocked(); err != nil {
		return nil, fmt.Errorf("auto-flush after reset: %w", err)
	}
	return resetDep, nil
}

// ResetGatePending reports whether ext has a reset record that is not yet
// durable. Evacuation targets must avoid such extents (see resetGates).
func (m *Manager) ResetGatePending(ext disk.ExtentID) bool {
	m.mu.Lock()
	g := m.resetGates[ext]
	m.mu.Unlock()
	if g == nil {
		return false
	}
	if g.IsPersistent() {
		m.mu.Lock()
		if m.resetGates[ext] == g {
			delete(m.resetGates, ext)
		}
		m.mu.Unlock()
		return false
	}
	return true
}

// FreeExtent releases ownership of ext back to the free pool, staging the
// ownership change.
func (m *Manager) FreeExtent(ext disk.ExtentID) (*dep.Dependency, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.owner[ext] == OwnerSuperblock || m.owner[ext] == OwnerMeta {
		return nil, fmt.Errorf("%w: cannot free %v extent", ErrNotOwned, m.owner[ext])
	}
	m.owner[ext] = OwnerFree
	m.soft[ext] = 0
	ptrDep := m.stagePtrLocked()
	return ptrDep.And(m.stageOwnLocked()), nil
}

// FreeCount returns the number of unallocated extents.
func (m *Manager) FreeCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, o := range m.owner {
		if o == OwnerFree {
			n++
		}
	}
	return n
}

// OwnedExtents returns the extents with the given owner, ascending.
func (m *Manager) OwnedExtents(owner Owner) []disk.ExtentID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []disk.ExtentID
	for i, o := range m.owner {
		if o == owner {
			out = append(out, disk.ExtentID(i))
		}
	}
	return out
}

// maybeAutoFlushLocked flushes the superblock when enough mutations are
// staged. Caller holds m.mu. The flush error propagates: an auto-flush is
// the same durability-critical write as an explicit Flush, just triggered
// by the staging watermark instead of the caller.
func (m *Manager) maybeAutoFlushLocked() error {
	if m.autoFlush > 0 && m.poolUsed >= m.autoFlush {
		_, err := m.flushLocked()
		return err
	}
	return nil
}

// Flush serializes the full pointer + ownership table into a new superblock
// record, enqueues its write, and binds the outstanding future dependency to
// it. It returns the record's dependency.
func (m *Manager) Flush() (*dep.Dependency, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flushLocked()
}

func (m *Manager) flushLocked() (*dep.Dependency, error) {
	if m.bugs.Enabled(faults.Bug12BufferPoolDeadlock) {
		// Seeded bug #12: the flusher competed for a staging token with the
		// threads whose staged updates it was supposed to drain. With the
		// pool exhausted every thread waits forever.
		m.cov.Hit("extent.bug12.flusher_waits")
		m.acquireTokenLocked()
		m.poolUsed-- // token returned immediately after the record is built
	}
	virgin := m.lastRecord == nil
	out := dep.Resolved()
	if m.stagedOwn || virgin {
		if m.bugs.Enabled(faults.Bug6SuperblockOwnershipDep) && m.recovered {
			// Seeded bug #6: after a reboot, the flusher believed the
			// recovered ownership table was already durable and bound the
			// ownership dependency to the pointer record instead of writing
			// an ownership record. Allocations made after the reboot are
			// therefore never persisted, and a later crash recovers the
			// extent as free — with durable chunks and index entries still
			// pointing into it.
			m.cov.Hit("extent.bug6.ownership_not_written")
			if m.futureOwn != nil {
				m.sched.Bind(m.futureOwn, dep.Resolved())
				m.futureOwn = nil
			}
			m.stagedOwn = false
		} else {
			rec := m.encodeRecordLocked(ownRecordMagic)
			var waits []*dep.Dependency
			if m.lastOwnRec != nil {
				waits = append(waits, m.lastOwnRec)
			}
			recDep := m.writeRecordLocked(rec, waits)
			m.lastOwnRec = recDep
			if m.futureOwn != nil {
				m.sched.Bind(m.futureOwn, recDep)
				m.futureOwn = nil
			}
			m.stagedOwn = false
			out = out.And(recDep)
		}
	}
	if m.stagedPtr || virgin {
		rec := m.encodeRecordLocked(ptrRecordMagic)
		waits := m.stagedWaits
		m.stagedWaits = nil
		if m.lastPtrRec != nil && !m.lastPtrRec.IsPersistent() {
			waits = append(waits, m.lastPtrRec)
		}
		recDep := m.writeRecordLocked(rec, waits)
		m.lastPtrRec = recDep
		if m.futurePtr != nil {
			m.sched.Bind(m.futurePtr, recDep)
			m.futurePtr = nil
		}
		m.stagedPtr = false
		out = out.And(recDep)
	}
	if out == dep.Resolved() && m.lastRecord != nil {
		return m.lastRecord, nil
	}
	m.releaseTokensLocked(m.poolUsed)
	m.lastRecord = out
	m.cov.Hit("extent.superblock.flush")
	return out, nil
}

// writeRecordLocked enqueues one record write, cycling within the stream's
// slot region.
func (m *Manager) writeRecordLocked(rec []byte, waits []*dep.Dependency) *dep.Dependency {
	recSize := len(rec)
	own := binary.BigEndian.Uint32(rec[0:4]) == ownRecordMagic
	var off int
	if own {
		if m.sbOffOwn+recSize > m.ownSlots*recSize {
			m.sbOffOwn = 0
			m.cov.Hit("extent.superblock.cycle")
		}
		off = m.sbOffOwn
		m.sbOffOwn += recSize
	} else {
		if m.sbOffPtr+recSize > m.cfg.ExtentBytes() {
			m.sbOffPtr = m.ownSlots * recSize
			m.cov.Hit("extent.superblock.cycle")
		}
		off = m.sbOffPtr
		m.sbOffPtr += recSize
	}
	label := "superblock pointer record"
	if own {
		label = "superblock ownership record"
	}
	// rec is built fresh by encodeRecordLocked; hand it to the scheduler
	// without a copy.
	d := m.sched.WriteOwned(label, SuperblockExtent, off, rec, waits...)
	return d
}

// StagedMutations reports whether superblock mutations await a flush.
func (m *Manager) StagedMutations() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stagedPtr || m.stagedOwn
}

// encodeRecordLocked serializes one record stream (pointer or ownership
// snapshot, selected by magic). Caller holds m.mu.
func (m *Manager) encodeRecordLocked(magic uint32) []byte {
	var gen uint64
	if magic == ptrRecordMagic {
		m.genPtr++
		gen = m.genPtr
	} else {
		m.genOwn++
		gen = m.genOwn
	}
	raw := make([]byte, 0, headerSize+len(m.soft)*entrySize+trailerSize)
	raw = binary.BigEndian.AppendUint32(raw, magic)
	raw = binary.BigEndian.AppendUint64(raw, gen)
	raw = binary.BigEndian.AppendUint32(raw, uint32(len(m.soft)))
	for i := range m.soft {
		raw = binary.BigEndian.AppendUint32(raw, uint32(i))
		if magic == ptrRecordMagic {
			raw = binary.BigEndian.AppendUint32(raw, uint32(m.soft[i]))
			raw = append(raw, 0)
		} else {
			raw = binary.BigEndian.AppendUint32(raw, uint32(m.owner[i]))
			raw = append(raw, 0)
		}
	}
	raw = binary.BigEndian.AppendUint32(raw, crc32.ChecksumIEEE(raw))
	// Pad to page alignment so records never share a page (a torn page can
	// then corrupt at most one record).
	rs := recordSize(m.cfg)
	padded := make([]byte, rs)
	copy(padded, raw)
	return padded
}

// decodeRecord parses one record; returns ok=false for invalid records
// (wrong magic, bad CRC, torn writes). vals holds pointers or owner codes
// depending on the record type.
func decodeRecord(buf []byte, extentCount int) (magic uint32, gen uint64, vals []uint32, ok bool) {
	if len(buf) < headerSize+trailerSize {
		return 0, 0, nil, false
	}
	magic = binary.BigEndian.Uint32(buf[0:4])
	if magic != ptrRecordMagic && magic != ownRecordMagic {
		return 0, 0, nil, false
	}
	gen = binary.BigEndian.Uint64(buf[4:12])
	count := int(binary.BigEndian.Uint32(buf[12:16]))
	if count != extentCount {
		return 0, 0, nil, false
	}
	need := headerSize + count*entrySize + trailerSize
	if len(buf) < need {
		return 0, 0, nil, false
	}
	body := buf[:need-trailerSize]
	wantCRC := binary.BigEndian.Uint32(buf[need-trailerSize : need])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return 0, 0, nil, false
	}
	vals = make([]uint32, count)
	pos := headerSize
	for i := 0; i < count; i++ {
		idx := int(binary.BigEndian.Uint32(buf[pos : pos+4]))
		if idx != i {
			return 0, 0, nil, false
		}
		vals[i] = binary.BigEndian.Uint32(buf[pos+4 : pos+8])
		pos += entrySize
	}
	return magic, gen, vals, true
}

// Recover rebuilds the extent table after a reboot by scanning the
// superblock extent for the highest-generation valid record.
func Recover(sched *dep.Scheduler, cfg Config, cov *coverage.Registry, bugs *faults.Set) (*Manager, error) {
	m, err := newManager(sched, cfg, cov, bugs)
	if err != nil {
		return nil, err
	}
	d := sched.Disk()
	dcfg := d.Config()
	rs := recordSize(dcfg)
	var bestPtrGen, bestOwnGen uint64
	var bestPtr, bestOwn []uint32
	bestPtrOff, bestOwnOff := -1, -1
	buf := make([]byte, rs)
	for off := 0; off+rs <= dcfg.ExtentBytes(); off += rs {
		if err := d.ReadAt(SuperblockExtent, off, buf); err != nil {
			return nil, fmt.Errorf("extent: recovery read: %w", err)
		}
		magic, gen, vals, ok := decodeRecord(buf, dcfg.ExtentCount)
		if !ok {
			continue
		}
		switch magic {
		case ptrRecordMagic:
			if bestPtr == nil || gen > bestPtrGen {
				bestPtrGen, bestPtr, bestPtrOff = gen, vals, off
			}
		case ownRecordMagic:
			if bestOwn == nil || gen > bestOwnGen {
				bestOwnGen, bestOwn, bestOwnOff = gen, vals, off
			}
		}
	}
	if bestPtr == nil && bestOwn == nil {
		// Virgin disk: format fresh. This is formatting, not recovery, so
		// the recovered flag (the bug #6 trigger) stays false.
		m.owner[SuperblockExtent] = OwnerSuperblock
		if int(MetaExtent) < len(m.owner) {
			m.owner[MetaExtent] = OwnerMeta
		}
		cov.Hit("extent.recover.virgin")
		return m, nil
	}
	if bestOwn != nil {
		for i, v := range bestOwn {
			m.owner[i] = Owner(v)
		}
	} else {
		m.owner[SuperblockExtent] = OwnerSuperblock
		if int(MetaExtent) < len(m.owner) {
			m.owner[MetaExtent] = OwnerMeta
		}
	}
	if bestPtr != nil {
		for i, v := range bestPtr {
			if m.owner[i] == OwnerFree {
				continue // stale pointers on unowned extents are meaningless
			}
			m.soft[i] = int(v)
		}
	}
	m.genPtr = bestPtrGen
	m.genOwn = bestOwnGen
	if bestOwnOff >= 0 {
		m.sbOffOwn = bestOwnOff + rs
		if m.sbOffOwn+rs > m.ownSlots*rs {
			m.sbOffOwn = 0
		}
	}
	if bestPtrOff >= 0 {
		m.sbOffPtr = bestPtrOff + rs
		if m.sbOffPtr+rs > dcfg.ExtentBytes() {
			m.sbOffPtr = m.ownSlots * rs
		}
	}
	m.recovered = true
	cov.Hit("extent.recover")
	return m, nil
}

// SortExtentIDs sorts extent ids ascending; helper for stable output.
func SortExtentIDs(ids []disk.ExtentID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

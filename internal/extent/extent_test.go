package extent

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
)

func newManagerT(t *testing.T, bugs *faults.Set) (*Manager, *dep.Scheduler) {
	t.Helper()
	d, err := disk.New(disk.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := dep.NewScheduler(d, nil)
	m, err := NewManager(s, Config{}, nil, bugs)
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func TestFormatReservesWellKnownExtents(t *testing.T) {
	m, _ := newManagerT(t, nil)
	if m.OwnerOf(SuperblockExtent) != OwnerSuperblock {
		t.Fatal("extent 0 not superblock")
	}
	if m.OwnerOf(MetaExtent) != OwnerMeta {
		t.Fatal("extent 1 not meta")
	}
	if m.OwnerOf(2) != OwnerFree {
		t.Fatal("extent 2 not free")
	}
}

func TestAllocateAndAppend(t *testing.T) {
	m, s := newManagerT(t, nil)
	ext, err := m.Allocate(OwnerData)
	if err != nil {
		t.Fatal(err)
	}
	if m.OwnerOf(ext) != OwnerData {
		t.Fatal("ownership not applied")
	}
	off, d, err := m.Append("chunk", ext, []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if off != 0 {
		t.Fatalf("first append offset %d", off)
	}
	if m.Pointer(ext) != 3 {
		t.Fatalf("pointer %d", m.Pointer(ext))
	}
	if _, err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Pump(); err != nil {
		t.Fatal(err)
	}
	if !d.IsPersistent() {
		t.Fatal("append dep not persistent after flush+pump")
	}
	buf := make([]byte, 3)
	if err := m.Read(ext, 0, 3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("abc")) {
		t.Fatalf("read %q", buf)
	}
}

func TestAppendRejectsUnownedAndFull(t *testing.T) {
	m, _ := newManagerT(t, nil)
	if _, _, err := m.Append("x", 5, []byte{1}); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("append to free extent: %v", err)
	}
	ext, _ := m.Allocate(OwnerData)
	big := make([]byte, m.Capacity()+1)
	if _, _, err := m.Append("x", ext, big); !errors.Is(err, ErrExtentFull) {
		t.Fatalf("oversized append: %v", err)
	}
}

func TestReadBeyondPointerRejected(t *testing.T) {
	m, _ := newManagerT(t, nil)
	ext, _ := m.Allocate(OwnerData)
	_, _, _ = m.Append("x", ext, []byte{1, 2})
	buf := make([]byte, 3)
	if err := m.Read(ext, 0, 3, buf); !errors.Is(err, ErrBeyondPointer) {
		t.Fatalf("read beyond pointer: %v", err)
	}
}

func TestAppendDependsOnPointerRecord(t *testing.T) {
	m, s := newManagerT(t, nil)
	ext, _ := m.Allocate(OwnerData)
	_, d, _ := m.Append("x", ext, []byte{1})
	// Pump without a superblock flush: the data write is gated on the
	// ownership record future, which is unbound.
	if err := s.Pump(); !errors.Is(err, dep.ErrUnboundFuture) {
		t.Fatalf("pump = %v, want unbound future (superblock not flushed)", err)
	}
	if d.IsPersistent() {
		t.Fatal("append persistent without superblock record")
	}
	if _, err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Pump(); err != nil {
		t.Fatal(err)
	}
	if !d.IsPersistent() {
		t.Fatal("append not persistent after flush")
	}
}

func TestRecoverRestoresPointersAndOwnership(t *testing.T) {
	m, s := newManagerT(t, nil)
	ext, _ := m.Allocate(OwnerData)
	_, _, _ = m.Append("x", ext, []byte{1, 2, 3, 4, 5})
	_, _ = m.Flush()
	if err := s.Pump(); err != nil {
		t.Fatal(err)
	}

	s2 := dep.NewScheduler(s.Disk(), nil)
	m2, err := Recover(s2, Config{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m2.OwnerOf(ext) != OwnerData {
		t.Fatalf("ownership lost: %v", m2.OwnerOf(ext))
	}
	if m2.Pointer(ext) != 5 {
		t.Fatalf("pointer lost: %d", m2.Pointer(ext))
	}
	if m2.OwnerOf(SuperblockExtent) != OwnerSuperblock {
		t.Fatal("superblock ownership lost")
	}
}

func TestRecoverVirginDiskFormats(t *testing.T) {
	d, _ := disk.New(disk.DefaultConfig())
	s := dep.NewScheduler(d, nil)
	m, err := Recover(s, Config{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.OwnerOf(SuperblockExtent) != OwnerSuperblock || m.OwnerOf(MetaExtent) != OwnerMeta {
		t.Fatal("virgin format wrong")
	}
}

func TestCrashLosesUnflushedPointers(t *testing.T) {
	m, s := newManagerT(t, nil)
	ext, _ := m.Allocate(OwnerData)
	_, _, _ = m.Append("x", ext, []byte{1, 2, 3})
	_, _ = m.Flush()
	_ = s.Pump()
	// Advance without flushing the superblock.
	_, _, _ = m.Append("y", ext, []byte{4, 5})
	s.Crash(rand.New(rand.NewSource(1)))

	s2 := dep.NewScheduler(s.Disk(), nil)
	m2, err := Recover(s2, Config{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Pointer(ext); got != 3 {
		t.Fatalf("recovered pointer %d, want 3 (the durable record)", got)
	}
}

func TestResetRequiresWaitsPersisted(t *testing.T) {
	m, s := newManagerT(t, nil)
	ext, _ := m.Allocate(OwnerData)
	_, _, _ = m.Append("old", ext, []byte{1, 2, 3})
	_, _ = m.Flush()
	_ = s.Pump()

	// Simulated evacuation write the reset must wait for.
	ext2, _ := m.Allocate(OwnerData)
	_, evac, _ := m.Append("evac", ext2, []byte{9})
	resetDep, err := m.Reset(ext, evac)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pointer(ext) != 0 {
		t.Fatal("soft pointer not reset")
	}
	// A new append to the reset extent must not be issued before the reset
	// record (and hence the evacuation) persists.
	_, nd, _ := m.Append("new", ext, []byte{7})
	s.Step()
	_ = s.Sync()
	if nd.IsPersistent() {
		t.Fatal("append to reset extent persisted before the reset record")
	}
	if _, err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Pump(); err != nil {
		t.Fatal(err)
	}
	if !resetDep.IsPersistent() || !nd.IsPersistent() {
		t.Fatal("deps should persist after full pump")
	}
}

func TestBug7SkipsResetGate(t *testing.T) {
	bugs := faults.NewSet(faults.Bug7SoftHardPointerSkew)
	m, s := newManagerT(t, bugs)
	ext, _ := m.Allocate(OwnerData)
	_, _, _ = m.Append("old", ext, []byte{1})
	_, _ = m.Flush()
	_ = s.Pump()
	ext2, _ := m.Allocate(OwnerData)
	_, evac, _ := m.Append("evac", ext2, []byte{9})
	if _, err := m.Reset(ext, evac); err != nil {
		t.Fatal(err)
	}
	_, _, _ = m.Append("new", ext, []byte{7})
	// Under the bug, the new append is issuable immediately even though the
	// reset record (waiting on the evacuation) is not durable.
	if n := s.Step(); n == 0 {
		t.Fatal("bug7: gated append should have been issuable")
	}
}

func TestResetGatePending(t *testing.T) {
	m, s := newManagerT(t, nil)
	ext, _ := m.Allocate(OwnerData)
	_, _, _ = m.Append("x", ext, []byte{1})
	_, _ = m.Flush()
	_ = s.Pump()
	if m.ResetGatePending(ext) {
		t.Fatal("no reset yet")
	}
	_, _ = m.Reset(ext)
	if !m.ResetGatePending(ext) {
		t.Fatal("gate should be pending before pump")
	}
	_, _ = m.Flush()
	_ = s.Pump()
	if m.ResetGatePending(ext) {
		t.Fatal("gate should clear once the record is durable")
	}
}

func TestFreeExtentReturnsToPool(t *testing.T) {
	m, s := newManagerT(t, nil)
	ext, _ := m.Allocate(OwnerData)
	if _, err := m.FreeExtent(ext); err != nil {
		t.Fatal(err)
	}
	if m.OwnerOf(ext) != OwnerFree {
		t.Fatal("not freed")
	}
	if _, err := m.FreeExtent(SuperblockExtent); err == nil {
		t.Fatal("freed the superblock")
	}
	_, _ = m.Flush()
	_ = s.Pump()
}

func TestAllocateExhaustsPool(t *testing.T) {
	m, _ := newManagerT(t, nil)
	n := m.ExtentCount() - 2 // minus superblock + meta
	for i := 0; i < n; i++ {
		if _, err := m.Allocate(OwnerData); err != nil {
			t.Fatalf("allocation %d: %v", i, err)
		}
	}
	if _, err := m.Allocate(OwnerData); !errors.Is(err, ErrNoFreeExtent) {
		t.Fatalf("expected exhaustion: %v", err)
	}
}

func TestOwnedExtents(t *testing.T) {
	m, _ := newManagerT(t, nil)
	a, _ := m.Allocate(OwnerData)
	b, _ := m.Allocate(OwnerData)
	got := m.OwnedExtents(OwnerData)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("owned: %v", got)
	}
}

func TestSuperblockRecordCyclingSurvivesManyFlushes(t *testing.T) {
	m, s := newManagerT(t, nil)
	ext, _ := m.Allocate(OwnerData)
	for i := 0; i < 40; i++ {
		if _, _, err := m.Append("x", ext, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := s.Pump(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}
	s2 := dep.NewScheduler(s.Disk(), nil)
	m2, err := Recover(s2, Config{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Pointer(ext) != 40 {
		t.Fatalf("pointer after cycling: %d", m2.Pointer(ext))
	}
}

func TestRecordChainingBoundsInFlightRecords(t *testing.T) {
	m, s := newManagerT(t, nil)
	ext, _ := m.Allocate(OwnerData)
	// Stage and flush several records without ever syncing: chaining must
	// keep all but the first unissuable.
	for i := 0; i < 4; i++ {
		_, _, _ = m.Append("x", ext, []byte{byte(i)})
		_, _ = m.Flush()
	}
	issued := s.Step()
	// First round: the data writes are gated on the ownership record; at
	// most one ptr record + one own record can issue.
	if issued > 3 {
		t.Fatalf("issued %d writebacks in one round; record chaining broken", issued)
	}
}

func TestBug6OwnershipNotRewrittenAfterReboot(t *testing.T) {
	// Session 1 (virgin): allocation persists normally.
	bugs := faults.NewSet(faults.Bug6SuperblockOwnershipDep)
	d, _ := disk.New(disk.DefaultConfig())
	s := dep.NewScheduler(d, nil)
	m, err := Recover(s, Config{}, nil, bugs)
	if err != nil {
		t.Fatal(err)
	}
	extA, _ := m.Allocate(OwnerData)
	_, _, _ = m.Append("x", extA, []byte{1})
	_, _ = m.Flush()
	_ = s.Pump()

	// Session 2 (recovered): a new allocation's ownership is never written.
	s2 := dep.NewScheduler(d, nil)
	m2, err := Recover(s2, Config{}, nil, bugs)
	if err != nil {
		t.Fatal(err)
	}
	extB, _ := m2.Allocate(OwnerData)
	_, dp, _ := m2.Append("y", extB, []byte{2})
	_, _ = m2.Flush()
	if err := s2.Pump(); err != nil {
		t.Fatal(err)
	}
	if !dp.IsPersistent() {
		t.Fatal("append should (incorrectly) report persistent under bug #6")
	}
	// Session 3: the extent comes back free.
	s3 := dep.NewScheduler(d, nil)
	m3, err := Recover(s3, Config{}, nil, bugs)
	if err != nil {
		t.Fatal(err)
	}
	if m3.OwnerOf(extB) != OwnerFree {
		t.Fatalf("bug #6 should lose extB ownership, got %v", m3.OwnerOf(extB))
	}
	if m3.OwnerOf(extA) != OwnerData {
		t.Fatal("session-1 ownership should survive")
	}
}

// TestAutoFlushPropagation pins the auto-flush contract on the mutation
// paths: once the staging watermark is reached, Append and Reset flush the
// superblock inline and — since the flush is the same durability-critical
// write as an explicit Flush — propagate its error instead of discarding
// it (the droppederr fix). With a healthy disk the error is nil and the
// staged mutations must be gone.
func TestAutoFlushPropagation(t *testing.T) {
	d, err := disk.New(disk.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := dep.NewScheduler(d, nil)
	m, err := NewManager(s, Config{AutoFlushThreshold: 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := m.Allocate(OwnerData)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Append("chunk", ext, []byte("abc")); err != nil {
		t.Fatalf("append with auto-flush: %v", err)
	}
	if m.StagedMutations() {
		t.Fatal("append at the watermark must auto-flush the staged mutations")
	}
	if _, err := m.Reset(ext); err != nil {
		t.Fatalf("reset with auto-flush: %v", err)
	}
	if m.StagedMutations() {
		t.Fatal("reset at the watermark must auto-flush the staged mutations")
	}
}

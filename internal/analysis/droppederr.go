package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ioPkgs are the packages whose error returns report storage IO outcomes.
// A dropped error from one of these is exactly the failure class the
// crash-consistency harness hunts — the Go analog of the checks Miri and
// Crux run outside the property harness in §5: mechanical, whole-tree, and
// independent of any particular test's coverage.
var ioPkgs = map[string]bool{
	"internal/disk":   true,
	"internal/extent": true,
	"internal/chunk":  true,
}

// DroppedErr flags discarded error results from disk/extent/chunk
// functions and methods: bare call statements, calls under go/defer, and
// assignments that blank the error position.
//
// The pass covers non-test files only. Tests discard setup errors
// deliberately when constructing scenarios (a failure there surfaces as an
// assertion failure two lines later), and the invariant this pass protects
// — no IO error silently vanishes on a path a crash can interleave with —
// is a property of production code.
var DroppedErr = &Pass{
	Name: "droppederr",
	Doc:  "disk/extent/chunk IO errors must be handled, not discarded",
	Run:  runDroppedErr,
}

func runDroppedErr(u *Unit) []Diagnostic {
	if u.XTest {
		return nil
	}
	var out []Diagnostic
	diag := func(n ast.Node, fn *types.Func, how string) {
		out = append(out, Diagnostic{
			Pass: "droppederr",
			Pos:  u.Fset.Position(n.Pos()),
			Message: fmt.Sprintf("error from %s discarded%s: dropped disk/extent/chunk IO errors "+
				"hide the crash-consistency failures the harness hunts", fn.FullName(), how),
		})
	}
	for _, f := range u.Files {
		if strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if fn := u.ioCallee(call); fn != nil {
						diag(n, fn, "")
					}
				}
			case *ast.GoStmt:
				if fn := u.ioCallee(n.Call); fn != nil {
					diag(n, fn, " by go statement")
				}
			case *ast.DeferStmt:
				if fn := u.ioCallee(n.Call); fn != nil {
					diag(n, fn, " by defer")
				}
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 {
					call, ok := n.Rhs[0].(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := u.ioCallee(call)
					if fn == nil {
						return true
					}
					res := fn.Type().(*types.Signature).Results()
					if res.Len() != len(n.Lhs) {
						return true
					}
					for i := 0; i < res.Len(); i++ {
						if isErrorType(res.At(i).Type()) && isBlank(n.Lhs[i]) {
							diag(n, fn, " into _")
						}
					}
					return true
				}
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || i >= len(n.Lhs) {
						continue
					}
					fn := u.ioCallee(call)
					if fn == nil {
						continue
					}
					res := fn.Type().(*types.Signature).Results()
					if res.Len() == 1 && isErrorType(res.At(0).Type()) && isBlank(n.Lhs[i]) {
						diag(n, fn, " into _")
					}
				}
			}
			return true
		})
	}
	return out
}

// ioCallee resolves call's callee and returns it when it is a function or
// method from an IO package whose results include an error; nil otherwise.
func (u *Unit) ioCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := u.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	rel := strings.TrimPrefix(fn.Pkg().Path(), u.ModulePath+"/")
	if !ioPkgs[rel] {
		return nil
	}
	res := fn.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return fn
		}
	}
	return nil
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

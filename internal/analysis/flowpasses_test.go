package analysis_test

import (
	"testing"

	"shardstore/internal/analysis"
)

// Fixtures for the flow-aware passes, following the PR 4 pattern: each pass
// gets at least one seeded true positive, one suppressed-with-reason
// finding, and one out-of-scope negative, compiled in-memory against the
// overlay. The fake vsync/disk packages stand in for the real ones so the
// fixtures never depend on the tree's state.

var fakeVsync = map[string]string{
	"vsync.go": `package vsync

type Mutex struct{}

func (m *Mutex) Lock()         {}
func (m *Mutex) Unlock()       {}
func (m *Mutex) TryLock() bool { return true }

type RWMutex struct{}

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

type Cond struct{ L *Mutex }

func NewCond(l *Mutex) *Cond { return &Cond{L: l} }

func (c *Cond) Wait()      {}
func (c *Cond) Signal()    {}
func (c *Cond) Broadcast() {}
`,
}

var fakeDisk = map[string]string{
	"disk.go": `package disk

type Disk struct{}

func New(pages int) (*Disk, error)              { return &Disk{}, nil }
func (d *Disk) Sync() error                     { return nil }
func (d *Disk) WriteAt(off int, b []byte) error { return nil }
`,
}

var flowExtras = map[string]map[string]string{
	"shardstore/internal/vsync": fakeVsync,
	"shardstore/internal/disk":  fakeDisk,
}

func TestUnlockPathFixture(t *testing.T) {
	runFixture(t, analysis.UnlockPath, "shardstore/internal/store", map[string]string{
		"fix.go": `package store

import "shardstore/internal/vsync"

type box struct {
	mu vsync.Mutex
	rw vsync.RWMutex
}

func leakOnEarlyReturn(b *box, fail bool) bool {
	b.mu.Lock()
	if fail {
		return false // want "return in internal/store.leakOnEarlyReturn is still holding internal/store.box.mu"
	}
	b.mu.Unlock()
	return true
}

func deferredIsClean(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
}

func conditionalDeferIsClean(b *box) {
	if b != nil {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
}

func deferredClosureIsClean(b *box) {
	b.mu.Lock()
	defer func() {
		b.mu.Unlock()
	}()
}

func tryLockIsClean(b *box) bool {
	if b.mu.TryLock() {
		defer b.mu.Unlock()
		return true
	}
	return false
}

func callerHoldsConvention(b *box) { // the *Locked convention: no obligation
	b.mu.Unlock()
}

func doubleLock(b *box) {
	b.mu.Lock()
	b.mu.Lock() // want "internal/store.box.mu acquired again while already held"
	b.mu.Unlock()
	b.mu.Unlock()
}

func wrongMode(b *box) {
	b.rw.Lock()
	b.rw.RUnlock() // want "RUnlock of internal/store.box.rw, which is held exclusively"
}

func panicsWhileHolding(b *box) {
	b.mu.Lock()
	if b == nil {
		panic("invariant") // want "panic in internal/store.panicsWhileHolding is still holding internal/store.box.mu"
	}
	b.mu.Unlock()
}

func leakThroughLoop(b *box, n int) {
	for i := 0; i < n; i++ { // want "loop iteration ends in internal/store.leakThroughLoop still holding internal/store.box.mu"
		b.mu.Lock()
	}
} // want "end of function in internal/store.leakThroughLoop may be still holding internal/store.box.mu"

func waivedHandoff(b *box) {
	b.mu.Lock()
	//shardlint:allow unlockpath fixture waiver: ownership hands off to the flush goroutine
	return
}
`,
		"fix_test.go": `package store

import "shardstore/internal/vsync"

func leakInTestFile(mu *vsync.Mutex) {
	mu.Lock() // test files are out of the lock-discipline scope: not flagged
}
`,
	}, flowExtras)
}

// TestUnlockPathOutOfScope: the identical leak outside the durable-path
// package set reports nothing.
func TestUnlockPathOutOfScope(t *testing.T) {
	runFixture(t, analysis.UnlockPath, "shardstore/internal/benchfmt", map[string]string{
		"fix.go": `package benchfmt

import "shardstore/internal/vsync"

func leak(mu *vsync.Mutex, fail bool) bool {
	mu.Lock()
	if fail {
		return false
	}
	mu.Unlock()
	return true
}
`,
	}, flowExtras)
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, analysis.LockOrder, "shardstore/internal/chunk", map[string]string{
		"fix.go": `package chunk

import (
	"shardstore/internal/disk"
	"shardstore/internal/vsync"
)

type left struct{ mu vsync.Mutex }

type right struct{ mu vsync.Mutex }

func lockLR(l *left, r *right) {
	l.mu.Lock()
	r.mu.Lock() // want "lock-order cycle: internal/chunk.left.mu -> internal/chunk.right.mu"
	r.mu.Unlock()
	l.mu.Unlock()
}

func lockRL(l *left, r *right) {
	r.mu.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	r.mu.Unlock()
}

func sendUnderLock(l *left, ch chan int) {
	l.mu.Lock()
	ch <- 1 // want "channel send while holding internal/chunk.left.mu"
	l.mu.Unlock()
}

func recvAfterUnlockIsClean(l *left, ch chan int) int {
	l.mu.Lock()
	l.mu.Unlock()
	return <-ch
}

func syncUnderLock(l *left, d *disk.Disk) {
	l.mu.Lock()
	_ = d.Sync() // want "disk.Sync while holding internal/chunk.left.mu"
	l.mu.Unlock()
}

func syncHelper(d *disk.Disk) { _ = d.Sync() }

func syncViaCallee(l *left, d *disk.Disk) {
	l.mu.Lock()
	syncHelper(d) // want "holds internal/chunk.left.mu across call to internal/chunk.syncHelper, which may reach disk.Sync"
	l.mu.Unlock()
}

type waiter struct {
	mu    vsync.Mutex
	cond  *vsync.Cond
	ready bool
}

func newWaiter() *waiter {
	w := &waiter{}
	w.cond = vsync.NewCond(&w.mu)
	return w
}

func waitHoldingOwnLockIsClean(w *waiter) {
	w.mu.Lock()
	for !w.ready {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

func waitHoldingOther(w *waiter, l *left) {
	l.mu.Lock()
	w.mu.Lock()
	for !w.ready {
		w.cond.Wait() // want "holds internal/chunk.left.mu across internal/chunk.waiter.cond.Wait"
	}
	w.mu.Unlock()
	l.mu.Unlock()
}

func waitWithoutLock(w *waiter) {
	w.mu.Lock()
	w.mu.Unlock()
	w.cond.Wait() // want "internal/chunk.waiter.cond.Wait without holding its lock internal/chunk.waiter.mu"
}

func waitLockedHelper(w *waiter) { // caller holds w.mu: not flagged
	for !w.ready {
		w.cond.Wait()
	}
}

func waivedSend(l *left, ch chan int) {
	l.mu.Lock()
	ch <- 1 //shardlint:allow lockorder fixture waiver: consumer is wait-free by construction
	l.mu.Unlock()
}
`,
	}, flowExtras)
}

// TestLockOrderOutOfScope: blocking under a lock outside the scoped package
// set reports nothing.
func TestLockOrderOutOfScope(t *testing.T) {
	runFixture(t, analysis.LockOrder, "shardstore/internal/benchfmt", map[string]string{
		"fix.go": `package benchfmt

import "shardstore/internal/vsync"

func sendUnderLock(mu *vsync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1
	mu.Unlock()
}
`,
	}, flowExtras)
}

func TestStageVocabFixture(t *testing.T) {
	runFixture(t, analysis.StageVocab, "shardstore/internal/obs", map[string]string{
		"fix.go": `package obs

const (
	StageQueueWait    = "rpc.queue_wait"
	StageInterference = "compact.interference"
)

type Span struct{}

func (sp *Span) Stage(name string, start uint64, detail string) {}

type Registry struct{}

func (r *Registry) Counter(name string) int   { return 0 }
func (r *Registry) Gauge(name string) int     { return 0 }
func (r *Registry) Histogram(name string) int { return 0 }

func use(sp *Span, r *Registry, dyn string) {
	sp.Stage(StageQueueWait, 0, "")
	sp.Stage("store.put", 0, "")
	sp.Stage("rpc.bogus_wait", 0, "") // want "not in the documented obs vocabulary"
	sp.Stage(StageInterference, 0, "") // want "documented as not a stage"
	sp.Stage(dyn, 0, "") // want "not a compile-time constant"
	//shardlint:allow stagevocab fixture waiver demonstrating the suppression path
	sp.Stage("rpc.waived_wait", 0, "")

	_ = r.Counter("rpc.requests")
	_ = r.Histogram("rpc.requests") // want "registered as a histogram here but as a counter"
	_ = r.Gauge("Bad-Name") // want "not well-formed"
}
`,
		"fix_test.go": `package obs

func stageInTest(sp *Span) {
	sp.Stage("late", 0, "") // test files may use ad-hoc stage names: not flagged
}
`,
	}, nil)
}

func TestObsCompleteFixture(t *testing.T) {
	runFixture(t, analysis.ObsComplete, "shardstore/internal/rpc", map[string]string{
		"fix.go": `package rpc

type Opcode uint8

const (
	opInvalid Opcode = 0
	opPut     Opcode = 1
	opGet     Opcode = 2
	opTrace   Opcode = 3 // want "opTrace = 3 exceeds opMax" // want "opTrace = 3 has no opName case" // want "opTrace = 3 has no dispatchInner case"
	opSlow    Opcode = 4 //shardlint:allow obscomplete staged rollout fixture: wire enablement follows

	opMax = opGet
)

func opName(op Opcode) string {
	switch op {
	case opPut:
		return "put"
	case opGet:
		return "get"
	}
	return "unknown"
}

type reg struct{}

func (reg) Histogram(name string) int { return 0 }

func register(r reg) {
	for op := opPut; op <= opMax; op++ {
		_ = r.Histogram("rpc.lat")
		_ = op
	}
}

func dispatchInner(op Opcode) int {
	switch op {
	case opPut:
		return 1
	case opGet:
		return 2
	}
	return 0
}
`,
	}, nil)
}

// TestObsCompleteOutOfScope: an opcode-shaped package anywhere but
// internal/rpc is not this pass's business.
func TestObsCompleteOutOfScope(t *testing.T) {
	runFixture(t, analysis.ObsComplete, "shardstore/internal/benchfmt", map[string]string{
		"fix.go": `package benchfmt

type Opcode uint8

const (
	opPut Opcode = 1
	opMax       = opPut
)
`,
	}, nil)
}

// Package analysis is a standard-library-only static-analysis driver that
// enforces the validation stack's soundness assumptions.
//
// The paper's methodology leans on side-conditions its main harness cannot
// check from the inside: Loom/Shuttle explorations are only sound if every
// synchronization operation is instrumented (§6), and replayable
// minimization is only sound if failing executions are bit-identical under
// re-execution (§4.1). Miri and Crux play the same role for undefined
// behavior and panic-freedom — mechanized checks *outside* the harness (§5).
// This package mechanizes the Go reproduction's equivalents as named passes
// over the module's packages:
//
//   - syncusage: instrumented packages must use the vsync wrappers, never
//     raw sync primitives, bare go statements, or t.Parallel.
//   - determinism: deterministic packages must not read the wall clock or
//     the global math/rand source.
//   - mapiter: deterministic packages must not let Go's randomized map
//     iteration order leak into slices, output, or channels.
//   - droppederr: disk/extent/chunk IO errors must never be discarded.
//
// The driver is built on go/parser, go/ast, and go/types with the stdlib
// source importer — no golang.org/x/tools dependency — so it runs anywhere
// the toolchain does. Findings are position-accurate diagnostics; the
// cmd/shardlint CLI exits nonzero on any finding.
//
// # Suppressions
//
// A finding can be acknowledged in place with
//
//	//shardlint:allow <pass> <reason>
//
// either trailing the flagged line or on the line directly above it. The
// reason is mandatory: an annotation without one (or naming an unknown
// pass) is itself a diagnostic, so suppressions stay auditable — `grep -rn
// "//shardlint:allow"` lists every waived finding with its justification.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding from one pass at one source position.
type Diagnostic struct {
	Pass    string
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Pass, d.Message)
}

// Pass is a named check over a single type-checked unit.
type Pass struct {
	// Name identifies the pass in diagnostics and suppression comments.
	Name string
	// Doc is a one-line description for -help output.
	Doc string
	// Run reports the pass's findings for u. Suppression filtering is the
	// driver's job; Run reports everything it sees.
	Run func(u *Unit) []Diagnostic
}

// AllPasses returns the repo's pass suite in reporting order.
func AllPasses() []*Pass {
	return []*Pass{SyncUsage, Determinism, MapIter, DroppedErr}
}

// RunPasses runs every pass over every unit, applies //shardlint:allow
// suppressions, and returns the surviving diagnostics sorted by position.
// Malformed suppression comments are reported as diagnostics of the
// pseudo-pass "shardlint" and cannot themselves be suppressed.
func RunPasses(units []*Unit, passes []*Pass) []Diagnostic {
	known := make(map[string]bool, len(passes))
	for _, p := range passes {
		known[p.Name] = true
	}
	allows, diags := collectAllows(units, known)
	for _, u := range units {
		for _, p := range passes {
			for _, d := range p.Run(u) {
				if allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Pass}] {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
	return diags
}

// allowPrefix is the suppression marker. Kept as a single grep-able token:
// no space after //, like //go:build.
const allowPrefix = "//shardlint:allow"

type allowKey struct {
	file string
	line int
	pass string
}

// collectAllows scans every file's comments for suppression annotations. A
// well-formed annotation covers its own line and the line directly below it
// (so it works both trailing the flagged statement and standalone above it).
// Annotations missing a reason or naming an unknown pass are returned as
// diagnostics.
func collectAllows(units []*Unit, known map[string]bool) (map[allowKey]bool, []Diagnostic) {
	allows := make(map[allowKey]bool)
	var bad []Diagnostic
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						bad = append(bad, Diagnostic{
							Pass: "shardlint",
							Pos:  pos,
							Message: fmt.Sprintf("malformed suppression %q: want %s <pass> <reason> — the reason is mandatory",
								c.Text, allowPrefix),
						})
						continue
					}
					pass := fields[0]
					if !known[pass] {
						bad = append(bad, Diagnostic{
							Pass:    "shardlint",
							Pos:     pos,
							Message: fmt.Sprintf("suppression names unknown pass %q", pass),
						})
						continue
					}
					allows[allowKey{pos.Filename, pos.Line, pass}] = true
					allows[allowKey{pos.Filename, pos.Line + 1, pass}] = true
				}
			}
		}
	}
	return allows, bad
}

// Package analysis is a standard-library-only static-analysis driver that
// enforces the validation stack's soundness assumptions.
//
// The paper's methodology leans on side-conditions its main harness cannot
// check from the inside: Loom/Shuttle explorations are only sound if every
// synchronization operation is instrumented (§6), and replayable
// minimization is only sound if failing executions are bit-identical under
// re-execution (§4.1). Miri and Crux play the same role for undefined
// behavior and panic-freedom — mechanized checks *outside* the harness (§5).
// This package mechanizes the Go reproduction's equivalents as named passes
// over the module's packages:
//
//   - syncusage: instrumented packages must use the vsync wrappers, never
//     raw sync primitives, bare go statements, or t.Parallel.
//   - determinism: deterministic packages must not read the wall clock or
//     the global math/rand source.
//   - mapiter: deterministic packages must not let Go's randomized map
//     iteration order leak into slices, output, or channels.
//   - droppederr: disk/extent/chunk IO errors must never be discarded.
//
// On top of the per-unit walks sits a flow-aware engine (callgraph.go,
// flow.go): a static call graph over the whole module with per-function
// effect summaries, and an intraprocedural, defer-aware lock-state walker.
// Four passes use it:
//
//   - lockorder: derives the vsync lock-acquisition order across the
//     durable-path packages, flags order cycles, and flags any path that
//     holds a lock across disk.Sync, a channel operation, or a barrier
//     wait (directly or through any statically reachable callee).
//   - unlockpath: every lock a function acquires is released on every
//     return and panic path, with defer (including deferred closures)
//     honored; double acquisitions and read/write mode mismatches are
//     flagged too.
//   - stagevocab: span stage names at call sites form exactly the
//     vocabulary internal/obs documents, and literal metric names are
//     well-formed and never registered under two metric kinds.
//   - obscomplete: every RPC v2 opcode has an opName entry, a dispatch
//     case, and (via the opPut..opMax registration loop) a latency
//     histogram — so adding an opcode without bumping opMax is a finding.
//
// The call graph resolves direct calls through go/types and approximates
// dynamic dispatch by resolving an interface method to every module type
// that implements the interface. Calls into internal/vsync and
// internal/shuttle are not traversed: that layer is the modeled runtime,
// and its internal channel use implements scheduling rather than program
// communication. Function values passed as arguments are not chased; func
// literals are analyzed as their own nodes with an empty entry lock state.
//
// The driver is built on go/parser, go/ast, and go/types with the stdlib
// source importer — no golang.org/x/tools dependency — so it runs anywhere
// the toolchain does. Findings are position-accurate diagnostics; the
// cmd/shardlint CLI exits nonzero on any finding. All passes share one
// type-checked load, and the module passes share one call graph.
//
// # Suppressions
//
// A finding can be acknowledged in place with
//
//	//shardlint:allow <pass> <reason>
//
// either trailing the flagged line or on the line directly above it. The
// reason is mandatory: an annotation without one (or naming an unknown
// pass) is itself a diagnostic, so suppressions stay auditable —
// `shardlint -waivers` prints the full inventory with justifications, and
// scripts/ci.sh diffs that inventory against the committed
// lint_waivers.txt so the waiver set cannot grow silently.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding from one pass at one source position.
type Diagnostic struct {
	Pass    string
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Pass, d.Message)
}

// Pass is a named check: per-unit (Run) or module-wide over the shared
// call graph (RunModule). Exactly one of the two is set.
type Pass struct {
	// Name identifies the pass in diagnostics and suppression comments.
	Name string
	// Doc is a one-line description for -help output.
	Doc string
	// Run reports the pass's findings for u. Suppression filtering is the
	// driver's job; Run reports everything it sees.
	Run func(u *Unit) []Diagnostic
	// RunModule reports the pass's findings over the whole loaded module.
	// The Program (units + call graph + summaries) is built once by the
	// driver and shared by every module pass.
	RunModule func(p *Program) []Diagnostic
}

// AllPasses returns the repo's pass suite in reporting order.
func AllPasses() []*Pass {
	return []*Pass{
		SyncUsage, Determinism, MapIter, DroppedErr,
		LockOrder, UnlockPath, StageVocab, ObsComplete,
	}
}

// PassTiming is one pass's wall-clock cost from a timed run, for the CLI's
// -v output (keeping the CI leg's cost visible as passes accrete).
type PassTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunPasses runs every pass over every unit, applies //shardlint:allow
// suppressions, and returns the surviving diagnostics sorted by position.
// Malformed suppression comments are reported as diagnostics of the
// pseudo-pass "shardlint" and cannot themselves be suppressed.
func RunPasses(units []*Unit, passes []*Pass) []Diagnostic {
	diags, _ := RunPassesTimed(units, passes)
	return diags
}

// RunPassesTimed is RunPasses plus per-pass wall-clock timings (the call
// graph build is attributed to the first module pass that forces it).
func RunPassesTimed(units []*Unit, passes []*Pass) ([]Diagnostic, []PassTiming) {
	known := make(map[string]bool, len(passes))
	for _, p := range passes {
		known[p.Name] = true
	}
	waivers, diags := collectAllows(units, known)
	allows := make(map[allowKey]bool, 2*len(waivers))
	for _, w := range waivers {
		allows[allowKey{w.Pos.Filename, w.Pos.Line, w.Pass}] = true
		allows[allowKey{w.Pos.Filename, w.Pos.Line + 1, w.Pass}] = true
	}
	prog := NewProgram(units)
	timings := make([]PassTiming, 0, len(passes))
	for _, p := range passes {
		start := time.Now()
		var found []Diagnostic
		if p.RunModule != nil {
			found = p.RunModule(prog)
		} else {
			for _, u := range units {
				found = append(found, p.Run(u)...)
			}
		}
		timings = append(timings, PassTiming{Name: p.Name, Elapsed: time.Since(start)})
		for _, d := range found {
			if allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Pass}] {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
	return diags, timings
}

// allowPrefix is the suppression marker. Kept as a single grep-able token:
// no space after //, like //go:build.
const allowPrefix = "//shardlint:allow"

type allowKey struct {
	file string
	line int
	pass string
}

// Waiver is one well-formed //shardlint:allow annotation: the pass it
// suppresses, where it sits, and the mandatory justification.
type Waiver struct {
	Pass string
	// Pos is the annotation's position. File is the module-relative
	// rendering of Pos.Filename used by the committed inventory, so the
	// file's content is host-path independent.
	Pos    token.Position
	File   string
	Reason string
}

// String renders the inventory line format committed to lint_waivers.txt:
// pass, module-relative file:line, reason.
func (w Waiver) String() string {
	return fmt.Sprintf("%s %s:%d %s", w.Pass, w.File, w.Pos.Line, w.Reason)
}

// Waivers returns every well-formed suppression annotation in units, sorted
// by file then line — the full justified-waiver inventory that replaces the
// old `grep -rn "//shardlint:allow"` workflow. Pass names are validated
// against passes; malformed annotations are not waivers (they are
// diagnostics) and are omitted here.
func Waivers(units []*Unit, passes []*Pass) []Waiver {
	known := make(map[string]bool, len(passes))
	for _, p := range passes {
		known[p.Name] = true
	}
	ws, _ := collectAllows(units, known)
	return ws
}

// collectAllows scans every file's comments for suppression annotations. A
// well-formed annotation covers its own line and the line directly below it
// (so it works both trailing the flagged statement and standalone above
// it); RunPassesTimed derives the allow set from the returned inventory.
// Annotations missing a reason or naming an unknown pass are returned as
// diagnostics.
func collectAllows(units []*Unit, known map[string]bool) ([]Waiver, []Diagnostic) {
	var waivers []Waiver
	var bad []Diagnostic
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						bad = append(bad, Diagnostic{
							Pass: "shardlint",
							Pos:  pos,
							Message: fmt.Sprintf("malformed suppression %q: want %s <pass> <reason> — the reason is mandatory",
								c.Text, allowPrefix),
						})
						continue
					}
					pass := fields[0]
					if !known[pass] {
						bad = append(bad, Diagnostic{
							Pass:    "shardlint",
							Pos:     pos,
							Message: fmt.Sprintf("suppression names unknown pass %q", pass),
						})
						continue
					}
					waivers = append(waivers, Waiver{
						Pass:   pass,
						Pos:    pos,
						File:   moduleRelFile(u, pos.Filename),
						Reason: strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	sort.Slice(waivers, func(i, j int) bool {
		a, b := waivers[i], waivers[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pass < b.Pass
	})
	return waivers, bad
}

// moduleRelFile renders filename relative to the module root using the
// unit's import path, so inventory lines are stable across checkouts (and
// across in-memory overlay fixtures, whose files have no real directory).
func moduleRelFile(u *Unit, filename string) string {
	base := filename
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	dir := strings.TrimPrefix(u.Path, u.ModulePath)
	dir = strings.TrimPrefix(dir, "/")
	if dir == "" {
		return base
	}
	return dir + "/" + base
}

package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// flowScopePkgs are the packages the lock-discipline passes (lockorder,
// unlockpath) walk: the durable path plus everything the paper's node model
// checks. internal/vsync and internal/shuttle are the runtime being modeled
// (excluded from the call graph entirely); model/linearize/prop hold only
// oracle-side state the node never contends on; experiments and cmd drive
// the harness from outside it.
var flowScopePkgs = map[string]bool{
	"internal/store":       true,
	"internal/chunk":       true,
	"internal/lsm":         true,
	"internal/dep":         true,
	"internal/compact":     true,
	"internal/scrub":       true,
	"internal/obs":         true,
	"internal/disk":        true,
	"internal/extent":      true,
	"internal/buffercache": true,
	"internal/rpc":         true,
}

// inFlowScope selects the function nodes the lock-discipline passes walk:
// non-test files of the scoped packages.
func inFlowScope(fi *FuncInfo) bool {
	if fi.Unit.XTest || !flowScopePkgs[fi.Unit.RelPath()] {
		return false
	}
	pos := fi.Unit.Fset.Position(fi.Body().Pos())
	return !strings.HasSuffix(pos.Filename, "_test.go")
}

// LockOrder derives the module's vsync lock-acquisition order and flags the
// two deadlock shapes the harness can only find by luck: order cycles, and
// holding a lock across a potentially blocking operation (disk.Sync, a
// channel op, a select, or a barrier/cond wait) — directly or through any
// statically reachable callee. This is the bug class PRs 6–7 fixed by hand
// in the group-commit and compaction paths.
var LockOrder = &Pass{
	Name:      "lockorder",
	Doc:       "vsync lock-order cycles and locks held across blocking operations",
	RunModule: runLockOrder,
}

// orderEdge is one observed "A held while acquiring B" with a
// representative site for reporting.
type orderEdge struct {
	pos token.Pos
	fi  *FuncInfo
	via string // callee path when the acquisition is indirect
}

func describeHeld(held []heldLock) string {
	names := make([]string, 0, len(held))
	for _, h := range held {
		names = append(names, h.Ref.Type)
	}
	return strings.Join(names, ", ")
}

func runLockOrder(p *Program) []Diagnostic {
	var diags []Diagnostic
	// edges[from][to] is the first site where `to` was acquired with
	// `from` held.
	edges := make(map[string]map[string]orderEdge)
	addEdge := func(from, to string, e orderEdge) {
		if from == to {
			return // same-type, different-instance: unlockpath's domain
		}
		m := edges[from]
		if m == nil {
			m = make(map[string]orderEdge)
			edges[from] = m
		}
		if _, ok := m[to]; !ok {
			m[to] = e
		}
	}
	// seen dedupes held-across-blocking findings per (position, effect):
	// dynamic dispatch can resolve one call site to several callees with
	// the same effect.
	seen := make(map[string]bool)
	report := func(fi *FuncInfo, pos token.Pos, msg string) {
		position := fi.Unit.Fset.Position(pos)
		key := fmt.Sprintf("%s:%d:%d:%s", position.Filename, position.Line, position.Column, msg)
		if seen[key] {
			return
		}
		seen[key] = true
		diags = append(diags, Diagnostic{Pass: "lockorder", Pos: position, Message: msg})
	}

	walkOne := func(fi *FuncInfo) {
		hooks := flowHooks{
			acquire: func(pos token.Pos, ref LockRef, read bool, held []heldLock) {
				for _, h := range held {
					addEdge(h.Ref.Type, ref.Type, orderEdge{pos: pos, fi: fi})
				}
			},
			call: func(pos token.Pos, callee *FuncInfo, held []heldLock) {
				if len(held) == 0 {
					return
				}
				for to := range callee.Closed.Acquires {
					for _, h := range held {
						addEdge(h.Ref.Type, to, orderEdge{pos: pos, fi: fi, via: callee.Name})
					}
				}
				if callee.Closed.MaySync {
					report(fi, pos, fmt.Sprintf("holds %s across call to %s, which may reach disk.Sync (%s)",
						describeHeld(held), callee.Name, viaHint(callee.Closed.SyncVia, "")))
				}
				if callee.Closed.MayChanOp {
					report(fi, pos, fmt.Sprintf("holds %s across call to %s, which may perform a channel operation (%s)",
						describeHeld(held), callee.Name, viaHint(callee.Closed.ChanVia, "")))
				}
				for condKey, via := range callee.Closed.CondWaits {
					condLock := p.CondLock(condKey)
					if condLock == "" {
						continue // unresolvable binding: stay quiet rather than guess
					}
					for _, h := range held {
						if h.Ref.Type == condLock {
							continue // Wait releases its own lock
						}
						report(fi, pos, fmt.Sprintf("holds %s across call to %s, which may wait on %s (%s); only %s is released during the wait",
							h.Ref.Type, callee.Name, condKey, viaHint(via, ""), condLock))
					}
				}
			},
			blocking: func(pos token.Pos, what string, held []heldLock) {
				if len(held) == 0 {
					return
				}
				report(fi, pos, fmt.Sprintf("%s while holding %s", what, describeHeld(held)))
			},
			condWait: func(pos token.Pos, cond LockRef, held []heldLock) {
				lockKey := p.CondLock(cond.Type)
				holdsOwn := false
				for _, h := range held {
					if lockKey != "" && h.Ref.Type == lockKey {
						holdsOwn = true
						continue
					}
					report(fi, pos, fmt.Sprintf("holds %s across %s.Wait (a barrier wait releases only its own lock)",
						h.Ref.Type, cond.Type))
				}
				// "Wait without its lock" needs positive evidence the lock
				// was dropped: a function that never acquires it is a
				// *Locked-style callee whose caller holds it.
				if lockKey != "" && !holdsOwn {
					if _, acquiresIt := fi.Direct.Acquires[lockKey]; acquiresIt {
						report(fi, pos, fmt.Sprintf("%s.Wait without holding its lock %s", cond.Type, lockKey))
					}
				}
			},
		}
		walkFunc(p, fi, hooks)
	}
	for _, fi := range p.Functions() {
		if inFlowScope(fi) {
			walkOne(fi)
		}
	}
	for _, fi := range p.Literals() {
		if inFlowScope(fi) {
			walkOne(fi)
		}
	}

	diags = append(diags, lockOrderCycles(p, edges)...)
	return diags
}

// lockOrderCycles finds cycles in the acquisition-order graph and reports
// each once, deterministically, anchored at the cycle's lexically first
// edge site so a waiver (if ever justified) has a stable line to sit on.
func lockOrderCycles(p *Program, edges map[string]map[string]orderEdge) []Diagnostic {
	nodes := make([]string, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	// Iterative DFS cycle enumeration over a graph whose node count is the
	// number of distinct locks — tiny — so simple path search is fine:
	// for each node (in sorted order), find a shortest cycle back to it
	// through sorted adjacency, and report it if this node is the cycle's
	// smallest (each cycle reported exactly once).
	var diags []Diagnostic
	for _, start := range nodes {
		path := shortestCycle(edges, start)
		if path == nil {
			continue
		}
		smallest := true
		for _, n := range path[1:] {
			if n < start {
				smallest = false
				break
			}
		}
		if !smallest {
			continue
		}
		var parts []string
		var anchor orderEdge
		for i := 0; i < len(path); i++ {
			from, to := path[i], path[(i+1)%len(path)]
			e := edges[from][to]
			if anchor.fi == nil || e.pos < anchor.pos {
				anchor = e
			}
			site := e.fi.Unit.Fset.Position(e.pos)
			via := ""
			if e.via != "" {
				via = " via " + e.via
			}
			parts = append(parts, fmt.Sprintf("%s -> %s (%s:%d%s)", from, to, shortFile(site.Filename), site.Line, via))
		}
		diags = append(diags, Diagnostic{
			Pass:    "lockorder",
			Pos:     anchor.fi.Unit.Fset.Position(anchor.pos),
			Message: "lock-order cycle: " + strings.Join(parts, ", "),
		})
	}
	return diags
}

// shortestCycle BFSes from start back to start, preferring sorted
// neighbors, and returns the node path (start first) or nil.
func shortestCycle(edges map[string]map[string]orderEdge, start string) []string {
	type qent struct {
		node string
		path []string
	}
	queue := []qent{{start, []string{start}}}
	visited := map[string]bool{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		next := make([]string, 0, len(edges[cur.node]))
		for to := range edges[cur.node] {
			next = append(next, to)
		}
		sort.Strings(next)
		for _, to := range next {
			if to == start {
				return cur.path
			}
			if !visited[to] {
				visited[to] = true
				queue = append(queue, qent{to, append(append([]string(nil), cur.path...), to)})
			}
		}
	}
	return nil
}

func shortFile(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		// Keep the parent dir for cross-package readability: pkg/file.go.
		if j := strings.LastIndexByte(filename[:i], '/'); j >= 0 {
			return filename[j+1:]
		}
	}
	return filename
}

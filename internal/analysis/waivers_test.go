package analysis_test

import (
	"os"
	"strings"
	"testing"

	"shardstore/internal/analysis"
)

// TestWaiverInventory checks the inventory surface itself: well-formed
// annotations are returned in deterministic order with module-relative
// positions and their justifications, in the exact line format
// lint_waivers.txt commits.
func TestWaiverInventory(t *testing.T) {
	units, err := analysis.Load(analysis.Config{
		ModulePath: "shardstore",
		Overlay: map[string]map[string]string{
			"shardstore/internal/store": {
				"fix.go": `package store

func spawn(f func()) {
	//shardlint:allow syncusage detached worker, joined by the harness
	go f()
}

func spawn2(f func()) {
	go f() //shardlint:allow syncusage fire-and-forget telemetry flush
}

func spawn3(f func()) {
	//shardlint:allow nosuchpass malformed: not a waiver
	go f()
}
`,
			},
		},
	}, "shardstore/internal/store")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	ws := analysis.Waivers(units, analysis.AllPasses())
	got := make([]string, len(ws))
	for i, w := range ws {
		got[i] = w.String()
	}
	want := []string{
		"syncusage internal/store/fix.go:4 detached worker, joined by the harness",
		"syncusage internal/store/fix.go:9 fire-and-forget telemetry flush",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("waiver inventory mismatch:\n got: %q\nwant: %q", got, want)
	}
}

// waiverDrift compares a rendered inventory against the committed one and
// returns the lines present only in the live tree (fresh, i.e. new waivers
// not yet justified in lint_waivers.txt) and only in the file (stale).
func waiverDrift(live, committed []string) (fresh, stale []string) {
	inFile := make(map[string]bool, len(committed))
	for _, l := range committed {
		inFile[l] = true
	}
	inLive := make(map[string]bool, len(live))
	for _, l := range live {
		inLive[l] = true
		if !inFile[l] {
			fresh = append(fresh, l)
		}
	}
	for _, l := range committed {
		if !inLive[l] {
			stale = append(stale, l)
		}
	}
	return fresh, stale
}

// readWaiverFile parses lint_waivers.txt: one Waiver.String() line per
// waiver, blank lines and #-comments ignored.
func readWaiverFile(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v (regenerate with: go run ./cmd/shardlint -waivers ./... > lint_waivers.txt)", path, err)
	}
	var lines []string
	for _, l := range strings.Split(string(data), "\n") {
		l = strings.TrimSpace(l)
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		lines = append(lines, l)
	}
	return lines
}

// TestWaiverBudgetGate is the waiver-budget gate: the live inventory of
// //shardlint:allow annotations must match the committed lint_waivers.txt
// exactly, in both directions. Adding a suppression without updating (and
// thereby review-surfacing) the inventory fails CI; so does leaving a stale
// entry behind after the waived code is fixed.
func TestWaiverBudgetGate(t *testing.T) {
	units := loadRepo(t)
	ws := analysis.Waivers(units, analysis.AllPasses())
	live := make([]string, len(ws))
	for i, w := range ws {
		live[i] = w.String()
	}
	committed := readWaiverFile(t, "../../lint_waivers.txt")

	fresh, stale := waiverDrift(live, committed)
	for _, l := range fresh {
		t.Errorf("new waiver not in lint_waivers.txt: %s", l)
	}
	for _, l := range stale {
		t.Errorf("stale lint_waivers.txt entry (annotation gone): %s", l)
	}
	if len(fresh)+len(stale) > 0 {
		t.Errorf("waiver inventory drifted: regenerate with `go run ./cmd/shardlint -waivers ./... > lint_waivers.txt` and justify the diff in review")
	}
}

// TestWaiverBudgetGateCatchesFresh proves the gate actually trips: a
// synthetic unlisted waiver must register as drift against the committed
// inventory.
func TestWaiverBudgetGateCatchesFresh(t *testing.T) {
	units := loadRepo(t)
	ws := analysis.Waivers(units, analysis.AllPasses())
	live := make([]string, len(ws))
	for i, w := range ws {
		live[i] = w.String()
	}
	committed := readWaiverFile(t, "../../lint_waivers.txt")

	injected := append(append([]string(nil), live...),
		"syncusage internal/fake/fake.go:1 sneaky unreviewed suppression")
	fresh, _ := waiverDrift(injected, committed)
	if len(fresh) != 1 || !strings.Contains(fresh[0], "sneaky") {
		t.Errorf("gate failed to catch an injected fresh waiver: fresh = %q", fresh)
	}
}

package analysis_test

import (
	"strings"
	"sync"
	"testing"

	"shardstore/internal/analysis"
)

// repoLoad caches the whole-module load so the clean-repo meta-test and the
// waiver-budget gate share one type-check (the dominant cost of both).
var repoLoad struct {
	once  sync.Once
	units []*analysis.Unit
	err   error
}

// loadRepo returns the fully type-checked real module, loading it at most
// once per test binary. Tests using it skip under -short.
func loadRepo(t *testing.T) []*analysis.Unit {
	t.Helper()
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	repoLoad.once.Do(func() {
		repoLoad.units, repoLoad.err = analysis.LoadModule("../..", "./...")
	})
	if repoLoad.err != nil {
		t.Fatalf("load module: %v", repoLoad.err)
	}
	if len(repoLoad.units) == 0 {
		t.Fatal("loaded no units")
	}
	return repoLoad.units
}

// TestShardlintCleanOnRepo runs the full pass suite — the per-file passes
// and the flow-aware module passes (lockorder, unlockpath, stagevocab,
// obscomplete) — over the real module and requires zero findings. With this
// gate in place a shardlint failure in CI is always a regression introduced
// by the change under review — never pre-existing noise and never flake
// (the analysis is a pure function of the source tree).
func TestShardlintCleanOnRepo(t *testing.T) {
	units := loadRepo(t)
	diags := analysis.RunPasses(units, analysis.AllPasses())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("shardlint must run clean on the repo (%d findings): fix the code or add //shardlint:allow <pass> <reason>", len(diags))
	}
}

// TestSuppressionRequiresReason checks that a bare //shardlint:allow does
// not lift the finding and is itself reported: suppressions without a
// justification would silently erode the zero-findings invariant.
func TestSuppressionRequiresReason(t *testing.T) {
	units, err := analysis.Load(analysis.Config{
		ModulePath: "shardstore",
		Overlay: map[string]map[string]string{
			"shardstore/internal/store": {
				"fix.go": `package store

func spawn(f func()) {
	//shardlint:allow syncusage
	go f()
	//shardlint:allow nosuchpass because I said so
	go f()
}
`,
			},
		},
	}, "shardstore/internal/store")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := analysis.RunPasses(units, analysis.AllPasses())
	var missingReason, unknownPass, goFindings int
	for _, d := range diags {
		switch {
		case d.Pass == "shardlint" && strings.Contains(d.Message, "reason is mandatory"):
			missingReason++
		case d.Pass == "shardlint" && strings.Contains(d.Message, "unknown pass"):
			unknownPass++
		case d.Pass == "syncusage" && strings.Contains(d.Message, "bare go statement"):
			goFindings++
		}
	}
	if missingReason != 1 {
		t.Errorf("want 1 missing-reason diagnostic, got %d (all: %v)", missingReason, diags)
	}
	if unknownPass != 1 {
		t.Errorf("want 1 unknown-pass diagnostic, got %d (all: %v)", unknownPass, diags)
	}
	if goFindings != 2 {
		t.Errorf("malformed suppressions must not lift findings: want 2 syncusage findings, got %d (all: %v)", goFindings, diags)
	}
}

// TestSuppressionWrongPass checks that an annotation only suppresses the
// pass it names.
func TestSuppressionWrongPass(t *testing.T) {
	units, err := analysis.Load(analysis.Config{
		ModulePath: "shardstore",
		Overlay: map[string]map[string]string{
			"shardstore/internal/store": {
				"fix.go": `package store

func spawn(f func()) {
	//shardlint:allow droppederr wrong pass named on purpose
	go f()
}
`,
			},
		},
	}, "shardstore/internal/store")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := analysis.RunPasses(units, analysis.AllPasses())
	if len(diags) != 1 || diags[0].Pass != "syncusage" {
		t.Errorf("want exactly the syncusage finding to survive, got %v", diags)
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// deterministicPkgs are the packages on the harness's replay path: a
// failing case must re-execute bit-identically from its seed for replay
// and minimization to be sound (§4.1). One wall-clock read or draw from
// the global math/rand source silently breaks that. internal/experiments
// and internal/rpc are included so their intentional server-side wall-clock
// uses carry explicit //shardlint:allow annotations instead of passing
// unexamined.
var deterministicPkgs = map[string]bool{
	"internal/core":        true,
	"internal/prop":        true,
	"internal/model":       true,
	"internal/shuttle":     true,
	"internal/disk":        true,
	"internal/lsm":         true,
	"internal/chunk":       true,
	"internal/store":       true,
	"internal/experiments": true,
	"internal/rpc":         true,
	"internal/compact":     true,
	"internal/obs":         true,
	"internal/dep":         true,
	"internal/extent":      true,
}

// seededConstructors are the math/rand functions that build an explicitly
// seeded generator — the required alternative, not a violation.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// Determinism forbids nondeterministic inputs in the packages the harness
// replays: time.Now/time.Since (inject obs.Clock instead) and the global,
// process-seeded math/rand functions (use a *rand.Rand seeded from the
// case seed instead). Methods on an explicitly constructed *rand.Rand are
// fine — the seed is the caller's responsibility and flows from
// prop.CaseSeed.
var Determinism = &Pass{
	Name: "determinism",
	Doc:  "deterministic packages must not read the wall clock or global math/rand",
	Run:  runDeterminism,
}

func runDeterminism(u *Unit) []Diagnostic {
	if !deterministicPkgs[u.RelPath()] {
		return nil
	}
	var out []Diagnostic
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := u.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if obj.Name() == "Now" || obj.Name() == "Since" {
					out = append(out, Diagnostic{
						Pass: "determinism",
						Pos:  u.Fset.Position(id.Pos()),
						Message: fmt.Sprintf("time.%s in deterministic package: inject obs.Clock "+
							"so replay and minimization stay bit-identical", obj.Name()),
					})
				}
			case "math/rand", "math/rand/v2":
				fn, ok := obj.(*types.Func)
				if !ok || fn.Type().(*types.Signature).Recv() != nil {
					return true // methods on *rand.Rand etc. are seeded by construction
				}
				if seededConstructors[fn.Name()] {
					return true
				}
				out = append(out, Diagnostic{
					Pass: "determinism",
					Pos:  u.Fset.Position(id.Pos()),
					Message: fmt.Sprintf("global %s.%s in deterministic package: use a *rand.Rand "+
						"seeded from the case seed (prop.CaseSeed)", obj.Pkg().Path(), fn.Name()),
				})
			}
			return true
		})
	}
	return out
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// instrumentedPkgs are the packages whose synchronization must route
// through internal/vsync so that shuttle explorations control every
// interleaving. One raw primitive in this set silently makes the model
// checker's "exhaustive" claim false (§6: Loom/Shuttle are only sound when
// every synchronization operation is instrumented).
//
// Any new implementation of store.KV that the conformance harness or the
// shuttle checker will drive belongs in this set too: the harness checks
// whatever sits behind the interface, and the soundness argument above
// applies to the implementation, not to the interface seam. Add its package
// path here when introducing one. See the NOTE on store.KV in
// internal/store/kv.go.
var instrumentedPkgs = map[string]bool{
	"internal/store":       true,
	"internal/chunk":       true,
	"internal/lsm":         true,
	"internal/buffercache": true,
	"internal/scrub":       true,
	"internal/compact":     true,
	"internal/obs":         true,
	"internal/dep":         true,
	"internal/extent":      true,
	"internal/disk":        true,
}

// rawSyncNames are the sync package identifiers with vsync replacements.
var rawSyncNames = map[string]string{
	"Mutex":   "vsync.Mutex",
	"RWMutex": "vsync.RWMutex",
	"Cond":    "vsync.Cond",
	"NewCond": "vsync.NewCond",
}

// SyncUsage enforces instrumentation completeness in the model-checked
// packages: no raw sync.Mutex/RWMutex/Cond, no bare go statements (threads
// shuttle cannot schedule or join), and no t.Parallel in their tests (the
// vsync runtime is process-global, so parallel tests would overlap a
// model-checking run).
var SyncUsage = &Pass{
	Name: "syncusage",
	Doc:  "instrumented packages must use vsync wrappers, not raw sync/go/t.Parallel",
	Run:  runSyncUsage,
}

func runSyncUsage(u *Unit) []Diagnostic {
	if !instrumentedPkgs[u.RelPath()] {
		return nil
	}
	var out []Diagnostic
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				out = append(out, Diagnostic{
					Pass: "syncusage",
					Pos:  u.Fset.Position(n.Pos()),
					Message: "bare go statement in instrumented package: use vsync.Go so " +
						"shuttle can schedule and join the thread",
				})
			case *ast.Ident:
				obj := u.Info.Uses[n]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				if obj.Pkg().Path() == "sync" {
					if repl, ok := rawSyncNames[obj.Name()]; ok {
						out = append(out, Diagnostic{
							Pass: "syncusage",
							Pos:  u.Fset.Position(n.Pos()),
							Message: fmt.Sprintf("raw sync.%s in instrumented package: use %s so "+
								"shuttle explorations stay sound", obj.Name(), repl),
						})
					}
					return true
				}
				if fn, ok := obj.(*types.Func); ok && obj.Pkg().Path() == "testing" &&
					fn.FullName() == "(*testing.T).Parallel" {
					out = append(out, Diagnostic{
						Pass: "syncusage",
						Pos:  u.Fset.Position(n.Pos()),
						Message: "t.Parallel in an instrumented package's tests: the vsync " +
							"runtime is process-global, so parallel tests can overlap and " +
							"corrupt a model-checking run",
					})
				}
			}
			return true
		})
	}
	return out
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the intraprocedural half of the flow-aware engine: a
// defer-aware walker that tracks vsync lock state across branches, loops,
// switches, selects, and early returns, and reports what it sees through
// hooks. lockorder and unlockpath are thin consumers of the same walk.
//
// The walk is a structural abstract interpretation, not a full CFG: each
// statement maps an input lock state to an output state, branch merges are
// pointwise joins (held on one path only becomes "maybe held"), and goto is
// the one construct handled by giving up on the path (no exit check). Func
// literals are separate walks with an empty entry state.

// heldLock is one tracked lock in the walker state.
type heldLock struct {
	Ref  LockRef
	Pos  token.Pos // acquisition site
	Read bool      // read-locked (RLock) rather than exclusive
	// Deferred: a matching deferred unlock is registered, so the release
	// obligation is met on every exit from here on.
	Deferred bool
	// Maybe: held on some but not all merged paths.
	Maybe bool
}

// flowState is the walker's per-path state: the locks currently held, in
// acquisition order, plus whether this path has already exited.
type flowState struct {
	held        []heldLock
	unreachable bool
}

func (s flowState) clone() flowState {
	return flowState{held: append([]heldLock(nil), s.held...), unreachable: s.unreachable}
}

func (s *flowState) find(instance string) int {
	for i := range s.held {
		if s.held[i].Ref.Instance == instance {
			return i
		}
	}
	return -1
}

// findType is the fallback for unlocks whose instance key does not match
// any held entry (e.g. re-derived through a differently rooted expression):
// match by type-level key instead.
func (s *flowState) findType(typeKey string) int {
	for i := range s.held {
		if s.held[i].Ref.Type == typeKey {
			return i
		}
	}
	return -1
}

func (s *flowState) remove(i int) {
	s.held = append(s.held[:i:i], s.held[i+1:]...)
}

// mergeStates joins two branch outcomes.
func mergeStates(a, b flowState) flowState {
	if a.unreachable {
		return b
	}
	if b.unreachable {
		return a
	}
	out := flowState{}
	inB := make(map[string]int, len(b.held))
	for i := range b.held {
		inB[b.held[i].Ref.Instance] = i
	}
	seen := make(map[string]bool, len(a.held))
	for _, ha := range a.held {
		seen[ha.Ref.Instance] = true
		if j, ok := inB[ha.Ref.Instance]; ok {
			hb := b.held[j]
			m := ha
			m.Maybe = ha.Maybe || hb.Maybe
			m.Deferred = ha.Deferred && hb.Deferred
			out.held = append(out.held, m)
		} else {
			m := ha
			m.Maybe = true
			out.held = append(out.held, m)
		}
	}
	for _, hb := range b.held {
		if !seen[hb.Ref.Instance] {
			m := hb
			m.Maybe = true
			out.held = append(out.held, m)
		}
	}
	return out
}

// flowHooks is the event surface passes implement. All fields are optional.
// Slices passed to hooks are live walker state: consume, don't retain.
type flowHooks struct {
	// acquire fires before a blocking Lock/RLock takes effect, with the
	// locks held at that point (the order-graph edge source set).
	acquire func(pos token.Pos, ref LockRef, read bool, held []heldLock)
	// reacquire fires for a blocking acquire of an instance already held
	// (self-deadlock for exclusive locks).
	reacquire func(pos token.Pos, ref LockRef, prev heldLock)
	// badRelease fires for an Unlock/RUnlock whose mode does not match how
	// the lock is held (prev is the held entry).
	badRelease func(pos token.Pos, ref LockRef, prev heldLock, read bool)
	// blocking fires for a direct potentially-blocking operation: channel
	// send/receive, select without default, range over a channel, disk.Sync.
	blocking func(pos token.Pos, what string, held []heldLock)
	// condWait fires for (*vsync.Cond).Wait with the current held set.
	condWait func(pos token.Pos, cond LockRef, held []heldLock)
	// call fires for each resolved module callee at a call site.
	call func(pos token.Pos, callee *FuncInfo, held []heldLock)
	// exit fires at every return, panic, and reachable end of body.
	exit func(pos token.Pos, kind string, held []heldLock)
	// loopRepeat fires when a loop iteration ends holding locks (without a
	// registered deferred unlock) that were not held at loop entry.
	loopRepeat func(pos token.Pos, leaked []heldLock)
}

// breakable is one enclosing construct a break (and for loops, continue)
// can target.
type breakable struct {
	label     string
	isLoop    bool
	breaks    []flowState
	continues []flowState
}

type flowWalker struct {
	p            *Program
	u            *Unit
	fi           *FuncInfo
	h            flowHooks
	stack        []*breakable
	pendingLabel string
	// suppressChan temporarily disables chan-op blocking events (select
	// comm clauses report once via the select itself).
	suppressChan bool
}

// walkFunc runs the lock-state walk over one function (or literal) node.
func walkFunc(p *Program, fi *FuncInfo, h flowHooks) {
	body := fi.Body()
	if body == nil {
		return
	}
	w := &flowWalker{p: p, u: fi.Unit, fi: fi, h: h}
	out := w.stmt(body, flowState{})
	if !out.unreachable && h.exit != nil {
		h.exit(body.Rbrace, "end of function", out.held)
	}
}

func (w *flowWalker) stmt(s ast.Stmt, st flowState) flowState {
	if st.unreachable || s == nil {
		return st
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			st = w.stmt(inner, st)
		}
		return st
	case *ast.ExprStmt:
		return w.expr(s.X, st)
	case *ast.SendStmt:
		st = w.expr(s.Chan, st)
		st = w.expr(s.Value, st)
		if !w.suppressChan && w.h.blocking != nil {
			w.h.blocking(s.Arrow, "channel send", st.held)
		}
		return st
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			st = w.expr(e, st)
		}
		for _, e := range s.Lhs {
			st = w.expr(e, st)
		}
		return st
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						st = w.expr(e, st)
					}
				}
			}
		}
		return st
	case *ast.IncDecStmt:
		return w.expr(s.X, st)
	case *ast.DeferStmt:
		return w.deferStmt(s, st)
	case *ast.GoStmt:
		// The spawned body is its own node with an empty entry state; the
		// go statement itself does not block.
		for _, arg := range s.Call.Args {
			st = w.expr(arg, st)
		}
		return st
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			st = w.expr(e, st)
		}
		if w.h.exit != nil {
			w.h.exit(s.Return, "return", st.held)
		}
		st.unreachable = true
		return st
	case *ast.IfStmt:
		return w.ifStmt(s, st)
	case *ast.ForStmt:
		return w.forStmt(s, st)
	case *ast.RangeStmt:
		return w.rangeStmt(s, st)
	case *ast.SwitchStmt:
		return w.switchStmt(s, st)
	case *ast.TypeSwitchStmt:
		return w.typeSwitchStmt(s, st)
	case *ast.SelectStmt:
		return w.selectStmt(s, st)
	case *ast.BranchStmt:
		return w.branchStmt(s, st)
	case *ast.LabeledStmt:
		w.pendingLabel = s.Label.Name
		return w.stmt(s.Stmt, st)
	case *ast.EmptyStmt:
		return st
	default:
		return st
	}
}

// expr scans an expression for lock operations, calls, receives, and
// panics, in source order, without descending into func literals.
func (w *flowWalker) expr(e ast.Expr, st flowState) flowState {
	if e == nil {
		return st
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !w.suppressChan && w.h.blocking != nil {
				w.h.blocking(n.OpPos, "channel receive", st.held)
			}
		case *ast.CallExpr:
			st = w.call(n, st)
			// The call's own Fun/Args still get visited for nested
			// receives and calls; lock ops resolved here are plain
			// selector chains that classify as nothing further down.
		}
		return true
	})
	return st
}

// call interprets one call expression against the current state.
func (w *flowWalker) call(call *ast.CallExpr, st flowState) flowState {
	if op, ref := vsyncLockOp(w.u, call); op != lockOpNone {
		return w.lockCall(call.Pos(), op, ref, st)
	}
	// Builtin panic exits the function with locks as they stand.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := w.u.Info.Uses[id].(*types.Builtin); isBuiltin {
			if w.h.exit != nil {
				w.h.exit(call.Pos(), "panic", st.held)
			}
			st.unreachable = true
			return st
		}
	}
	if callee := staticCallee(w.u, call); callee != nil && isDiskMethod(w.u.ModulePath, callee, "Sync") {
		if w.h.blocking != nil {
			w.h.blocking(call.Pos(), "disk.Sync", st.held)
		}
		return st
	}
	if w.h.call != nil {
		for _, fi := range w.p.CalleesOf(w.u, call) {
			w.h.call(call.Pos(), fi, st.held)
		}
	}
	return st
}

// lockCall applies a vsync Mutex/RWMutex/Cond operation to the state.
func (w *flowWalker) lockCall(pos token.Pos, op lockOpKind, ref LockRef, st flowState) flowState {
	switch op {
	case lockOpLock, lockOpRLock:
		read := op == lockOpRLock
		if i := st.find(ref.Instance); i >= 0 {
			// Re-acquiring a read lock is merely inadvisable; re-acquiring
			// anything held exclusively (or upgrading) self-deadlocks.
			if !(read && st.held[i].Read) && w.h.reacquire != nil {
				w.h.reacquire(pos, ref, st.held[i])
			}
			return st
		}
		if w.h.acquire != nil {
			w.h.acquire(pos, ref, read, st.held)
		}
		st.held = append(st.held, heldLock{Ref: ref, Pos: pos, Read: read})
	case lockOpTryLock:
		// A bare TryLock (outside the `if mu.TryLock()` form handled by
		// ifStmt) conveys no path information; it neither blocks nor is
		// known to succeed, so the state is unchanged.
	case lockOpUnlock, lockOpRUnlock:
		read := op == lockOpRUnlock
		i := st.find(ref.Instance)
		if i < 0 {
			i = st.findType(ref.Type)
		}
		if i < 0 {
			// Unlock of a lock this function did not acquire: the caller
			// holds it (the *Locked convention / lock passing). No
			// intraprocedural obligation to track.
			return st
		}
		if st.held[i].Read != read && w.h.badRelease != nil {
			w.h.badRelease(pos, ref, st.held[i], read)
		}
		st.remove(i)
	case lockOpCondWait:
		if w.h.condWait != nil {
			w.h.condWait(pos, ref, st.held)
		}
	case lockOpCondSignal:
	}
	return st
}

// deferStmt registers deferred releases: `defer mu.Unlock()` directly, and
// unlocks inside a deferred func literal.
func (w *flowWalker) deferStmt(s *ast.DeferStmt, st flowState) flowState {
	for _, arg := range s.Call.Args {
		st = w.expr(arg, st)
	}
	markDeferred := func(ref LockRef) {
		i := st.find(ref.Instance)
		if i < 0 {
			i = st.findType(ref.Type)
		}
		if i >= 0 {
			st.held[i].Deferred = true
		}
	}
	if op, ref := vsyncLockOp(w.u, s.Call); op == lockOpUnlock || op == lockOpRUnlock {
		markDeferred(ref)
		return st
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(lit) {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if op, ref := vsyncLockOp(w.u, call); op == lockOpUnlock || op == lockOpRUnlock {
					markDeferred(ref)
				}
			}
			return true
		})
	}
	return st
}

// tryLockCond recognizes `if mu.TryLock()` / `if !mu.TryLock()` /
// `if ok := mu.TryLock(); ok` and returns the lock plus whether the
// true-branch is the holding one.
func (w *flowWalker) tryLockCond(init ast.Stmt, cond ast.Expr) (ref LockRef, holdOnTrue, ok bool) {
	holdOnTrue = true
	e := ast.Unparen(cond)
	if un, isNot := e.(*ast.UnaryExpr); isNot && un.Op == token.NOT {
		holdOnTrue = false
		e = ast.Unparen(un.X)
	}
	if call, isCall := e.(*ast.CallExpr); isCall {
		if op, r := vsyncLockOp(w.u, call); op == lockOpTryLock {
			return r, holdOnTrue, true
		}
	}
	if id, isIdent := e.(*ast.Ident); isIdent {
		if as, isAssign := init.(*ast.AssignStmt); isAssign && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if lhs, isLhsIdent := as.Lhs[0].(*ast.Ident); isLhsIdent && lhs.Name == id.Name {
				if call, isCall := as.Rhs[0].(*ast.CallExpr); isCall {
					if op, r := vsyncLockOp(w.u, call); op == lockOpTryLock {
						return r, holdOnTrue, true
					}
				}
			}
		}
	}
	return LockRef{}, false, false
}

func (w *flowWalker) ifStmt(s *ast.IfStmt, st flowState) flowState {
	w.pendingLabel = ""
	st = w.stmt(s.Init, st)
	tryRef, holdOnTrue, isTry := w.tryLockCond(s.Init, s.Cond)
	if !isTry {
		st = w.expr(s.Cond, st)
	}
	thenSt, elseSt := st.clone(), st.clone()
	if isTry {
		holding := &thenSt
		if !holdOnTrue {
			holding = &elseSt
		}
		holding.held = append(holding.held, heldLock{Ref: tryRef, Pos: s.Cond.Pos()})
	}
	thenOut := w.stmt(s.Body, thenSt)
	elseOut := elseSt
	if s.Else != nil {
		elseOut = w.stmt(s.Else, elseSt)
	}
	return mergeStates(thenOut, elseOut)
}

func (w *flowWalker) pushBreakable(isLoop bool) *breakable {
	b := &breakable{label: w.pendingLabel, isLoop: isLoop}
	w.pendingLabel = ""
	w.stack = append(w.stack, b)
	return b
}

func (w *flowWalker) popBreakable() {
	w.stack = w.stack[:len(w.stack)-1]
}

// checkLoopRepeat compares a loop-iteration end state against the loop
// entry state and reports net acquisitions that will be held into the next
// iteration.
func (w *flowWalker) checkLoopRepeat(pos token.Pos, entry, end flowState) {
	if end.unreachable || w.h.loopRepeat == nil {
		return
	}
	var leaked []heldLock
	for _, h := range end.held {
		if h.Deferred || h.Maybe {
			continue
		}
		if entry.find(h.Ref.Instance) < 0 {
			leaked = append(leaked, h)
		}
	}
	if len(leaked) > 0 {
		w.h.loopRepeat(pos, leaked)
	}
}

func (w *flowWalker) forStmt(s *ast.ForStmt, st flowState) flowState {
	st = w.stmt(s.Init, st)
	st = w.expr(s.Cond, st)
	entry := st.clone()
	b := w.pushBreakable(true)
	bodyOut := w.stmt(s.Body, entry.clone())
	for _, c := range b.continues {
		bodyOut = mergeStates(bodyOut, c)
	}
	bodyOut = w.stmt(s.Post, bodyOut)
	if !bodyOut.unreachable {
		bodyOut = w.expr(s.Cond, bodyOut)
	}
	w.popBreakable()
	w.checkLoopRepeat(s.For, entry, bodyOut)
	var after flowState
	if s.Cond == nil {
		// `for {}`: only breaks exit the loop.
		after = flowState{unreachable: true}
	} else {
		after = mergeStates(entry, bodyOut)
	}
	for _, br := range b.breaks {
		after = mergeStates(after, br)
	}
	return after
}

func (w *flowWalker) rangeStmt(s *ast.RangeStmt, st flowState) flowState {
	st = w.expr(s.X, st)
	if tv, ok := w.u.Info.Types[s.X]; ok && tv.Type != nil {
		if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
			if !w.suppressChan && w.h.blocking != nil {
				w.h.blocking(s.For, "range over channel", st.held)
			}
		}
	}
	entry := st.clone()
	b := w.pushBreakable(true)
	bodyOut := w.stmt(s.Body, entry.clone())
	for _, c := range b.continues {
		bodyOut = mergeStates(bodyOut, c)
	}
	w.popBreakable()
	w.checkLoopRepeat(s.For, entry, bodyOut)
	after := mergeStates(entry, bodyOut)
	for _, br := range b.breaks {
		after = mergeStates(after, br)
	}
	return after
}

// caseBodies walks switch/select case bodies from a shared entry state and
// merges the outcomes (plus fallthrough chaining for expression switches).
func (w *flowWalker) switchStmt(s *ast.SwitchStmt, st flowState) flowState {
	w.pendingLabel = ""
	st = w.stmt(s.Init, st)
	st = w.expr(s.Tag, st)
	b := w.pushBreakable(false)
	after := flowState{unreachable: true}
	hasDefault := false
	carry := flowState{unreachable: true} // fallthrough state from previous case
	for _, clause := range s.Body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		caseSt := st.clone()
		for _, e := range cc.List {
			caseSt = w.expr(e, caseSt)
		}
		caseSt = mergeStates(caseSt, carry)
		carry = flowState{unreachable: true}
		fellThrough := false
		for _, inner := range cc.Body {
			if br, ok := inner.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fellThrough = true
				break
			}
			caseSt = w.stmt(inner, caseSt)
		}
		if fellThrough {
			carry = caseSt
			continue
		}
		after = mergeStates(after, caseSt)
	}
	w.popBreakable()
	if !hasDefault {
		after = mergeStates(after, st)
	}
	for _, br := range b.breaks {
		after = mergeStates(after, br)
	}
	return after
}

func (w *flowWalker) typeSwitchStmt(s *ast.TypeSwitchStmt, st flowState) flowState {
	w.pendingLabel = ""
	st = w.stmt(s.Init, st)
	st = w.stmt(s.Assign, st)
	b := w.pushBreakable(false)
	after := flowState{unreachable: true}
	hasDefault := false
	for _, clause := range s.Body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		caseSt := st.clone()
		for _, inner := range cc.Body {
			caseSt = w.stmt(inner, caseSt)
		}
		after = mergeStates(after, caseSt)
	}
	w.popBreakable()
	if !hasDefault {
		after = mergeStates(after, st)
	}
	for _, br := range b.breaks {
		after = mergeStates(after, br)
	}
	return after
}

func (w *flowWalker) selectStmt(s *ast.SelectStmt, st flowState) flowState {
	w.pendingLabel = ""
	hasDefault := false
	for _, clause := range s.Body.List {
		if clause.(*ast.CommClause).Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault && w.h.blocking != nil {
		w.h.blocking(s.Select, "select", st.held)
	}
	b := w.pushBreakable(false)
	after := flowState{unreachable: true}
	for _, clause := range s.Body.List {
		cc := clause.(*ast.CommClause)
		caseSt := st.clone()
		// The comm op is the select's own blocking point, already reported
		// once above — don't re-report each arm.
		w.suppressChan = true
		caseSt = w.stmt(cc.Comm, caseSt)
		w.suppressChan = false
		for _, inner := range cc.Body {
			caseSt = w.stmt(inner, caseSt)
		}
		after = mergeStates(after, caseSt)
	}
	w.popBreakable()
	for _, br := range b.breaks {
		after = mergeStates(after, br)
	}
	return after
}

func (w *flowWalker) branchStmt(s *ast.BranchStmt, st flowState) flowState {
	target := func(needLoop bool) *breakable {
		for i := len(w.stack) - 1; i >= 0; i-- {
			b := w.stack[i]
			if needLoop && !b.isLoop {
				continue
			}
			if s.Label == nil || b.label == s.Label.Name {
				return b
			}
		}
		return nil
	}
	switch s.Tok {
	case token.BREAK:
		if b := target(false); b != nil {
			b.breaks = append(b.breaks, st.clone())
		}
		st.unreachable = true
	case token.CONTINUE:
		if b := target(true); b != nil {
			b.continues = append(b.continues, st.clone())
		}
		st.unreachable = true
	case token.GOTO:
		// Conservatively abandon the path: no exit check, no merge.
		st.unreachable = true
	case token.FALLTHROUGH:
		// Handled structurally by switchStmt.
	}
	return st
}

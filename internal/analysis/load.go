package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked analysis target: a package's source files plus
// its in-package test files, or a package's external (_test-suffixed
// package) test files. Passes scope themselves by RelPath.
type Unit struct {
	// Path is the package's import path (for an external test unit, the
	// import path of the package under test).
	Path string
	// ModulePath is the enclosing module's path.
	ModulePath string
	// XTest marks an external test unit (package foo_test files).
	XTest bool
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// RelPath returns the unit's path relative to the module root ("" for the
// module root package itself).
func (u *Unit) RelPath() string {
	if u.Path == u.ModulePath {
		return ""
	}
	return strings.TrimPrefix(u.Path, u.ModulePath+"/")
}

// Config describes where a load finds source.
type Config struct {
	// ModuleRoot is the absolute directory containing go.mod. Empty for
	// overlay-only loads (fixture tests).
	ModuleRoot string
	// ModulePath overrides the module path from go.mod; required when
	// ModuleRoot is empty.
	ModulePath string
	// Overlay maps import paths to in-memory file sets (file name →
	// source). Overlay packages shadow on-disk ones. Fixture tests use
	// this to compile probe packages without touching the tree.
	Overlay map[string]map[string]string
}

// LoadModule loads patterns from the module rooted at root with no overlay.
func LoadModule(root string, patterns ...string) ([]*Unit, error) {
	return Load(Config{ModuleRoot: root}, patterns...)
}

// Load type-checks the packages matched by patterns and returns one Unit
// per package (plus one per external test package found alongside it).
// Supported patterns: "./..." for every package in the module, a
// "./"-prefixed directory relative to the module root, or a full import
// path. Stdlib dependencies are type-checked from GOROOT source; module
// dependencies are resolved inside the module, so no go command and no
// export data are needed.
func Load(cfg Config, patterns ...string) ([]*Unit, error) {
	ld := &loader{
		cfg:     cfg,
		fset:    token.NewFileSet(),
		exports: make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)
	if cfg.ModuleRoot != "" {
		abs, err := filepath.Abs(cfg.ModuleRoot)
		if err != nil {
			return nil, err
		}
		ld.cfg.ModuleRoot = abs
		if ld.cfg.ModulePath == "" {
			mp, err := modulePath(filepath.Join(abs, "go.mod"))
			if err != nil {
				return nil, err
			}
			ld.cfg.ModulePath = mp
		}
	}
	if ld.cfg.ModulePath == "" {
		return nil, fmt.Errorf("analysis: Config needs ModuleRoot or ModulePath")
	}

	paths, err := ld.expand(patterns)
	if err != nil {
		return nil, err
	}
	var units []*Unit
	for _, p := range paths {
		us, err := ld.units(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		units = append(units, us...)
	}
	return units, nil
}

type loader struct {
	cfg     Config
	fset    *token.FileSet
	std     types.Importer
	exports map[string]*types.Package // import-resolution cache (no test files)
	loading map[string]bool           // cycle guard
}

// modulePath reads the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// expand resolves patterns into a sorted list of import paths.
func (l *loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			for p := range l.cfg.Overlay {
				add(p)
			}
			if l.cfg.ModuleRoot != "" {
				dirs, err := l.walkModule()
				if err != nil {
					return nil, err
				}
				for _, p := range dirs {
					add(p)
				}
			}
		case strings.HasPrefix(pat, "./"):
			rel := filepath.ToSlash(strings.TrimPrefix(pat, "./"))
			if rel == "" || rel == "." {
				add(l.cfg.ModulePath)
			} else {
				add(l.cfg.ModulePath + "/" + rel)
			}
		default:
			add(pat)
		}
	}
	sort.Strings(out)
	return out, nil
}

// walkModule lists every package directory in the module, skipping hidden
// directories, testdata, and vendor, and requiring at least one .go file.
func (l *loader) walkModule() ([]string, error) {
	var out []string
	root := l.cfg.ModuleRoot
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.cfg.ModulePath)
		} else {
			out = append(out, l.cfg.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}

// pkgFiles is a package directory parsed and classified.
type pkgFiles struct {
	src    []*ast.File // non-test files
	intest []*ast.File // _test.go files in the package itself
	xtest  []*ast.File // _test.go files in package <name>_test
}

// parseDir parses the files backing an import path — overlay first, then
// the module directory — classifying them into source, in-package test,
// and external test files. On-disk files go through go/build's MatchFile so
// build constraints (e.g. //go:build race) select the default build, same
// as `go vet` with no tags.
func (l *loader) parseDir(path string) (*pkgFiles, error) {
	const mode = parser.ParseComments | parser.SkipObjectResolution
	pf := &pkgFiles{}
	classify := func(f *ast.File, fileName string) {
		switch {
		case strings.HasSuffix(f.Name.Name, "_test"):
			pf.xtest = append(pf.xtest, f)
		case strings.HasSuffix(fileName, "_test.go"):
			pf.intest = append(pf.intest, f)
		default:
			pf.src = append(pf.src, f)
		}
	}
	if ov, ok := l.cfg.Overlay[path]; ok {
		names := make([]string, 0, len(ov))
		for name := range ov {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(l.fset, filepath.Join(path, name), ov[name], mode)
			if err != nil {
				return nil, err
			}
			classify(f, name)
		}
		return pf, nil
	}
	if l.cfg.ModuleRoot == "" {
		return nil, fmt.Errorf("package %s not in overlay and no module root configured", path)
	}
	dir := l.cfg.ModuleRoot
	if path != l.cfg.ModulePath {
		rel := strings.TrimPrefix(path, l.cfg.ModulePath+"/")
		if rel == path {
			return nil, fmt.Errorf("import path %s is outside module %s", path, l.cfg.ModulePath)
		}
		dir = filepath.Join(dir, filepath.FromSlash(rel))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := ctxt.MatchFile(dir, name); err != nil {
			return nil, err
		} else if !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		classify(f, name)
	}
	return pf, nil
}

// Import implements types.Importer. Module-internal and overlay paths are
// type-checked from source inside this loader (test files excluded, the
// same view an importing package compiles against); everything else is
// delegated to the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	_, inOverlay := l.cfg.Overlay[path]
	inModule := path == l.cfg.ModulePath || strings.HasPrefix(path, l.cfg.ModulePath+"/")
	if !inOverlay && !inModule {
		return l.std.Import(path)
	}
	if pkg, ok := l.exports[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	pf, err := l.parseDir(path)
	if err != nil {
		return nil, err
	}
	if len(pf.src) == 0 {
		return nil, fmt.Errorf("package %s has no non-test files", path)
	}
	pkg, _, err := l.check(path, pf.src, nil)
	if err != nil {
		return nil, err
	}
	l.exports[path] = pkg
	return pkg, nil
}

// check type-checks files as one package. info may be nil for export-only
// checks.
func (l *loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, *types.Info, error) {
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, e := range errs {
			msgs = append(msgs, e.Error())
		}
		return nil, nil, fmt.Errorf("type errors:\n\t%s", strings.Join(msgs, "\n\t"))
	}
	return pkg, info, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// units builds the analysis units for one import path: the package with its
// in-package test files, and, if present, the external test package.
func (l *loader) units(path string) ([]*Unit, error) {
	pf, err := l.parseDir(path)
	if err != nil {
		return nil, err
	}
	if len(pf.src) == 0 && len(pf.xtest) == 0 && len(pf.intest) == 0 {
		return nil, fmt.Errorf("no Go files for %s", path)
	}
	var units []*Unit
	if len(pf.src)+len(pf.intest) > 0 {
		files := append(append([]*ast.File(nil), pf.src...), pf.intest...)
		info := newInfo()
		pkg, _, err := l.check(path, files, info)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			Path: path, ModulePath: l.cfg.ModulePath,
			Fset: l.fset, Files: files, Pkg: pkg, Info: info,
		})
	}
	if len(pf.xtest) > 0 {
		info := newInfo()
		pkg, _, err := l.check(path+"_test", pf.xtest, info)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{
			Path: path, ModulePath: l.cfg.ModulePath, XTest: true,
			Fset: l.fset, Files: pf.xtest, Pkg: pkg, Info: info,
		})
	}
	return units, nil
}

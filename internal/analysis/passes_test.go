package analysis_test

import (
	"testing"

	"shardstore/internal/analysis"
)

// Each fixture demonstrates at least one true positive per check and one
// //shardlint:allow suppression, compiled in-memory against the overlay —
// no files on disk, no dependence on the real tree's state.

func TestSyncUsageFixture(t *testing.T) {
	runFixture(t, analysis.SyncUsage, "shardstore/internal/store", map[string]string{
		"fix.go": `package store

import "sync"

type wrapped struct {
	mu sync.Mutex // want "raw sync.Mutex"
}

var cond = sync.NewCond(nil) // want "raw sync.NewCond"

func spawn(f func()) {
	var rw sync.RWMutex // want "raw sync.RWMutex"
	_ = rw
	go f() // want "bare go statement"
	//shardlint:allow syncusage metrics flusher runs outside the model-checked surface
	go f()
}
`,
		"fix_test.go": `package store

import "testing"

func TestParallelForbidden(t *testing.T) {
	t.Parallel() // want "t.Parallel in an instrumented package"
}

func TestParallelWaived(t *testing.T) {
	t.Parallel() //shardlint:allow syncusage fixture demonstrating the suppression path
}
`,
	}, nil)
}

// TestSyncUsageOutOfScope checks the pass keys on the package path: the
// identical source outside the instrumented set reports nothing.
func TestSyncUsageOutOfScope(t *testing.T) {
	runFixture(t, analysis.SyncUsage, "shardstore/internal/benchfmt", map[string]string{
		"fix.go": `package benchfmt

import "sync"

type gauge struct {
	mu sync.Mutex
}

func spawn(f func()) { go f() }
`,
	}, nil)
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, analysis.Determinism, "shardstore/internal/core", map[string]string{
		"fix.go": `package core

import (
	"math/rand"
	"time"
)

func timing() time.Duration {
	start := time.Now() // want "time.Now in deterministic package"
	return time.Since(start) // want "time.Since in deterministic package"
}

func deadline() time.Time {
	at := time.Now() //shardlint:allow determinism operator-facing wall-clock deadline, not replayed
	return at
}

func draw() int64 {
	rng := rand.New(rand.NewSource(42))
	n := int64(rng.Intn(10)) // methods on a seeded generator are fine
	return n + rand.Int63() // want "global math/rand.Int63"
}
`,
	}, nil)
}

func TestMapIterFixture(t *testing.T) {
	runFixture(t, analysis.MapIter, "shardstore/internal/model", map[string]string{
		"fix.go": `package model

import (
	"fmt"
	"sort"
)

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // sorted below the loop: not flagged
	}
	sort.Strings(out)
	return out
}

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "appending to out while ranging over a map"
	}
	return out
}

func copyInto(m map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(m))
	for k, v := range m {
		out[k] = append([]byte(nil), v...) // fresh copy into a map slot: not flagged
	}
	return out
}

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside map iteration"
	}
}

func drain(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "channel send inside map iteration"
	}
}

func scratch(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //shardlint:allow mapiter consumed as a set downstream, order never observed
	}
	return out
}

func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
`,
	}, nil)
}

func TestDroppedErrFixture(t *testing.T) {
	fakeDisk := map[string]string{
		"disk.go": `package disk

type Disk struct{}

func New(pages int) (*Disk, error)                    { return &Disk{}, nil }
func (d *Disk) Sync() error                           { return nil }
func (d *Disk) WriteAt(off int, b []byte) error       { return nil }
func (d *Disk) ReadAt(off int, b []byte) (int, error) { return 0, nil }
func (d *Disk) Pages() int                            { return 0 }
`,
	}
	runFixture(t, analysis.DroppedErr, "shardstore/internal/core", map[string]string{
		"fix.go": `package core

import "shardstore/internal/disk"

func use(d *disk.Disk) int {
	d.Sync()                 // want "Sync discarded"
	_ = d.WriteAt(0, nil)    // want "WriteAt discarded into _"
	_, _ = d.ReadAt(0, nil)  // want "ReadAt discarded into _"
	go d.Sync()              // want "discarded by go statement"
	defer d.Sync()           // want "discarded by defer"
	n, _ := d.ReadAt(0, nil) // want "ReadAt discarded into _"
	//shardlint:allow droppederr crash-injection helper, failure surfaced by the harness verdict
	d.Sync()
	if err := d.Sync(); err != nil { // handled: not flagged
		return 0
	}
	return n + d.Pages()
}
`,
	}, map[string]map[string]string{"shardstore/internal/disk": fakeDisk})
}

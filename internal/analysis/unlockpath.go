package analysis

import (
	"fmt"
	"go/token"
)

// UnlockPath checks release discipline intraprocedurally: every vsync lock
// a function acquires is released on every return and panic path (defer,
// including deferred closures, honored); no exclusive lock is acquired
// twice on one path; loop iterations do not accumulate locks; and the
// release mode matches the acquisition mode (Unlock vs RUnlock). Locks a
// function releases without acquiring (the *Locked caller-holds
// convention) carry no intraprocedural obligation and are ignored.
var UnlockPath = &Pass{
	Name:      "unlockpath",
	Doc:       "every acquired vsync lock is released on all return/panic paths",
	RunModule: runUnlockPath,
}

func runUnlockPath(p *Program) []Diagnostic {
	var diags []Diagnostic
	walkOne := func(fi *FuncInfo) {
		report := func(pos token.Pos, msg string) {
			diags = append(diags, Diagnostic{
				Pass:    "unlockpath",
				Pos:     fi.Unit.Fset.Position(pos),
				Message: msg,
			})
		}
		hooks := flowHooks{
			exit: func(pos token.Pos, kind string, held []heldLock) {
				for _, h := range held {
					if h.Deferred {
						continue
					}
					acq := fi.Unit.Fset.Position(h.Pos)
					certainty := "is"
					if h.Maybe {
						certainty = "may be"
					}
					report(pos, fmt.Sprintf("%s in %s %s still holding %s (acquired at line %d, no deferred unlock)",
						kind, fi.Name, certainty, h.Ref.Type, acq.Line))
				}
			},
			reacquire: func(pos token.Pos, ref LockRef, prev heldLock) {
				prevPos := fi.Unit.Fset.Position(prev.Pos)
				if prev.Read {
					report(pos, fmt.Sprintf("%s write-locked while read-held since line %d (upgrade self-deadlock)",
						ref.Type, prevPos.Line))
				} else {
					report(pos, fmt.Sprintf("%s acquired again while already held since line %d (self-deadlock)",
						ref.Type, prevPos.Line))
				}
			},
			badRelease: func(pos token.Pos, ref LockRef, prev heldLock, read bool) {
				if read {
					report(pos, fmt.Sprintf("RUnlock of %s, which is held exclusively", ref.Type))
				} else {
					report(pos, fmt.Sprintf("Unlock of %s, which is read-held (want RUnlock)", ref.Type))
				}
			},
			loopRepeat: func(pos token.Pos, leaked []heldLock) {
				for _, h := range leaked {
					acq := fi.Unit.Fset.Position(h.Pos)
					report(pos, fmt.Sprintf("loop iteration ends in %s still holding %s acquired inside the loop (line %d)",
						fi.Name, h.Ref.Type, acq.Line))
				}
			},
		}
		walkFunc(p, fi, hooks)
	}
	for _, fi := range p.Functions() {
		if inFlowScope(fi) {
			walkOne(fi)
		}
	}
	for _, fi := range p.Literals() {
		if inFlowScope(fi) {
			walkOne(fi)
		}
	}
	return diags
}

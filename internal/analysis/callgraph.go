package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the flow-aware engine the lockorder/unlockpath/stagevocab/
// obscomplete passes run on: a static call graph over the whole module
// (direct calls resolved through go/types, dynamic dispatch approximated by
// resolving an interface method to every module type that implements the
// interface), plus per-function effect summaries ("acquires which vsync
// lock", "calls disk.Sync", "performs a channel op", "waits on a cond",
// "reads the clock") closed transitively over the graph. Function values
// and closures passed as arguments are NOT chased (a deliberate
// under-approximation, documented in the package comment); func literals
// are analyzed as their own anonymous nodes instead.

// Program is the module-wide view shared by every flow-aware pass: the
// type-checked units plus the lazily built call graph and summaries, so one
// type-checked load (and one graph) serves all passes.
type Program struct {
	Units      []*Unit
	ModulePath string

	built bool
	// funcs maps every function/method declared in a loaded unit to its
	// node. Func literals get anonymous nodes in lits.
	funcs map[*types.Func]*FuncInfo
	lits  []*FuncInfo
	// order lists decl-backed nodes sorted by position for deterministic
	// iteration.
	order []*FuncInfo
	// condLocks maps a cond's type-level key to the lock key it was built
	// over (via vsync.NewCond(&lock) assignments seen anywhere).
	condLocks map[string]string
	// namedTypes is every named (non-interface) type declared in a loaded
	// unit, for method-set resolution of dynamic calls.
	namedTypes []*types.Named
	// chaCache memoizes interface-method resolutions.
	chaCache map[*types.Func][]*types.Func
}

// NewProgram wraps units; the call graph is built on first use so unit-only
// pass suites pay nothing.
func NewProgram(units []*Unit) *Program {
	mp := ""
	if len(units) > 0 {
		mp = units[0].ModulePath
	}
	return &Program{Units: units, ModulePath: mp}
}

// FuncInfo is one call-graph node: a declared function/method, or an
// anonymous func literal.
type FuncInfo struct {
	Obj  *types.Func   // nil for literals
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Unit *Unit
	Name string // diagnostic display name

	// Calls are the resolved static call sites in this function's body
	// (nested literals excluded — they are their own nodes).
	Calls []CallSite

	// Direct are the effects of this body alone; Closed adds everything
	// reachable through Calls.
	Direct EffectSummary
	Closed EffectSummary
}

// Body returns the function's body block (decl or literal).
func (fi *FuncInfo) Body() *ast.BlockStmt {
	if fi.Decl != nil {
		return fi.Decl.Body
	}
	if fi.Lit != nil {
		return fi.Lit.Body
	}
	return nil
}

// CallSite is one call expression with its resolved callees (more than one
// for a dynamically dispatched interface method).
type CallSite struct {
	Pos     token.Pos
	Callees []*types.Func
	Dynamic bool
}

// EffectSummary is what a function may do, as far as the engine can see.
type EffectSummary struct {
	// Acquires maps each vsync lock (type-level key) the function may
	// acquire to a representative position.
	Acquires map[string]token.Pos
	// MaySync: may call (*disk.Disk).Sync — a blocking device flush.
	MaySync bool
	SyncVia string // call-path hint for diagnostics
	// MayChanOp: may perform a channel send/receive/select.
	MayChanOp bool
	ChanVia   string
	// CondWaits maps each cond (type-level key) the function may Wait on to
	// a call-path hint. Cond.Wait releases the cond's own lock, so callers
	// holding exactly that lock are fine; the identity matters.
	CondWaits map[string]string
	// MayWriteDisk: may call (*disk.Disk).WriteAt.
	MayWriteDisk bool
	// MayReadClock: may read a clock (time.Now/Since or obs Clock.Now).
	MayReadClock bool
}

func (e *EffectSummary) acquire(key string, pos token.Pos) {
	if e.Acquires == nil {
		e.Acquires = make(map[string]token.Pos)
	}
	if _, ok := e.Acquires[key]; !ok {
		e.Acquires[key] = pos
	}
}

func (e *EffectSummary) condWait(condKey, via string) {
	if e.CondWaits == nil {
		e.CondWaits = make(map[string]string)
	}
	if _, ok := e.CondWaits[condKey]; !ok {
		e.CondWaits[condKey] = via
	}
}

// merge folds callee effects (with its display name for the via hints) into
// e, reporting whether anything changed.
func (e *EffectSummary) merge(from *EffectSummary, via string) bool {
	changed := false
	for k, pos := range from.Acquires {
		if _, ok := e.Acquires[k]; !ok {
			e.acquire(k, pos)
			changed = true
		}
	}
	if from.MaySync && !e.MaySync {
		e.MaySync, e.SyncVia, changed = true, viaHint(from.SyncVia, via), true
	}
	if from.MayChanOp && !e.MayChanOp {
		e.MayChanOp, e.ChanVia, changed = true, viaHint(from.ChanVia, via), true
	}
	for condKey, inner := range from.CondWaits {
		if _, ok := e.CondWaits[condKey]; !ok {
			e.condWait(condKey, viaHint(inner, via))
			changed = true
		}
	}
	if from.MayWriteDisk && !e.MayWriteDisk {
		e.MayWriteDisk, changed = true, true
	}
	if from.MayReadClock && !e.MayReadClock {
		e.MayReadClock, changed = true, true
	}
	return changed
}

func viaHint(inner, via string) string {
	if inner == "" {
		return via
	}
	if via == "" {
		return inner
	}
	return via + " -> " + inner
}

// build constructs the call graph and summaries once.
func (p *Program) build() {
	if p.built {
		return
	}
	p.built = true
	p.funcs = make(map[*types.Func]*FuncInfo)
	p.condLocks = make(map[string]string)
	p.chaCache = make(map[*types.Func][]*types.Func)

	// Named types for dynamic dispatch, deterministically ordered.
	for _, u := range p.Units {
		scope := u.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				if _, isIface := named.Underlying().(*types.Interface); !isIface {
					p.namedTypes = append(p.namedTypes, named)
				}
			}
		}
	}
	sort.Slice(p.namedTypes, func(i, j int) bool {
		a, b := p.namedTypes[i].Obj(), p.namedTypes[j].Obj()
		if a.Pkg().Path() != b.Pkg().Path() {
			return a.Pkg().Path() < b.Pkg().Path()
		}
		return a.Name() < b.Name()
	})

	// Nodes for every declared function/method.
	for _, u := range p.Units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Unit: u, Name: funcDisplayName(u, obj)}
				p.funcs[obj] = fi
				p.order = append(p.order, fi)
			}
		}
	}
	sort.Slice(p.order, func(i, j int) bool { return p.order[i].Decl.Pos() < p.order[j].Decl.Pos() })

	// Body scans: direct effects, call sites, cond->lock bindings, and
	// anonymous nodes for func literals.
	for _, fi := range p.order {
		p.scanBody(fi, fi.Decl.Body)
	}

	// Close effects over the graph (literal nodes stay direct-only: their
	// bodies run wherever the value flows, which the engine does not chase).
	for changed := true; changed; {
		changed = false
		for _, fi := range p.order {
			for _, cs := range fi.Calls {
				for _, callee := range cs.Callees {
					cf := p.funcs[callee]
					if cf == nil || cf == fi {
						continue
					}
					if fi.Closed.merge(&cf.Closed, cf.Name) {
						changed = true
					}
				}
			}
		}
	}
}

// scanBody fills fi's direct summary and call sites from body, creating
// anonymous nodes for nested func literals (whose own bodies are skipped
// here and scanned as separate nodes).
func (p *Program) scanBody(fi *FuncInfo, body *ast.BlockStmt) {
	u := fi.Unit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := &FuncInfo{Lit: n, Unit: u, Name: fi.Name + " (func literal)"}
			p.lits = append(p.lits, lit)
			p.scanBody(lit, n.Body)
			return false // literal body is its own node
		case *ast.SendStmt:
			if !fi.Direct.MayChanOp {
				fi.Direct.MayChanOp = true
			}
		case *ast.SelectStmt:
			fi.Direct.MayChanOp = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				fi.Direct.MayChanOp = true
			}
		case *ast.RangeStmt:
			if tv, ok := u.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					fi.Direct.MayChanOp = true
				}
			}
		case *ast.AssignStmt:
			p.recordCondBinding(u, n)
		case *ast.CallExpr:
			p.scanCall(fi, n)
		}
		return true
	})
	fi.Closed = EffectSummary{
		MaySync: fi.Direct.MaySync, SyncVia: fi.Direct.SyncVia,
		MayChanOp: fi.Direct.MayChanOp, ChanVia: fi.Direct.ChanVia,
		MayWriteDisk: fi.Direct.MayWriteDisk,
		MayReadClock: fi.Direct.MayReadClock,
	}
	for k, pos := range fi.Direct.Acquires {
		fi.Closed.acquire(k, pos)
	}
	for k, via := range fi.Direct.CondWaits {
		fi.Closed.condWait(k, via)
	}
}

// scanCall classifies one call expression into the direct summary and the
// call-site list.
func (p *Program) scanCall(fi *FuncInfo, call *ast.CallExpr) {
	u := fi.Unit
	if op, ref := vsyncLockOp(u, call); op != lockOpNone {
		switch op {
		case lockOpLock, lockOpRLock, lockOpTryLock:
			fi.Direct.acquire(ref.Type, call.Pos())
		case lockOpCondWait:
			fi.Direct.condWait(ref.Type, "")
		}
		return
	}
	callee := staticCallee(u, call)
	if callee == nil {
		return
	}
	if isDiskMethod(p.ModulePath, callee, "Sync") {
		fi.Direct.MaySync = true
		return
	}
	if isDiskMethod(p.ModulePath, callee, "WriteAt") {
		fi.Direct.MayWriteDisk = true
		// WriteAt is also a real module function: fall through to record
		// the call edge so closures compose.
	}
	if isClockRead(p.ModulePath, callee) {
		fi.Direct.MayReadClock = true
		return
	}
	if callee.Pkg() == nil || !inModule(p.ModulePath, callee.Pkg().Path()) {
		return // stdlib: no summarized effects beyond the special cases
	}
	if isRuntimePkg(p.ModulePath, callee.Pkg().Path()) {
		// internal/vsync and internal/shuttle are the modeled runtime: their
		// channel machinery implements scheduling, not program communication,
		// so traversing into them would flag every vsync.Go under a lock.
		return
	}
	cs := CallSite{Pos: call.Pos()}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			cs.Dynamic = true
			cs.Callees = p.resolveDynamic(callee)
			fi.Calls = append(fi.Calls, cs)
			return
		}
	}
	cs.Callees = []*types.Func{callee}
	fi.Calls = append(fi.Calls, cs)
}

// resolveDynamic approximates an interface-method call by every method of a
// module-declared type that implements the interface (class-hierarchy
// analysis; conservative over-approximation of real receivers, deliberate
// under-approximation for receivers declared outside the module).
func (p *Program) resolveDynamic(m *types.Func) []*types.Func {
	if out, ok := p.chaCache[m]; ok {
		return out
	}
	var out []*types.Func
	iface, _ := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if iface != nil {
		for _, named := range p.namedTypes {
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
			if cf, ok := obj.(*types.Func); ok {
				if cf.Pkg() != nil && isRuntimePkg(p.ModulePath, cf.Pkg().Path()) {
					continue
				}
				if _, declared := p.funcs[cf]; declared {
					out = append(out, cf)
				}
			}
		}
	}
	p.chaCache[m] = out
	return out
}

// recordCondBinding notices `x = vsync.NewCond(&lock)` and records the
// cond-to-lock association used by the Cond.Wait discipline check.
func (p *Program) recordCondBinding(u *Unit, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			continue
		}
		callee := staticCallee(u, call)
		if callee == nil || callee.Name() != "NewCond" || !isVsyncPkg(u.ModulePath, callee.Pkg()) {
			continue
		}
		arg := call.Args[0]
		if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
			arg = un.X
		}
		lockRef := lockRefOf(u, arg)
		condRef := lockRefOf(u, as.Lhs[i])
		if lockRef.Type != "" && condRef.Type != "" {
			p.condLocks[condRef.Type] = lockRef.Type
		}
	}
}

// CondLock returns the lock key a cond (by type-level key) was built over.
func (p *Program) CondLock(condKey string) string {
	p.build()
	return p.condLocks[condKey]
}

// FuncOf returns the node for a declared function, or nil.
func (p *Program) FuncOf(obj *types.Func) *FuncInfo {
	p.build()
	return p.funcs[obj]
}

// Functions returns every decl-backed node in source order.
func (p *Program) Functions() []*FuncInfo {
	p.build()
	return p.order
}

// Literals returns the anonymous func-literal nodes in creation order.
func (p *Program) Literals() []*FuncInfo {
	p.build()
	return p.lits
}

// --- lock identification -------------------------------------------------

type lockOpKind int

const (
	lockOpNone lockOpKind = iota
	lockOpLock
	lockOpTryLock
	lockOpUnlock
	lockOpRLock
	lockOpRUnlock
	lockOpCondWait
	lockOpCondSignal
)

// LockRef names one lock (or cond) two ways: Type is the type-level key
// ("internal/dep.Scheduler.mu") shared by every instance — the granularity
// of the acquisition-order graph — and Instance distinguishes different
// variables of the same type within one function, so locking a.mu and b.mu
// is not mistaken for a recursive acquisition.
type LockRef struct {
	Type     string
	Instance string
}

// vsyncLockOp classifies call as an operation on a vsync.Mutex/RWMutex/Cond
// and resolves which lock it is about.
func vsyncLockOp(u *Unit, call *ast.CallExpr) (lockOpKind, LockRef) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOpNone, LockRef{}
	}
	fn := methodObj(u, sel)
	if fn == nil {
		return lockOpNone, LockRef{}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockOpNone, LockRef{}
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || !isVsyncPkg(u.ModulePath, named.Obj().Pkg()) {
		return lockOpNone, LockRef{}
	}
	var kind lockOpKind
	switch named.Obj().Name() {
	case "Mutex":
		switch fn.Name() {
		case "Lock":
			kind = lockOpLock
		case "TryLock":
			kind = lockOpTryLock
		case "Unlock":
			kind = lockOpUnlock
		}
	case "RWMutex":
		switch fn.Name() {
		case "Lock":
			kind = lockOpLock
		case "Unlock":
			kind = lockOpUnlock
		case "RLock":
			kind = lockOpRLock
		case "RUnlock":
			kind = lockOpRUnlock
		}
	case "Cond":
		switch fn.Name() {
		case "Wait":
			kind = lockOpCondWait
		case "Signal", "Broadcast":
			kind = lockOpCondSignal
		}
	}
	if kind == lockOpNone {
		return lockOpNone, LockRef{}
	}
	return kind, lockRefOf(u, sel.X)
}

// lockRefOf derives the two-level key for a lock-valued expression.
func lockRefOf(u *Unit, expr ast.Expr) LockRef {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if s, ok := u.Info.Selections[e]; ok {
			recv := s.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			owner := ""
			if named, ok := recv.(*types.Named); ok {
				owner = relPkgPath(u.ModulePath, named.Obj().Pkg()) + "." + named.Obj().Name()
			} else if s.Obj().Pkg() != nil {
				owner = relPkgPath(u.ModulePath, s.Obj().Pkg()) + ".?"
			}
			typeKey := owner + "." + s.Obj().Name()
			return LockRef{Type: typeKey, Instance: typeKey + "@" + baseIdentKey(u, e.X)}
		}
		// Qualified package-level var: pkg.Var
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := u.Info.Uses[id].(*types.PkgName); isPkg {
				if obj := u.Info.Uses[e.Sel]; obj != nil && obj.Pkg() != nil {
					k := relPkgPath(u.ModulePath, obj.Pkg()) + "." + obj.Name()
					return LockRef{Type: k, Instance: k}
				}
			}
		}
	case *ast.Ident:
		if obj := u.Info.Uses[e]; obj != nil {
			pkg := ""
			if obj.Pkg() != nil {
				pkg = relPkgPath(u.ModulePath, obj.Pkg())
			}
			if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				k := pkg + "." + obj.Name()
				return LockRef{Type: k, Instance: k}
			}
			// Local variable: type key carries the variable name, instance
			// the declaring position (distinct locals stay distinct).
			k := pkg + ".local." + obj.Name()
			return LockRef{Type: k, Instance: fmt.Sprintf("%s@%d", k, obj.Pos())}
		}
	case *ast.ParenExpr:
		return lockRefOf(u, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return lockRefOf(u, e.X)
		}
	}
	return LockRef{}
}

// baseIdentKey names the root of a selector chain so x.mu and y.mu get
// distinct instance keys. Non-ident roots fall back to the expression
// position (each such site its own instance — conservative for recursion
// detection, harmless for release matching thanks to the type-key
// fallback in the flow walker).
func baseIdentKey(u *Unit, expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.Ident:
			if obj := u.Info.Uses[e]; obj != nil {
				return fmt.Sprintf("%s#%d", e.Name, obj.Pos())
			}
			return e.Name
		default:
			return fmt.Sprintf("expr#%d", expr.Pos())
		}
	}
}

// --- shared type/object helpers ------------------------------------------

// methodObj resolves the *types.Func a selector call refers to (method via
// Selections, package function via Uses).
func methodObj(u *Unit, sel *ast.SelectorExpr) *types.Func {
	if s, ok := u.Info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	if fn, ok := u.Info.Uses[sel.Sel].(*types.Func); ok {
		return fn
	}
	return nil
}

// staticCallee resolves call's target function object, nil for calls
// through function values, built-ins, and type conversions.
func staticCallee(u *Unit, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := u.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		return methodObj(u, fun)
	}
	return nil
}

func inModule(modulePath, pkgPath string) bool {
	return pkgPath == modulePath || strings.HasPrefix(pkgPath, modulePath+"/")
}

func relPkgPath(modulePath string, pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	if pkg.Path() == modulePath {
		return "."
	}
	return strings.TrimPrefix(pkg.Path(), modulePath+"/")
}

func isVsyncPkg(modulePath string, pkg *types.Package) bool {
	return pkg != nil && pkg.Path() == modulePath+"/internal/vsync"
}

// isRuntimePkg marks the modeled-runtime layer the call graph does not
// traverse into.
func isRuntimePkg(modulePath, pkgPath string) bool {
	return pkgPath == modulePath+"/internal/vsync" || pkgPath == modulePath+"/internal/shuttle"
}

// CalleesOf resolves a call expression to its module-declared callee nodes
// (one for a static call, several for a dynamically dispatched interface
// method, none for function values, stdlib, and runtime-layer calls). Used
// by the flow walker to consult callee summaries at a call site.
func (p *Program) CalleesOf(u *Unit, call *ast.CallExpr) []*FuncInfo {
	p.build()
	callee := staticCallee(u, call)
	if callee == nil || callee.Pkg() == nil {
		return nil
	}
	if !inModule(p.ModulePath, callee.Pkg().Path()) || isRuntimePkg(p.ModulePath, callee.Pkg().Path()) {
		return nil
	}
	var out []*FuncInfo
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			for _, cf := range p.resolveDynamic(callee) {
				if fi := p.funcs[cf]; fi != nil {
					out = append(out, fi)
				}
			}
			return out
		}
	}
	if fi := p.funcs[callee]; fi != nil {
		out = append(out, fi)
	}
	return out
}

// isDiskMethod reports whether fn is (*disk.Disk).<name>.
func isDiskMethod(modulePath string, fn *types.Func, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != modulePath+"/internal/disk" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Disk"
}

// isClockRead reports whether fn reads a clock: time.Now/time.Since, or a
// Now method on the module's obs clock surfaces.
func isClockRead(modulePath string, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "time" && (fn.Name() == "Now" || fn.Name() == "Since") {
		return true
	}
	if fn.Pkg().Path() == modulePath+"/internal/obs" && fn.Name() == "Now" {
		return true
	}
	return false
}

// funcDisplayName renders "pkg.Func" / "pkg.(*Type).Method" for diagnostics.
func funcDisplayName(u *Unit, fn *types.Func) string {
	pkg := relPkgPath(u.ModulePath, fn.Pkg())
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		star := ""
		if ptr, isPtr := recv.(*types.Pointer); isPtr {
			recv, star = ptr.Elem(), "*"
		}
		if named, isNamed := recv.(*types.Named); isNamed {
			return fmt.Sprintf("%s.(%s%s).%s", pkg, star, named.Obj().Name(), fn.Name())
		}
	}
	return pkg + "." + fn.Name()
}

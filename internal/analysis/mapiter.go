package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MapIter flags map iterations in deterministic packages whose order can
// leak into harness-visible state: bodies that append to a slice (unless
// the slice is sorted later in the same function), write output, or send
// on a channel. Go randomizes map iteration order per run, so any of these
// makes two replays of the same seed diverge — exactly the bit-identical
// re-execution that minimization depends on (§4.1).
//
// Order-insensitive bodies — counters, min/max folds, writes into another
// map, deletes — are not flagged.
var MapIter = &Pass{
	Name: "mapiter",
	Doc:  "map iteration order must not leak into slices, output, or channels",
	Run:  runMapIter,
}

func runMapIter(u *Unit) []Diagnostic {
	if !deterministicPkgs[u.RelPath()] {
		return nil
	}
	var out []Diagnostic
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					out = append(out, checkFuncMapIter(u, n.Body)...)
				}
			case *ast.FuncLit:
				out = append(out, checkFuncMapIter(u, n.Body)...)
			}
			return true
		})
	}
	return out
}

// inspectShallow walks n without descending into nested function literals,
// which are visited as their own functions by runMapIter.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// sortCall is one call to a sort/slices ordering function, with the
// objects and expression strings appearing in its arguments.
type sortCall struct {
	pos  int // token.Pos as int, for "after the loop" ordering
	objs map[types.Object]bool
	strs map[string]bool
}

func checkFuncMapIter(u *Unit, body *ast.BlockStmt) []Diagnostic {
	var sorts []sortCall
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := u.Info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		isSort := (obj.Pkg().Path() == "sort" && (obj.Name() == "Strings" || obj.Name() == "Ints" ||
			obj.Name() == "Float64s" || obj.Name() == "Slice" || obj.Name() == "SliceStable" ||
			obj.Name() == "Sort" || obj.Name() == "Stable")) ||
			(obj.Pkg().Path() == "slices" && strings.HasPrefix(obj.Name(), "Sort"))
		if !isSort {
			return true
		}
		sc := sortCall{pos: int(call.Pos()), objs: make(map[types.Object]bool), strs: make(map[string]bool)}
		for _, arg := range call.Args {
			sc.strs[types.ExprString(arg)] = true
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if o := u.Info.Uses[id]; o != nil {
						sc.objs[o] = true
					}
				}
				return true
			})
		}
		sorts = append(sorts, sc)
		return true
	})

	sortedAfter := func(after ast.Node, target ast.Expr) bool {
		for _, sc := range sorts {
			if sc.pos <= int(after.End()) {
				continue
			}
			if id, ok := target.(*ast.Ident); ok {
				if o := u.Info.Uses[id]; o != nil && sc.objs[o] {
					return true
				}
				if o := u.Info.Defs[id]; o != nil && sc.objs[o] {
					return true
				}
			}
			if sc.strs[types.ExprString(target)] {
				return true
			}
		}
		return false
	}

	var out []Diagnostic
	diag := func(pos ast.Node, msg string) {
		out = append(out, Diagnostic{Pass: "mapiter", Pos: u.Fset.Position(pos.Pos()), Message: msg})
	}
	inspectShallow(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := u.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		inspectShallow(rng.Body, func(bn ast.Node) bool {
			switch bn := bn.(type) {
			case *ast.AssignStmt:
				for i, rhs := range bn.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || i >= len(bn.Lhs) {
						continue
					}
					id, ok := call.Fun.(*ast.Ident)
					if !ok {
						continue
					}
					if b, ok := u.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
						continue
					}
					target := bn.Lhs[i]
					// Only the accumulate pattern `x = append(x, ...)` grows
					// in iteration order. `m[k] = append([]T(nil), v...)`
					// copies into a map slot — order-insensitive.
					if len(call.Args) == 0 || !u.sameTarget(call.Args[0], target) {
						continue
					}
					// Accumulating into a map slot keyed by the iteration
					// variable builds per-key state, not an ordered list.
					if u.isMapIndex(target) {
						continue
					}
					if !sortedAfter(rng, target) {
						diag(bn, fmt.Sprintf("appending to %s while ranging over a map: iteration "+
							"order is nondeterministic; iterate sorted keys or sort the result "+
							"before it is observed", types.ExprString(target)))
					}
				}
			case *ast.SendStmt:
				diag(bn, "channel send inside map iteration: delivery order follows the "+
					"nondeterministic map order; iterate sorted keys instead")
			case *ast.CallExpr:
				if sel, ok := bn.Fun.(*ast.SelectorExpr); ok {
					obj := u.Info.Uses[sel.Sel]
					if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" &&
						(strings.HasPrefix(obj.Name(), "Print") || strings.HasPrefix(obj.Name(), "Fprint")) {
						diag(bn, fmt.Sprintf("fmt.%s inside map iteration: output order follows the "+
							"nondeterministic map order; iterate sorted keys instead", obj.Name()))
					}
				}
			}
			return true
		})
		return true
	})
	return out
}

// sameTarget reports whether a and b name the same object (for plain
// identifiers) or print to the same source expression.
func (u *Unit) sameTarget(a, b ast.Expr) bool {
	ia, aok := a.(*ast.Ident)
	ib, bok := b.(*ast.Ident)
	if aok && bok {
		oa := u.Info.Uses[ia]
		ob := u.Info.Uses[ib]
		if ob == nil {
			ob = u.Info.Defs[ib]
		}
		return oa != nil && oa == ob
	}
	return types.ExprString(a) == types.ExprString(b)
}

// isMapIndex reports whether e indexes into a map.
func (u *Unit) isMapIndex(e ast.Expr) bool {
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := u.Info.Types[ix.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

package analysis_test

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"shardstore/internal/analysis"
)

// runFixture type-checks files as the package at path (plus any extra
// overlay packages it imports), runs the single pass through the driver —
// suppression filtering included — and matches the surviving diagnostics
// against `// want "regex"` expectation comments in the fixture source.
// Every diagnostic must be wanted and every want must fire.
func runFixture(t *testing.T, pass *analysis.Pass, path string, files map[string]string, extra map[string]map[string]string) {
	t.Helper()
	overlay := map[string]map[string]string{path: files}
	for p, fs := range extra {
		overlay[p] = fs
	}
	units, err := analysis.Load(analysis.Config{ModulePath: "shardstore", Overlay: overlay}, path)
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := analysis.RunPasses(units, []*analysis.Pass{pass})

	type wantKey struct {
		file string
		line int
	}
	wantRe := regexp.MustCompile(`// want "([^"]*)"`)
	wants := make(map[wantKey][]*regexp.Regexp)
	for name, src := range files {
		for i, line := range strings.Split(src, "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, m[1], err)
				}
				k := wantKey{name, i + 1}
				wants[k] = append(wants[k], re)
			}
		}
	}

	matched := make(map[wantKey][]bool)
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		k := wantKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		found := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: want %q did not fire", k.file, k.line, re)
			}
		}
	}
}

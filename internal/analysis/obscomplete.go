package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ObsComplete checks RPC v2 opcode instrumentation completeness: every
// declared Opcode constant has an opName case (so its metric name is never
// the op_N fallback), a dispatchInner case (so it is actually served), and
// a value no greater than opMax (so the opPut..opMax registration loop
// resolves its latency histogram). Adding opcode 19 without bumping opMax
// would silently drop its histogram — exactly the completeness gap this
// pass exists to catch. The structural anchors (opName, dispatchInner, the
// registration loop) are repo-specific by design, like the package lists in
// syncusage; renaming them is itself a finding so the pass can be retargeted
// in the same change.
var ObsComplete = &Pass{
	Name:      "obscomplete",
	Doc:       "every rpc v2 opcode has opName, dispatch, and histogram coverage",
	RunModule: runObsComplete,
}

func runObsComplete(p *Program) []Diagnostic {
	var rpcUnit *Unit
	for _, u := range p.Units {
		if !u.XTest && u.RelPath() == "internal/rpc" {
			rpcUnit = u
			break
		}
	}
	if rpcUnit == nil {
		return nil // module loaded without the rpc package (partial loads, fixtures)
	}
	u := rpcUnit

	type opConst struct {
		name string
		val  uint64
		pos  token.Pos
	}
	var ops []opConst // assigned opcodes, in declaration order, opMax aliases excluded
	var opMaxVal uint64
	var opMaxSeen bool
	var anchor token.Pos // position for whole-package findings

	srcFile := func(pos token.Pos) bool {
		return !strings.HasSuffix(u.Fset.Position(pos).Filename, "_test.go")
	}

	for _, f := range u.Files {
		if !srcFile(f.Pos()) {
			continue
		}
		if anchor == token.NoPos {
			anchor = f.Name.Pos()
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, name := range vs.Names {
					c, ok := u.Info.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					named, ok := c.Type().(*types.Named)
					if !ok || named.Obj().Name() != "Opcode" || named.Obj().Pkg() != u.Pkg {
						continue
					}
					v, ok := constant.Uint64Val(c.Val())
					if !ok {
						continue
					}
					if name.Name == "opMax" {
						opMaxVal, opMaxSeen = v, true
						continue
					}
					if v == 0 {
						continue // opInvalid: the explicit non-op
					}
					ops = append(ops, opConst{name: name.Name, val: v, pos: name.Pos()})
				}
			}
		}
	}
	if len(ops) == 0 {
		return nil // not an opcode-bearing rpc package (overlay fixtures for other passes)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].val < ops[j].val })

	// Collect the case coverage of opName and dispatchInner, and whether
	// the opPut..opMax metric registration loop exists.
	opNameCases := make(map[uint64]bool)
	dispatchCases := make(map[uint64]bool)
	var haveOpName, haveDispatch, haveRegLoop bool

	collectCases := func(body *ast.BlockStmt, into map[uint64]bool) {
		ast.Inspect(body, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := u.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok || named.Obj().Name() != "Opcode" {
				return true
			}
			for _, clause := range sw.Body.List {
				for _, e := range clause.(*ast.CaseClause).List {
					if etv, ok := u.Info.Types[e]; ok && etv.Value != nil {
						if v, exact := constant.Uint64Val(etv.Value); exact {
							into[v] = true
						}
					}
				}
			}
			return true
		})
	}

	for _, f := range u.Files {
		if !srcFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch fd.Name.Name {
			case "opName":
				haveOpName = true
				collectCases(fd.Body, opNameCases)
			case "dispatchInner":
				haveDispatch = true
				collectCases(fd.Body, dispatchCases)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				fs, ok := n.(*ast.ForStmt)
				if !ok || fs.Cond == nil {
					return true
				}
				be, ok := fs.Cond.(*ast.BinaryExpr)
				if !ok || be.Op != token.LEQ {
					return true
				}
				if id, ok := be.Y.(*ast.Ident); !ok || id.Name != "opMax" {
					return true
				}
				ast.Inspect(fs.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Histogram" {
							haveRegLoop = true
						}
					}
					return true
				})
				return true
			})
		}
	}

	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pass:    "obscomplete",
			Pos:     u.Fset.Position(pos),
			Message: fmt.Sprintf(format, args...),
		})
	}

	if !haveOpName {
		report(anchor, "no opName function found: the pass's metric-name anchor is gone — retarget obscomplete in this change")
	}
	if !haveDispatch {
		report(anchor, "no dispatchInner function found: the pass's dispatch anchor is gone — retarget obscomplete in this change")
	}
	if !haveRegLoop {
		report(anchor, "no `for op := ...; op <= opMax` Histogram registration loop found: per-op latency histograms are not resolved")
	}
	if !opMaxSeen {
		report(anchor, "no opMax constant found: the per-op metric registration loop has no upper bound")
	}

	for _, op := range ops {
		if haveOpName && !opNameCases[op.val] {
			report(op.pos, "opcode %s = %d has no opName case: its metric and trace names fall back to %q",
				op.name, op.val, fmt.Sprintf("op_%d", op.val))
		}
		if haveDispatch && !dispatchCases[op.val] {
			report(op.pos, "opcode %s = %d has no dispatchInner case: requests with it are never served", op.name, op.val)
		}
		if opMaxSeen && op.val > opMaxVal {
			report(op.pos, "opcode %s = %d exceeds opMax (%d): the registration loop never resolves its latency histogram",
				op.name, op.val, opMaxVal)
		}
	}
	return diags
}

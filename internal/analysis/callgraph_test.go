package analysis_test

import (
	"testing"

	"shardstore/internal/analysis"
)

// TestCallGraphEffects exercises the engine directly on a synthetic package:
// direct-call effect closure, interface dispatch resolved by implementation
// (CHA), func-literal nodes, and cond→lock binding.
func TestCallGraphEffects(t *testing.T) {
	overlay := map[string]map[string]string{
		"shardstore/internal/chunk": {
			"fix.go": `package chunk

import (
	"shardstore/internal/disk"
	"shardstore/internal/vsync"
)

type syncer interface{ flush(d *disk.Disk) }

type impl struct {
	mu   vsync.Mutex
	cond *vsync.Cond
}

func newImpl() *impl {
	i := &impl{}
	i.cond = vsync.NewCond(&i.mu)
	return i
}

func (i *impl) flush(d *disk.Disk) { _ = d.Sync() }

func helper(s syncer, d *disk.Disk) { s.flush(d) }

func lockIt(i *impl) {
	i.mu.Lock()
	i.mu.Unlock()
}

func top(i *impl, d *disk.Disk) {
	lockIt(i)
	helper(i, d)
}

func waitRecv(ch chan int) int { return <-ch }

func top2(ch chan int) int { return waitRecv(ch) }

func hasLit() {
	fn := func(ch chan int) { ch <- 1 }
	fn(nil)
}
`,
		},
		"shardstore/internal/vsync": fakeVsync,
		"shardstore/internal/disk":  fakeDisk,
	}
	units, err := analysis.Load(analysis.Config{ModulePath: "shardstore", Overlay: overlay}, "shardstore/internal/chunk")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	p := analysis.NewProgram(units)

	byName := make(map[string]*analysis.FuncInfo)
	for _, fi := range p.Functions() {
		byName[fi.Name] = fi
	}
	get := func(name string) *analysis.FuncInfo {
		t.Helper()
		fi := byName[name]
		if fi == nil {
			t.Fatalf("no FuncInfo for %s (have %d functions)", name, len(byName))
		}
		return fi
	}

	top := get("internal/chunk.top")
	if top.Direct.MaySync {
		t.Errorf("top.Direct.MaySync = true; sync only happens two calls down")
	}
	if !top.Closed.MaySync {
		t.Errorf("top.Closed.MaySync = false; want true via helper -> syncer.flush -> impl.flush (CHA)")
	}
	if len(top.Direct.Acquires) != 0 {
		t.Errorf("top.Direct.Acquires = %v; top takes no locks itself", top.Direct.Acquires)
	}
	if _, ok := top.Closed.Acquires["internal/chunk.impl.mu"]; !ok {
		t.Errorf("top.Closed.Acquires missing internal/chunk.impl.mu (via lockIt); got %v", top.Closed.Acquires)
	}

	lockIt := get("internal/chunk.lockIt")
	if _, ok := lockIt.Direct.Acquires["internal/chunk.impl.mu"]; !ok {
		t.Errorf("lockIt.Direct.Acquires missing internal/chunk.impl.mu; got %v", lockIt.Direct.Acquires)
	}

	flush := get("internal/chunk.(*impl).flush")
	if !flush.Direct.MaySync {
		t.Errorf("flush.Direct.MaySync = false; it calls disk.Sync directly")
	}

	top2 := get("internal/chunk.top2")
	if !top2.Closed.MayChanOp {
		t.Errorf("top2.Closed.MayChanOp = false; want true via waitRecv's receive")
	}
	if top2.Direct.MayChanOp {
		t.Errorf("top2.Direct.MayChanOp = true; the receive is in the callee")
	}

	if got := p.CondLock("internal/chunk.impl.cond"); got != "internal/chunk.impl.mu" {
		t.Errorf("CondLock(impl.cond) = %q; want internal/chunk.impl.mu", got)
	}

	lits := p.Literals()
	if len(lits) == 0 {
		t.Fatalf("no func-literal nodes; hasLit's closure should have one")
	}
	foundLitChan := false
	for _, li := range lits {
		if li.Direct.MayChanOp {
			foundLitChan = true
		}
	}
	if !foundLitChan {
		t.Errorf("no literal node carries MayChanOp; the closure in hasLit sends on a channel")
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// StageVocab machine-checks the span layer's "stages are a true
// decomposition of latency" claim (PR 8): every stage name passed to
// (*obs.Span).Stage is a compile-time constant drawn from the vocabulary
// internal/obs documents (the Stage* constants, minus the
// explicitly-not-a-stage compact.interference, plus the documented
// "store.<op>" form), and literal metric names are well-formed and never
// registered under two different metric kinds (the same name as both a
// counter and a histogram renders as two colliding series).
var StageVocab = &Pass{
	Name:      "stagevocab",
	Doc:       "span stage names match the documented obs vocabulary; metric names are consistent",
	RunModule: runStageVocab,
}

// storeStageRe is the documented non-constant stage form: "store.<op>".
var storeStageRe = regexp.MustCompile(`^store\.[a-z_]+$`)

// metricNameRe is the well-formedness rule for metric names: dotted
// lower-case words, as every existing name follows.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_.]*$`)

func runStageVocab(p *Program) []Diagnostic {
	var diags []Diagnostic

	// The vocabulary: string constants named Stage* declared at the top
	// level of internal/obs. StageInterference documents itself as "not a
	// stage" — it names the interference histogram — so it is collected but
	// not legal at a Stage call site.
	vocab := make(map[string]string) // value -> const name
	interference := ""
	for _, u := range p.Units {
		if u.XTest || u.RelPath() != "internal/obs" {
			continue
		}
		scope := u.Pkg.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !strings.HasPrefix(name, "Stage") {
				continue
			}
			if c.Val().Kind() != constant.String {
				continue
			}
			v := constant.StringVal(c.Val())
			vocab[v] = name
			if name == "StageInterference" {
				interference = v
			}
		}
	}

	type metricReg struct {
		kind string
		pos  token.Position
	}
	regs := make(map[string][]metricReg) // literal metric name -> registrations

	for _, u := range p.Units {
		if u.XTest {
			continue
		}
		for _, f := range u.Files {
			if strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := methodObj(u, sel)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != u.ModulePath+"/internal/obs" {
					return true
				}
				switch fn.Name() {
				case "Stage":
					if recvTypeName(fn) != "Span" {
						return true
					}
					arg := call.Args[0]
					tv, ok := u.Info.Types[arg]
					if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
						diags = append(diags, Diagnostic{
							Pass: "stagevocab",
							Pos:  u.Fset.Position(arg.Pos()),
							Message: "span stage name is not a compile-time constant: latency " +
								"attribution is only auditable over the fixed obs vocabulary",
						})
						return true
					}
					v := constant.StringVal(tv.Value)
					switch {
					case v == interference && interference != "":
						diags = append(diags, Diagnostic{
							Pass: "stagevocab",
							Pos:  u.Fset.Position(arg.Pos()),
							Message: fmt.Sprintf("%q is the interference histogram, documented as not a stage; "+
								"recording it as one double-counts compaction overlap", v),
						})
					case vocab[v] != "", storeStageRe.MatchString(v):
						// In vocabulary.
					default:
						diags = append(diags, Diagnostic{
							Pass: "stagevocab",
							Pos:  u.Fset.Position(arg.Pos()),
							Message: fmt.Sprintf("stage name %q is not in the documented obs vocabulary "+
								"(Stage* constants or \"store.<op>\")", v),
						})
					}
				case "Counter", "Gauge", "Histogram":
					if fn.Type().(*types.Signature).Recv() == nil {
						return true
					}
					arg := call.Args[0]
					tv, ok := u.Info.Types[arg]
					if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
						return true // computed names (e.g. per-op loops) are out of scope
					}
					v := constant.StringVal(tv.Value)
					pos := u.Fset.Position(arg.Pos())
					if !metricNameRe.MatchString(v) {
						diags = append(diags, Diagnostic{
							Pass:    "stagevocab",
							Pos:     pos,
							Message: fmt.Sprintf("metric name %q is not well-formed (want dotted lower-case, e.g. \"rpc.requests\")", v),
						})
					}
					regs[v] = append(regs[v], metricReg{kind: strings.ToLower(fn.Name()), pos: pos})
				}
				return true
			})
		}
	}

	// Kind collisions: one name under two metric kinds.
	names := make([]string, 0, len(regs))
	for name := range regs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rs := regs[name]
		sort.Slice(rs, func(i, j int) bool {
			a, b := rs[i].pos, rs[j].pos
			if a.Filename != b.Filename {
				return a.Filename < b.Filename
			}
			return a.Line < b.Line
		})
		first := rs[0]
		for _, r := range rs[1:] {
			if r.kind != first.kind {
				diags = append(diags, Diagnostic{
					Pass: "stagevocab",
					Pos:  r.pos,
					Message: fmt.Sprintf("metric %q registered as a %s here but as a %s at %s:%d — "+
						"one name, two series", name, r.kind, first.kind, shortFile(first.pos.Filename), first.pos.Line),
				})
			}
		}
	}
	return diags
}

// recvTypeName returns the name of a method's receiver's named type ("" for
// plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

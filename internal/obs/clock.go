// Package obs is the node's unified observability layer: a metrics registry
// (atomic counters, gauges, and fixed-bucket latency histograms), a
// deterministic trace ring buffer, and human-readable rendering for both.
//
// The design constraint comes straight from the validation methodology (§4 of
// the paper): the harnesses replay minimized counterexamples and diff durable
// disk images byte for byte, so observing the node must never perturb it.
// Every metric is a passive atomic; no obs call branches the instrumented
// code; and time comes from an injectable Clock — a logical tick counter
// under the deterministic harnesses (so runs are bit-identical and latency
// "durations" are replayable tick counts), the wall clock in the server.
//
// The same layer serves both halves of the project. Production-style runs
// (cmd/shardstore) expose the registry over the rpc `metrics` op and pprof;
// validation runs dump the trace ring alongside a minimized counterexample so
// a failure ships with its own execution trail, the raw material that
// trace-based validation work (Pek et al.) builds on.
package obs

import (
	"sync/atomic"
	"time"
)

// Clock supplies monotonic timestamps for latency measurement. Implementations
// must be safe for concurrent use. The unit is implementation-defined:
// nanoseconds for the wall clock, abstract ticks for the logical clock.
type Clock interface {
	Now() uint64
}

// LogicalClock is a deterministic clock: every Now advances an atomic counter
// by one tick. Under a deterministic workload the sequence of ticks — and
// therefore every recorded "latency" — is a pure function of the executed
// operations, so validation runs stay replayable and their metric output is
// stable across runs and machines.
type LogicalClock struct {
	t atomic.Uint64
}

// NewLogicalClock returns a logical clock starting at tick zero.
func NewLogicalClock() *LogicalClock { return &LogicalClock{} }

// Now advances the clock one tick and returns it.
func (c *LogicalClock) Now() uint64 { return c.t.Add(1) }

// WallClock measures real elapsed nanoseconds since its creation (monotonic,
// so unaffected by wall-time jumps). This is the server's clock.
type WallClock struct {
	base time.Time
}

// NewWallClock returns a wall clock anchored at the current instant.
func NewWallClock() *WallClock {
	return &WallClock{base: time.Now()} //shardlint:allow determinism WallClock is the explicit nondeterministic clock; harnesses inject LogicalClock
}

// Now returns nanoseconds elapsed since the clock was created.
func (c *WallClock) Now() uint64 {
	return uint64(time.Since(c.base)) //shardlint:allow determinism WallClock is the explicit nondeterministic clock; harnesses inject LogicalClock
}

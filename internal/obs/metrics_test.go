package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"shardstore/internal/vsync"
)

// TestHistogramBucketBoundaries pins the bucket mapping at the exact powers
// of two: v = 2^k is the first value of bucket k+1, v = 2^k - 1 the last of
// bucket k.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1 << 20, 21},
		{1<<20 - 1, 20},
		{math.MaxUint64, 64},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		h := &Histogram{}
		h.Observe(c.v)
		s := h.Snapshot()
		if s.Buckets[c.bucket] != 1 {
			t.Errorf("Observe(%d): bucket %d count %d, want 1 (buckets %v)", c.v, c.bucket, s.Buckets[c.bucket], s.Buckets)
		}
		if s.Min != c.v && c.v != math.MaxUint64 {
			t.Errorf("Observe(%d): min %d", c.v, s.Min)
		}
		if s.Max != c.v {
			t.Errorf("Observe(%d): max %d", c.v, s.Max)
		}
	}
	// Bucket upper bounds line up with the mapping: the largest value of
	// bucket i maps to i, and upper+1 maps to i+1.
	for i := 1; i < 63; i++ {
		ub := BucketUpper(i)
		if bucketOf(ub) != i || bucketOf(ub+1) != i+1 {
			t.Fatalf("bucket %d upper bound %d misaligned", i, ub)
		}
	}
}

// TestHistogramQuantiles checks the quantile estimate returns the containing
// bucket's upper bound, clamped to the observed max.
func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 90 fast observations (value 3, bucket 2), 10 slow (value 1000, bucket 10).
	for i := 0; i < 90; i++ {
		h.Observe(3)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.50); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}
	if got := s.Quantile(0.90); got != 3 {
		t.Errorf("p90 = %d, want 3 (rank 90 is the last fast observation)", got)
	}
	// p99 lands among the slow observations; the estimate is the bucket upper
	// bound clamped to the true max.
	if got := s.Quantile(0.99); got != 1000 {
		t.Errorf("p99 = %d, want 1000 (bucket upper clamped to max)", got)
	}
	if got := s.Quantile(1.0); got != 1000 {
		t.Errorf("p100 = %d, want 1000", got)
	}
	// All-zero observations: every quantile is 0.
	z := &Histogram{}
	z.Observe(0)
	z.Observe(0)
	if got := z.Snapshot().Quantile(0.99); got != 0 {
		t.Errorf("all-zero p99 = %d, want 0", got)
	}
}

// TestHistogramMergeAssociativity: merging per-shard snapshots in any
// grouping yields the identical host view — the property the rpc metrics op
// relies on when folding per-disk registries together.
func TestHistogramMergeAssociativity(t *testing.T) {
	mk := func(vals ...uint64) HistogramSnapshot {
		h := &Histogram{}
		for _, v := range vals {
			h.Observe(v)
		}
		return h.Snapshot()
	}
	a := mk(1, 5, 9)
	b := mk(100, 3)
	c := mk(0, 0, 1<<30)

	// (a+b)+c
	left := HistogramSnapshot{}
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)
	// a+(b+c)
	bc := HistogramSnapshot{}
	bc.Merge(b)
	bc.Merge(c)
	right := HistogramSnapshot{}
	right.Merge(a)
	right.Merge(bc)
	// direct observation of everything
	all := mk(1, 5, 9, 100, 3, 0, 0, 1<<30)

	for _, got := range []HistogramSnapshot{left, right} {
		if fmt.Sprint(got) != fmt.Sprint(all) {
			t.Fatalf("merge grouping diverged:\n got %+v\nwant %+v", got, all)
		}
	}
	// Merging an empty snapshot is the identity.
	id := HistogramSnapshot{}
	id.Merge(all)
	id.Merge(HistogramSnapshot{})
	if fmt.Sprint(id) != fmt.Sprint(all) {
		t.Fatalf("empty merge not identity: %+v vs %+v", id, all)
	}
}

// TestSnapshotMerge covers the registry-level merge: counters add, gauges
// add, histograms fold.
func TestSnapshotMerge(t *testing.T) {
	r1 := NewRegistry(nil)
	r1.Counter("ops").Add(3)
	r1.Gauge("len").Set(7)
	r1.Histogram("lat").Observe(4)
	r2 := NewRegistry(nil)
	r2.Counter("ops").Add(2)
	r2.Gauge("len").Set(1)
	r2.Histogram("lat").Observe(16)

	s := r1.Snapshot()
	s.Merge(r2.Snapshot())
	if s.Counters["ops"] != 5 {
		t.Errorf("merged counter = %d, want 5", s.Counters["ops"])
	}
	if s.Gauges["len"] != 8 {
		t.Errorf("merged gauge = %d, want 8", s.Gauges["len"])
	}
	h := s.Histograms["lat"]
	if h.Count != 2 || h.Min != 4 || h.Max != 16 {
		t.Errorf("merged hist = %+v", h)
	}
}

// TestZeroObservationRender: an empty histogram renders with dashes, an
// empty snapshot renders a placeholder — never a divide-by-zero or a bogus
// percentile.
func TestZeroObservationRender(t *testing.T) {
	line := FormatHistogram("store.get", HistogramSnapshot{}, UnitTicks)
	if !strings.Contains(line, "count=0") || !strings.Contains(line, "p99=-") {
		t.Errorf("zero-observation render: %q", line)
	}
	if got := FormatSnapshot(Snapshot{}, UnitTicks); got != "(no metrics)\n" {
		t.Errorf("empty snapshot render: %q", got)
	}
	// A registered-but-never-observed histogram still shows up (with dashes),
	// so blind spots are visible.
	r := NewRegistry(nil)
	r.Histogram("disk.read_lat")
	out := FormatSnapshot(r.Snapshot(), UnitTicks)
	if !strings.Contains(out, "disk.read_lat") || !strings.Contains(out, "p50=-") {
		t.Errorf("unobserved histogram render: %q", out)
	}
}

// TestNilSafety: a nil Obs/Registry and the nil handles they give out must
// be inert, so uninstrumented construction paths cost nothing and crash
// nothing.
func TestNilSafety(t *testing.T) {
	var o *Obs
	o.Counter("x").Inc()
	o.Gauge("g").Set(5)
	o.Histogram("h").Observe(9)
	o.Record("layer", "op", "t", "ok", 1)
	if o.Now() != 0 || o.Tracing() {
		t.Fatal("nil obs must read as tick 0, not tracing")
	}
	if s := o.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil obs snapshot: %+v", s)
	}
	var r *Registry
	r.Counter("x").Add(1)
	if r.Now() != 0 {
		t.Fatal("nil registry clock")
	}
}

// TestLogicalClockDeterminism: the logical clock is a pure tick counter, so
// identical call sequences read identical times.
func TestLogicalClockDeterminism(t *testing.T) {
	a, b := NewLogicalClock(), NewLogicalClock()
	for i := 0; i < 100; i++ {
		if a.Now() != b.Now() {
			t.Fatal("logical clocks diverged")
		}
	}
}

// TestConcurrentObserve hammers one histogram and counter from many
// goroutines; run under -race by the CI obs leg. Totals must be exact.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("lat")
	c := r.Counter("ops")
	const workers, per = 8, 2000
	handles := make([]vsync.Handle, 0, workers)
	for w := 0; w < workers; w++ {
		w := w
		handles = append(handles, vsync.Go("observe", func() {
			for i := 0; i < per; i++ {
				h.Observe(uint64(w*per + i))
				c.Inc()
			}
		}))
	}
	for _, hd := range handles {
		hd.Join()
	}
	s := h.Snapshot()
	if s.Count != workers*per || c.Value() != workers*per {
		t.Fatalf("lost updates: hist=%d counter=%d", s.Count, c.Value())
	}
	if s.Min != 0 || s.Max != workers*per-1 {
		t.Fatalf("min/max: %d/%d", s.Min, s.Max)
	}
}

// TestHistogramExactSumMax: the histogram carries exact — not
// bucket-approximated — sum, min, and max through the snapshot, the JSON
// encoding used by the metrics RPC op, a merge, and the rendered table.
func TestHistogramExactSumMax(t *testing.T) {
	h := &Histogram{}
	vals := []uint64{3, 1000, 999, 7, 1}
	var sum uint64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	s := h.Snapshot()
	if s.Sum != sum || s.Min != 1 || s.Max != 1000 || s.Count != 5 {
		t.Fatalf("snapshot fidelity: %+v (want sum=%d min=1 max=1000 count=5)", s, sum)
	}
	if got := s.Mean(); got != float64(sum)/5 {
		t.Fatalf("mean from exact sum: %v, want %v", got, float64(sum)/5)
	}

	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back HistogramSnapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Sum != sum || back.Min != 1 || back.Max != 1000 || back.Count != 5 {
		t.Fatalf("JSON round trip lost fidelity: %+v", back)
	}

	other := &Histogram{}
	other.Observe(5000)
	back.Merge(other.Snapshot())
	if back.Sum != sum+5000 || back.Min != 1 || back.Max != 5000 || back.Count != 6 {
		t.Fatalf("merge fidelity: %+v", back)
	}

	line := FormatHistogram("lat", back, UnitTicks)
	if !strings.Contains(line, "max=5000") || !strings.Contains(line, "min=1") {
		t.Fatalf("render lost exact extrema: %q", line)
	}
	if !strings.Contains(FormatPrometheus(Snapshot{Histograms: map[string]HistogramSnapshot{"lat": back}}),
		fmt.Sprintf("shardstore_lat_sum %d\n", sum+5000)) {
		t.Fatalf("prometheus exposition lost exact sum")
	}
}

package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Unit controls how rendered durations are formatted.
type Unit int

const (
	// UnitTicks renders raw clock values (logical-clock runs).
	UnitTicks Unit = iota
	// UnitNanos renders values as wall-clock durations.
	UnitNanos
)

// FormatValue renders one duration value in the given unit.
func FormatValue(v uint64, u Unit) string {
	if u == UnitNanos {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%d", v)
}

// FormatHistogram renders one histogram as a single stable line:
// count, mean, min, p50/p90/p99, max. A zero-observation histogram renders
// with dashes so "never exercised" is visible at a glance.
func FormatHistogram(name string, h HistogramSnapshot, u Unit) string {
	if h.Count == 0 {
		return fmt.Sprintf("%-28s count=0 p50=- p90=- p99=- max=-", name)
	}
	return fmt.Sprintf("%-28s count=%-7d mean=%-9s min=%-9s p50=%-9s p90=%-9s p99=%-9s max=%s",
		name, h.Count,
		FormatValue(uint64(h.Mean()), u),
		FormatValue(h.Min, u),
		FormatValue(h.Quantile(0.50), u),
		FormatValue(h.Quantile(0.90), u),
		FormatValue(h.Quantile(0.99), u),
		FormatValue(h.Max, u))
}

// FormatSnapshot renders a whole snapshot as a stable, sorted, sectioned
// table — the `shardstore metrics` client output.
func FormatSnapshot(s Snapshot, u Unit) string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-42s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-42s %d\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, name := range sortedKeys(s.Histograms) {
			fmt.Fprintf(&b, "  %s\n", FormatHistogram(name, s.Histograms[name], u))
		}
	}
	if b.Len() == 0 {
		return "(no metrics)\n"
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FormatTrace renders dumped events plus a truncation marker when the ring
// wrapped, so a partial trail is never mistaken for the whole execution.
func FormatTrace(events []Event, truncated uint64) string {
	var b strings.Builder
	if truncated > 0 {
		fmt.Fprintf(&b, "... %d earlier events overwritten ...\n", truncated)
	}
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

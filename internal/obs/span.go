package obs

import (
	"fmt"
	"strings"

	"shardstore/internal/vsync"
)

// Request-scoped tracing: a Span follows one operation end-to-end through the
// node — RPC frame arrival, dispatch-queue wait, the store call, the group
// commit barrier, the coalesced disk sync, the reply write — and concurrent
// background activity (compaction, scrub, reclamation) is stamped onto every
// overlapping span, so a single slow request carries its own attribution.
//
// The same rules as the rest of the package apply: a nil *Tracer, *Span, or
// *BgSpan discards everything, handle resolution happens at construction, the
// clock is only read when a tracer is attached, and under LogicalClock a
// deterministic workload yields bit-identical traces. Nothing a span records
// feeds back into node behavior, so tracing on/off must not change a verdict
// or a durable byte (enforced by TestTraceDeterminismGate).

// Stage names shared between the layers that record them and the per-stage
// histograms the tracer resolves at construction. The stages of one request
// never overlap each other, so their durations sum to at most the parent
// span's duration.
const (
	// StageQueueWait is the time a decoded frame waited for a dispatch worker.
	StageQueueWait = "rpc.queue_wait"
	// StageBarrierWait is a group-commit follower's wait for the leader's sync.
	StageBarrierWait = "sched.barrier_wait"
	// StageDiskSync is the group-commit leader's coalesced write+sync round.
	StageDiskSync = "disk.sync_wait"
	// StageReply is the time from response ready to response written.
	StageReply = "rpc.reply_wait"
	// StageInterference is not a stage but the histogram fed with each traced
	// request's total compaction-overlap ticks.
	StageInterference = "compact.interference"
)

// Stage is one attributed interval inside a request: where the ticks went.
type Stage struct {
	// Name is one of the Stage* constants or "store.<op>".
	Name string `json:"name"`
	// Start and End are obs clock readings bracketing the interval.
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Detail carries stage-specific attribution: the barrier role, the
	// leader's group size.
	Detail string `json:"detail,omitempty"`
}

// Dur returns the stage's duration in clock units.
func (s Stage) Dur() uint64 {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// SpanNote is an annotation stamped on a span: either a manual Annotate call
// or a background activity window (compaction step, scrub round, reclamation)
// that overlapped the request.
type SpanNote struct {
	// Tick is when the annotated activity began (clock reading).
	Tick uint64 `json:"tick"`
	// Layer names the annotating layer (compact, scrub, chunk, disk).
	Layer string `json:"layer"`
	// Note describes the activity.
	Note string `json:"note"`
	// Overlap is how many clock units of the activity overlapped this span
	// (0 for manual annotations).
	Overlap uint64 `json:"overlap,omitempty"`
}

// ReqTrace is one completed request trace: the immutable record a finished
// span leaves behind, returned by the `trace` RPC op.
type ReqTrace struct {
	// TraceID identifies the request; over RPC v2 it is the frame's request
	// id, so a client can correlate its call with the server-side trace.
	TraceID uint64 `json:"trace_id"`
	// Op is the request operation ("put", "get", ...).
	Op string `json:"op"`
	// Key is the primary key operated on, when the op has one.
	Key string `json:"key,omitempty"`
	// Start and End are obs clock readings bracketing the whole request.
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Stages are the attributed intervals, in the order they were recorded.
	Stages []Stage `json:"stages,omitempty"`
	// Notes are overlapping background activity and manual annotations.
	Notes []SpanNote `json:"notes,omitempty"`
}

// Duration returns the whole request's duration in clock units.
func (t ReqTrace) Duration() uint64 {
	if t.End < t.Start {
		return 0
	}
	return t.End - t.Start
}

// Span is one in-flight traced request. All methods are nil-safe and cheap:
// stage and note recording takes the tracer's single mutex (requests are
// metered at request rate, not IO rate), and the untraced hot path never
// reaches any of this code because a nil span discards everything.
type Span struct {
	tr *Tracer
	t  ReqTrace
	// finished latches Finish so a double finish (or a late stage/annotation
	// from a racing goroutine) cannot corrupt the completed record.
	finished bool
	// interference accumulates compaction-overlap ticks for the
	// compact.interference histogram.
	interference uint64
}

// bgWin is one open background-activity window.
type bgWin struct {
	layer string
	note  string
	start uint64
}

// BgSpan is the handle for a background-activity window (compaction step,
// scrub round, reclamation, disk sync). Ending it stamps an overlap note on
// every request span it overlapped. A nil *BgSpan discards End.
type BgSpan struct {
	tr *Tracer
	w  *bgWin
}

// Default capacities for the completed-trace and slow-op rings.
const (
	DefaultTraceCap = 64
	DefaultSlowCap  = 32
)

// Tracer owns the request-span machinery: the active-span set, open
// background windows, and the completed + slow rings. A nil *Tracer hands out
// nil spans, so call sites need no enablement branches.
type Tracer struct {
	clock Clock

	mu     vsync.Mutex
	nextID uint64
	// active and bg are slices, not maps: they are iterated on every finish
	// and window end, and insertion order keeps that iteration deterministic.
	active []*Span
	bg     []*bgWin

	completed traceRing
	slow      traceRing
	// slowThresh gates the slow ring: completed spans at or above this many
	// clock units are retained (0 disables the slow log).
	slowThresh uint64

	// Per-stage histograms, resolved once at construction.
	stageHist    map[string]*Histogram
	interference *Histogram
	spans        *Counter
}

// traceRing is a fixed-capacity wraparound buffer of completed traces,
// guarded by the tracer's mutex.
type traceRing struct {
	buf   []ReqTrace
	total uint64
}

func (r *traceRing) push(t ReqTrace) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = t
	}
	r.total++
}

func (r *traceRing) dump() (traces []ReqTrace, truncated uint64) {
	n := len(r.buf)
	traces = make([]ReqTrace, 0, n)
	if r.total > uint64(n) {
		truncated = r.total - uint64(n)
	}
	start := uint64(0)
	if n > 0 && r.total > uint64(cap(r.buf)) {
		start = r.total % uint64(cap(r.buf))
	}
	for i := 0; i < n; i++ {
		traces = append(traces, r.buf[(start+uint64(i))%uint64(n)])
	}
	return traces, truncated
}

func newTracer(reg *Registry, capacity int, slowThreshold uint64) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	slowCap := DefaultSlowCap
	if slowCap > capacity {
		slowCap = capacity
	}
	return &Tracer{
		clock:      reg.clock,
		completed:  traceRing{buf: make([]ReqTrace, 0, capacity)},
		slow:       traceRing{buf: make([]ReqTrace, 0, slowCap)},
		slowThresh: slowThreshold,
		stageHist: map[string]*Histogram{
			StageQueueWait: reg.Histogram(StageQueueWait),
			StageDiskSync:  reg.Histogram(StageDiskSync),
			StageReply:     reg.Histogram(StageReply),
		},
		interference: reg.Histogram(StageInterference),
		spans:        reg.Counter("trace.spans"),
	}
}

// Start opens a span for one request. traceID 0 assigns a local id; RPC
// passes the frame's request id so client and server agree on the trace's
// identity. A nil tracer returns a nil span.
func (tr *Tracer) Start(traceID uint64, op, key string) *Span {
	if tr == nil {
		return nil
	}
	start := tr.clock.Now()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if traceID == 0 {
		tr.nextID++
		traceID = tr.nextID
	}
	sp := &Span{tr: tr, t: ReqTrace{TraceID: traceID, Op: op, Key: key, Start: start}}
	tr.active = append(tr.active, sp)
	return sp
}

// Background opens an activity window for a maintenance task. When the window
// ends, every request span it overlapped gets a note with the overlap
// duration, and compact-layer overlap additionally feeds each span's
// compact.interference attribution. A nil tracer returns a nil handle.
func (tr *Tracer) Background(layer, note string) *BgSpan {
	if tr == nil {
		return nil
	}
	w := &bgWin{layer: layer, note: note, start: tr.clock.Now()}
	tr.mu.Lock()
	tr.bg = append(tr.bg, w)
	tr.mu.Unlock()
	return &BgSpan{tr: tr, w: w}
}

// End closes the window and stamps overlap notes on every active span.
// Spans that finished while the window was open were stamped at their own
// Finish. Ending twice is a no-op.
func (b *BgSpan) End() {
	if b == nil {
		return
	}
	end := b.tr.clock.Now()
	b.tr.mu.Lock()
	defer b.tr.mu.Unlock()
	found := false
	for i, w := range b.tr.bg {
		if w == b.w {
			b.tr.bg = append(b.tr.bg[:i], b.tr.bg[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return
	}
	for _, sp := range b.tr.active {
		sp.noteLocked(b.w, end)
	}
}

// Completed returns the retained completed traces oldest-first plus the count
// of earlier traces that were overwritten.
func (tr *Tracer) Completed() (traces []ReqTrace, truncated uint64) {
	if tr == nil {
		return nil, 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.completed.dump()
}

// Slow returns the retained slow-op traces (duration >= the threshold)
// oldest-first plus the overwritten count.
func (tr *Tracer) Slow() (traces []ReqTrace, truncated uint64) {
	if tr == nil {
		return nil, 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.slow.dump()
}

// SlowThreshold returns the slow-log gate in clock units (0 = disabled).
func (tr *Tracer) SlowThreshold() uint64 {
	if tr == nil {
		return 0
	}
	return tr.slowThresh
}

// ActiveCount returns the number of spans started but not finished —
// orphaned spans show up here rather than corrupting the completed ring.
func (tr *Tracer) ActiveCount() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.active)
}

// Now reads the tracer's clock (0 for a nil tracer). Call sites use it to
// take stage start ticks without touching the clock when tracing is off.
func (sp *Span) Now() uint64 {
	if sp == nil {
		return 0
	}
	return sp.tr.clock.Now()
}

// StartTick returns the span's opening clock reading (0 for nil).
func (sp *Span) StartTick() uint64 {
	if sp == nil {
		return 0
	}
	return sp.t.Start
}

// TraceID returns the span's trace id (0 for nil).
func (sp *Span) TraceID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.t.TraceID
}

// SetOp sets the span's operation name once it is known (RPC starts the span
// before decoding the frame).
func (sp *Span) SetOp(op string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	if !sp.finished {
		sp.t.Op = op
	}
}

// SetKey sets the span's primary key once the payload is decoded.
func (sp *Span) SetKey(key string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	if !sp.finished {
		sp.t.Key = key
	}
}

// Stage records one attributed interval [start, now]. start comes from an
// earlier sp.Now() read, so untraced requests never read the clock. Stages
// recorded after Finish are dropped.
func (sp *Span) Stage(name string, start uint64, detail string) {
	if sp == nil {
		return
	}
	end := sp.tr.clock.Now()
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	if sp.finished {
		return
	}
	sp.t.Stages = append(sp.t.Stages, Stage{Name: name, Start: start, End: end, Detail: detail})
}

// Annotate stamps a manual note on the span (dropped after Finish).
func (sp *Span) Annotate(layer, note string) {
	if sp == nil {
		return
	}
	tick := sp.tr.clock.Now()
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	if sp.finished {
		return
	}
	sp.t.Notes = append(sp.t.Notes, SpanNote{Tick: tick, Layer: layer, Note: note})
}

// noteLocked stamps the overlap between window w (ending or observed at end)
// and this span. Caller holds the tracer's mutex.
func (sp *Span) noteLocked(w *bgWin, end uint64) {
	start := w.start
	if sp.t.Start > start {
		start = sp.t.Start
	}
	var overlap uint64
	if end > start {
		overlap = end - start
	}
	sp.t.Notes = append(sp.t.Notes, SpanNote{Tick: w.start, Layer: w.layer, Note: w.note, Overlap: overlap})
	if w.layer == "compact" {
		sp.interference += overlap
	}
}

// Finish closes the span: still-open background windows are stamped with
// their overlap so far, per-stage histograms are fed, and the completed trace
// lands in the ring (and the slow ring when at or past the threshold).
// Finishing twice is a no-op; the first completion wins.
func (sp *Span) Finish() {
	if sp == nil {
		return
	}
	tr := sp.tr
	end := tr.clock.Now()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if sp.finished {
		return
	}
	sp.finished = true
	sp.t.End = end
	for _, w := range tr.bg {
		sp.noteLocked(w, end)
	}
	for i, s := range tr.active {
		if s == sp {
			tr.active = append(tr.active[:i], tr.active[i+1:]...)
			break
		}
	}
	for _, st := range sp.t.Stages {
		if h := tr.stageHist[st.Name]; h != nil {
			h.Observe(st.Dur())
		}
	}
	if sp.interference > 0 {
		tr.interference.Observe(sp.interference)
	}
	tr.spans.Inc()
	tr.completed.push(sp.t)
	if tr.slowThresh > 0 && sp.t.Duration() >= tr.slowThresh {
		tr.slow.push(sp.t)
	}
}

// FormatReqTrace renders one trace as a header line plus indented stage and
// note lines — stable for a given trace, so deterministic runs render
// byte-identically.
func FormatReqTrace(t ReqTrace, u Unit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d %s", t.TraceID, t.Op)
	if t.Key != "" {
		fmt.Fprintf(&b, " key=%s", t.Key)
	}
	fmt.Fprintf(&b, " start=%d dur=%s\n", t.Start, FormatValue(t.Duration(), u))
	for _, st := range t.Stages {
		fmt.Fprintf(&b, "  %-20s %-10s", st.Name, FormatValue(st.Dur(), u))
		if st.Detail != "" {
			fmt.Fprintf(&b, " %s", st.Detail)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  ~ [%s] %s", n.Layer, n.Note)
		if n.Overlap > 0 {
			fmt.Fprintf(&b, " overlap=%s", FormatValue(n.Overlap, u))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTraceDump renders a batch of traces oldest-first plus a truncation
// marker when the ring wrapped — the `shardstore trace` / `slowlog` output.
func FormatTraceDump(traces []ReqTrace, truncated uint64, u Unit) string {
	var b strings.Builder
	if truncated > 0 {
		fmt.Fprintf(&b, "... %d earlier traces overwritten ...\n", truncated)
	}
	for _, t := range traces {
		b.WriteString(FormatReqTrace(t, u))
	}
	if b.Len() == 0 {
		return "(no traces)\n"
	}
	return b.String()
}

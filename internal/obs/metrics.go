package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// NumBuckets is the histogram resolution: bucket i counts observations whose
// value has bit length i (i.e. v == 0 lands in bucket 0, v in [2^(i-1), 2^i)
// lands in bucket i). Exponential buckets keep the hot path allocation-free
// (a bits.Len64 plus one atomic add) and make histograms mergeable by plain
// bucket-wise addition regardless of the observed range.
const NumBuckets = 65

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter discards updates, so code instrumented with
// handles from a nil registry costs nothing.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (cache occupancy, standing loss
// verdicts). A nil *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket exponential latency histogram. Observe is
// lock-free and allocation-free; histograms with the same (fixed) bucket
// layout merge by addition. A nil *Histogram discards observations.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // stores ^value so zero means "no observation yet"
	max     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int { return bits.Len64(v) }

// BucketUpper returns the largest value bucket i can hold (its rendered
// upper bound): 0 for bucket 0, 2^i - 1 otherwise.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	// min is stored bit-complemented so the zero value means "unset" and the
	// CAS loop can race freely with concurrent observers.
	for {
		cur := h.min.Load()
		if cur != 0 && ^cur <= v {
			break
		}
		if h.min.CompareAndSwap(cur, ^v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if m := h.min.Load(); m != 0 {
		s.Min = ^m
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]uint64)
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// HistogramSnapshot is a point-in-time, JSON-serializable view of a
// Histogram. Buckets is sparse (bucket index -> count). Snapshots merge by
// addition, so per-disk histograms combine into a host view.
type HistogramSnapshot struct {
	Count   uint64         `json:"count"`
	Sum     uint64         `json:"sum"`
	Min     uint64         `json:"min"`
	Max     uint64         `json:"max"`
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

// Merge folds o into s. Merging is commutative and associative, so any
// grouping of per-disk (or per-case) snapshots yields the same host view.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Count += o.Count
	s.Sum += o.Sum
	for i, n := range o.Buckets {
		if s.Buckets == nil {
			s.Buckets = make(map[int]uint64)
		}
		s.Buckets[i] += n
	}
}

// Quantile returns an upper bound for the q-th quantile (0 < q <= 1): the
// upper edge of the bucket containing that rank, clamped to the observed Max.
// A zero-observation snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Buckets[i]
		if cum >= rank {
			ub := BucketUpper(i)
			if ub > s.Max {
				ub = s.Max
			}
			return ub
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Registry is a named collection of metrics plus the clock they are timed
// against. Handle lookup (Counter/Gauge/Histogram) takes a lock and may
// allocate; instrumented code therefore resolves its handles once at
// construction and uses only the lock-free handle operations on hot paths.
// All methods are safe for concurrent use, and a nil *Registry hands out nil
// handles, which discard updates.
type Registry struct {
	clock Clock

	// Registration is a leaf lock never held across any other
	// synchronization, and by the transparency property nothing it guards
	// feeds back into node behavior, so interleavings around it are
	// behavior-equivalent; instrumenting it only dilutes shuttle's schedule
	// budget with construction-time noise (measured: bug #14 detection fell
	// out of its PCT budget).
	mu       sync.Mutex //shardlint:allow syncusage behavior-transparent leaf lock; instrumenting adds only schedule noise
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates a registry timed by clock; a nil clock selects a fresh
// deterministic LogicalClock.
func NewRegistry(clock Clock) *Registry {
	if clock == nil {
		clock = NewLogicalClock()
	}
	return &Registry{
		clock:    clock,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Now reads the registry's clock. A nil registry reads as tick 0.
func (r *Registry) Now() uint64 {
	if r == nil {
		return 0
	}
	return r.clock.Now()
}

// Clock returns the registry's clock (nil for a nil registry).
func (r *Registry) Clock() Clock {
	if r == nil {
		return nil
	}
	return r.clock
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns a nil (discard-everything) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time, JSON-serializable view of a whole registry —
// the payload of the rpc `metrics` op. Snapshots merge by addition (gauges by
// summation), so per-disk registries combine into one host view.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. Each metric is read atomically;
// the set of metrics is captured in one pass under the registration lock.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// Merge folds o into s (counter and gauge addition, histogram merge).
func (s *Snapshot) Merge(o Snapshot) {
	for name, v := range o.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]uint64)
		}
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]int64)
		}
		s.Gauges[name] += v
	}
	for name, h := range o.Histograms {
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistogramSnapshot)
		}
		cur := s.Histograms[name]
		cur.Merge(h)
		s.Histograms[name] = cur
	}
}

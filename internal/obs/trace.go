package obs

import (
	"fmt"
	"strings"
	"sync"
)

// Event is one structured trace record: something a layer of the node did.
// Events are recorded at the disk/chunk/LSM/store/scrub/rpc boundaries and by
// the conformance harness at op boundaries, so a dumped ring reads as the
// node's execution trail — what IO a failing case actually issued.
type Event struct {
	// Seq is the global record ordinal (monotonic, never reused).
	Seq uint64 `json:"seq"`
	// Tick is the obs clock reading when the event was recorded.
	Tick uint64 `json:"tick"`
	// Layer names the recording layer: disk, cache, chunk, lsm, store,
	// scrub, rpc, harness.
	Layer string `json:"layer"`
	// Op is the operation within the layer (put, get, crash, reclaim, ...).
	Op string `json:"op"`
	// Target identifies what was operated on: a shard key, a chunk locator,
	// an extent/page address.
	Target string `json:"target,omitempty"`
	// Outcome is "ok", "hit", "miss", or an error summary.
	Outcome string `json:"outcome,omitempty"`
	// Dur is the operation's duration in clock units, when measured.
	Dur uint64 `json:"dur,omitempty"`
}

// String renders the event as one stable, human-readable line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d t=%d [%s] %s", e.Seq, e.Tick, e.Layer, e.Op)
	if e.Target != "" {
		fmt.Fprintf(&b, " %s", e.Target)
	}
	if e.Outcome != "" {
		fmt.Fprintf(&b, " -> %s", e.Outcome)
	}
	if e.Dur != 0 {
		fmt.Fprintf(&b, " (dur=%d)", e.Dur)
	}
	return b.String()
}

// Ring is a fixed-capacity trace buffer: recording is O(1), old events are
// overwritten, and Dump reports exactly how many earlier events were lost so
// a truncated trail is never mistaken for a complete one. A nil *Ring
// discards records. Safe for concurrent use.
type Ring struct {
	// Same waiver rationale as Registry.mu: a behavior-transparent leaf
	// lock (never held across other sync ops, guarded state never read by
	// the node), kept raw so ring records don't inflate shuttle's schedule
	// space on every instrumented-layer operation.
	mu    sync.Mutex //shardlint:allow syncusage behavior-transparent leaf lock; instrumenting adds only schedule noise
	buf   []Event
	total uint64 // events ever recorded
}

// DefaultRingEvents is the trace depth harnesses attach to failing cases.
const DefaultRingEvents = 128

// NewRing creates a ring holding the last capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Record appends ev, stamping its Seq. The caller fills every other field
// (including Tick, so the clock is read only when a ring is attached).
func (r *Ring) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ev.Seq = r.total
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[ev.Seq%uint64(cap(r.buf))] = ev
}

// Dump returns the retained events oldest-first plus the count of earlier
// events that were overwritten (0 if the ring never wrapped).
func (r *Ring) Dump() (events []Event, truncated uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	events = make([]Event, 0, n)
	if r.total > uint64(n) {
		truncated = r.total - uint64(n)
	}
	start := r.total % uint64(cap(r.buf))
	if r.total <= uint64(cap(r.buf)) {
		start = 0
	}
	for i := 0; i < n; i++ {
		events = append(events, r.buf[(start+uint64(i))%uint64(n)])
	}
	return events, truncated
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of events ever recorded.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Obs bundles a metrics registry with an optional trace ring — the handle
// every layer of the node carries. A nil *Obs is fully inert; an Obs without
// a ring meters but does not trace. Components that receive no Obs create a
// private one so their Stats() snapshots keep working standalone.
type Obs struct {
	reg    *Registry
	ring   *Ring
	tracer *Tracer
}

// New creates an Obs metered against clock (nil clock = deterministic
// logical clock) with tracing disabled.
func New(clock Clock) *Obs {
	return &Obs{reg: NewRegistry(clock)}
}

// WithTrace attaches a trace ring retaining the last capacity events and
// returns o (for chaining). Passing capacity <= 0 selects DefaultRingEvents.
func (o *Obs) WithTrace(capacity int) *Obs {
	if capacity <= 0 {
		capacity = DefaultRingEvents
	}
	o.ring = NewRing(capacity)
	return o
}

// WithSpans attaches a request-span tracer retaining the last capacity
// completed traces, with a slow-op log gated at slowThreshold clock units
// (0 disables the slow log), and returns o for chaining. capacity <= 0
// selects DefaultTraceCap. Attach spans before handing the Obs to components:
// the RPC server resolves its tracer handle at construction.
func (o *Obs) WithSpans(capacity int, slowThreshold uint64) *Obs {
	o.tracer = newTracer(o.reg, capacity, slowThreshold)
	return o
}

// Tracer returns the attached request-span tracer, or nil (also for a nil
// Obs) — and a nil Tracer hands out nil spans, so callers never branch.
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Metrics returns the registry (nil for a nil Obs).
func (o *Obs) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// TraceRing returns the attached ring, or nil.
func (o *Obs) TraceRing() *Ring {
	if o == nil {
		return nil
	}
	return o.ring
}

// Tracing reports whether a ring is attached. Chatty instrumentation sites
// guard their event-formatting (which allocates) behind this, keeping the
// no-trace hot path allocation-free.
func (o *Obs) Tracing() bool { return o != nil && o.ring != nil }

// Now reads the obs clock (tick 0 for a nil Obs).
func (o *Obs) Now() uint64 {
	if o == nil {
		return 0
	}
	return o.reg.Now()
}

// Counter resolves a counter handle (nil-safe).
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(name)
}

// Gauge resolves a gauge handle (nil-safe).
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge(name)
}

// Histogram resolves a histogram handle (nil-safe).
func (o *Obs) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.reg.Histogram(name)
}

// Snapshot captures the registry (zero Snapshot for a nil Obs).
func (o *Obs) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	return o.reg.Snapshot()
}

// Record stamps and records a trace event. It is a no-op unless a ring is
// attached, and the clock is read only when recording, so attaching a ring
// changes tick values but never node behavior.
func (o *Obs) Record(layer, op, target, outcome string, dur uint64) {
	if !o.Tracing() {
		return
	}
	o.ring.Record(Event{
		Tick:    o.reg.Now(),
		Layer:   layer,
		Op:      op,
		Target:  target,
		Outcome: outcome,
		Dur:     dur,
	})
}

// Outcome compresses an error into a trace outcome string.
func Outcome(err error) string {
	if err == nil {
		return "ok"
	}
	s := err.Error()
	if len(s) > 64 {
		s = s[:61] + "..."
	}
	return "err:" + s
}

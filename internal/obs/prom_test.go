package obs

import (
	"strings"
	"testing"
)

// TestFormatPrometheusExact pins the full exposition for a small snapshot:
// sorted sections, sanitized names, cumulative le buckets, exact sum.
func TestFormatPrometheusExact(t *testing.T) {
	o := New(nil)
	o.Counter("ops.put").Add(3)
	o.Gauge("queue.depth").Add(-2)
	h := o.Histogram("lat")
	for _, v := range []uint64{0, 5, 7, 100} {
		h.Observe(v)
	}
	got := FormatPrometheus(o.Snapshot())
	want := strings.Join([]string{
		"# TYPE shardstore_ops_put counter",
		"shardstore_ops_put 3",
		"# TYPE shardstore_queue_depth gauge",
		"shardstore_queue_depth -2",
		"# TYPE shardstore_lat histogram",
		`shardstore_lat_bucket{le="0"} 1`,
		`shardstore_lat_bucket{le="7"} 3`,
		`shardstore_lat_bucket{le="127"} 4`,
		`shardstore_lat_bucket{le="+Inf"} 4`,
		"shardstore_lat_sum 112",
		"shardstore_lat_count 4",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFormatPrometheusStable: rendering the same snapshot twice is
// byte-identical even though registry maps are unordered.
func TestFormatPrometheusStable(t *testing.T) {
	o := New(nil)
	for _, n := range []string{"z.last", "a.first", "m.middle"} {
		o.Counter(n).Inc()
		o.Histogram("h." + n).Observe(9)
	}
	s := o.Snapshot()
	a, b := FormatPrometheus(s), FormatPrometheus(s)
	if a != b {
		t.Fatalf("unstable exposition:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "shardstore_a_first") {
		t.Fatalf("missing sanitized counter:\n%s", a)
	}
	ai := strings.Index(a, "shardstore_a_first")
	zi := strings.Index(a, "shardstore_z_last")
	if ai > zi {
		t.Fatalf("counters not sorted:\n%s", a)
	}
}

// TestFormatPrometheusEmpty: an untouched registry renders to nothing rather
// than emitting empty series.
func TestFormatPrometheusEmpty(t *testing.T) {
	if got := FormatPrometheus(New(nil).Snapshot()); got != "" {
		t.Fatalf("empty snapshot rendered %q", got)
	}
}

// TestFormatPrometheusEmptyHistogram: a registered-but-never-observed
// histogram still renders a valid series (just +Inf/sum/count zeros).
func TestFormatPrometheusEmptyHistogram(t *testing.T) {
	o := New(nil)
	o.Histogram("idle")
	got := FormatPrometheus(o.Snapshot())
	for _, want := range []string{
		`shardstore_idle_bucket{le="+Inf"} 0`,
		"shardstore_idle_sum 0",
		"shardstore_idle_count 0",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

// TestPromNameSanitize: the registry's dotted names (and anything stranger)
// map into the Prometheus charset under the node prefix.
func TestPromNameSanitize(t *testing.T) {
	cases := map[string]string{
		"sched.barrier_wait": "shardstore_sched_barrier_wait",
		"disk-0/latency":     "shardstore_disk_0_latency",
		"weird name%":        "shardstore_weird_name_",
		"ns:sub":             "shardstore_ns:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

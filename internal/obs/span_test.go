package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"shardstore/internal/vsync"
)

func newTestTracer(capacity int, slowThresh uint64) (*Obs, *Tracer) {
	o := New(nil).WithSpans(capacity, slowThresh)
	return o, o.Tracer()
}

// TestSpanLifecycle is the span state-machine table: the legal path, the
// finish-twice latch, post-finish mutation, and the orphaned span.
func TestSpanLifecycle(t *testing.T) {
	t.Run("complete", func(t *testing.T) {
		_, tr := newTestTracer(4, 0)
		sp := tr.Start(7, "put", "k1")
		t0 := sp.Now()
		sp.Stage("store.put", t0, "")
		sp.Annotate("test", "manual note")
		sp.Finish()
		traces, trunc := tr.Completed()
		if len(traces) != 1 || trunc != 0 {
			t.Fatalf("completed: %d traces, %d truncated", len(traces), trunc)
		}
		tc := traces[0]
		if tc.TraceID != 7 || tc.Op != "put" || tc.Key != "k1" {
			t.Fatalf("identity: %+v", tc)
		}
		if tc.End <= tc.Start {
			t.Fatalf("span duration not positive: %+v", tc)
		}
		if len(tc.Stages) != 1 || tc.Stages[0].Name != "store.put" {
			t.Fatalf("stages: %+v", tc.Stages)
		}
		if len(tc.Notes) != 1 || tc.Notes[0].Note != "manual note" {
			t.Fatalf("notes: %+v", tc.Notes)
		}
		if tr.ActiveCount() != 0 {
			t.Fatalf("span still active after finish")
		}
	})

	t.Run("finish twice", func(t *testing.T) {
		_, tr := newTestTracer(4, 0)
		sp := tr.Start(0, "get", "")
		sp.Finish()
		traces, _ := tr.Completed()
		end := traces[0].End
		sp.Finish() // must be a no-op
		traces, _ = tr.Completed()
		if len(traces) != 1 {
			t.Fatalf("double finish produced %d traces", len(traces))
		}
		if traces[0].End != end {
			t.Fatalf("double finish moved End: %d -> %d", end, traces[0].End)
		}
	})

	t.Run("mutation after finish", func(t *testing.T) {
		_, tr := newTestTracer(4, 0)
		sp := tr.Start(0, "get", "")
		sp.Finish()
		sp.Stage("late", sp.Now(), "")
		sp.Annotate("late", "late")
		sp.SetKey("late")
		sp.SetOp("late")
		traces, _ := tr.Completed()
		tc := traces[0]
		if len(tc.Stages) != 0 || len(tc.Notes) != 0 || tc.Key != "" || tc.Op != "get" {
			t.Fatalf("post-finish mutation leaked into completed trace: %+v", tc)
		}
	})

	t.Run("orphaned span", func(t *testing.T) {
		_, tr := newTestTracer(4, 0)
		tr.Start(0, "put", "never-finished")
		if tr.ActiveCount() != 1 {
			t.Fatalf("active = %d", tr.ActiveCount())
		}
		traces, _ := tr.Completed()
		if len(traces) != 0 {
			t.Fatalf("orphan leaked into completed ring: %+v", traces)
		}
	})

	t.Run("nil safety", func(t *testing.T) {
		var tr *Tracer
		sp := tr.Start(1, "put", "k")
		if sp != nil {
			t.Fatal("nil tracer handed out a span")
		}
		sp.Stage("x", sp.Now(), "")
		sp.Annotate("x", "y")
		sp.SetKey("k")
		sp.SetOp("op")
		sp.Finish()
		if sp.StartTick() != 0 || sp.TraceID() != 0 {
			t.Fatal("nil span ticks")
		}
		tr.Background("x", "y").End()
		if n, _ := tr.Completed(); n != nil {
			t.Fatal("nil tracer completed traces")
		}
		if n, _ := tr.Slow(); n != nil {
			t.Fatal("nil tracer slow traces")
		}
		var o *Obs
		if o.Tracer() != nil {
			t.Fatal("nil obs tracer")
		}
	})
}

// TestBackgroundOverlap: background windows stamp overlap notes on the spans
// they overlap — including partial overlaps on both sides — and compact-layer
// overlap feeds the compact.interference histogram.
func TestBackgroundOverlap(t *testing.T) {
	o, tr := newTestTracer(8, 0)

	// Window fully inside the span's lifetime, ended before Finish.
	sp := tr.Start(0, "put", "k")
	bg := tr.Background("compact", "L1<-3 runs")
	bgStart := sp.Now() // advance the clock a few ticks
	_ = bgStart
	bg.End()
	sp.Finish()
	traces, _ := tr.Completed()
	tc := traces[0]
	if len(tc.Notes) != 1 || tc.Notes[0].Layer != "compact" {
		t.Fatalf("notes: %+v", tc.Notes)
	}
	if tc.Notes[0].Overlap == 0 {
		t.Fatalf("zero overlap for enclosed window: %+v", tc.Notes[0])
	}
	snap := o.Snapshot()
	ih := snap.Histograms[StageInterference]
	if ih.Count != 1 || ih.Sum != tc.Notes[0].Overlap {
		t.Fatalf("interference histogram: %+v (want sum %d)", ih, tc.Notes[0].Overlap)
	}

	// Window still open at Finish: the span is stamped with overlap-so-far.
	sp2 := tr.Start(0, "get", "k")
	bg2 := tr.Background("scrub", "round")
	sp2.Finish()
	traces, _ = tr.Completed()
	tc2 := traces[len(traces)-1]
	if len(tc2.Notes) != 1 || tc2.Notes[0].Layer != "scrub" || tc2.Notes[0].Overlap == 0 {
		t.Fatalf("open-window notes: %+v", tc2.Notes)
	}
	// Span started after the window began: overlap is clipped to span start.
	sp3 := tr.Start(0, "get", "k2")
	sp3.Finish()
	traces, _ = tr.Completed()
	tc3 := traces[len(traces)-1]
	if tc3.Notes[0].Overlap >= tc3.Notes[0].Tick+tc3.Duration()+100 {
		t.Fatalf("overlap not clipped to span window: %+v of %+v", tc3.Notes[0], tc3)
	}
	if tc3.Notes[0].Overlap > tc3.Duration() {
		t.Fatalf("overlap %d exceeds span duration %d", tc3.Notes[0].Overlap, tc3.Duration())
	}
	bg2.End()
	bg2.End() // double End must not re-stamp anyone

	// A span finished after the double End sees no residual window.
	sp4 := tr.Start(0, "get", "k3")
	sp4.Finish()
	traces, _ = tr.Completed()
	tc4 := traces[len(traces)-1]
	if len(tc4.Notes) != 0 {
		t.Fatalf("ended window still stamping: %+v", tc4.Notes)
	}
	// scrub overlap must NOT land in compact.interference.
	if ih := o.Snapshot().Histograms[StageInterference]; ih.Count != 1 {
		t.Fatalf("non-compact layer fed interference: %+v", ih)
	}
}

// TestSlowLogThreshold: only spans at or past the threshold land in the slow
// ring; the completed ring holds both.
func TestSlowLogThreshold(t *testing.T) {
	_, tr := newTestTracer(8, 20)
	fast := tr.Start(0, "get", "fast")
	fast.Finish() // 2 ticks
	slow := tr.Start(0, "put", "slow")
	for i := 0; i < 30; i++ {
		slow.Now() // burn ticks so the span crosses the threshold
	}
	slow.Finish()
	completed, _ := tr.Completed()
	if len(completed) != 2 {
		t.Fatalf("completed: %d", len(completed))
	}
	slowTraces, _ := tr.Slow()
	if len(slowTraces) != 1 || slowTraces[0].Key != "slow" {
		t.Fatalf("slow ring: %+v", slowTraces)
	}
	if tr.SlowThreshold() != 20 {
		t.Fatalf("threshold: %d", tr.SlowThreshold())
	}
}

// TestTraceRingWraparound: the completed ring retains the newest traces and
// reports how many older ones were overwritten.
func TestTraceRingWraparound(t *testing.T) {
	_, tr := newTestTracer(3, 0)
	for i := 0; i < 5; i++ {
		sp := tr.Start(uint64(100+i), "put", "k")
		sp.Finish()
	}
	traces, trunc := tr.Completed()
	if len(traces) != 3 || trunc != 2 {
		t.Fatalf("got %d traces, %d truncated", len(traces), trunc)
	}
	for i, tc := range traces {
		if want := uint64(100 + 2 + i); tc.TraceID != want {
			t.Fatalf("trace %d: id %d, want %d (oldest-first)", i, tc.TraceID, want)
		}
	}
}

// TestStageHistograms: finishing a span feeds the per-stage histograms
// resolved at construction, through the ordinary registry snapshot.
func TestStageHistograms(t *testing.T) {
	o, tr := newTestTracer(4, 0)
	sp := tr.Start(0, "put", "k")
	t0 := sp.Now()
	sp.Stage(StageQueueWait, t0, "")
	t1 := sp.Now()
	sp.Stage(StageDiskSync, t1, "leader group=2")
	t2 := sp.Now()
	sp.Stage(StageReply, t2, "")
	sp.Finish()
	snap := o.Snapshot()
	for _, name := range []string{StageQueueWait, StageDiskSync, StageReply} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count != 1 {
			t.Fatalf("stage histogram %s missing or empty: %+v", name, h)
		}
	}
	if c := snap.Counters["trace.spans"]; c != 1 {
		t.Fatalf("trace.spans = %d", c)
	}
}

// TestTraceDeterministicReplay: under LogicalClock an identical call
// sequence renders byte-identical trace dumps — the replay property the
// conformance harness relies on.
func TestTraceDeterministicReplay(t *testing.T) {
	run := func() string {
		_, tr := newTestTracer(8, 5)
		sp := tr.Start(42, "put", "shard-9")
		t0 := sp.Now()
		sp.Stage(StageQueueWait, t0, "")
		bg := tr.Background("compact", "L2<-4 runs")
		t1 := sp.Now()
		sp.Stage(StageDiskSync, t1, "leader group=3")
		bg.End()
		sp.Finish()
		traces, trunc := tr.Completed()
		return FormatTraceDump(traces, trunc, UnitTicks)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay diverged:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	for _, want := range []string{"trace 42 put key=shard-9", StageQueueWait, "leader group=3", "~ [compact] L2<-4 runs overlap="} {
		if !strings.Contains(a, want) {
			t.Fatalf("rendered trace missing %q:\n%s", want, a)
		}
	}
}

// TestStageSumWithinSpan: stages recorded through the public API stay within
// the parent span and their durations sum to at most the span's duration.
func TestStageSumWithinSpan(t *testing.T) {
	_, tr := newTestTracer(4, 0)
	sp := tr.Start(0, "put", "k")
	for i := 0; i < 3; i++ {
		t0 := sp.Now()
		sp.Stage("s", t0, "")
	}
	sp.Finish()
	traces, _ := tr.Completed()
	tc := traces[0]
	var sum uint64
	for _, st := range tc.Stages {
		if st.Start < tc.Start || st.End > tc.End {
			t.Fatalf("stage outside span: %+v not in [%d,%d]", st, tc.Start, tc.End)
		}
		sum += st.Dur()
	}
	if sum > tc.Duration() {
		t.Fatalf("stage sum %d exceeds span duration %d", sum, tc.Duration())
	}
}

// TestReqTraceJSONRoundTrip: ReqTrace survives the wire encoding used by the
// trace RPC op.
func TestReqTraceJSONRoundTrip(t *testing.T) {
	_, tr := newTestTracer(4, 0)
	sp := tr.Start(9, "put", "k")
	t0 := sp.Now()
	sp.Stage(StageDiskSync, t0, "leader group=2")
	sp.Annotate("compact", "note")
	sp.Finish()
	traces, _ := tr.Completed()
	blob, err := json.Marshal(traces)
	if err != nil {
		t.Fatal(err)
	}
	var back []ReqTrace
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if FormatTraceDump(back, 0, UnitTicks) != FormatTraceDump(traces, 0, UnitTicks) {
		t.Fatalf("JSON round trip changed the trace:\n%s\nvs\n%s",
			FormatTraceDump(back, 0, UnitTicks), FormatTraceDump(traces, 0, UnitTicks))
	}
}

// TestSpanHammer drives concurrent span start/stage/annotate/finish, a
// background-window churner, and snapshot/dump readers across real
// goroutines — the -race target for the tracer's single-mutex design.
func TestSpanHammer(t *testing.T) {
	o, tr := newTestTracer(32, 1)
	const workers, per = 8, 200
	handles := make([]vsync.Handle, 0, workers+2)
	for w := 0; w < workers; w++ {
		w := w
		handles = append(handles, vsync.Go("spans", func() {
			for i := 0; i < per; i++ {
				sp := tr.Start(0, "put", "k")
				t0 := sp.Now()
				sp.Stage(StageQueueWait, t0, "")
				if i%3 == 0 {
					sp.Annotate("test", "note")
				}
				if w%2 == 0 && i%7 == 0 {
					sp.Finish()
					sp.Finish() // racing double finish must stay safe
				} else {
					sp.Finish()
				}
			}
		}))
	}
	handles = append(handles, vsync.Go("bg", func() {
		for i := 0; i < per; i++ {
			bg := tr.Background("compact", "step")
			bg.End()
		}
	}))
	handles = append(handles, vsync.Go("readers", func() {
		for i := 0; i < per; i++ {
			tr.Completed()
			tr.Slow()
			tr.ActiveCount()
			o.Snapshot()
		}
	}))
	for _, h := range handles {
		h.Join()
	}
	if got := o.Snapshot().Counters["trace.spans"]; got != workers*per {
		t.Fatalf("finished spans: %d, want %d", got, workers*per)
	}
	if tr.ActiveCount() != 0 {
		t.Fatalf("active spans leaked: %d", tr.ActiveCount())
	}
	if _, trunc := tr.Completed(); trunc != workers*per-32 {
		t.Fatalf("truncated: %d", trunc)
	}
}

package obs

import (
	"fmt"
	"strings"
	"testing"
)

// TestRingWraparound: a ring past capacity retains exactly the newest events
// in order, and Dump reports how many were overwritten.
func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Layer: "store", Op: fmt.Sprintf("op%d", i)})
	}
	events, truncated := r.Dump()
	if truncated != 6 {
		t.Fatalf("truncated = %d, want 6", truncated)
	}
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for i, e := range events {
		wantOp := fmt.Sprintf("op%d", 6+i)
		if e.Op != wantOp || e.Seq != uint64(6+i) {
			t.Errorf("event %d = %+v, want op %s seq %d", i, e, wantOp, 6+i)
		}
	}
	if r.Total() != 10 || r.Len() != 4 {
		t.Fatalf("total=%d len=%d", r.Total(), r.Len())
	}
}

// TestRingUnderfill: a ring below capacity dumps everything with no
// truncation marker.
func TestRingUnderfill(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.Record(Event{Op: fmt.Sprintf("op%d", i)})
	}
	events, truncated := r.Dump()
	if truncated != 0 || len(events) != 3 {
		t.Fatalf("truncated=%d len=%d", truncated, len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i) {
			t.Errorf("event %d seq %d", i, e.Seq)
		}
	}
	// Exactly at capacity: still no truncation.
	r2 := NewRing(3)
	for i := 0; i < 3; i++ {
		r2.Record(Event{})
	}
	if _, trunc := r2.Dump(); trunc != 0 {
		t.Fatalf("at-capacity truncated=%d", trunc)
	}
}

// TestFormatTraceTruncationMarking: the rendered trace leads with the
// overwritten-count marker so partial trails are visibly partial.
func TestFormatTraceTruncationMarking(t *testing.T) {
	r := NewRing(2)
	for i := 0; i < 5; i++ {
		r.Record(Event{Layer: "disk", Op: "write", Target: "e1/p2", Outcome: "ok"})
	}
	out := FormatTrace(r.Dump())
	if !strings.HasPrefix(out, "... 3 earlier events overwritten ...") {
		t.Fatalf("missing truncation marker: %q", out)
	}
	if strings.Count(out, "[disk] write") != 2 {
		t.Fatalf("want 2 rendered events: %q", out)
	}
	// No marker when nothing was lost.
	r2 := NewRing(4)
	r2.Record(Event{Op: "x"})
	if out := FormatTrace(r2.Dump()); strings.Contains(out, "overwritten") {
		t.Fatalf("spurious truncation marker: %q", out)
	}
}

// TestObsRecord: events recorded through an Obs carry clock ticks and are
// inert without a ring.
func TestObsRecord(t *testing.T) {
	o := New(nil)
	o.Record("store", "put", "k", "ok", 3) // no ring: dropped
	if o.TraceRing() != nil {
		t.Fatal("ring before WithTrace")
	}
	o.WithTrace(16)
	o.Record("store", "put", "k", "ok", 3)
	o.Record("store", "get", "k", Outcome(nil), 0)
	events, _ := o.TraceRing().Dump()
	if len(events) != 2 {
		t.Fatalf("recorded %d events", len(events))
	}
	if events[0].Tick == 0 || events[1].Tick <= events[0].Tick {
		t.Fatalf("ticks not monotonic: %+v", events)
	}
	if events[1].Outcome != "ok" {
		t.Fatalf("outcome: %+v", events[1])
	}
	if s := events[0].String(); !strings.Contains(s, "[store] put k -> ok (dur=3)") {
		t.Fatalf("render: %q", s)
	}
}

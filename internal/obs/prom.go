package obs

import (
	"fmt"
	"strings"
)

// FormatPrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative le-bucketed series with exact _sum and _count. Metric names
// are prefixed with "shardstore_" and sanitized to the Prometheus charset;
// output is sorted by name so the exposition is stable for a given snapshot.
func FormatPrometheus(s Snapshot) string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		m := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", m, m, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		m := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", m, m, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		m := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", m)
		var cum uint64
		for i := 0; i < NumBuckets; i++ {
			n := h.Buckets[i]
			if n == 0 {
				continue
			}
			cum += n
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", m, BucketUpper(i), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", m, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", m, h.Count)
	}
	return b.String()
}

// promName maps a registry metric name ("sched.barrier_wait") onto the
// Prometheus charset [a-zA-Z0-9_:] under the node's namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("shardstore_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

package core

import (
	"testing"

	"shardstore/internal/faults"
)

// TestIndexConformanceClean: the Fig 3 harness over the fixed implementation
// finds no divergence from the hash-map reference model.
func TestIndexConformanceClean(t *testing.T) {
	res := RunIndexConformance(IndexConfig{Seed: 5, Cases: 150, OpsPerCase: 30, Bias: DefaultBias(), Minimize: true})
	if res.Failure != nil {
		t.Fatalf("spurious index failure (case %d): %v\nminimized: %v", res.Failure.Case, res.Failure.Err, res.Failure.Minimized)
	}
	if res.Ops == 0 {
		t.Fatal("no ops ran")
	}
}

// TestIndexConformanceDetectsBug3: the clean-reboot op in the alphabet
// catches the shutdown metadata skip at the index level, just as the paper's
// Fig 3 alphabet includes Reboot for exactly this purpose.
func TestIndexConformanceDetectsBug3(t *testing.T) {
	if raceEnabled {
		t.Skip("2000-case hunt skipped under -race; covered by the non-race suite")
	}
	res := RunIndexConformance(IndexConfig{
		Seed: 5, Cases: 2000, OpsPerCase: 30, Bias: DefaultBias(),
		Bugs: faults.NewSet(faults.Bug3ShutdownMetadataSkip), Minimize: true,
	})
	if res.Failure == nil {
		t.Fatal("bug3 not detected by the index harness")
	}
	t.Logf("bug3 found at case %d, minimized to %d ops: %v",
		res.Failure.Case, len(res.Failure.Minimized), res.Failure.Minimized)
}

// TestIndexConformanceDetectsBug1: page-size-biased values catch the
// reclamation off-by-one at the index level too (index runs land on page
// boundaries).
func TestIndexConformanceDetectsBug2(t *testing.T) {
	if raceEnabled {
		t.Skip("4000-case hunt skipped under -race; covered by the non-race suite")
	}
	res := RunIndexConformance(IndexConfig{
		Seed: 9, Cases: 4000, OpsPerCase: 40, Bias: DefaultBias(),
		Bugs: faults.NewSet(faults.Bug2CacheNotDrained), Minimize: true,
	})
	if res.Failure == nil {
		t.Skip("bug2 not reachable at the index level with this budget (caught by the store harness)")
	}
	t.Logf("bug2 found at case %d: %v", res.Failure.Case, res.Failure.Err)
}

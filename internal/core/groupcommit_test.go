package core

import (
	"testing"

	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/store"
)

// TestGroupCommitTornBarrierDetected seeds the group-commit defect — the
// leader skips the device flush but still reports the whole group durable —
// and requires the §5 persistence check to catch it: a durable-acknowledged
// put whose pages were still in the volatile disk cache does not survive a
// crash, contradicting the model's persistence claim.
func TestGroupCommitTornBarrierDetected(t *testing.T) {
	cfg := Config{
		Seed: 1234, Cases: 3000, OpsPerCase: 40,
		Bias:              DefaultBias(),
		EnableCrashes:     true,
		EnableGroupCommit: true,
		StoreConfig: store.Config{
			Bugs: faults.NewSet(faults.FaultGroupCommitTornBarrier),
		},
		Minimize: true,
	}
	res := Run(cfg)
	if res.Failure == nil {
		t.Fatalf("torn-barrier fault not detected in %d cases (%d ops, %d crashes)",
			res.Cases, res.Ops, res.Crashes)
	}
	t.Logf("detected in case %d; minimized to %d ops: %v",
		res.Failure.Case, len(res.Failure.Minimized), res.Failure.MinimizedErr)
}

// TestGroupCommitConformanceStress runs the full conformance harness with
// the durability-waiting put in the alphabet: 12k cases across three seeds
// must stay clean, i.e. group commit changes scheduling and amortization
// but never a crash-consistency verdict.
func TestGroupCommitConformanceStress(t *testing.T) {
	if raceEnabled {
		t.Skip("12k-case stress skipped under -race; covered by the non-race suite")
	}
	seeds := []int64{1234, 77, 20260807}
	cases := 4000
	if testing.Short() {
		seeds = seeds[:1]
		cases = 1000
	}
	for _, seed := range seeds {
		seed := seed
		cfg := Config{
			Seed: seed, Cases: cases, OpsPerCase: 60,
			Bias:              Bias{KeyReuse: 0.8, PageSizeValues: 0.6, ConstantValueBytes: 0.5, ZeroValues: 0.5, UUIDZeroBias: 0.6},
			EnableCrashes:     true,
			EnableReboots:     true,
			EnableGroupCommit: true,
			StoreConfig: store.Config{
				Disk: disk.Config{PageSize: 128, PagesPerExtent: 8, ExtentCount: 8},
				Bugs: faults.NewSet(),
			},
			Minimize: true,
		}
		res := Run(cfg)
		if res.Failure != nil {
			t.Fatalf("seed %d case %d: %v\nminimized(%d): %v", seed,
				res.Failure.Case, res.Failure.MinimizedErr, len(res.Failure.Minimized), res.Failure.Minimized)
		}
		t.Logf("seed %d: %d cases, %d ops, %d crashes clean", seed, res.Cases, res.Ops, res.Crashes)
	}
}

package core

import (
	"strings"
	"testing"

	"shardstore/internal/faults"
	"shardstore/internal/store"
)

// TestScrubConformanceClean checks the scrub contract with the fixed code
// paths: under silent-corruption injection with R-way replication, k < R
// rotted copies never cost readability (scrub repairs them, reads fall back
// meanwhile), and k = R surfaces as a reported loss — reads fail, they never
// return wrong bytes — including across crash states taken mid-repair.
func TestScrubConformanceClean(t *testing.T) {
	modes := []struct {
		name string
		mut  func(*Config)
	}{
		{"scrub-only", func(c *Config) { c.EnableScrub = true }},
		{"corruption", func(c *Config) { c.EnableCorruption = true }},
		{"corruption+scrub", func(c *Config) {
			c.EnableCorruption = true
			c.EnableScrub = true
		}},
		{"corruption+scrub+crashes", func(c *Config) {
			c.EnableCorruption = true
			c.EnableScrub = true
			c.EnableCrashes = true
			c.EnableReboots = true
		}},
		{"corruption+scrub+three-replicas", func(c *Config) {
			c.EnableCorruption = true
			c.EnableScrub = true
			c.StoreConfig.Replicas = 3
		}},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			cases := 120
			if testing.Short() {
				cases = 30
			}
			cfg := Config{Seed: 77, Cases: cases, OpsPerCase: 50, Bias: DefaultBias()}
			m.mut(&cfg)
			res := Run(cfg)
			if res.Failure != nil {
				t.Fatalf("clean scrub run found spurious failure (case %d, seed %d): %v\nminimized (%d ops): %v",
					res.Failure.Case, res.Failure.Seed, res.Failure.Err, len(res.Failure.Minimized), res.Failure.Minimized)
			}
			if res.Ops == 0 {
				t.Fatal("no ops ran")
			}
		})
	}
}

// TestScrubRepairRestoresReadability is a deterministic end-to-end property
// check: a fixed sequence that puts a shard, rots one replica (k < R), scrubs,
// and reads — run in lockstep with the model, then crash-rebooted and read
// again. Any read error or wrong value fails the sequence.
func TestScrubRepairRestoresReadability(t *testing.T) {
	cfg := Config{Seed: 5, EnableCorruption: true, EnableScrub: true, EnableCrashes: true, EnableReboots: true}
	seq := []Op{
		{Kind: OpPut, Key: "k03", Value: []byte("replicated payload"), Tag: 11, CrashSeed: 11},
		{Kind: OpFlushIndex, Tag: 12, CrashSeed: 12},
		{Kind: OpFlushSuperblock, Tag: 13, CrashSeed: 13},
		{Kind: OpPump, Tag: 14, CrashSeed: 14},
		{Kind: OpSchedSync, Tag: 15, CrashSeed: 15},
		{Kind: OpRotReplica, Key: "k03", Extent: 0, Tag: 16, CrashSeed: 16},
		{Kind: OpScrub, Tag: 17, CrashSeed: 17},
		{Kind: OpGet, Key: "k03", Tag: 18, CrashSeed: 18},
		{Kind: OpDirtyReboot, Tag: 19, CrashSeed: 19},
		{Kind: OpGet, Key: "k03", Tag: 20, CrashSeed: 20},
	}
	if _, _, err := RunSeq(seq, cfg); err != nil {
		t.Fatalf("k<R repair sequence violated the property: %v", err)
	}
}

// TestRotAllLossIsReportedNotServed: with every replica rotted (k = R) the
// sequence must still conform — the model tolerates read errors for the
// rotted shard, the scrubber reports the loss, and no wrong bytes are served.
func TestRotAllLossIsReportedNotServed(t *testing.T) {
	cfg := Config{Seed: 6, EnableCorruption: true, EnableScrub: true}
	seq := []Op{
		{Kind: OpPut, Key: "k07", Value: []byte("both copies doomed"), Tag: 21, CrashSeed: 21},
		{Kind: OpFlushIndex, Tag: 22, CrashSeed: 22},
		{Kind: OpFlushSuperblock, Tag: 23, CrashSeed: 23},
		{Kind: OpPump, Tag: 24, CrashSeed: 24},
		{Kind: OpSchedSync, Tag: 25, CrashSeed: 25},
		{Kind: OpDrainCache, Tag: 26, CrashSeed: 26},
		{Kind: OpRotAll, Key: "k07", Extent: 0, Tag: 27, CrashSeed: 27},
		{Kind: OpScrub, Tag: 28, CrashSeed: 28},
		{Kind: OpGet, Key: "k07", Tag: 29, CrashSeed: 29},
		// A rewrite heals the shard; the loss verdict must clear.
		{Kind: OpPut, Key: "k07", Value: []byte("fresh copy"), Tag: 30, CrashSeed: 30},
		{Kind: OpScrub, Tag: 31, CrashSeed: 31},
		{Kind: OpGet, Key: "k07", Tag: 32, CrashSeed: 32},
	}
	if _, _, err := RunSeq(seq, cfg); err != nil {
		t.Fatalf("k=R loss sequence violated the property: %v", err)
	}
}

// TestDetectScrubRepairUnverified: the seeded scrubber defect (repairing from
// the first replica without re-verifying its frame) must be caught by the
// conformance harness under corruption injection — either by laundering
// rotted payload bytes into a valid-CRC frame that a later read returns
// (value mismatch), or by declaring a shard irreparable while a verified
// survivor existed (dishonest loss verdict).
func TestDetectScrubRepairUnverified(t *testing.T) {
	if testing.Short() {
		t.Skip("detection run")
	}
	cfg := Config{
		Seed:             1234,
		Cases:            4000,
		OpsPerCase:       50,
		Bias:             DefaultBias(),
		EnableCorruption: true,
		EnableScrub:      true,
		StoreConfig:      store.Config{Bugs: faults.NewSet(faults.FaultScrubRepairUnverified)},
		Minimize:         true,
	}
	res := Run(cfg)
	if res.Failure == nil {
		t.Fatalf("scrub-repair-unverified defect not detected within %d cases (%d ops)", cfg.Cases, res.Ops)
	}
	t.Logf("detected in case %d; minimized to %d ops: %v",
		res.Failure.Case, len(res.Failure.Minimized), res.Failure.MinimizedErr)
	// The counterexample must replay: the minimized sequence still fails.
	if _, _, err := RunSeq(res.Failure.Minimized, cfg); err == nil {
		t.Fatal("minimized counterexample does not replay")
	} else if strings.Contains(err.Error(), "unknown op kind") {
		t.Fatalf("minimized counterexample malformed: %v", err)
	}
}

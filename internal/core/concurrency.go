package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"shardstore/internal/coverage"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/linearize"
	"shardstore/internal/lsm"
	"shardstore/internal/model"
	"shardstore/internal/shuttle"
	"shardstore/internal/store"
	"shardstore/internal/vsync"
)

// This file contains the §6 stateless-model-checking harnesses: hand-written
// concurrent scenarios (the paper's Fig 4 and the harnesses for bugs
// #11–#16), each expressed as a deterministic body for shuttle.Explore.
// Assertions are panics; shuttle reports panics and deadlocks with a replay
// trace.

// concStoreConfig builds a small store for concurrency harnesses.
func concStoreConfig(bugs *faults.Set) store.Config {
	return store.Config{
		Disk:          disk.Config{PageSize: 128, PagesPerExtent: 8, ExtentCount: 24},
		Seed:          7,
		Bugs:          bugs,
		Coverage:      coverage.NewRegistry(),
		StagingTokens: 64,
	}
}

func mustStore(cfg store.Config) *store.Store {
	s, _, err := store.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("harness: store setup: %v", err))
	}
	return s
}

// cleanReopen shuts the store down cleanly and recovers it from disk,
// panicking if either step fails with a non-benign error.
func cleanReopen(st *store.Store) *store.Store {
	if err := st.CleanShutdown(); err != nil {
		if benignResourceErr(err) {
			// Disk full during shutdown flush: recover from whatever is
			// durable; the keys in these harnesses were flushed earlier.
			_ = err
		} else {
			panic(fmt.Sprintf("harness: clean shutdown: %v", err))
		}
	}
	ns, err := store.Open(st.Disk(), st.Config())
	if err != nil {
		panic(fmt.Sprintf("harness: recovery failed: %v", err))
	}
	return ns
}

func must(err error, what string) {
	if err != nil && !benignResourceErr(err) && !errors.Is(err, lsm.ErrNotFound) {
		panic(fmt.Sprintf("harness: %s: %v", what, err))
	}
}

// Fig4Harness is the paper's Fig 4 test: an index pre-populated with keys,
// then three concurrent threads — chunk reclamation, LSM compaction, and a
// writer that overwrites keys and immediately reads them back — with
// read-after-write consistency as the property. It catches bug #14 (the
// compaction/reclamation race that loses fresh index entries).
func Fig4Harness(bugs *faults.Set) func() {
	return func() {
		cfg := concStoreConfig(bugs)
		cfg.MaxRuns = 16 // see Bug14Harness: avoid cache-healing auto-compactions
		st := mustStore(cfg)
		// Initial state: several keys across two runs, with enough overwrite
		// garbage that reclamation has work to do.
		for i := 0; i < 6; i++ {
			k := fmt.Sprintf("k%d", i)
			must(e2(st.Put(k, bytes.Repeat([]byte{byte(i + 1)}, 100))), "seed put")
		}
		must(e2(st.FlushIndex()), "seed flush")
		for i := 0; i < 6; i++ {
			k := fmt.Sprintf("k%d", i)
			must(e2(st.Put(k, bytes.Repeat([]byte{byte(i + 1)}, 40))), "overwrite put")
		}
		must(e2(st.FlushIndex()), "seed flush 2")
		must(st.Pump(), "seed pump")

		t1 := vsync.Go("reclaim", func() {
			for _, ext := range st.Chunks().ReclaimCandidates() {
				_ = st.Reclaim(ext)
			}
		})
		t2 := vsync.Go("compact", func() {
			must(st.CompactIndex(), "compact")
		})
		t3 := vsync.Go("writer", func() {
			for i := 0; i < 2; i++ {
				k := fmt.Sprintf("k%d", i)
				v := bytes.Repeat([]byte{0xA0 + byte(i)}, 120)
				must(e2(st.Put(k, v)), "write")
				got, err := st.Get(k)
				if err != nil || !bytes.Equal(got, v) {
					panic(fmt.Sprintf("read-after-write violation on %s: got %d bytes, err=%v", k, len(got), err))
				}
			}
		})
		t1.Join()
		t2.Join()
		t3.Join()

		// Final sweep through a clean reboot: every key must still be
		// readable from disk state alone.
		st2 := cleanReopen(st)
		for i := 0; i < 6; i++ {
			k := fmt.Sprintf("k%d", i)
			if _, err := st2.Get(k); err != nil {
				panic(fmt.Sprintf("key %s lost after concurrent maintenance: %v", k, err))
			}
		}
	}
}

// e2 discards a call's first result, forwarding its error (a helper so that
// multi-valued calls compose with must).
func e2[T any](v T, err error) error {
	_ = v
	return err
}

// Bug11Harness races a reader holding a stale locator against reclamation
// recycling that locator: delete a shard, reclaim its extent, and write a
// different shard whose chunk lands at the same physical locator. The
// reader's Get must return the original value or not-found — never another
// shard's bytes.
func Bug11Harness(bugs *faults.Set) func() {
	return func() {
		st := mustStore(concStoreConfig(bugs))
		v1 := bytes.Repeat([]byte{0x11}, 60)
		must(e2(st.Put("victimx", v1)), "seed victim")
		// Fill the victim's extent and roll the append target past it so
		// reclamation is willing to take it.
		victimExt := disk.ExtentID(st.Chunks().ActiveExtent())
		for i := 0; i < 8 && disk.ExtentID(st.Chunks().ActiveExtent()) == victimExt; i++ {
			must(e2(st.Put(fmt.Sprintf("fill%03d", i), bytes.Repeat([]byte{0xEE}, 200))), "seed fill")
		}
		must(e2(st.FlushIndex()), "seed flush")
		must(st.Pump(), "seed pump")

		reader := vsync.Go("reader", func() {
			got, err := st.Get("victimx")
			switch {
			case err == nil && !bytes.Equal(got, v1):
				panic(fmt.Sprintf("stale locator returned wrong data: %d bytes %x...", len(got), got[:minInt(8, len(got))]))
			case err != nil && !errors.Is(err, store.ErrNotFound) && !benignResourceErr(err):
				// The validated implementation turns a stale locator into a
				// retry through the index, which resolves to the tombstone;
				// surfacing a raw IO error means the revalidation is missing.
				panic(fmt.Sprintf("stale locator surfaced an IO error instead of revalidating: %v", err))
			}
		})
		mutator := vsync.Go("mutator", func() {
			must(e2(st.Delete("victimx")), "delete")
			must(e2(st.FlushIndex()), "flush tombstone")
			must(st.Pump(), "pump tombstone")
			if err := st.Reclaim(victimExt); err != nil {
				return // busy: the race window did not open this schedule
			}
			// Keep writing until a new chunk claims the victim's old locator
			// (offset 0 of the recycled extent).
			for i := 0; i < 12 && st.Extents().Pointer(victimExt) == 0; i++ {
				must(e2(st.Put(fmt.Sprintf("squat%02d", i), bytes.Repeat([]byte{0x22}, 60))), "squat")
			}
		})
		reader.Join()
		mutator.Join()
	}
}

// Bug12Harness exercises the superblock staging token pool under pressure:
// putter threads stage pointer updates while a flusher drains them. With
// bug #12 the flusher competes for a token and the system deadlocks.
func Bug12Harness(bugs *faults.Set) func() {
	return func() {
		cfg := concStoreConfig(bugs)
		cfg.StagingTokens = 2
		st := mustStore(cfg)

		w1 := vsync.Go("put1", func() {
			must(e2(st.Put("a", []byte{1})), "put a")
		})
		w2 := vsync.Go("put2", func() {
			must(e2(st.Put("b", []byte{2})), "put b")
		})
		flusher := vsync.Go("flusher", func() {
			for i := 0; i < 3; i++ {
				must(e2(st.FlushSuperblock()), "flush superblock")
				vsync.Yield()
			}
		})
		w1.Join()
		w2.Join()
		flusher.Join()
	}
}

// Bug13Harness races the control-plane listing against shard removal. The
// property: a shard that exists for the whole harness ("stable") must appear
// in every listing.
func Bug13Harness(bugs *faults.Set) func() {
	return func() {
		st := mustStore(concStoreConfig(bugs))
		must(e2(st.Put("a-doomed", []byte{1})), "seed")
		must(e2(st.Put("b-doomed", []byte{2})), "seed")
		must(e2(st.Put("z-stable", []byte{3})), "seed")

		lister := vsync.Go("lister", func() {
			ids, err := st.List()
			must(err, "list")
			seen := false
			for _, id := range ids {
				if id == "z-stable" {
					seen = true
				}
			}
			if !seen {
				panic(fmt.Sprintf("listing missed a shard that was never removed: %v", ids))
			}
		})
		remover := vsync.Go("remover", func() {
			must(e2(st.Delete("a-doomed")), "delete a")
			must(e2(st.Delete("b-doomed")), "delete b")
		})
		lister.Join()
		remover.Join()
	}
}

// Bug14Harness is the paper's §6 worked example in its sharpest form: a
// compaction whose freshly written run chunk must stay pinned until the
// metadata references it, racing a writer (whose puts fill the active
// extent, moving the append target) and an eager reclaimer.
func Bug14Harness(bugs *faults.Set) func() {
	return func() {
		cfg := concStoreConfig(bugs)
		// A high run limit keeps the shutdown path from auto-compacting:
		// an auto-compaction would read the dropped run's entries out of
		// the in-memory run cache and re-write them, healing the dangling
		// metadata reference before recovery could observe it.
		cfg.MaxRuns = 16
		st := mustStore(cfg)
		for i := 0; i < 4; i++ {
			k := fmt.Sprintf("k%d", i)
			must(e2(st.Put(k, bytes.Repeat([]byte{byte(i + 1)}, 60))), "seed put")
			must(e2(st.FlushIndex()), "seed flush")
		}
		must(st.Pump(), "seed pump")

		compactor := vsync.Go("compact", func() {
			must(st.CompactIndex(), "compact")
		})
		filler := vsync.Go("filler", func() {
			// Write enough to roll the active extent past whichever extent
			// holds the compactor's new run chunk, making it reclaimable.
			for i := 0; i < 8; i++ {
				must(e2(st.Put(fmt.Sprintf("fill%d", i), bytes.Repeat([]byte{0xF0 + byte(i)}, 200))), "fill")
			}
		})
		reclaimer := vsync.Go("reclaim", func() {
			// Multiple passes with fresh candidate lists: the extent holding
			// the compactor's new run only becomes a candidate after the
			// filler rolls the append target past it.
			for i := 0; i < 4; i++ {
				for _, ext := range st.Chunks().ReclaimCandidates() {
					_ = st.Reclaim(ext)
					vsync.Yield()
				}
				vsync.Yield()
			}
		})
		compactor.Join()
		filler.Join()
		reclaimer.Join()

		// Verify through a clean reboot: the in-memory run cache could mask a
		// dropped run chunk, but recovery reads the metadata and runs from
		// disk.
		st2 := cleanReopen(st)
		for i := 0; i < 4; i++ {
			k := fmt.Sprintf("k%d", i)
			if _, err := st2.Get(k); err != nil {
				panic(fmt.Sprintf("index entries lost by compaction/reclamation race: %s: %v", k, err))
			}
		}
	}
}

// Bug15Harness exercises the LSM tree over the reference chunk store (the
// mock, as in Fig 4: "the test mocks out the persistent chunk storage") with
// a reclaim between flushes. Locator uniqueness is the property other code
// assumes: with bug #15 the mock re-issues locators and the tree's run cache
// serves stale entries.
func Bug15Harness(bugs *faults.Set) func() {
	return func() {
		cs := model.NewRefChunkStore(bugs)
		ms := model.NewRefMetaStore()
		tree, err := lsm.NewTree(cs, ms, model.ResolvedFutures{}, lsm.Config{MaxRuns: 8}, coverage.NewRegistry(), bugs)
		must(err, "tree setup")

		writer := vsync.Go("writer", func() {
			must(e2(tree.Put("x", []byte{1})), "put x1")
			must(e2(tree.Flush()), "flush 1")
			must(e2(tree.Put("x", []byte{2})), "put x2")
			must(e2(tree.Flush()), "flush 2")
			must(tree.Compact(), "compact")
		})
		gc := vsync.Go("reclaim", func() {
			cs.Reclaim()
			vsync.Yield()
			cs.Reclaim()
		})
		writer.Join()
		gc.Join()

		must(e2(tree.Put("y", []byte{9})), "put y")
		must(e2(tree.Flush()), "flush 3")
		got, err := tree.Get("x")
		if err != nil || len(got) != 1 || got[0] != 2 {
			panic(fmt.Sprintf("locator reuse corrupted the index: x = %v, %v", got, err))
		}
		goty, err := tree.Get("y")
		if err != nil || len(goty) != 1 || goty[0] != 9 {
			panic(fmt.Sprintf("locator reuse corrupted the index: y = %v, %v", goty, err))
		}
	}
}

// Bug16Harness races control-plane bulk operations: BulkRemove("x") against
// BulkCreate("a"). The created shard sorts before the removed one, shifting
// catalog positions; positional deletion then removes an innocent shard.
func Bug16Harness(bugs *faults.Set) func() {
	return func() {
		st := mustStore(concStoreConfig(bugs))
		must(e2(st.Put("m-innocent", []byte{1})), "seed m")
		must(e2(st.Put("x-target", []byte{2})), "seed x")

		remover := vsync.Go("bulk-remove", func() {
			must(e2(st.BulkRemove([]string{"x-target"})), "bulk remove")
		})
		creator := vsync.Go("bulk-create", func() {
			must(e2(st.BulkCreate([]string{"a-new"}, [][]byte{{3}})), "bulk create")
		})
		remover.Join()
		creator.Join()

		if _, err := st.Get("m-innocent"); err != nil {
			panic(fmt.Sprintf("bulk remove deleted an innocent shard: %v", err))
		}
		if _, err := st.Get("x-target"); !errors.Is(err, store.ErrNotFound) {
			panic(fmt.Sprintf("bulk remove missed its target: %v", err))
		}
		if _, err := st.Get("a-new"); err != nil {
			panic(fmt.Sprintf("bulk create lost its shard: %v", err))
		}
	}
}

// LinearizabilityHarness runs concurrent puts/gets/deletes through the store
// and checks the recorded history against the sequential KV specification —
// the §6 property in its general form.
func LinearizabilityHarness(bugs *faults.Set) func() {
	return func() {
		st := mustStore(concStoreConfig(bugs))
		must(e2(st.Put("k", []byte("v0"))), "seed")
		rec := linearize.NewRecorder()

		doPut := func(client int, val string) {
			done := rec.Begin(client, linearize.KVInput{Op: "put", Key: "k", Value: val})
			_, err := st.Put("k", []byte(val))
			done(linearize.KVOutput{Found: true, Err: err != nil})
		}
		doGet := func(client int) {
			done := rec.Begin(client, linearize.KVInput{Op: "get", Key: "k"})
			v, err := st.Get("k")
			out := linearize.KVOutput{}
			switch {
			case errors.Is(err, store.ErrNotFound):
			case err != nil:
				out.Err = true
			default:
				out.Found = true
				out.Value = string(v)
			}
			done(out)
		}
		t1 := vsync.Go("c1", func() { doPut(1, "v1"); doGet(1) })
		t2 := vsync.Go("c2", func() { doPut(2, "v2") })
		t3 := vsync.Go("c3", func() { doGet(3); doGet(3) })
		t1.Join()
		t2.Join()
		t3.Join()

		hist := rec.History()
		// Seed the model with the initial value via a synthetic op.
		seeded := append([]linearize.Operation{{
			Client: 0,
			Input:  linearize.KVInput{Op: "put", Key: "k", Value: "v0"},
			Output: linearize.KVOutput{Found: true},
			Invoke: -2, Return: -1,
		}}, hist...)
		if res := linearize.Check(linearize.KVSpec(), seeded); !res.Ok {
			panic("history not linearizable:\n" + linearize.FormatHistory(hist))
		}
	}
}

// ScanLinearizabilityHarness runs a concurrent scanner against writers while
// a flush and a full compaction churn the run set underneath — the
// ordered-map extension of the §6 property. Every scan page must be the
// ordered snapshot of *some* point in the linearization order: a torn level
// swap (pre-swap deep levels composed with post-swap L0) yields a page no
// sequential execution can produce, which the checker rejects.
func ScanLinearizabilityHarness(bugs *faults.Set) func() {
	return func() {
		st := mustStore(concStoreConfig(bugs))
		must(e2(st.Put("a", []byte("a0"))), "seed")
		must(e2(st.Put("b", []byte("b0"))), "seed")
		must(e2(st.FlushIndex()), "seed flush")
		rec := linearize.NewRecorder()

		doPut := func(client int, key, val string) {
			done := rec.Begin(client, linearize.KVInput{Op: "put", Key: key, Value: val})
			_, err := st.Put(key, []byte(val))
			done(linearize.KVOutput{Found: true, Err: err != nil})
		}
		doScan := func(client int) {
			done := rec.Begin(client, linearize.KVInput{Op: "scan"})
			entries, more, err := st.Scan("", "", 0)
			out := linearize.KVOutput{}
			if err != nil {
				out.Err = true
			} else {
				parts := make([]string, len(entries))
				for i, e := range entries {
					parts[i] = e.Key + "=" + string(e.Value)
				}
				out.Value = strings.Join(parts, "\x00")
				out.Found = true
				out.More = more
			}
			done(out)
		}

		t1 := vsync.Go("writer", func() { doPut(1, "a", "a1"); doPut(1, "c", "c1") })
		t2 := vsync.Go("churn", func() {
			must(e2(st.FlushIndex()), "flush")
			must(st.CompactIndex(), "compact")
		})
		t3 := vsync.Go("scanner", func() { doScan(3); doScan(3) })
		t1.Join()
		t2.Join()
		t3.Join()

		hist := rec.History()
		// Seed the model with the initial mapping via synthetic ops.
		seeded := append([]linearize.Operation{
			{Client: 0, Input: linearize.KVInput{Op: "put", Key: "a", Value: "a0"},
				Output: linearize.KVOutput{Found: true}, Invoke: -4, Return: -3},
			{Client: 0, Input: linearize.KVInput{Op: "put", Key: "b", Value: "b0"},
				Output: linearize.KVOutput{Found: true}, Invoke: -2, Return: -1},
		}, hist...)
		if res := linearize.Check(linearize.KVSpec(), seeded); !res.Ok {
			panic("scan history not linearizable:\n" + linearize.FormatHistory(hist))
		}
	}
}

// ConcurrencyHarnessFor returns the shuttle harness that hunts bug b.
func ConcurrencyHarnessFor(b faults.Bug) func(*faults.Set) func() {
	switch b {
	case faults.Bug11WriteFlushRace:
		return Bug11Harness
	case faults.Bug12BufferPoolDeadlock:
		return Bug12Harness
	case faults.Bug13ListRemoveRace:
		return Bug13Harness
	case faults.Bug14CompactionReclaimRace:
		return Bug14Harness
	case faults.Bug15RefModelLocatorReuse:
		return Bug15Harness
	case faults.Bug16BulkCreateRemoveRace:
		return Bug16Harness
	default:
		return nil
	}
}

// DetectConcurrent hunts a concurrency bug (Fig 5 #11–#16) with the given
// strategy and iteration budget. The clean-baseline counterpart is running
// the same harness with an empty fault set.
func DetectConcurrent(b faults.Bug, strategy shuttle.Strategy, iterations int) (DetectionResult, shuttle.Report) {
	harness := ConcurrencyHarnessFor(b)
	if harness == nil {
		return DetectionResult{Bug: b, Checker: CheckerModelCheck}, shuttle.Report{}
	}
	body := harness(faults.NewSet(b))
	rep := shuttle.Explore(shuttle.Options{Strategy: strategy, Iterations: iterations}, body)
	out := DetectionResult{Bug: b, Checker: CheckerModelCheck}
	if rep.Failed() {
		out.Detected = true
		out.CasesNeeded = rep.First().Iteration + 1
	}
	return out, rep
}

package core

import (
	"testing"
)

// TestCleanConformanceBaseline is the foundational soundness check: with
// every seeded bug disabled, the conformance harness must find no violations
// across sequential, rebooting, crashing, and failure-injecting workloads.
// A failure here is a false positive in the harness or a real bug in the
// storage stack — both must be fixed before the Fig 5 experiments mean
// anything.
func TestCleanConformanceBaseline(t *testing.T) {
	modes := []struct {
		name string
		mut  func(*Config)
	}{
		{"sequential", func(c *Config) {}},
		{"reboots", func(c *Config) { c.EnableReboots = true }},
		{"crashes", func(c *Config) { c.EnableCrashes = true; c.EnableReboots = true }},
		{"failures", func(c *Config) { c.EnableFailures = true }},
		{"control-plane", func(c *Config) { c.EnableControlPlane = true }},
		{"everything", func(c *Config) {
			c.EnableCrashes = true
			c.EnableReboots = true
			c.EnableFailures = true
			c.EnableControlPlane = true
		}},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			cfg := Config{Seed: 42, Cases: 60, OpsPerCase: 40, Bias: DefaultBias()}
			m.mut(&cfg)
			res := Run(cfg)
			if res.Failure != nil {
				t.Fatalf("clean run found spurious failure (case %d, seed %d): %v\nminimized (%d ops): %v",
					res.Failure.Case, res.Failure.Seed, res.Failure.Err, len(res.Failure.Minimized), res.Failure.Minimized)
			}
			if res.Ops == 0 {
				t.Fatal("no ops ran")
			}
		})
	}
}

package core

import (
	"bytes"
	"fmt"

	"shardstore/internal/compact"
	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/store"
	"shardstore/internal/vsync"
)

// This file holds the shuttle harnesses for leveled compaction: background
// compaction steps interleaved with foreground puts, gets, reclamation, and
// a crash — the §6 pattern applied to the manifest-generation swap. The
// properties: read-after-write holds while compactions run, a clean reboot
// loses nothing, and a crash at any explored interleaving point recovers to
// a state where every durable-acknowledged write still reads back.

// compactConcConfig is concStoreConfig plus an aggressive compaction policy,
// so the tiny harness histories still produce multi-level shapes.
func compactConcConfig(bugs *faults.Set) store.Config {
	cfg := concStoreConfig(bugs)
	cfg.MaxRuns = 16 // see Bug14Harness: avoid cache-healing auto-compactions
	cfg.Compact = compact.Policy{L0Trigger: 2, BaseBytes: 256, Growth: 2, MaxLevels: 4}
	return cfg
}

// seedCompactRuns populates several L0 runs so the engine has work to do.
func seedCompactRuns(st *store.Store, keys int) {
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%d", i)
		must(e2(st.Put(k, bytes.Repeat([]byte{byte(i + 1)}, 80))), "seed put")
		if i%2 == 1 {
			must(e2(st.FlushIndex()), "seed flush")
		}
	}
	must(e2(st.FlushIndex()), "seed flush final")
	must(st.Pump(), "seed pump")
}

// CompactForegroundHarness interleaves leveled compaction with a foreground
// writer (read-after-write property), a reader over seeded keys, and chunk
// reclamation, then sweeps everything through a clean reboot. It is the
// Fig 4 shape with the incremental manifest-swapping compaction in place of
// the full merge.
func CompactForegroundHarness(bugs *faults.Set) func() {
	return func() {
		st := mustStore(compactConcConfig(bugs))
		seedCompactRuns(st, 6)

		t1 := vsync.Go("compact", func() {
			for i := 0; i < 3; i++ {
				must(e2(st.CompactStep()), "compact step")
			}
		})
		t2 := vsync.Go("reclaim", func() {
			for _, ext := range st.Chunks().ReclaimCandidates() {
				_ = st.Reclaim(ext)
			}
		})
		t3 := vsync.Go("writer", func() {
			for i := 0; i < 2; i++ {
				k := fmt.Sprintf("k%d", i)
				v := bytes.Repeat([]byte{0xB0 + byte(i)}, 100)
				must(e2(st.Put(k, v)), "write")
				got, err := st.Get(k)
				if err != nil || !bytes.Equal(got, v) {
					panic(fmt.Sprintf("read-after-write violation on %s during compaction: got %d bytes, err=%v", k, len(got), err))
				}
			}
		})
		t4 := vsync.Go("reader", func() {
			for i := 2; i < 6; i++ {
				k := fmt.Sprintf("k%d", i)
				got, err := st.Get(k)
				if err != nil {
					panic(fmt.Sprintf("read of %s failed during compaction: %v", k, err))
				}
				if len(got) == 0 {
					panic(fmt.Sprintf("read of %s returned empty value during compaction", k))
				}
			}
		})
		t1.Join()
		t2.Join()
		t3.Join()
		t4.Join()

		st2 := cleanReopen(st)
		for i := 0; i < 6; i++ {
			k := fmt.Sprintf("k%d", i)
			if _, err := st2.Get(k); err != nil {
				panic(fmt.Sprintf("key %s lost after concurrent compaction: %v", k, err))
			}
		}
	}
}

// CompactCrashHarness races durable foreground writes against compaction
// steps, then crashes (tearing nothing the cache already holds — the torn
// states themselves are the conformance harness's domain) at whatever point
// the schedule reached and recovers. Every write that crossed the commit
// barrier before the crash must read back byte-identically: an in-flight
// manifest swap is invisible if it didn't commit, and complete if it did.
func CompactCrashHarness(bugs *faults.Set) func() {
	return func() {
		st := mustStore(compactConcConfig(bugs))
		seedCompactRuns(st, 4)

		durable := make([][]byte, 2)
		t1 := vsync.Go("compact", func() {
			for i := 0; i < 3; i++ {
				must(e2(st.CompactStep()), "compact step")
			}
		})
		t2 := vsync.Go("writer", func() {
			for i := 0; i < 2; i++ {
				k := fmt.Sprintf("k%d", i)
				v := bytes.Repeat([]byte{0xC0 + byte(i)}, 90)
				d, err := st.Put(k, v)
				must(err, "durable write")
				if err == nil {
					if werr := st.WaitDurable(d); werr == nil {
						durable[i] = v
					}
				}
			}
		})
		t1.Join()
		t2.Join()

		st.CrashKeep(func(disk.PageAddr) bool { return true })
		st2, err := store.Open(st.Disk(), st.Config())
		if err != nil {
			panic(fmt.Sprintf("recovery after crash during compaction: %v", err))
		}
		for i, v := range durable {
			if v == nil {
				continue
			}
			k := fmt.Sprintf("k%d", i)
			got, err := st2.Get(k)
			if err != nil || !bytes.Equal(got, v) {
				panic(fmt.Sprintf("durable write %s lost across crash during compaction: got %d bytes, err=%v", k, len(got), err))
			}
		}
		// Seeded keys were flushed and pumped before the race; they must
		// survive any crash point too.
		for i := 2; i < 4; i++ {
			k := fmt.Sprintf("k%d", i)
			if _, err := st2.Get(k); err != nil {
				panic(fmt.Sprintf("seeded key %s lost across crash during compaction: %v", k, err))
			}
		}
	}
}

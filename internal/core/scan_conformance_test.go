package core

import (
	"testing"

	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/store"
)

// TestScanConformanceSmoke is the deterministic end-to-end ordered-map check:
// a fixed sequence that writes across the memtable, an L0 run, and a leveled
// swap, then scans — the page must agree with the model's ordered map at
// every structural stage.
func TestScanConformanceSmoke(t *testing.T) {
	cfg := Config{
		Seed:             7,
		EnableCompaction: true,
		EnableScan:       true,
		StoreConfig:      store.Config{Compact: aggressiveCompact()},
	}
	seq := []Op{
		{Kind: OpPut, Key: "k03", Value: []byte("alpha"), Tag: 11, CrashSeed: 11},
		{Kind: OpPut, Key: "k07", Value: []byte("beta"), Tag: 12, CrashSeed: 12},
		{Kind: OpScan, Key: "", Key2: "", Tag: 13, CrashSeed: 13},
		{Kind: OpFlushIndex, Tag: 14, CrashSeed: 14},
		{Kind: OpScan, Key: "k04", Key2: "", Tag: 15, CrashSeed: 15},
		{Kind: OpPut, Key: "k05", Value: []byte("gamma"), Tag: 16, CrashSeed: 16},
		{Kind: OpFlushIndex, Tag: 17, CrashSeed: 17},
		{Kind: OpCompactStep, Tag: 18, CrashSeed: 18},
		{Kind: OpScan, Key: "", Key2: "k06", Tag: 19, CrashSeed: 19},
		{Kind: OpDelete, Key: "k03", Tag: 20, CrashSeed: 20},
		{Kind: OpScan, Key: "", Key2: "", Extent: 1, Tag: 21, CrashSeed: 21},
	}
	if _, _, err := RunSeq(seq, cfg); err != nil {
		t.Fatalf("scan smoke sequence violated the property: %v", err)
	}
}

// TestScanTornLevelSwapDetected seeds the scan-path defect — the iterator
// snapshot skips the manifest-generation re-check, so a scan overlapping a
// leveled compaction composes pre-swap deep levels with post-swap L0 — and
// requires the ordered-map check to catch it: a key whose newest version
// crossed the swap vanishes from scan pages while point gets still serve it.
func TestScanTornLevelSwapDetected(t *testing.T) {
	cfg := Config{
		Seed: 1234, Cases: 4000, OpsPerCase: 50,
		Bias:             DefaultBias(),
		EnableCompaction: true,
		EnableScan:       true,
		StoreConfig: store.Config{
			Compact: aggressiveCompact(),
			Bugs:    faults.NewSet(faults.FaultScanTornLevelSwap),
		},
		Minimize: true,
	}
	res := Run(cfg)
	if res.Failure == nil {
		t.Fatalf("scan-torn-level-swap fault not detected in %d cases (%d ops)", res.Cases, res.Ops)
	}
	t.Logf("detected in case %d; minimized to %d ops: %v",
		res.Failure.Case, len(res.Failure.Minimized), res.Failure.MinimizedErr)
}

// TestScanVerdictHonesty is the detection test's control arm: the identical
// configuration with the fault disarmed must run clean, proving the verdict
// above indicts the seeded defect and not the scan checker itself.
func TestScanVerdictHonesty(t *testing.T) {
	if testing.Short() {
		t.Skip("honesty control run")
	}
	cfg := Config{
		Seed: 1234, Cases: 1000, OpsPerCase: 50,
		Bias:             DefaultBias(),
		EnableCompaction: true,
		EnableScan:       true,
		StoreConfig: store.Config{
			Compact: aggressiveCompact(),
			Bugs:    faults.NewSet(),
		},
		Minimize: true,
	}
	res := Run(cfg)
	if res.Failure != nil {
		t.Fatalf("fault disarmed but scan check failed: case %d: %v\nminimized(%d): %v",
			res.Failure.Case, res.Failure.MinimizedErr, len(res.Failure.Minimized), res.Failure.Minimized)
	}
}

// TestScanRotConformance exercises the scan × silent-corruption interaction:
// with replicas rotting under the scrub contract, a scan over a range holding
// a fully rotted shard is allowed to fail (never to serve wrong bytes), and
// scans after scrub repair must see the restored values.
func TestScanRotConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance run")
	}
	cfg := Config{
		Seed: 99, Cases: 1000, OpsPerCase: 50,
		Bias:             DefaultBias(),
		EnableCorruption: true,
		EnableScrub:      true,
		EnableScan:       true,
		EnableCompaction: true,
		StoreConfig:      store.Config{Compact: aggressiveCompact()},
		Minimize:         true,
	}
	res := Run(cfg)
	if res.Failure != nil {
		t.Fatalf("scan+rot conformance failed: case %d: %v\nminimized(%d): %v",
			res.Failure.Case, res.Failure.MinimizedErr, len(res.Failure.Minimized), res.Failure.Minimized)
	}
}

// TestScanConformanceStress runs the full conformance harness with the
// ordered-map op in the alphabet alongside everything else — crashes, clean
// reboots, failure injection, group commit, leveled compaction, scrub — for
// 12k cases across three seeds. Scan pages must stay snapshot-consistent
// (ordered, complete, phantom-free) at every interleaving the harness
// explores, including scans issued right after dirty reboots and mid
// compaction pressure.
func TestScanConformanceStress(t *testing.T) {
	if raceEnabled {
		t.Skip("12k-case stress skipped under -race; covered by the non-race suite")
	}
	seeds := []int64{1234, 77, 20260807}
	cases := 4000
	if testing.Short() {
		seeds = seeds[:1]
		cases = 1000
	}
	for _, seed := range seeds {
		seed := seed
		cfg := Config{
			Seed: seed, Cases: cases, OpsPerCase: 60,
			Bias:              Bias{KeyReuse: 0.8, PageSizeValues: 0.6, ConstantValueBytes: 0.5, ZeroValues: 0.5, UUIDZeroBias: 0.6},
			EnableCrashes:     true,
			EnableReboots:     true,
			EnableFailures:    true,
			EnableGroupCommit: true,
			EnableCompaction:  true,
			EnableScrub:       true,
			EnableScan:        true,
			StoreConfig: store.Config{
				Disk:    disk.Config{PageSize: 128, PagesPerExtent: 8, ExtentCount: 8},
				Compact: aggressiveCompact(),
				Bugs:    faults.NewSet(),
			},
			Minimize: true,
		}
		res := Run(cfg)
		if res.Failure != nil {
			t.Fatalf("seed %d case %d: %v\nminimized(%d): %v", seed,
				res.Failure.Case, res.Failure.MinimizedErr, len(res.Failure.Minimized), res.Failure.Minimized)
		}
		t.Logf("seed %d: %d cases, %d ops, %d crashes clean", seed, res.Cases, res.Ops, res.Crashes)
	}
}

//go:build race

package core

// raceEnabled reports whether this test binary was built with the race
// detector. The long deterministic bug-hunt suites scale their budgets down
// (or skip) under -race: the race detector's value here is in the
// worker-pool and coverage-registry concurrency paths (parallel_test.go and
// the coverage hammer), not in replaying tens of thousands of sequential
// cases 10x slower. Mirrors the existing testing.Short() gating.
const raceEnabled = true

package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"shardstore/internal/coverage"
	"shardstore/internal/vsync"
)

// This file is the parallel execution engine behind the conformance
// harnesses. The paper's validation stack earns its keep by volume —
// ShardStore's property-based checks run millions of executions nightly on a
// CI fleet (§4.1, §7) — and every test case already builds its own
// in-memory disk and store, so case-level parallelism is embarrassingly
// safe. The engine fans case indices out across a pool of workers while
// keeping the observable result bit-identical to a sequential run:
//
//   - each case's RNG is derived from the root seed and the case index
//     (prop.CaseSeed), never from scheduling order;
//   - the reported failure is always the lowest-index failing case, exactly
//     as the sequential loop would have found it, minimized identically;
//   - per-case coverage lands in a private registry and only the cases a
//     sequential run would have executed (0..first failure) are merged, so
//     coverage totals match at any worker count;
//   - cases above a discovered failure are cancelled via context for early
//     exit, and their partial results are discarded.
//
// Shuttle-based model checking installs a process-global scheduler
// (vsync.SetRuntime) and therefore must stay sequential; the pool pins
// passthrough mode for its lifetime so a concurrent exploration fails
// loudly instead of corrupting both runs.

// caseOutcome is the result of one independently-executed case.
type caseOutcome struct {
	ops     int
	crashes int
	// cov holds the case's private coverage registry (merged by the caller
	// in index order).
	cov *coverage.Registry
	err error
}

// errCaseCancelled marks a case abandoned because a lower-index case already
// failed; its partial outcome is discarded.
var errCaseCancelled = errors.New("core: case cancelled after earlier failure")

// poolWorkers resolves a worker-count knob: 0 (or negative) means one worker
// per available CPU.
func poolWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// runPool executes exec(ctx, i) for i in [0, cases) on a pool of workers and
// returns the per-case outcomes a sequential loop would have produced: all
// cases up to and including the first failing index (or all cases if none
// fail). Indices are claimed in increasing order, so by the time a failure
// at index f is recorded every index below f is already running or done;
// in-flight cases above f have their contexts cancelled and freshly claimed
// indices above f are skipped.
func runPool(workers, cases int, exec func(ctx context.Context, i int) caseOutcome) []caseOutcome {
	workers = poolWorkers(workers)
	if workers > cases {
		workers = cases
	}
	release := vsync.PinPassthrough()
	defer release()

	outcomes := make([]caseOutcome, cases)
	var next atomic.Int64
	var minFail atomic.Int64
	minFail.Store(int64(cases)) // sentinel: no failure seen

	var mu sync.Mutex
	inflight := make(map[int]context.CancelFunc, workers)

	// recordFailure lowers the failure watermark to idx and cancels every
	// in-flight case above the new watermark.
	recordFailure := func(idx int) {
		for {
			cur := minFail.Load()
			if int64(idx) >= cur {
				return
			}
			if minFail.CompareAndSwap(cur, int64(idx)) {
				break
			}
		}
		mu.Lock()
		for i, cancel := range inflight {
			if i > idx {
				cancel()
			}
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= cases || int64(i) > minFail.Load() {
					return
				}
				ctx, cancel := context.WithCancel(context.Background())
				mu.Lock()
				inflight[i] = cancel
				mu.Unlock()
				out := exec(ctx, i)
				mu.Lock()
				delete(inflight, i)
				mu.Unlock()
				cancel()
				outcomes[i] = out
				if out.err != nil && !errors.Is(out.err, errCaseCancelled) && !errors.Is(out.err, context.Canceled) {
					recordFailure(i)
				}
			}
		}()
	}
	wg.Wait()

	if f := int(minFail.Load()); f < cases {
		return outcomes[:f+1]
	}
	return outcomes
}

// ParallelFor runs fn(0..n-1) on a pool of workers (0 = GOMAXPROCS) and
// waits for all of them. It is the grid runner for experiment cells and
// other independent units that don't report failures through the harness
// Result path: fn must confine its writes to its own slot of any shared
// slice. Like the conformance pool it pins vsync passthrough mode, so
// shuttle explorations cannot start mid-grid.
func ParallelFor(workers, n int, fn func(i int)) {
	workers = poolWorkers(workers)
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return
	}
	release := vsync.PinPassthrough()
	defer release()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

package core

import (
	"testing"

	"shardstore/internal/disk"
	"shardstore/internal/faults"
	"shardstore/internal/store"
)

// Small-geometry clean baseline: same config as the bug6/bug10 hunts but with
// every fault disabled. Must be clean or those detections are meaningless.
func TestSmallGeometryBaseline(t *testing.T) {
	if raceEnabled {
		t.Skip("4000-case baseline skipped under -race; covered by the non-race suite")
	}
	cfg := Config{
		Seed: 1234, Cases: 4000, OpsPerCase: 60,
		Bias:          Bias{KeyReuse: 0.8, PageSizeValues: 0.6, ConstantValueBytes: 0.5, ZeroValues: 0.5, UUIDZeroBias: 0.6},
		EnableCrashes: true, EnableReboots: true,
		StoreConfig: store.Config{
			Disk: disk.Config{PageSize: 128, PagesPerExtent: 8, ExtentCount: 8},
			Bugs: faults.NewSet(),
		},
		Minimize: true,
	}
	res := Run(cfg)
	if res.Failure != nil {
		t.Fatalf("case %d: %v\nminimized(%d): %v", res.Failure.Case, res.Failure.MinimizedErr, len(res.Failure.Minimized), res.Failure.Minimized)
	}
	t.Logf("%d cases, %d ops, %d crashes clean", res.Cases, res.Ops, res.Crashes)
}

package core

import (
	"testing"

	"shardstore/internal/faults"
	"shardstore/internal/shuttle"
)

// TestConcurrencyHarnessesCleanBaseline: with all faults fixed, no harness
// may fail under any strategy — otherwise the detections below are noise.
func TestConcurrencyHarnessesCleanBaseline(t *testing.T) {
	if raceEnabled {
		t.Skip("shuttle exploration skipped under -race: its goroutine-handoff scheduler is ~10x slower with the detector and runs one goroutine at a time by construction")
	}
	harnesses := map[string]func(*faults.Set) func(){
		"fig4":     Fig4Harness,
		"bug11":    Bug11Harness,
		"bug12":    Bug12Harness,
		"bug13":    Bug13Harness,
		"bug14":    Bug14Harness,
		"bug15":    Bug15Harness,
		"bug16":    Bug16Harness,
		"linz":     LinearizabilityHarness,
		"scanlinz": ScanLinearizabilityHarness,
	}
	for name, h := range harnesses {
		name, h := name, h
		t.Run(name, func(t *testing.T) {
			body := h(faults.NewSet())
			rep := shuttle.Explore(shuttle.Options{Strategy: shuttle.NewRandom(17), Iterations: 300}, body)
			if rep.Failed() {
				t.Fatalf("clean baseline failed: %v", rep.First())
			}
			rep = shuttle.Explore(shuttle.Options{Strategy: shuttle.NewPCT(23, 3, 4000), Iterations: 200}, body)
			if rep.Failed() {
				t.Fatalf("clean baseline failed under PCT: %v", rep.First())
			}
		})
	}
}

// TestDetectConcurrencyBugs: each seeded concurrency bug (Fig 5 #11–#16)
// must be found by stateless model checking.
func TestDetectConcurrencyBugs(t *testing.T) {
	if raceEnabled {
		t.Skip("shuttle exploration skipped under -race; see TestConcurrencyHarnessesCleanBaseline")
	}
	bugs := []struct {
		bug        faults.Bug
		iterations int
		strategy   shuttle.Strategy
	}{
		// Bugs #11 and #14 need one thread starved across a long window —
		// the scheduling shape PCT [5] is designed to produce and a uniform
		// random walk essentially never does.
		{faults.Bug11WriteFlushRace, 4000, shuttle.NewPCT(5, 3, 4000)},
		{faults.Bug12BufferPoolDeadlock, 3000, shuttle.NewRandom(5)},
		{faults.Bug13ListRemoveRace, 3000, shuttle.NewRandom(5)},
		{faults.Bug14CompactionReclaimRace, 8000, shuttle.NewPCT(11, 3, 3000)},
		{faults.Bug15RefModelLocatorReuse, 2000, shuttle.NewRandom(5)},
		{faults.Bug16BulkCreateRemoveRace, 3000, shuttle.NewRandom(5)},
	}
	for _, tc := range bugs {
		tc := tc
		t.Run(tc.bug.String(), func(t *testing.T) {
			res, rep := DetectConcurrent(tc.bug, tc.strategy, tc.iterations)
			if !res.Detected {
				t.Fatalf("%v not detected in %d iterations (%d steps)", tc.bug, rep.Iterations, rep.TotalSteps)
			}
			f := rep.First()
			t.Logf("%v detected at iteration %d (%v): %s", tc.bug, f.Iteration, f.Kind, truncate(f.Err, 120))
			// The failing schedule must replay deterministically.
			body := ConcurrencyHarnessFor(tc.bug)(faults.NewSet(tc.bug))
			if r := shuttle.Replay(body, f.Trace, 400000); r == nil {
				t.Fatalf("%v: failure did not replay from its trace", tc.bug)
			}
		})
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

package core

import (
	"testing"

	"shardstore/internal/faults"
)

// TestDetectSeededBugs is the heart of the Fig 5 reproduction: each seeded
// sequential/crash bug must be detected by its designated checker class
// within a bounded number of random cases — and the baseline (everything
// fixed) must stay clean under the same budgets, which
// TestCleanConformanceBaseline covers.
func TestDetectSeededBugs(t *testing.T) {
	cases := []struct {
		bug      faults.Bug
		maxCases int
	}{
		{faults.Bug1ReclaimOffByOne, 4000},
		{faults.Bug2CacheNotDrained, 4000},
		{faults.Bug3ShutdownMetadataSkip, 4000},
		{faults.Bug4DiskReturnLosesShard, 2000},
		{faults.Bug5ReclaimIOErrorDrop, 6000},
		{faults.Bug6SuperblockOwnershipDep, 8000},
		{faults.Bug7SoftHardPointerSkew, 8000},
		{faults.Bug8CacheWriteMissingDep, 4000},
		{faults.Bug9RefModelCrashReclaim, 4000},
		{faults.Bug10UUIDCollision, 40000},
	}
	for _, tc := range cases {
		tc := tc
		info, _ := faults.Lookup(tc.bug)
		t.Run(info.Component+"_"+tc.bug.String(), func(t *testing.T) {
			if testing.Short() && tc.maxCases > 10000 {
				t.Skip("long detection run")
			}
			if raceEnabled && tc.maxCases > 2000 {
				t.Skip("heavy detection run skipped under -race; the pool's race coverage lives in parallel_test.go")
			}
			res := DetectSequential(tc.bug, 1234, tc.maxCases)
			if !res.Detected {
				t.Fatalf("%v (%s) not detected by %v within %d cases",
					tc.bug, info.Description, res.Checker, tc.maxCases)
			}
			t.Logf("%v detected after %d cases (%d ops); minimized to %d ops: %v",
				tc.bug, res.CasesNeeded, res.Ops, len(res.Failure.Minimized), res.Failure.MinimizedErr)
		})
	}
}

package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"

	"shardstore/internal/chunk"
	"shardstore/internal/coverage"
	"shardstore/internal/dep"
	"shardstore/internal/disk"
	"shardstore/internal/extent"
	"shardstore/internal/faults"
	"shardstore/internal/lsm"
	"shardstore/internal/model"
	"shardstore/internal/prop"
)

// This file is the paper's Fig 3 harness: property-based conformance checking
// of the index component alone. The operation alphabet mirrors the paper's
// IndexOp enumeration — API operations first, then background operations
// (reclamation, clean reboots) that must be no-ops on the key-value mapping.

// IndexOpKind is the Fig 3 IndexOp alphabet, arranged (as §4.3 prescribes)
// in increasing order of complexity so minimization prefers early variants.
type IndexOpKind int

const (
	// IdxGet reads a key.
	IdxGet IndexOpKind = iota
	// IdxPut writes a key.
	IdxPut
	// IdxDelete removes a key.
	IdxDelete
	// IdxFlush flushes the memtable (background; no mapping change).
	IdxFlush
	// IdxCompact merges runs (background; no mapping change).
	IdxCompact
	// IdxReclaim garbage-collects one extent (background).
	IdxReclaim
	// IdxReboot performs a clean reboot of the index (background).
	IdxReboot

	numIndexOpKinds
)

func (k IndexOpKind) String() string {
	switch k {
	case IdxGet:
		return "Get"
	case IdxPut:
		return "Put"
	case IdxDelete:
		return "Delete"
	case IdxFlush:
		return "Flush"
	case IdxCompact:
		return "Compact"
	case IdxReclaim:
		return "Reclaim"
	case IdxReboot:
		return "Reboot"
	default:
		return fmt.Sprintf("IndexOpKind(%d)", int(k))
	}
}

// IndexOp is one operation of the Fig 3 test.
type IndexOp struct {
	Kind  IndexOpKind
	Key   string
	Value []byte
}

func (o IndexOp) String() string {
	switch o.Kind {
	case IdxPut:
		return fmt.Sprintf("Put(%q, %dB)", o.Key, len(o.Value))
	case IdxGet, IdxDelete:
		return fmt.Sprintf("%s(%q)", o.Kind, o.Key)
	default:
		return o.Kind.String()
	}
}

// IndexConfig tunes the Fig 3 conformance run.
type IndexConfig struct {
	Seed       int64
	Cases      int
	OpsPerCase int
	Bias       Bias
	Bugs       *faults.Set
	Coverage   *coverage.Registry
	Minimize   bool
	// Workers is the number of pool workers cases fan out across; 0 means
	// one per CPU. Results are bit-identical at any worker count.
	Workers int
}

func (c IndexConfig) withDefaults() IndexConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Cases == 0 {
		c.Cases = 200
	}
	if c.OpsPerCase == 0 {
		c.OpsPerCase = 30
	}
	if c.Bugs == nil {
		c.Bugs = faults.NewSet()
	}
	return c
}

// IndexFailure reports a failing Fig 3 sequence.
type IndexFailure struct {
	Case      int
	Seed      int64
	Seq       []IndexOp
	Minimized []IndexOp
	Err       error
}

// IndexResult summarizes a Fig 3 run.
type IndexResult struct {
	Cases   int
	Ops     int64
	Failure *IndexFailure
}

// indexSUT is the index implementation stack under test: the real LSM tree
// over the real chunk store over the in-memory disk.
type indexSUT struct {
	d     *disk.Disk
	sched *dep.Scheduler
	em    *extent.Manager
	cs    *chunk.Store
	tree  *lsm.Tree
	bugs  *faults.Set
	cov   *coverage.Registry
}

// idxResolver lets reclamation reverse-look-up data chunks through the tree
// itself (the tree stores raw values here, so there are no data chunks —
// only index runs — but the resolver contract must still be satisfied).
type idxNoDataResolver struct{}

func (idxNoDataResolver) ChunkLive(string, chunk.Locator) bool { return false }
func (idxNoDataResolver) RelocateChunk(string, chunk.Locator, chunk.Locator, *dep.Dependency) (bool, *dep.Dependency, error) {
	return false, nil, nil
}
func (idxNoDataResolver) SyncReferences() (*dep.Dependency, error) { return dep.Resolved(), nil }

func newIndexSUT(cfg IndexConfig) (*indexSUT, error) {
	d, err := disk.New(disk.DefaultConfig())
	if err != nil {
		return nil, err
	}
	s := &indexSUT{d: d, bugs: cfg.Bugs, cov: cfg.Coverage}
	if err := s.open(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *indexSUT) open() error {
	s.sched = dep.NewScheduler(s.d, s.cov)
	em, err := extent.Recover(s.sched, extent.Config{}, s.cov, s.bugs)
	if err != nil {
		return err
	}
	s.em = em
	s.cs = chunk.NewStore(em, chunk.Config{CacheCapacity: 16}, 7, s.cov, s.bugs)
	ms, err := lsm.NewExtentMetaStore(s.sched, extent.MetaExtent, lsm.MaxMetaPayload(0), s.cov)
	if err != nil {
		return err
	}
	tree, err := lsm.NewTree(s.cs, ms, s.sched, lsm.Config{ResetHappened: em.ResetHappened}, s.cov, s.bugs)
	if err != nil {
		return err
	}
	s.tree = tree
	s.cs.RegisterResolver(chunk.TagIndexRun, lsm.RunResolver{Tree: tree})
	s.cs.RegisterResolver(chunk.TagData, idxNoDataResolver{})
	return nil
}

// reboot is the clean-reboot background op: quiesce, then rebuild the whole
// stack from disk.
func (s *indexSUT) reboot() error {
	if _, err := s.tree.Shutdown(); err != nil {
		return err
	}
	if _, err := s.em.Flush(); err != nil {
		return err
	}
	if err := s.sched.Pump(); err != nil {
		return err
	}
	if _, err := s.em.Flush(); err != nil {
		return err
	}
	if err := s.sched.Pump(); err != nil {
		return err
	}
	return s.open()
}

// GenerateIndexSeq produces one random Fig 3 sequence with §4.2 biasing.
func GenerateIndexSeq(r *rand.Rand, cfg IndexConfig) []IndexOp {
	st := &genState{}
	ops := make([]IndexOp, 0, cfg.OpsPerCase)
	weights := []int{25, 30, 10, 10, 6, 8, 5} // Get..Reboot
	total := 0
	for _, w := range weights {
		total += w
	}
	for i := 0; i < cfg.OpsPerCase; i++ {
		pick := r.Intn(total)
		kind := IndexOpKind(0)
		for j, w := range weights {
			if pick < w {
				kind = IndexOpKind(j)
				break
			}
			pick -= w
		}
		op := IndexOp{Kind: kind}
		switch kind {
		case IdxGet, IdxDelete:
			op.Key = genKey(r, cfg.Bias, st, false)
		case IdxPut:
			op.Key = genKey(r, cfg.Bias, st, true)
			st.keys = append(st.keys, op.Key)
			n := r.Intn(24)
			op.Value = make([]byte, n)
			for j := range op.Value {
				op.Value[j] = byte(r.Intn(256))
			}
		}
		ops = append(ops, op)
	}
	return ops
}

// RunIndexSeq applies one sequence in lockstep to the implementation and the
// reference index (Fig 3's proptest body), comparing results per operation
// and checking the full key-value mapping invariant after each.
func RunIndexSeq(seq []IndexOp, cfg IndexConfig) (int, error) {
	return RunIndexSeqCtx(context.Background(), seq, cfg)
}

// RunIndexSeqCtx is RunIndexSeq with cooperative cancellation between
// operations; see RunSeqCtx.
func RunIndexSeqCtx(ctx context.Context, seq []IndexOp, cfg IndexConfig) (int, error) {
	cfg = cfg.withDefaults()
	impl, err := newIndexSUT(cfg)
	if err != nil {
		return 0, err
	}
	ref := model.NewRefIndex()
	for i, op := range seq {
		if cerr := ctx.Err(); cerr != nil {
			return i, fmt.Errorf("%w: %w", errCaseCancelled, cerr)
		}
		if err := applyIndexOp(impl, ref, op); err != nil {
			return i, fmt.Errorf("op %d %s: %w", i, op, err)
		}
		if err := checkIndexEquivalence(impl, ref); err != nil {
			return i, fmt.Errorf("after op %d %s: %w", i, op, err)
		}
	}
	return len(seq), nil
}

func applyIndexOp(impl *indexSUT, ref *model.RefIndex, op IndexOp) error {
	switch op.Kind {
	case IdxGet:
		// compare_results (Fig 3): the implementation and the model must
		// agree on both the value and the error.
		iv, ierr := impl.tree.Get(op.Key)
		rv, rerr := ref.Get(op.Key)
		if (ierr == nil) != (rerr == nil) {
			return fmt.Errorf("Get disagreement: impl=%v ref=%v", ierr, rerr)
		}
		if ierr != nil && !errors.Is(ierr, lsm.ErrNotFound) {
			return fmt.Errorf("Get failed: %w", ierr)
		}
		if ierr == nil && !bytes.Equal(iv, rv) {
			return fmt.Errorf("Get value mismatch: impl=%x ref=%x", iv, rv)
		}
		return nil
	case IdxPut:
		if _, err := impl.tree.Put(op.Key, op.Value); err != nil {
			return err
		}
		_, _ = ref.Put(op.Key, op.Value)
		return nil
	case IdxDelete:
		if _, err := impl.tree.Delete(op.Key); err != nil {
			return err
		}
		_, _ = ref.Delete(op.Key)
		return nil
	case IdxFlush:
		_, err := impl.tree.Flush()
		return err
	case IdxCompact:
		return impl.tree.Compact()
	case IdxReclaim:
		// Background reclamation: a no-op on the reference model.
		_, err := impl.cs.ReclaimAuto()
		if errors.Is(err, chunk.ErrBusy) || errors.Is(err, chunk.ErrAborted) {
			return nil
		}
		return err
	case IdxReboot:
		return impl.reboot()
	default:
		return fmt.Errorf("unknown index op %v", op.Kind)
	}
}

// checkIndexEquivalence is Fig 3's check_invariants: both systems hold the
// same key-value mapping.
func checkIndexEquivalence(impl *indexSUT, ref *model.RefIndex) error {
	refKeys, _ := ref.Keys()
	implKeys, err := impl.tree.Keys()
	if err != nil {
		return fmt.Errorf("impl Keys: %w", err)
	}
	if len(refKeys) != len(implKeys) {
		return fmt.Errorf("key sets differ: impl=%v ref=%v", implKeys, refKeys)
	}
	for i := range refKeys {
		if refKeys[i] != implKeys[i] {
			return fmt.Errorf("key sets differ: impl=%v ref=%v", implKeys, refKeys)
		}
	}
	for _, k := range refKeys {
		rv, _ := ref.Get(k)
		iv, err := impl.tree.Get(k)
		if err != nil {
			return fmt.Errorf("impl lost %q: %w", k, err)
		}
		if !bytes.Equal(rv, iv) {
			return fmt.Errorf("value mismatch on %q", k)
		}
	}
	return nil
}

// ShrinkIndexOp yields simpler variants for minimization.
func ShrinkIndexOp(op IndexOp) []IndexOp {
	var out []IndexOp
	if len(op.Value) > 0 {
		v := op
		v.Value = op.Value[:len(op.Value)/2]
		out = append(out, v)
	}
	if op.Kind > IdxGet && op.Kind != IdxPut {
		v := op
		v.Kind = IdxGet
		v.Key = "k00"
		out = append(out, v)
	}
	return out
}

// RunIndexConformance is the Fig 3 entry point: Cases random sequences on
// the worker pool (cfg.Workers; 0 = one per CPU), the first — lowest-index —
// failure minimized. As with Run, the IndexResult is bit-identical at any
// worker count.
func RunIndexConformance(cfg IndexConfig) IndexResult {
	cfg = cfg.withDefaults()
	shared := cfg.Coverage
	outcomes := runPool(cfg.Workers, cfg.Cases, func(ctx context.Context, i int) caseOutcome {
		ccfg := cfg
		ccfg.Coverage = coverage.NewRegistry()
		r := rand.New(rand.NewSource(prop.CaseSeed(cfg.Seed, i)))
		seq := GenerateIndexSeq(r, ccfg)
		n, err := RunIndexSeqCtx(ctx, seq, ccfg)
		return caseOutcome{ops: n, cov: ccfg.Coverage, err: err}
	})

	res := IndexResult{}
	for i, out := range outcomes {
		res.Cases++
		res.Ops += int64(out.ops)
		shared.Merge(out.cov)
		if out.err == nil {
			continue
		}
		seed := prop.CaseSeed(cfg.Seed, i)
		seq := GenerateIndexSeq(rand.New(rand.NewSource(seed)), cfg)
		f := &IndexFailure{Case: i, Seed: seed, Seq: seq, Minimized: seq, Err: out.err}
		if cfg.Minimize {
			fails := func(cand []IndexOp) bool {
				_, cerr := RunIndexSeq(cand, cfg)
				return cerr != nil
			}
			f.Minimized = prop.MinimizeSeq(seq, fails, ShrinkIndexOp, 2000)
		}
		res.Failure = f
	}
	return res
}

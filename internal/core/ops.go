// Package core implements the paper's conformance-checking harnesses (§4–5):
// property-based tests that drive random operation sequences against the
// implementation and its reference model in lockstep, compare results after
// every operation, check cross-system invariants, inject environmental
// failures, generate crash states, and minimize failing sequences.
package core

import (
	"fmt"
	"math/rand"

	"shardstore/internal/chunk"
	"shardstore/internal/prop"
)

// OpKind enumerates the operation alphabet for the store harness. The order
// is deliberate: the §4.3 minimization heuristics prefer earlier variants,
// so the alphabet is arranged "in increasing order of complexity" exactly as
// the paper describes.
type OpKind int

const (
	// OpGet reads a shard.
	OpGet OpKind = iota
	// OpPut writes a shard.
	OpPut
	// OpDelete removes a shard.
	OpDelete
	// OpList runs the control-plane listing.
	OpList
	// OpFlushIndex flushes the LSM memtable to a run chunk.
	OpFlushIndex
	// OpFlushSuperblock writes a superblock record.
	OpFlushSuperblock
	// OpSchedStep issues one IO scheduler round without syncing.
	OpSchedStep
	// OpSchedSync flushes the disk write cache.
	OpSchedSync
	// OpPump drives the scheduler to quiescence.
	OpPump
	// OpCompactIndex merges the LSM runs.
	OpCompactIndex
	// OpReclaim garbage-collects one extent.
	OpReclaim
	// OpDrainCache empties the buffer cache (reaches miss paths, §8.3).
	OpDrainCache
	// OpRemoveDisk takes the disk out of service (control plane).
	OpRemoveDisk
	// OpReturnDisk brings the disk back into service.
	OpReturnDisk
	// OpFailDiskOnce injects a transient IO failure on one extent (§4.4).
	OpFailDiskOnce
	// OpCleanReboot performs a clean shutdown + recovery (forward progress).
	OpCleanReboot
	// OpDirtyReboot crashes and recovers (§5 persistence check).
	OpDirtyReboot
	// OpScrub runs one full integrity-scrub round (verify replicas, repair
	// rotted copies, record irreparable losses).
	OpScrub
	// OpRotReplica silently corrupts the durable pages of one replica of one
	// piece of a shard — only when at least two replicas currently verify, so
	// k stays below R and the shard must remain readable.
	OpRotReplica
	// OpRotAll silently corrupts every replica of one piece (k = R): the
	// shard may become unreadable, and a scrub must report it lost rather
	// than serve rotted bytes.
	OpRotAll
	// OpPutDurable writes a shard and then blocks on the group-commit
	// barrier until its dependency is persistent — the durability-waiting
	// write path the RPC flagDurable plane uses.
	OpPutDurable
	// OpCompactStep applies at most one leveled compaction (plan + merge +
	// manifest-generation swap), without a durability wait: the harness's
	// own scheduling ops decide when the swap reaches the media, which is
	// exactly the window the crash-consistency check must explore.
	OpCompactStep
	// OpScan runs an ordered range scan [Key, Key2) bounded by Extent (the
	// page limit; 0 = unbounded) and checks the page against the model's
	// ordered-map semantics: ascending order, newest value per key, no
	// phantom or missing shards — interleaved with flushes, compaction
	// steps, crashes, and scrub, which is where torn level swaps would show.
	OpScan

	numOpKinds
)

var opNames = map[OpKind]string{
	OpGet:             "Get",
	OpPut:             "Put",
	OpDelete:          "Delete",
	OpList:            "List",
	OpFlushIndex:      "FlushIndex",
	OpFlushSuperblock: "FlushSuperblock",
	OpSchedStep:       "SchedStep",
	OpSchedSync:       "SchedSync",
	OpPump:            "Pump",
	OpCompactIndex:    "CompactIndex",
	OpReclaim:         "Reclaim",
	OpDrainCache:      "DrainCache",
	OpRemoveDisk:      "RemoveDisk",
	OpReturnDisk:      "ReturnDisk",
	OpFailDiskOnce:    "FailDiskOnce",
	OpCleanReboot:     "CleanReboot",
	OpDirtyReboot:     "DirtyReboot",
	OpScrub:           "Scrub",
	OpRotReplica:      "RotReplica",
	OpRotAll:          "RotAll",
	OpPutDurable:      "PutDurable",
	OpCompactStep:     "CompactStep",
	OpScan:            "Scan",
}

func (k OpKind) String() string {
	if n, ok := opNames[k]; ok {
		return n
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// RebootFlags selects which components a DirtyReboot flushes before the
// crash — the paper's RebootType parameter (§5).
type RebootFlags uint8

const (
	// RebootFlushIndex flushes the LSM memtable before crashing.
	RebootFlushIndex RebootFlags = 1 << iota
	// RebootFlushSuperblock writes a superblock record before crashing.
	RebootFlushSuperblock
	// RebootSchedStep issues one scheduler round (data reaches the disk
	// cache, where the crash can tear it page by page).
	RebootSchedStep
	// RebootSchedSync flushes the disk cache before crashing.
	RebootSchedSync
)

func (f RebootFlags) String() string {
	if f == 0 {
		return "None"
	}
	s := ""
	add := func(name string) {
		if s != "" {
			s += "+"
		}
		s += name
	}
	if f&RebootFlushIndex != 0 {
		add("Index")
	}
	if f&RebootFlushSuperblock != 0 {
		add("Superblock")
	}
	if f&RebootSchedStep != 0 {
		add("Step")
	}
	if f&RebootSchedSync != 0 {
		add("Sync")
	}
	return s
}

// Op is one operation in a generated sequence. Every random choice the
// operation needs at execution time is captured in the Op itself (Tag seeds
// the store's internal RNG, CrashSeed drives the crash tearing), so replay
// and minimization are fully deterministic (§4.3).
type Op struct {
	Kind OpKind
	Key  string
	// Key2 is the exclusive upper bound for OpScan ("" = unbounded).
	Key2      string
	Value     []byte
	Extent    int
	Flags     RebootFlags
	Tag       int64
	CrashSeed int64
}

func (o Op) String() string {
	switch o.Kind {
	case OpPut, OpPutDurable:
		return fmt.Sprintf("%s(%q, %dB)", o.Kind, o.Key, len(o.Value))
	case OpGet, OpDelete:
		return fmt.Sprintf("%s(%q)", o.Kind, o.Key)
	case OpReclaim, OpFailDiskOnce:
		return fmt.Sprintf("%s(extent %d)", o.Kind, o.Extent)
	case OpRotReplica, OpRotAll:
		return fmt.Sprintf("%s(%q, piece %d)", o.Kind, o.Key, o.Extent)
	case OpDirtyReboot:
		return fmt.Sprintf("DirtyReboot(%s)", o.Flags)
	case OpScan:
		return fmt.Sprintf("Scan(%q..%q, limit %d)", o.Key, o.Key2, o.Extent)
	default:
		return o.Kind.String()
	}
}

// Bias tunes argument selection (§4.2). All biases are probabilistic.
type Bias struct {
	// KeyReuse is the probability that Get/Delete pick a previously Put key
	// rather than a fresh random one (the successful-Get bias).
	KeyReuse float64
	// PageSizeValues is the probability that a Put value is sized so the
	// chunk frame lands within a couple of bytes of a page boundary — the
	// corner case §4.2 calls out as a frequent source of bugs.
	PageSizeValues float64
	// ConstantValueBytes is the probability a value is a repeated single
	// byte (compressible patterns interact with framing and stale data).
	ConstantValueBytes float64
	// ZeroValues is the probability a value is all zero bytes — together
	// with UUIDZeroBias this makes stale-byte collisions (§5, bug #10)
	// reachable.
	ZeroValues float64
	// UUIDZeroBias is forwarded to the chunk store's UUID generator.
	UUIDZeroBias float64
}

// DefaultBias is the tuned default the experiments use.
func DefaultBias() Bias {
	return Bias{KeyReuse: 0.8, PageSizeValues: 0.4, ConstantValueBytes: 0.5}
}

// NoBias disables all argument biasing (the §4.2 ablation baseline).
func NoBias() Bias { return Bias{} }

// opWeights returns the generation weights for each op kind under the given
// harness configuration.
func opWeights(cfg Config) map[OpKind]int {
	w := map[OpKind]int{
		OpGet:             20,
		OpPut:             25,
		OpDelete:          8,
		OpFlushIndex:      8,
		OpFlushSuperblock: 6,
		OpSchedStep:       8,
		OpSchedSync:       5,
		OpPump:            5,
		OpCompactIndex:    4,
		OpReclaim:         8,
		OpDrainCache:      3,
	}
	if cfg.EnableControlPlane {
		w[OpList] = 4
		w[OpRemoveDisk] = 2
		w[OpReturnDisk] = 3
	}
	if cfg.EnableFailures {
		w[OpFailDiskOnce] = 4
	}
	if cfg.EnableReboots {
		w[OpCleanReboot] = 3
	}
	if cfg.EnableCrashes {
		w[OpDirtyReboot] = 5
	}
	if cfg.EnableScrub {
		w[OpScrub] = 6
	}
	if cfg.EnableGroupCommit {
		w[OpPutDurable] = 6
	}
	if cfg.EnableCompaction {
		w[OpCompactStep] = 5
	}
	if cfg.EnableScan {
		w[OpScan] = 8
	}
	if cfg.EnableCorruption {
		w[OpRotReplica] = 6
		w[OpRotAll] = 2
	}
	return w
}

// genState carries generation-time knowledge used for biasing.
type genState struct {
	keys []string // keys Put so far in this sequence
}

// GenerateSeq produces one random operation sequence.
func GenerateSeq(r *rand.Rand, cfg Config) []Op {
	n := cfg.OpsPerCase
	if n <= 0 {
		n = 40
	}
	weights := opWeights(cfg)
	var kinds []OpKind
	var ws []int
	for k := OpKind(0); k < numOpKinds; k++ {
		if w := weights[k]; w > 0 {
			kinds = append(kinds, k)
			ws = append(ws, w)
		}
	}
	total := 0
	for _, w := range ws {
		total += w
	}
	st := &genState{}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		pick := r.Intn(total)
		var kind OpKind
		for j, w := range ws {
			if pick < w {
				kind = kinds[j]
				break
			}
			pick -= w
		}
		ops = append(ops, genOp(r, cfg, st, kind))
	}
	return ops
}

func genOp(r *rand.Rand, cfg Config, st *genState, kind OpKind) Op {
	op := Op{Kind: kind, Tag: r.Int63(), CrashSeed: r.Int63()}
	switch kind {
	case OpGet, OpDelete:
		op.Key = genKey(r, cfg.Bias, st, false)
	case OpPut, OpPutDurable:
		op.Key = genKey(r, cfg.Bias, st, true)
		op.Value = genValue(r, cfg, op.Key)
		st.keys = append(st.keys, op.Key)
	case OpReclaim, OpFailDiskOnce:
		// Bias toward low-numbered extents: allocation hands them out first,
		// so faults and reclamations land where data actually lives (tuned
		// from coverage feedback — unbiased extents left the injected-fault
		// probe dark; §4.2's "tune argument selection to remedy").
		n := maxInt(cfg.StoreConfig.Disk.ExtentCount, 1)
		if r.Float64() < 0.7 {
			op.Extent = r.Intn(minInt(8, n))
		} else {
			op.Extent = r.Intn(n)
		}
	case OpDirtyReboot:
		op.Flags = RebootFlags(r.Intn(16))
	case OpRotReplica, OpRotAll:
		// Rot an existing shard when possible (fresh keys make the op a
		// no-op); Extent picks the piece within the shard at execution time.
		op.Key = genKey(r, cfg.Bias, st, false)
		op.Extent = r.Intn(4)
	case OpScan:
		// Range bounds over the small key space: mostly proper sub-ranges,
		// sometimes unbounded on either side; limit exercises pagination.
		lo, hi := r.Intn(16), r.Intn(16)
		if lo > hi {
			lo, hi = hi, lo
		}
		op.Key = fmt.Sprintf("k%02d", lo)
		if r.Intn(4) == 0 {
			op.Key = "" // unbounded start
		}
		if r.Intn(3) == 0 {
			op.Key2 = "" // unbounded end
		} else {
			op.Key2 = fmt.Sprintf("k%02d", hi+1)
		}
		if r.Intn(2) == 0 {
			op.Extent = 1 + r.Intn(6) // page limit; 0 = unbounded
		}
	}
	return op
}

// genKey picks a shard key: biased toward reuse so Gets hit, fresh keys
// otherwise. The key space is deliberately small ("k00".."k15") so random
// collisions stay plausible even unbiased.
func genKey(r *rand.Rand, b Bias, st *genState, forPut bool) string {
	if !forPut && len(st.keys) > 0 && r.Float64() < b.KeyReuse {
		return st.keys[r.Intn(len(st.keys))]
	}
	return fmt.Sprintf("k%02d", r.Intn(16))
}

// genValue picks a value, biased toward sizes that put the chunk frame near
// a page boundary (§4.2's page-size corner case).
func genValue(r *rand.Rand, cfg Config, key string) []byte {
	ps := cfg.StoreConfig.Disk.PageSize
	if ps == 0 {
		ps = 128
	}
	var n int
	if r.Float64() < cfg.Bias.PageSizeValues {
		// Size the payload so the frame length is within [-2,+2] of a page
		// multiple.
		overhead := chunk.FrameLen(len(key), 0)
		pages := 1 + r.Intn(3)
		target := pages*ps - overhead + (r.Intn(5) - 2)
		if target < 0 {
			target = 0
		}
		n = target
	} else {
		n = r.Intn(2*ps + 1)
	}
	if cfg.Bias.ZeroValues > 0 && r.Float64() < cfg.Bias.ZeroValues {
		return make([]byte, n)
	}
	if r.Float64() < cfg.Bias.ConstantValueBytes {
		b := byte(r.Intn(256))
		out := make([]byte, n)
		for i := range out {
			out[i] = b
		}
		return out
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.Intn(256))
	}
	return out
}

// ShrinkOp yields simpler variants of an op for minimization (§4.3): shrink
// values toward zero length, prefer earlier op kinds for maintenance ops,
// reduce reboot flags.
func ShrinkOp(op Op) []Op {
	var out []Op
	if len(op.Value) > 0 {
		half := op.Value[:len(op.Value)/2]
		v1 := op
		v1.Value = append([]byte(nil), half...)
		out = append(out, v1)
		v2 := op
		v2.Value = []byte{}
		out = append(out, v2)
	}
	if op.Flags != 0 {
		v := op
		v.Flags = 0
		out = append(out, v)
	}
	if op.Extent > 0 {
		v := op
		v.Extent = op.Extent / 2
		out = append(out, v)
	}
	// A durable put simplifies to a plain put (drop the barrier wait but
	// keep the mutation).
	if op.Kind == OpPutDurable {
		v := op
		v.Kind = OpPut
		out = append(out, v)
	}
	// Prefer earlier (simpler) variants: try turning maintenance ops into
	// no-op-ish Gets.
	if op.Kind > OpGet && op.Kind != OpPut && op.Kind != OpPutDurable && op.Kind != OpDirtyReboot && op.Kind != OpCleanReboot {
		v := op
		v.Kind = OpGet
		v.Key = "k00"
		out = append(out, v)
	}
	return out
}

// SeqStats summarizes a sequence for the minimization experiment (§4.3's
// "61 operations, including 9 crashes and 14 writes totalling 226 KiB").
type SeqStats struct {
	Ops          int
	Crashes      int
	Writes       int
	BytesWritten int
}

// StatsOf computes SeqStats for a sequence.
func StatsOf(seq []Op) SeqStats {
	var s SeqStats
	s.Ops = len(seq)
	for _, op := range seq {
		switch op.Kind {
		case OpPut, OpPutDurable:
			s.Writes++
			s.BytesWritten += len(op.Value)
		case OpDirtyReboot:
			s.Crashes++
		}
	}
	return s
}

var _ = prop.CaseSeed // prop is used by the harness files in this package

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
